// Cancellation contract of the execution context: an expired or cancelled
// context stops an in-flight compile promptly at enumeration granularity (no
// plan is half-committed, no goroutine is left behind), a generated-plan
// budget aborts with ErrBudgetExceeded, and an unexpired context changes
// nothing — OptimizeCtx(Background) is bit-identical to Optimize. Run under
// -race this file doubles as the race gate for the cancellation paths.
package cote_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"cote"
	"cote/internal/cost"
	"cote/internal/experiments"
	"cote/internal/opt"
	"cote/internal/testutil"
	"cote/internal/workload"
)

// heavyQuery is the 14-table, 3-view real2 query — the longest compile in the
// built-in workloads at the experiments level (~tens of ms), long enough that
// a cancellation arriving early must visibly cut it short.
func heavyQuery() workload.Query {
	return workload.Real2(4).Queries[7]
}

func TestCancelledContextStopsOptimize(t *testing.T) {
	q := heavyQuery()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the compile must stop at its first check
	for _, par := range []int{0, 4} {
		start := time.Now()
		res, err := opt.OptimizeCtx(ctx, q.Block, opt.Options{Level: experiments.Level, Config: cost.Parallel4, Parallelism: par})
		elapsed := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism=%d: err = %v, want context.Canceled (res=%v)", par, err, res != nil)
		}
		// Generous bound: a full compile is ~tens of ms, so even a slow CI
		// machine returns orders of magnitude inside this if cancellation
		// short-circuits the work at all.
		if elapsed > 2*time.Second {
			t.Errorf("parallelism=%d: took %v to notice a pre-cancelled context", par, elapsed)
		}
	}
}

func TestMidFlightCancelStopsOptimize(t *testing.T) {
	q := heavyQuery()
	for _, par := range []int{0, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := opt.OptimizeCtx(ctx, q.Block, opt.Options{Level: experiments.Level, Config: cost.Parallel4, Parallelism: par})
			done <- err
		}()
		time.Sleep(time.Millisecond) // let the enumeration get going
		cancel()
		select {
		case err := <-done:
			// err == nil means the compile beat the cancel — possible on a
			// fast machine, and not a cancellation bug.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("parallelism=%d: err = %v, want context.Canceled or nil", par, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("parallelism=%d: compile did not return after cancel", par)
		}
	}
}

// TestCancelledContextStopsEstimate covers the estimate path's cancellation
// polls in both scan modes: the connectivity-indexed candidate scan (the
// default) and the naive cross-product scan. The poll sites differ — the
// indexed scan checks once per outer entry, the naive one inside the partner
// loop — so both must notice an expired context.
func TestCancelledContextStopsEstimate(t *testing.T) {
	q := heavyQuery()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, naive := range []bool{false, true} {
		start := time.Now()
		_, err := cote.EstimatePlansCtx(ctx, q.Block, cote.EstimateOptions{Level: experiments.Level, NaiveScan: naive})
		elapsed := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("naive=%v: err = %v, want context.Canceled", naive, err)
		}
		if elapsed > 2*time.Second {
			t.Errorf("naive=%v: took %v to notice a pre-cancelled context", naive, elapsed)
		}
	}
}

// TestMidFlightCancelStopsEstimate cancels while the candidate-driven
// enumeration is in flight; a hung estimate here means a scan loop lost its
// poll when the indexed path was introduced.
func TestMidFlightCancelStopsEstimate(t *testing.T) {
	q := heavyQuery()
	for _, naive := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			// Loop so the enumeration is actually running when the cancel
			// lands (a single estimate is only a few hundred microseconds).
			for ctx.Err() == nil {
				if _, err := cote.EstimatePlansCtx(ctx, q.Block, cote.EstimateOptions{Level: experiments.Level, NaiveScan: naive}); err != nil {
					done <- err
					return
				}
			}
			done <- ctx.Err()
		}()
		time.Sleep(2 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("naive=%v: err = %v, want context.Canceled", naive, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("naive=%v: estimate did not return after cancel", naive)
		}
	}
}

func TestDeadlineStopsOptimize(t *testing.T) {
	q := heavyQuery()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := opt.OptimizeCtx(ctx, q.Block, opt.Options{Level: experiments.Level, Config: cost.Parallel4})
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("compile finished inside the 2ms deadline; machine too fast for this probe")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("took %v to honor a 2ms deadline", elapsed)
	}
}

// TestCancelLeavesNoGoroutines pins the parallel driver's cleanup: cancelling
// mid-flight must not strand workers. The shared guard GC-retries the count
// comparison because the runtime retires goroutines asynchronously.
func TestCancelLeavesNoGoroutines(t *testing.T) {
	testutil.CheckGoroutines(t)
	q := heavyQuery()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, _ = opt.OptimizeCtx(ctx, q.Block, opt.Options{Level: experiments.Level, Config: cost.Parallel4, Parallelism: 4})
		cancel()
	}
}

// TestOptimizeCtxBackgroundIsDeterministic: an execution context that never
// fires must be invisible — same fingerprint as the plain entry point, serial
// and parallel.
func TestOptimizeCtxBackgroundIsDeterministic(t *testing.T) {
	q := heavyQuery()
	for _, par := range []int{0, 4} {
		opts := opt.Options{Level: experiments.Level, Config: cost.Parallel4, Parallelism: par}
		plain, err := opt.Optimize(q.Block, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctxed, err := opt.OptimizeCtx(context.Background(), q.Block, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fingerprintOf(ctxed), fingerprintOf(plain); got != want {
			t.Errorf("parallelism=%d: OptimizeCtx(Background) diverges from Optimize:\n got %+v\nwant %+v", par, got, want)
		}
	}
}

func TestPlanBudgetAborts(t *testing.T) {
	q := heavyQuery()
	oc := cote.NewExecContext(context.Background())
	oc.SetPlanBudget(100) // the query generates thousands of join plans
	_, err := cote.OptimizeWith(oc, q.Block, cote.OptimizeOptions{Level: experiments.Level, Config: cote.Parallel4})
	if !errors.Is(err, cote.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	gen, _ := oc.Progress()
	if gen <= 100 {
		t.Errorf("generated counter %d; expected it to pass the budget before tripping", gen)
	}
}

// TestProgressMeter: with a predicted total installed, OnProgress observes a
// monotonically nondecreasing generated count and the final count matches the
// compile's own counters (join plans only; access/enforcer plans tick outside
// the per-join hook). Serial compile: with parallel workers the hook fires
// concurrently and per-call ordering is not part of the contract.
func TestProgressMeter(t *testing.T) {
	q := heavyQuery()
	var last int64
	mono := true
	oc := cote.NewExecContext(context.Background()).WithHooks(cote.ExecHooks{
		OnProgress: func(generated, predicted int64) {
			if generated < last {
				mono = false
			}
			last = generated
		},
	})
	oc.SetPredictedPlans(1_000_000)
	res, err := cote.OptimizeWith(oc, q.Block, cote.OptimizeOptions{Level: experiments.Level, Config: cote.Parallel4})
	if err != nil {
		t.Fatal(err)
	}
	if !mono {
		t.Error("OnProgress saw a decreasing generated count")
	}
	if last == 0 {
		t.Fatal("OnProgress never fired")
	}
	var joinGen int64
	for _, n := range res.TotalCounters().Generated {
		joinGen += int64(n)
	}
	gen, pred := oc.Progress()
	if pred != 1_000_000 {
		t.Errorf("predicted = %d, want the installed 1000000", pred)
	}
	if gen != joinGen {
		t.Errorf("final generated counter %d, compile generated %d join plans", gen, joinGen)
	}
}
