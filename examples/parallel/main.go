// Parallel estimation: the shared-nothing version of the estimator, where
// plans carry both an order and a partition property. The paper's Section
// 3.4 keeps one interesting-property list per type and multiplies their
// lengths instead of enumerating (order, partition) combinations; this
// example shows the accuracy/space trade-off against the compound-list
// alternative, plus the Section 6.2 optimizer-memory estimate.
package main

import (
	"fmt"

	"cote"
)

func main() {
	w := cote.Real1Workload(4) // the paper's 4-logical-node setup

	fmt.Printf("%-12s %9s %9s %9s %10s %10s\n",
		"query", "actual", "separate", "compound", "est time", "mem bound")
	for _, q := range w.Queries {
		res, err := cote.Optimize(q.Block, cote.OptimizeOptions{
			Level: cote.LevelHighInner2, Config: cote.Parallel4,
		})
		if err != nil {
			panic(err)
		}
		sep, err := cote.EstimatePlans(q.Block, cote.EstimateOptions{
			Level: cote.LevelHighInner2, Config: cote.Parallel4,
		})
		if err != nil {
			panic(err)
		}
		comp, err := cote.EstimatePlans(q.Block, cote.EstimateOptions{
			Level: cote.LevelHighInner2, Config: cote.Parallel4,
			ListMode: cote.CompoundLists,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s %9d %9d %9d %10v %9dB\n",
			q.Name,
			cote.ActualPlanCounts(res).Total(),
			sep.Counts.Total(), comp.Counts.Total(),
			sep.Elapsed, sep.PredictedMemoryBytes)
	}
	fmt.Println("\nseparate lists are the paper's choice: cheaper to maintain, slightly")
	fmt.Println("less exact than compound (order, partition) vectors; both track the")
	fmt.Println("actual generated-plan counts of the parallel optimizer.")
}
