// Quickstart: parse one SQL query, optimize it for real, then ask the
// compilation-time estimator for the same query and compare — the minimal
// end-to-end tour of the public API.
package main

import (
	"fmt"

	"cote"
)

func main() {
	// A schema with statistics. Built-in catalogs (TPC-H, two warehouse
	// schemas) are available too; this builds one from scratch.
	cat := cote.NewCatalogBuilder("shop").
		Table("orders", 1_000_000).
		Column("o_id", 1_000_000).
		Column("o_cust", 50_000).
		Column("o_total", 800_000).
		Index("pk_orders", true, "o_id").
		Table("customer", 50_000).
		Column("c_id", 50_000).
		Column("c_city", 500).
		Index("pk_customer", true, "c_id").
		Table("lineitem", 4_000_000).
		Column("l_order", 1_000_000).
		Column("l_price", 900_000).
		Build()

	q, err := cote.ParseSQL(`
		SELECT c_city, SUM(l_price)
		FROM orders, customer, lineitem
		WHERE o_cust = c_id AND l_order = o_id AND c_city = 'OSLO'
		GROUP BY c_city
		ORDER BY c_city`, cat)
	if err != nil {
		panic(err)
	}

	// Real optimization: dynamic programming over all bushy join trees.
	res, err := cote.Optimize(q, cote.OptimizeOptions{Level: cote.LevelHigh})
	if err != nil {
		panic(err)
	}
	fmt.Println("plan:", res.Plan)
	fmt.Printf("compilation took %v; plans generated: MGJN %d, NLJN %d, HSJN %d\n",
		res.Elapsed,
		cote.ActualPlanCounts(res).ByMethod[cote.MGJN],
		cote.ActualPlanCounts(res).ByMethod[cote.NLJN],
		cote.ActualPlanCounts(res).ByMethod[cote.HSJN])

	// The estimator: same enumerator, no plan generation.
	est, err := cote.EstimatePlans(q, cote.EstimateOptions{Level: cote.LevelHigh})
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimator took %v (%.1f%% of compilation) and predicted plans: MGJN %d, NLJN %d, HSJN %d\n",
		est.Elapsed, 100*est.Elapsed.Seconds()/res.Elapsed.Seconds(),
		est.Counts.ByMethod[cote.MGJN],
		est.Counts.ByMethod[cote.NLJN],
		est.Counts.ByMethod[cote.HSJN])
}
