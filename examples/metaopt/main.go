// Meta-optimizer (Figure 1 of the paper): compile a query at the cheap
// greedy level, obtain the execution-cost estimate E of the plan it found,
// ask the compilation-time estimator for the high level's cost C, and
// recompile at the high level only when C < E — "if C is larger than E,
// there is no point in further optimization since the query can complete
// execution by the time high-level optimization finishes".
//
// The example runs two contrasting queries: a heavy analytical join where
// high-level optimization clearly pays, and a trivially selective lookup
// whose execution is so fast that recompiling would cost more than running
// the greedy plan.
package main

import (
	"fmt"

	"cote"
)

func main() {
	cat := cote.TPCHCatalog(1, 1)

	// Calibrate the compile-time model.
	var training []cote.TrainingPoint
	for _, q := range cote.StarWorkload(1).Queries {
		res, err := cote.Optimize(q.Block, cote.OptimizeOptions{Level: cote.LevelHighInner2})
		if err != nil {
			panic(err)
		}
		training = append(training, cote.TrainingPointFrom(res))
	}
	model, err := cote.Calibrate(training)
	if err != nil {
		panic(err)
	}

	heavy := cote.MustParseSQL(`
		SELECT n_name, o_orderdate, SUM(l_extendedprice)
		FROM part, supplier, lineitem, partsupp, orders, nation
		WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
		  AND ps_partkey = l_partkey AND p_partkey = l_partkey
		  AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
		GROUP BY n_name, o_orderdate`, cat)

	// The paper's "complex yet very selective" case: eight joins over tiny
	// dimension tables. Compiling the 8-way search space costs more than
	// just running the greedy plan, so the meta-optimizer should refuse to
	// recompile.
	light := cote.MustParseSQL(`
		SELECT n1.n_name
		FROM nation n1, region r1, nation n2, region r2,
		     nation n3, region r3, nation n4, region r4
		WHERE n1.n_regionkey = r1.r_regionkey AND n2.n_regionkey = r2.r_regionkey
		  AND n3.n_regionkey = r3.r_regionkey AND n4.n_regionkey = r4.r_regionkey
		  AND n1.n_nationkey = n2.n_nationkey AND n2.n_nationkey = n3.n_nationkey
		  AND n3.n_nationkey = n4.n_nationkey
		  AND n1.n_name = 'FRANCE'`, cat)

	mop := &cote.MetaOptimizer{High: cote.LevelHighInner2, Model: model}
	for _, tc := range []struct {
		name string
		q    *cote.Query
	}{{"heavy 6-way analytical join", heavy}, {"complex but selective 8-way lookup", light}} {
		res, dec, err := mop.Run(tc.q)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s:\n", tc.name)
		fmt.Printf("  E (greedy plan exec estimate) = %v\n", dec.LowPlanExecCost)
		fmt.Printf("  C (high-level compile estimate) = %v\n", dec.HighCompileEstimate)
		if dec.Recompiled {
			fmt.Printf("  -> C < E: recompiled at %v; final plan cost %v (was %v)\n",
				dec.FinalLevel, dec.FinalPlanCost, dec.LowPlanExecCost)
		} else {
			fmt.Printf("  -> C >= E: kept the greedy plan (%v)\n", dec.FinalPlanCost)
		}
		fmt.Printf("  meta-optimization total: %v, plan: %s\n\n", dec.TotalElapsed, res.Plan)
	}
}
