// Advisor progress estimation — the paper's workload-analysis motivation
// (Section 1.1): index and materialized-view advisors compile every query of
// a workload, often thousands of them, and can run for hours. A calibrated
// compilation-time estimator forecasts the total up front and turns the
// advisor's silence into a progress bar.
//
// This example plays the advisor: it estimates the compile time of the whole
// real2 workload in one cheap pass, then actually compiles the workload,
// reporting predicted-vs-elapsed progress along the way.
package main

import (
	"fmt"
	"time"

	"cote"
)

func main() {
	// Calibrate once per machine on the synthetic workloads.
	fmt.Println("calibrating the time model (star + linear workloads) ...")
	var training []cote.TrainingPoint
	for _, w := range []*cote.Workload{cote.StarWorkload(1), cote.LinearWorkload(1)} {
		for _, q := range w.Queries {
			res, err := cote.Optimize(q.Block, cote.OptimizeOptions{Level: cote.LevelHighInner2})
			if err != nil {
				panic(err)
			}
			training = append(training, cote.TrainingPointFrom(res))
		}
	}
	model, err := cote.Calibrate(training)
	if err != nil {
		panic(err)
	}
	fmt.Printf("model: %v\n\n", model)

	// Phase 1: forecast the whole workload quickly.
	w := cote.Real2Workload(1)
	forecast := make([]time.Duration, len(w.Queries))
	var totalForecast time.Duration
	forecastStart := time.Now()
	for i, q := range w.Queries {
		est, err := cote.EstimatePlans(q.Block, cote.EstimateOptions{
			Level: cote.LevelHighInner2, Model: model,
		})
		if err != nil {
			panic(err)
		}
		forecast[i] = est.PredictedTime
		totalForecast += est.PredictedTime
	}
	fmt.Printf("forecast for %d queries: %v total (forecasting itself took %v)\n\n",
		len(w.Queries), totalForecast, time.Since(forecastStart))

	// Phase 2: the advisor's compile loop, with a live progress estimate.
	fmt.Printf("%-12s %12s %12s %9s\n", "query", "predicted", "actual", "progress")
	var done time.Duration
	var actualTotal time.Duration
	for i, q := range w.Queries {
		res, err := cote.Optimize(q.Block, cote.OptimizeOptions{Level: cote.LevelHighInner2})
		if err != nil {
			panic(err)
		}
		done += forecast[i]
		actualTotal += res.Elapsed
		fmt.Printf("%-12s %12v %12v %8.1f%%\n",
			q.Name, forecast[i], res.Elapsed, 100*done.Seconds()/totalForecast.Seconds())
	}
	fmt.Printf("\nworkload compiled in %v; forecast was %v (%.1f%% off)\n",
		actualTotal, totalForecast,
		100*(totalForecast.Seconds()-actualTotal.Seconds())/actualTotal.Seconds())
}
