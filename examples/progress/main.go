// Live progress estimation: the paper's Section 6 workload-advisor
// application. The COTE prediction becomes the denominator of a progress
// meter, and the optimizer's execution context streams the numerator — the
// accumulated generated-plan count — through a hook while the compile runs.
// The same context carries a deadline: the second part of the example shows
// a 2ms budget cancelling the compile cooperatively mid-enumeration.
package main

import (
	"context"
	"fmt"
	"time"

	"cote"
)

func main() {
	q := cote.Real2Workload(4).Queries[7] // 14 tables and 3 views: the heaviest built-in compile
	opts := cote.OptimizeOptions{Level: cote.LevelHighInner2, Config: cote.Parallel4}

	// The estimator prices the compile first — a fraction of a percent of the
	// real work — to give the meter its total.
	est, err := cote.EstimatePlans(q.Block, cote.EstimateOptions{Level: opts.Level, Config: opts.Config})
	if err != nil {
		panic(err)
	}
	predicted := int64(est.Counts.Total())
	fmt.Printf("query %s: COTE predicts %d generated plans (estimated in %v)\n\n",
		q.Name, predicted, est.Elapsed)

	// Drive the real compile under an execution context, printing each 10%
	// milestone from the progress hook.
	lastDecile := int64(-1)
	oc := cote.NewExecContext(context.Background()).WithHooks(cote.ExecHooks{
		OnProgress: func(generated, total int64) {
			if total <= 0 {
				return
			}
			if d := 10 * generated / total; d > lastDecile {
				lastDecile = d
				fmt.Printf("  %3d%%  (%d / %d plans)\n", 10*d, generated, total)
			}
		},
	})
	oc.SetPredictedPlans(predicted)
	start := time.Now()
	res, err := cote.OptimizeWith(oc, q.Block, opts)
	if err != nil {
		panic(err)
	}
	generated, _ := oc.Progress()
	fmt.Printf("\ncompiled in %v: %d plans generated (prediction off by %+.1f%%)\n",
		time.Since(start).Round(time.Microsecond), generated,
		100*float64(generated-predicted)/float64(predicted))
	fmt.Printf("plan cost %.0f, %d MEMO plans retained\n\n", res.Plan.Cost, res.Blocks[len(res.Blocks)-1].Memo.NumPlans())

	// The same context machinery enforces deadlines: a 2ms budget stops the
	// ~tens-of-ms compile cooperatively at an enumeration checkpoint.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start = time.Now()
	_, err = cote.OptimizeCtx(ctx, q.Block, opts)
	fmt.Printf("with a 2ms deadline: returned after %v with %q\n",
		time.Since(start).Round(time.Microsecond), err)
}
