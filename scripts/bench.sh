#!/usr/bin/env bash
# bench.sh — run the repo benchmarks and gate them against the committed
# baseline (BENCH_cote.json) via cmd/benchjson.
#
#   scripts/bench.sh                 run full suite, compare vs baseline
#   scripts/bench.sh -update         run full suite, rewrite BENCH_cote.json
#   scripts/bench.sh -smoke          one fast iteration per benchmark and a
#                                    structural compare only (what CI runs:
#                                    every baselined benchmark must still
#                                    exist and parse, wall-clock not judged)
#
# Custom b.ReportMetric units (e.g. the headline estimate's deterministic
# "peak-bytes" resource metric) land in each benchmark's "extra" map in
# BENCH_cote.json; `benchjson -delta` reports them alongside ns/op and
# allocs/op.
#
# Environment overrides:
#   COUNT      runs per benchmark, median kept   (default 5; smoke: 1)
#   BENCH      -bench regex                      (default .)
#   TOLERANCE  allowed fractional regression     (default 0.25)
#   BENCH_OUT  also write the parsed benchjson output to this file
#              (smoke/compare modes; CI uploads it as an artifact)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCH="${BENCH:-.}"
TOLERANCE="${TOLERANCE:-0.25}"
BASELINE=BENCH_cote.json

mode=compare
for arg in "$@"; do
  case "$arg" in
    -update) mode=update ;;
    -smoke)  mode=smoke ;;
    *) echo "usage: $0 [-update|-smoke]" >&2; exit 2 ;;
  esac
done

extra=()
if [ "$mode" = smoke ]; then
  COUNT=1
  extra=(-benchtime 1x)
fi

if [ "$mode" != update ] && [ ! -f "$BASELINE" ]; then
  echo "bench.sh: baseline $BASELINE not found — run 'scripts/bench.sh -update' once to record it" >&2
  exit 1
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

echo "== go test -run NONE -bench $BENCH -benchmem -count $COUNT ${extra[*]:-} ." >&2
go test -run NONE -bench "$BENCH" -benchmem -count "$COUNT" "${extra[@]}" . | tee "$out" >&2

emit() {
  # Keep a machine-readable copy of this run next to the pass/fail gate so
  # CI can archive it (and a human can diff two runs) without re-running.
  if [ -n "${BENCH_OUT:-}" ]; then
    go run ./cmd/benchjson < "$out" > "$BENCH_OUT"
    echo "wrote $BENCH_OUT" >&2
  fi
}

case "$mode" in
  update)
    go run ./cmd/benchjson < "$out" > "$BASELINE"
    echo "wrote $BASELINE"
    ;;
  compare)
    emit
    go run ./cmd/benchjson -compare "$BASELINE" -tolerance "$TOLERANCE" < "$out"
    ;;
  smoke)
    emit
    go run ./cmd/benchjson -compare "$BASELINE" -structural < "$out"
    ;;
esac
