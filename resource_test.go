// Resource-accounting integration tests: the durable high-water mark is a
// deterministic property of the query and level — bit-identical across pool
// states, repeated runs and parallelism degrees — and the accounting layer
// itself costs nothing on the estimate hot path. Run with -race: the
// parallel cases double as a data-race check on the shared accountant.
package cote_test

import (
	"context"
	"testing"

	"cote/internal/core"
	"cote/internal/experiments"
	"cote/internal/opt"
	"cote/internal/optctx"
	"cote/internal/testutil"
	"cote/internal/workload"
)

// TestDurablePeakDeterministicAcrossRuns pins the pooled-reuse contract at
// the integration level: recompiling the same query must measure the exact
// same durable peak every time. A MEMO or scratch that carried accounting
// state through the pool (or charged pooled buffers twice) would drift run
// over run.
func TestDurablePeakDeterministicAcrossRuns(t *testing.T) {
	for _, q := range workload.Real1(1).Queries[:4] {
		var first int64
		for run := 0; run < 3; run++ {
			res, err := opt.OptimizeCtx(context.Background(), q.Block, opt.Options{Level: experiments.Level})
			if err != nil {
				t.Fatal(err)
			}
			peak := res.Resources.DurablePeakBytes
			if peak <= 0 {
				t.Fatalf("%s: durable peak = %d, want > 0", q.Name, peak)
			}
			if run == 0 {
				first = peak
			} else if peak != first {
				t.Fatalf("%s: run %d durable peak %d != first run's %d — pooled reuse leaked accounting state",
					q.Name, run, peak, first)
			}
		}
	}
}

// TestParallelDurablePeakMatchesSerial pins the determinism guarantee across
// the parallel DP driver: durable charges happen at canonical commit points,
// so enum.RunParallel must reach the same durable high-water as the serial
// driver at every worker count, on every query. Under -race this also
// exercises the workers' concurrent charging of the shared accountant.
func TestParallelDurablePeakMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel sweep skipped in -short")
	}
	w := workload.Real1(1)
	for _, q := range w.Queries {
		serial, err := opt.OptimizeCtx(context.Background(), q.Block, opt.Options{Level: experiments.Level})
		if err != nil {
			t.Fatal(err)
		}
		want := serial.Resources.DurablePeakBytes
		for _, workers := range []int{2, 4} {
			res, err := opt.OptimizeCtx(context.Background(), q.Block, opt.Options{Level: experiments.Level, Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Resources.DurablePeakBytes; got != want {
				t.Fatalf("%s P=%d: durable peak %d != serial %d", q.Name, workers, got, want)
			}
			// Scratch is allocator-level and excluded from determinism, but it
			// must have been charged: a zero total peak means a worker ran
			// unaccounted.
			if res.Resources.PeakBytes <= res.Resources.DurablePeakBytes {
				t.Fatalf("%s P=%d: total peak %d <= durable peak %d — scratch uncharged",
					q.Name, workers, res.Resources.PeakBytes, res.Resources.DurablePeakBytes)
			}
		}
	}
}

// TestEstimateMeasuredBytesDeterministic pins the estimate path's measured
// durable bytes: same query, same level, same number — with or without an
// execution context attached, across repeated (pooled) runs.
func TestEstimateMeasuredBytesDeterministic(t *testing.T) {
	q := workload.Real2(1).Queries[7]
	base, err := core.EstimatePlans(q.Block, core.Options{Level: experiments.Level})
	if err != nil {
		t.Fatal(err)
	}
	if base.MeasuredPeakBytes <= 0 {
		t.Fatalf("MeasuredPeakBytes = %d, want > 0", base.MeasuredPeakBytes)
	}
	for run := 0; run < 3; run++ {
		est, err := core.EstimatePlansCtx(context.Background(), q.Block, core.Options{Level: experiments.Level})
		if err != nil {
			t.Fatal(err)
		}
		if est.MeasuredPeakBytes != base.MeasuredPeakBytes {
			t.Fatalf("run %d: MeasuredPeakBytes %d != %d", run, est.MeasuredPeakBytes, base.MeasuredPeakBytes)
		}
	}
}

// TestAccountantAddsNoEstimateAllocs is the alloc guard of the accounting
// layer: arming a run accountant on the headline estimate must add zero
// allocations per run — the Accountant is embedded by value in the execution
// context and every charge site is an atomic add.
func TestAccountantAddsNoEstimateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short")
	}
	if testutil.RaceEnabled {
		t.Skip("alloc guard skipped under -race: the race detector makes sync.Pool drop puts at random, so per-run alloc counts jitter")
	}
	q := workload.Real2(1).Queries[7]
	opts := core.Options{Level: experiments.Level}
	oc := optctx.New(context.Background())
	armed := opts
	armed.Exec = oc
	runBare := func() {
		if _, err := core.EstimatePlans(q.Block, opts); err != nil {
			t.Fatal(err)
		}
	}
	runArmed := func() {
		if _, err := core.EstimatePlans(q.Block, armed); err != nil {
			t.Fatal(err)
		}
	}
	// Warm both paths into pool steady state first: sync.Pool growth and
	// eviction otherwise dominate the per-run delta with noise.
	for i := 0; i < 5; i++ {
		runBare()
		runArmed()
	}
	bare := testing.AllocsPerRun(10, runBare)
	accounted := testing.AllocsPerRun(10, runArmed)
	// The execution context itself may cost a constant handful (created once,
	// not per run — but pool jitter leaks through); the guard is that the
	// per-run accounting adds nothing that scales with the query.
	const slack = 2
	if accounted > bare+slack {
		t.Errorf("accounted estimate = %.0f allocs/op vs %.0f bare — the accountant must be alloc-free on the hot path", accounted, bare)
	}
}
