// Command mop demonstrates the paper's Figure 1 meta-optimizer over a
// workload: each query is first compiled at the cheap greedy level; the
// compilation-time estimator then prices high-level optimization, and the
// query is recompiled at the high level only when the predicted compilation
// time is below the (estimated) execution time of the greedy plan.
//
// Usage:
//
//	mop [-workload real1|real2|tpch|star|linear|random] [-nodes 1|4] [-static]
//	    [-timeout 0] [-budget-factor 0] [-model-file f.json] [-calibrate star]
//
// -timeout bounds each query's meta-optimization; -budget-factor aborts a
// recompile whose generated plans overrun the prediction by that factor and
// retries at the next-lower level. The time model comes from -model-file
// when it holds one, else from calibrating on the -calibrate workload; every
// real compilation feeds the online calibrator, and -model-file (when set)
// receives the post-run registry, so repeated runs keep improving the model.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"cote"
	"cote/internal/modelio"
)

func main() {
	wlName := flag.String("workload", "tpch", "workload: real1, real2, tpch, star, linear, random")
	nodes := flag.Int("nodes", 1, "logical nodes (1 or 4)")
	static := flag.Bool("static", false, "treat queries as static (repeatedly executed): 10x compile budget")
	timeout := flag.Duration("timeout", 0, "per-query meta-optimization deadline (0 = none)")
	budgetFactor := flag.Float64("budget-factor", 0, "abort+downgrade a recompile overrunning the predicted plan count by this factor (0 = off)")
	memBudget := flag.Int64("mem-budget", 0, "per-rung peak optimizer memory budget in bytes: skip rungs predicted over it, abort rungs measured over it (0 = off)")
	var mf modelio.Flags
	mf.Register(flag.CommandLine, "star")
	flag.Parse()

	var w *cote.Workload
	switch *wlName {
	case "real1":
		w = cote.Real1Workload(*nodes)
	case "real2":
		w = cote.Real2Workload(*nodes)
	case "tpch":
		w = cote.TPCHWorkload(*nodes)
	case "star":
		w = cote.StarWorkload(*nodes)
	case "linear":
		w = cote.LinearWorkload(*nodes)
	case "random":
		w = cote.RandomWorkload(42, 12, 10, *nodes)
	default:
		fmt.Fprintf(os.Stderr, "mop: unknown workload %q\n", *wlName)
		os.Exit(1)
	}
	cfg := cote.Serial
	if *nodes > 1 {
		cfg = cote.Parallel4
	}

	model, reg, err := mf.Resolve(*nodes)
	if err != nil {
		fatal(err)
	}
	if model == nil {
		fmt.Fprintln(os.Stderr, "mop: no time model (set -model-file or -calibrate)")
		os.Exit(1)
	}
	fmt.Printf("model (v%d, %s): %v\n\n", reg.Version(), reg.Current().Source, model)

	// The registry supplies the model per run and the calibrator observes
	// every real compilation, so a drifting model heals mid-workload.
	cal := cote.NewCalibrator(reg, cote.CalibratorConfig{})
	mop := &cote.MetaOptimizer{
		High:         cote.LevelHighInner2,
		Config:       cfg,
		Models:       reg,
		Observer:     cal,
		Static:       *static,
		BudgetFactor: *budgetFactor,
		MemBudget:    *memBudget,
	}

	fmt.Printf("%-16s %14s %14s %10s %18s %8s %12s\n", "query", "E (greedy exec)", "C (est compile)", "recompile", "final plan cost", "aborts", "peak bytes")
	recompiled, aborted, memLimited := 0, 0, 0
	for _, q := range w.Queries {
		ctx := context.Background()
		cancel := func() {}
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		_, dec, err := mop.RunCtx(ctx, q.Block)
		cancel()
		if err != nil {
			fatal(err)
		}
		mark := "no"
		if dec.Recompiled {
			mark = "YES"
			recompiled++
		}
		aborted += len(dec.AbortedLevels)
		memLimited += len(dec.MemSkippedLevels) + len(dec.MemAbortedLevels)
		fmt.Printf("%-16s %14v %14v %10s %18v %8d %12d\n",
			q.Name, dec.LowPlanExecCost, dec.HighCompileEstimate, mark, dec.FinalPlanCost, len(dec.AbortedLevels), dec.FinalPeakBytes)
	}
	fmt.Printf("\nrecompiled %d of %d queries at the high level", recompiled, len(w.Queries))
	if *budgetFactor > 0 {
		fmt.Printf("; %d level(s) budget-aborted", aborted)
	}
	if *memBudget > 0 {
		fmt.Printf("; %d level(s) memory-limited", memLimited)
	}
	fmt.Println()
	if st := cal.Stats(); st.Recalibrations > 0 {
		fmt.Printf("online calibration refitted the model %d time(s); now v%d (drift %.2f)\n",
			st.Recalibrations, reg.Version(), st.Drift)
	}
	if err := mf.Save(reg); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mop: %v\n", err)
	os.Exit(1)
}
