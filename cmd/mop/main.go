// Command mop demonstrates the paper's Figure 1 meta-optimizer over a
// workload: each query is first compiled at the cheap greedy level; the
// compilation-time estimator then prices high-level optimization, and the
// query is recompiled at the high level only when the predicted compilation
// time is below the (estimated) execution time of the greedy plan.
//
// Usage:
//
//	mop [-workload real1|real2|tpch|star|linear|random] [-nodes 1|4] [-static]
package main

import (
	"flag"
	"fmt"
	"os"

	"cote"
)

func main() {
	wlName := flag.String("workload", "tpch", "workload: real1, real2, tpch, star, linear, random")
	nodes := flag.Int("nodes", 1, "logical nodes (1 or 4)")
	static := flag.Bool("static", false, "treat queries as static (repeatedly executed): 10x compile budget")
	flag.Parse()

	var w *cote.Workload
	switch *wlName {
	case "real1":
		w = cote.Real1Workload(*nodes)
	case "real2":
		w = cote.Real2Workload(*nodes)
	case "tpch":
		w = cote.TPCHWorkload(*nodes)
	case "star":
		w = cote.StarWorkload(*nodes)
	case "linear":
		w = cote.LinearWorkload(*nodes)
	case "random":
		w = cote.RandomWorkload(42, 12, 10, *nodes)
	default:
		fmt.Fprintf(os.Stderr, "mop: unknown workload %q\n", *wlName)
		os.Exit(1)
	}
	cfg := cote.Serial
	if *nodes > 1 {
		cfg = cote.Parallel4
	}

	// Calibrate the time model on the synthetic workloads.
	fmt.Println("calibrating the compilation-time model on the star workload ...")
	var training []cote.TrainingPoint
	for _, q := range cote.StarWorkload(*nodes).Queries {
		res, err := cote.Optimize(q.Block, cote.OptimizeOptions{Level: cote.LevelHighInner2, Config: cfg})
		if err != nil {
			fatal(err)
		}
		training = append(training, cote.TrainingPointFrom(res))
	}
	model, err := cote.Calibrate(training)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model: %v\n\n", model)

	mop := &cote.MetaOptimizer{
		High:   cote.LevelHighInner2,
		Config: cfg,
		Model:  model,
		Static: *static,
	}

	fmt.Printf("%-16s %14s %14s %10s %18s\n", "query", "E (greedy exec)", "C (est compile)", "recompile", "final plan cost")
	recompiled := 0
	for _, q := range w.Queries {
		_, dec, err := mop.Run(q.Block)
		if err != nil {
			fatal(err)
		}
		mark := "no"
		if dec.Recompiled {
			mark = "YES"
			recompiled++
		}
		fmt.Printf("%-16s %14v %14v %10s %18v\n",
			q.Name, dec.LowPlanExecCost, dec.HighCompileEstimate, mark, dec.FinalPlanCost)
	}
	fmt.Printf("\nrecompiled %d of %d queries at the high level\n", recompiled, len(w.Queries))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mop: %v\n", err)
	os.Exit(1)
}
