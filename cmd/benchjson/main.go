// Command benchjson converts `go test -bench` output into a stable JSON
// document and compares such documents against a committed baseline — the
// repo's benchmark-regression harness (driven by scripts/bench.sh).
//
// Emit mode (default) reads benchmark output on stdin and writes JSON:
//
//	go test -run NONE -bench . -benchmem -count 5 . | benchjson > BENCH_cote.json
//
// With -count > 1 the per-benchmark median of each metric is kept, which is
// what makes the numbers comparable run-to-run. The document carries no
// timestamps or host identifiers, so regenerating it on an unchanged tree
// produces a minimal diff.
//
// Compare mode checks a new run (stdin, bench output or JSON) against a
// baseline JSON file:
//
//	go test -run NONE -bench . -benchmem -count 5 . | benchjson -compare BENCH_cote.json -tolerance 0.25
//
// It fails (exit 1) when ns/op or allocs/op of any shared benchmark
// regressed by more than the tolerance, and reports benchmarks that
// disappeared. -structural skips the numeric check — benchmarks must merely
// all still exist and produce parseable output, the cheap smoke mode CI runs
// on every push (CI machines are too noisy for wall-clock gates).
//
// Delta mode renders a benchstat-style per-benchmark change table against a
// baseline, purely informational (always exit 0 on valid input):
//
//	go test -run NONE -bench . -benchmem . | benchjson -delta BENCH_cote.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's median measurements. NsPerOp and AllocsPerOp
// get dedicated fields (they are what the harness gates on); every custom
// b.ReportMetric unit lands in Extra.
type Metrics struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Doc is the persisted benchmark document.
type Doc struct {
	// Note reminds readers how to regenerate the file.
	Note       string             `json:"note"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	compare := flag.String("compare", "", "baseline JSON to compare stdin against (default: emit JSON)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression of ns/op and allocs/op")
	structural := flag.Bool("structural", false, "compare mode: only require every baseline benchmark to still exist")
	delta := flag.String("delta", "", "baseline JSON to print an informational change table against (never fails)")
	flag.Parse()

	doc, err := parseInput(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	if *delta != "" {
		base, err := readDoc(*delta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(2)
		}
		printDelta(os.Stdout, base, doc, *delta)
		return
	}
	if *compare == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		return
	}

	base, err := readDoc(*compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
		os.Exit(2)
	}
	failures := compareDocs(base, doc, *tolerance, *structural)
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	mode := "tolerance"
	if *structural {
		mode = "structural"
	}
	fmt.Printf("benchjson: %d benchmarks OK against %s (%s mode)\n", len(base.Benchmarks), *compare, mode)
}

// parseInput accepts either raw `go test -bench` output or an already
// emitted JSON document (so compare mode works on committed files too).
func parseInput(r io.Reader) (*Doc, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var doc Doc
		if err := json.Unmarshal([]byte(trimmed), &doc); err != nil {
			return nil, fmt.Errorf("JSON input: %w", err)
		}
		return &doc, nil
	}
	return parseBenchOutput(strings.NewReader(trimmed))
}

// parseBenchOutput collects every Benchmark line; repeated names (from
// -count) are reduced to their per-metric median.
func parseBenchOutput(r io.Reader) (*Doc, error) {
	samples := map[string]map[string][]float64{} // name -> unit -> values
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, units, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		m := samples[name]
		if m == nil {
			m = map[string][]float64{}
			samples[name] = m
		}
		for unit, v := range units {
			m[unit] = append(m[unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	doc := &Doc{
		Note:       "benchmark baseline; regenerate with scripts/bench.sh -update",
		Benchmarks: map[string]Metrics{},
	}
	for name, units := range samples {
		var met Metrics
		for unit, vals := range units {
			v := median(vals)
			switch unit {
			case "ns/op":
				met.NsPerOp = v
			case "B/op":
				met.BytesPerOp = v
			case "allocs/op":
				met.AllocsPerOp = v
			default:
				if met.Extra == nil {
					met.Extra = map[string]float64{}
				}
				met.Extra[unit] = v
			}
		}
		doc.Benchmarks[name] = met
	}
	return doc, nil
}

// parseBenchLine splits "BenchmarkX-8  84  15513280 ns/op  444897 B/op ..."
// into the trimmed name and its unit->value pairs.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so documents from different machines use
	// the same keys.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false // not an iteration count: some other line
	}
	units := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		units[fields[i+1]] = v
	}
	if len(units) == 0 {
		return "", nil, false
	}
	return name, units, true
}

func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

func readDoc(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc Doc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// compareDocs returns one message per violated constraint.
func compareDocs(base, cur *Doc, tolerance float64, structural bool) []string {
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline, missing from this run", name))
			continue
		}
		if structural {
			continue
		}
		if worse(b.NsPerOp, c.NsPerOp, tolerance) {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				name, b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), tolerance*100))
		}
		if worse(b.AllocsPerOp, c.AllocsPerOp, tolerance) {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				name, b.AllocsPerOp, c.AllocsPerOp, 100*(c.AllocsPerOp/b.AllocsPerOp-1), tolerance*100))
		}
	}
	return failures
}

// printDelta renders the benchstat-style informational table: one row per
// benchmark present in either document, with the ns/op and allocs/op change
// as signed percentages. New and vanished benchmarks are called out instead
// of silently dropped. Single-shot CI runs are noisy, so the table is for
// eyeballs and artifact diffs, never a gate.
func printDelta(w io.Writer, base, cur *Doc, basePath string) {
	names := map[string]bool{}
	for name := range base.Benchmarks {
		names[name] = true
	}
	for name := range cur.Benchmarks {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "benchmark deltas vs %s (informational; single-run medians, expect noise)\n", basePath)
	fmt.Fprintf(w, "%-44s %14s %14s %9s %11s %11s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs", "peak-bytes")
	for _, name := range sorted {
		b, inBase := base.Benchmarks[name]
		c, inCur := cur.Benchmarks[name]
		switch {
		case !inCur:
			fmt.Fprintf(w, "%-44s %14.0f %14s %9s %11s %11s\n", name, b.NsPerOp, "-", "gone", "", "")
		case !inBase:
			fmt.Fprintf(w, "%-44s %14s %14.0f %9s %11s %11s\n", name, "-", c.NsPerOp, "new", "", "")
		default:
			fmt.Fprintf(w, "%-44s %14.0f %14.0f %s %11s %11s\n",
				name, b.NsPerOp, c.NsPerOp, deltaPct(b.NsPerOp, c.NsPerOp), deltaPct(b.AllocsPerOp, c.AllocsPerOp),
				deltaPct(b.Extra["peak-bytes"], c.Extra["peak-bytes"]))
		}
	}
}

// deltaPct formats a signed relative change, or "~" when either side is
// unmeasured.
func deltaPct(base, cur float64) string {
	if base <= 0 || cur <= 0 {
		return fmt.Sprintf("%9s", "~")
	}
	return fmt.Sprintf("%+8.1f%%", 100*(cur/base-1))
}

// worse reports whether cur regressed past the tolerance relative to base.
// Unmeasured metrics (zero in either document) never fail.
func worse(base, cur, tolerance float64) bool {
	if base <= 0 || cur <= 0 {
		return false
	}
	return cur > base*(1+tolerance)
}
