// Command cotebench regenerates every table and figure of the paper's
// evaluation on this machine. Each figure id selects one experiment; "all"
// runs the full suite in paper order. Output is plain text, one table per
// figure, with the paper's reported numbers quoted for comparison where the
// paper gives them.
//
// Usage:
//
//	cotebench [-fig all|2|4a|4b|4c|5a|5d|5g|6a|6b|6c|6d|6e|6f|ct|joinbaseline|pilot|mem|memfig|piggyback|ablations|parest|enumscan|calib] [-seed N] [-timeout 0] [-model-file f.json]
//
// The calib figure replays a deterministic workload through the online
// calibration loop, showing predicted/actual convergence from a 4x
// mis-scaled model; with -model-file the converged registry is persisted.
//
// -timeout bounds the whole suite: the deadline is checked between figures
// and inside the repeated-compile loops, so an overrunning run stops with a
// clear error instead of hanging a CI job.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"cote/internal/calib"
	"cote/internal/core"
	"cote/internal/experiments"
	"cote/internal/fingerprint"
	"cote/internal/modelio"
	"cote/internal/opt"
	"cote/internal/props"
	"cote/internal/service"
	"cote/internal/stats"
	"cote/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure/table id to regenerate, or 'all'")
	seed := flag.Int64("seed", 42, "seed of the random workload generator")
	timeout := flag.Duration("timeout", 0, "deadline for the whole suite (0 = none)")
	var mf modelio.Flags
	mf.Register(flag.CommandLine, "")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	s := newSuite(*seed, ctx)
	s.mf = &mf
	ids := strings.Split(*fig, ",")
	if *fig == "all" {
		ids = []string{"2", "4a", "4b", "4c", "5a", "5d", "5g", "6a", "6b", "6c", "6d", "6e", "6f",
			"ct", "joinbaseline", "pilot", "mem", "memfig", "piggyback", "ablations", "pipeline", "cache", "parallel",
			"parest", "fingerprint", "enumscan", "calib"}
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "cotebench: suite timeout before figure %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := s.run(strings.TrimSpace(id)); err != nil {
			fmt.Fprintf(os.Stderr, "cotebench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// suite caches workloads and calibrated models across figures.
type suite struct {
	seed      int64
	ctx       context.Context // bounds the whole suite (-timeout)
	workloads map[string]*workload.Workload
	models    map[string]*core.TimeModel // "s" and "p"
	mf        *modelio.Flags             // -model-file persistence for the calib figure
}

func newSuite(seed int64, ctx context.Context) *suite {
	return &suite{
		seed:      seed,
		ctx:       ctx,
		workloads: map[string]*workload.Workload{},
		models:    map[string]*core.TimeModel{},
	}
}

// wl returns (and caches) a workload by paper name.
func (s *suite) wl(name string) *workload.Workload {
	if w, ok := s.workloads[name]; ok {
		return w
	}
	var w *workload.Workload
	switch name {
	case "linear_s":
		w = workload.Linear(1)
	case "linear_p":
		w = workload.Linear(4)
	case "star_s":
		w = workload.Star(1)
	case "star_p":
		w = workload.Star(4)
	case "random_s":
		w = workload.Random(s.seed, 12, 10, 1)
	case "random_p":
		w = workload.Random(s.seed, 12, 10, 4)
	case "real1_s":
		w = workload.Real1(1)
	case "real1_p":
		w = workload.Real1(4)
	case "real2_s":
		w = workload.Real2(1)
	case "real2_p":
		w = workload.Real2(4)
	case "tpch_s":
		w = workload.TPCH(1)
	case "tpch_p":
		w = workload.TPCH(4)
	case "clique_s":
		w = workload.Clique(1)
	case "clique_p":
		w = workload.Clique(4)
	default:
		panic("unknown workload " + name)
	}
	s.workloads[name] = w
	return w
}

// model returns (and caches) the calibrated time model for the serial ("s")
// or parallel ("p") version. Training uses the synthetic workloads plus the
// random workload, holding the evaluation's real workloads out.
func (s *suite) model(version string) (*core.TimeModel, error) {
	if m, ok := s.models[version]; ok {
		return m, nil
	}
	var training []*workload.Workload
	if version == "s" {
		training = []*workload.Workload{s.wl("linear_s"), s.wl("star_s"), s.wl("random_s")}
	} else {
		training = []*workload.Workload{s.wl("linear_p"), s.wl("star_p"), s.wl("random_p")}
	}
	m, err := experiments.TrainModel(training)
	if err != nil {
		return nil, err
	}
	s.models[version] = m
	fmt.Printf("## calibrated %s model: %v\n\n", version, m)
	return m, nil
}

func (s *suite) run(id string) error {
	switch id {
	case "2":
		return s.fig2()
	case "4a":
		return s.fig4(s.wl("linear_s"))
	case "4b":
		return s.fig4(s.wl("real2_s"))
	case "4c":
		return s.fig4(s.wl("real1_p"))
	case "5a":
		return s.fig5(s.wl("star_s"))
	case "5d":
		return s.fig5(s.wl("random_p"))
	case "5g":
		return s.fig5(s.wl("real1_p"))
	case "6a":
		return s.fig6(s.wl("star_s"))
	case "6b":
		return s.fig6(s.wl("real1_s"))
	case "6c":
		return s.fig6(s.wl("real2_s"))
	case "6d":
		return s.fig6(s.wl("tpch_p"))
	case "6e":
		return s.fig6(s.wl("random_p"))
	case "6f":
		return s.fig6(s.wl("real1_p"))
	case "ct":
		return s.ctRatios()
	case "joinbaseline":
		return s.joinBaseline()
	case "pilot":
		return s.pilot()
	case "mem":
		return s.memory()
	case "memfig":
		return s.memFig()
	case "piggyback":
		return s.piggyback()
	case "ablations":
		return s.ablations()
	case "pipeline":
		return s.pipeline()
	case "cache":
		return s.cache()
	case "parallel":
		return s.parallel()
	case "parest":
		return s.parEst()
	case "fingerprint":
		return s.fingerprint()
	case "enumscan":
		return s.enumScan()
	case "calib":
		return s.calibration()
	}
	return fmt.Errorf("unknown figure id %q", id)
}

// enumScan measures the connectivity-indexed candidate scan against the
// naive size-class cross-product scan on the evaluation workloads: per
// workload, total enumerated joins, partner slots visited vs skipped by the
// index, the skip fraction, and the best-of-three estimation wall times of
// both modes. The two modes are asserted to agree on every join total —
// the index is a pure scan-order optimization, never a search-space change.
func (s *suite) enumScan() error {
	fmt.Println("=== Extension: connectivity-indexed join enumeration ===")
	fmt.Println("(skipped = size-class partner slots the adjacency index proved irrelevant without visiting)")
	fmt.Printf("%-10s %8s %9s %9s %7s %12s %12s %8s\n",
		"workload", "joins", "visited", "skipped", "skip%", "naive", "indexed", "speedup")
	for _, name := range []string{"linear_s", "star_s", "real1_s", "real2_s", "tpch_s"} {
		w := s.wl(name)
		var joins, visited, skipped int
		var naiveT, idxT time.Duration
		for _, mode := range []bool{true, false} {
			opts := core.Options{Level: experiments.Level, NaiveScan: mode}
			var modeJoins, modePairs, modeVisited, modeSkipped int
			best := time.Duration(1<<63 - 1)
			for rep := 0; rep < 3; rep++ {
				if err := s.ctx.Err(); err != nil {
					return err
				}
				modeJoins, modePairs, modeVisited, modeSkipped = 0, 0, 0, 0
				t0 := time.Now()
				for _, q := range w.Queries {
					est, err := core.EstimatePlansCtx(s.ctx, q.Block, opts)
					if err != nil {
						return err
					}
					modeJoins += est.Joins
					modePairs += est.Pairs
					modeVisited += est.CandidatesVisited
					modeSkipped += est.CandidatesSkipped
				}
				if el := time.Since(t0); el < best {
					best = el
				}
			}
			if mode {
				naiveT, joins = best, modeJoins
				if modeSkipped != 0 {
					return fmt.Errorf("%s: naive scan reported %d skipped slots", name, modeSkipped)
				}
				visited = modeVisited // the full cross-product work
			} else {
				idxT = best
				if modeJoins != joins {
					return fmt.Errorf("%s: indexed scan enumerated %d joins, naive %d", name, modeJoins, joins)
				}
				if modeVisited+modeSkipped != visited {
					return fmt.Errorf("%s: visited %d + skipped %d != naive %d", name, modeVisited, modeSkipped, visited)
				}
				visited, skipped = modeVisited, modeSkipped
				_ = modePairs
			}
		}
		skipPct := 0.0
		if visited+skipped > 0 {
			skipPct = 100 * float64(skipped) / float64(visited+skipped)
		}
		fmt.Printf("%-10s %8d %9d %9d %6.1f%% %12v %12v %7.2fx\n",
			name, joins, visited, skipped, skipPct,
			naiveT.Round(time.Microsecond), idxT.Round(time.Microsecond),
			float64(naiveT)/float64(idxT))
	}
	fmt.Println("(join totals verified identical between the two scan modes on every workload)")
	fmt.Println()
	return nil
}

// calibration demonstrates the online calibration loop: starting from a
// deliberately 4x mis-scaled model, a deterministic workload replay (plan
// counts from the estimator, durations synthesized from the true model, so
// no wall-clock noise) drives the drift detector past its threshold, the
// recalibrator refits over the observation window, and the registry
// version advances while held-out prediction error collapses.
func (s *suite) calibration() error {
	trueModel, err := s.model("s")
	if err != nil {
		return err
	}
	bad := *trueModel
	for i := range bad.C {
		bad.C[i] *= 4
	}
	bad.C0 *= 4

	reg := calib.NewRegistry(0)
	reg.Install(&bad, "seed", 0, 0)
	cal := calib.NewCalibrator(reg, calib.Config{})

	type sample struct {
		counts core.PlanCounts
		level  opt.Level
		fp     fingerprint.FP
	}
	collect := func(names []string) ([]sample, error) {
		var out []sample
		for _, name := range names {
			for _, q := range s.wl(name).Queries {
				for _, level := range []opt.Level{opt.LevelHighInner2, opt.LevelMediumLeftDeep} {
					est, err := core.EstimatePlansCtx(s.ctx, q.Block, core.Options{Level: level})
					if err != nil {
						return nil, err
					}
					out = append(out, sample{est.Counts, level, fingerprint.Of(q.Block)})
				}
			}
		}
		return out, nil
	}
	replay, err := collect([]string{"linear_s", "random_s"})
	if err != nil {
		return err
	}
	heldOut, err := collect([]string{"real1_s"})
	if err != nil {
		return err
	}
	heldOutErr := func() float64 {
		m := reg.CurrentModel()
		var sum float64
		for _, h := range heldOut {
			sum += stats.RelErr(m.Predict(h.counts).Seconds(), trueModel.Predict(h.counts).Seconds())
		}
		return sum / float64(len(heldOut))
	}

	fmt.Println("=== Extension: online calibration convergence ===")
	fmt.Printf("seed model is the true model with every constant scaled 4x; %d replay samples/round, %d held-out queries (real1_s)\n",
		len(replay), len(heldOut))
	fmt.Printf("%-6s %6s %8s %9s %8s %8s %14s\n", "round", "obs", "drift", "degraded", "refits", "version", "held-out err")
	fmt.Printf("%-6s %6d %8s %9v %8d %8d %13.1f%%\n", "start", 0, "-", false, 0, reg.Version(), heldOutErr()*100)
	for round := 1; round <= 3; round++ {
		for _, sm := range replay {
			if err := s.ctx.Err(); err != nil {
				return err
			}
			var predicted time.Duration
			if m := reg.CurrentModel(); m != nil {
				predicted = m.Predict(sm.counts)
			}
			cal.ObserveCompile(core.CompileObservation{
				Counts:      sm.counts,
				Level:       sm.level,
				Fingerprint: sm.fp,
				Predicted:   predicted,
				Actual:      trueModel.Predict(sm.counts),
			})
		}
		st := cal.Stats()
		fmt.Printf("%-6d %6d %7.2f%% %9v %8d %8d %13.1f%%\n",
			round, st.Observations, st.Drift*100, st.Degraded, st.Recalibrations, reg.Version(), heldOutErr()*100)
	}
	if v, ok := reg.Get(1); ok {
		fmt.Printf("v1 (%s) still retrievable for rollback: %v\n", v.Source, v.Model)
	}
	if s.mf != nil && s.mf.ModelFile != "" {
		if err := s.mf.Save(reg); err != nil {
			return err
		}
		fmt.Printf("registry (v%d) persisted to %s\n", reg.Version(), s.mf.ModelFile)
	}
	fmt.Println()
	return nil
}

// fingerprint demonstrates the cross-query memoization layer on real
// workloads: every query is estimated cold, re-estimated warm through the
// fingerprint cache (an LRU hit, zero enumeration), and then requested by
// several concurrent callers through the singleflight estimate cache — one
// enumeration total, its cost amortized across all of them.
func (s *suite) fingerprint() error {
	const callers = 4
	fmt.Println("=== Extension: structural fingerprint memoization ===")
	fmt.Printf("(warm = repeat estimate via cache hit; shared = %d concurrent callers, singleflight, per-caller amortized)\n", callers)
	fmt.Printf("%-16s %12s %12s %12s %10s\n", "query", "cold", "warm", "shared", "speedup")
	opts := core.Options{Level: experiments.Level}
	for _, name := range []string{"real1_s", "tpch_s"} {
		w := s.wl(name)
		for _, q := range w.Queries {
			if err := s.ctx.Err(); err != nil {
				return err
			}
			cache := core.NewFingerprintCache(16)
			t0 := time.Now()
			if _, _, err := cache.EstimatePlansCtx(s.ctx, q.Block, opts); err != nil {
				return err
			}
			cold := time.Since(t0)
			t0 = time.Now()
			_, hit, err := cache.EstimatePlans(q.Block, opts)
			if err != nil {
				return err
			}
			if !hit {
				return fmt.Errorf("%s: repeat estimate missed the fingerprint cache", q.Name)
			}
			warm := time.Since(t0)
			shared, err := s.sharedFlight(q, opts, callers)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s %12v %12v %12v %9.0fx\n",
				w.Name+"/"+q.Name, cold.Round(time.Microsecond), warm.Round(time.Microsecond),
				shared.Round(time.Microsecond), float64(cold)/float64(warm))
		}
	}
	fmt.Println("(every warm and shared request returned the cold run's exact plan counts)")
	fmt.Println()
	return nil
}

// sharedFlight fires callers concurrent estimates of the same structure at an
// empty singleflight cache and returns the per-caller amortized wall time,
// verifying that exactly one enumeration ran.
func (s *suite) sharedFlight(q workload.Query, opts core.Options, callers int) (time.Duration, error) {
	sf := service.NewEstimateCache(4)
	key := service.EstimateKey{FP: fingerprint.Of(q.Block), Level: opts.Level}
	var runs atomic.Int64
	run := func() (*core.Estimate, error) {
		runs.Add(1)
		canon, _, err := fingerprint.Canonical(q.Block)
		if err != nil {
			return nil, err
		}
		return core.EstimatePlans(canon, opts)
	}
	errs := make(chan error, callers)
	t0 := time.Now()
	for i := 0; i < callers; i++ {
		go func() {
			_, _, _, err := sf.Do(s.ctx, key, run)
			errs <- err
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	wall := time.Since(t0)
	if n := runs.Load(); n != 1 {
		return 0, fmt.Errorf("%s: %d enumerations across %d concurrent callers, want 1", q.Name, n, callers)
	}
	return wall / time.Duration(callers), nil
}

// parallel measures the intra-query parallel DP driver: wall-clock speedup
// and allocations of the headline compiles at several worker counts,
// asserting along the way that every parallel plan is identical to the
// serial one (the driver's core contract).
func (s *suite) parallel() error {
	fmt.Println("=== Extension: parallel intra-query DP enumeration ===")
	fmt.Printf("GOMAXPROCS=%d (speedup is bounded by physical cores; workers beyond that only test overhead)\n", runtime.GOMAXPROCS(0))
	queries := []struct {
		wl  string
		idx int
	}{
		{"real2_s", 7}, // the 14-table, 3-view headline query
		{"real1_s", 7}, // 9-table join, the workload's largest
		{"tpch_s", 3},  // 8-table join
	}
	degrees := []int{2, 4}
	fmt.Printf("%-20s %12s", "query", "serial")
	for _, d := range degrees {
		fmt.Printf(" %10s %8s", fmt.Sprintf("P=%d", d), "speedup")
	}
	fmt.Println()
	for _, qs := range queries {
		w := s.wl(qs.wl)
		if qs.idx >= len(w.Queries) {
			continue
		}
		q := w.Queries[qs.idx]
		serialRes, serialT, err := bestOf(s.ctx, 3, q, opt.Options{Level: experiments.Level})
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %12v", qs.wl+"/"+q.Name, serialT.Round(time.Microsecond))
		for _, d := range degrees {
			res, t, err := bestOf(s.ctx, 3, q, opt.Options{Level: experiments.Level, Parallelism: d})
			if err != nil {
				return err
			}
			if res.Plan.Cost != serialRes.Plan.Cost || res.Plan.String() != serialRes.Plan.String() {
				return fmt.Errorf("parallel plan diverges from serial for %s at P=%d", q.Name, d)
			}
			fmt.Printf(" %10v %7.2fx", t.Round(time.Microsecond), float64(serialT)/float64(t))
		}
		fmt.Println()
	}
	fmt.Println("(plans verified identical to serial at every worker count)")
	fmt.Println()
	return nil
}

// parEst measures the parallel counting pass of the estimator: per workload,
// the best-of-three wall time of estimating every query at each degree,
// asserting each parallel sweep reproduces the serial per-method plan counts
// and join totals exactly — the pass's bit-identity contract. The clique
// workload (every pair joined) is the densest enumeration and so the regime
// where the pass has the most to win.
func (s *suite) parEst() error {
	fmt.Println("=== Extension: parallel COTE estimation pass ===")
	fmt.Printf("GOMAXPROCS=%d (speedup is bounded by physical cores; workers beyond that only test overhead)\n", runtime.GOMAXPROCS(0))
	degrees := []int{2, 4}
	fmt.Printf("%-10s %10s %12s", "workload", "plans", "serial")
	for _, d := range degrees {
		fmt.Printf(" %10s %8s", fmt.Sprintf("P=%d", d), "speedup")
	}
	fmt.Println()
	sweep := func(w *workload.Workload, parallelism int) (core.PlanCounts, int, time.Duration, error) {
		var counts core.PlanCounts
		var joins int
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			if err := s.ctx.Err(); err != nil {
				return counts, 0, 0, err
			}
			counts, joins = core.PlanCounts{}, 0
			t0 := time.Now()
			for _, q := range w.Queries {
				est, err := core.EstimatePlansCtx(s.ctx, q.Block, core.Options{Level: experiments.Level, Parallelism: parallelism})
				if err != nil {
					return counts, 0, 0, err
				}
				counts.Add(est.Counts)
				joins += est.Joins
			}
			if el := time.Since(t0); el < best {
				best = el
			}
		}
		return counts, joins, best, nil
	}
	for _, name := range []string{"clique_s", "real2_s", "real1_s", "tpch_s"} {
		w := s.wl(name)
		serialCounts, serialJoins, serialT, err := sweep(w, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %10d %12v", name, serialCounts.Total(), serialT.Round(time.Microsecond))
		for _, d := range degrees {
			counts, joins, t, err := sweep(w, d)
			if err != nil {
				return err
			}
			if counts != serialCounts || joins != serialJoins {
				return fmt.Errorf("%s: parallel estimate at P=%d diverges from serial (%v/%d joins vs %v/%d)",
					name, d, counts, joins, serialCounts, serialJoins)
			}
			fmt.Printf(" %10v %7.2fx", t.Round(time.Microsecond), float64(serialT)/float64(t))
		}
		fmt.Println()
	}
	fmt.Println("(plan counts and join totals verified identical to serial at every worker count)")
	fmt.Println()
	return nil
}

// bestOf compiles a query n times under the suite deadline and returns the
// fastest run.
func bestOf(ctx context.Context, n int, q workload.Query, opts opt.Options) (*opt.Result, time.Duration, error) {
	var best *opt.Result
	bestT := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		res, err := opt.OptimizeCtx(ctx, q.Block, opts)
		if err != nil {
			return nil, 0, err
		}
		if el := time.Since(t0); el < bestT {
			best, bestT = res, el
		}
	}
	return best, bestT, nil
}

func (s *suite) fig2() error {
	fmt.Println("=== Figure 2: compilation time breakdown (customer workload) ===")
	fmt.Println("paper (DB2): MGJN 37%  NLJN 34%  HSJN 5%  plan saving 16%  other 8%")
	for _, name := range []string{"real2_s", "real1_s"} {
		row, err := experiments.Fig2Breakdown(s.wl(name))
		if err != nil {
			return err
		}
		fmt.Printf("%-10s MGJN %4.1f%%  NLJN %4.1f%%  HSJN %4.1f%%  plan saving %4.1f%%  other %4.1f%%\n",
			row.Workload, row.MGJN, row.NLJN, row.HSJN, row.PlanSaving, row.Other)
	}
	fmt.Println()
	return nil
}

func (s *suite) fig4(w *workload.Workload) error {
	fmt.Printf("=== Figure 4: estimation overhead vs actual compilation (%s) ===\n", w.Name)
	fmt.Println("paper: overhead between 0.3% and 3% of compilation time")
	rows, err := experiments.Fig4Overhead(w)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %14s %14s %8s\n", "query", "compile", "estimate", "pctg")
	var mean float64
	for _, r := range rows {
		fmt.Printf("%-16s %14v %14v %7.2f%%\n", r.Query, r.Actual, r.Estimate, r.Pct)
		mean += r.Pct
	}
	fmt.Printf("%-16s %14s %14s %7.2f%%\n\n", "MEAN", "", "", mean/float64(len(rows)))
	return nil
}

func (s *suite) fig5(w *workload.Workload) error {
	fmt.Printf("=== Figure 5: estimated vs actual generated plans (%s) ===\n", w.Name)
	rows, err := experiments.Fig5Plans(w)
	if err != nil {
		return err
	}
	for m := props.JoinMethod(0); m < props.NumJoinMethods; m++ {
		fmt.Printf("--- %v ---\n", m)
		fmt.Printf("%-16s %10s %10s %8s\n", "query", "actual", "estimated", "err")
		for _, r := range rows {
			if r.Method != m {
				continue
			}
			errPct := 0.0
			if r.Actual > 0 {
				errPct = 100 * float64(r.Estimated-r.Actual) / float64(r.Actual)
			}
			fmt.Printf("%-16s %10d %10d %+7.1f%%\n", r.Query, r.Actual, r.Estimated, errPct)
		}
	}
	errs := experiments.PlanErrors(rows)
	fmt.Println("--- mean relative error per method ---")
	for m := props.JoinMethod(0); m < props.NumJoinMethods; m++ {
		e := errs[m]
		fmt.Printf("%v: mean %.1f%%  max %.1f%%  (n=%d)\n", m, e.Mean*100, e.Max*100, e.N)
	}
	// Render the NLJN panel as a bar chart (the widest-spread series in the
	// paper's Figure 5).
	var labels []string
	var act, est []float64
	for _, r := range rows {
		if r.Method != props.NLJN {
			continue
		}
		labels = append(labels, r.Query)
		act = append(act, float64(r.Actual))
		est = append(est, float64(r.Estimated))
	}
	chart("NLJN generated plans", labels, act, est, "plans")
	fmt.Println()
	return nil
}

func (s *suite) fig6(w *workload.Workload) error {
	version := w.Name[len(w.Name)-1:]
	model, err := s.model(version)
	if err != nil {
		return err
	}
	fmt.Printf("=== Figure 6: compilation time estimation (%s) ===\n", w.Name)
	fmt.Println("paper: within 30% on most workloads; up to 66% on real1_p")
	rows, err := experiments.Fig6Times(w, model)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %14s %14s %8s\n", "query", "actual", "predicted", "err")
	for _, r := range rows {
		fmt.Printf("%-16s %14v %14v %+7.1f%%\n", r.Query, r.Actual, r.Predicted, signedPct(r.Predicted.Seconds(), r.Actual.Seconds()))
	}
	sum := experiments.TimeErrors(rows)
	fmt.Printf("mean error %.1f%%  max error %.1f%%\n", sum.Mean*100, sum.Max*100)
	var labels []string
	var act, est []float64
	for _, r := range rows {
		labels = append(labels, r.Query)
		act = append(act, r.Actual.Seconds())
		est = append(est, r.Predicted.Seconds())
	}
	chart("compilation time", labels, act, est, "ms")
	fmt.Println()
	return nil
}

func signedPct(est, act float64) float64 {
	if act == 0 {
		return 0
	}
	return 100 * (est - act) / act
}

func (s *suite) ctRatios() error {
	fmt.Println("=== Section 4: calibrated per-plan cost ratios Cm:Cn:Ch ===")
	fmt.Println("paper (DB2): 5:2:4 serial, 6:1:2 parallel")
	for _, v := range []string{"s", "p"} {
		m, err := s.model(v)
		if err != nil {
			return err
		}
		r := m.Ratio()
		fmt.Printf("%s: %.1f : %.1f : %.1f\n", v, r[props.MGJN], r[props.NLJN], r[props.HSJN])
	}
	fmt.Println()
	return nil
}

func (s *suite) joinBaseline() error {
	model, err := s.model("s")
	if err != nil {
		return err
	}
	fmt.Println("=== Section 5.3: plan-count model vs join-count baseline (star_s) ===")
	fmt.Println("paper: join-count errors ~20x larger within star batches")
	rows, err := experiments.JoinBaseline(s.wl("star_s"), model)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %12s %12s %12s %10s %10s\n", "query", "actual", "plan-model", "join-model", "plan-err", "join-err")
	var pe, je float64
	for _, r := range rows {
		fmt.Printf("%-16s %12v %12v %12v %9.1f%% %9.1f%%\n",
			r.Query, r.Actual, r.PlanModel, r.JoinModel, r.PlanErr*100, r.JoinErr*100)
		pe += r.PlanErr
		je += r.JoinErr
	}
	n := float64(len(rows))
	fmt.Printf("mean: plan model %.1f%%, join baseline %.1f%% (%.1fx worse)\n\n",
		pe/n*100, je/n*100, je/pe)
	return nil
}

func (s *suite) pilot() error {
	fmt.Println("=== Section 6.1: pilot-pass pruning effectiveness ===")
	fmt.Println("paper: no more than 10% of plans pruned by the initial plan on real workloads")
	for _, name := range []string{"real1_s", "real2_s"} {
		rows, err := experiments.PilotPass(s.wl(name))
		if err != nil {
			return err
		}
		var frac float64
		for _, r := range rows {
			frac += r.PrunedFrac
		}
		fmt.Printf("%-10s mean pruned fraction %.1f%%\n", name, frac/float64(len(rows))*100)
	}
	fmt.Println()
	return nil
}

func (s *suite) memory() error {
	fmt.Println("=== Section 6.2: optimizer memory estimation (star_s) ===")
	rows, err := experiments.MemoryEstimates(s.wl("star_s"))
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %14s %14s\n", "query", "predicted", "actual MEMO")
	for _, r := range rows {
		fmt.Printf("%-16s %13dB %13dB\n", r.Query, r.PredictedBytes, r.ActualBytes)
	}
	fmt.Println("(the prediction is a lower bound on optimizer memory, per the paper)")
	fmt.Println()
	return nil
}

// memFig evaluates the resource-accounting memory model: a calibration pass
// over the synthetic workloads fits the coefficients, then every evaluation
// query is compiled under a resource accountant at every DP level and the
// calibrated prediction is compared against the measured durable peak.
func (s *suite) memFig() error {
	fmt.Println("=== Extension: predicted vs measured peak optimizer memory ===")
	levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelMediumZigZag, opt.LevelHighInner2}
	model, err := experiments.MemCalibrationPass(
		[]*workload.Workload{s.wl("linear_s"), s.wl("star_s"), s.wl("random_s")}, levels)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated memory model: %+.1f B/entry, %+.2f B/plan, %+.2f B/prop-byte, base %.0f B\n",
		model.PerEntry, model.PerPlan, model.PerPropByte, model.Base)
	fmt.Printf("%-10s %-16s %-18s %12s %12s %7s\n", "workload", "query", "level", "predicted", "measured", "ratio")
	for _, name := range []string{"real1_s", "real2_s", "tpch_s"} {
		if err := s.ctx.Err(); err != nil {
			return err
		}
		rows, err := experiments.MemFig(s.wl(name), levels, model)
		if err != nil {
			return err
		}
		var worst float64
		for _, r := range rows {
			fmt.Printf("%-10s %-16s %-18v %11dB %11dB %6.2fx\n",
				r.Workload, r.Query, r.Level, r.Predicted, r.Measured, r.Ratio())
			if ratio := r.Ratio(); ratio > worst {
				worst = ratio
			}
		}
		fmt.Printf("%-10s worst over-prediction %.2fx\n", name, worst)
	}
	fmt.Println("(measured = durable MEMO high-water from the run's resource accountant)")
	fmt.Println()
	return nil
}

func (s *suite) piggyback() error {
	fmt.Println("=== Section 6.2: multi-level estimation in a single pass (real1_s) ===")
	levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelHighInner2, opt.LevelHigh}
	rows, err := experiments.Piggyback(s.wl("real1_s"), levels)
	if err != nil {
		return err
	}
	byQuery := map[string][]experiments.PiggybackRow{}
	var names []string
	for _, r := range rows {
		if len(byQuery[r.Query]) == 0 {
			names = append(names, r.Query)
		}
		byQuery[r.Query] = append(byQuery[r.Query], r)
	}
	sort.Strings(names)
	fmt.Printf("%-16s", "query")
	for _, l := range levels {
		fmt.Printf(" %18s", l)
	}
	fmt.Printf(" %12s\n", "one pass in")
	for _, name := range names {
		fmt.Printf("%-16s", name)
		var el time.Duration
		for _, r := range byQuery[name] {
			fmt.Printf(" %9d plans   ", r.Plans)
			el = r.Elapsed
		}
		fmt.Printf(" %12v\n", el)
	}
	fmt.Println()
	return nil
}

func (s *suite) pipeline() error {
	fmt.Println("=== Extension: pipelineability property (Table 1, FETCH FIRST) ===")
	rows, err := experiments.PipelineExtension()
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %12s %12s %14s %14s\n", "query", "plain act", "plain est", "first-N act", "first-N est")
	for _, r := range rows {
		fmt.Printf("%-16s %12d %12d %14d %14d\n",
			r.Query, r.PlainActual, r.PlainEst, r.FirstNActual, r.FirstNEst)
	}
	fmt.Println("(FETCH FIRST keeps pipelined and blocking variants apart, growing both actual and estimated counts)")
	fmt.Println()
	return nil
}

func (s *suite) cache() error {
	fmt.Println("=== Extension: statement-cache baseline (Section 1.2) ===")
	for _, name := range []string{"real1_s", "tpch_s"} {
		row, err := experiments.StatementCacheExtension(s.wl(name))
		if err != nil {
			return err
		}
		fmt.Printf("%-10s ad-hoc pass: %d/%d hits; exact replay: %d/%d hits\n",
			row.Workload, row.FirstPassHit, row.Queries, row.ReplayHit, row.Queries)
	}
	fmt.Println("(the cache only helps on exact repeats — the paper's argument for a real estimator)")
	fmt.Println()
	return nil
}

func (s *suite) ablations() error {
	fmt.Println("=== DESIGN.md section 5: estimator ablations (real1_p) ===")
	rows, err := experiments.Ablations(s.wl("real1_p"))
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %10s %10s %10s %12s %10s\n", "variant", "est", "actual", "mean err", "elapsed", "prop mem")
	for _, r := range rows {
		fmt.Printf("%-28s %10d %10d %9.1f%% %12v %9dB\n",
			r.Variant, r.TotalEst, r.TotalAct, r.MeanErr*100, r.Elapsed, r.PropBytes)
	}
	fmt.Println()
	return nil
}
