package main

import (
	"fmt"
	"strings"
)

// chart renders two aligned series as a horizontal ASCII bar chart — the
// closest terminal analogue of the paper's actual-vs-estimated bar figures.
// Bars are scaled to the maximum across both series.
func chart(title string, labels []string, actual, estimated []float64, unit string) {
	const width = 46
	max := 0.0
	for i := range actual {
		if actual[i] > max {
			max = actual[i]
		}
		if estimated[i] > max {
			max = estimated[i]
		}
	}
	if max <= 0 {
		max = 1
	}
	fmt.Printf("  %s (█ actual, ░ estimated; full bar = %s)\n", title, fmtVal(max, unit))
	for i, l := range labels {
		a := int(actual[i] / max * width)
		e := int(estimated[i] / max * width)
		fmt.Printf("  %-16s █%s %s\n", l, strings.Repeat("█", a), fmtVal(actual[i], unit))
		fmt.Printf("  %-16s ░%s %s\n", "", strings.Repeat("░", e), fmtVal(estimated[i], unit))
	}
}

func fmtVal(v float64, unit string) string {
	switch unit {
	case "ms":
		return fmt.Sprintf("%.2fms", v*1000)
	case "plans":
		return fmt.Sprintf("%.0f plans", v)
	default:
		return fmt.Sprintf("%.3g%s", v, unit)
	}
}
