// Command coted runs the compilation-time estimation service: a
// long-running HTTP/JSON daemon wrapping the cote library with a catalog
// registry, a bounded worker pool, an LRU estimate cache, MOP-driven
// admission control and a metrics endpoint.
//
// Usage:
//
//	coted [-addr :8334] [-workers N] [-queue N] [-timeout 30s]
//	      [-cache 1024] [-budget 0] [-downgrade] [-calibrate star]
//
// Endpoints: POST /v1/estimate, POST /v1/optimize, POST /v1/calibrate,
// GET/POST /v1/catalogs, GET /metrics, GET /healthz. See the README's
// "Running the coted server" section for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cote/internal/service"
)

func main() {
	addr := flag.String("addr", ":8334", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker (0 = 4x workers)")
	timeout := flag.Duration("timeout", 0, "per-request timeout (0 = 30s, negative = none)")
	cacheCap := flag.Int("cache", 1024, "estimate cache capacity (entries)")
	budget := flag.Duration("budget", 0, "admission budget: reject/downgrade optimizations predicted to compile longer than this (0 = off)")
	downgrade := flag.Bool("downgrade", false, "downgrade over-budget optimizations to a cheaper level instead of rejecting")
	calibrate := flag.String("calibrate", "", "calibrate the time model on this workload at startup (linear, star, random, real1, real2, tpch)")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:        *workers,
		Queue:          *queue,
		RequestTimeout: *timeout,
		CacheCapacity:  *cacheCap,
		Budget:         *budget,
		Downgrade:      *downgrade,
	})

	if *calibrate != "" {
		log.Printf("calibrating time model on workload %q ...", *calibrate)
		resp, err := srv.Calibrate(context.Background(), service.CalibrateRequest{Workload: *calibrate})
		if err != nil {
			fmt.Fprintf(os.Stderr, "coted: calibrate: %v\n", err)
			os.Exit(1)
		}
		log.Printf("calibrated on %d points: %s", resp.Points, resp.Model)
	} else if *budget > 0 {
		log.Printf("warning: -budget set without -calibrate; admission bypasses until POST /v1/calibrate installs a model")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(srv.Handler()),
		ReadHeaderTimeout: 5 * time.Second,
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down ...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()

	log.Printf("coted listening on %s (workers=%d)", *addr, srvWorkers(*workers))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "coted: %v\n", err)
		os.Exit(1)
	}
}

// srvWorkers mirrors the server's worker default for the startup log line.
func srvWorkers(flagValue int) int {
	if flagValue > 0 {
		return flagValue
	}
	return runtime.GOMAXPROCS(0)
}

// logRequests logs one line per request: method, path, status, duration.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		log.Printf("%s %s -> %d (%v)", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
