// Command coted runs the compilation-time estimation service: a
// long-running HTTP/JSON daemon wrapping the cote library with a catalog
// registry, a bounded worker pool, an LRU estimate cache, MOP-driven
// admission control and a metrics endpoint.
//
// Usage:
//
//	coted [-addr :8334] [-workers N] [-queue N] [-timeout 30s]
//	      [-cache 1024] [-budget 0] [-budget-factor 0] [-mem-budget 0]
//	      [-downgrade] [-max-queue N] [-shed-deadline 0]
//	      [-calibrate star] [-model-file cote-model.json]
//	      [-recalibrate-min-samples 8] [-drift-threshold 0.5]
//	      [-parallelism N] [-grace 10s] [-pprof] [-fault-plan SPEC]
//
// Endpoints: POST /v1/estimate, POST /v1/optimize, POST /v1/calibrate,
// GET/POST /v1/model, GET /v1/model/history, GET/POST /v1/catalogs,
// GET /v1/progress, GET /metrics, GET /healthz, and — with -pprof —
// GET /debug/pprof/*. See the README's "Running the coted server" section
// for curl examples.
//
// The daemon calibrates itself online: every real optimization feeds the
// drift detector, and when prediction error crosses -drift-threshold the
// model is refitted over the observation window and installed as a new
// registry version (rolled back via POST /v1/model). With -model-file the
// registry persists across restarts, rescaled to each host's speed by a
// startup micro-benchmark.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting,
// lets in-flight requests drain for half the -grace period, then cancels
// the remaining optimizations through their execution contexts and waits
// out the rest of the grace period before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"cote/internal/calib"
	"cote/internal/faultinject"
	"cote/internal/modelio"
	"cote/internal/service"
)

func main() {
	addr := flag.String("addr", ":8334", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS/parallelism)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker (0 = 4x workers)")
	timeout := flag.Duration("timeout", 0, "per-request timeout (0 = 30s, negative = none)")
	cacheCap := flag.Int("cache", 1024, "estimate cache capacity (entries, keyed by catalog epoch + structural fingerprint + level)")
	budget := flag.Duration("budget", 0, "admission budget: reject/downgrade optimizations predicted to compile longer than this (0 = off)")
	budgetFactor := flag.Float64("budget-factor", 0, "abort a compile whose generated plans overrun the prediction by this factor (0 = off; needs a model)")
	memBudget := flag.Int64("mem-budget", 0, "peak optimizer memory budget in bytes: reject/downgrade optimizations predicted to exceed it and abort compiles that measurably do (0 = off)")
	downgrade := flag.Bool("downgrade", false, "downgrade over-budget optimizations to a cheaper level instead of rejecting")
	maxQueue := flag.Int("max-queue", 0, "overload shed bound on the waiting line: requests arriving beyond it are shed with 429 + Retry-After (0 = same as -queue)")
	shedDeadline := flag.Duration("shed-deadline", 0, "shed requests whose deadline is within this margin of the projected queue wait (0 = no margin, deadline check still armed)")
	faultPlan := flag.String("fault-plan", "", "activate a deterministic fault-injection plan, e.g. 'seed=42;pool.acquire:error,p=0.1' (chaos testing; see internal/faultinject)")
	parallelism := flag.Int("parallelism", 1, "max intra-query parallelism per optimize or estimate request (workers default shrinks to compensate)")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown window; in-flight work is cancelled halfway through")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof endpoints for profiling")
	recalMin := flag.Int("recalibrate-min-samples", 0, "observations required in the window before an online refit (0 = default 8)")
	driftThreshold := flag.Float64("drift-threshold", 0, "mean relative prediction error that triggers online recalibration (0 = default 0.5, negative = track drift but never auto-refit)")
	var mf modelio.Flags
	mf.Register(flag.CommandLine, "")
	flag.Parse()

	reg, err := mf.LoadRegistry(0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coted: %v\n", err)
		os.Exit(1)
	}
	if v := reg.Current(); v != nil {
		log.Printf("loaded model v%d (%s) from %s: %v", v.Version, v.Source, mf.ModelFile, v.Model)
	}
	// OnSwap persists every installed version (refits, uploads, rollbacks)
	// back to -model-file; the mutex keeps concurrent swaps from racing the
	// temp-file rename.
	var persistMu sync.Mutex
	persist := func(v *calib.ModelVersion) {
		if mf.ModelFile == "" {
			return
		}
		persistMu.Lock()
		defer persistMu.Unlock()
		if err := mf.Save(reg); err != nil {
			log.Printf("warning: persisting model registry: %v", err)
		} else {
			log.Printf("model v%d (%s) persisted to %s", v.Version, v.Source, mf.ModelFile)
		}
	}

	cfg := service.Config{
		Workers:        *workers,
		Queue:          *queue,
		RequestTimeout: *timeout,
		CacheCapacity:  *cacheCap,
		Budget:         *budget,
		BudgetFactor:   *budgetFactor,
		MemBudget:      *memBudget,
		Downgrade:      *downgrade,
		MaxQueue:       *maxQueue,
		ShedDeadline:   *shedDeadline,
		MaxParallelism: *parallelism,
		Models:         reg,
		Calib: calib.Config{
			MinSamples:     *recalMin,
			DriftThreshold: *driftThreshold,
			OnSwap:         persist,
		},
	}
	srv := service.New(cfg)

	if *faultPlan != "" {
		plan, err := faultinject.ParsePlan(*faultPlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coted: -fault-plan: %v\n", err)
			os.Exit(1)
		}
		faultinject.Activate(plan)
		log.Printf("fault plan active (seed=%d): %s", plan.Seed, *faultPlan)
	}

	if mf.Calibrate != "" {
		log.Printf("calibrating time model on workload %q ...", mf.Calibrate)
		resp, err := srv.Calibrate(context.Background(), service.CalibrateRequest{Workload: mf.Calibrate})
		if err != nil {
			fmt.Fprintf(os.Stderr, "coted: calibrate: %v\n", err)
			os.Exit(1)
		}
		log.Printf("calibrated on %d points: %s", resp.Points, resp.Model)
	} else if *budget > 0 && srv.Model() == nil {
		log.Printf("warning: -budget set without a model; admission bypasses until -calibrate, -model-file or POST /v1/calibrate installs one")
	}

	handler := srv.Handler()
	if *pprofFlag {
		handler = withPprof(handler)
		log.Print("pprof enabled at /debug/pprof/")
	}

	// Every request context derives from appCtx, so appCancel reaches the
	// execution context of every in-flight optimization — cancelling them
	// cooperatively is what makes a bounded shutdown possible at all.
	appCtx, appCancel := context.WithCancel(context.Background())
	defer appCancel()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(handler),
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return appCtx },
	}

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		gracePeriod := *grace
		if gracePeriod <= 0 {
			gracePeriod = time.Second
		}
		log.Printf("shutting down (grace %v) ...", gracePeriod)
		// Stop accepting and give in-flight requests half the grace window
		// to drain on their own; then cancel whatever is still running via
		// the shared base context and wait out the rest.
		halfway := time.AfterFunc(gracePeriod/2, func() {
			log.Print("grace half over; cancelling in-flight optimizations ...")
			appCancel()
		})
		defer halfway.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), gracePeriod)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()

	log.Printf("coted listening on %s (workers=%d, parallelism<=%d)", *addr, srvWorkers(*workers, *parallelism), *parallelism)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "coted: %v\n", err)
		os.Exit(1)
	}
	// ListenAndServe returns the moment Shutdown closes the listeners; the
	// drain (and the mid-grace cancellation) is still in progress.
	<-drained
	log.Print("bye")
}

// withPprof mounts the net/http/pprof handlers on the service mux. The
// service uses its own mux, so the profile endpoints are registered here
// explicitly instead of relying on the package's DefaultServeMux side
// effects.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}

// srvWorkers mirrors the server's worker default for the startup log line.
func srvWorkers(flagValue, parallelism int) int {
	if flagValue > 0 {
		return flagValue
	}
	if parallelism < 1 {
		parallelism = 1
	}
	w := runtime.GOMAXPROCS(0) / parallelism
	if w < 1 {
		w = 1
	}
	return w
}

// logRequests logs one line per request: method, path, status, duration.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		log.Printf("%s %s -> %d (%v)", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
