// Command explain compiles one SQL query against a built-in catalog, prints
// the chosen plan, and reports the compilation-time estimator's view of the
// same query: enumerated joins, estimated generated plans per join method,
// the estimation overhead, and the predicted optimizer memory.
//
// Usage:
//
//	explain [-catalog tpch|warehouse1|warehouse2] [-nodes 1|4] [-level high|inner2|zigzag|leftdeep]
//	        [-timeout 0] [-mem-budget 0] [-model-file f.json] [-calibrate star] 'SELECT ...'
//
// With no query argument, a TPC-H demonstration query is used. -timeout
// bounds the whole run (compile + estimate); an expired deadline stops the
// optimizer cooperatively mid-enumeration. -mem-budget aborts the compile
// when its measured optimizer memory crosses that many bytes. With a time
// model (-model-file, or -calibrate to fit one on a named workload) the
// estimator also reports the wall-clock compilation-time prediction.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cote"
	"cote/internal/modelio"
)

const demoQuery = `
	SELECT n_name, SUM(l_extendedprice)
	FROM customer, orders, lineitem, supplier, nation, region
	WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
	  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
	  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	  AND r_name = 'ASIA'
	GROUP BY n_name
	ORDER BY n_name`

func main() {
	catName := flag.String("catalog", "tpch", "catalog: tpch, warehouse1, warehouse2")
	nodes := flag.Int("nodes", 1, "logical nodes (1 = serial, 4 = the paper's parallel setup)")
	levelName := flag.String("level", "inner2", "optimization level: high, inner2, zigzag, leftdeep")
	timeout := flag.Duration("timeout", 0, "deadline for compile + estimate (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "abort the compile when measured optimizer memory crosses this many bytes (0 = off)")
	var mf modelio.Flags
	mf.Register(flag.CommandLine, "")
	flag.Parse()

	sql := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(sql) == "" {
		sql = demoQuery
		fmt.Println("(no query given; using the built-in TPC-H Q5 demonstration query)")
	}

	var cat *cote.Catalog
	switch *catName {
	case "tpch":
		cat = cote.TPCHCatalog(1, *nodes)
	case "warehouse1":
		cat = cote.Warehouse1Catalog(*nodes)
	case "warehouse2":
		cat = cote.Warehouse2Catalog(*nodes)
	default:
		fatalf("unknown catalog %q", *catName)
	}

	var level cote.Level
	switch *levelName {
	case "high":
		level = cote.LevelHigh
	case "inner2":
		level = cote.LevelHighInner2
	case "zigzag":
		level = cote.LevelMediumZigZag
	case "leftdeep":
		level = cote.LevelMediumLeftDeep
	default:
		fatalf("unknown level %q", *levelName)
	}

	cfg := cote.Serial
	if *nodes > 1 {
		cfg = cote.Parallel4
	}

	q, err := cote.ParseSQL(sql, cat)
	if err != nil {
		fatalf("parse: %v", err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	oc := cote.NewExecContext(ctx)
	if *memBudget > 0 {
		oc.SetMemBudget(*memBudget)
	}
	res, err := cote.OptimizeWith(oc, q, cote.OptimizeOptions{Level: level, Config: cfg})
	if err != nil {
		fatalf("optimize: %v", err)
	}
	fmt.Printf("\n=== plan (level %v, %d node(s)) ===\n%s\n", level, *nodes, res.Plan)
	fmt.Printf("estimated execution cost: %.0f units, output rows: %.0f\n", res.Plan.Cost, res.Plan.Card)
	ordered, pairs := res.TotalJoins()
	actual := cote.ActualPlanCounts(res)
	fmt.Printf("\n=== real compilation ===\n")
	fmt.Printf("time %v | %d join pairs (%d ordered) | plans generated: %v\n",
		res.Elapsed, pairs, ordered, actual)
	fmt.Printf("optimizer memory: peak %d B (durable %d B)\n",
		res.Resources.PeakBytes, res.Resources.DurablePeakBytes)

	model, reg, err := mf.Resolve(*nodes)
	if err != nil {
		fatalf("model: %v", err)
	}
	if model != nil {
		fmt.Printf("\ntime model (v%d, %s): %v\n", reg.Version(), reg.Current().Source, model)
		if err := mf.Save(reg); err != nil {
			fatalf("model: %v", err)
		}
	}

	est, err := cote.EstimatePlansCtx(ctx, q, cote.EstimateOptions{Level: level, Config: cfg, Model: model})
	if err != nil {
		fatalf("estimate: %v", err)
	}
	fmt.Printf("\n=== compilation time estimator ===\n")
	fmt.Printf("%v (%.2f%% of compilation)\n", est, 100*est.Elapsed.Seconds()/res.Elapsed.Seconds())
	fmt.Printf("estimated plans: %v (actual %v)\n", est.Counts, actual)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "explain: "+format+"\n", args...)
	os.Exit(1)
}
