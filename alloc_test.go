// Allocation-regression guards for the two headline paths. The plan arena,
// property interning and scratch-buffer reuse cut the real compile's
// allocations by ~70%; these tests pin that improvement so an accidental
// per-plan or per-join allocation cannot creep back in unnoticed. Ceilings
// sit ~20% above current measurements — loose enough for toolchain drift,
// tight enough that reverting any one optimization trips them.
package cote_test

import (
	"testing"

	"cote/internal/core"
	"cote/internal/experiments"
	"cote/internal/opt"
	"cote/internal/workload"
)

// Measured 2026-08: optimize ~3.0k allocs (was ~10.8k before the arena),
// estimate ~5.7k.
const (
	maxOptimizeAllocs = 3700
	maxEstimateAllocs = 6900
)

func TestOptimizeAllocsReal2Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short")
	}
	q := workload.Real2(1).Queries[7] // the 14-table, 3-view query
	avg := testing.AllocsPerRun(5, func() {
		if _, err := opt.Optimize(q.Block, opt.Options{Level: experiments.Level}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > maxOptimizeAllocs {
		t.Errorf("Optimize(real2 headline) = %.0f allocs/op, want <= %d — a per-plan allocation crept back in", avg, maxOptimizeAllocs)
	}
}

func TestEstimatePlansAllocsReal2Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short")
	}
	q := workload.Real2(1).Queries[7]
	avg := testing.AllocsPerRun(5, func() {
		if _, err := core.EstimatePlans(q.Block, core.Options{Level: experiments.Level}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > maxEstimateAllocs {
		t.Errorf("EstimatePlans(real2 headline) = %.0f allocs/op, want <= %d", avg, maxEstimateAllocs)
	}
}
