package query

import "cote/internal/bitset"

// Equiv captures the column equivalence classes induced by the equality join
// predicates applied within one table set. The paper notes that joins change
// property equivalence (an order on R.a and one on S.a become equivalent
// once R.a = S.a is applied), so equivalence must be recomputed per
// enumerated table set; Equiv is the per-set answer.
type Equiv struct {
	uf *unionFind
}

// EquivWithin returns the equivalence classes induced by equality join
// predicates whose both sides lie inside s. The Block must be finalized.
func (b *Block) EquivWithin(s bitset.Set) *Equiv {
	uf := newUnionFind(len(b.Columns))
	for i := range b.JoinPreds {
		p := &b.JoinPreds[i]
		if p.Op != Eq {
			continue
		}
		t := b.predTabs[i]
		if s.Contains(t[0]) && s.Contains(t[1]) {
			uf.union(int(p.Left), int(p.Right))
		}
	}
	// Flatten so lookups are O(1) and, crucially, read-only: one Equiv is
	// shared by all workers of the parallel DP round.
	uf.flatten()
	return &Equiv{uf: uf}
}

// Same reports whether columns a and b are in the same equivalence class.
func (e *Equiv) Same(a, b ColID) bool {
	return e.uf.find(int(a)) == e.uf.find(int(b))
}

// Rep returns the canonical representative of a's class. Representatives
// are stable for a given Equiv and suitable as map keys.
func (e *Equiv) Rep(a ColID) ColID {
	return ColID(e.uf.find(int(a)))
}
