package query

import (
	"fmt"

	"cote/internal/catalog"
)

// Builder assembles a query Block programmatically. It is the construction
// path used by the workload generators; the SQL parser produces Blocks
// through the same builder so both paths share validation.
//
// Builder methods return errors for conditions that depend on input (unknown
// tables/columns, duplicate aliases); the terminal Build call finalizes the
// block.
type Builder struct {
	b   *Block
	err error
}

// NewBuilder starts a block named name over the given catalog.
func NewBuilder(name string, cat *catalog.Catalog) *Builder {
	return &Builder{b: &Block{Name: name, Catalog: cat}}
}

// Err returns the first error encountered, if any. All mutating methods are
// no-ops after an error, so a chain can be checked once at the end.
func (qb *Builder) Err() error { return qb.err }

func (qb *Builder) fail(format string, args ...any) *Builder {
	if qb.err == nil {
		qb.err = fmt.Errorf("query %q: %s", qb.b.Name, fmt.Sprintf(format, args...))
	}
	return qb
}

// AddTable adds a base table reference under the given alias (the table name
// itself if alias is empty) and returns its table index.
func (qb *Builder) AddTable(table, alias string) int {
	if qb.err != nil {
		return -1
	}
	t, err := qb.b.Catalog.Table(table)
	if err != nil {
		qb.fail("%v", err)
		return -1
	}
	if alias == "" {
		alias = table
	}
	return qb.addRef(&TableRef{Table: t, Alias: alias}, len(t.Columns), func(ref *TableRef, i int) *catalog.Column {
		return t.Columns[i]
	})
}

// AddDerived adds a derived table (view or subquery) whose rows come from
// the child block. The derived table exposes the child's select list; column
// NDVs are inherited from the underlying columns. correlated marks a
// correlated subquery, which is ineligible to be a join outer.
func (qb *Builder) AddDerived(child *Block, alias string, correlated bool) int {
	if qb.err != nil {
		return -1
	}
	if alias == "" {
		qb.fail("derived table needs an alias")
		return -1
	}
	if len(child.Select) == 0 {
		qb.fail("derived table %q: child block has an empty select list", alias)
		return -1
	}
	cols := make([]*catalog.Column, len(child.Select))
	for i, id := range child.Select {
		src := child.Column(id)
		cols[i] = &catalog.Column{Name: src.Col.Name, NDV: src.Col.NDV, Ordinal: i}
	}
	return qb.addRef(&TableRef{Derived: child, Alias: alias, Correlated: correlated}, len(cols),
		func(ref *TableRef, i int) *catalog.Column { return cols[i] })
}

func (qb *Builder) addRef(ref *TableRef, ncols int, colAt func(*TableRef, int) *catalog.Column) int {
	for _, t := range qb.b.Tables {
		if t.Alias == ref.Alias {
			qb.fail("duplicate alias %q", ref.Alias)
			return -1
		}
	}
	ref.Index = len(qb.b.Tables)
	ref.FirstCol = ColID(len(qb.b.Columns))
	ref.NumCols = ncols
	qb.b.Tables = append(qb.b.Tables, ref)
	for i := 0; i < ncols; i++ {
		id := ColID(len(qb.b.Columns))
		qb.b.Columns = append(qb.b.Columns, &ColumnRef{ID: id, Ref: ref, Col: colAt(ref, i)})
	}
	return ref.Index
}

// Col resolves "alias.column" to a ColID.
func (qb *Builder) Col(alias, column string) ColID {
	if qb.err != nil {
		return NoCol
	}
	for _, t := range qb.b.Tables {
		if t.Alias != alias {
			continue
		}
		for i := 0; i < t.NumCols; i++ {
			id := t.FirstCol + ColID(i)
			if qb.b.Columns[id].Col.Name == column {
				return id
			}
		}
		qb.fail("table %q has no column %q", alias, column)
		return NoCol
	}
	qb.fail("unknown alias %q", alias)
	return NoCol
}

// ColByTableIndex resolves a column by table index and column ordinal.
func (qb *Builder) ColByTableIndex(table, ordinal int) ColID {
	if qb.err != nil {
		return NoCol
	}
	if table < 0 || table >= len(qb.b.Tables) {
		qb.fail("table index %d out of range", table)
		return NoCol
	}
	ref := qb.b.Tables[table]
	if ordinal < 0 || ordinal >= ref.NumCols {
		qb.fail("column ordinal %d out of range for %q", ordinal, ref.Alias)
		return NoCol
	}
	return ref.FirstCol + ColID(ordinal)
}

// Aliases returns the aliases of all table references added so far.
func (qb *Builder) Aliases() []string {
	out := make([]string, len(qb.b.Tables))
	for i, t := range qb.b.Tables {
		out[i] = t.Alias
	}
	return out
}

// HasColumn reports whether the aliased table exposes the column.
func (qb *Builder) HasColumn(alias, column string) bool {
	for _, t := range qb.b.Tables {
		if t.Alias != alias {
			continue
		}
		for i := 0; i < t.NumCols; i++ {
			if qb.b.Columns[t.FirstCol+ColID(i)].Col.Name == column {
				return true
			}
		}
	}
	return false
}

// TableIndexOf returns the table index owning the column, or -1 for an
// unresolved column.
func (qb *Builder) TableIndexOf(id ColID) int {
	if id == NoCol || int(id) >= len(qb.b.Columns) {
		return -1
	}
	return qb.b.Columns[id].Ref.Index
}

// Join adds a join predicate between two columns.
func (qb *Builder) Join(left, right ColID, op PredOp) *Builder {
	if qb.err != nil {
		return qb
	}
	if left == NoCol || right == NoCol {
		return qb.fail("join predicate with unresolved column")
	}
	if qb.b.TableOf(left) == qb.b.TableOf(right) {
		return qb.fail("join predicate within one table (%s %s %s)",
			qb.b.Column(left), op, qb.b.Column(right))
	}
	qb.b.JoinPreds = append(qb.b.JoinPreds, JoinPred{Left: left, Right: right, Op: op})
	return qb
}

// JoinEq adds an equality join predicate between "la.lc" and "ra.rc".
func (qb *Builder) JoinEq(la, lc, ra, rc string) *Builder {
	return qb.Join(qb.Col(la, lc), qb.Col(ra, rc), Eq)
}

// Filter adds a local predicate on a column with an explicit selectivity
// (pass 0 to default it at Finalize time).
func (qb *Builder) Filter(col ColID, op PredOp, selectivity float64) *Builder {
	if qb.err != nil {
		return qb
	}
	if col == NoCol {
		return qb.fail("local predicate with unresolved column")
	}
	if selectivity < 0 || selectivity > 1 {
		return qb.fail("selectivity %v out of [0,1]", selectivity)
	}
	qb.b.LocalPreds = append(qb.b.LocalPreds, LocalPred{Col: col, Op: op, Selectivity: selectivity})
	return qb
}

// FilterEq adds an equality local predicate on "alias.column" with default
// (1/NDV) selectivity.
func (qb *Builder) FilterEq(alias, column string) *Builder {
	return qb.Filter(qb.Col(alias, column), Eq, 0)
}

// ExpensiveFilter adds a user-defined expensive predicate on a column; such
// predicates are physical properties per Table 1 of the paper.
func (qb *Builder) ExpensiveFilter(col ColID, selectivity float64) *Builder {
	if qb.err != nil {
		return qb
	}
	if col == NoCol {
		return qb.fail("expensive predicate with unresolved column")
	}
	qb.b.LocalPreds = append(qb.b.LocalPreds, LocalPred{Col: col, Op: Eq, Selectivity: selectivity, Expensive: true})
	return qb
}

// LeftOuter records that the table at index null is null-producing in a left
// outer join whose ON predicate references the preserving tables predReq.
// The corresponding join predicate must be added separately with Join.
func (qb *Builder) LeftOuter(null int, predReq ...int) *Builder {
	if qb.err != nil {
		return qb
	}
	if null < 0 || null >= len(qb.b.Tables) {
		return qb.fail("outer join table index %d out of range", null)
	}
	oj := OuterJoin{NullProducing: null}
	for _, p := range predReq {
		if p < 0 || p >= len(qb.b.Tables) {
			return qb.fail("outer join preserving table index %d out of range", p)
		}
		oj.PredReq = oj.PredReq.Add(p)
	}
	qb.b.OuterJoins = append(qb.b.OuterJoins, oj)
	return qb
}

// GroupBy sets the grouping columns.
func (qb *Builder) GroupBy(cols ...ColID) *Builder {
	if qb.err != nil {
		return qb
	}
	for _, c := range cols {
		if c == NoCol {
			return qb.fail("group by with unresolved column")
		}
	}
	qb.b.GroupBy = append(qb.b.GroupBy, cols...)
	return qb
}

// OrderBy sets the ordering columns.
func (qb *Builder) OrderBy(cols ...ColID) *Builder {
	if qb.err != nil {
		return qb
	}
	for _, c := range cols {
		if c == NoCol {
			return qb.fail("order by with unresolved column")
		}
	}
	qb.b.OrderBy = append(qb.b.OrderBy, cols...)
	return qb
}

// SelectCols sets the select list. If never called, Build defaults it to the
// first column of the first table.
func (qb *Builder) SelectCols(cols ...ColID) *Builder {
	if qb.err != nil {
		return qb
	}
	for _, c := range cols {
		if c == NoCol {
			return qb.fail("select with unresolved column")
		}
	}
	qb.b.Select = append(qb.b.Select, cols...)
	return qb
}

// FetchFirst asks for only the first n rows.
func (qb *Builder) FetchFirst(n int) *Builder {
	if qb.err != nil {
		return qb
	}
	if n < 0 {
		return qb.fail("negative FETCH FIRST row count")
	}
	qb.b.FirstN = n
	return qb
}

// Aggregates declares n aggregate functions in the select list.
func (qb *Builder) Aggregates(n int) *Builder {
	if qb.err != nil {
		return qb
	}
	if n < 0 {
		return qb.fail("negative aggregate count")
	}
	qb.b.NumAggs = n
	return qb
}

// Build finalizes and returns the block.
func (qb *Builder) Build() (*Block, error) {
	if qb.err != nil {
		return nil, qb.err
	}
	if len(qb.b.Select) == 0 && len(qb.b.Tables) > 0 {
		qb.b.Select = []ColID{qb.b.Tables[0].FirstCol}
	}
	if err := qb.b.Finalize(); err != nil {
		return nil, err
	}
	return qb.b, nil
}

// MustBuild is Build for statically known-good queries (tests, canned
// workloads); it panics on error.
func (qb *Builder) MustBuild() *Block {
	b, err := qb.Build()
	if err != nil {
		panic(err)
	}
	return b
}
