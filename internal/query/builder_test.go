package query

import (
	"testing"

	"cote/internal/catalog"
)

func builderCatalog() *catalog.Catalog {
	b := catalog.NewBuilder("bt")
	b.Table("r", 1000).Column("a", 100).Column("b", 50)
	b.Table("s", 500).Column("a", 100).Column("c", 25)
	return b.Build()
}

func TestBuilderHelperAccessors(t *testing.T) {
	qb := NewBuilder("h", builderCatalog())
	qb.AddTable("r", "")
	qb.AddTable("s", "alias_s")

	if got := qb.Aliases(); len(got) != 2 || got[0] != "r" || got[1] != "alias_s" {
		t.Fatalf("Aliases = %v", got)
	}
	if !qb.HasColumn("r", "a") || qb.HasColumn("r", "c") || qb.HasColumn("zzz", "a") {
		t.Fatal("HasColumn wrong")
	}
	id := qb.ColByTableIndex(1, 1)
	if id == NoCol {
		t.Fatal("ColByTableIndex failed")
	}
	if qb.TableIndexOf(id) != 1 {
		t.Fatalf("TableIndexOf = %d", qb.TableIndexOf(id))
	}
	if qb.TableIndexOf(NoCol) != -1 || qb.TableIndexOf(ColID(999)) != -1 {
		t.Fatal("TableIndexOf out-of-range handling wrong")
	}
	if qb.Err() != nil {
		t.Fatalf("unexpected error: %v", qb.Err())
	}
}

func TestBuilderClauseMethods(t *testing.T) {
	qb := NewBuilder("c", builderCatalog())
	qb.AddTable("r", "")
	qb.AddTable("s", "")
	qb.JoinEq("r", "a", "s", "a")
	qb.FilterEq("r", "b")
	qb.ExpensiveFilter(qb.Col("s", "c"), 0.1)
	qb.GroupBy(qb.Col("r", "b"))
	qb.OrderBy(qb.Col("s", "c"))
	qb.Aggregates(2)
	qb.FetchFirst(7)
	blk := qb.MustBuild()

	// Transitive closure may add implied locals; count explicit ones.
	explicit := 0
	expensive := 0
	for _, lp := range blk.LocalPreds {
		if !lp.Implied {
			explicit++
		}
		if lp.Expensive {
			expensive++
		}
	}
	if explicit != 2 || expensive != 1 {
		t.Fatalf("locals = %d explicit, %d expensive", explicit, expensive)
	}
	if len(blk.GroupBy) != 1 || len(blk.OrderBy) != 1 || blk.NumAggs != 2 || blk.FirstN != 7 {
		t.Fatalf("clauses wrong: %+v", blk)
	}
}

func TestBuilderClauseErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		run  func(qb *Builder)
	}{
		{"groupby unresolved", func(qb *Builder) { qb.GroupBy(NoCol) }},
		{"orderby unresolved", func(qb *Builder) { qb.OrderBy(NoCol) }},
		{"select unresolved", func(qb *Builder) { qb.SelectCols(NoCol) }},
		{"expensive unresolved", func(qb *Builder) { qb.ExpensiveFilter(NoCol, 0.5) }},
		{"negative aggregates", func(qb *Builder) { qb.Aggregates(-1) }},
		{"negative fetch first", func(qb *Builder) { qb.FetchFirst(-1) }},
		{"bad table index", func(qb *Builder) { qb.ColByTableIndex(7, 0) }},
		{"bad ordinal", func(qb *Builder) { qb.ColByTableIndex(0, 99) }},
		{"derived no alias", func(qb *Builder) {
			child := NewBuilder("ch", builderCatalog())
			child.AddTable("s", "")
			qb.AddDerived(child.MustBuild(), "", false)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qb := NewBuilder("e", builderCatalog())
			qb.AddTable("r", "")
			tc.run(qb)
			if _, err := qb.Build(); err == nil {
				t.Fatalf("%s: Build succeeded", tc.name)
			}
			// After an error, further calls are no-ops and Err is sticky.
			if qb.Err() == nil {
				t.Fatal("Err not sticky")
			}
			if qb.AddTable("s", "") != -1 {
				t.Fatal("AddTable after error did not no-op")
			}
		})
	}
}

func TestBuilderAfterErrorAccessorsSafe(t *testing.T) {
	qb := NewBuilder("x", builderCatalog())
	qb.AddTable("r", "")
	qb.GroupBy(NoCol) // poison
	if qb.Col("r", "a") != NoCol {
		t.Fatal("Col after error did not return NoCol")
	}
	if qb.ColByTableIndex(0, 0) != NoCol {
		t.Fatal("ColByTableIndex after error did not return NoCol")
	}
	if qb.Filter(ColID(0), Eq, 0.5).Err() == nil {
		t.Fatal("error lost")
	}
}

func TestPredOpStrings(t *testing.T) {
	want := map[PredOp]string{Eq: "=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Ne: "<>"}
	for op, w := range want {
		if op.String() != w {
			t.Fatalf("%d.String() = %q, want %q", op, op.String(), w)
		}
	}
	if PredOp(99).String() == "" {
		t.Fatal("unknown op has empty name")
	}
}

func TestBaseRowsVariants(t *testing.T) {
	cat := builderCatalog()
	qb := NewBuilder("br", cat)
	qb.AddTable("r", "")
	child := NewBuilder("ch", cat)
	child.AddTable("s", "")
	child.SelectCols(child.Col("s", "a"))
	dt := qb.AddDerived(child.MustBuild(), "v", false)
	qb.Join(qb.Col("r", "a"), qb.ColByTableIndex(dt, 0), Eq)
	blk := qb.MustBuild()

	if got := blk.Tables[0].BaseRows(); got != 1000 {
		t.Fatalf("base table rows = %v", got)
	}
	// Derived without override: defensive 1.
	if got := blk.Tables[1].BaseRows(); got != 1 {
		t.Fatalf("derived default rows = %v", got)
	}
	blk.Tables[1].CardOverride = 321
	if got := blk.Tables[1].BaseRows(); got != 321 {
		t.Fatalf("override rows = %v", got)
	}
}
