package query

import (
	"testing"
	"testing/quick"

	"cote/internal/bitset"
	"cote/internal/catalog"
)

// testCatalog builds a small three-table catalog used across the tests.
func testCatalog() *catalog.Catalog {
	b := catalog.NewBuilder("test")
	b.Table("a", 1000).Column("x", 100).Column("y", 50).Index("pk_a", true, "x")
	b.Table("b", 5000).Column("x", 100).Column("z", 500)
	b.Table("c", 200).Column("z", 100).Column("w", 10)
	return b.Build()
}

// chain builds a finalized A-B-C linear query.
func chain(t *testing.T) *Block {
	t.Helper()
	qb := NewBuilder("chain", testCatalog())
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.AddTable("c", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.JoinEq("b", "z", "c", "z")
	blk, err := qb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

func TestBuilderResolution(t *testing.T) {
	blk := chain(t)
	if blk.NumTables() != 3 {
		t.Fatalf("NumTables = %d", blk.NumTables())
	}
	if got := blk.Tables[1].Alias; got != "b" {
		t.Fatalf("alias = %q", got)
	}
	// Columns are contiguous per table.
	if blk.Tables[0].FirstCol != 0 || blk.Tables[1].FirstCol != 2 || blk.Tables[2].FirstCol != 4 {
		t.Fatal("FirstCol layout wrong")
	}
	if blk.Column(3).String() != "b.z" {
		t.Fatalf("Column(3) = %s", blk.Column(3))
	}
}

func TestBuilderErrors(t *testing.T) {
	cat := testCatalog()
	cases := []struct {
		name string
		run  func(qb *Builder)
	}{
		{"unknown table", func(qb *Builder) { qb.AddTable("nope", "") }},
		{"dup alias", func(qb *Builder) { qb.AddTable("a", "t"); qb.AddTable("b", "t") }},
		{"unknown column", func(qb *Builder) { qb.AddTable("a", ""); qb.Col("a", "nope") }},
		{"unknown alias", func(qb *Builder) { qb.AddTable("a", ""); qb.Col("zzz", "x") }},
		{"self join pred", func(qb *Builder) {
			qb.AddTable("a", "")
			qb.Join(qb.Col("a", "x"), qb.Col("a", "y"), Eq)
		}},
		{"bad selectivity", func(qb *Builder) {
			qb.AddTable("a", "")
			qb.Filter(qb.Col("a", "x"), Eq, 1.5)
		}},
		{"outer join range", func(qb *Builder) { qb.AddTable("a", ""); qb.LeftOuter(5) }},
		{"no tables", func(qb *Builder) {}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qb := NewBuilder("bad", cat)
			tc.run(qb)
			if _, err := qb.Build(); err == nil {
				t.Fatalf("%s: Build succeeded, want error", tc.name)
			}
		})
	}
}

func TestDefaultSelectivity(t *testing.T) {
	qb := NewBuilder("sel", testCatalog())
	qb.AddTable("a", "")
	qb.Filter(qb.Col("a", "x"), Eq, 0)  // 1/NDV = 1/100
	qb.Filter(qb.Col("a", "y"), Lt, 0)  // 1/3
	qb.Filter(qb.Col("a", "y"), Ne, 0)  // 0.9
	qb.Filter(qb.Col("a", "x"), Gt, .2) // explicit
	blk := qb.MustBuild()
	want := []float64{0.01, 1.0 / 3, 0.9, 0.2}
	for i, w := range want {
		if got := blk.LocalPreds[i].Selectivity; got != w {
			t.Errorf("pred %d selectivity = %v, want %v", i, got, w)
		}
	}
}

func TestTransitiveClosureAddsImpliedJoinPred(t *testing.T) {
	// a.x = b.x, b.x = c.z  =>  implied a.x = c.z, creating a cycle.
	qb := NewBuilder("tc", testCatalog())
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.AddTable("c", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.Join(qb.Col("b", "x"), qb.Col("c", "z"), Eq)
	blk := qb.MustBuild()

	if len(blk.JoinPreds) != 3 {
		t.Fatalf("got %d join preds, want 3 (one implied)", len(blk.JoinPreds))
	}
	var implied *JoinPred
	for i := range blk.JoinPreds {
		if blk.JoinPreds[i].Implied {
			implied = &blk.JoinPreds[i]
		}
	}
	if implied == nil {
		t.Fatal("no implied predicate added")
	}
	lt, rt := blk.TableOf(implied.Left), blk.TableOf(implied.Right)
	if !(lt == 0 && rt == 2 || lt == 2 && rt == 0) {
		t.Fatalf("implied predicate between tables %d and %d, want 0 and 2", lt, rt)
	}
	// The closure turned the chain into a cycle: every pair now connected.
	if !blk.Connects(bitset.Of(0), bitset.Of(2)) {
		t.Fatal("a and c not connected after closure")
	}
}

func TestTransitiveClosureLocalPredicates(t *testing.T) {
	// a.x = b.x and a.x = const  =>  implied b.x = const.
	qb := NewBuilder("tcl", testCatalog())
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.Filter(qb.Col("a", "x"), Eq, 0.05)
	blk := qb.MustBuild()

	var found bool
	for _, lp := range blk.LocalPreds {
		if lp.Implied && blk.TableOf(lp.Col) == 1 && lp.Selectivity == 0.05 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no implied local predicate on b; preds: %+v", blk.LocalPreds)
	}
}

func TestTransitiveClosureNonEqExcluded(t *testing.T) {
	qb := NewBuilder("ne", testCatalog())
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.AddTable("c", "")
	qb.Join(qb.Col("a", "x"), qb.Col("b", "x"), Lt)
	qb.Join(qb.Col("b", "x"), qb.Col("c", "z"), Eq)
	blk := qb.MustBuild()
	if len(blk.JoinPreds) != 2 {
		t.Fatalf("closure crossed a non-equality predicate: %d preds", len(blk.JoinPreds))
	}
}

func TestJoinGraphHelpers(t *testing.T) {
	blk := chain(t)
	if got := blk.Neighbors(bitset.Of(1)); got != bitset.Of(0, 2) {
		t.Fatalf("Neighbors(b) = %v", got)
	}
	if got := blk.Neighbors(bitset.Of(0, 1)); got != bitset.Of(2) {
		t.Fatalf("Neighbors(ab) = %v", got)
	}
	if blk.Connects(bitset.Of(0), bitset.Of(2)) {
		t.Fatal("a-c connected in a chain without closure effects")
	}
	if !blk.IsConnected(bitset.Of(0, 1, 2)) || blk.IsConnected(bitset.Of(0, 2)) {
		t.Fatal("IsConnected wrong")
	}
	if got := len(blk.PredsBetween(bitset.Of(0), bitset.Of(1))); got != 1 {
		t.Fatalf("PredsBetween(a,b) = %d preds", got)
	}
	if got := len(blk.PredsWithin(bitset.Of(0, 1, 2))); got != 2 {
		t.Fatalf("PredsWithin(abc) = %d preds", got)
	}
	if got := len(blk.PredsWithin(bitset.Of(0, 2))); got != 0 {
		t.Fatalf("PredsWithin(ac) = %d preds", got)
	}
}

func TestColSetAndTableOf(t *testing.T) {
	blk := chain(t)
	cols := []ColID{blk.Tables[0].FirstCol, blk.Tables[2].FirstCol}
	if got := blk.ColSet(cols); got != bitset.Of(0, 2) {
		t.Fatalf("ColSet = %v", got)
	}
	if blk.TableOf(blk.Tables[1].FirstCol+1) != 1 {
		t.Fatal("TableOf wrong")
	}
}

func TestColumnPanicsOutOfRange(t *testing.T) {
	blk := chain(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Column(-1) did not panic")
		}
	}()
	blk.Column(NoCol)
}

func TestDerivedTables(t *testing.T) {
	cat := testCatalog()
	childB := NewBuilder("child", cat)
	childB.AddTable("c", "")
	childB.SelectCols(childB.Col("c", "z"), childB.Col("c", "w"))
	child := childB.MustBuild()

	qb := NewBuilder("parent", cat)
	qb.AddTable("a", "")
	dt := qb.AddDerived(child, "v", false)
	qb.Join(qb.Col("a", "x"), qb.Col("v", "z"), Eq)
	blk := qb.MustBuild()

	ref := blk.Tables[dt]
	if !ref.IsDerived() || ref.NumCols != 2 {
		t.Fatalf("derived ref wrong: %+v", ref)
	}
	if got := blk.Column(qb.Col("v", "w")).Col.NDV; got != 10 {
		t.Fatalf("derived NDV = %v, want inherited 10", got)
	}
	// Blocks() returns children first.
	bs := blk.Blocks()
	if len(bs) != 2 || bs[0] != child || bs[1] != blk {
		t.Fatalf("Blocks order wrong: %v", bs)
	}
	// CardOverride wins over base rows.
	ref.CardOverride = 42
	if ref.BaseRows() != 42 {
		t.Fatal("CardOverride not honored")
	}
}

func TestDoubleFinalizeRejected(t *testing.T) {
	blk := chain(t)
	if err := blk.Finalize(); err == nil {
		t.Fatal("second Finalize succeeded")
	}
}

func TestOuterJoinRecorded(t *testing.T) {
	qb := NewBuilder("oj", testCatalog())
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.LeftOuter(1, 0)
	blk := qb.MustBuild()
	if len(blk.OuterJoins) != 1 {
		t.Fatal("outer join not recorded")
	}
	oj := blk.OuterJoins[0]
	if oj.NullProducing != 1 || !oj.PredReq.Contains(0) {
		t.Fatalf("outer join = %+v", oj)
	}
}

func TestOuterJoinSelfRequireRejected(t *testing.T) {
	qb := NewBuilder("oj2", testCatalog())
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.LeftOuter(1, 1)
	if _, err := qb.Build(); err == nil {
		t.Fatal("outer join requiring its own table accepted")
	}
}

func TestEquivWithin(t *testing.T) {
	blk := chain(t) // a.x = b.x (cols 0,2), b.z = c.z (cols 3,4)
	ax, bx := ColID(0), ColID(2)
	bz, cz := ColID(3), ColID(4)

	all := blk.EquivWithin(blk.AllTables())
	if !all.Same(ax, bx) || !all.Same(bz, cz) || all.Same(ax, cz) {
		t.Fatal("full-set equivalence wrong")
	}
	// Predicate a.x = b.x is not applied within {b, c}.
	sub := blk.EquivWithin(bitset.Of(1, 2))
	if sub.Same(ax, bx) || !sub.Same(bz, cz) {
		t.Fatal("subset equivalence wrong")
	}
	if all.Rep(ax) != all.Rep(bx) {
		t.Fatal("Rep not canonical")
	}
}

func TestSelectDefaulted(t *testing.T) {
	qb := NewBuilder("sel", testCatalog())
	qb.AddTable("b", "")
	blk := qb.MustBuild()
	if len(blk.Select) != 1 || blk.Select[0] != blk.Tables[0].FirstCol {
		t.Fatalf("default select = %v", blk.Select)
	}
}

// Property: for random connected subsets of a chain query, IsConnected
// agrees with a brute-force reachability check, and Neighbors never returns
// members of the input set.
func TestQuickGraphProperties(t *testing.T) {
	blk := chain(t)
	f := func(raw uint8) bool {
		s := bitset.Set(raw & 0x7) // subsets of {0,1,2}
		if s.Empty() {
			return !blk.IsConnected(s)
		}
		if blk.Neighbors(s).Overlaps(s) {
			return false
		}
		// Brute force: chain 0-1-2 means connected iff contiguous.
		want := s == bitset.Of(0) || s == bitset.Of(1) || s == bitset.Of(2) ||
			s == bitset.Of(0, 1) || s == bitset.Of(1, 2) || s == bitset.Of(0, 1, 2)
		return blk.IsConnected(s) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: transitive closure is idempotent in effect — every pair of
// columns in one equivalence class has exactly one (possibly implied)
// predicate, never duplicates.
func TestClosureNoDuplicateEdges(t *testing.T) {
	qb := NewBuilder("dup", testCatalog())
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.AddTable("c", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.Join(qb.Col("b", "x"), qb.Col("c", "z"), Eq)
	qb.Join(qb.Col("a", "x"), qb.Col("c", "z"), Eq) // closure edge given explicitly
	blk := qb.MustBuild()

	seen := map[[2]ColID]int{}
	for _, p := range blk.JoinPreds {
		k := [2]ColID{p.Left, p.Right}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		seen[k]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("duplicate predicate %v (%d times)", k, n)
		}
	}
	if len(blk.JoinPreds) != 3 {
		t.Fatalf("%d preds, want exactly 3", len(blk.JoinPreds))
	}
}
