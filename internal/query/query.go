// Package query models a parsed and normalized query block: table
// references, local and join predicates, outer-join constraints, GROUP BY /
// ORDER BY column lists, and nested blocks for views and subqueries.
//
// The model captures exactly the features the paper identifies as drivers of
// optimizer compilation time: the join graph (including cycles introduced by
// implied predicates computed through transitive closure), the predicates
// that give rise to interesting order properties, grouping/ordering columns,
// and the outer-join / correlation restrictions that make some table sets
// ineligible to serve as the outer of a join.
package query

import (
	"fmt"
	"sort"

	"cote/internal/bitset"
	"cote/internal/catalog"
)

// ColID identifies a column instance within one query block. Two references
// to the same catalog column through different table aliases get different
// ColIDs, because they participate independently in the join graph.
type ColID int32

// NoCol is the invalid ColID.
const NoCol ColID = -1

// PredOp is the comparison operator of a predicate.
type PredOp int

// Predicate operators. Only Eq join predicates can be evaluated by
// sort-merge and hash joins and only they produce interesting orders and
// feed the equivalence closure; the others still connect the join graph and
// are evaluated by nested-loops joins.
const (
	Eq PredOp = iota
	Lt
	Le
	Gt
	Ge
	Ne
)

// String returns the SQL spelling of the operator.
func (op PredOp) String() string {
	switch op {
	case Eq:
		return "="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Ne:
		return "<>"
	}
	return fmt.Sprintf("PredOp(%d)", int(op))
}

// TableRef is one entry in the FROM list: a base table or a derived table
// (view or subquery) under an alias.
type TableRef struct {
	// Index is the position of this reference in Block.Tables and its bit
	// position in table sets.
	Index int
	// Table is the base table, or nil for a derived table.
	Table *catalog.Table
	// Derived is the child block producing this table, or nil for a base
	// table.
	Derived *Block
	// Alias is the name the reference goes by in this block.
	Alias string
	// FirstCol is the ColID of the reference's first column; columns are
	// contiguous.
	FirstCol ColID
	// NumCols is the number of columns exposed by the reference.
	NumCols int
	// Correlated marks a derived table whose block references columns of
	// this block (a correlated subquery). Correlated derived tables cannot
	// serve as the outer of a join.
	Correlated bool
	// CardOverride, when > 0, is the output cardinality the optimizer
	// computed for a derived table. Zero for base tables.
	CardOverride float64
}

// IsDerived reports whether the reference is a view or subquery.
func (t *TableRef) IsDerived() bool { return t.Derived != nil }

// BaseRows returns the unfiltered row count of the reference.
func (t *TableRef) BaseRows() float64 {
	if t.CardOverride > 0 {
		return t.CardOverride
	}
	if t.Table != nil {
		return t.Table.RowCount
	}
	return 1
}

// ColumnRef is one column instance of the block.
type ColumnRef struct {
	ID  ColID
	Ref *TableRef
	// Col carries the name and NDV. For derived tables it is a synthetic
	// column not owned by any catalog table.
	Col *catalog.Column
}

// String renders the column as "alias.name".
func (c *ColumnRef) String() string { return c.Ref.Alias + "." + c.Col.Name }

// JoinPred is a predicate relating columns of two different table
// references.
type JoinPred struct {
	Left, Right ColID
	Op          PredOp
	// Implied marks predicates derived through the transitive closure of
	// equality predicates rather than written by the user. Implied
	// predicates create cycles in otherwise acyclic join graphs — the paper
	// cites them as a reason join counting is hard in real systems.
	Implied bool
}

// LocalPred is a single-table predicate (column op constant).
type LocalPred struct {
	Col ColID
	Op  PredOp
	// Selectivity is the fraction of rows satisfying the predicate. For Eq
	// it defaults to 1/NDV at Finalize time if left zero.
	Selectivity float64
	// Implied marks predicates propagated across equality classes (a = b
	// and a = 5 implies b = 5).
	Implied bool
	// Expensive marks a user-defined expensive predicate, which (per Table 1
	// of the paper) is itself a physical property: plans differ by which
	// subset of expensive predicates they have already applied.
	Expensive bool
}

// OuterJoin records a left outer join: all tables of Preserving are
// preserved, the single null-producing table is NullProducing, and PredReq
// is the set of preserving-side tables referenced by the ON predicate. The
// reproduced optimizer supports free reordering only — the null-producing
// table may join only with sets that already contain PredReq, and a set
// containing a not-yet-applied null-producing table cannot be an outer.
type OuterJoin struct {
	NullProducing int
	PredReq       bitset.Set
}

// Block is one query block (a SELECT). Nested blocks appear as derived
// TableRefs; they are optimized independently, bottom-up, exactly as the
// paper's multi-block extension describes.
type Block struct {
	Name    string
	Catalog *catalog.Catalog

	Tables  []*TableRef
	Columns []*ColumnRef

	LocalPreds []LocalPred
	JoinPreds  []JoinPred
	OuterJoins []OuterJoin

	GroupBy []ColID
	OrderBy []ColID
	Select  []ColID
	// NumAggs is the number of aggregate functions in the select list; it
	// contributes to the (cheap, easily estimated) non-join plan count.
	NumAggs int
	// FirstN, when positive, asks for only the first N rows (FETCH FIRST N
	// ROWS ONLY). It makes pipelineability an interesting physical property
	// (Table 1 of the paper): a plan that streams its first rows without
	// SORTs, hash-join builds or TEMPs can stop early.
	FirstN int

	finalized bool
	// adjacency[i] = set of table indexes joined to table i by some predicate
	adjacency []bitset.Set
	// predsByPair caches predicate indexes keyed by unordered table pair.
	predsByPair map[[2]int][]int
	// predTabs caches the (left table, right table) of each join predicate;
	// per-entry equivalence building touches every predicate for every MEMO
	// entry, making this the hottest lookup of plan-estimate mode.
	predTabs [][2]int
}

// NumTables returns the number of table references in the block.
func (b *Block) NumTables() int { return len(b.Tables) }

// AllTables returns the set of all table indexes in the block.
func (b *Block) AllTables() bitset.Set { return bitset.Full(len(b.Tables)) }

// Column returns the column reference for id. It panics on out-of-range
// ids, which indicate corrupted construction rather than bad user input.
func (b *Block) Column(id ColID) *ColumnRef {
	if id < 0 || int(id) >= len(b.Columns) {
		panic(fmt.Sprintf("query: ColID %d out of range [0,%d)", id, len(b.Columns)))
	}
	return b.Columns[id]
}

// TableOf returns the table index owning column id.
func (b *Block) TableOf(id ColID) int { return b.Column(id).Ref.Index }

// ColSet maps a column list to the set of owning tables.
func (b *Block) ColSet(cols []ColID) bitset.Set {
	var s bitset.Set
	for _, c := range cols {
		s = s.Add(b.TableOf(c))
	}
	return s
}

// Blocks returns the block and all nested blocks, children first (the order
// in which the optimizer must process them).
func (b *Block) Blocks() []*Block {
	var out []*Block
	var walk func(blk *Block)
	walk = func(blk *Block) {
		for _, t := range blk.Tables {
			if t.Derived != nil {
				walk(t.Derived)
			}
		}
		out = append(out, blk)
	}
	walk(b)
	return out
}

// Finalize validates the block, defaults predicate selectivities, computes
// the transitive closure of equality predicates (adding implied join and
// local predicates), and builds the join-graph adjacency caches. It must be
// called exactly once, after construction and before optimization; nested
// blocks are finalized recursively.
func (b *Block) Finalize() error {
	if b.finalized {
		return fmt.Errorf("query %q: already finalized", b.Name)
	}
	if len(b.Tables) == 0 {
		return fmt.Errorf("query %q: no tables", b.Name)
	}
	if len(b.Tables) > bitset.MaxElems {
		return fmt.Errorf("query %q: %d tables exceeds the per-block limit of %d",
			b.Name, len(b.Tables), bitset.MaxElems)
	}
	for i, t := range b.Tables {
		if t.Index != i {
			return fmt.Errorf("query %q: table %q has index %d at position %d", b.Name, t.Alias, t.Index, i)
		}
		if t.Derived != nil && !t.Derived.finalized {
			if err := t.Derived.Finalize(); err != nil {
				return err
			}
		}
	}
	for i, p := range b.JoinPreds {
		lt, rt := b.TableOf(p.Left), b.TableOf(p.Right)
		if lt == rt {
			return fmt.Errorf("query %q: join predicate %d relates columns of the same table %q",
				b.Name, i, b.Tables[lt].Alias)
		}
	}
	for _, oj := range b.OuterJoins {
		if oj.NullProducing < 0 || oj.NullProducing >= len(b.Tables) {
			return fmt.Errorf("query %q: outer join null-producing table %d out of range", b.Name, oj.NullProducing)
		}
		if oj.PredReq.Contains(oj.NullProducing) {
			return fmt.Errorf("query %q: outer join %d requires its own null-producing table", b.Name, oj.NullProducing)
		}
	}

	b.defaultSelectivities()
	b.transitiveClosure()
	b.buildAdjacency()
	b.finalized = true
	return nil
}

// defaultSelectivities fills zero selectivities with 1/NDV for equality and
// 1/3 for range predicates (the System R defaults).
func (b *Block) defaultSelectivities() {
	for i := range b.LocalPreds {
		p := &b.LocalPreds[i]
		if p.Selectivity > 0 {
			continue
		}
		switch p.Op {
		case Eq:
			ndv := b.Column(p.Col).Col.NDV
			if ndv < 1 {
				ndv = 1
			}
			p.Selectivity = 1 / ndv
		case Ne:
			p.Selectivity = 0.9
		default:
			p.Selectivity = 1.0 / 3
		}
		if p.Selectivity > 1 {
			p.Selectivity = 1
		}
	}
}

// transitiveClosure computes equality equivalence classes over join
// predicates and adds (a) implied equality join predicates between every
// pair of class members on different tables, and (b) implied local equality
// predicates for classes containing a constant equality predicate. This is
// the behaviour of commercial optimizers that the paper points to as a
// source of cycles in real join graphs.
func (b *Block) transitiveClosure() {
	uf := newUnionFind(len(b.Columns))
	for _, p := range b.JoinPreds {
		if p.Op == Eq {
			uf.union(int(p.Left), int(p.Right))
		}
	}

	// Existing equality edges, keyed canonically.
	type edge struct{ a, b ColID }
	have := map[edge]bool{}
	canon := func(x, y ColID) edge {
		if x > y {
			x, y = y, x
		}
		return edge{x, y}
	}
	for _, p := range b.JoinPreds {
		if p.Op == Eq {
			have[canon(p.Left, p.Right)] = true
		}
	}

	// Group columns by equivalence class root; singleton classes carry no
	// implied predicates. Classes are visited in sorted root order: the
	// order in which implied predicates are appended is observable (it can
	// shift plan counts by a join or two through the property lists), and a
	// map-order walk would make estimates differ run to run for the same
	// query — fatal for the fingerprint cache's determinism guarantee.
	classes := map[int][]ColID{}
	for id := range b.Columns {
		root := uf.find(id)
		classes[root] = append(classes[root], ColID(id))
	}
	roots := make([]int, 0, len(classes))
	for root, members := range classes {
		if len(members) < 2 {
			delete(classes, root)
			continue
		}
		roots = append(roots, root)
	}
	sort.Ints(roots)

	for _, root := range roots {
		members := classes[root]
		// Implied join predicates between all cross-table pairs.
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				l, r := members[i], members[j]
				if b.TableOf(l) == b.TableOf(r) {
					continue
				}
				if have[canon(l, r)] {
					continue
				}
				have[canon(l, r)] = true
				b.JoinPreds = append(b.JoinPreds, JoinPred{Left: l, Right: r, Op: Eq, Implied: true})
			}
		}
		// Implied local equality predicates: a = const propagates to every
		// class member that lacks one.
		var src *LocalPred
		withEq := map[ColID]bool{}
		for i := range b.LocalPreds {
			lp := &b.LocalPreds[i]
			if lp.Op != Eq {
				continue
			}
			for _, m := range members {
				if lp.Col == m {
					withEq[m] = true
					if src == nil {
						src = lp
					}
				}
			}
		}
		if src != nil {
			for _, m := range members {
				if !withEq[m] {
					b.LocalPreds = append(b.LocalPreds, LocalPred{
						Col: m, Op: Eq, Selectivity: src.Selectivity, Implied: true,
					})
				}
			}
		}
	}
}

func (b *Block) buildAdjacency() {
	b.adjacency = make([]bitset.Set, len(b.Tables))
	b.predsByPair = make(map[[2]int][]int)
	b.predTabs = make([][2]int, len(b.JoinPreds))
	for i, p := range b.JoinPreds {
		lt, rt := b.TableOf(p.Left), b.TableOf(p.Right)
		b.predTabs[i] = [2]int{lt, rt}
		b.adjacency[lt] = b.adjacency[lt].Add(rt)
		b.adjacency[rt] = b.adjacency[rt].Add(lt)
		key := pairKey(lt, rt)
		b.predsByPair[key] = append(b.predsByPair[key], i)
	}
}

func pairKey(a, c int) [2]int {
	if a > c {
		a, c = c, a
	}
	return [2]int{a, c}
}

// Adjacency returns the precomputed set of tables linked to table t by at
// least one join predicate. Finalize must have run. Because adjacency is a
// single-word bitset, connectivity tests over table sets reduce to a few
// machine ops — the basis of the enumerator's candidate-driven scans, which
// compose per-entry neighbor masks incrementally from these sets.
func (b *Block) Adjacency(t int) bitset.Set { return b.adjacency[t] }

// Neighbors returns the tables adjacent (via any join predicate) to any
// table in s, excluding s itself. Finalize must have run.
func (b *Block) Neighbors(s bitset.Set) bitset.Set {
	var out bitset.Set
	for i := s.Next(0); i >= 0; i = s.Next(i + 1) {
		out = out.Union(b.adjacency[i])
	}
	return out.Diff(s)
}

// Connects reports whether at least one join predicate links table set s
// with table set l.
func (b *Block) Connects(s, l bitset.Set) bool {
	return b.Neighbors(s).Overlaps(l)
}

// PredsBetween returns the indexes (into JoinPreds) of all predicates with
// one column in s and the other in l.
func (b *Block) PredsBetween(s, l bitset.Set) []int {
	var out []int
	for i := s.Next(0); i >= 0; i = s.Next(i + 1) {
		for j := l.Next(0); j >= 0; j = l.Next(j + 1) {
			out = append(out, b.predsByPair[pairKey(i, j)]...)
		}
	}
	return out
}

// PredsWithin returns the indexes of all join predicates whose two sides are
// both inside s.
func (b *Block) PredsWithin(s bitset.Set) []int {
	var out []int
	for i := range b.JoinPreds {
		t := b.predTabs[i]
		if s.Contains(t[0]) && s.Contains(t[1]) {
			out = append(out, i)
		}
	}
	return out
}

// IsConnected reports whether the induced join graph on s is connected.
// Singleton sets are connected.
func (b *Block) IsConnected(s bitset.Set) bool {
	if s.Empty() {
		return false
	}
	frontier := bitset.Single(s.Min())
	reached := frontier
	for !frontier.Empty() {
		next := b.Neighbors(reached).Intersect(s)
		frontier = next.Diff(reached)
		reached = reached.Union(frontier)
	}
	return reached == s
}

// unionFind is a minimal union-find over column ids used by the transitive
// closure and the per-entry equivalence classes. find performs no path
// compression, so a fully built instance can be read from many goroutines
// at once (the parallel DP round shares one Equiv per MEMO entry across its
// workers); callers that are done with unions call flatten once to make
// every subsequent find O(1). Dropping the rank array halves the allocation
// on the MEMO hot path, where one instance is built per entry.
type unionFind struct {
	parent []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for int(u.parent[x]) != x {
		x = int(u.parent[x])
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = int32(ra)
	}
}

// flatten points every element directly at its root. Roots are unchanged,
// so representatives stay stable; the structure becomes immutable (and
// therefore safe to share across goroutines) until the next union.
func (u *unionFind) flatten() {
	for i := range u.parent {
		u.parent[i] = int32(u.find(i))
	}
}
