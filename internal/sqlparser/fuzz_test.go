package sqlparser

import (
	"testing"

	"cote/internal/catalog"
	"cote/internal/fingerprint"
)

// FuzzParse throws arbitrary byte strings at the SQL front door. The parser
// guards every entry point of the service, so its contract under garbage is
// the robustness floor of the whole stack: never panic, never hang, and be
// a pure function — the same input against the same catalog must either
// fail identically or produce structurally identical blocks (equal
// fingerprints) on every call.
//
// Seeds live in testdata/fuzz/FuzzParse (one valid query per supported
// clause, plus near-miss malformed inputs that exercise error paths);
// f.Add mirrors a few inline so the corpus survives a testdata wipe.
func FuzzParse(f *testing.F) {
	f.Add("SELECT c_name FROM customer")
	f.Add("SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey")
	f.Add("SELECT 1 FROM")
	f.Add("SELECT c_name FROM customer WHERE c_acctbal > 100.5 ORDER BY c_name FETCH FIRST 10 ROWS ONLY")
	f.Add("select\x00nul")
	cat := catalog.TPCH(1, 1)
	f.Fuzz(func(t *testing.T, sql string) {
		blk, err := Parse(sql, cat)
		blk2, err2 := Parse(sql, cat)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("parse nondeterministic: first err=%v, second err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if blk == nil {
			t.Fatal("nil block with nil error")
		}
		// Structural determinism: two parses of the same SQL fingerprint
		// identically.
		if a, b := fingerprint.Of(blk), fingerprint.Of(blk2); a != b {
			t.Fatalf("same SQL parsed to different structures: %s vs %s", a, b)
		}
	})
}
