package sqlparser

import (
	"strings"
	"testing"

	"cote/internal/catalog"
	"cote/internal/query"
)

func tpch(t testing.TB) *catalog.Catalog { t.Helper(); return catalog.TPCH(1, 1) }

func TestParseSimpleJoin(t *testing.T) {
	blk, err := Parse(`
		SELECT o_orderkey, o_totalprice
		FROM orders, customer
		WHERE o_custkey = c_custkey AND c_mktsegment = 'BUILDING'
		ORDER BY o_totalprice`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	if blk.NumTables() != 2 {
		t.Fatalf("tables = %d", blk.NumTables())
	}
	if len(blk.JoinPreds) != 1 || blk.JoinPreds[0].Op != query.Eq {
		t.Fatalf("join preds = %+v", blk.JoinPreds)
	}
	if len(blk.LocalPreds) != 1 {
		t.Fatalf("local preds = %+v", blk.LocalPreds)
	}
	if len(blk.OrderBy) != 1 || len(blk.Select) != 2 {
		t.Fatalf("orderby/select = %v/%v", blk.OrderBy, blk.Select)
	}
}

func TestParseQualifiedAndAliased(t *testing.T) {
	blk, err := Parse(`
		SELECT l.l_extendedprice
		FROM lineitem AS l, orders o
		WHERE l.l_orderkey = o.o_orderkey AND o.o_orderdate < 19950315`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	if blk.Tables[0].Alias != "l" || blk.Tables[1].Alias != "o" {
		t.Fatalf("aliases = %q, %q", blk.Tables[0].Alias, blk.Tables[1].Alias)
	}
	if blk.LocalPreds[0].Op != query.Lt {
		t.Fatalf("op = %v", blk.LocalPreds[0].Op)
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	blk, err := Parse(`
		SELECT l_returnflag, SUM(l_quantity), COUNT(*), AVG(l_discount)
		FROM lineitem
		GROUP BY l_returnflag, l_linestatus
		ORDER BY l_returnflag`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	if blk.NumAggs != 3 {
		t.Fatalf("aggs = %d", blk.NumAggs)
	}
	if len(blk.GroupBy) != 2 || len(blk.OrderBy) != 1 {
		t.Fatalf("groupby/orderby = %v/%v", blk.GroupBy, blk.OrderBy)
	}
}

func TestParseExplicitJoinSyntax(t *testing.T) {
	blk, err := Parse(`
		SELECT c_name
		FROM customer JOIN orders ON c_custkey = o_custkey
		JOIN lineitem ON o_orderkey = l_orderkey`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	if blk.NumTables() != 3 || len(blk.JoinPreds) != 2 {
		t.Fatalf("tables=%d preds=%d", blk.NumTables(), len(blk.JoinPreds))
	}
}

func TestParseLeftOuterJoin(t *testing.T) {
	blk, err := Parse(`
		SELECT c_name
		FROM customer LEFT OUTER JOIN orders ON c_custkey = o_custkey`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.OuterJoins) != 1 {
		t.Fatalf("outer joins = %+v", blk.OuterJoins)
	}
	oj := blk.OuterJoins[0]
	if oj.NullProducing != 1 || !oj.PredReq.Contains(0) {
		t.Fatalf("outer join = %+v", oj)
	}
	// LEFT JOIN without OUTER also accepted.
	blk2 := MustParse(`SELECT c_name FROM customer LEFT JOIN orders ON c_custkey = o_custkey`, tpch(t))
	if len(blk2.OuterJoins) != 1 {
		t.Fatal("LEFT JOIN shorthand not accepted")
	}
}

func TestParseDerivedTable(t *testing.T) {
	blk, err := Parse(`
		SELECT v.o_custkey
		FROM (SELECT o_custkey, o_totalprice FROM orders WHERE o_orderstatus = 'F') AS v, customer
		WHERE v.o_custkey = c_custkey`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	if blk.NumTables() != 2 || !blk.Tables[0].IsDerived() {
		t.Fatalf("derived table missing: %+v", blk.Tables)
	}
	blocks := blk.Blocks()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	child := blocks[0]
	if len(child.LocalPreds) != 1 || len(child.Select) != 2 {
		t.Fatalf("child = %+v", child)
	}
}

func TestParseInSubquery(t *testing.T) {
	blk, err := Parse(`
		SELECT o_orderkey
		FROM orders
		WHERE o_custkey IN (SELECT c_custkey FROM customer WHERE c_mktsegment = 'AUTOMOBILE')`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	if blk.NumTables() != 2 || !blk.Tables[1].IsDerived() {
		t.Fatal("IN subquery not converted to a derived table")
	}
	if blk.Tables[1].Correlated {
		t.Fatal("uncorrelated subquery marked correlated")
	}
	if len(blk.JoinPreds) != 1 {
		t.Fatalf("join preds = %+v", blk.JoinPreds)
	}
}

func TestParseCorrelatedSubquery(t *testing.T) {
	blk, err := Parse(`
		SELECT o_orderkey
		FROM orders o
		WHERE o.o_custkey IN (SELECT c_custkey FROM customer c WHERE c.c_nationkey = o.o_shippriority)`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	var derived *query.TableRef
	for _, ref := range blk.Tables {
		if ref.IsDerived() {
			derived = ref
		}
	}
	if derived == nil || !derived.Correlated {
		t.Fatal("correlated subquery not marked")
	}
	// Decorrelation added a second join predicate (o_custkey=c_custkey plus
	// the correlation equality).
	if len(blk.JoinPreds) < 2 {
		t.Fatalf("join preds = %+v", blk.JoinPreds)
	}
}

func TestParseUnqualifiedAmbiguity(t *testing.T) {
	cb := catalog.NewBuilder("amb")
	cb.Table("r", 10).Column("x", 5)
	cb.Table("s", 10).Column("x", 5)
	cat := cb.Build()
	_, err := Parse(`SELECT x FROM r, s WHERE r.x = s.x`, cat)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous column accepted: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cat := tpch(t)
	cases := []struct{ name, sql string }{
		{"missing select", `FROM orders`},
		{"missing from", `SELECT o_orderkey`},
		{"unknown table", `SELECT x FROM nope`},
		{"unknown column", `SELECT nope FROM orders`},
		{"unknown alias", `SELECT z.o_orderkey FROM orders o`},
		{"bad operator", `SELECT o_orderkey FROM orders WHERE o_orderkey == 3`},
		{"trailing junk", `SELECT o_orderkey FROM orders extra garbage`},
		{"derived without alias", `SELECT o_orderkey FROM (SELECT o_orderkey FROM orders)`},
		{"unterminated string", `SELECT o_orderkey FROM orders WHERE o_comment = 'x`},
		{"unterminated paren", `SELECT o_orderkey FROM orders WHERE o_custkey IN (SELECT c_custkey FROM customer`},
		{"literal vs literal", `SELECT o_orderkey FROM orders WHERE 1 = 1`},
		{"missing on", `SELECT c_name FROM customer JOIN orders`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.sql, cat); err == nil {
				t.Fatalf("accepted: %s", tc.sql)
			}
		})
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	blk, err := Parse(`select O_ORDERKEY from ORDERS where o_ORDERkey = 5`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	if blk.NumTables() != 1 || len(blk.LocalPreds) != 1 {
		t.Fatal("case-insensitive parse failed")
	}
}

func TestParseComments(t *testing.T) {
	blk, err := Parse(`
		-- fetch orders
		SELECT o_orderkey -- key column
		FROM orders`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	if blk.NumTables() != 1 {
		t.Fatal("comment handling broke the parse")
	}
}

func TestParseFetchFirst(t *testing.T) {
	blk, err := Parse(`SELECT o_orderkey FROM orders, lineitem
		WHERE o_orderkey = l_orderkey
		FETCH FIRST 25 ROWS ONLY`, tpch(t))
	if err != nil {
		t.Fatal(err)
	}
	if blk.FirstN != 25 {
		t.Fatalf("FirstN = %d", blk.FirstN)
	}
	for _, bad := range []string{
		`SELECT o_orderkey FROM orders FETCH 25 ROWS ONLY`,
		`SELECT o_orderkey FROM orders FETCH FIRST x ROWS ONLY`,
		`SELECT o_orderkey FROM orders FETCH FIRST 25 ROWS`,
	} {
		if _, err := Parse(bad, tpch(t)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad SQL")
		}
	}()
	MustParse(`SELECT`, tpch(t))
}

func TestParsedQueryOptimizes(t *testing.T) {
	// End-to-end smoke: a parsed 4-table query flows through Finalize and
	// has a connected join graph.
	blk := MustParse(`
		SELECT n_name, SUM(l_extendedprice)
		FROM customer, orders, lineitem, nation
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		  AND c_nationkey = n_nationkey AND o_orderdate < 500
		GROUP BY n_name
		ORDER BY n_name`, tpch(t))
	if !blk.IsConnected(blk.AllTables()) {
		t.Fatal("parsed join graph disconnected")
	}
	if len(blk.GroupBy) != 1 || blk.NumAggs != 1 {
		t.Fatal("group by / aggregates wrong")
	}
}
