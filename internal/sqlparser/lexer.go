// Package sqlparser implements a lexer and recursive-descent parser for the
// SQL subset the reproduced system compiles: SELECT queries with inner and
// left-outer joins, derived tables and IN-subqueries (including correlated
// ones, which are decorrelated into joins and marked so the enumerator keeps
// them on the inner side), conjunctive WHERE clauses, GROUP BY and ORDER BY.
//
// The parser produces query.Block values through the same builder the
// workload generators use, so both construction paths share validation.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

// token is one lexeme with its position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer scans SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; SQL statements are short enough
// that a token slice is simpler than a streaming scanner.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos], start)
		case unicode.IsDigit(rune(c)):
			for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos], start)
		case c == '\'':
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			l.pos++
			l.emit(tokString, l.src[start+1:l.pos-1], start)
		case strings.ContainsRune("(),.*", rune(c)):
			l.pos++
			l.emit(tokSymbol, string(c), start)
		case strings.ContainsRune("=<>!", rune(c)):
			l.pos++
			if l.pos < len(l.src) && strings.ContainsRune("=>", rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokSymbol, l.src[start:l.pos], start)
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsSpace(c) {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
