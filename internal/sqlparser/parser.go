package sqlparser

import (
	"fmt"
	"strings"

	"cote/internal/catalog"
	"cote/internal/query"
)

// Parse compiles one SQL statement against the catalog into a query Block.
// Identifiers are case-insensitive and folded to lower case.
func Parse(sql string, cat *catalog.Catalog) (*query.Block, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat, name: firstWords(sql)}
	blk, _, err := p.parseQuery(nil)
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return blk, nil
}

// MustParse is Parse for statically known-good SQL; it panics on error.
func MustParse(sql string, cat *catalog.Catalog) *query.Block {
	blk, err := Parse(sql, cat)
	if err != nil {
		panic(err)
	}
	return blk
}

func firstWords(sql string) string {
	f := strings.Join(strings.Fields(sql), " ")
	if len(f) > 40 {
		f = f[:40] + "..."
	}
	return f
}

// correlation records a child-block column (by select-list ordinal) that
// must be equi-joined to a parent column once the derived table exists.
type correlation struct {
	childOrdinal int
	parentAlias  string
	parentCol    string
}

// rawCol is an unresolved column reference.
type rawCol struct {
	alias, col string
	pos        int
}

// rawSelect is one unresolved select-list item.
type rawSelect struct {
	col   rawCol
	isAgg bool
	star  bool // COUNT(*)
}

// parser holds the state for one (sub)query parse.
type parser struct {
	toks   []token
	i      int
	cat    *catalog.Catalog
	name   string
	parent *parser // enclosing query, for correlation resolution

	qb     *query.Builder
	subSeq int
	// corrs and corrCols accumulate, in lockstep, the correlations found
	// while parsing a child block and the child columns to expose for them.
	corrs    []correlation
	corrCols []query.ColID
}

// --- token helpers ---

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

func (p *parser) atKeyword(kw string) bool { return p.at(tokIdent, kw) }

func (p *parser) take() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.cur().text)
	}
	p.take()
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if !p.at(tokSymbol, sym) {
		return p.errf("expected %q, found %q", sym, p.cur().text)
	}
	p.take()
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "order": true,
	"by": true, "and": true, "join": true, "left": true, "outer": true,
	"on": true, "as": true, "in": true, "count": true, "sum": true,
	"avg": true, "min": true, "max": true,
	"fetch": true, "first": true, "rows": true, "only": true,
}

// --- grammar ---

// parseQuery parses SELECT ... [FROM ... WHERE ... GROUP BY ... ORDER BY
// ...] and returns the built block plus any correlations found against the
// parent scope.
func (p *parser) parseQuery(parent *parser) (*query.Block, []correlation, error) {
	p.parent = parent
	p.qb = query.NewBuilder(p.name, p.cat)

	if err := p.expectKeyword("select"); err != nil {
		return nil, nil, err
	}
	selects, err := p.parseSelectList()
	if err != nil {
		return nil, nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, nil, err
	}
	if err := p.parseFrom(); err != nil {
		return nil, nil, err
	}
	if p.atKeyword("where") {
		p.take()
		if err := p.parseConds(false, nil); err != nil {
			return nil, nil, err
		}
	}
	if p.atKeyword("group") {
		p.take()
		if err := p.expectKeyword("by"); err != nil {
			return nil, nil, err
		}
		cols, err := p.parseColList()
		if err != nil {
			return nil, nil, err
		}
		p.qb.GroupBy(cols...)
	}
	if p.atKeyword("order") {
		p.take()
		if err := p.expectKeyword("by"); err != nil {
			return nil, nil, err
		}
		cols, err := p.parseColList()
		if err != nil {
			return nil, nil, err
		}
		p.qb.OrderBy(cols...)
	}
	if p.atKeyword("fetch") {
		p.take()
		if err := p.expectKeyword("first"); err != nil {
			return nil, nil, err
		}
		t := p.take()
		if t.kind != tokNumber {
			return nil, nil, p.errf("expected row count after FETCH FIRST, found %q", t.text)
		}
		n := 0
		for _, ch := range t.text {
			if ch < '0' || ch > '9' {
				return nil, nil, p.errf("non-integer FETCH FIRST count %q", t.text)
			}
			n = n*10 + int(ch-'0')
		}
		if err := p.expectKeyword("rows"); err != nil {
			return nil, nil, err
		}
		if err := p.expectKeyword("only"); err != nil {
			return nil, nil, err
		}
		p.qb.FetchFirst(n)
	}

	// Resolve the select list now that all tables are in scope.
	nAggs := 0
	var selCols []query.ColID
	for _, s := range selects {
		if s.isAgg {
			nAggs++
		}
		if s.star {
			continue
		}
		id, _, err := p.resolveCol(s.col)
		if err != nil {
			return nil, nil, err
		}
		selCols = append(selCols, id)
	}
	// Expose correlated columns through the select list so the parent can
	// join on them.
	for ci := range p.corrs {
		p.corrs[ci].childOrdinal = len(selCols) + ci
	}
	selCols = append(selCols, p.corrCols...)
	if len(selCols) > 0 {
		p.qb.SelectCols(selCols...)
	}
	p.qb.Aggregates(nAggs)

	blk, err := p.qb.Build()
	if err != nil {
		return nil, nil, err
	}
	return blk, p.corrs, nil
}

func (p *parser) parseSelectList() ([]rawSelect, error) {
	var out []rawSelect
	for {
		s, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.at(tokSymbol, ",") {
			return out, nil
		}
		p.take()
	}
}

func (p *parser) parseSelectItem() (rawSelect, error) {
	if t := p.cur(); t.kind == tokIdent {
		kw := strings.ToLower(t.text)
		switch kw {
		case "count", "sum", "avg", "min", "max":
			p.take()
			if err := p.expectSymbol("("); err != nil {
				return rawSelect{}, err
			}
			if kw == "count" && p.at(tokSymbol, "*") {
				p.take()
				if err := p.expectSymbol(")"); err != nil {
					return rawSelect{}, err
				}
				return rawSelect{isAgg: true, star: true}, nil
			}
			col, err := p.parseRawCol()
			if err != nil {
				return rawSelect{}, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return rawSelect{}, err
			}
			return rawSelect{col: col, isAgg: true}, nil
		}
	}
	col, err := p.parseRawCol()
	if err != nil {
		return rawSelect{}, err
	}
	return rawSelect{col: col}, nil
}

// parseFrom parses the FROM clause: comma-separated items with optional
// [LEFT [OUTER]] JOIN ... ON ... chains.
func (p *parser) parseFrom() error {
	if _, err := p.parseFromItem(); err != nil {
		return err
	}
	for {
		switch {
		case p.at(tokSymbol, ","):
			p.take()
			if _, err := p.parseFromItem(); err != nil {
				return err
			}
		case p.atKeyword("join"):
			p.take()
			if err := p.parseJoinTail(false); err != nil {
				return err
			}
		case p.atKeyword("left"):
			p.take()
			if p.atKeyword("outer") {
				p.take()
			}
			if err := p.expectKeyword("join"); err != nil {
				return err
			}
			if err := p.parseJoinTail(true); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// parseJoinTail parses "<item> ON conds" after a JOIN keyword.
func (p *parser) parseJoinTail(leftOuter bool) error {
	idx, err := p.parseFromItem()
	if err != nil {
		return err
	}
	if err := p.expectKeyword("on"); err != nil {
		return err
	}
	var onTables []int
	if err := p.parseConds(true, &onTables); err != nil {
		return err
	}
	if leftOuter {
		var req []int
		for _, t := range onTables {
			if t != idx {
				req = append(req, t)
			}
		}
		p.qb.LeftOuter(idx, req...)
	}
	return p.qb.Err()
}

// parseFromItem parses a base table or parenthesized subquery with its
// alias and returns the table index.
func (p *parser) parseFromItem() (int, error) {
	if p.at(tokSymbol, "(") {
		p.take()
		sub := &parser{toks: p.toks, i: p.i, cat: p.cat, name: p.name + "/sub", subSeq: 0}
		child, corrs, err := sub.parseQuery(p)
		if err != nil {
			return -1, err
		}
		p.i = sub.i
		if err := p.expectSymbol(")"); err != nil {
			return -1, err
		}
		alias, err := p.parseAlias(true)
		if err != nil {
			return -1, err
		}
		return p.addDerived(child, alias, corrs)
	}
	t := p.take()
	if t.kind != tokIdent {
		return -1, p.errf("expected table name, found %q", t.text)
	}
	alias, err := p.parseAlias(false)
	if err != nil {
		return -1, err
	}
	idx := p.qb.AddTable(strings.ToLower(t.text), alias)
	return idx, p.qb.Err()
}

// parseAlias parses an optional [AS] alias; required reports an error when
// missing.
func (p *parser) parseAlias(required bool) (string, error) {
	if p.atKeyword("as") {
		p.take()
	}
	if t := p.cur(); t.kind == tokIdent && !keywords[strings.ToLower(t.text)] {
		p.take()
		return strings.ToLower(t.text), nil
	}
	if required {
		return "", p.errf("derived table requires an alias")
	}
	return "", nil
}

// addDerived registers a child block as a derived table, wiring up its
// correlations as join predicates to this block.
func (p *parser) addDerived(child *query.Block, alias string, corrs []correlation) (int, error) {
	idx := p.qb.AddDerived(child, alias, len(corrs) > 0)
	if err := p.qb.Err(); err != nil {
		return -1, err
	}
	for _, c := range corrs {
		parentID := p.qb.Col(c.parentAlias, c.parentCol)
		childID := p.qb.ColByTableIndex(idx, c.childOrdinal)
		p.qb.Join(parentID, childID, query.Eq)
	}
	return idx, p.qb.Err()
}

// parseConds parses cond (AND cond)*. In an ON clause (onClause true) the
// referenced table indexes are recorded for outer-join bookkeeping.
func (p *parser) parseConds(onClause bool, onTables *[]int) error {
	for {
		if err := p.parseCond(onClause, onTables); err != nil {
			return err
		}
		if !p.atKeyword("and") {
			return nil
		}
		p.take()
	}
}

// parseCond parses one comparison: col op col, col op literal, or col IN
// (subquery).
func (p *parser) parseCond(onClause bool, onTables *[]int) error {
	left, err := p.parseRawCol()
	if err != nil {
		return err
	}
	if p.atKeyword("in") {
		p.take()
		if err := p.expectSymbol("("); err != nil {
			return err
		}
		sub := &parser{toks: p.toks, i: p.i, cat: p.cat, name: p.name + "/in", subSeq: 0}
		child, corrs, err := sub.parseQuery(p)
		if err != nil {
			return err
		}
		p.i = sub.i
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
		p.subSeq++
		alias := fmt.Sprintf("subq%d", p.subSeq)
		idx, err := p.addDerived(child, alias, corrs)
		if err != nil {
			return err
		}
		leftID, _, err := p.resolveCol(left)
		if err != nil {
			return err
		}
		p.qb.Join(leftID, p.qb.ColByTableIndex(idx, 0), query.Eq)
		return p.qb.Err()
	}

	opTok := p.take()
	if opTok.kind != tokSymbol {
		return p.errf("expected comparison operator, found %q", opTok.text)
	}
	op, err := predOp(opTok.text)
	if err != nil {
		return p.errf("%v", err)
	}

	rt := p.cur()
	if rt.kind == tokNumber || rt.kind == tokString {
		p.take()
		id, corr, err := p.resolveCol(left)
		if err != nil {
			return err
		}
		if corr {
			return p.errf("correlated predicate against a literal is not supported")
		}
		p.qb.Filter(id, op, 0)
		if onClause {
			*onTables = append(*onTables, p.tableOf(id))
		}
		return p.qb.Err()
	}

	right, err := p.parseRawCol()
	if err != nil {
		return err
	}
	return p.addColCond(left, right, op, onClause, onTables)
}

// addColCond resolves a column-to-column comparison, handling correlation
// against the parent scope.
func (p *parser) addColCond(left, right rawCol, op query.PredOp, onClause bool, onTables *[]int) error {
	lID, lCorr, err := p.resolveCol(left)
	if err != nil {
		return err
	}
	rID, rCorr, err := p.resolveCol(right)
	if err != nil {
		return err
	}
	switch {
	case lCorr && rCorr:
		return p.errf("predicate references only enclosing-query columns")
	case lCorr || rCorr:
		if op != query.Eq {
			return p.errf("correlated predicates must be equalities")
		}
		inner, outer := lID, right
		if lCorr {
			inner, outer = rID, left
		}
		// Expose the inner column and record the correlation; the parent
		// joins on it when the derived table is added.
		p.corrCols = append(p.corrCols, inner)
		p.corrs = append(p.corrs, correlation{
			parentAlias: outer.alias, parentCol: outer.col,
		})
		return nil
	default:
		if p.tableOf(lID) == p.tableOf(rID) {
			// A comparison between two columns of one table restricts that
			// table locally (e.g. l_receiptdate > l_commitdate); model it
			// as a range filter with the System R default selectivity.
			p.qb.Filter(lID, query.Gt, 1.0/3)
			if onClause {
				*onTables = append(*onTables, p.tableOf(lID))
			}
			return p.qb.Err()
		}
		p.qb.Join(lID, rID, op)
		if onClause {
			*onTables = append(*onTables, p.tableOf(lID), p.tableOf(rID))
		}
		return p.qb.Err()
	}
}

// parseColList parses col (',' col)* and resolves each.
func (p *parser) parseColList() ([]query.ColID, error) {
	var out []query.ColID
	for {
		rc, err := p.parseRawCol()
		if err != nil {
			return nil, err
		}
		id, corr, err := p.resolveCol(rc)
		if err != nil {
			return nil, err
		}
		if corr {
			return nil, p.errf("grouping/ordering on enclosing-query column %s.%s", rc.alias, rc.col)
		}
		out = append(out, id)
		if !p.at(tokSymbol, ",") {
			return out, nil
		}
		p.take()
	}
}

// parseRawCol parses [alias '.'] column.
func (p *parser) parseRawCol() (rawCol, error) {
	t := p.take()
	if t.kind != tokIdent || keywords[strings.ToLower(t.text)] {
		return rawCol{}, p.errf("expected column reference, found %q", t.text)
	}
	rc := rawCol{col: strings.ToLower(t.text), pos: t.pos}
	if p.at(tokSymbol, ".") {
		p.take()
		c := p.take()
		if c.kind != tokIdent {
			return rawCol{}, p.errf("expected column name after %q.", t.text)
		}
		rc.alias = rc.col
		rc.col = strings.ToLower(c.text)
	}
	return rc, nil
}

// resolveCol resolves a raw column in this block's scope; when it refers to
// the enclosing query instead, correlated reports that and the ColID is
// invalid.
func (p *parser) resolveCol(rc rawCol) (id query.ColID, correlated bool, err error) {
	alias := rc.alias
	if alias == "" {
		alias, err = p.findAliasFor(rc.col)
		if err != nil {
			return query.NoCol, false, err
		}
	}
	if p.hasAlias(alias) {
		id := p.qb.Col(alias, rc.col)
		return id, false, p.qb.Err()
	}
	if p.parent != nil && p.parent.hasAlias(alias) {
		return query.NoCol, true, nil
	}
	return query.NoCol, false, p.errf("unknown table alias %q", alias)
}

// findAliasFor locates the unique in-scope table exposing an unqualified
// column name.
func (p *parser) findAliasFor(col string) (string, error) {
	var found string
	for _, alias := range p.qb.Aliases() {
		if p.qb.HasColumn(alias, col) {
			if found != "" {
				return "", p.errf("column %q is ambiguous (%s, %s)", col, found, alias)
			}
			found = alias
		}
	}
	if found == "" {
		return "", p.errf("unknown column %q", col)
	}
	return found, nil
}

// hasAlias reports whether the alias is in this block's FROM list.
func (p *parser) hasAlias(alias string) bool {
	for _, a := range p.qb.Aliases() {
		if a == alias {
			return true
		}
	}
	return false
}

// tableOf returns the owning table index of a resolved column.
func (p *parser) tableOf(id query.ColID) int { return p.qb.TableIndexOf(id) }

// predOp maps an operator token to the model's PredOp.
func predOp(sym string) (query.PredOp, error) {
	switch sym {
	case "=":
		return query.Eq, nil
	case "<":
		return query.Lt, nil
	case "<=":
		return query.Le, nil
	case ">":
		return query.Gt, nil
	case ">=":
		return query.Ge, nil
	case "<>", "!=":
		return query.Ne, nil
	}
	return 0, fmt.Errorf("unsupported operator %q", sym)
}
