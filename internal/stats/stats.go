// Package stats provides the small numerical toolkit the compilation-time
// estimator needs: ordinary least squares via normal equations (to calibrate
// the per-join-method plan-generation constants Ct of the paper's model
// T = Tinst * sum(Ct * Pt) from training queries) and the relative-error
// metrics the evaluation reports.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are (numerically)
// singular — typically too few or collinear training observations.
var ErrSingular = errors.New("stats: singular normal equations")

// OLS fits y ≈ X·beta by ordinary least squares and returns beta. X is
// row-major: one row per observation, one column per regressor. Rows must
// all have the same width and there must be at least as many observations
// as regressors.
func OLS(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: %d rows vs %d targets", n, len(y))
	}
	k := len(x[0])
	if k == 0 {
		return nil, errors.New("stats: zero regressors")
	}
	if n < k {
		return nil, fmt.Errorf("stats: %d observations for %d regressors", n, k)
	}
	for i, row := range x {
		if len(row) != k {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(row), k)
		}
		for _, v := range row {
			if !isFinite(v) {
				return nil, fmt.Errorf("stats: non-finite regressor in row %d", i)
			}
		}
		if !isFinite(y[i]) {
			return nil, fmt.Errorf("stats: non-finite target in row %d", i)
		}
	}

	// Normal equations: (XᵀX) beta = Xᵀy.
	xtx := make([][]float64, k)
	xty := make([]float64, k)
	for i := 0; i < k; i++ {
		xtx[i] = make([]float64, k)
	}
	for r := 0; r < n; r++ {
		for i := 0; i < k; i++ {
			xty[i] += x[r][i] * y[r]
			for j := 0; j < k; j++ {
				xtx[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	beta, err := solve(xtx, xty)
	if err == ErrSingular {
		// Near-collinear regressors: fall back to a lightly ridge-
		// regularized system, which always has a unique solution. The
		// shrinkage is proportional to the matrix scale, so well-posed
		// systems are unaffected at the digits that matter.
		lambda := 0.0
		for i := 0; i < k; i++ {
			lambda += xtx[i][i]
		}
		lambda = lambda / float64(k) * 1e-6
		if lambda <= 0 {
			lambda = 1e-12
		}
		for i := 0; i < k; i++ {
			xtx[i][i] += lambda
		}
		beta, err = solve(xtx, xty)
	}
	if err != nil {
		return nil, err
	}
	return beta, nil
}

// NonNegativeOLS fits like OLS but clamps negative coefficients to zero and
// refits the remaining regressors, iterating until all coefficients are
// nonnegative. Plan-generation costs are physical quantities; a negative Ct
// would make the time model nonsensical.
func NonNegativeOLS(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errors.New("stats: no observations")
	}
	k := len(x[0])
	active := make([]bool, k)
	for i := range active {
		active[i] = true
	}
	for iter := 0; iter <= k; iter++ {
		var idx []int
		for i, a := range active {
			if a {
				idx = append(idx, i)
			}
		}
		out := make([]float64, k)
		if len(idx) == 0 {
			return out, nil
		}
		sub := make([][]float64, len(x))
		for r := range x {
			row := make([]float64, len(idx))
			for c, i := range idx {
				row[c] = x[r][i]
			}
			sub[r] = row
		}
		beta, err := OLS(sub, y)
		if err != nil {
			return nil, err
		}
		worst, worstVal := -1, 0.0
		for c, i := range idx {
			out[i] = beta[c]
			if beta[c] < worstVal {
				worst, worstVal = i, beta[c]
			}
		}
		if worst < 0 {
			return out, nil
		}
		active[worst] = false
	}
	return nil, errors.New("stats: non-negative refit did not converge")
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// solve performs Gaussian elimination with partial pivoting on a (k x k)
// system. The singularity threshold is relative to the matrix scale so that
// well-posed but small-magnitude systems (weighted regressions) solve
// exactly.
func solve(a [][]float64, b []float64) ([]float64, error) {
	k := len(a)
	scale := 0.0
	for i := range a {
		for _, v := range a[i] {
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
	}
	eps := scale * 1e-12
	if eps == 0 {
		eps = 1e-300
	}
	// Work on copies: callers may reuse their matrices.
	m := make([][]float64, k)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < eps {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < k; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= k; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		s := m[r][k]
		for c := r + 1; c < k; c++ {
			s -= m[r][c] * out[c]
		}
		out[r] = s / m[r][r]
	}
	return out, nil
}

// RelErr returns |est-actual| / actual. An actual of zero yields 0 when the
// estimate is also zero and +Inf otherwise.
func RelErr(est, actual float64) float64 {
	if actual == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-actual) / math.Abs(actual)
}

// Summary aggregates relative errors.
type Summary struct {
	Mean, Max float64
	N         int
}

// Summarize computes the mean and max relative error of paired estimates
// and actuals.
func Summarize(est, actual []float64) (Summary, error) {
	if len(est) != len(actual) {
		return Summary{}, fmt.Errorf("stats: %d estimates vs %d actuals", len(est), len(actual))
	}
	var s Summary
	for i := range est {
		e := RelErr(est[i], actual[i])
		s.Mean += e
		if e > s.Max {
			s.Max = e
		}
		s.N++
	}
	if s.N > 0 {
		s.Mean /= float64(s.N)
	}
	return s, nil
}
