package stats

import (
	"math"
	"testing"
)

// A window of identical observations is rank-deficient: XᵀX has rank 1.
// The ridge fallback must still return a finite fit that reproduces the
// (single) observed point instead of erroring or emitting NaN.
func TestOLSAllIdenticalObservations(t *testing.T) {
	x := make([][]float64, 6)
	y := make([]float64, 6)
	for i := range x {
		x[i] = []float64{100, 200, 300}
		y[i] = 5000
	}
	beta, err := OLS(x, y)
	if err != nil {
		t.Fatalf("OLS on identical rows: %v", err)
	}
	var pred float64
	for i, b := range beta {
		if !isFinite(b) {
			t.Fatalf("beta[%d] = %v, want finite", i, b)
		}
		pred += b * x[0][i]
	}
	if math.Abs(pred-y[0]) > 1e-3*y[0] {
		t.Fatalf("fit does not reproduce the repeated observation: predicted %v, want %v", pred, y[0])
	}
}

// One observation cannot determine multiple regressors; OLS must reject the
// window rather than fabricate coefficients.
func TestOLSSingleSampleWindow(t *testing.T) {
	if _, err := OLS([][]float64{{1, 2, 3}}, []float64{10}); err == nil {
		t.Fatal("OLS accepted 1 observation for 3 regressors")
	}
	// A single observation of a single regressor is determined and must fit.
	beta, err := OLS([][]float64{{4}}, []float64{20})
	if err != nil {
		t.Fatalf("OLS on a determined 1x1 system: %v", err)
	}
	if math.Abs(beta[0]-5) > 1e-9 {
		t.Fatalf("beta = %v, want 5", beta[0])
	}
}

// Non-finite inputs must be rejected up front: without the guard they
// propagate through the normal equations and come back as silent NaN
// coefficients.
func TestOLSRejectsNonFinite(t *testing.T) {
	good := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	cases := []struct {
		name string
		x    [][]float64
		y    []float64
	}{
		{"nan regressor", [][]float64{{1, 0}, {0, math.NaN()}, {1, 1}}, []float64{1, 2, 3}},
		{"inf regressor", [][]float64{{1, 0}, {math.Inf(1), 1}, {1, 1}}, []float64{1, 2, 3}},
		{"nan target", good, []float64{1, math.NaN(), 3}},
		{"-inf target", good, []float64{1, 2, math.Inf(-1)}},
	}
	for _, tc := range cases {
		if _, err := OLS(tc.x, tc.y); err == nil {
			t.Errorf("%s: OLS accepted non-finite input", tc.name)
		}
		if _, err := NonNegativeOLS(tc.x, tc.y); err == nil {
			t.Errorf("%s: NonNegativeOLS accepted non-finite input", tc.name)
		}
	}
	if beta, err := OLS(good, []float64{1, 2, 3}); err != nil || len(beta) != 2 {
		t.Fatalf("control fit failed: %v %v", beta, err)
	}
}

// NonNegativeOLS inherits the edge-case behavior: identical observations
// still fit (via the ridge fallback) and stay nonnegative.
func TestNNLSAllIdenticalObservations(t *testing.T) {
	x := make([][]float64, 5)
	y := make([]float64, 5)
	for i := range x {
		x[i] = []float64{10, 20}
		y[i] = 100
	}
	beta, err := NonNegativeOLS(x, y)
	if err != nil {
		t.Fatalf("NonNegativeOLS on identical rows: %v", err)
	}
	for i, b := range beta {
		if b < 0 || !isFinite(b) {
			t.Fatalf("beta[%d] = %v, want finite nonnegative", i, b)
		}
	}
}
