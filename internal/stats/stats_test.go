package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOLSExactFit(t *testing.T) {
	// y = 2a + 3b, noise free.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {3, 5}}
	y := []float64{2, 3, 5, 7, 21}
	beta, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-9 || math.Abs(beta[1]-3) > 1e-9 {
		t.Fatalf("beta = %v, want [2 3]", beta)
	}
}

func TestOLSLeastSquaresProperty(t *testing.T) {
	// With noise, the fit must beat any small perturbation of itself.
	x := [][]float64{{1, 2}, {2, 1}, {3, 3}, {4, 1}, {5, 4}, {6, 2}}
	y := []float64{8.1, 6.9, 15.2, 10.8, 19.1, 13.9}
	beta, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	sse := func(b []float64) float64 {
		s := 0.0
		for i, row := range x {
			p := row[0]*b[0] + row[1]*b[1]
			s += (y[i] - p) * (y[i] - p)
		}
		return s
	}
	base := sse(beta)
	for _, d := range []([]float64){{0.01, 0}, {-0.01, 0}, {0, 0.01}, {0, -0.01}} {
		if sse([]float64{beta[0] + d[0], beta[1] + d[1]}) < base {
			t.Fatalf("perturbation %v improved the fit", d)
		}
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := OLS([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("underdetermined system accepted")
	}
	if _, err := OLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	// Collinear columns: resolved by the ridge fallback rather than
	// rejected — any finite solution reproducing the targets is accepted.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	beta, err := OLS(x, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("collinear system not resolved by ridge fallback: %v", err)
	}
	for i, row := range x {
		pred := row[0]*beta[0] + row[1]*beta[1]
		if math.Abs(pred-float64(i+1)) > 1e-3 {
			t.Fatalf("ridge solution off: row %d pred %v", i, pred)
		}
	}
}

func TestNonNegativeOLS(t *testing.T) {
	// y depends negatively on the second regressor; NNLS zeroes it.
	x := [][]float64{{1, 1}, {2, 1}, {3, 0}, {4, 2}, {5, 0}}
	y := []float64{0.9, 2.1, 3.0, 3.8, 5.1}
	beta, err := NonNegativeOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range beta {
		if b < 0 {
			t.Fatalf("coefficient %d negative: %v", i, b)
		}
	}
	// First coefficient near 1.
	if math.Abs(beta[0]-1) > 0.2 {
		t.Fatalf("beta = %v, want beta[0] ~ 1", beta)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Fatal("RelErr(110,100) != 0.1")
	}
	if RelErr(90, 100) != 0.1 {
		t.Fatal("RelErr(90,100) != 0.1")
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0) != 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Fatal("RelErr(1,0) not +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{110, 80}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 2 || math.Abs(s.Mean-0.15) > 1e-9 || s.Max != 0.2 {
		t.Fatalf("summary = %+v", s)
	}
	if _, err := Summarize([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	empty, _ := Summarize(nil, nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

// Property: OLS recovers arbitrary 2-coefficient models from noise-free
// data.
func TestQuickOLSRecovery(t *testing.T) {
	f := func(a, b int16) bool {
		ca, cb := float64(a)/100, float64(b)/100
		x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 3}, {5, 2}}
		y := make([]float64, len(x))
		for i, row := range x {
			y[i] = ca*row[0] + cb*row[1]
		}
		beta, err := OLS(x, y)
		if err != nil {
			return false
		}
		return math.Abs(beta[0]-ca) < 1e-6 && math.Abs(beta[1]-cb) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NonNegativeOLS never returns a negative coefficient.
func TestQuickNNLSNonNegative(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 8 {
			return true
		}
		x := make([][]float64, 6)
		y := make([]float64, 6)
		idx := 0
		next := func() float64 { v := float64(raw[idx%len(raw)]) + 1; idx++; return v }
		for i := range x {
			x[i] = []float64{next(), next()}
			y[i] = next() - 128
		}
		beta, err := NonNegativeOLS(x, y)
		if err != nil {
			return true // singular fixtures are fine
		}
		for _, b := range beta {
			if b < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
