package service

import (
	"context"
	"testing"
)

// Service hot-path benchmarks: the full request path (parse, cache, pool,
// estimate) with and without cache hits, as the baseline for later
// serving-layer perf work.

func benchEstimate(b *testing.B, req EstimateRequest) {
	srv := New(Config{Workers: 4})
	ctx := context.Background()
	if _, err := srv.Estimate(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Estimate(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceEstimateCacheHit measures the cached path: the repeat
// request costs one parse + signature + LRU lookup, no enumeration.
func BenchmarkServiceEstimateCacheHit(b *testing.B) {
	benchEstimate(b, EstimateRequest{Catalog: "tpch", SQL: tpchQ6})
}

// BenchmarkServiceEstimateCacheMiss measures the uncached path: every
// request runs the full plan-estimate enumeration through the pool.
func BenchmarkServiceEstimateCacheMiss(b *testing.B) {
	benchEstimate(b, EstimateRequest{Catalog: "tpch", SQL: tpchQ6, NoCache: true})
}

// BenchmarkServiceOptimize measures a full admitted optimization (no
// budget set, so admission is a no-op).
func BenchmarkServiceOptimize(b *testing.B) {
	srv := New(Config{Workers: 4})
	ctx := context.Background()
	req := OptimizeRequest{Catalog: "tpch", SQL: tpchQ3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Optimize(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
