package service

import (
	"time"

	"cote/internal/opt"
)

// AdmissionAction is what the admission controller decided about a full
// optimization request.
type AdmissionAction string

// Admission actions.
const (
	// AdmitAccept runs the optimization at the requested level: its
	// predicted compilation time fits the budget (or no budget is set).
	AdmitAccept AdmissionAction = "accept"
	// AdmitDowngrade runs the optimization at a cheaper level than
	// requested, the costliest one whose prediction fits the budget.
	AdmitDowngrade AdmissionAction = "downgrade"
	// AdmitReject refuses the optimization: over budget and downgrading
	// was not allowed.
	AdmitReject AdmissionAction = "reject"
	// AdmitBypass runs unchecked: no calibrated model is available, so
	// compilation time cannot be priced.
	AdmitBypass AdmissionAction = "bypass"
)

// AdmissionDecision records the controller's choice and the numbers behind
// it. It is the paper's Figure 1 decision ("is further optimization worth
// its compilation time?") with the plan-benefit side replaced by an
// operator-set compile-time budget — and, since the resource-accounting
// layer, a peak-memory budget gating on the memory model's prediction.
type AdmissionDecision struct {
	Action         AdmissionAction `json:"action"`
	RequestedLevel string          `json:"requested_level"`
	AdmittedLevel  string          `json:"admitted_level,omitempty"`
	// PredictedNS is the model's compilation-time prediction for the
	// requested level, in nanoseconds (absent under bypass).
	PredictedNS int64 `json:"predicted_ns,omitempty"`
	// BudgetNS is the budget the prediction was compared against.
	BudgetNS int64 `json:"budget_ns,omitempty"`
	// PredictedBytes is the memory model's predicted peak optimizer memory
	// for the requested level; MemBudgetBytes is the budget it was compared
	// against. Both absent when no memory budget is set.
	PredictedBytes int64 `json:"predicted_bytes,omitempty"`
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
}

// downgrades maps each dynamic-programming level to the next cheaper
// search space: bushy → inner2 → zigzag → leftdeep → greedy. The ladder
// itself lives on opt.Level so the meta-optimizer's budget abort walks the
// same rungs.
func downgrades(l opt.Level) opt.Level { return l.NextLower() }

// admit prices the requested optimization level with the cheap estimator
// and decides accept / downgrade / reject. predict returns the predicted
// compilation time of one level (the server routes it through the estimate
// cache, so repeated admissions of the same statement shape are nearly
// free); predictMem returns the memory model's predicted peak bytes (zero
// when unpriceable). A level is admitted only when every armed budget fits:
// time within budget (or unpriceable — no model means no basis to refuse)
// and predicted peak memory within memBudget. Zero budgets disarm their
// predicate; with both disarmed, or nothing priceable, control is bypassed.
// The greedy low level never needs admission: its cost is polynomial and it
// is the floor every downgrade ends at.
func admit(requested opt.Level, budget time.Duration, memBudget int64, allowDowngrade bool,
	predict func(opt.Level) (time.Duration, bool, error),
	predictMem func(opt.Level) (int64, error)) (*AdmissionDecision, error) {

	dec := &AdmissionDecision{
		RequestedLevel: LevelName(requested),
		AdmittedLevel:  LevelName(requested),
	}
	if budget > 0 {
		dec.BudgetNS = budget.Nanoseconds()
	}
	if memBudget > 0 {
		dec.MemBudgetBytes = memBudget
	}
	if (budget <= 0 && memBudget <= 0) || requested == opt.LevelLow {
		dec.Action = AdmitAccept
		return dec, nil
	}
	// check prices one level against every armed budget. priced reports
	// whether any predicate could be priced at all; record stores the
	// requested level's predictions on the decision.
	check := func(l opt.Level, record bool) (fits, priced bool, err error) {
		fits = true
		if budget > 0 {
			p, ok, err := predict(l)
			if err != nil {
				return false, false, err
			}
			if ok {
				priced = true
				if record {
					dec.PredictedNS = p.Nanoseconds()
				}
				if p > budget {
					fits = false
				}
			}
		}
		if memBudget > 0 {
			pb, err := predictMem(l)
			if err != nil {
				return false, false, err
			}
			if pb > 0 {
				priced = true
				if record {
					dec.PredictedBytes = pb
				}
				if pb > memBudget {
					fits = false
				}
			}
		}
		return fits, priced, nil
	}
	fits, priced, err := check(requested, true)
	if err != nil {
		return nil, err
	}
	if !priced {
		dec.Action = AdmitBypass
		return dec, nil
	}
	if fits {
		dec.Action = AdmitAccept
		return dec, nil
	}
	if !allowDowngrade {
		dec.Action = AdmitReject
		dec.AdmittedLevel = ""
		return dec, nil
	}
	// Walk down the level ladder to the costliest level that fits; the
	// greedy floor always fits.
	for l := downgrades(requested); ; l = downgrades(l) {
		if l == opt.LevelLow {
			dec.Action = AdmitDowngrade
			dec.AdmittedLevel = LevelName(l)
			return dec, nil
		}
		fits, priced, err := check(l, false)
		if err != nil {
			return nil, err
		}
		if !priced || fits {
			dec.Action = AdmitDowngrade
			dec.AdmittedLevel = LevelName(l)
			return dec, nil
		}
	}
}

// noMemPredict is the disarmed memory predicate for call sites without a
// memory budget.
func noMemPredict(opt.Level) (int64, error) { return 0, nil }
