package service

import (
	"time"

	"cote/internal/opt"
)

// AdmissionAction is what the admission controller decided about a full
// optimization request.
type AdmissionAction string

// Admission actions.
const (
	// AdmitAccept runs the optimization at the requested level: its
	// predicted compilation time fits the budget (or no budget is set).
	AdmitAccept AdmissionAction = "accept"
	// AdmitDowngrade runs the optimization at a cheaper level than
	// requested, the costliest one whose prediction fits the budget.
	AdmitDowngrade AdmissionAction = "downgrade"
	// AdmitReject refuses the optimization: over budget and downgrading
	// was not allowed.
	AdmitReject AdmissionAction = "reject"
	// AdmitBypass runs unchecked: no calibrated model is available, so
	// compilation time cannot be priced.
	AdmitBypass AdmissionAction = "bypass"
)

// AdmissionDecision records the controller's choice and the numbers behind
// it. It is the paper's Figure 1 decision ("is further optimization worth
// its compilation time?") with the plan-benefit side replaced by an
// operator-set compile-time budget.
type AdmissionDecision struct {
	Action         AdmissionAction `json:"action"`
	RequestedLevel string          `json:"requested_level"`
	AdmittedLevel  string          `json:"admitted_level,omitempty"`
	// PredictedNS is the model's compilation-time prediction for the
	// requested level, in nanoseconds (absent under bypass).
	PredictedNS int64 `json:"predicted_ns,omitempty"`
	// BudgetNS is the budget the prediction was compared against.
	BudgetNS int64 `json:"budget_ns,omitempty"`
}

// downgrades maps each dynamic-programming level to the next cheaper
// search space: bushy → inner2 → zigzag → leftdeep → greedy. The ladder
// itself lives on opt.Level so the meta-optimizer's budget abort walks the
// same rungs.
func downgrades(l opt.Level) opt.Level { return l.NextLower() }

// admit prices the requested optimization level with the cheap estimator
// and decides accept / downgrade / reject. predict returns the predicted
// compilation time of one level (the server routes it through the estimate
// cache, so repeated admissions of the same statement shape are nearly
// free). A zero budget or a nil-model predict (predicted == 0 with ok ==
// false) bypasses control. The greedy low level never needs admission: its
// cost is polynomial and it is the floor every downgrade ends at.
func admit(requested opt.Level, budget time.Duration, allowDowngrade bool,
	predict func(opt.Level) (time.Duration, bool, error)) (*AdmissionDecision, error) {

	dec := &AdmissionDecision{
		RequestedLevel: LevelName(requested),
		AdmittedLevel:  LevelName(requested),
		BudgetNS:       budget.Nanoseconds(),
	}
	if budget <= 0 || requested == opt.LevelLow {
		dec.Action = AdmitAccept
		if budget <= 0 {
			dec.BudgetNS = 0
		}
		return dec, nil
	}
	predicted, ok, err := predict(requested)
	if err != nil {
		return nil, err
	}
	if !ok {
		dec.Action = AdmitBypass
		return dec, nil
	}
	dec.PredictedNS = predicted.Nanoseconds()
	if predicted <= budget {
		dec.Action = AdmitAccept
		return dec, nil
	}
	if !allowDowngrade {
		dec.Action = AdmitReject
		dec.AdmittedLevel = ""
		return dec, nil
	}
	// Walk down the level ladder to the costliest level that fits; the
	// greedy floor always fits.
	for l := downgrades(requested); ; l = downgrades(l) {
		if l == opt.LevelLow {
			dec.Action = AdmitDowngrade
			dec.AdmittedLevel = LevelName(l)
			return dec, nil
		}
		p, ok, err := predict(l)
		if err != nil {
			return nil, err
		}
		if !ok || p <= budget {
			dec.Action = AdmitDowngrade
			dec.AdmittedLevel = LevelName(l)
			return dec, nil
		}
	}
}
