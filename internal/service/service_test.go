package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cote/internal/opt"
)

func TestParseLevelRoundTrip(t *testing.T) {
	for _, l := range []opt.Level{opt.LevelLow, opt.LevelMediumLeftDeep, opt.LevelMediumZigZag, opt.LevelHighInner2, opt.LevelHigh} {
		got, err := ParseLevel(LevelName(l))
		if err != nil || got != l {
			t.Fatalf("round trip %v: %v, %v", l, got, err)
		}
	}
	if l, err := ParseLevel(""); err != nil || l != opt.LevelHighInner2 {
		t.Fatalf("default level = %v, %v", l, err)
	}
	if _, err := ParseLevel("frobnicate"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

// predictTable drives admit with canned per-level predictions.
func predictTable(m map[opt.Level]time.Duration) func(opt.Level) (time.Duration, bool, error) {
	return func(l opt.Level) (time.Duration, bool, error) {
		if m == nil {
			return 0, false, nil // no model
		}
		return m[l], true, nil
	}
}

func TestAdmitDecisions(t *testing.T) {
	preds := map[opt.Level]time.Duration{
		opt.LevelHigh:           100 * time.Millisecond,
		opt.LevelHighInner2:     40 * time.Millisecond,
		opt.LevelMediumZigZag:   20 * time.Millisecond,
		opt.LevelMediumLeftDeep: 8 * time.Millisecond,
	}
	cases := []struct {
		name      string
		level     opt.Level
		budget    time.Duration
		downgrade bool
		preds     map[opt.Level]time.Duration
		action    AdmissionAction
		admitted  string
	}{
		{"no budget", opt.LevelHigh, 0, false, preds, AdmitAccept, "high"},
		{"no model", opt.LevelHigh, time.Millisecond, false, nil, AdmitBypass, "high"},
		{"within budget", opt.LevelHigh, 200 * time.Millisecond, false, preds, AdmitAccept, "high"},
		{"over, reject", opt.LevelHigh, 50 * time.Millisecond, false, preds, AdmitReject, ""},
		{"over, downgrade one", opt.LevelHigh, 50 * time.Millisecond, true, preds, AdmitDowngrade, "inner2"},
		{"over, downgrade two", opt.LevelHigh, 25 * time.Millisecond, true, preds, AdmitDowngrade, "zigzag"},
		{"over, downgrade to floor", opt.LevelHigh, time.Millisecond, true, preds, AdmitDowngrade, "low"},
		{"greedy always admitted", opt.LevelLow, time.Nanosecond, false, preds, AdmitAccept, "low"},
	}
	for _, tc := range cases {
		dec, err := admit(tc.level, tc.budget, 0, tc.downgrade, predictTable(tc.preds), noMemPredict)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if dec.Action != tc.action || dec.AdmittedLevel != tc.admitted {
			t.Fatalf("%s: got %s/%q, want %s/%q", tc.name, dec.Action, dec.AdmittedLevel, tc.action, tc.admitted)
		}
	}
}

// memTable drives admit with canned per-level peak-memory predictions.
func memTable(m map[opt.Level]int64) func(opt.Level) (int64, error) {
	return func(l opt.Level) (int64, error) { return m[l], nil }
}

func TestAdmitMemoryBudget(t *testing.T) {
	preds := map[opt.Level]time.Duration{
		opt.LevelHigh:           100 * time.Millisecond,
		opt.LevelHighInner2:     40 * time.Millisecond,
		opt.LevelMediumZigZag:   20 * time.Millisecond,
		opt.LevelMediumLeftDeep: 8 * time.Millisecond,
	}
	mems := map[opt.Level]int64{
		opt.LevelHigh:           1 << 20,
		opt.LevelHighInner2:     1 << 18,
		opt.LevelMediumZigZag:   1 << 16,
		opt.LevelMediumLeftDeep: 1 << 14,
	}
	cases := []struct {
		name      string
		level     opt.Level
		budget    time.Duration
		memBudget int64
		downgrade bool
		action    AdmissionAction
		admitted  string
	}{
		{"mem within budget", opt.LevelHigh, 0, 1 << 21, false, AdmitAccept, "high"},
		{"mem over, reject", opt.LevelHigh, 0, 1 << 19, false, AdmitReject, ""},
		{"mem over, downgrade one", opt.LevelHigh, 0, 1 << 19, true, AdmitDowngrade, "inner2"},
		{"mem over, downgrade to floor", opt.LevelHigh, 0, 1 << 10, true, AdmitDowngrade, "low"},
		{"time fits but mem rejects", opt.LevelHigh, time.Second, 1 << 19, false, AdmitReject, ""},
		{"mem fits but time downgrades", opt.LevelHigh, 25 * time.Millisecond, 1 << 21, true, AdmitDowngrade, "zigzag"},
		{"both budgets downgrade to tightest", opt.LevelHigh, 50 * time.Millisecond, 1 << 17, true, AdmitDowngrade, "zigzag"},
	}
	for _, tc := range cases {
		dec, err := admit(tc.level, tc.budget, tc.memBudget, tc.downgrade, predictTable(preds), memTable(mems))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if dec.Action != tc.action || dec.AdmittedLevel != tc.admitted {
			t.Fatalf("%s: got %s/%q, want %s/%q", tc.name, dec.Action, dec.AdmittedLevel, tc.action, tc.admitted)
		}
		if tc.memBudget > 0 && dec.Action != AdmitBypass && dec.PredictedBytes != mems[tc.level] {
			t.Fatalf("%s: PredictedBytes = %d, want %d", tc.name, dec.PredictedBytes, mems[tc.level])
		}
	}
}

func TestPoolBoundsConcurrencyAndQueue(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = Run(p, context.Background(), func() (int, error) {
			close(started)
			<-block
			return 1, nil
		})
	}()
	<-started

	// Second request waits; fill the one queue slot with it.
	waitErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := Run(p, context.Background(), func() (int, error) { return 2, nil })
		waitErr <- err
	}()
	// Give the waiter time to enter the queue, then overflow it.
	deadline := time.After(2 * time.Second)
	for {
		if w, _ := p.Depth(); w >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := Run(p, context.Background(), func() (int, error) { return 3, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow request: %v, want ErrQueueFull", err)
	}

	close(block)
	wg.Wait()
	if err := <-waitErr; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
	if w, r := p.Depth(); w != 0 || r != 0 {
		t.Fatalf("pool not drained: waiting %d running %d", w, r)
	}
}

func TestPoolContextExpiryWhileQueued(t *testing.T) {
	p := NewPool(1, 4)
	block := make(chan struct{})
	started := make(chan struct{})
	go Run(p, context.Background(), func() (int, error) {
		close(started)
		<-block
		return 0, nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := Run(p, ctx, func() (int, error) { return 0, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-past-deadline request: %v", err)
	}
	close(block)
}

func TestRegistryUploadAndValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Get("tpch"); err != nil {
		t.Fatalf("built-in tpch missing: %v", err)
	}
	def := CatalogDef{
		Name: "shop",
		Tables: []TableDef{
			{
				Name: "item", Rows: 50_000,
				Columns: []ColumnDef{{Name: "id", NDV: 50_000}, {Name: "cat", NDV: 40}},
				Indexes: []IndexDef{{Name: "item_pk", Unique: true, Columns: []string{"id"}}},
			},
			{
				Name: "sale", Rows: 1_000_000,
				Columns:     []ColumnDef{{Name: "item_id", NDV: 50_000}, {Name: "day", NDV: 365}},
				ForeignKeys: []ForeignKeyDef{{Columns: []string{"item_id"}, RefTable: "item", RefColumns: []string{"id"}}},
			},
		},
	}
	entry, err := r.Register(def)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Config.Nodes != 1 {
		t.Fatalf("serial upload got %d nodes", entry.Config.Nodes)
	}
	got, err := r.Get("shop")
	if err != nil || got.Catalog.NumTables() != 2 {
		t.Fatalf("Get(shop): %v, %v", got, err)
	}

	// Partitioned upload selects a parallel cost config.
	par := def
	par.Name = "shop_p"
	par.Tables = append([]TableDef(nil), def.Tables...)
	tbl := par.Tables[1]
	tbl.Name = "sale_p"
	tbl.Partition = &PartitionDef{Nodes: 4, Columns: []string{"item_id"}}
	par.Tables[1] = tbl
	pentry, err := r.Register(par)
	if err != nil {
		t.Fatal(err)
	}
	if pentry.Config.Nodes != 4 {
		t.Fatalf("partitioned upload got %d nodes", pentry.Config.Nodes)
	}

	// Builder panics (duplicate column) surface as errors, not crashes.
	bad := CatalogDef{Name: "bad", Tables: []TableDef{{
		Name: "t", Rows: 10,
		Columns: []ColumnDef{{Name: "c", NDV: 1}, {Name: "c", NDV: 2}},
	}}}
	if _, err := r.Register(bad); err == nil {
		t.Fatal("duplicate column accepted")
	}
	// Built-ins are protected.
	if _, err := r.Register(CatalogDef{Name: "tpch", Tables: def.Tables}); err == nil {
		t.Fatal("built-in overwrite accepted")
	}
	// A failed upload must not register anything.
	if _, err := r.Get("bad"); err == nil {
		t.Fatal("invalid catalog registered")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket [64, 128) µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 100*time.Microsecond || p50 > time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 50*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
}
