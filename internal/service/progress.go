package service

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"cote/internal/optctx"
)

// progressTable tracks in-flight optimize requests so GET /v1/progress can
// render each one's live meter: the execution context's generated-plan
// counter over the COTE-predicted total (the paper's Section 6 progress
// application, served over HTTP). Entries exist from admission until the
// compile returns, queueing included.
type progressTable struct {
	mu     sync.Mutex
	nextID int64
	runs   map[int64]*progressRun
}

type progressRun struct {
	id      int64
	catalog string
	level   string
	started time.Time
	oc      *optctx.Ctx
}

func newProgressTable() *progressTable {
	return &progressTable{runs: make(map[int64]*progressRun)}
}

// add registers one in-flight run and returns its handle for remove.
func (t *progressTable) add(catalog, level string, oc *optctx.Ctx) *progressRun {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	r := &progressRun{id: t.nextID, catalog: catalog, level: level, started: time.Now(), oc: oc}
	t.runs[r.id] = r
	return r
}

func (t *progressTable) remove(r *progressRun) {
	t.mu.Lock()
	delete(t.runs, r.id)
	t.mu.Unlock()
}

// ProgressInfo is one in-flight optimization in GET /v1/progress.
type ProgressInfo struct {
	ID        int64  `json:"id"`
	Catalog   string `json:"catalog"`
	Level     string `json:"level"`
	ElapsedMS int64  `json:"elapsed_ms"`
	// Generated and Predicted are the progress meter: join plans generated
	// so far over the COTE-predicted total (0 when no model is installed).
	Generated int64 `json:"generated"`
	Predicted int64 `json:"predicted"`
	// Percent is 100*generated/predicted clamped to [0, 100], or -1 when no
	// prediction is available.
	Percent float64 `json:"percent"`
	// Stages breaks the run's work down by compilation stage.
	Stages map[string]StageInfo `json:"stages"`
}

// StageInfo is one stage's live counters.
type StageInfo struct {
	Count  int64 `json:"count"`
	TimeUS int64 `json:"time_us"`
}

// snapshot renders every in-flight run, oldest first.
func (t *progressTable) snapshot() []ProgressInfo {
	t.mu.Lock()
	runs := make([]*progressRun, 0, len(t.runs))
	for _, r := range t.runs {
		runs = append(runs, r)
	}
	t.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].id < runs[j].id })

	out := make([]ProgressInfo, 0, len(runs))
	for _, r := range runs {
		gen, pred := r.oc.Progress()
		pct := r.oc.Fraction()
		if pct >= 0 {
			pct *= 100
		}
		info := ProgressInfo{
			ID:        r.id,
			Catalog:   r.catalog,
			Level:     r.level,
			ElapsedMS: time.Since(r.started).Milliseconds(),
			Generated: gen,
			Predicted: pred,
			Percent:   pct,
			Stages:    make(map[string]StageInfo, optctx.NumStages),
		}
		for s, st := range r.oc.StageSnapshot() {
			info.Stages[optctx.Stage(s).String()] = StageInfo{Count: st.Count, TimeUS: st.Time.Microseconds()}
		}
		out = append(out, info)
	}
	return out
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"in_flight": s.progress.snapshot()})
}
