package service

import (
	"context"
	"errors"
	"sync/atomic"

	"cote/internal/faultinject"
)

// ErrQueueFull reports that the pool's waiting line is at capacity; the
// server maps it to 503 so load sheds at the door instead of queueing
// unboundedly.
var ErrQueueFull = errors.New("service: worker pool queue full")

// Pool bounds the number of concurrently running optimizer/estimator calls
// and the number of requests allowed to wait for a slot. Compilation work
// is CPU-bound, so the worker count defaults to GOMAXPROCS in the server;
// anything beyond workers+queue in flight is rejected immediately.
type Pool struct {
	slots    chan struct{}
	maxQueue int64
	// inflight counts admitted requests from entry until their work
	// completes; running counts those actually holding a worker slot.
	inflight atomic.Int64
	running  atomic.Int64
	// abandoned counts runs whose caller's ctx expired mid-run — the work
	// was cancelled cooperatively and its slot reclaimed.
	abandoned atomic.Int64
}

// NewPool returns a pool of the given worker and waiting-line sizes
// (values below 1 are raised to 1).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	return &Pool{slots: make(chan struct{}, workers), maxQueue: int64(queue)}
}

// Workers returns the number of worker slots.
func (p *Pool) Workers() int { return cap(p.slots) }

// Abandoned returns the number of runs cancelled mid-flight by their
// caller's context expiring.
func (p *Pool) Abandoned() int64 { return p.abandoned.Load() }

// Depth returns the current waiting and running request counts.
func (p *Pool) Depth() (waiting, running int64) {
	r := p.running.Load()
	w := p.inflight.Load() - r
	if w < 0 {
		w = 0
	}
	return w, r
}

// Run executes fn on the pool: it waits for a worker slot (or gives up when
// ctx expires or the waiting line is full) and runs fn in a fresh
// goroutine. When ctx expires mid-run the call returns ctx.Err()
// immediately and the run is counted as abandoned; fn is expected to
// observe the same ctx through its execution context (the optimizer's
// cooperative cancellation points), so the goroutine unwinds and frees its
// slot promptly rather than running to completion. The concurrency bound
// holds either way — the slot is released only when fn returns.
func Run[T any](p *Pool, ctx context.Context, fn func() (T, error)) (T, error) {
	var zero T
	// Slot acquisition is the seam where a real scheduler dependency would
	// fail; an armed chaos plan fails (or stalls) the acquisition here,
	// before the request touches the waiting line.
	if err := faultinject.Check(faultinject.PointPoolAcquire); err != nil {
		return zero, err
	}
	if p.inflight.Add(1) > int64(cap(p.slots))+p.maxQueue {
		p.inflight.Add(-1)
		return zero, ErrQueueFull
	}
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.inflight.Add(-1)
		return zero, ctx.Err()
	}
	p.running.Add(1)

	type result struct {
		v   T
		err error
	}
	done := make(chan result, 1)
	go func() {
		defer func() {
			p.running.Add(-1)
			p.inflight.Add(-1)
			<-p.slots
		}()
		v, err := fn()
		done <- result{v, err}
	}()
	select {
	case r := <-done:
		return r.v, r.err
	case <-ctx.Done():
		p.abandoned.Add(1)
		return zero, ctx.Err()
	}
}
