package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// TestMetricsSnapshotGolden pins the exact /metrics wire form of a freshly
// constructed server: every section, every key, byte for byte. The snapshot
// is built from maps (encoding/json marshals map keys in sorted order) and
// fixed-field structs, so for fixed counter values the rendering is
// deterministic — dashboards and scrapers can depend on the shape without a
// schema. Renaming or dropping a key is a contract change and must show up
// as a golden diff, not a silent scrape gap.
//
// uptime_seconds is the one wall-clock field; the test zeroes it before
// comparing. Regenerate with: go test ./internal/service -run Golden -update
func TestMetricsSnapshotGolden(t *testing.T) {
	srv := New(Config{Workers: 2, Queue: 8})
	fetch := func() []byte {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("GET /metrics: status %d", rec.Code)
		}
		return rec.Body.Bytes()
	}

	// Two scrapes of an idle server must be byte-identical (modulo uptime):
	// the determinism claim, checked on the raw wire bytes.
	a, b := normalizeMetrics(t, fetch()), normalizeMetrics(t, fetch())
	if !bytes.Equal(a, b) {
		t.Fatalf("two idle scrapes differ:\n%s\n---\n%s", a, b)
	}

	golden := filepath.Join("testdata", "metrics_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, a, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(a, want) {
		t.Errorf("/metrics diverged from golden (run with -update if intentional):\n got: %s\nwant: %s", a, want)
	}
}

// normalizeMetrics zeroes the wall-clock field and re-renders indented; the
// round-trip through a map re-sorts nothing (the wire form is already in
// sorted key order at every level).
func normalizeMetrics(t *testing.T, raw []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics body undecodable: %v", err)
	}
	if _, ok := m["uptime_seconds"]; !ok {
		t.Fatal("metrics body missing uptime_seconds")
	}
	m["uptime_seconds"] = 0
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}
