package service

import (
	"fmt"
	"sync"

	"cote/internal/core"
	"cote/internal/lru"
	"cote/internal/opt"
	"cote/internal/query"
)

// EstimateCache is a goroutine-safe bounded LRU of estimation results,
// keyed by the structural statement signature (core.Signature) plus the
// options that change the estimate: catalog, level and node count. It
// replaces ad-hoc reuse of the unbounded StatementCache on the serving
// path: estimates are deterministic for a given (signature, options) pair,
// so a hit saves the whole enumeration pass.
//
// Cached estimates are stored without a time prediction — the server's
// model can be recalibrated at any moment, so PredictedTime is recomputed
// from the cached counts on every response rather than frozen at insert.
type EstimateCache struct {
	mu     sync.Mutex
	lru    *lru.Cache[string, *core.Estimate]
	hits   int64
	misses int64
}

// NewEstimateCache returns an empty cache evicting beyond capacity entries.
func NewEstimateCache(capacity int) *EstimateCache {
	return &EstimateCache{lru: lru.New[string, *core.Estimate](capacity)}
}

// EstimateKey builds the cache key for a query under the given options.
func EstimateKey(catalogName string, level opt.Level, nodes int, blk *query.Block) string {
	return fmt.Sprintf("%s|%d|%d|%s", catalogName, level, nodes, core.Signature(blk))
}

// Get returns the cached estimate for the key. Callers must not mutate the
// returned Estimate; copy it first (the server does, to fill predictions).
func (c *EstimateCache) Get(key string) (*core.Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.lru.Get(key)
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// Put stores an estimate under the key.
func (c *EstimateCache) Put(key string, e *core.Estimate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Put(key, e)
}

// Stats returns hit/miss counts and the current size and capacity.
func (c *EstimateCache) Stats() (hits, misses int64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len(), c.lru.Cap()
}
