package service

import (
	"context"
	"sync"

	"cote/internal/core"
	"cote/internal/faultinject"
	"cote/internal/fingerprint"
	"cote/internal/lru"
	"cote/internal/opt"
)

// EstimateKey identifies one cacheable estimate.
//
// Key scheme — the fix for the raw-SQL keying bug class the cache shipped
// with (the old key was catalogName|level|nodes|Signature(sql)):
//
//   - FP is the canonical structural fingerprint of the parsed query
//     (internal/fingerprint). Two spellings differing in whitespace,
//     aliasing, literal values or join-clause order collapse to one entry,
//     and — because the fingerprint embeds every estimation-relevant schema
//     fact (row counts, NDVs at referenced columns, indexes, partitioning)
//     but never the catalog *name* — two catalogs registered under
//     different names with identical schemas share entries.
//   - Epoch invalidates on catalog re-upload: re-registering a name bumps
//     its RegistryEntry.Epoch to a fresh process-unique value, so entries
//     cached against the old statistics can never be served again, while
//     built-ins and first registrations (epoch 0) keep sharing.
//   - Level and Nodes are the request options that change plan counts.
//     The serving path fixes the remaining core.Options knobs at their
//     defaults, so they do not appear here (core.FPKey carries them for
//     library users).
//
// Soundness of fingerprint keying rests on the canonical rebuild: the
// server estimates fingerprint.Canonical(blk), for which fingerprint
// equality implies identical plan counts by construction.
type EstimateKey struct {
	Epoch uint64
	FP    fingerprint.FP
	Level opt.Level
	Nodes int
}

// flight is one in-progress enumeration concurrent requests wait on.
type flight struct {
	done chan struct{}
	est  *core.Estimate
	err  error
}

// EstimateCache is a goroutine-safe bounded LRU of estimation results keyed
// by EstimateKey, with a singleflight group over misses: N concurrent
// requests for the same key run one enumeration while N-1 wait for its
// result.
//
// Cached estimates are stored without a time prediction — the server's
// model can be recalibrated at any moment, so PredictedTime is recomputed
// from the cached counts on every response rather than frozen at insert.
type EstimateCache struct {
	mu      sync.Mutex
	lru     *lru.Cache[EstimateKey, *core.Estimate]
	flights map[EstimateKey]*flight
	hits    int64
	misses  int64
	shared  int64
}

// NewEstimateCache returns an empty cache evicting beyond capacity entries.
func NewEstimateCache(capacity int) *EstimateCache {
	return &EstimateCache{
		lru:     lru.New[EstimateKey, *core.Estimate](capacity),
		flights: make(map[EstimateKey]*flight),
	}
}

// Do returns the estimate for key, computing it through fn at most once
// across concurrent callers: a cache hit returns immediately, a request
// finding another's computation in flight waits for it, and everyone else
// leads a computation whose success is cached. hit reports an LRU hit;
// shared reports the result (or error) came from another caller's flight.
// A waiter abandoned by ctx returns ctx's error without disturbing the
// flight. Callers must not mutate the returned Estimate.
func (c *EstimateCache) Do(ctx context.Context, key EstimateKey, fn func() (*core.Estimate, error)) (est *core.Estimate, hit, shared bool, err error) {
	c.mu.Lock()
	if e, ok := c.lru.Get(key); ok {
		c.hits++
		c.mu.Unlock()
		return e, true, false, nil
	}
	if f, ok := c.flights[key]; ok {
		c.shared++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.est, false, true, f.err
		case <-ctx.Done():
			return nil, false, true, ctx.Err()
		}
	}
	c.misses++
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	// The fill is the flight's one side-effectful step; an injected fill
	// fault fails the leader before the enumeration runs, and — exactly like
	// a real failure — propagates to every waiter sharing the flight while
	// caching nothing.
	if f.err = faultinject.Check(faultinject.PointCacheFill); f.err == nil {
		f.est, f.err = fn()
	}

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.lru.Put(key, f.est)
	}
	c.mu.Unlock()
	close(f.done)
	return f.est, false, false, f.err
}

// Stats returns hit/miss counts and the current size and capacity.
func (c *EstimateCache) Stats() (hits, misses int64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len(), c.lru.Cap()
}

// Shared returns how many requests were served by waiting on another
// request's in-flight enumeration instead of running their own.
func (c *EstimateCache) Shared() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shared
}
