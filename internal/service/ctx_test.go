// Deadline, progress and budget-abort behaviour of the serving path: a
// request timeout must stop the compile cooperatively and return the worker
// slot, /v1/progress must expose in-flight runs, and a configured budget
// factor must abort-and-downgrade mid-flight compiles.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cote/internal/optctx"
)

// heavySQL joins all eight TPC-H tables; at the unrestricted "high" level it
// compiles in tens of milliseconds — long enough that a millisecond-scale
// deadline reliably lands mid-enumeration.
const heavySQL = `SELECT c_name FROM customer, orders, lineitem, supplier, nation, region, part, partsupp
	WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
	  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
	  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	  AND p_partkey = l_partkey AND ps_partkey = p_partkey AND ps_suppkey = s_suppkey`

func TestOptimizeDeadlineStopsCompileAndFreesSlot(t *testing.T) {
	srv := New(Config{Workers: 1, RequestTimeout: 5 * time.Millisecond})

	start := time.Now()
	_, err := srv.Optimize(context.Background(), OptimizeRequest{Catalog: "tpch", SQL: heavySQL, Level: "high"})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("request took %v to honor a 5ms deadline", elapsed)
	}
	if got := srv.pool.Abandoned(); got < 1 {
		t.Errorf("abandoned runs = %d, want >= 1", got)
	}

	// The slot must come back: the cancelled compile unwinds cooperatively
	// and releases its worker, so a follow-up request on the 1-worker pool
	// succeeds instead of queueing behind a zombie.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, running := srv.pool.Depth(); running == 0 {
			break
		}
		if time.Now().After(deadline) {
			_, running := srv.pool.Depth()
			t.Fatalf("worker slot still held %v after the deadline (running=%d)", time.Since(start), running)
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := srv.Optimize(context.Background(), OptimizeRequest{Catalog: "tpch", SQL: tpchQ3})
	if err != nil || resp.Plan == "" {
		t.Fatalf("follow-up request on the freed slot: %v %+v", err, resp)
	}
}

// TestPoolContextExpiryWhileRunning pins the abandoned-run semantics in
// isolation: Run returns ctx.Err() the moment the context expires, counts
// the run abandoned, and releases the slot only when fn actually returns.
func TestPoolContextExpiryWhileRunning(t *testing.T) {
	p := NewPool(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	returned := make(chan error, 1)
	go func() {
		_, err := Run(p, ctx, func() (int, error) {
			<-release
			return 0, nil
		})
		returned <- err
	}()
	// Wait until fn holds the slot, then expire the caller's context.
	for {
		if _, running := p.Depth(); running == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-returned; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if got := p.Abandoned(); got != 1 {
		t.Fatalf("abandoned = %d, want 1", got)
	}
	if _, running := p.Depth(); running != 1 {
		t.Fatalf("slot released before fn returned (running=%d)", running)
	}
	close(release)
	for {
		if _, running := p.Depth(); running == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func TestProgressEndpoint(t *testing.T) {
	srv := New(Config{Workers: 2})
	srv.SetModel(testModel(1e-9)) // installs predictions: progress has a denominator
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Empty before any request.
	_, body := getJSON(t, ts.URL+"/v1/progress")
	if got := body["in_flight"].([]any); len(got) != 0 {
		t.Fatalf("idle server reports in-flight runs: %v", got)
	}

	// Keep a window of heavy compiles in flight and catch one mid-run.
	reqDone := make(chan error, 1)
	go func() {
		for i := 0; i < 5; i++ {
			data, _ := json.Marshal(OptimizeRequest{Catalog: "tpch", SQL: heavySQL, Level: "high"})
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(data))
			if err != nil {
				reqDone <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				reqDone <- errors.New(resp.Status)
				return
			}
		}
		reqDone <- nil
	}()

	var seen map[string]any
	deadline := time.Now().Add(10 * time.Second)
poll:
	for time.Now().Before(deadline) {
		_, body := getJSON(t, ts.URL+"/v1/progress")
		for _, e := range body["in_flight"].([]any) {
			seen = e.(map[string]any)
			break poll
		}
		select {
		case err := <-reqDone:
			if err != nil {
				t.Fatal(err)
			}
			t.Skip("all five heavy compiles finished before a progress poll landed")
		default:
		}
		time.Sleep(500 * time.Microsecond)
	}
	if seen == nil {
		t.Fatal("no in-flight run observed")
	}
	if seen["catalog"] != "tpch" || seen["level"] != "high" {
		t.Errorf("progress entry: %v", seen)
	}
	if seen["predicted"].(float64) <= 0 {
		t.Errorf("no prediction in the progress meter (model installed): %v", seen)
	}
	if pct := seen["percent"].(float64); pct < 0 || pct > 100 {
		t.Errorf("percent %v outside [0, 100]", pct)
	}
	if _, ok := seen["stages"].(map[string]any); !ok {
		t.Errorf("no per-stage breakdown: %v", seen)
	}

	if err := <-reqDone; err != nil {
		t.Fatal(err)
	}
	_, body = getJSON(t, ts.URL+"/v1/progress")
	if got := body["in_flight"].([]any); len(got) != 0 {
		t.Fatalf("progress entries leaked after completion: %v", got)
	}

	// The per-stage counters surfaced in /metrics too.
	_, m := getJSON(t, ts.URL+"/metrics")
	stages := m["stages"].(map[string]any)
	if stages["parse"].(map[string]any)["count"].(float64) < 5 {
		t.Errorf("parse stage uncounted: %v", stages)
	}
	if stages["generate"].(map[string]any)["count"].(float64) <= 0 {
		t.Errorf("generate stage uncounted: %v", stages)
	}
}

func TestServerBudgetAbortDowngrades(t *testing.T) {
	srv := New(Config{Workers: 2, Downgrade: true, BudgetFactor: 0.02, Model: testModel(1e-9)})
	resp, err := srv.Optimize(context.Background(), OptimizeRequest{Catalog: "tpch", SQL: tpchQ6})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.BudgetAborted) == 0 {
		t.Fatalf("no level aborted under a 0.02 budget factor: %+v", resp)
	}
	if resp.BudgetAborted[0] != "inner2" {
		t.Errorf("first abort %q, want the admitted level inner2", resp.BudgetAborted[0])
	}
	if resp.Plan == "" || resp.Level == "inner2" {
		t.Errorf("downgrade did not land on a cheaper level with a plan: level=%q plan?=%v", resp.Level, resp.Plan != "")
	}
	if got := srv.metrics.BudgetAborts.Value(); got < 1 {
		t.Errorf("budget_aborts metric = %d, want >= 1", got)
	}
}

func TestServerBudgetAbortRejectsWithoutDowngrade(t *testing.T) {
	srv := New(Config{Workers: 2, BudgetFactor: 0.02, Model: testModel(1e-9)})
	_, err := srv.Optimize(context.Background(), OptimizeRequest{Catalog: "tpch", SQL: tpchQ6})
	if !errors.Is(err, optctx.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
