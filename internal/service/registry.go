// Package service turns the cote library into a long-running, multi-tenant
// estimation daemon: a catalog registry clients compile against, a bounded
// worker pool that keeps estimation and optimization requests from
// stampeding the process, a singleflight LRU estimate cache keyed by
// (catalog epoch, structural fingerprint, level) so repeat structures in any
// spelling skip enumeration, a MOP-driven admission controller that prices a full
// optimization before running it (the paper's Figure 1 meta-optimizer
// recast as a serving-side guardrail), and an observability layer exposed
// at /metrics. cmd/coted wraps it in an HTTP server.
package service

import (
	"fmt"
	"sort"
	"sync"

	"cote/internal/catalog"
	"cote/internal/cost"
	"cote/internal/faultinject"
)

// RegistryEntry is one schema clients can submit SQL against.
type RegistryEntry struct {
	Name    string
	Catalog *catalog.Catalog
	// Config is the execution architecture the optimizer costs for:
	// Parallel-N when any table is partitioned across N > 1 nodes, serial
	// otherwise.
	Config *cost.Config
	// BuiltIn marks the catalogs registered at startup.
	BuiltIn bool
	// Epoch is the cache-invalidation generation of this entry: 0 for
	// built-ins and first registrations, a fresh process-unique value for
	// every re-upload of an existing name. It is part of EstimateKey, so
	// estimates cached against a catalog's old statistics die with its old
	// epoch while first registrations with identical schemas keep sharing.
	Epoch uint64
}

// Registry is the goroutine-safe catalog registry. Clients register a
// schema once (or use a built-in) and then submit SQL by catalog name.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*RegistryEntry
	// epochs is the last epoch handed to a re-uploaded catalog; it only
	// grows, so an epoch is never reused across names or uploads.
	epochs uint64
}

// NewRegistry returns a registry pre-populated with the built-in schemas:
// tpch, warehouse1 and warehouse2, plus their 4-node partitioned variants
// under a _p suffix.
func NewRegistry() *Registry {
	r := &Registry{entries: make(map[string]*RegistryEntry)}
	builtins := []struct {
		name string
		cat  *catalog.Catalog
		cfg  *cost.Config
	}{
		{"tpch", catalog.TPCH(1, 1), cost.Serial},
		{"tpch_p", catalog.TPCH(1, 4), cost.Parallel4},
		{"warehouse1", catalog.Warehouse1(1), cost.Serial},
		{"warehouse1_p", catalog.Warehouse1(4), cost.Parallel4},
		{"warehouse2", catalog.Warehouse2(1), cost.Serial},
		{"warehouse2_p", catalog.Warehouse2(4), cost.Parallel4},
	}
	for _, b := range builtins {
		r.entries[b.name] = &RegistryEntry{Name: b.name, Catalog: b.cat, Config: b.cfg, BuiltIn: true}
	}
	return r
}

// Get returns the named entry.
func (r *Registry) Get(name string) (*RegistryEntry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("service: unknown catalog %q", name)
	}
	return e, nil
}

// CatalogInfo is the listing form of one registry entry.
type CatalogInfo struct {
	Name    string `json:"name"`
	Tables  int    `json:"tables"`
	Nodes   int    `json:"nodes"`
	BuiltIn bool   `json:"built_in"`
}

// List returns all entries sorted by name.
func (r *Registry) List() []CatalogInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]CatalogInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, CatalogInfo{
			Name:    e.Name,
			Tables:  e.Catalog.NumTables(),
			Nodes:   e.Config.Nodes,
			BuiltIn: e.BuiltIn,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CatalogDef is the JSON schema-upload format of POST /v1/catalogs.
type CatalogDef struct {
	Name   string     `json:"name"`
	Tables []TableDef `json:"tables"`
}

// TableDef defines one table of an uploaded catalog.
type TableDef struct {
	Name        string          `json:"name"`
	Rows        float64         `json:"rows"`
	Columns     []ColumnDef     `json:"columns"`
	Indexes     []IndexDef      `json:"indexes,omitempty"`
	Partition   *PartitionDef   `json:"partition,omitempty"`
	ForeignKeys []ForeignKeyDef `json:"foreign_keys,omitempty"`
}

// ColumnDef defines one column: its name and number of distinct values.
type ColumnDef struct {
	Name string  `json:"name"`
	NDV  float64 `json:"ndv"`
}

// IndexDef defines one (possibly composite) index.
type IndexDef struct {
	Name    string   `json:"name"`
	Unique  bool     `json:"unique,omitempty"`
	Columns []string `json:"columns"`
}

// PartitionDef declares hash partitioning across nodes.
type PartitionDef struct {
	Nodes   int      `json:"nodes"`
	Columns []string `json:"columns"`
}

// ForeignKeyDef declares a foreign key to ref_table.
type ForeignKeyDef struct {
	Columns    []string `json:"columns"`
	RefTable   string   `json:"ref_table"`
	RefColumns []string `json:"ref_columns"`
}

// Register validates and registers an uploaded catalog definition. Built-in
// names cannot be replaced; re-uploading a user catalog overwrites it.
func (r *Registry) Register(def CatalogDef) (entry *RegistryEntry, err error) {
	if def.Name == "" {
		return nil, fmt.Errorf("service: catalog needs a name")
	}
	if len(def.Tables) == 0 {
		return nil, fmt.Errorf("service: catalog %q has no tables", def.Name)
	}
	// The catalog builder treats malformed schemas as programming errors
	// and panics; uploads are untrusted input, so convert panics to errors.
	defer func() {
		if p := recover(); p != nil {
			entry, err = nil, fmt.Errorf("service: invalid catalog %q: %v", def.Name, p)
		}
	}()
	nodes := 1
	b := catalog.NewBuilder(def.Name)
	for _, t := range def.Tables {
		b.Table(t.Name, t.Rows)
		for _, c := range t.Columns {
			b.Column(c.Name, c.NDV)
		}
		for _, ix := range t.Indexes {
			b.Index(ix.Name, ix.Unique, ix.Columns...)
		}
		if t.Partition != nil {
			b.Partition(t.Partition.Nodes, t.Partition.Columns...)
			if t.Partition.Nodes > nodes {
				nodes = t.Partition.Nodes
			}
		}
		for _, fk := range t.ForeignKeys {
			b.ForeignKey(fk.RefTable, fk.Columns, fk.RefColumns)
		}
	}
	cat := b.Build()
	cfg := cost.Serial
	if nodes > 1 {
		cfg = &cost.Config{Nodes: nodes}
	}
	entry = &RegistryEntry{Name: def.Name, Catalog: cat, Config: cfg}

	// The commit point: the built catalog is about to replace the entry and
	// (on re-upload) bump the epoch. A fault injected here models the
	// upload's durable step failing — the registry must stay on the previous
	// entry and epoch, which holding off the lock until after the check
	// guarantees.
	if err := faultinject.Check(faultinject.PointCatalogRegister); err != nil {
		return nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[def.Name]; ok {
		if prev.BuiltIn {
			return nil, fmt.Errorf("service: catalog %q is built in", def.Name)
		}
		// Re-upload: bump the epoch so fingerprint-keyed estimates cached
		// against the previous statistics are unreachable.
		r.epochs++
		entry.Epoch = r.epochs
	}
	r.entries[def.Name] = entry
	return entry, nil
}
