package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"cote/internal/faultinject"
	"cote/internal/optctx"
)

// Error taxonomy: every error the HTTP surface emits carries a stable
// machine-readable code alongside the human message, so clients (and the
// chaos tests) can branch on failure class without parsing prose. The codes
// partition by what the client should do next:
//
//	code              status  retry?
//	bad_request       400     no — fix the request
//	not_found         404     no — fix the catalog/model reference
//	parse_error       400     no — fix the SQL
//	queue_full        503     yes, after backoff (hard pool bound hit)
//	shed_overload     429     yes, after Retry-After (deliberate shed)
//	timeout           504     yes, with a longer deadline
//	canceled          499     n/a — the client went away
//	over_budget       429     no at this level — lower the level or raise
//	                          the budget
//	mem_over_budget   429     no at this level — as over_budget, for bytes
//	dependency_fault  503     yes, after backoff (injected or real
//	                          infrastructure failure)
//	internal          500     maybe — unclassified server error
const (
	CodeBadRequest      = "bad_request"
	CodeNotFound        = "not_found"
	CodeParseError      = "parse_error"
	CodeQueueFull       = "queue_full"
	CodeShedOverload    = "shed_overload"
	CodeTimeout         = "timeout"
	CodeCanceled        = "canceled"
	CodeOverBudget      = "over_budget"
	CodeMemOverBudget   = "mem_over_budget"
	CodeDependencyFault = "dependency_fault"
	CodeInternal        = "internal"
)

// ErrorBody is the wire form of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// apiError carries an HTTP status and taxonomy code with a client-visible
// message.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, code: CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &apiError{status: http.StatusNotFound, code: CodeNotFound, msg: fmt.Sprintf(format, args...)}
}

func parseFailed(err error) error {
	return &apiError{status: http.StatusBadRequest, code: CodeParseError, msg: fmt.Sprintf("parse: %v", err)}
}

// shedError is a deliberate overload shed: the server refused the request at
// the door because the queue is saturated or the deadline cannot be met.
// RetryAfter is the drain estimate surfaced in the Retry-After header.
type shedError struct {
	msg        string
	retryAfter time.Duration
}

func (e *shedError) Error() string { return e.msg }

// classify maps any service error to its HTTP status, taxonomy code, and
// Retry-After hint (zero = no header). The first matching class wins; order
// matters only for wrapped chains carrying several sentinels, where the most
// specific (apiError, shedError) comes first.
func classify(err error) (status int, code string, retryAfter time.Duration) {
	var ae *apiError
	var se *shedError
	switch {
	case errors.As(err, &ae):
		code = ae.code
		if code == "" {
			code = CodeBadRequest
		}
		return ae.status, code, 0
	case errors.As(err, &se):
		// A shed always carries Retry-After; before the EWMA has a sample the
		// drain estimate is zero, so fall back to the one-second floor.
		if se.retryAfter <= 0 {
			return http.StatusTooManyRequests, CodeShedOverload, time.Second
		}
		return http.StatusTooManyRequests, CodeShedOverload, se.retryAfter
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable, CodeQueueFull, time.Second
	case errors.Is(err, faultinject.ErrInjected):
		// An injected fault models a failed infrastructure dependency; it is
		// transient by construction, so clients are told to back off and retry.
		return http.StatusServiceUnavailable, CodeDependencyFault, time.Second
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeTimeout, 0
	case errors.Is(err, context.Canceled):
		return 499, CodeCanceled, 0 // client went away
	case errors.Is(err, optctx.ErrBudgetExceeded):
		// Aborted over the plan budget with downgrading disallowed: the same
		// "compilation too expensive" outcome as an admission reject.
		return http.StatusTooManyRequests, CodeOverBudget, 0
	case errors.Is(err, optctx.ErrMemBudgetExceeded):
		return http.StatusTooManyRequests, CodeMemOverBudget, 0
	}
	return http.StatusInternalServerError, CodeInternal, 0
}

// retryAfterSeconds renders a Retry-After duration as the header's
// integer-seconds form, rounding up with a floor of one second.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
