package service

import (
	"net/http"

	"cote/internal/calib"
	"cote/internal/core"
	"cote/internal/faultinject"
	"cote/internal/props"
)

// This file is the model-management API: inspect the current model version
// and its drift, install a model by hand, roll back to a retained version,
// and list the registry's history. Together with POST /v1/calibrate and the
// online recalibrator these are the four ways a model enters the registry.

// ModelInfo is the wire form of one registry version.
type ModelInfo struct {
	Version int             `json:"version"`
	Source  string          `json:"source"`
	Model   *core.TimeModel `json:"model"`
	// Ratio is Cm:Cn:Ch normalized to the smallest non-zero constant —
	// the form the paper reports (5:2:4 serial, 6:1:2 parallel).
	Ratio [3]float64 `json:"ratio"`
	// Samples and FitErr describe the fit that produced the version (zero
	// for seeds, uploads and rollbacks).
	Samples int     `json:"samples,omitempty"`
	FitErr  float64 `json:"fit_err,omitempty"`
	// InstalledUnixMS is when the version became current.
	InstalledUnixMS int64 `json:"installed_unix_ms,omitempty"`
	// Current marks the version the server is pricing with right now.
	Current bool `json:"current,omitempty"`
}

func modelInfo(v *calib.ModelVersion, current bool) ModelInfo {
	r := v.Model.Ratio()
	return ModelInfo{
		Version:         v.Version,
		Source:          v.Source,
		Model:           v.Model,
		Ratio:           [3]float64{r[props.MGJN], r[props.NLJN], r[props.HSJN]},
		Samples:         v.Samples,
		FitErr:          v.FitErr,
		InstalledUnixMS: v.InstalledUnixMS,
		Current:         current,
	}
}

// ModelStatus is the reply of GET /v1/model: the current version plus the
// calibration loop's live state.
type ModelStatus struct {
	ModelInfo
	Calibration CalibrationStatus `json:"calibration"`
}

// CalibrationStatus reports the online loop: observation counts, the drift
// gauge, and the refit outcomes.
type CalibrationStatus struct {
	Observations   int64   `json:"observations"`
	WindowLen      int     `json:"window_len"`
	WindowCap      int     `json:"window_cap"`
	Drift          float64 `json:"drift"`
	Degraded       bool    `json:"degraded"`
	Recalibrations int64   `json:"recalibrations"`
	Rejected       int64   `json:"rejected"`
	Failures       int64   `json:"failures"`
}

func (s *Server) calibrationStatus() CalibrationStatus {
	st := s.calib.Stats()
	return CalibrationStatus{
		Observations:   st.Observations,
		WindowLen:      st.WindowLen,
		WindowCap:      st.WindowCap,
		Drift:          st.Drift,
		Degraded:       st.Degraded,
		Recalibrations: st.Recalibrations,
		Rejected:       st.Rejected,
		Failures:       st.Failures,
	}
}

// ModelUpdateRequest is the body of POST /v1/model: exactly one of Model
// (install this model), Rollback (reinstate a retained version), or
// Recalibrate (refit over the observation window now, bypassing the drift
// trigger but not the sample and hysteresis gates).
type ModelUpdateRequest struct {
	Model       *core.TimeModel `json:"model,omitempty"`
	Rollback    int             `json:"rollback,omitempty"`
	Recalibrate bool            `json:"recalibrate,omitempty"`
}

// Model returns the current model version and calibration state, erroring
// 404 while no model is installed.
func (s *Server) ModelStatus() (*ModelStatus, error) {
	v := s.models.Current()
	if v == nil {
		return nil, notFound("no model installed (calibrate first)")
	}
	return &ModelStatus{ModelInfo: modelInfo(v, true), Calibration: s.calibrationStatus()}, nil
}

// UpdateModel applies one ModelUpdateRequest and returns the resulting
// current version.
func (s *Server) UpdateModel(req ModelUpdateRequest) (*ModelStatus, error) {
	set := 0
	if req.Model != nil {
		set++
	}
	if req.Rollback != 0 {
		set++
	}
	if req.Recalibrate {
		set++
	}
	if set != 1 {
		return nil, badRequest("body must set exactly one of model, rollback or recalibrate")
	}
	switch {
	case req.Model != nil:
		if req.Model.Tinst <= 0 {
			return nil, badRequest("model.tinst must be positive")
		}
		if _, err := s.installModel(req.Model, "api", 0, 0); err != nil {
			return nil, err
		}
	case req.Rollback != 0:
		// Rollback is the same registry swap as an install; the chaos plan
		// fails it at the same point.
		if err := faultinject.Check(faultinject.PointModelSwap); err != nil {
			return nil, err
		}
		v, err := s.models.Rollback(req.Rollback)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		s.metrics.ModelInstalls.Add()
		if s.cfg.Calib.OnSwap != nil {
			s.cfg.Calib.OnSwap(v)
		}
	default:
		if _, err := s.calib.Recalibrate("recalibrate(api)"); err != nil {
			return nil, badRequest("recalibrate: %v", err)
		}
		s.metrics.ModelInstalls.Add()
	}
	return s.ModelStatus()
}

// ModelHistory lists the retained versions, oldest first.
func (s *Server) ModelHistory() []ModelInfo {
	cur := s.models.Version()
	hist := s.models.History()
	out := make([]ModelInfo, len(hist))
	for i, v := range hist {
		out[i] = modelInfo(v, v.Version == cur)
	}
	return out
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.ModelStatus()
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleModelPost(w http.ResponseWriter, r *http.Request) {
	var req ModelUpdateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	st, err := s.UpdateModel(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleModelHistory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"current":  s.models.Version(),
		"versions": s.ModelHistory(),
	})
}
