package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// A cached estimate must be re-priced with the model that is current at
// response time, not the one that was current when the entry was filled:
// the cache stores counts (model-independent), predictions are derived.
func TestEstimateCacheRepricedOnModelSwap(t *testing.T) {
	srv := New(Config{Workers: 2, CacheCapacity: 16, Model: testModel(1e-6)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	est := func() map[string]any {
		resp, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Catalog: "tpch", SQL: tpchQ3})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate: %d %v", resp.StatusCode, body)
		}
		return body
	}

	// Miss under model v1.
	body := est()
	if body["cached"].(bool) {
		t.Fatal("first estimate claims cached")
	}
	if v := body["model_version"].(float64); v != 1 {
		t.Fatalf("model_version = %v, want 1", v)
	}
	base := body["estimate"].(map[string]any)["predicted_time_ns"].(float64)
	if base <= 0 {
		t.Fatalf("no prediction under the seed model: %v", body)
	}

	// Install a 10x model through the API; the version advances.
	resp, mBody := postJSON(t, ts.URL+"/v1/model", ModelUpdateRequest{Model: testModel(1e-5)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model install: %d %v", resp.StatusCode, mBody)
	}
	if v := mBody["version"].(float64); v != 2 {
		t.Fatalf("installed version = %v, want 2", v)
	}

	// Hit: same counts from the cache, but priced with the new model.
	body = est()
	if !body["cached"].(bool) {
		t.Fatal("second estimate missed the cache")
	}
	if v := body["model_version"].(float64); v != 2 {
		t.Fatalf("cached response model_version = %v, want 2", v)
	}
	swapped := body["estimate"].(map[string]any)["predicted_time_ns"].(float64)
	if got, want := swapped/base, 10.0; got < want*0.99 || got > want*1.01 {
		t.Fatalf("cached prediction not re-priced: %v / %v = %v, want ~10x", swapped, base, got)
	}

	// Rolling back re-prices again — to the old numbers, under a NEW version.
	resp, mBody = postJSON(t, ts.URL+"/v1/model", ModelUpdateRequest{Rollback: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: %d %v", resp.StatusCode, mBody)
	}
	if v := mBody["version"].(float64); v != 3 {
		t.Fatalf("rollback version = %v, want 3", v)
	}
	body = est()
	if !body["cached"].(bool) {
		t.Fatal("post-rollback estimate missed the cache")
	}
	back := body["estimate"].(map[string]any)["predicted_time_ns"].(float64)
	if got := back / base; got < 0.99 || got > 1.01 {
		t.Fatalf("rollback did not restore pricing: %v vs %v", back, base)
	}
	if v := body["model_version"].(float64); v != 3 {
		t.Fatalf("post-rollback model_version = %v, want 3", v)
	}
}

// Every real optimization the server runs must land in the calibration
// loop: observation counters move and the drift gauge starts reporting.
func TestOptimizeFeedsCalibrator(t *testing.T) {
	srv := New(Config{Workers: 2, Model: testModel(1e-6)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Catalog: "tpch", SQL: tpchQ3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d %v", resp.StatusCode, body)
	}

	_, m := getJSON(t, ts.URL+"/metrics")
	cs := m["calibration"].(map[string]any)
	if cs["observations"].(float64) < 1 {
		t.Fatalf("optimize did not feed the calibrator: %v", cs)
	}
	if cs["window_len"].(float64) < 1 {
		t.Fatalf("observation window empty: %v", cs)
	}
	if cs["model_version"].(float64) != 1 {
		t.Fatalf("model_version = %v, want 1", cs["model_version"])
	}
	st := srv.Calibrator().Stats()
	if st.Observations < 1 {
		t.Fatalf("calibrator stats empty: %+v", st)
	}
}

// The model API's inspection surface: 404 before any model, status and
// history afterwards, and validation of the one-of update contract.
func TestModelEndpoints(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := getJSON(t, ts.URL+"/v1/model")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/model with no model: %d, want 404", resp.StatusCode)
	}

	// Exactly one of model/rollback/recalibrate must be set.
	resp, _ = postJSON(t, ts.URL+"/v1/model", ModelUpdateRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty update: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/model", ModelUpdateRequest{Model: testModel(1e-6), Rollback: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("two-field update: %d, want 400", resp.StatusCode)
	}

	resp, body := postJSON(t, ts.URL+"/v1/model", ModelUpdateRequest{Model: testModel(1e-6)})
	if resp.StatusCode != http.StatusOK || body["version"].(float64) != 1 {
		t.Fatalf("install: %d %v", resp.StatusCode, body)
	}
	resp, body = getJSON(t, ts.URL+"/v1/model")
	if resp.StatusCode != http.StatusOK || body["source"] != "api" || body["current"] != true {
		t.Fatalf("GET /v1/model: %d %v", resp.StatusCode, body)
	}

	_, body = getJSON(t, ts.URL+"/v1/model/history")
	if body["current"].(float64) != 1 || len(body["versions"].([]any)) != 1 {
		t.Fatalf("history: %v", body)
	}

	// Rolling back to an unretained version is a 400, not a crash.
	resp, _ = postJSON(t, ts.URL+"/v1/model", ModelUpdateRequest{Rollback: 99})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rollback to missing version: %d, want 400", resp.StatusCode)
	}
}
