package service

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"cote/internal/core"
	"cote/internal/optctx"
)

// Two spellings of the same structure: permuted FROM and WHERE clause
// order, renamed aliases, a different literal, gratuitous whitespace.
const (
	respellA = `SELECT n_name FROM customer, orders, lineitem, supplier, nation, region
	 WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND l_suppkey = s_suppkey
	   AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	   AND c_mktsegment = 'BUILDING'
	 ORDER BY n_name`
	respellB = `SELECT na.n_name
	   FROM region re, nation na, supplier su, lineitem li, orders orr, customer cu
	  WHERE na.n_regionkey = re.r_regionkey
	    AND cu.c_mktsegment = 'AUTOMOBILE'
	    AND orr.o_orderkey = li.l_orderkey
	    AND li.l_suppkey  =  su.s_suppkey
	    AND su.s_nationkey = na.n_nationkey
	    AND cu.c_custkey = orr.o_custkey
	  ORDER BY na.n_name`
)

// TestWarmPathZeroEnumeration is the acceptance check of the fingerprint
// cache: a structurally repeated query — in a different spelling — must be
// served without any join enumeration, observed on the per-stage counter
// that moves only when an enumeration actually runs.
func TestWarmPathZeroEnumeration(t *testing.T) {
	srv := New(Config{Workers: 2, CacheCapacity: 16})
	ctx := context.Background()

	cold, err := srv.Estimate(ctx, EstimateRequest{Catalog: "tpch", SQL: respellA})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("cold estimate claims cached")
	}
	enumAfterCold := srv.Metrics().StageCount[optctx.StageEnumerate].Value()
	if enumAfterCold == 0 {
		t.Fatal("cold estimate recorded no enumerate-stage work")
	}

	warm, err := srv.Estimate(ctx, EstimateRequest{Catalog: "tpch", SQL: respellB})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("respelled repeat missed the fingerprint cache")
	}
	if got := srv.Metrics().StageCount[optctx.StageEnumerate].Value(); got != enumAfterCold {
		t.Fatalf("warm path enumerated: stage count %d -> %d", enumAfterCold, got)
	}
	if warm.Estimate.Counts != cold.Estimate.Counts {
		t.Fatalf("warm counts %+v != cold %+v", warm.Estimate.Counts, cold.Estimate.Counts)
	}

	// no_cache bypasses the cache but must return the same (canonical)
	// numbers — responses do not depend on caching.
	raw, err := srv.Estimate(ctx, EstimateRequest{Catalog: "tpch", SQL: respellB, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Cached {
		t.Fatal("no_cache estimate claims cached")
	}
	if raw.Estimate.Counts != cold.Estimate.Counts {
		t.Fatalf("no_cache counts %+v != cached %+v", raw.Estimate.Counts, cold.Estimate.Counts)
	}
}

// miniDef is a small uploadable schema for registry epoch tests.
func miniDef(name string) CatalogDef {
	return CatalogDef{
		Name: name,
		Tables: []TableDef{
			{Name: "fact", Rows: 1e6, Columns: []ColumnDef{{Name: "fk", NDV: 1000}, {Name: "m", NDV: 500}}},
			{Name: "dim", Rows: 1e4, Columns: []ColumnDef{{Name: "pk", NDV: 1000}, {Name: "d", NDV: 100}}},
		},
	}
}

const miniSQL = `SELECT m FROM fact, dim WHERE fk = pk`

// TestIdenticalSchemasShareCache: two catalogs registered under different
// names with identical schemas share fingerprint-keyed estimates — the
// first half of the keying bug class the old catalogName|...|sql key had.
func TestIdenticalSchemasShareCache(t *testing.T) {
	srv := New(Config{Workers: 2, CacheCapacity: 16})
	ctx := context.Background()
	for _, name := range []string{"alpha", "beta"} {
		if _, err := srv.Registry().Register(miniDef(name)); err != nil {
			t.Fatal(err)
		}
	}
	first, err := srv.Estimate(ctx, EstimateRequest{Catalog: "alpha", SQL: miniSQL})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first estimate cached")
	}
	second, err := srv.Estimate(ctx, EstimateRequest{Catalog: "beta", SQL: miniSQL})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical schema under another name missed")
	}
}

// TestCatalogReuploadInvalidates: re-registering a catalog bumps its epoch,
// so estimates cached against the old statistics are unreachable.
func TestCatalogReuploadInvalidates(t *testing.T) {
	srv := New(Config{Workers: 2, CacheCapacity: 16})
	ctx := context.Background()
	if _, err := srv.Registry().Register(miniDef("mini")); err != nil {
		t.Fatal(err)
	}
	if r, err := srv.Estimate(ctx, EstimateRequest{Catalog: "mini", SQL: miniSQL}); err != nil || r.Cached {
		t.Fatalf("cold: %v cached=%v", err, r.Cached)
	}
	if r, err := srv.Estimate(ctx, EstimateRequest{Catalog: "mini", SQL: miniSQL}); err != nil || !r.Cached {
		t.Fatalf("warm: %v cached=%v", err, r != nil && r.Cached)
	}
	if _, err := srv.Registry().Register(miniDef("mini")); err != nil {
		t.Fatal(err)
	}
	if r, err := srv.Estimate(ctx, EstimateRequest{Catalog: "mini", SQL: miniSQL}); err != nil || r.Cached {
		t.Fatalf("post-reupload estimate served stale cache: %v cached=%v", err, r != nil && r.Cached)
	}
}

// TestSingleflightShared drives EstimateCache.Do directly with a blocking
// leader: concurrent callers of the same key must wait for the one
// computation instead of running their own, and a caller abandoned by its
// context must return promptly.
func TestSingleflightShared(t *testing.T) {
	c := NewEstimateCache(4)
	key := EstimateKey{Level: 3, Nodes: 1}
	want := &core.Estimate{Joins: 42}

	release := make(chan struct{})
	started := make(chan struct{})
	var leaderErr error
	var leaderEst *core.Estimate
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderEst, _, _, leaderErr = c.Do(context.Background(), key, func() (*core.Estimate, error) {
			close(started)
			<-release
			return want, nil
		})
	}()
	<-started

	// A waiter with a dead context abandons the flight without an estimate.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, shared, err := c.Do(cancelled, key, nil); !shared || err == nil {
		t.Fatalf("cancelled waiter: shared=%v err=%v", shared, err)
	}

	waiters := 3
	results := make(chan *core.Estimate, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			est, hit, shared, err := c.Do(context.Background(), key, func() (*core.Estimate, error) {
				t.Error("waiter ran its own computation")
				return nil, nil
			})
			if err != nil || hit || !shared {
				t.Errorf("waiter: hit=%v shared=%v err=%v", hit, shared, err)
			}
			results <- est
		}()
	}
	// Give the waiters a moment to park on the flight, then release it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if leaderErr != nil || leaderEst != want {
		t.Fatalf("leader: %v %p", leaderErr, leaderEst)
	}
	for i := 0; i < waiters; i++ {
		if got := <-results; got != want {
			t.Fatalf("waiter got %p, want %p", got, want)
		}
	}
	if shared := c.Shared(); shared != int64(waiters)+1 {
		t.Fatalf("shared count %d, want %d", shared, waiters+1)
	}
	// The flight's result is cached for later callers.
	if _, hit, _, _ := c.Do(context.Background(), key, nil); !hit {
		t.Fatal("post-flight lookup missed")
	}
}

// TestEstimateBatch covers the dedup path: repeats by structure ride along
// with one estimation, malformed statements fail item-locally.
func TestEstimateBatch(t *testing.T) {
	srv := New(Config{Workers: 2, CacheCapacity: 16})
	ctx := context.Background()
	resp, err := srv.EstimateBatch(ctx, EstimateBatchRequest{
		Catalog: "tpch",
		Statements: []string{
			respellA,
			respellB, // same structure, different spelling
			`SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey`,
			`SELECT nothing FROM nowhere`,
			"",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Distinct != 2 || resp.Deduped != 1 {
		t.Fatalf("distinct=%d deduped=%d, want 2/1", resp.Distinct, resp.Deduped)
	}
	if !resp.Items[1].Deduped || resp.Items[0].Deduped {
		t.Fatalf("dedup flags wrong: %+v", resp.Items[:2])
	}
	if resp.Items[0].Fingerprint == "" || resp.Items[0].Fingerprint != resp.Items[1].Fingerprint {
		t.Fatalf("fingerprints %q vs %q", resp.Items[0].Fingerprint, resp.Items[1].Fingerprint)
	}
	if resp.Items[0].Estimate == nil || resp.Items[1].Estimate == nil ||
		resp.Items[0].Estimate.Counts != resp.Items[1].Estimate.Counts {
		t.Fatal("deduped statement did not share the estimate")
	}
	if !strings.Contains(resp.Items[3].Error, "parse") || resp.Items[3].Estimate != nil {
		t.Fatalf("bad SQL item: %+v", resp.Items[3])
	}
	if resp.Items[4].Error == "" {
		t.Fatal("empty statement passed")
	}
	if got := srv.Metrics().BatchDeduped.Value(); got != 1 {
		t.Fatalf("BatchDeduped = %d", got)
	}

	// A repeat batch is all warm: zero additional enumeration.
	enumBefore := srv.Metrics().StageCount[optctx.StageEnumerate].Value()
	again, err := srv.EstimateBatch(ctx, EstimateBatchRequest{
		Catalog:    "tpch",
		Statements: []string{respellB, respellA},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range again.Items[:1] {
		if !it.Cached {
			t.Fatalf("repeat batch item %d not cached", i)
		}
	}
	if got := srv.Metrics().StageCount[optctx.StageEnumerate].Value(); got != enumBefore {
		t.Fatalf("repeat batch enumerated: %d -> %d", enumBefore, got)
	}

	// Whole-request failures.
	if _, err := srv.EstimateBatch(ctx, EstimateBatchRequest{Catalog: "tpch"}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := srv.EstimateBatch(ctx, EstimateBatchRequest{Catalog: "nope", Statements: []string{miniSQL}}); err == nil {
		t.Fatal("unknown catalog accepted")
	}
	if _, err := srv.EstimateBatch(ctx, EstimateBatchRequest{Catalog: "tpch", Statements: make([]string, maxBatchStatements+1)}); err == nil {
		t.Fatal("oversized batch accepted")
	}
}
