package service

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"cote/internal/opt"
)

// Shedder is the server's overload controller. It sits in front of parsing
// — before any per-request work — and makes two kinds of decisions:
//
//   - Shed: refuse a request outright (429 + Retry-After) when the waiting
//     line is at its shed bound, or when the request's deadline cannot
//     survive the projected queue wait anyway. Shedding a request the
//     deadline would kill mid-queue wastes nothing; letting it in wastes a
//     worker slot on an answer nobody will receive.
//   - Downgrade: under sustained pressure short of shedding, walk optimize
//     requests down the same level ladder the admission controller and the
//     mid-flight budget aborts use (opt.Level.NextLower) — trading plan
//     quality for compilation time exactly the way the paper's
//     meta-optimizer does, but triggered by server load instead of a
//     per-query budget.
//
// The drain estimate is an EWMA of recent request service times; it prices
// how long a newly queued request will wait, which feeds both the deadline
// check and the Retry-After hint.
type Shedder struct {
	pool *Pool
	// maxQueue is the shed bound on the waiting line. It is at most the
	// pool's hard queue bound: the shedder turns would-be queue_full 503s
	// into deliberate 429 sheds with a drain hint, before parsing.
	maxQueue int64
	// shedDeadline is the safety margin added to the projected queue wait
	// when testing a request's deadline: remaining < wait + margin → shed.
	shedDeadline time.Duration
	// avgRunNS is the EWMA of recent request service times (nanoseconds),
	// α = 1/8 — the TCP RTT estimator's constant, heavy enough to smooth
	// one-off outliers and light enough to track load shifts within a few
	// requests.
	avgRunNS atomic.Int64
}

func newShedder(pool *Pool, maxQueue int, shedDeadline time.Duration) *Shedder {
	if maxQueue < 1 {
		maxQueue = 1
	}
	return &Shedder{pool: pool, maxQueue: int64(maxQueue), shedDeadline: shedDeadline}
}

// observe folds one completed request's service time into the EWMA.
func (sh *Shedder) observe(d time.Duration) {
	n := d.Nanoseconds()
	for {
		old := sh.avgRunNS.Load()
		next := old + (n-old)/8
		if old == 0 {
			next = n // first observation seeds the average
		}
		if sh.avgRunNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// AvgRun returns the current service-time EWMA.
func (sh *Shedder) AvgRun() time.Duration {
	return time.Duration(sh.avgRunNS.Load())
}

// drainEstimate prices how long a request entering the queue now will wait
// for a worker: the waiting line ahead of it, batched across the workers, at
// the observed service time per batch.
func (sh *Shedder) drainEstimate(waiting int64) time.Duration {
	if waiting <= 0 {
		return 0
	}
	workers := int64(sh.pool.Workers())
	batches := (waiting + workers - 1) / workers
	return time.Duration(batches * sh.avgRunNS.Load())
}

// Admit decides whether a request may proceed to parsing. It returns nil to
// admit, or a *shedError (429 shed_overload + Retry-After) to shed.
func (sh *Shedder) Admit(ctx context.Context) error {
	waiting, _ := sh.pool.Depth()
	wait := sh.drainEstimate(waiting)
	if waiting >= sh.maxQueue {
		return &shedError{
			msg:        fmt.Sprintf("service: overloaded (%d waiting, shed bound %d)", waiting, sh.maxQueue),
			retryAfter: wait,
		}
	}
	if deadline, ok := ctx.Deadline(); ok {
		if remaining := time.Until(deadline); remaining < wait+sh.shedDeadline {
			return &shedError{
				msg: fmt.Sprintf("service: deadline %s cannot survive the projected queue wait %s",
					remaining.Round(time.Millisecond), wait.Round(time.Millisecond)),
				retryAfter: wait,
			}
		}
	}
	return nil
}

// PressureRungs reports how many level-ladder rungs the current load calls
// for: 0 below half queue occupancy, 1 at [1/2, 3/4), 2 at and beyond 3/4.
// The thresholds are on the waiting line only — running requests are the
// pool doing its job; a deep queue is the overload signal.
func (sh *Shedder) PressureRungs() int {
	waiting, _ := sh.pool.Depth()
	switch {
	case 4*waiting >= 3*sh.maxQueue:
		return 2
	case 2*waiting >= sh.maxQueue:
		return 1
	}
	return 0
}

// downgradeForPressure walks level down rungs ladder steps (never below the
// greedy floor) and returns the resulting level with the number of rungs
// actually descended.
func downgradeForPressure(level opt.Level, rungs int) (opt.Level, int) {
	applied := 0
	for i := 0; i < rungs && level != opt.LevelLow; i++ {
		level = level.NextLower()
		applied++
	}
	return level, applied
}
