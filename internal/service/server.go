package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"cote/internal/calib"
	"cote/internal/core"
	"cote/internal/cost"
	"cote/internal/faultinject"
	"cote/internal/fingerprint"
	"cote/internal/knobs"
	"cote/internal/modelio"
	"cote/internal/opt"
	"cote/internal/optctx"
	"cote/internal/query"
	"cote/internal/sqlparser"
	"cote/internal/workload"
)

// Config parameterizes the server. The zero value is usable: GOMAXPROCS
// workers, a 4x waiting line, 30s request timeout, a 1024-entry estimate
// cache, and admission control disabled until a budget is set or a model
// is calibrated.
type Config struct {
	// Workers bounds concurrently running estimations/optimizations
	// (default GOMAXPROCS — the work is CPU-bound).
	Workers int
	// Queue bounds requests waiting for a worker (default 4*Workers).
	Queue int
	// RequestTimeout bounds one estimate/optimize request, queueing
	// included (default 30s; negative disables).
	RequestTimeout time.Duration
	// CacheCapacity sizes the estimate cache (default 1024).
	CacheCapacity int
	// Budget is the admission controller's compilation-time budget for
	// POST /v1/optimize: requests whose predicted compilation time exceeds
	// it are rejected or downgraded. Zero disables admission control.
	Budget time.Duration
	// Downgrade makes the admission controller retry cheaper levels
	// instead of rejecting over-budget requests.
	Downgrade bool
	// Model seeds the compilation-time model (installed as the registry's
	// first version); POST /v1/calibrate and the online recalibrator
	// replace it at runtime.
	Model *core.TimeModel
	// Models, when non-nil, is a pre-loaded model registry (cmd/coted
	// restores one from -model-file); otherwise the server creates an
	// empty one. Config.Model, when also set, is installed on top.
	Models *calib.Registry
	// Calib parameterizes the online calibration loop: the observation
	// window, the drift detector, and the recalibration gates. The zero
	// value enables automatic recalibration with the calib defaults; set
	// Calib.DriftThreshold negative to track drift without auto-refitting.
	Calib calib.Config
	// MaxParallelism caps the per-request intra-query parallelism of
	// POST /v1/optimize (the DP round's worker fan-out). Zero or one keeps
	// every compile serial. When above one and Workers is left zero, the
	// worker pool defaults to GOMAXPROCS/MaxParallelism so that concurrent
	// requests times per-request workers never oversubscribes the machine.
	MaxParallelism int
	// BudgetFactor, when positive, arms the mid-flight budget abort on
	// POST /v1/optimize: a compile generating more than BudgetFactor times
	// its COTE-predicted plan count is aborted (and downgraded to the next
	// cheaper level when Downgrade is set) — the enforcement backstop for
	// when the prediction admission trusted turns out wrong. Requires a
	// calibrated model to have any effect. Zero disables the abort.
	BudgetFactor float64
	// MemBudget, when positive, bounds each compile's peak optimizer memory
	// in bytes, twice over: admission gates on the memory model's predicted
	// peak (reject or downgrade like the time budget), and an admitted
	// compile whose measured usage crosses the budget is aborted mid-flight
	// (and downgraded when Downgrade is set). Zero disables both.
	MemBudget int64
	// MaxQueue is the overload shedder's bound on the pool's waiting line:
	// a request arriving while MaxQueue requests already wait is shed with
	// 429 + Retry-After before any parsing (default Queue — shed exactly
	// where the pool would otherwise return a hard queue_full 503).
	MaxQueue int
	// ShedDeadline is the safety margin of deadline-aware shedding: a
	// request whose remaining deadline is below the projected queue wait
	// plus this margin is shed immediately instead of queued to die (zero
	// keeps the check armed with no margin; shedding then triggers only
	// when the projected wait alone exceeds the deadline).
	ShedDeadline time.Duration
}

// DefaultRequestTimeout bounds estimate/optimize requests when Config
// leaves RequestTimeout zero.
const DefaultRequestTimeout = 30 * time.Second

// Server is the estimation service: the registry, pool, cache, metrics and
// model behind the HTTP API. Its exported request methods are usable
// without HTTP (the benchmarks drive them directly).
type Server struct {
	cfg      Config
	registry *Registry
	pool     *Pool
	shed     *Shedder
	cache    *EstimateCache
	metrics  *Metrics
	progress *progressTable

	// models is the versioned compilation-time model registry; calib is
	// the online loop feeding it from real optimizations.
	models *calib.Registry
	calib  *calib.Calibrator
}

// New returns a server with the config's defaults filled in. The knob
// clamps (parallelism floor, budget knobs disabling at zero) go through
// internal/knobs — the same defaulting path the optimizer layers use.
func New(cfg Config) *Server {
	cfg.MaxParallelism = knobs.Parallelism(cfg.MaxParallelism)
	cfg.BudgetFactor = knobs.BudgetFactor(cfg.BudgetFactor)
	cfg.MemBudget = knobs.MemBudget(cfg.MemBudget)
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0) / cfg.MaxParallelism
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.Workers
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 1024
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = cfg.Queue
	}
	models := cfg.Models
	if models == nil {
		models = calib.NewRegistry(0)
	}
	pool := NewPool(cfg.Workers, cfg.Queue)
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(),
		pool:     pool,
		shed:     newShedder(pool, cfg.MaxQueue, cfg.ShedDeadline),
		cache:    NewEstimateCache(cfg.CacheCapacity),
		metrics:  NewMetrics(),
		progress: newProgressTable(),
		models:   models,
		calib:    calib.NewCalibrator(models, cfg.Calib),
	}
	if cfg.Model != nil {
		// Construction precedes any chaos plan; a seed install cannot trip
		// the model-swap fault point, so the error is ignored.
		_, _ = s.installModel(cfg.Model, "seed", 0, 0)
	}
	return s
}

// Registry exposes the catalog registry (cmd/coted preloads schemas).
func (s *Server) Registry() *Registry { return s.registry }

// Metrics exposes the metrics (tests assert on them).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Model returns the current compilation-time model (nil before
// calibration).
func (s *Server) Model() *core.TimeModel { return s.models.CurrentModel() }

// memModel returns the memory model predictions are priced with: the
// registry's calibrated one, or the structural default before any memory
// calibration ran.
func (s *Server) memModel() *core.MemModel {
	if m := s.models.CurrentMemModel(); m != nil {
		return m
	}
	return core.DefaultMemModel()
}

// SetModel installs m as a new model version (source "api"). An injected
// model-swap fault is swallowed here: the programmatic setter has no error
// surface, and the HTTP paths all go through installModel directly.
func (s *Server) SetModel(m *core.TimeModel) {
	_, _ = s.installModel(m, "api", 0, 0)
}

// installModel installs a model version and mirrors it into the metrics
// and the configured swap hook. The fault-injection point sits before the
// registry swap: a tripped install changes nothing — no version, no metrics
// tick, no persistence — exactly like a registry whose durable step refused.
func (s *Server) installModel(m *core.TimeModel, source string, samples int, fitErr float64) (*calib.ModelVersion, error) {
	if err := faultinject.Check(faultinject.PointModelSwap); err != nil {
		return nil, err
	}
	v := s.models.Install(m, source, samples, fitErr)
	s.metrics.ModelInstalls.Add()
	if s.cfg.Calib.OnSwap != nil {
		// Recalibrations run OnSwap through the calibrator; every other
		// install path mirrors the behaviour here so -model-file
		// persistence sees them all.
		s.cfg.Calib.OnSwap(v)
	}
	return v, nil
}

// Calibrator exposes the online calibration loop (cmd/coted wires its
// persistence hook; tests assert on its stats).
func (s *Server) Calibrator() *calib.Calibrator { return s.calib }

// Models exposes the versioned model registry.
func (s *Server) Models() *calib.Registry { return s.models }

// ParseLevel maps the wire names to optimization levels; the empty string
// selects inner2, the level the paper's experiments run at.
func ParseLevel(name string) (opt.Level, error) {
	switch name {
	case "", "inner2":
		return opt.LevelHighInner2, nil
	case "low", "greedy":
		return opt.LevelLow, nil
	case "leftdeep":
		return opt.LevelMediumLeftDeep, nil
	case "zigzag":
		return opt.LevelMediumZigZag, nil
	case "high":
		return opt.LevelHigh, nil
	}
	return 0, fmt.Errorf("service: unknown level %q (want low, leftdeep, zigzag, inner2 or high)", name)
}

// LevelName is the wire name of a level (the inverse of ParseLevel).
func LevelName(l opt.Level) string {
	switch l {
	case opt.LevelLow:
		return "low"
	case opt.LevelMediumLeftDeep:
		return "leftdeep"
	case opt.LevelMediumZigZag:
		return "zigzag"
	case opt.LevelHighInner2:
		return "inner2"
	case opt.LevelHigh:
		return "high"
	}
	return l.String()
}

// parseRequest resolves the catalog, level and SQL shared by the estimate
// and optimize requests.
func (s *Server) parseRequest(catalogName, levelName, sql string) (*RegistryEntry, opt.Level, *query.Block, error) {
	if catalogName == "" {
		return nil, 0, nil, badRequest("missing catalog")
	}
	entry, err := s.registry.Get(catalogName)
	if err != nil {
		return nil, 0, nil, notFound("%v", err)
	}
	level, err := ParseLevel(levelName)
	if err != nil {
		return nil, 0, nil, badRequest("%v", err)
	}
	if sql == "" {
		return nil, 0, nil, badRequest("missing sql")
	}
	parseStart := time.Now()
	blk, err := sqlparser.Parse(sql, entry.Catalog)
	s.metrics.ObserveStage(optctx.StageParse, 1, time.Since(parseStart))
	if err != nil {
		return nil, 0, nil, parseFailed(err)
	}
	return entry, level, blk, nil
}

// estimateFor returns the estimate of one (query, level): through the
// fingerprint-keyed cache when useCache is set, with concurrent identical
// misses collapsed into one enumeration by the cache's singleflight group.
// Every mode estimates the canonical rebuild of blk, so responses never
// depend on whether caching was on (raw-block enumeration counts are
// numbering-sensitive; see internal/fingerprint). Cached estimates carry no
// time prediction (see EstimateCache); callers price them with the current
// model.
//
// The returned cached flag reports that this request ran no enumeration of
// its own — an LRU hit or a wait on another request's in-flight run.
func (s *Server) estimateFor(ctx context.Context, entry *RegistryEntry, blk *query.Block, level opt.Level, useCache bool, parallelism int) (*core.Estimate, bool, error) {
	// The parallel counting pass is bit-identical to serial, so the degree
	// stays out of the cache key: it only decides how fast a miss enumerates.
	par := knobs.Parallelism(parallelism)
	if par > s.cfg.MaxParallelism {
		par = s.cfg.MaxParallelism
	}
	// Hash up front (cheap, needed for the key); rebuild the canonical block
	// only inside run, which executes solely when an enumeration is due.
	fp := fingerprint.Of(blk)
	run := func() (*core.Estimate, error) {
		est, err := Run(s.pool, ctx, func() (*core.Estimate, error) {
			canon, _, err := fingerprint.Canonical(blk)
			if err != nil {
				return nil, err
			}
			return core.EstimatePlansCtx(ctx, canon, core.Options{Level: level, Config: entry.Config, Parallelism: par})
		})
		if err == nil {
			// The enumerate stage moves only when an enumeration really ran:
			// the warm-path zero-enumeration guarantee is asserted on this
			// counter.
			s.metrics.ObserveStage(optctx.StageEnumerate, int64(est.Joins), est.Elapsed)
			s.metrics.EnumCandidatesVisited.AddN(int64(est.CandidatesVisited))
			s.metrics.EnumCandidatesSkipped.AddN(int64(est.CandidatesSkipped))
		}
		return est, err
	}
	if !useCache {
		est, err := run()
		return est, false, err
	}
	key := EstimateKey{Epoch: entry.Epoch, FP: fp, Level: level, Nodes: entry.Config.Nodes}
	est, hit, shared, err := s.cache.Do(ctx, key, run)
	if err != nil {
		return nil, false, err
	}
	switch {
	case hit:
		s.metrics.CacheHits.Add()
	case shared:
		s.metrics.SharedFlights.Add()
	default:
		s.metrics.CacheMisses.Add()
	}
	return est, hit || shared, nil
}

// shedCheck runs the overload shedder and accounts the outcome. It runs
// before the request's own timeout is attached, so the deadline it tests is
// whatever the client (or HTTP layer) brought along.
func (s *Server) shedCheck(ctx context.Context) error {
	if err := s.shed.Admit(ctx); err != nil {
		s.metrics.ShedRequests.Add()
		return err
	}
	return nil
}

// requestCtx applies the configured per-request timeout.
func (s *Server) requestCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.RequestTimeout)
}

// EstimateRequest is the body of POST /v1/estimate.
type EstimateRequest struct {
	Catalog string `json:"catalog"`
	SQL     string `json:"sql"`
	Level   string `json:"level,omitempty"`
	NoCache bool   `json:"no_cache,omitempty"`
	// Parallelism fans the counting pass of an uncached estimate out to this
	// many workers, clamped to [1, Config.MaxParallelism]. Zero means serial.
	// The estimate is bit-identical at every degree, so the knob never
	// changes the response — only how fast a cache miss computes it.
	Parallelism int `json:"parallelism,omitempty"`
}

// EstimateResponse is the reply: the estimate plus cache provenance. The
// predicted fields inside the estimate are filled from the server's
// current model; ModelVersion names the registry version that priced them
// (zero when no model is installed), so clients can tell which model a
// cached estimate was re-priced with.
type EstimateResponse struct {
	Catalog      string         `json:"catalog"`
	Level        string         `json:"level"`
	Cached       bool           `json:"cached"`
	ModelVersion int            `json:"model_version,omitempty"`
	Estimate     *core.Estimate `json:"estimate"`
}

// Estimate runs the paper's plan-estimate mode for one request.
func (s *Server) Estimate(ctx context.Context, req EstimateRequest) (*EstimateResponse, error) {
	s.metrics.EstimateRequests.Add()
	// Shed before parsing: an overloaded server spends nothing on a request
	// it will refuse anyway.
	if err := s.shedCheck(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.metrics.EstimateLatency.Observe(d)
		s.shed.observe(d)
	}()

	entry, level, blk, err := s.parseRequest(req.Catalog, req.Level, req.SQL)
	if err != nil {
		return nil, err
	}
	ctx, cancel := s.requestCtx(ctx)
	defer cancel()
	est, cached, err := s.estimateFor(ctx, entry, blk, level, !req.NoCache, req.Parallelism)
	if err != nil {
		return nil, err
	}
	// Price a copy with the current model version, leaving the cached entry
	// prediction-free: a model swap can never serve a stale PredictedTime
	// (or PredictedPeakBytes) because predictions are never stored, only
	// the structural counts.
	out := *est
	out.PredictedTime = 0
	resp := &EstimateResponse{
		Catalog:  entry.Name,
		Level:    LevelName(level),
		Cached:   cached,
		Estimate: &out,
	}
	if v := s.models.Current(); v != nil {
		if v.Model != nil {
			out.PredictedTime = v.Model.Predict(out.Counts)
		}
		resp.ModelVersion = v.Version
	}
	out.PredictedPeakBytes = core.EstimateMemory(&out, s.memModel())
	return resp, nil
}

// EstimateBatchRequest is the body of POST /v1/estimate/batch: many
// statements against one catalog and level, estimated once per distinct
// structure.
type EstimateBatchRequest struct {
	Catalog    string   `json:"catalog"`
	Statements []string `json:"statements"`
	Level      string   `json:"level,omitempty"`
	NoCache    bool     `json:"no_cache,omitempty"`
	// Parallelism applies the single-estimate knob to every distinct group
	// the batch enumerates (clamped to [1, Config.MaxParallelism]).
	Parallelism int `json:"parallelism,omitempty"`
}

// BatchItem is the per-statement outcome, in submission order.
type BatchItem struct {
	Fingerprint string `json:"fingerprint,omitempty"`
	// Deduped marks a statement answered by an earlier statement of this
	// batch with the same fingerprint: it ran no estimation of its own.
	Deduped bool `json:"deduped,omitempty"`
	// Cached reports the group's estimate came without any enumeration
	// (estimate-cache hit or shared in-flight run).
	Cached   bool           `json:"cached,omitempty"`
	Error    string         `json:"error,omitempty"`
	Estimate *core.Estimate `json:"estimate,omitempty"`
}

// EstimateBatchResponse is the reply: per-statement items plus the batch's
// dedup accounting (Distinct groups estimated, Deduped statements that rode
// along).
type EstimateBatchResponse struct {
	Catalog      string      `json:"catalog"`
	Level        string      `json:"level"`
	Distinct     int         `json:"distinct"`
	Deduped      int         `json:"deduped"`
	ModelVersion int         `json:"model_version,omitempty"`
	Items        []BatchItem `json:"items"`
}

// maxBatchStatements bounds one batch request; parameterized workloads
// should chunk beyond this.
const maxBatchStatements = 256

// EstimateBatch estimates a slice of statements, deduplicating them by
// structural fingerprint so each distinct structure is estimated once. A
// statement that fails to parse (or whose group's estimation fails) gets a
// per-item error without failing the batch; whole-request problems (bad
// catalog, dead deadline) fail the request.
func (s *Server) EstimateBatch(ctx context.Context, req EstimateBatchRequest) (*EstimateBatchResponse, error) {
	s.metrics.BatchRequests.Add()
	if err := s.shedCheck(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.metrics.EstimateLatency.Observe(d)
		s.shed.observe(d)
	}()

	if req.Catalog == "" {
		return nil, badRequest("missing catalog")
	}
	entry, err := s.registry.Get(req.Catalog)
	if err != nil {
		return nil, notFound("%v", err)
	}
	level, err := ParseLevel(req.Level)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if len(req.Statements) == 0 {
		return nil, badRequest("missing statements")
	}
	if len(req.Statements) > maxBatchStatements {
		return nil, badRequest("batch of %d statements exceeds the limit of %d", len(req.Statements), maxBatchStatements)
	}
	s.metrics.BatchStatements.AddN(int64(len(req.Statements)))
	ctx, cancel := s.requestCtx(ctx)
	defer cancel()

	type group struct {
		blk   *query.Block
		items []int
	}
	resp := &EstimateBatchResponse{
		Catalog: entry.Name,
		Level:   LevelName(level),
		Items:   make([]BatchItem, len(req.Statements)),
	}
	groups := make(map[fingerprint.FP]*group)
	var order []fingerprint.FP
	for i, sql := range req.Statements {
		it := &resp.Items[i]
		if sql == "" {
			it.Error = "missing sql"
			continue
		}
		parseStart := time.Now()
		blk, err := sqlparser.Parse(sql, entry.Catalog)
		s.metrics.ObserveStage(optctx.StageParse, 1, time.Since(parseStart))
		if err != nil {
			it.Error = fmt.Sprintf("parse: %v", err)
			continue
		}
		fp := fingerprint.Of(blk)
		it.Fingerprint = fp.String()
		g, ok := groups[fp]
		if !ok {
			g = &group{blk: blk}
			groups[fp] = g
			order = append(order, fp)
		} else {
			it.Deduped = true
			resp.Deduped++
		}
		g.items = append(g.items, i)
	}
	resp.Distinct = len(order)
	s.metrics.BatchDeduped.AddN(int64(resp.Deduped))

	var m *core.TimeModel
	if v := s.models.Current(); v != nil {
		m = v.Model
		resp.ModelVersion = v.Version
	}
	for _, fp := range order {
		g := groups[fp]
		est, cached, err := s.estimateFor(ctx, entry, g.blk, level, !req.NoCache, req.Parallelism)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err // the whole batch is dead, not one group
			}
			for _, i := range g.items {
				resp.Items[i].Error = err.Error()
			}
			continue
		}
		out := *est
		out.PredictedTime = 0
		if m != nil {
			out.PredictedTime = m.Predict(out.Counts)
		}
		out.PredictedPeakBytes = core.EstimateMemory(&out, s.memModel())
		for _, i := range g.items {
			resp.Items[i].Cached = cached
			resp.Items[i].Estimate = &out
		}
	}
	return resp, nil
}

// OptimizeRequest is the body of POST /v1/optimize.
type OptimizeRequest struct {
	Catalog string `json:"catalog"`
	SQL     string `json:"sql"`
	Level   string `json:"level,omitempty"`
	// BudgetMS overrides the server's admission budget for this request
	// (milliseconds; negative disables admission).
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// OnOverBudget overrides the over-budget behaviour: "reject" or
	// "downgrade" (default: the server's configuration).
	OnOverBudget string `json:"on_over_budget,omitempty"`
	// Parallelism requests intra-query parallel enumeration for this
	// compile, clamped to [1, Config.MaxParallelism]. Zero means serial.
	Parallelism int `json:"parallelism,omitempty"`
	// MemBudgetBytes overrides the server's memory budget for this request
	// (bytes; negative disables the memory budget).
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
}

// OptimizeResponse is the reply: the admission decision and — unless
// rejected — the chosen plan with its instrumentation.
type OptimizeResponse struct {
	Catalog   string             `json:"catalog"`
	Level     string             `json:"level,omitempty"`
	Admission *AdmissionDecision `json:"admission"`
	Plan      string             `json:"plan,omitempty"`
	Cost      float64            `json:"cost,omitempty"`
	Rows      float64            `json:"rows,omitempty"`
	ElapsedNS int64              `json:"elapsed_ns,omitempty"`
	Counts    core.PlanCounts    `json:"plan_counts"`
	// BudgetAborted lists levels whose compile started and was aborted
	// mid-flight because generated plans overran the prediction by more
	// than the server's budget factor; the final plan (if any) came from a
	// cheaper level.
	BudgetAborted []string `json:"budget_aborted,omitempty"`
	// MemAborted lists levels aborted mid-flight because measured optimizer
	// memory crossed the memory budget.
	MemAborted []string `json:"mem_aborted,omitempty"`
	// PeakBytes is the measured durable memory high-water mark of the
	// compile that produced the plan.
	PeakBytes int64 `json:"peak_bytes,omitempty"`
	// OverloadRungs is how many level-ladder rungs the overload controller
	// walked this request down before admission (0 when unloaded); the
	// admission decision's requested level stays the client's original.
	OverloadRungs int `json:"overload_rungs,omitempty"`
}

// Optimize runs a real optimization behind admission control: the cheap
// estimator prices the requested level first and the full compile runs
// only within budget (Figure 1's meta-optimizer as a serving guardrail).
func (s *Server) Optimize(ctx context.Context, req OptimizeRequest) (*OptimizeResponse, error) {
	s.metrics.OptimizeRequests.Add()
	if err := s.shedCheck(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.metrics.OptimizeLatency.Observe(d)
		s.shed.observe(d)
	}()

	entry, level, blk, err := s.parseRequest(req.Catalog, req.Level, req.SQL)
	if err != nil {
		return nil, err
	}
	// The overload ladder: sustained queue pressure short of shedding walks
	// the request down the same downgrade rungs the admission controller
	// uses, before admission prices anything — a loaded server compiles
	// cheaper plans instead of slower ones.
	requested := level
	overloadRungs := 0
	if rungs := s.shed.PressureRungs(); rungs > 0 {
		level, overloadRungs = downgradeForPressure(level, rungs)
		if overloadRungs > 0 {
			s.metrics.OverloadDowngrades.Add()
		}
	}
	budget := s.cfg.Budget
	if req.BudgetMS != 0 {
		budget = time.Duration(req.BudgetMS) * time.Millisecond
	}
	memBudget := s.cfg.MemBudget
	if req.MemBudgetBytes != 0 {
		memBudget = knobs.MemBudget(req.MemBudgetBytes)
	}
	downgrade := s.cfg.Downgrade
	switch req.OnOverBudget {
	case "":
	case "reject":
		downgrade = false
	case "downgrade":
		downgrade = true
	default:
		return nil, badRequest("unknown on_over_budget %q (want reject or downgrade)", req.OnOverBudget)
	}
	ctx, cancel := s.requestCtx(ctx)
	defer cancel()

	predict := func(l opt.Level) (time.Duration, bool, error) {
		m := s.Model()
		if m == nil {
			return 0, false, nil
		}
		est, _, err := s.estimateFor(ctx, entry, blk, l, true, req.Parallelism)
		if err != nil {
			return 0, false, err
		}
		return m.Predict(est.Counts), true, nil
	}
	predictMem := func(l opt.Level) (int64, error) {
		est, _, err := s.estimateFor(ctx, entry, blk, l, true, req.Parallelism)
		if err != nil {
			return 0, err
		}
		return core.EstimateMemory(est, s.memModel()), nil
	}
	dec, err := admit(level, budget, memBudget, downgrade, predict, predictMem)
	if err != nil {
		return nil, err
	}
	// The decision reports the client's requested level, not the one the
	// overload ladder already lowered it to.
	dec.RequestedLevel = LevelName(requested)
	resp := &OptimizeResponse{Catalog: entry.Name, Admission: dec, OverloadRungs: overloadRungs}
	switch dec.Action {
	case AdmitAccept:
		s.metrics.AdmissionAccepted.Add()
	case AdmitBypass:
		s.metrics.AdmissionBypassed.Add()
	case AdmitDowngrade:
		s.metrics.AdmissionDowngraded.Add()
	case AdmitReject:
		s.metrics.AdmissionRejected.Add()
		return resp, nil
	}
	admitted, err := ParseLevel(dec.AdmittedLevel)
	if err != nil {
		return nil, err
	}
	parallelism := knobs.Parallelism(req.Parallelism)
	if parallelism > s.cfg.MaxParallelism {
		parallelism = s.cfg.MaxParallelism
	}
	// The compile runs under an execution context: the request deadline
	// cancels it cooperatively, the COTE prediction feeds the live progress
	// meter (/v1/progress), and — with a budget factor or memory budget
	// configured — an overrun aborts it and drops a level, re-entering this
	// loop.
	for {
		oc := optctx.New(ctx)
		var predictedTime time.Duration
		if admitted != opt.LevelLow {
			// The greedy floor runs unbudgeted, like admission: it is the
			// level every downgrade must be able to land on.
			oc.SetMemBudget(memBudget)
			if plans, t, ok := s.predictLevel(ctx, entry, blk, admitted, req.Parallelism); ok {
				predictedTime = t
				oc.SetPredictedPlans(plans)
				if s.cfg.BudgetFactor > 0 {
					oc.SetPlanBudget(int64(s.cfg.BudgetFactor * float64(plans)))
				}
			}
		}
		pr := s.progress.add(entry.Name, LevelName(admitted), oc)
		res, err := Run(s.pool, ctx, func() (*opt.Result, error) {
			return opt.OptimizeWith(oc, blk, opt.Options{Level: admitted, Config: entry.Config, Parallelism: parallelism})
		})
		s.progress.remove(pr)
		s.metrics.ObserveStages(oc)
		if err == nil {
			resp.Level = LevelName(admitted)
			resp.Plan = res.Plan.String()
			resp.Cost = res.Plan.Cost
			resp.Rows = res.Plan.Card
			resp.ElapsedNS = res.Elapsed.Nanoseconds()
			resp.Counts = core.CountsFrom(res.TotalCounters())
			resp.PeakBytes = res.Resources.DurablePeakBytes
			s.metrics.ObserveResources(res.Resources)
			// Feed the calibration loop: every real optimization is a
			// training sample, the priced ones score the model's drift, and
			// the accounted ones (paired with the estimate's structural
			// counts) train the memory model.
			s.metrics.Observations.Add()
			obs := core.ObservationFrom(
				res.TotalCounters(), admitted, fingerprint.Of(blk), predictedTime, res.Elapsed)
			obs.PeakBytes = res.Resources.DurablePeakBytes
			if est, _, err := s.estimateFor(ctx, entry, blk, admitted, true, req.Parallelism); err == nil {
				for _, be := range est.Blocks {
					obs.Entries += be.Entries
					obs.PropertyBytes += be.PropertyBytes
				}
			}
			s.calib.ObserveCompile(obs)
			return resp, nil
		}
		switch {
		case errors.Is(err, optctx.ErrBudgetExceeded):
			s.metrics.BudgetAborts.Add()
			resp.BudgetAborted = append(resp.BudgetAborted, LevelName(admitted))
		case errors.Is(err, optctx.ErrMemBudgetExceeded):
			s.metrics.MemBudgetAborts.Add()
			resp.MemAborted = append(resp.MemAborted, LevelName(admitted))
		default:
			return nil, err
		}
		if !downgrade {
			return nil, err
		}
		admitted = admitted.NextLower()
	}
}

// predictLevel returns the COTE-predicted generated-plan total and
// compilation time for one level — the progress denominator, the budget
// baseline, and the prediction the calibration loop scores against the
// measured time. It reports false when no model is calibrated (no basis
// for bounding) or the estimate itself fails (the compile must still run).
func (s *Server) predictLevel(ctx context.Context, entry *RegistryEntry, blk *query.Block, level opt.Level, parallelism int) (int64, time.Duration, bool) {
	m := s.Model()
	if m == nil {
		return 0, 0, false
	}
	est, _, err := s.estimateFor(ctx, entry, blk, level, true, parallelism)
	if err != nil {
		return 0, 0, false
	}
	return int64(est.Counts.Total()), m.Predict(est.Counts), true
}

// CalibrateRequest is the body of POST /v1/calibrate: fit the time model
// on a named built-in workload.
type CalibrateRequest struct {
	// Workload is one of linear, star, random, real1, real2, tpch.
	Workload string `json:"workload"`
	// Nodes selects the serial (1, default) or 4-node parallel variant.
	Nodes int `json:"nodes,omitempty"`
}

// CalibrateResponse reports the fitted model.
type CalibrateResponse struct {
	Workload string `json:"workload"`
	Points   int    `json:"points"`
	Model    string `json:"model"`
}

// namedWorkload builds a calibration workload by name (the shared modelio
// table), turning an unknown name into a 400.
func namedWorkload(name string, nodes int) (*workload.Workload, error) {
	w, err := modelio.NamedWorkload(name, nodes)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return w, nil
}

// Calibrate compiles a named workload for real at two levels, fits the
// per-method constants (core.Calibrate), and installs the model for
// admission control and predictions. The compilations run through the
// worker pool one query at a time, so a calibration shares the process
// fairly with serving traffic.
func (s *Server) Calibrate(ctx context.Context, req CalibrateRequest) (*CalibrateResponse, error) {
	s.metrics.CalibrateRequests.Add()
	nodes := req.Nodes
	if nodes == 0 {
		nodes = 1
	}
	if nodes != 1 && nodes != 4 {
		return nil, badRequest("nodes must be 1 or 4, got %d", nodes)
	}
	w, err := namedWorkload(req.Workload, nodes)
	if err != nil {
		return nil, err
	}
	cfg := cost.Serial
	if nodes > 1 {
		cfg = cost.Parallel4
	}
	var training []core.TrainingPoint
	for _, q := range w.Queries {
		// Two levels per query decorrelate the per-method counts, keeping
		// the regression well conditioned (as experiments.TrainModel does).
		for _, level := range []opt.Level{opt.LevelHighInner2, opt.LevelMediumLeftDeep} {
			res, err := Run(s.pool, ctx, func() (*opt.Result, error) {
				return opt.Optimize(q.Block, opt.Options{Level: level, Config: cfg})
			})
			if err != nil {
				return nil, fmt.Errorf("calibrate %s: %w", q.Name, err)
			}
			training = append(training, core.TrainingPointFrom(res.TotalCounters(), res.Elapsed))
		}
	}
	model, err := core.Calibrate(training)
	if err != nil {
		return nil, badRequest("calibration failed: %v", err)
	}
	if _, err := s.installModel(model, "calibrate", len(training), 0); err != nil {
		return nil, err
	}
	return &CalibrateResponse{Workload: w.Name, Points: len(training), Model: model.String()}, nil
}

// --- HTTP layer ---

// Handler returns the HTTP API:
//
//	POST /v1/estimate       estimate a query's compilation
//	POST /v1/optimize       optimize behind admission control
//	POST /v1/calibrate      fit the time model on a named workload
//	GET  /v1/model          current model version + drift
//	POST /v1/model          install a model or roll back to a version
//	GET  /v1/model/history  retained model versions
//	GET  /v1/catalogs       list registered catalogs
//	POST /v1/catalogs       upload a JSON catalog
//	GET  /v1/progress       live progress of in-flight optimizations
//	GET  /metrics           JSON metrics snapshot
//	GET  /healthz           liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/estimate/batch", s.handleEstimateBatch)
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/calibrate", s.handleCalibrate)
	mux.HandleFunc("GET /v1/model", s.handleModelGet)
	mux.HandleFunc("POST /v1/model", s.handleModelPost)
	mux.HandleFunc("GET /v1/model/history", s.handleModelHistory)
	mux.HandleFunc("GET /v1/catalogs", s.handleCatalogList)
	mux.HandleFunc("POST /v1/catalogs", s.handleCatalogUpload)
	mux.HandleFunc("GET /v1/progress", s.handleProgress)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// maxBodyBytes bounds request bodies (catalog uploads included).
const maxBodyBytes = 1 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps service errors through the taxonomy (see errors.go) to an
// HTTP status, a machine-readable code, and — for retryable overload classes
// — a Retry-After hint.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.metrics.Errors.Add()
	status, code, retryAfter := classify(err)
	switch code {
	case CodeQueueFull:
		s.metrics.QueueRejected.Add()
	case CodeTimeout:
		s.metrics.Timeouts.Add()
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	}
	writeJSON(w, status, ErrorBody{Error: err.Error(), Code: code})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.Estimate(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	var req EstimateBatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.EstimateBatch(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.Optimize(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	status := http.StatusOK
	if resp.Admission != nil && resp.Admission.Action == AdmitReject {
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	var req CalibrateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.Calibrate(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCatalogList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"catalogs": s.registry.List()})
}

func (s *Server) handleCatalogUpload(w http.ResponseWriter, r *http.Request) {
	var def CatalogDef
	if err := decodeJSON(w, r, &def); err != nil {
		s.writeError(w, err)
		return
	}
	entry, err := s.registry.Register(def)
	if err != nil {
		// Schema problems are the client's fault (400); an injected
		// registration fault is the server's (503 dependency_fault) and must
		// not be laundered into a bad request.
		if !errors.Is(err, faultinject.ErrInjected) {
			err = badRequest("%v", err)
		}
		s.writeError(w, err)
		return
	}
	s.metrics.CatalogUploads.Add()
	writeJSON(w, http.StatusCreated, CatalogInfo{
		Name:    entry.Name,
		Tables:  entry.Catalog.NumTables(),
		Nodes:   entry.Config.Nodes,
		BuiltIn: false,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.pool, s.cache, s.calib, s.shed))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
