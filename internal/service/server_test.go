package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cote/internal/core"
	"cote/internal/props"
	"cote/internal/testutil"
)

// Three structurally distinct TPC-H queries (different table sets, so
// different signatures).
const (
	tpchQ3 = `SELECT c_name FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey`
	tpchQ4 = `SELECT c_name FROM customer, orders, lineitem, supplier
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND l_suppkey = s_suppkey`
	tpchQ6 = `SELECT n_name FROM customer, orders, lineitem, supplier, nation, region
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
		  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		ORDER BY n_name`
)

// testModel returns a model predicting perPlan seconds per generated plan,
// so tests can steer predictions far above or below any budget.
func testModel(perPlan float64) *core.TimeModel {
	m := &core.TimeModel{Tinst: 1}
	for i := 0; i < int(props.NumJoinMethods); i++ {
		m.C[i] = perPlan
	}
	return m
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp, m
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp, m
}

// TestServerEndToEnd exercises the full serving path over HTTP: health,
// catalog listing and upload, estimate (cache miss then hit), admission
// control accepting, rejecting and downgrading a full optimization, and
// the metrics that observe all of it.
func TestServerEndToEnd(t *testing.T) {
	srv := New(Config{
		Workers:       4,
		CacheCapacity: 16,
		Budget:        50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Liveness.
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, body)
	}

	// Built-in catalogs are listed.
	_, body = getJSON(t, ts.URL+"/v1/catalogs")
	names := map[string]bool{}
	for _, c := range body["catalogs"].([]any) {
		names[c.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"tpch", "warehouse1", "warehouse2", "tpch_p"} {
		if !names[want] {
			t.Fatalf("catalog %q missing from %v", want, body)
		}
	}

	// First estimate: a miss that fills the cache. No model is installed,
	// so no time prediction.
	est := func(sql string) (int, map[string]any) {
		resp, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Catalog: "tpch", SQL: sql})
		return resp.StatusCode, body
	}
	code, body := est(tpchQ3)
	if code != http.StatusOK {
		t.Fatalf("estimate: %d %v", code, body)
	}
	if body["cached"].(bool) {
		t.Fatal("first estimate claims cached")
	}
	e := body["estimate"].(map[string]any)
	if e["counts"].(map[string]any)["total"].(float64) <= 0 {
		t.Fatalf("no plans estimated: %v", e)
	}
	if _, ok := e["predicted_time_ns"]; ok {
		t.Fatalf("prediction without a model: %v", e)
	}

	// Second identical estimate hits the cache.
	_, body = est(tpchQ3)
	if !body["cached"].(bool) {
		t.Fatal("repeat estimate missed the cache")
	}

	// Install a cheap model: optimization is admitted at the requested
	// level and returns a plan.
	srv.SetModel(testModel(1e-9)) // ~ns per plan: far under budget
	optimize := func(req OptimizeRequest) (int, map[string]any) {
		resp, body := postJSON(t, ts.URL+"/v1/optimize", req)
		return resp.StatusCode, body
	}
	code, body = optimize(OptimizeRequest{Catalog: "tpch", SQL: tpchQ3})
	if code != http.StatusOK {
		t.Fatalf("optimize: %d %v", code, body)
	}
	adm := body["admission"].(map[string]any)
	if adm["action"] != string(AdmitAccept) || body["plan"] == "" || body["level"] != "inner2" {
		t.Fatalf("accept path: %v", body)
	}
	// With a model installed, estimates now carry predictions.
	_, body = est(tpchQ3)
	if body["estimate"].(map[string]any)["predicted_time_ns"].(float64) <= 0 {
		t.Fatal("cached estimate not re-priced with the new model")
	}

	// Install an expensive model: the same query is now priced over the
	// 50ms budget and rejected with 429.
	srv.SetModel(testModel(3600)) // an hour per plan
	code, body = optimize(OptimizeRequest{Catalog: "tpch", SQL: tpchQ3})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-budget optimize: %d %v", code, body)
	}
	adm = body["admission"].(map[string]any)
	if adm["action"] != string(AdmitReject) {
		t.Fatalf("reject path: %v", adm)
	}
	if adm["predicted_ns"].(float64) <= float64(50*time.Millisecond) {
		t.Fatalf("rejection without an over-budget prediction: %v", adm)
	}
	if _, ok := body["plan"]; ok {
		t.Fatalf("rejected request still compiled: %v", body)
	}

	// The same over-budget request with downgrading lands on the greedy
	// floor (every DP level is priced over an hour) and still gets a plan.
	code, body = optimize(OptimizeRequest{Catalog: "tpch", SQL: tpchQ3, OnOverBudget: "downgrade"})
	if code != http.StatusOK {
		t.Fatalf("downgrade optimize: %d %v", code, body)
	}
	adm = body["admission"].(map[string]any)
	if adm["action"] != string(AdmitDowngrade) || adm["admitted_level"] != "low" || body["level"] != "low" || body["plan"] == "" {
		t.Fatalf("downgrade path: %v", body)
	}

	// A per-request budget override can disable admission entirely.
	code, body = optimize(OptimizeRequest{Catalog: "tpch", SQL: tpchQ3, BudgetMS: -1})
	if code != http.StatusOK || body["admission"].(map[string]any)["action"] != string(AdmitAccept) {
		t.Fatalf("budget override: %d %v", code, body)
	}

	// Catalog upload, then estimation against the uploaded schema.
	def := CatalogDef{Name: "shop2", Tables: []TableDef{
		{Name: "item", Rows: 10_000, Columns: []ColumnDef{{Name: "id", NDV: 10_000}, {Name: "name", NDV: 9_000}}},
		{Name: "sale", Rows: 500_000, Columns: []ColumnDef{{Name: "item_id", NDV: 10_000}, {Name: "qty", NDV: 50}}},
	}}
	resp, body = postJSON(t, ts.URL+"/v1/catalogs", def)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %v", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		Catalog: "shop2", SQL: "SELECT name FROM item, sale WHERE id = item_id",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate on upload: %d %v", resp.StatusCode, body)
	}

	// Error mapping: unknown catalog 404, bad SQL 400, unknown level 400.
	if resp, _ := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Catalog: "nope", SQL: "SELECT 1"}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown catalog: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Catalog: "tpch", SQL: "SELEC nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad SQL: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Catalog: "tpch", SQL: tpchQ3, Level: "ultra"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad level: %d", resp.StatusCode)
	}

	// Metrics observed all of it.
	_, m := getJSON(t, ts.URL+"/metrics")
	reqs := m["requests"].(map[string]any)
	if reqs["estimate"].(float64) < 3 || reqs["optimize"].(float64) < 4 {
		t.Fatalf("request counters: %v", reqs)
	}
	cache := m["estimate_cache"].(map[string]any)
	if cache["hits"].(float64) < 1 || cache["misses"].(float64) < 1 {
		t.Fatalf("cache counters: %v", cache)
	}
	admission := m["admission"].(map[string]any)
	if admission["accepted"].(float64) < 2 || admission["rejected"].(float64) < 1 || admission["downgraded"].(float64) < 1 {
		t.Fatalf("admission counters: %v", admission)
	}
	lat := m["latency"].(map[string]any)["estimate"].(map[string]any)
	if lat["count"].(float64) < 3 || lat["p99_us"].(float64) <= 0 {
		t.Fatalf("latency histogram: %v", lat)
	}
	pool := m["pool"].(map[string]any)
	if pool["workers"].(float64) != 4 || pool["running"].(float64) != 0 {
		t.Fatalf("pool gauges: %v", pool)
	}
	// The connectivity-indexed scan counters observed the enumerations: real
	// workload graphs are sparse, so some partner slots must have been both
	// visited and skipped.
	scan := m["enum_scan"].(map[string]any)
	if scan["candidates_visited"].(float64) <= 0 || scan["candidates_skipped"].(float64) <= 0 {
		t.Fatalf("enum_scan counters: %v", scan)
	}
}

// TestServerCacheEviction runs the estimate endpoint against a capacity-2
// cache: a third distinct statement evicts the least recently used one.
func TestServerCacheEviction(t *testing.T) {
	srv := New(Config{Workers: 2, CacheCapacity: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	est := func(sql string) map[string]any {
		resp, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Catalog: "tpch", SQL: sql})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate: %d %v", resp.StatusCode, body)
		}
		return body
	}
	est(tpchQ3)
	est(tpchQ4)
	if !est(tpchQ3)["cached"].(bool) { // refresh Q3: Q4 becomes LRU
		t.Fatal("Q3 evicted prematurely")
	}
	est(tpchQ6) // evicts Q4
	if _, _, size, capacity := srv.cache.Stats(); size != 2 || capacity != 2 {
		t.Fatalf("cache size %d cap %d", size, capacity)
	}
	if !est(tpchQ3)["cached"].(bool) { // recently used survives (LRU, not FIFO)
		t.Fatal("recently used Q3 was evicted")
	}
	if est(tpchQ4)["cached"].(bool) {
		t.Fatal("evicted Q4 still cached")
	}
}

// TestServerCalibrate fits a model through the API and checks that
// estimates are priced with it afterwards.
func TestServerCalibrate(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration compiles a full workload")
	}
	srv := New(Config{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/calibrate", CalibrateRequest{Workload: "star"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("calibrate: %d %v", resp.StatusCode, body)
	}
	if body["points"].(float64) < 10 || body["model"] == "" {
		t.Fatalf("calibrate response: %v", body)
	}
	if srv.Model() == nil {
		t.Fatal("model not installed")
	}
	resp, body = postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Catalog: "tpch", SQL: tpchQ6})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %v", resp.StatusCode, body)
	}
	if body["estimate"].(map[string]any)["predicted_time_ns"].(float64) <= 0 {
		t.Fatalf("no prediction after calibration: %v", body)
	}
}

// TestServerConcurrentRequests hammers the estimate endpoint from many
// goroutines (run under -race this doubles as a data-race check on the
// whole serving path) and checks the stack unwinds without leaking a
// goroutine.
func TestServerConcurrentRequests(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := New(Config{Workers: 4, Queue: 64, CacheCapacity: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{tpchQ3, tpchQ4, tpchQ6}
	errs := make(chan error, 24)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 3; i++ {
				data, _ := json.Marshal(EstimateRequest{Catalog: "tpch", SQL: queries[(g+i)%len(queries)]})
				// The test server's own client, so ts.Close reaps the
				// keep-alive connections the leak guard would otherwise see.
				resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(data))
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
				}
				resp.Body.Close()
				errs <- nil
			}
		}(g)
	}
	for i := 0; i < 24; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, _, _ := srv.cache.Stats()
	shared := srv.cache.Shared()
	if hits+misses+shared != 24 {
		t.Fatalf("cache saw %d lookups (%d hits, %d misses, %d shared), want 24", hits+misses+shared, hits, misses, shared)
	}
	if hits+shared < 1 {
		t.Fatal("no cache hits or shared flights under concurrency")
	}
}
