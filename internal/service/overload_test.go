package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cote/internal/opt"
)

func TestShedderQueueBound(t *testing.T) {
	p := NewPool(2, 8)
	sh := newShedder(p, 4, 0)
	if err := sh.Admit(context.Background()); err != nil {
		t.Fatalf("empty pool shed: %v", err)
	}
	// Fake a waiting line at the shed bound.
	p.inflight.Add(4)
	err := sh.Admit(context.Background())
	se, ok := err.(*shedError)
	if !ok {
		t.Fatalf("got %v, want *shedError at the queue bound", err)
	}
	if se.retryAfter != sh.drainEstimate(4) {
		t.Errorf("retryAfter %v != drain estimate %v", se.retryAfter, sh.drainEstimate(4))
	}
	p.inflight.Add(-1)
	if err := sh.Admit(context.Background()); err != nil {
		t.Fatalf("one below the bound shed: %v", err)
	}
}

func TestShedderDeadlineAware(t *testing.T) {
	p := NewPool(1, 8)
	sh := newShedder(p, 8, 0)
	sh.observe(100 * time.Millisecond) // seed the EWMA
	p.inflight.Add(4)                  // 4 waiting, 1 worker → ~400ms projected wait

	// A deadline beyond the projected wait passes.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := sh.Admit(ctx); err != nil {
		t.Fatalf("roomy deadline shed: %v", err)
	}
	// A deadline inside it sheds.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, ok := sh.Admit(ctx2).(*shedError); !ok {
		t.Fatal("deadline inside the projected wait was not shed")
	}
	// The margin tightens the same check.
	shMargin := newShedder(p, 8, time.Hour)
	shMargin.observe(time.Microsecond)
	if _, ok := shMargin.Admit(ctx).(*shedError); !ok {
		t.Fatal("deadline inside the shed margin was not shed")
	}
	// No deadline → nothing to be deadline-aware about.
	if err := sh.Admit(context.Background()); err != nil {
		t.Fatalf("deadline-free request shed: %v", err)
	}
}

func TestShedderEWMA(t *testing.T) {
	sh := newShedder(NewPool(1, 1), 1, 0)
	if sh.AvgRun() != 0 {
		t.Fatal("fresh EWMA not zero")
	}
	sh.observe(80 * time.Millisecond)
	if got := sh.AvgRun(); got != 80*time.Millisecond {
		t.Fatalf("first observation %v, want seeded 80ms", got)
	}
	sh.observe(160 * time.Millisecond)
	if got := sh.AvgRun(); got != 90*time.Millisecond { // 80 + (160-80)/8
		t.Fatalf("EWMA after 160ms = %v, want 90ms", got)
	}
}

func TestPressureRungsAndLadder(t *testing.T) {
	p := NewPool(2, 16)
	sh := newShedder(p, 16, 0)
	for _, tc := range []struct {
		waiting int64
		rungs   int
	}{
		{0, 0}, {7, 0}, {8, 1}, {11, 1}, {12, 2}, {16, 2},
	} {
		p.inflight.Store(tc.waiting)
		if got := sh.PressureRungs(); got != tc.rungs {
			t.Errorf("waiting=%d: rungs=%d, want %d", tc.waiting, got, tc.rungs)
		}
	}
	if l, n := downgradeForPressure(opt.LevelHigh, 2); l != opt.LevelMediumZigZag || n != 2 {
		t.Errorf("high -2 rungs = %v (%d), want zigzag (2)", l, n)
	}
	if l, n := downgradeForPressure(opt.LevelLow, 2); l != opt.LevelLow || n != 0 {
		t.Errorf("low -2 rungs = %v (%d), want floor untouched", l, n)
	}
	if l, n := downgradeForPressure(opt.LevelMediumLeftDeep, 3); l != opt.LevelLow || n != 1 {
		t.Errorf("leftdeep -3 rungs = %v (%d), want low (1)", l, n)
	}
}

// TestShedRespondsWith429 drives the HTTP surface: a saturated waiting line
// must shed with 429, the shed_overload taxonomy code, a Retry-After header,
// and a ticked shed_requests metric — before any SQL is parsed.
func TestShedRespondsWith429(t *testing.T) {
	srv := New(Config{Workers: 2, Queue: 8, MaxQueue: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.pool.inflight.Add(4) // saturate the shed bound
	defer srv.pool.inflight.Add(-4)

	resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json",
		strings.NewReader(`{"catalog":"tpch","sql":"SELECT c_name FROM customer"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("shed body undecodable: %v", err)
	}
	if eb.Code != CodeShedOverload {
		t.Errorf("code %q, want %s", eb.Code, CodeShedOverload)
	}
	if got := srv.metrics.ShedRequests.Value(); got != 1 {
		t.Errorf("shed_requests = %d, want 1", got)
	}
	// The parse stage must not have moved: shedding happens pre-parse.
	if got := srv.metrics.StageCount[0].Value(); got != 0 {
		t.Errorf("parse stage count = %d after a shed; shedding must precede parsing", got)
	}
}

// TestOverloadLadderDowngradesOptimize pins the pressure ladder end to end:
// at two rungs of queue pressure an optimize asking for "high" compiles at
// "zigzag", the response records the rungs, and the admission decision still
// reports the client's requested level.
func TestOverloadLadderDowngradesOptimize(t *testing.T) {
	srv := New(Config{Workers: 4, Queue: 16})
	srv.pool.inflight.Add(12) // 12 waiting ≥ 3/4 of MaxQueue=16 → 2 rungs
	defer srv.pool.inflight.Add(-12)

	resp, err := srv.Optimize(context.Background(), OptimizeRequest{
		Catalog: "tpch",
		SQL:     "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey",
		Level:   "high",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OverloadRungs != 2 {
		t.Errorf("OverloadRungs = %d, want 2", resp.OverloadRungs)
	}
	if resp.Level != "zigzag" {
		t.Errorf("compiled at %q, want zigzag (high minus two rungs)", resp.Level)
	}
	if resp.Admission.RequestedLevel != "high" {
		t.Errorf("decision reports requested %q, want the client's high", resp.Admission.RequestedLevel)
	}
	if got := srv.metrics.OverloadDowngrades.Value(); got != 1 {
		t.Errorf("overload_downgrades = %d, want 1", got)
	}

	// Unloaded, the same request runs at the requested level.
	srv2 := New(Config{Workers: 4, Queue: 16})
	resp2, err := srv2.Optimize(context.Background(), OptimizeRequest{
		Catalog: "tpch",
		SQL:     "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey",
		Level:   "high",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.OverloadRungs != 0 || resp2.Level != "high" {
		t.Errorf("unloaded: rungs=%d level=%q, want 0/high", resp2.OverloadRungs, resp2.Level)
	}
}

// BenchmarkShedReject prices the refusal path — the acceptance bar is that a
// shed request costs well under 5% of the estimate it displaces (compare
// with BenchmarkServerEstimate): no parsing, no pool, one Depth read and an
// error allocation.
func BenchmarkShedReject(b *testing.B) {
	srv := New(Config{Workers: 2, Queue: 8, MaxQueue: 4})
	srv.pool.inflight.Add(4)
	defer srv.pool.inflight.Add(-4)
	req := EstimateRequest{Catalog: "tpch", SQL: "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Estimate(context.Background(), req); err == nil {
			b.Fatal("saturated server admitted the request")
		}
	}
}
