package service

import (
	"math/bits"
	"sync/atomic"
	"time"

	"cote/internal/calib"
	"cote/internal/optctx"
	"cote/internal/resource"
)

// Counter is an atomic monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by one.
func (c *Counter) Add() { c.v.Add(1) }

// AddN increments the counter by n.
func (c *Counter) AddN(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// MaxGauge is an atomic high-water mark: Observe keeps the largest value
// ever seen.
type MaxGauge struct{ v atomic.Int64 }

// Observe folds one value into the maximum.
func (g *MaxGauge) Observe(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the maximum observed so far.
func (g *MaxGauge) Value() int64 { return g.v.Load() }

// Histogram is a lock-free latency histogram over power-of-two microsecond
// buckets: bucket i counts observations in [2^(i-1), 2^i) µs. Thirty-two
// buckets cover sub-microsecond to over an hour.
type Histogram struct {
	buckets [32]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) from the
// bucket boundaries, as a duration. Zero observations yield zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			// Upper bucket boundary: 2^i - 1 µs (bucket 0 holds [0, 1) µs).
			return time.Duration((int64(1)<<i)-1) * time.Microsecond
		}
	}
	return time.Duration((int64(1)<<len(h.buckets))-1) * time.Microsecond
}

// snapshot is the JSON form of a histogram.
type histogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  int64   `json:"p50_us"`
	P90US  int64   `json:"p90_us"`
	P99US  int64   `json:"p99_us"`
}

func (h *Histogram) snapshot() histogramSnapshot {
	s := histogramSnapshot{
		Count: h.count.Load(),
		P50US: h.Quantile(0.50).Microseconds(),
		P90US: h.Quantile(0.90).Microseconds(),
		P99US: h.Quantile(0.99).Microseconds(),
	}
	if s.Count > 0 {
		s.MeanUS = float64(h.sumUS.Load()) / float64(s.Count)
	}
	return s
}

// Metrics is the server's observability surface: request counters per
// endpoint, latency histograms for the two heavy paths, estimate-cache and
// admission outcomes, and load-shedding counters. GET /metrics renders a
// snapshot as plain JSON (stdlib only, expvar-style).
type Metrics struct {
	start time.Time

	EstimateRequests  Counter
	OptimizeRequests  Counter
	CalibrateRequests Counter
	CatalogUploads    Counter
	Errors            Counter

	EstimateLatency Histogram
	OptimizeLatency Histogram

	CacheHits   Counter
	CacheMisses Counter
	// SharedFlights counts estimate requests served by waiting on another
	// request's in-flight enumeration of the same fingerprint (the
	// singleflight path: no cache entry yet, no own enumeration either).
	SharedFlights Counter

	// BatchRequests / BatchStatements / BatchDeduped instrument
	// POST /v1/estimate/batch: calls, statements submitted, and statements
	// answered by another statement of the same batch (same fingerprint).
	BatchRequests   Counter
	BatchStatements Counter
	BatchDeduped    Counter

	AdmissionAccepted   Counter
	AdmissionRejected   Counter
	AdmissionDowngraded Counter
	AdmissionBypassed   Counter

	QueueRejected Counter
	Timeouts      Counter
	// ShedRequests counts requests refused at the door by the overload
	// shedder (429 shed_overload); OverloadDowngrades counts optimize
	// requests the pressure ladder walked to a cheaper level before
	// admission.
	ShedRequests       Counter
	OverloadDowngrades Counter
	// BudgetAborts counts optimizations aborted because generated plans
	// overran the COTE prediction by more than the budget factor;
	// MemBudgetAborts counts those aborted because measured optimizer
	// memory crossed the memory budget.
	BudgetAborts    Counter
	MemBudgetAborts Counter

	// Resource accounting over every accounted compilation: runs observed,
	// cumulative peak bytes (total and durable), and the largest single-run
	// peaks since start — the /metrics "resource" section.
	ResourceRuns           Counter
	ResourcePeakSum        Counter
	ResourceDurableSum     Counter
	ResourcePeakMax        MaxGauge
	ResourceDurablePeakMax MaxGauge

	// Observations counts real optimizations fed to the calibration loop;
	// ModelInstalls counts model versions installed through the API paths
	// (seed, calibrate, upload, rollback). Automatic recalibrations are
	// reported from the calibrator itself in the snapshot's calibration
	// section.
	Observations  Counter
	ModelInstalls Counter

	// EnumCandidatesVisited / EnumCandidatesSkipped aggregate the
	// connectivity-indexed scan's work over every enumeration the server ran:
	// size-class partner slots actually examined vs proved irrelevant by the
	// adjacency index (their sum is what the naive cross-product scan would
	// have walked).
	EnumCandidatesVisited Counter
	EnumCandidatesSkipped Counter

	// StageCount / StageTimeUS aggregate the per-stage observability of
	// every completed compilation: units processed and microseconds spent in
	// parse, enumerate, generate and prune.
	StageCount  [optctx.NumStages]Counter
	StageTimeUS [optctx.NumStages]Counter
}

// NewMetrics returns zeroed metrics with the uptime clock started.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// ObserveStage folds one stage observation into the aggregates.
func (m *Metrics) ObserveStage(s optctx.Stage, count int64, elapsed time.Duration) {
	if s < 0 || s >= optctx.NumStages {
		return
	}
	m.StageCount[s].AddN(count)
	m.StageTimeUS[s].AddN(elapsed.Microseconds())
}

// ObserveResources folds one accounted compilation's resource snapshot into
// the aggregates. Unaccounted runs (zero snapshot) are skipped.
func (m *Metrics) ObserveResources(s resource.Snapshot) {
	if s.PeakBytes == 0 && s.DurablePeakBytes == 0 {
		return
	}
	m.ResourceRuns.Add()
	m.ResourcePeakSum.AddN(s.PeakBytes)
	m.ResourceDurableSum.AddN(s.DurablePeakBytes)
	m.ResourcePeakMax.Observe(s.PeakBytes)
	m.ResourceDurablePeakMax.Observe(s.DurablePeakBytes)
}

// ObserveStages folds a finished compilation's per-stage snapshot into the
// aggregates.
func (m *Metrics) ObserveStages(oc *optctx.Ctx) {
	if oc == nil {
		return
	}
	for s, st := range oc.StageSnapshot() {
		m.ObserveStage(optctx.Stage(s), st.Count, st.Time)
	}
}

// Snapshot renders every metric, plus the live pool, cache, overload and
// calibration gauges, as a JSON-marshalable map. Rendered through
// encoding/json the snapshot is byte-deterministic for fixed counter values:
// every level is a map (marshaled in sorted key order) or a struct with a
// fixed field order. The metrics golden test pins this.
func (m *Metrics) Snapshot(pool *Pool, cache *EstimateCache, cal *calib.Calibrator, shed *Shedder) map[string]any {
	waiting, running := pool.Depth()
	_, _, size, capacity := cache.Stats()
	cs := cal.Stats()
	return map[string]any{
		"uptime_seconds": int64(time.Since(m.start).Seconds()),
		"requests": map[string]int64{
			"estimate":        m.EstimateRequests.Value(),
			"optimize":        m.OptimizeRequests.Value(),
			"calibrate":       m.CalibrateRequests.Value(),
			"catalog_uploads": m.CatalogUploads.Value(),
			"errors":          m.Errors.Value(),
		},
		"latency": map[string]any{
			"estimate": m.EstimateLatency.snapshot(),
			"optimize": m.OptimizeLatency.snapshot(),
		},
		"estimate_cache": map[string]int64{
			"hits":           m.CacheHits.Value(),
			"misses":         m.CacheMisses.Value(),
			"shared_flights": m.SharedFlights.Value(),
			"size":           int64(size),
			"capacity":       int64(capacity),
		},
		"estimate_batch": map[string]int64{
			"requests":   m.BatchRequests.Value(),
			"statements": m.BatchStatements.Value(),
			"deduped":    m.BatchDeduped.Value(),
		},
		"admission": map[string]int64{
			"accepted":   m.AdmissionAccepted.Value(),
			"rejected":   m.AdmissionRejected.Value(),
			"downgraded": m.AdmissionDowngraded.Value(),
			"bypassed":   m.AdmissionBypassed.Value(),
		},
		"overload": map[string]int64{
			"shed_requests":       m.ShedRequests.Value(),
			"overload_downgrades": m.OverloadDowngrades.Value(),
			"pressure_rungs":      int64(shed.PressureRungs()),
			"avg_run_us":          shed.AvgRun().Microseconds(),
		},
		"pool": map[string]int64{
			"workers":        int64(pool.Workers()),
			"running":        running,
			"queued":         waiting,
			"queue_rejected": m.QueueRejected.Value(),
			"timeouts":       m.Timeouts.Value(),
			"abandoned_runs": pool.Abandoned(),
			"budget_aborts":  m.BudgetAborts.Value(),
		},
		"resource": map[string]int64{
			"accounted_runs":         m.ResourceRuns.Value(),
			"peak_bytes_sum":         m.ResourcePeakSum.Value(),
			"durable_peak_sum":       m.ResourceDurableSum.Value(),
			"peak_bytes_max":         m.ResourcePeakMax.Value(),
			"durable_peak_bytes_max": m.ResourceDurablePeakMax.Value(),
			"mem_budget_aborts":      m.MemBudgetAborts.Value(),
		},
		"calibration": map[string]any{
			"model_version":      int64(cal.Registry().Version()),
			"model_installs":     m.ModelInstalls.Value(),
			"observations":       m.Observations.Value(),
			"window_len":         int64(cs.WindowLen),
			"window_cap":         int64(cs.WindowCap),
			"drift":              cs.Drift,
			"degraded":           cs.Degraded,
			"recalibrations":     cs.Recalibrations,
			"refits_rejected":    cs.Rejected,
			"refits_failed":      cs.Failures,
			"mem_samples":        int64(cs.MemSamples),
			"mem_recalibrations": cs.MemRecalibrations,
		},
		"enum_scan": map[string]int64{
			"candidates_visited": m.EnumCandidatesVisited.Value(),
			"candidates_skipped": m.EnumCandidatesSkipped.Value(),
		},
		"stages": m.stagesSnapshot(),
	}
}

// stagesSnapshot renders the per-stage aggregates keyed by stage name.
func (m *Metrics) stagesSnapshot() map[string]map[string]int64 {
	out := make(map[string]map[string]int64, optctx.NumStages)
	for s := optctx.Stage(0); s < optctx.NumStages; s++ {
		out[s.String()] = map[string]int64{
			"count":   m.StageCount[s].Value(),
			"time_us": m.StageTimeUS[s].Value(),
		}
	}
	return out
}
