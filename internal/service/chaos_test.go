// Chaos soak: the full serving stack — HTTP server, pool, caches, admission,
// shedding — driven by concurrent retrying clients while a deterministic
// fault plan fails pool acquisitions, cache fills and memory budgets
// underneath it. The test proves the robustness contract end to end:
//
//   - every successful estimate is byte-identical to the fault-free baseline
//     (faults can fail requests, never corrupt them);
//   - every failure surfaces as a taxonomy-coded APIError (no raw 500s, no
//     undecodable bodies);
//   - the armed fault points actually fired (the plan was not a no-op);
//   - the whole stack unwinds without leaking a goroutine.
//
// It lives in package service_test because it drives the server through
// internal/coteclient, which imports service.
package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cote/internal/coteclient"
	"cote/internal/faultinject"
	"cote/internal/service"
	"cote/internal/testutil"
)

// chaosQueries are structurally distinct TPC-H shapes (different table
// sets), so the soak exercises several cache keys concurrently.
var chaosQueries = []string{
	`SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey`,
	`SELECT c_name FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey`,
	`SELECT c_name FROM customer, orders, lineitem, supplier
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND l_suppkey = s_suppkey`,
	`SELECT n_name FROM customer, orders, lineitem, supplier, nation, region
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
		  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey`,
}

// knownCodes is the closed set of taxonomy codes a chaos client may see.
// CodeInternal is deliberately absent: an injected fault that surfaces as a
// bare 500 means some layer dropped the error chain.
var knownCodes = map[string]bool{
	service.CodeShedOverload:    true,
	service.CodeQueueFull:       true,
	service.CodeDependencyFault: true,
	service.CodeTimeout:         true,
	service.CodeMemOverBudget:   true,
	service.CodeOverBudget:      true,
}

// normalizeEstimate strips the per-run fields (wall time, cache provenance)
// and renders the rest; two estimates of the same query must collapse to the
// same string whether they hit a cache, shared a flight, or enumerated.
func normalizeEstimate(t *testing.T, resp *service.EstimateResponse) string {
	t.Helper()
	resp.Cached = false
	resp.Estimate.Elapsed = 0
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatalf("marshal estimate: %v", err)
	}
	return string(b)
}

func newChaosServer() *service.Server {
	return service.New(service.Config{Workers: 2, Queue: 16, RequestTimeout: 10 * time.Second})
}

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	for _, seed := range []uint64{1, 7} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			testutil.CheckGoroutines(t)

			// Phase 1: fault-free baseline, one canonical body per query.
			baseline := make([]string, len(chaosQueries))
			{
				ts := httptest.NewServer(newChaosServer().Handler())
				c := coteclient.New(coteclient.Config{BaseURL: ts.URL, HTTPClient: ts.Client(), Seed: int64(seed)})
				for i, sql := range chaosQueries {
					resp, err := c.Estimate(context.Background(), service.EstimateRequest{Catalog: "tpch", SQL: sql})
					if err != nil {
						t.Fatalf("baseline estimate %d: %v", i, err)
					}
					baseline[i] = normalizeEstimate(t, resp)
				}
				ts.Close()
			}

			// Phase 2: same queries under an armed fault plan. Rates are
			// high enough that every point trips and low enough that the
			// 4-attempt retry discipline still lands most requests.
			plan, err := faultinject.NewPlan(seed,
				faultinject.Rule{Point: faultinject.PointPoolAcquire, Error: true, Latency: 100 * time.Microsecond, Prob: 0.15},
				faultinject.Rule{Point: faultinject.PointCacheFill, Error: true, Prob: 0.2, After: 2},
				faultinject.Rule{Point: faultinject.PointMemBudget, Error: true, Times: 10},
			)
			if err != nil {
				t.Fatalf("NewPlan: %v", err)
			}
			faultinject.Activate(plan)
			defer faultinject.Deactivate()

			srv := newChaosServer()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			clients := 8
			iters := 12
			if testutil.RaceEnabled {
				clients, iters = 4, 8
			}
			type outcome struct {
				query int
				body  string
				err   error
			}
			results := make(chan outcome, clients*iters)
			var wg sync.WaitGroup
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := coteclient.New(coteclient.Config{
						BaseURL:     ts.URL,
						HTTPClient:  ts.Client(),
						Seed:        int64(seed)*100 + int64(w),
						MaxAttempts: 4,
						BaseBackoff: time.Millisecond,
						MaxBackoff:  20 * time.Millisecond,
					})
					for i := 0; i < iters; i++ {
						q := (w + i) % len(chaosQueries)
						resp, err := c.Estimate(context.Background(), service.EstimateRequest{Catalog: "tpch", SQL: chaosQueries[q]})
						if err != nil {
							results <- outcome{query: q, err: err}
							continue
						}
						results <- outcome{query: q, body: normalizeEstimate(t, resp)}
					}
				}(w)
			}
			wg.Wait()
			close(results)

			succeeded, failed := 0, 0
			for r := range results {
				if r.err != nil {
					failed++
					ae, ok := r.err.(*coteclient.APIError)
					if !ok {
						t.Errorf("non-taxonomy error under chaos: %T: %v", r.err, r.err)
						continue
					}
					if !knownCodes[ae.Code] {
						t.Errorf("unexpected taxonomy code %q (status %d): %s", ae.Code, ae.Status, ae.Message)
					}
					continue
				}
				succeeded++
				if r.body != baseline[r.query] {
					t.Errorf("query %d diverged from fault-free baseline under chaos:\n got %s\nwant %s",
						r.query, r.body, baseline[r.query])
				}
			}
			total := clients * iters
			if succeeded == 0 {
				t.Fatalf("all %d requests failed; fault rates out of tune", total)
			}
			// The retry discipline (4 attempts vs p=0.15/0.2 fault rates)
			// should land the overwhelming majority; a high floor here turns
			// a broken retry loop into a failure instead of a statistic.
			if failed > total/2 {
				t.Errorf("%d/%d requests failed despite retries", failed, total)
			}
			t.Logf("chaos soak seed=%d: %d ok, %d failed of %d", seed, succeeded, failed, total)

			// The plan must have actually fired.
			stats := faultinject.Stats()
			for _, point := range []string{faultinject.PointPoolAcquire, faultinject.PointCacheFill} {
				st := stats[point]
				if st.Calls == 0 || st.Trips == 0 {
					t.Errorf("point %s: calls=%d trips=%d; the chaos plan never bit there", point, st.Calls, st.Trips)
				}
			}
		})
	}
}

// TestChaosCatalogAndModelFaults drives the control-plane fault points:
// catalog upload and model install must fail cleanly (503 dependency_fault,
// no partial registry state) while the data plane keeps serving.
func TestChaosCatalogAndModelFaults(t *testing.T) {
	testutil.CheckGoroutines(t)
	plan, err := faultinject.NewPlan(11,
		faultinject.Rule{Point: faultinject.PointCatalogRegister, Error: true},
		faultinject.Rule{Point: faultinject.PointModelSwap, Error: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(plan)
	defer faultinject.Deactivate()

	srv := newChaosServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := coteclient.New(coteclient.Config{BaseURL: ts.URL, HTTPClient: ts.Client(), MaxAttempts: 2, BaseBackoff: time.Millisecond})

	// Catalog upload: every attempt trips, the client exhausts retries and
	// surfaces dependency_fault; the name must stay unregistered.
	body := `{"name":"chaoscat","tables":[{"name":"t","rows":10,"columns":[{"name":"a","ndv":10}]}]}`
	resp, err := ts.Client().Post(ts.URL+"/v1/catalogs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var eb service.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("upload error body undecodable: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || eb.Code != service.CodeDependencyFault {
		t.Fatalf("faulted upload: status=%d code=%q, want 503 %s", resp.StatusCode, eb.Code, service.CodeDependencyFault)
	}
	if _, err := srv.Registry().Get("chaoscat"); err == nil {
		t.Fatal("faulted upload half-registered the catalog")
	}

	// The data plane is unaffected: estimates against built-ins still work.
	if _, err := c.Estimate(context.Background(), service.EstimateRequest{Catalog: "tpch", SQL: chaosQueries[0]}); err != nil {
		t.Fatalf("estimate under control-plane faults: %v", err)
	}

	// Model install trips the swap point before the registry changes.
	mreq, _ := json.Marshal(map[string]any{"model": map[string]any{"tinst": 1e-8}})
	resp, err = ts.Client().Post(ts.URL+"/v1/model", "application/json", strings.NewReader(string(mreq)))
	if err != nil {
		t.Fatal(err)
	}
	eb = service.ErrorBody{}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("model error body undecodable: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || eb.Code != service.CodeDependencyFault {
		t.Fatalf("faulted model install: status=%d code=%q, want 503 %s", resp.StatusCode, eb.Code, service.CodeDependencyFault)
	}
	if srv.Model() != nil {
		t.Fatal("faulted install swapped the model anyway")
	}
}
