// Package greedy implements the polynomial-time low optimization level of
// the reproduced system: a greedy left-deep join-order heuristic in the
// spirit of the "low" levels the paper describes commercial optimizers
// offering ("a polynomial-time greedy method"). The meta-optimizer compiles
// a query here first, takes the resulting execution-cost estimate E, and
// asks the compilation-time estimator whether recompiling at the high
// (dynamic programming) level is worth its compilation cost C.
package greedy

import (
	"fmt"

	"cote/internal/bitset"
	"cote/internal/cost"
	"cote/internal/memo"
	"cote/internal/query"
)

// Result is the outcome of a greedy optimization.
type Result struct {
	// Plan is the left-deep plan found.
	Plan *memo.Plan
	// Cost is the plan's estimated execution cost in instruction units.
	Cost float64
	// JoinsConsidered counts the candidate joins the greedy pass costed,
	// a measure of its (polynomial) compilation effort.
	JoinsConsidered int
}

// Optimize runs the greedy heuristic: start from the table with the
// smallest filtered cardinality, then repeatedly join the connected table
// that yields the cheapest intermediate plan, falling back to the smallest
// Cartesian product when the remainder is disconnected. Only join order and
// method are chosen; physical properties are ignored, which is what makes
// the low level cheap and its plans potentially worse.
func Optimize(blk *query.Block, card *cost.Estimator, cfg *cost.Config) (*Result, error) {
	n := blk.NumTables()
	if n == 0 {
		return nil, fmt.Errorf("greedy: query %q has no tables", blk.Name)
	}
	res := &Result{}

	scan := func(t int) *memo.Plan {
		ref := blk.Tables[t]
		fc := card.FilteredCard(t)
		return &memo.Plan{
			Op: memo.OpTableScan, Tables: bitset.Single(t),
			Cost: cfg.ScanCost(ref.BaseRows(), fc), Card: fc,
		}
	}

	// Seed: smallest filtered table that may lead (outer-eligible).
	seed := -1
	for t := 0; t < n; t++ {
		if isNullProducing(blk, t) || blk.Tables[t].Correlated {
			continue
		}
		if seed < 0 || card.FilteredCard(t) < card.FilteredCard(seed) {
			seed = t
		}
	}
	if seed < 0 {
		seed = 0
	}
	cur := scan(seed)

	for cur.Tables.Len() < n {
		var plan *memo.Plan
		tryJoin := func(t int) {
			if !joinAllowed(blk, cur.Tables, t) {
				return
			}
			cand := bestJoin(blk, card, cfg, cur, scan(t), &res.JoinsConsidered)
			if plan == nil || cand.Cost < plan.Cost {
				plan = cand
			}
		}
		// Prefer connected tables.
		conn := blk.Neighbors(cur.Tables)
		for t := conn.Next(0); t >= 0; t = conn.Next(t + 1) {
			tryJoin(t)
		}
		if plan == nil {
			// Disconnected remainder: Cartesian product with any table.
			for t := 0; t < n; t++ {
				if !cur.Tables.Contains(t) {
					tryJoin(t)
				}
			}
		}
		if plan == nil {
			return nil, fmt.Errorf("greedy: query %q stuck at %v (outer-join constraints too tight)",
				blk.Name, cur.Tables)
		}
		cur = plan
	}
	res.Plan = cur
	res.Cost = cur.Cost
	return res, nil
}

// isNullProducing reports whether t is the null-producing side of an outer
// join.
func isNullProducing(blk *query.Block, t int) bool {
	for _, oj := range blk.OuterJoins {
		if oj.NullProducing == t {
			return true
		}
	}
	return false
}

// joinAllowed enforces the outer-join restriction: the null-producing table
// may only be added once all preserving tables its predicate references are
// present.
func joinAllowed(blk *query.Block, have bitset.Set, t int) bool {
	for _, oj := range blk.OuterJoins {
		if oj.NullProducing == t && !oj.PredReq.SubsetOf(have) {
			return false
		}
	}
	return true
}

// bestJoin returns the cheaper of a hash join and a nested-loops join
// between cur (outer) and the scan of one more table.
func bestJoin(blk *query.Block, card *cost.Estimator, cfg *cost.Config, cur, right *memo.Plan, considered *int) *memo.Plan {
	union := cur.Tables.Union(right.Tables)
	outCard := card.Card(union)
	var best *memo.Plan
	hasEq := false
	for _, pi := range blk.PredsBetween(cur.Tables, right.Tables) {
		if blk.JoinPreds[pi].Op == query.Eq {
			hasEq = true
			break
		}
	}
	if hasEq {
		*considered++
		best = &memo.Plan{
			Op: memo.OpHSJN, Left: cur, Right: right, Tables: union,
			Cost: cfg.HSJNCost(cur.Cost, cur.Card, right.Cost, right.Card, outCard),
			Card: outCard,
		}
	}
	*considered++
	nl := &memo.Plan{
		Op: memo.OpNLJN, Left: cur, Right: right, Tables: union,
		Cost: cfg.NLJNCost(cur.Cost, cur.Card, right.Cost, right.Card, outCard),
		Card: outCard,
	}
	if best == nil || nl.Cost < best.Cost {
		best = nl
	}
	// Greedy merge join: sort both sides when an equality predicate exists.
	if hasEq {
		*considered++
		mg := &memo.Plan{
			Op: memo.OpMGJN, Left: cur, Right: right, Tables: union,
			Cost: cfg.MGJNCost(cur.Cost+cfg.SortCost(cur.Card), cur.Card,
				right.Cost+cfg.SortCost(right.Card), right.Card, outCard),
			Card: outCard,
		}
		if mg.Cost < best.Cost {
			best = mg
		}
	}
	return best
}
