package greedy

import (
	"testing"

	"cote/internal/catalog"
	"cote/internal/cost"
	"cote/internal/memo"
	"cote/internal/query"
)

func chainBlock(t *testing.T, n int) *query.Block {
	t.Helper()
	cb := catalog.NewBuilder("g")
	for i := 0; i < n; i++ {
		cb.Table(name(i), float64(1000*(i+1))).Column("a", 100).Column("b", 100)
	}
	cat := cb.Build()
	qb := query.NewBuilder("g", cat)
	for i := 0; i < n; i++ {
		qb.AddTable(name(i), "")
	}
	for i := 0; i+1 < n; i++ {
		qb.JoinEq(name(i), "b", name(i+1), "a")
	}
	return qb.MustBuild()
}

func name(i int) string { return "t" + string(rune('a'+i)) }

func TestGreedyProducesCompletePlan(t *testing.T) {
	blk := chainBlock(t, 6)
	card := cost.NewEstimator(blk, cost.Full)
	res, err := Optimize(blk, card, cost.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Tables != blk.AllTables() {
		t.Fatalf("plan covers %v, want all tables", res.Plan.Tables)
	}
	if res.Cost <= 0 || res.Plan.Cost != res.Cost {
		t.Fatalf("cost = %v", res.Cost)
	}
	// Left-deep: right child of every join is a single table.
	for p := res.Plan; p.Right != nil; p = p.Left {
		if p.Right.Tables.Len() != 1 {
			t.Fatalf("not left-deep: inner %v", p.Right.Tables)
		}
	}
}

func TestGreedyPolynomialJoins(t *testing.T) {
	// Greedy considers O(n^2) candidate joins, not the DP's exponential
	// count: for a chain it costs at most 3 methods x n candidates per step.
	blk := chainBlock(t, 10)
	card := cost.NewEstimator(blk, cost.Full)
	res, err := Optimize(blk, card, cost.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinsConsidered > 3*10*10 {
		t.Fatalf("greedy considered %d joins — superquadratic?", res.JoinsConsidered)
	}
}

func TestGreedyHandlesCartesianRemainder(t *testing.T) {
	cb := catalog.NewBuilder("x")
	cb.Table("r", 100).Column("a", 10)
	cb.Table("s", 100).Column("a", 10)
	cat := cb.Build()
	qb := query.NewBuilder("x", cat)
	qb.AddTable("r", "")
	qb.AddTable("s", "")
	blk := qb.MustBuild()
	card := cost.NewEstimator(blk, cost.Full)
	res, err := Optimize(blk, card, cost.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Tables != blk.AllTables() {
		t.Fatal("disconnected query not completed via product")
	}
}

func TestGreedyRespectsOuterJoin(t *testing.T) {
	cb := catalog.NewBuilder("oj")
	cb.Table("a", 10).Column("x", 10) // smallest: tempting seed
	cb.Table("b", 10_000).Column("x", 10).Column("y", 10)
	cb.Table("c", 5).Column("y", 10)
	cat := cb.Build()
	qb := query.NewBuilder("oj", cat)
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.AddTable("c", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.JoinEq("b", "y", "c", "y")
	qb.LeftOuter(2, 1) // c null-producing, needs b first
	blk := qb.MustBuild()
	card := cost.NewEstimator(blk, cost.Full)
	res, err := Optimize(blk, card, cost.Serial)
	if err != nil {
		t.Fatal(err)
	}
	// c (the smallest table) must not be the seed nor joined before b: walk
	// the left spine and record the order tables appear.
	var order []int
	var walk func(p *memo.Plan)
	walk = func(p *memo.Plan) {
		if p == nil {
			return
		}
		walk(p.Left)
		if p.Right != nil {
			order = append(order, p.Right.Tables.Min())
		} else if p.Left == nil {
			order = append([]int{p.Tables.Min()}, order...)
		}
	}
	walk(res.Plan)
	posB, posC := -1, -1
	for i, t2 := range order {
		switch t2 {
		case 1:
			posB = i
		case 2:
			posC = i
		}
	}
	if posC >= 0 && posB >= 0 && posC < posB {
		t.Fatalf("null-producing table joined before its preserving side: %v", order)
	}
	if order[0] == 2 {
		t.Fatal("null-producing table used as seed")
	}
}

func TestGreedyEmptyBlock(t *testing.T) {
	blk := &query.Block{Name: "empty"}
	if _, err := Optimize(blk, nil, cost.Serial); err == nil {
		t.Fatal("empty block accepted")
	}
}
