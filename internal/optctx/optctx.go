// Package optctx is the per-optimization execution context threaded through
// every layer of the stack: the optimizer facade, the join enumerator, the
// plan generator and the estimation service all share one *Ctx per
// compilation. It carries five concerns:
//
//   - cancellation: a context.Context whose expiry the enumerator observes
//     at size-class (serial) and task (parallel) granularity, so a deadline
//     actually stops work instead of letting it run to completion in the
//     background;
//   - a plan budget: an upper bound on generated join plans, the "predict,
//     then bound" loop of the meta-optimizer — when the COTE's prediction
//     turns out wrong, the overrun aborts the compile with
//     ErrBudgetExceeded instead of blowing the caller's latency goal;
//   - live progress: the generated-plan counter ticked by the plan
//     generator over the COTE-predicted total, the paper's Section 6
//     progress-estimation application turned into a live meter;
//   - per-stage observability: parse / enumerate / generate / prune counts
//     and timings, accumulated per compilation and aggregated by the
//     service's /metrics endpoint;
//   - resource accounting: an embedded resource.Accountant every allocation
//     site on the optimize/estimate paths charges, with an optional byte
//     budget whose overrun aborts the compile with ErrMemBudgetExceeded,
//     mirroring the plan budget on the memory axis (paper Section 6.2).
//
// A nil *Ctx is valid everywhere and means "no deadline, no budget, no
// observers": the hot paths pay a single nil check, so the serial
// non-cancellable fast path is unchanged.
package optctx

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"cote/internal/faultinject"
	"cote/internal/resource"
)

// ErrBudgetExceeded reports that a compilation generated more plans than
// its budget allowed. Callers distinguish it from context errors to drive
// the abort-and-downgrade loop (re-optimize at the next-cheaper level).
var ErrBudgetExceeded = errors.New("optctx: generated-plan budget exceeded")

// ErrMemBudgetExceeded reports that a compilation's measured memory usage
// crossed its byte budget. Like ErrBudgetExceeded it drives the
// abort-and-downgrade ladder, but on the memory axis.
var ErrMemBudgetExceeded = errors.New("optctx: memory budget exceeded")

// Stage identifies one phase of a compilation for observability.
type Stage int

// Compilation stages.
const (
	// StageParse covers SQL parsing and normalization.
	StageParse Stage = iota
	// StageEnumerate covers join enumeration (the DP scan).
	StageEnumerate
	// StageGenerate covers plan generation and costing — the bulk of
	// compilation time (Figure 2).
	StageGenerate
	// StagePrune covers plan saving and property-aware pruning in the MEMO.
	StagePrune
	NumStages
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageParse:
		return "parse"
	case StageEnumerate:
		return "enumerate"
	case StageGenerate:
		return "generate"
	case StagePrune:
		return "prune"
	}
	return "unknown"
}

// StageStats is a snapshot of one stage's accumulated work.
type StageStats struct {
	// Count is the number of units the stage processed (statements parsed,
	// joins enumerated, plans generated, plans saved/pruned).
	Count int64
	// Time is the accumulated wall time attributed to the stage.
	Time time.Duration
}

// Hooks observe a compilation as it runs. Both callbacks may be invoked
// from worker goroutines concurrently with each other; implementations must
// be safe for concurrent use and should return quickly.
type Hooks struct {
	// OnProgress fires after progress ticks (batched, roughly once per
	// tick batch of generated plans) with the running totals.
	OnProgress func(generated, predicted int64)
	// OnStage fires when a stage's statistics are recorded.
	OnStage func(stage Stage, count int64, elapsed time.Duration)
}

// Ctx is one optimization's execution context. The zero value is not
// useful; construct with New. All methods are safe for concurrent use and
// are nil-receiver-safe, so layers can thread an optional *Ctx without
// branching at every call site.
type Ctx struct {
	ctx   context.Context
	done  <-chan struct{}
	hooks Hooks

	generated  atomic.Int64 // plans generated so far
	predicted  atomic.Int64 // COTE-predicted total (0 = unknown)
	budget     atomic.Int64 // abort bound on generated (0 = unlimited)
	overBudget atomic.Bool

	// res is the run's resource accountant, embedded by value so attaching
	// accounting to a compilation costs no extra allocation. memBudget arms
	// the cooperative memory abort, mirroring the generated-plan budget.
	res       resource.Accountant
	memBudget atomic.Int64 // abort bound on measured bytes (0 = unlimited)
	overMem   atomic.Bool

	stageCount [NumStages]atomic.Int64
	stageNS    [NumStages]atomic.Int64
}

// New returns an execution context observing ctx. A nil ctx is treated as
// context.Background().
func New(ctx context.Context) *Ctx {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Ctx{ctx: ctx, done: ctx.Done()}
}

// WithHooks installs observability hooks and returns c. Install hooks
// before the optimization starts; the field is not synchronized.
func (c *Ctx) WithHooks(h Hooks) *Ctx {
	c.hooks = h
	return c
}

// Context returns the underlying context (context.Background() for a nil
// receiver).
func (c *Ctx) Context() context.Context {
	if c == nil {
		return context.Background()
	}
	return c.ctx
}

// Cancelled reports whether work should stop: the context expired, the
// plan budget was exceeded, or measured memory crossed its budget. It is
// the cheap poll the enumerator issues at its cancellation points; a nil
// receiver is never cancelled.
func (c *Ctx) Cancelled() bool {
	if c == nil {
		return false
	}
	if c.overBudget.Load() {
		return true
	}
	if c.memExceeded() {
		return true
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// memExceeded polls measured usage against the memory budget, latching
// overMem so Err stays ErrMemBudgetExceeded even if usage later drops. The
// fault-injection point simulates budget exhaustion on the same latch, so a
// chaos plan exercises the abort-and-downgrade machinery without needing a
// query that really exhausts memory; disabled injection costs the
// enumerator's polls one atomic load.
func (c *Ctx) memExceeded() bool {
	if c.overMem.Load() {
		return true
	}
	if faultinject.Check(faultinject.PointMemBudget) != nil {
		c.overMem.Store(true)
		return true
	}
	if b := c.memBudget.Load(); b > 0 && c.res.Used() > b {
		c.overMem.Store(true)
		return true
	}
	return false
}

// Err returns why the compilation stopped: ErrBudgetExceeded,
// ErrMemBudgetExceeded, the context's error, or nil when still live
// (always nil for a nil receiver).
func (c *Ctx) Err() error {
	if c == nil {
		return nil
	}
	if c.overBudget.Load() {
		return ErrBudgetExceeded
	}
	if c.overMem.Load() {
		return ErrMemBudgetExceeded
	}
	return c.ctx.Err()
}

// Resources returns the run's resource accountant (nil for a nil receiver,
// so charge sites inherit the usual nil-safe no-op behavior).
func (c *Ctx) Resources() *resource.Accountant {
	if c == nil {
		return nil
	}
	return &c.res
}

// SetMemBudget arms the memory abort: once the accountant's measured usage
// exceeds n bytes, Cancelled reports true and Err returns
// ErrMemBudgetExceeded. Values below 1 disarm the budget.
func (c *Ctx) SetMemBudget(n int64) {
	if c == nil {
		return
	}
	if n < 1 {
		n = 0
	}
	c.memBudget.Store(n)
}

// SetPredictedPlans records the COTE-predicted total generated-plan count,
// the denominator of the progress meter.
func (c *Ctx) SetPredictedPlans(n int64) {
	if c == nil {
		return
	}
	c.predicted.Store(n)
}

// SetPlanBudget arms the budget abort: once more than n plans have been
// generated, Cancelled reports true and Err returns ErrBudgetExceeded.
// Values below 1 disarm the budget.
func (c *Ctx) SetPlanBudget(n int64) {
	if c == nil {
		return
	}
	if n < 1 {
		n = 0
	}
	c.budget.Store(n)
}

// TickGenerated adds n generated plans to the progress counter, fires the
// progress hook, and trips the budget when the new total exceeds it. The
// plan generator calls it in batches, so per-plan cost stays at a local
// increment.
func (c *Ctx) TickGenerated(n int64) {
	if c == nil || n == 0 {
		return
	}
	total := c.generated.Add(n)
	if b := c.budget.Load(); b > 0 && total > b {
		c.overBudget.Store(true)
	}
	if c.hooks.OnProgress != nil {
		c.hooks.OnProgress(total, c.predicted.Load())
	}
}

// Progress returns the plans generated so far and the predicted total
// (0 when no prediction was installed).
func (c *Ctx) Progress() (generated, predicted int64) {
	if c == nil {
		return 0, 0
	}
	return c.generated.Load(), c.predicted.Load()
}

// Fraction returns generated/predicted clamped to [0, 1], or -1 when no
// prediction is available.
func (c *Ctx) Fraction() float64 {
	g, p := c.Progress()
	if p <= 0 {
		return -1
	}
	f := float64(g) / float64(p)
	if f > 1 {
		f = 1
	}
	return f
}

// RecordStage accumulates one stage's work and fires the stage hook.
func (c *Ctx) RecordStage(s Stage, count int64, elapsed time.Duration) {
	if c == nil || s < 0 || s >= NumStages {
		return
	}
	c.stageCount[s].Add(count)
	c.stageNS[s].Add(int64(elapsed))
	if c.hooks.OnStage != nil {
		c.hooks.OnStage(s, count, elapsed)
	}
}

// StageSnapshot returns the per-stage accumulated counts and timings.
func (c *Ctx) StageSnapshot() [NumStages]StageStats {
	var out [NumStages]StageStats
	if c == nil {
		return out
	}
	for s := range out {
		out[s] = StageStats{
			Count: c.stageCount[s].Load(),
			Time:  time.Duration(c.stageNS[s].Load()),
		}
	}
	return out
}
