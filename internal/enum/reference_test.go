package enum

import (
	"math/rand"
	"testing"

	"cote/internal/bitset"
	"cote/internal/catalog"
	"cote/internal/cost"
	"cote/internal/memo"
	"cote/internal/query"
)

// referenceJoinPairs counts, by brute force over all subset pairs, the
// unordered joins a full bushy enumeration without Cartesian products must
// consider: disjoint non-empty connected sets linked by a predicate whose
// union is connected. It is exponential and only usable for small n — which
// is exactly what makes it a trustworthy oracle for the DP enumerator.
func referenceJoinPairs(blk *query.Block) int {
	n := blk.NumTables()
	full := 1 << n
	connected := make([]bool, full)
	for s := 1; s < full; s++ {
		connected[s] = blk.IsConnected(bitset.Set(s))
	}
	pairs := 0
	for s := 1; s < full; s++ {
		if !connected[s] {
			continue
		}
		for l := s + 1; l < full; l++ {
			if !connected[l] || bitset.Set(s).Overlaps(bitset.Set(l)) {
				continue
			}
			if !connected[s|l] {
				continue
			}
			if !blk.Connects(bitset.Set(s), bitset.Set(l)) {
				continue
			}
			pairs++
		}
	}
	return pairs
}

// TestEnumeratorAgainstBruteForce cross-checks the DP enumerator's join
// count against the exponential oracle on random graphs.
func TestEnumeratorAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(314159))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(4) // 3..6 tables keeps the oracle cheap
		cb := catalog.NewBuilder("bf")
		for i := 0; i < n; i++ {
			cb.Table(tname(i), 1000).Column("a", 100).Column("b", 100)
		}
		cat := cb.Build()
		qb := query.NewBuilder("bf", cat)
		for i := 0; i < n; i++ {
			qb.AddTable(tname(i), "")
		}
		// Random spanning tree plus random extra edges. Distinct column
		// pairs avoid transitive-closure edges that would change the graph
		// after the oracle snapshot... the closure runs before both counts,
		// so cycles via shared columns are fine too.
		for i := 1; i < n; i++ {
			qb.JoinEq(tname(rng.Intn(i)), "a", tname(i), "b")
		}
		for e := rng.Intn(3); e > 0; e-- {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				qb.JoinEq(tname(a), "a", tname(b), "b")
			}
		}
		blk, err := qb.Build()
		if err != nil {
			t.Fatal(err)
		}

		want := referenceJoinPairs(blk)
		mem := memo.New(n)
		card := cost.NewEstimator(blk, cost.Simple)
		st, err := New(blk, mem, card, Options{Cartesian: CartesianNever}).Run(Hooks{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if st.Pairs != want {
			t.Fatalf("trial %d (n=%d, %d preds): enumerator found %d pairs, oracle %d",
				trial, n, len(blk.JoinPreds), st.Pairs, want)
		}
	}
}

// TestEnumeratorScalesToWideChains drives a 30-table chain through the
// left-deep level — beyond anything the paper measured — exercising the
// bitset headroom and the size-class bookkeeping.
func TestEnumeratorScalesToWideChains(t *testing.T) {
	const n = 30
	cb := catalog.NewBuilder("wide")
	for i := 0; i < n; i++ {
		cb.Table(tname(i), 1000).Column("a", 100).Column("b", 100)
	}
	cat := cb.Build()
	qb := query.NewBuilder("wide", cat)
	for i := 0; i < n; i++ {
		qb.AddTable(tname(i), "")
	}
	for i := 0; i+1 < n; i++ {
		qb.JoinEq(tname(i), "b", tname(i+1), "a")
	}
	blk, err := qb.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := memo.New(n)
	card := cost.NewEstimator(blk, cost.Simple)
	st, err := New(blk, mem, card, Options{Shape: LeftDeep, Cartesian: CartesianNever}).Run(Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// A chain has n(n+1)/2 connected intervals.
	if want := n * (n + 1) / 2; mem.NumEntries() != want {
		t.Fatalf("entries = %d, want %d", mem.NumEntries(), want)
	}
	if st.Joins == 0 || mem.Entry(blk.AllTables()) == nil {
		t.Fatal("wide chain did not complete")
	}
}
