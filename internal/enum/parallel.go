// Parallel dynamic-programming driver.
//
// The DP round has a natural dependency structure: generating plans for a
// size-k MEMO entry reads only entries of size < k, which are final once
// the previous rounds finished. Within one size class, therefore, every
// enumerated join can be *generated* (costed) independently — the ~75% of
// compile time the paper's Figure 2 attributes to join-method cost
// estimation — while *committing* plans into the MEMO (pruning, pilot
// bound) stays order-sensitive. The driver exploits exactly that split:
//
//  1. scan the size class serially (cheap bitset work), materializing
//     result entries and a task list in the canonical DP order;
//  2. fan the tasks out to a bounded worker set, each generating plans
//     into worker-local buffers;
//  3. barrier, then replay every task's buffered plans in the canonical
//     order of step 1, committing them into the MEMO.
//
// Because commit order equals the serial enumeration order and generation
// reads only immutable state, a parallel run produces bit-identical plans,
// costs, counters and statistics to the serial enumerator — enforced by
// TestParallelOptimizeMatchesSerial. The barrier must sit at the size-class
// boundary: joins of size k+1 read the *pruned* plan lists of size k, which
// exist only after every size-k commit (and the Complete enforcer pass) ran.
package enum

import (
	"sync"
	"sync/atomic"

	"cote/internal/memo"
)

// GenerateFunc generates plans for one enumerated ordered join into
// worker-local buffers. It runs on exactly one worker goroutine at a time,
// concurrently with other workers' GenerateFuncs, and must not touch shared
// mutable state.
type GenerateFunc func(task int, outer, inner, result *memo.Entry)

// CommitFunc replays the plans a worker buffered for one task into the
// MEMO. Commits are issued from the driver goroutine only, in globally
// increasing task order, after all generation for the size class finished.
type CommitFunc func(task int)

// ParallelHooks drive the parallel DP round. Init and Complete have the
// same contract as Hooks (both run on the driver goroutine); NewWorker is
// called once per worker up front and returns that worker's generate/commit
// pair.
type ParallelHooks struct {
	Init      func(e *memo.Entry)
	Complete  func(e *memo.Entry)
	NewWorker func() (GenerateFunc, CommitFunc)
}

// serialThreshold is the task count below which a size class runs inline on
// the driver: forking goroutines for a handful of joins costs more than it
// saves. The generate/commit split is used either way, so the result is
// identical.
const serialThreshold = 8

type joinTask struct {
	outer, inner, result *memo.Entry
}

// RunParallel enumerates like Run, fanning each size class's join
// generation out to at most workers goroutines. The Stats returned and
// every MEMO mutation are identical to Run driving the equivalent serial
// hooks.
func (en *Enumerator) RunParallel(hooks ParallelHooks, workers int) (Stats, error) {
	if workers < 1 {
		workers = 1
	}
	var st Stats
	n := en.blk.NumTables()
	serial := Hooks{Init: hooks.Init, Complete: hooks.Complete}

	gens := make([]GenerateFunc, workers)
	commits := make([]CommitFunc, workers)
	for w := range gens {
		gens[w], commits[w] = hooks.NewWorker()
	}

	en.runBase(&st, serial)

	exec := en.opts.Exec
	var tasks []joinTask // reused across size classes
	var owner []int32    // task index -> worker that generated it
	for k := 2; k <= n; k++ {
		tasks = tasks[:0]
		en.scanSizeClass(k, &st, serial, func(outer, inner, result *memo.Entry) {
			tasks = append(tasks, joinTask{outer, inner, result})
		})
		if en.stop || exec.Cancelled() {
			// The scan stopped early: no generation happened for this size
			// class, so the MEMO holds exactly the completed prefix of size
			// classes — bit-identical to a serial run cancelled at the same
			// boundary.
			return st, exec.Err()
		}

		switch {
		case len(tasks) == 0:
		case len(tasks) < serialThreshold || workers == 1:
			for t := range tasks {
				if t&joinPollMask == 0 && exec.Cancelled() {
					return st, exec.Err()
				}
				gens[0](t, tasks[t].outer, tasks[t].inner, tasks[t].result)
				commits[0](t)
			}
		default:
			if cap(owner) < len(tasks) {
				owner = make([]int32, len(tasks))
			}
			owner = owner[:len(tasks)]
			var next atomic.Int64
			var wg sync.WaitGroup
			active := workers
			if active > len(tasks) {
				active = len(tasks)
			}
			for w := 0; w < active; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					gen := gens[w]
					for {
						// Poll before claiming each task so a deadline stops
						// every worker within one task's worth of generation.
						if exec.Cancelled() {
							return
						}
						t := int(next.Add(1)) - 1
						if t >= len(tasks) {
							return
						}
						owner[t] = int32(w)
						tk := tasks[t]
						gen(t, tk.outer, tk.inner, tk.result)
					}
				}(w)
			}
			wg.Wait()
			if exec.Cancelled() {
				// Workers stopped mid-class; buffered plans are discarded
				// rather than partially committed, so everything already in
				// the MEMO (the completed size classes) matches the serial
				// enumeration bit for bit.
				return st, exec.Err()
			}
			// Replay in canonical task order; each task's plans were
			// buffered by exactly one worker.
			for t := range tasks {
				commits[owner[t]](t)
			}
		}

		en.completeSize(k, serial)
	}
	return st, en.checkRoot()
}
