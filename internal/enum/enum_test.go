package enum

import (
	"testing"

	"cote/internal/bitset"
	"cote/internal/catalog"
	"cote/internal/cost"
	"cote/internal/memo"
	"cote/internal/query"
)

// linearQuery builds a chain t0-t1-...-t{n-1}.
func linearQuery(tb testing.TB, n int) *query.Block {
	tb.Helper()
	cb := catalog.NewBuilder("lin")
	for i := 0; i < n; i++ {
		cb.Table(tname(i), 1000).Column("a", 100).Column("b", 100)
	}
	cat := cb.Build()
	qb := query.NewBuilder("lin", cat)
	for i := 0; i < n; i++ {
		qb.AddTable(tname(i), "")
	}
	for i := 0; i+1 < n; i++ {
		qb.JoinEq(tname(i), "b", tname(i+1), "a")
	}
	blk, err := qb.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return blk
}

// starQuery builds a star with t0 as the center.
func starQuery(tb testing.TB, n int) *query.Block {
	tb.Helper()
	cb := catalog.NewBuilder("star")
	cb.Table(tname(0), 10_000)
	for i := 1; i < n; i++ {
		cb.Table(tname(i), 1000).Column("a", 100)
	}
	// Center needs one join column per satellite.
	cat := func() *catalog.Catalog {
		b := catalog.NewBuilder("star")
		tb0 := b.Table(tname(0), 10_000)
		for i := 1; i < n; i++ {
			tb0.Column(colname(i), 100)
		}
		for i := 1; i < n; i++ {
			b.Table(tname(i), 1000).Column("a", 100)
		}
		return b.Build()
	}()
	qb := query.NewBuilder("star", cat)
	for i := 0; i < n; i++ {
		qb.AddTable(tname(i), "")
	}
	for i := 1; i < n; i++ {
		qb.JoinEq(tname(0), colname(i), tname(i), "a")
	}
	blk, err := qb.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return blk
}

func tname(i int) string   { return string(rune('a'+i)) + "t" }
func colname(i int) string { return "c" + string(rune('0'+i)) }

// run enumerates blk with the options and returns stats and the memo.
func run(tb testing.TB, blk *query.Block, opts Options) (Stats, *memo.Memo) {
	tb.Helper()
	mem := memo.New(blk.NumTables())
	card := cost.NewEstimator(blk, cost.Simple)
	st, err := New(blk, mem, card, opts).Run(Hooks{})
	if err != nil {
		tb.Fatal(err)
	}
	return st, mem
}

// ono returns the closed-form join counts from Ono & Lohman for linear and
// star queries under full bushy enumeration without Cartesian products.
func onoLinear(n int) int { return (n*n*n - n) / 6 }
func onoStar(n int) int {
	if n < 2 {
		return 0
	}
	return (n - 1) << (n - 2)
}

func TestLinearJoinCountsMatchClosedForm(t *testing.T) {
	for n := 2; n <= 10; n++ {
		blk := linearQuery(t, n)
		st, _ := run(t, blk, Options{Cartesian: CartesianNever})
		if st.Pairs != onoLinear(n) {
			t.Errorf("linear n=%d: %d pairs, closed form %d", n, st.Pairs, onoLinear(n))
		}
		// Every pair is fully reorderable: ordered joins = 2x pairs.
		if st.Joins != 2*st.Pairs {
			t.Errorf("linear n=%d: %d joins, want %d", n, st.Joins, 2*st.Pairs)
		}
	}
}

func TestStarJoinCountsMatchClosedForm(t *testing.T) {
	for n := 2; n <= 10; n++ {
		blk := starQuery(t, n)
		st, _ := run(t, blk, Options{Cartesian: CartesianNever})
		if st.Pairs != onoStar(n) {
			t.Errorf("star n=%d: %d pairs, closed form %d", n, st.Pairs, onoStar(n))
		}
	}
}

func TestLinearMemoEntries(t *testing.T) {
	// A chain of n has n(n+1)/2 connected intervals = MEMO entries.
	n := 8
	blk := linearQuery(t, n)
	st, mem := run(t, blk, Options{Cartesian: CartesianNever})
	want := n * (n + 1) / 2
	if mem.NumEntries() != want || st.Entries != want {
		t.Fatalf("entries = %d (stats %d), want %d", mem.NumEntries(), st.Entries, want)
	}
	// Final entry exists and covers all tables.
	if mem.Entry(blk.AllTables()) == nil {
		t.Fatal("no entry for the full table set")
	}
}

func TestLeftDeepReducesSearch(t *testing.T) {
	blk := linearQuery(t, 8)
	bushy, _ := run(t, blk, Options{Cartesian: CartesianNever})
	ld, _ := run(t, blk, Options{Shape: LeftDeep, Cartesian: CartesianNever})
	zz, _ := run(t, blk, Options{Shape: ZigZag, Cartesian: CartesianNever})
	if !(ld.Joins < zz.Joins && zz.Joins < bushy.Joins) {
		t.Fatalf("join counts not ordered: leftdeep %d, zigzag %d, bushy %d",
			ld.Joins, zz.Joins, bushy.Joins)
	}
	// Left-deep joins on a chain: each join has a single-table inner.
	if ld.Joins == 0 {
		t.Fatal("left-deep enumeration found no joins")
	}
}

func TestCompositeInnerLimit(t *testing.T) {
	blk := linearQuery(t, 8)
	full, _ := run(t, blk, Options{Cartesian: CartesianNever})
	lim2, _ := run(t, blk, Options{CompositeInnerLimit: 2, Cartesian: CartesianNever})
	lim1, _ := run(t, blk, Options{CompositeInnerLimit: 1, Cartesian: CartesianNever})
	if !(lim1.Joins < lim2.Joins && lim2.Joins < full.Joins) {
		t.Fatalf("composite inner limit not monotone: %d, %d, %d", lim1.Joins, lim2.Joins, full.Joins)
	}
	// Limit 1 equals left-deep ordered-join count on this query.
	ld, _ := run(t, blk, Options{Shape: LeftDeep, Cartesian: CartesianNever})
	if lim1.Joins != ld.Joins {
		t.Fatalf("inner limit 1 (%d joins) != left-deep (%d joins)", lim1.Joins, ld.Joins)
	}
}

func TestDisconnectedFailsWithoutCartesian(t *testing.T) {
	cb := catalog.NewBuilder("d")
	cb.Table("r", 1000).Column("a", 10)
	cb.Table("s", 1000).Column("a", 10)
	cat := cb.Build()
	qb := query.NewBuilder("d", cat)
	qb.AddTable("r", "")
	qb.AddTable("s", "")
	blk := qb.MustBuild()

	mem := memo.New(2)
	card := cost.NewEstimator(blk, cost.Simple)
	if _, err := New(blk, mem, card, Options{Cartesian: CartesianNever}).Run(Hooks{}); err == nil {
		t.Fatal("disconnected query enumerated without Cartesian products")
	}
	// CartesianAlways joins it.
	mem = memo.New(2)
	st, err := New(blk, mem, card, Options{Cartesian: CartesianAlways}).Run(Hooks{})
	if err != nil || st.Pairs != 1 {
		t.Fatalf("CartesianAlways: pairs=%d err=%v", st.Pairs, err)
	}
}

func TestCartesianCardOneHeuristic(t *testing.T) {
	// r and s are disconnected; r filtered to ~1 row allows the product.
	build := func(sel float64) *query.Block {
		cb := catalog.NewBuilder("d")
		cb.Table("r", 1000).Column("a", 1000)
		cb.Table("s", 1000).Column("a", 10)
		cb.Table("u", 1000).Column("a", 10)
		cat := cb.Build()
		qb := query.NewBuilder("d", cat)
		qb.AddTable("r", "")
		qb.AddTable("s", "")
		qb.AddTable("u", "")
		qb.JoinEq("s", "a", "u", "a")
		qb.Filter(qb.Col("r", "a"), query.Eq, sel)
		return qb.MustBuild()
	}

	// Selective filter: card(r) = 1 -> product allowed, query compiles.
	blk := build(0.001)
	st, _ := run(t, blk, Options{Cartesian: CartesianCardOne})
	if st.Pairs == 0 {
		t.Fatal("card-one heuristic did not enable the product")
	}

	// Loose filter: card(r) = 500 -> no product, query cannot complete.
	blk = build(0.5)
	mem := memo.New(3)
	card := cost.NewEstimator(blk, cost.Simple)
	if _, err := New(blk, mem, card, Options{Cartesian: CartesianCardOne}).Run(Hooks{}); err == nil {
		t.Fatal("card-one heuristic allowed a product between large inputs")
	}
}

func TestCartesianHeuristicModeSensitivity(t *testing.T) {
	// The same query enumerates different join sets under the full and the
	// simple cardinality models — the error source the paper documents for
	// parallel HSJN estimates. pk.id has a unique index but understated NDV
	// statistics: the key-aware full model estimates card{pk,fk} = 10*100/
	// 1000 = 1, under the Cartesian threshold, while the simple model gets
	// 10*100/100 = 10 and never allows the product with y.
	cb := catalog.NewBuilder("ms")
	cb.Table("pk", 1_000).Column("id", 100).Column("q", 100).Column("xa", 50).
		Index("pk_pk", true, "id")
	cb.Table("fk", 1_000).Column("ref", 100).Column("w", 10)
	cb.Table("x", 500).Column("a", 10).Column("pa", 50)
	cb.Table("y", 500).Column("a", 10)
	cat := cb.Build()
	qb := query.NewBuilder("ms", cat)
	qb.AddTable("pk", "")
	qb.AddTable("fk", "")
	qb.AddTable("x", "")
	qb.AddTable("y", "")
	qb.JoinEq("fk", "ref", "pk", "id")
	qb.JoinEq("pk", "xa", "x", "pa") // keeps the graph connected end to end
	qb.JoinEq("x", "a", "y", "a")
	qb.FilterEq("pk", "q") // fc(pk) = 10 in both modes
	qb.FilterEq("fk", "w") // fc(fk) = 100 in both modes
	blk := qb.MustBuild()

	joins := func(mode cost.Mode) int {
		mem := memo.New(blk.NumTables())
		card := cost.NewEstimator(blk, mode)
		st, err := New(blk, mem, card, Options{Cartesian: CartesianCardOne}).Run(Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		return st.Joins
	}
	full, simple := joins(cost.Full), joins(cost.Simple)
	if full <= simple {
		t.Fatalf("full mode (%d joins) should enumerate more than simple mode (%d) via the card-one product", full, simple)
	}
}

func TestOuterJoinRestrictsEnumeration(t *testing.T) {
	// a JOIN b, b LEFT OUTER JOIN c: c may not pair with a alone and {c}
	// cannot be an outer.
	cb := catalog.NewBuilder("oj")
	cb.Table("a", 1000).Column("x", 10)
	cb.Table("b", 1000).Column("x", 10).Column("y", 10)
	cb.Table("c", 1000).Column("y", 10).Column("x", 10)
	cat := cb.Build()
	qb := query.NewBuilder("oj", cat)
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.AddTable("c", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.JoinEq("b", "y", "c", "y")
	qb.JoinEq("a", "x", "c", "x") // would connect a-c directly
	qb.LeftOuter(2, 1)            // c null-producing, ON references b
	blk := qb.MustBuild()

	var sawInvalid bool
	var cOuter bool
	mem := memo.New(3)
	card := cost.NewEstimator(blk, cost.Simple)
	_, err := New(blk, mem, card, Options{Cartesian: CartesianNever}).Run(Hooks{
		Join: func(outer, inner, result *memo.Entry) {
			if result.Tables == bitset.Of(0, 2) {
				sawInvalid = true
			}
			if outer.Tables == bitset.Of(2) {
				cOuter = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawInvalid {
		t.Fatal("enumerated {a,c}, which splits the outer join")
	}
	if cOuter {
		t.Fatal("null-producing table served as an outer")
	}
	if mem.Entry(bitset.Of(0, 2)) != nil {
		t.Fatal("MEMO entry created for invalid set {a,c}")
	}
	// The full join still completes.
	if mem.Entry(blk.AllTables()) == nil {
		t.Fatal("query did not complete")
	}
}

func TestHooksInvocation(t *testing.T) {
	blk := linearQuery(t, 4)
	mem := memo.New(4)
	card := cost.NewEstimator(blk, cost.Simple)
	inits, joins, completes := 0, 0, 0
	var lastResult bitset.Set
	st, err := New(blk, mem, card, Options{Cartesian: CartesianNever}).Run(Hooks{
		Init: func(e *memo.Entry) {
			inits++
			if e.Equiv == nil || e.Card <= 0 {
				t.Error("Init called before logical properties were cached")
			}
		},
		Complete: func(e *memo.Entry) { completes++ },
		Join: func(outer, inner, result *memo.Entry) {
			joins++
			if outer.Tables.Overlaps(inner.Tables) {
				t.Error("overlapping join inputs")
			}
			if outer.Tables.Union(inner.Tables) != result.Tables {
				t.Error("result tables != union of inputs")
			}
			lastResult = result.Tables
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inits != mem.NumEntries() {
		t.Fatalf("Init called %d times for %d entries", inits, mem.NumEntries())
	}
	if completes != mem.NumEntries() {
		t.Fatalf("Complete called %d times for %d entries", completes, mem.NumEntries())
	}
	if joins != st.Joins {
		t.Fatalf("Join called %d times, stats say %d", joins, st.Joins)
	}
	if lastResult != blk.AllTables() {
		t.Fatalf("last join result = %v, want full set", lastResult)
	}
}

func TestDeterministicEnumeration(t *testing.T) {
	blk := starQuery(t, 7)
	var seq1, seq2 []bitset.Set
	collect := func(dst *[]bitset.Set) Hooks {
		return Hooks{Join: func(o, i, r *memo.Entry) {
			*dst = append(*dst, o.Tables, i.Tables)
		}}
	}
	mem := memo.New(7)
	card := cost.NewEstimator(blk, cost.Simple)
	if _, err := New(blk, mem, card, Options{}).Run(collect(&seq1)); err != nil {
		t.Fatal(err)
	}
	mem = memo.New(7)
	if _, err := New(blk, mem, card, Options{}).Run(collect(&seq2)); err != nil {
		t.Fatal(err)
	}
	if len(seq1) != len(seq2) {
		t.Fatalf("lengths differ: %d vs %d", len(seq1), len(seq2))
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("sequence diverges at %d: %v vs %v", i, seq1[i], seq2[i])
		}
	}
}

func TestShapeAndPolicyStrings(t *testing.T) {
	for _, s := range []Shape{Bushy, ZigZag, LeftDeep} {
		if s.String() == "" {
			t.Fatal("empty shape name")
		}
	}
}

func BenchmarkEnumerateLinear10(b *testing.B) {
	blk := linearQuery(b, 10)
	card := cost.NewEstimator(blk, cost.Simple)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem := memo.New(10)
		if _, err := New(blk, mem, card, Options{Cartesian: CartesianNever}).Run(Hooks{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateStar10(b *testing.B) {
	blk := starQuery(b, 10)
	card := cost.NewEstimator(blk, cost.Simple)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem := memo.New(10)
		if _, err := New(blk, mem, card, Options{Cartesian: CartesianNever}).Run(Hooks{}); err != nil {
			b.Fatal(err)
		}
	}
}
