// Package enum implements the bottom-up dynamic-programming join enumerator
// of the reproduced optimizer, in the System R tradition the paper assumes.
//
// The enumerator is deliberately decoupled from plan generation through a
// thin callback interface (Hooks), exactly the extensible-optimizer split
// the paper leans on: real optimization installs plan-generating hooks,
// while the compilation-time estimator installs the cheap initialize /
// accumulate_plans hooks of Table 3 and bypasses plan generation entirely.
// Both modes therefore enumerate the same joins — up to the
// cardinality-sensitive Cartesian-product heuristic, whose dependence on the
// cardinality model is a documented error source of the paper.
//
// Enumeration is performed on a logical basis: two non-overlapping table
// sets join when at least one predicate links them (or a Cartesian product
// is permitted). Each eligible (outer, inner) orientation is emitted as one
// enumerated join, so a fully reorderable pair yields two joins — which is
// why the paper observes hash-join plans to be exactly twice the number of
// (unordered) joins.
package enum

import (
	"fmt"

	"cote/internal/bitset"
	"cote/internal/cost"
	"cote/internal/memo"
	"cote/internal/optctx"
	"cote/internal/query"
)

// Shape restricts the join-tree shapes the enumerator explores — one of the
// "knobs" that create intermediate optimization levels.
type Shape int

// Join-tree shapes.
const (
	// Bushy explores all shapes (the paper's "high" level).
	Bushy Shape = iota
	// ZigZag requires one input of every join to be a single table, in
	// either role.
	ZigZag
	// LeftDeep requires the inner of every join to be a single table.
	LeftDeep
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case Bushy:
		return "bushy"
	case ZigZag:
		return "zigzag"
	case LeftDeep:
		return "leftdeep"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// CartesianPolicy governs Cartesian products.
type CartesianPolicy int

// Cartesian-product policies.
const (
	// CartesianCardOne allows a product when one input's estimated
	// cardinality is (near) one — DB2's heuristic, reproduced including its
	// sensitivity to the cardinality model.
	CartesianCardOne CartesianPolicy = iota
	// CartesianNever forbids products entirely.
	CartesianNever
	// CartesianAlways permits any product (the full search space).
	CartesianAlways
)

// cartesianCardThreshold is the "cardinality of one" cutoff; estimates are
// floats so exact equality would be meaningless.
const cartesianCardThreshold = 1.5

// Options are the enumerator knobs. The zero value is the full bushy search
// with DB2's Cartesian heuristic and no composite-inner limit.
type Options struct {
	Shape Shape
	// CompositeInnerLimit caps the table count of a composite inner
	// (0 = unlimited): the paper's experiments run DB2 "with certain limits
	// on the composite inner size of a join".
	CompositeInnerLimit int
	Cartesian           CartesianPolicy
	// Exec, when non-nil, is polled for cancellation at size-class and
	// bounded-stride granularity: a deadline or budget abort stops the
	// enumeration promptly instead of letting it run to completion. A nil
	// Exec is never cancelled and adds no per-join work.
	Exec *optctx.Ctx
}

// Hooks are the callbacks the enumerator drives. Init is invoked once per
// MEMO entry right after its logical properties are cached; Join is invoked
// once per enumerated (outer, inner) join, after the result entry exists;
// Complete is invoked once per entry when no further joins will produce
// plans for it (all base entries first, then each size class as its
// dynamic-programming round finishes) — the point where the parallel
// optimizer places its eager enforcers.
type Hooks struct {
	Init     func(e *memo.Entry)
	Join     func(outer, inner, result *memo.Entry)
	Complete func(e *memo.Entry)
}

// Stats reports what one enumeration did.
type Stats struct {
	// Joins is the number of enumerated (ordered) joins — Join callbacks.
	Joins int
	// Pairs is the number of distinct unordered table-set pairs joined —
	// the join count in the sense of Ono & Lohman.
	Pairs int
	// Entries is the number of MEMO entries created.
	Entries int
}

// Enumerator runs the DP join enumeration for one query block.
type Enumerator struct {
	blk  *query.Block
	mem  *memo.Memo
	card *cost.Estimator
	opts Options
	// stop latches a cancellation observed mid-scan so the remaining loops
	// unwind without re-polling the context at every level.
	stop bool
}

// New builds an enumerator writing into mem and using card for the logical
// cardinality of each entry (the estimator mode chosen by the caller is
// what differentiates real compilation from plan-estimate mode).
func New(blk *query.Block, mem *memo.Memo, card *cost.Estimator, opts Options) *Enumerator {
	return &Enumerator{blk: blk, mem: mem, card: card, opts: opts}
}

// Run enumerates all joins bottom-up, invoking the hooks, and returns the
// enumeration statistics. An error is returned when the query cannot be
// fully joined under the current knobs (e.g. a disconnected join graph with
// Cartesian products disabled).
func (en *Enumerator) Run(hooks Hooks) (Stats, error) {
	var st Stats
	n := en.blk.NumTables()

	en.runBase(&st, hooks)
	joins := 0
	for k := 2; k <= n; k++ {
		en.scanSizeClass(k, &st, hooks, func(outer, inner, result *memo.Entry) {
			if hooks.Join != nil {
				hooks.Join(outer, inner, result)
			}
			// Bound the cancellation latency of long size classes: one
			// poll every 64 joins keeps the overhead off the per-join
			// path while a deadline still lands within a small, fixed
			// amount of generation work.
			if joins++; joins&63 == 0 && en.opts.Exec.Cancelled() {
				en.stop = true
			}
		})
		if en.stop || en.opts.Exec.Cancelled() {
			return st, en.opts.Exec.Err()
		}
		en.completeSize(k, hooks)
	}
	return st, en.checkRoot()
}

// runBase creates the single-table MEMO entries and completes size class 1 —
// the start of every enumeration, serial or parallel.
func (en *Enumerator) runBase(st *Stats, hooks Hooks) {
	n := en.blk.NumTables()
	for t := 0; t < n; t++ {
		e := en.createEntry(bitset.Single(t), hooks)
		st.Entries++
		e.OuterEligible = en.singleOuterEligible(t)
	}
	en.completeSize(1, hooks)
}

// scanSizeClass walks the candidate (outer, inner) pairs of size class k in
// the canonical dynamic-programming order, materializing result entries and
// counting stats, and calls emit once per admitted ordered join. Both the
// serial Run (emit = invoke the Join hook) and the parallel driver (emit =
// buffer a task) share this scan, so the set and order of enumerated joins
// are identical by construction.
func (en *Enumerator) scanSizeClass(k int, st *Stats, hooks Hooks, emit func(outer, inner, result *memo.Entry)) {
	for i := 1; i <= k/2; i++ {
		j := k - i
		smaller := en.mem.OfSize(i)
		larger := en.mem.OfSize(j)
		for si, S := range smaller {
			if en.stop {
				return
			}
			if si&15 == 0 && en.opts.Exec.Cancelled() {
				en.stop = true
				return
			}
			for li, L := range larger {
				if en.stop {
					return
				}
				if i == j && li <= si {
					continue // unordered pairs once
				}
				if S.Tables.Overlaps(L.Tables) {
					continue
				}
				if !en.joinable(S, L) {
					continue
				}
				union := S.Tables.Union(L.Tables)
				if !en.validSet(union) {
					continue
				}
				emitSL := en.orientationAllowed(S, L)
				emitLS := en.orientationAllowed(L, S)
				if !emitSL && !emitLS {
					continue
				}
				result := en.mem.Entry(union)
				if result == nil {
					result = en.createJoinEntry(union, S, L, hooks)
					st.Entries++
				}
				st.Pairs++
				if emitSL {
					st.Joins++
					emit(S, L, result)
				}
				if emitLS {
					st.Joins++
					emit(L, S, result)
				}
			}
		}
	}
}

// completeSize fires the Complete hook for every entry of size k.
func (en *Enumerator) completeSize(k int, hooks Hooks) {
	if hooks.Complete == nil {
		return
	}
	for _, e := range en.mem.OfSize(k) {
		hooks.Complete(e)
	}
}

// checkRoot verifies that enumeration reached the full table set.
func (en *Enumerator) checkRoot() error {
	if en.mem.Entry(en.blk.AllTables()) == nil {
		return fmt.Errorf("enum: query %q not fully joinable under %v/%v (disconnected graph?)",
			en.blk.Name, en.opts.Shape, en.opts.Cartesian)
	}
	return nil
}

// createEntry materializes the MEMO entry for s with its logical properties
// cached, then runs the Init hook.
func (en *Enumerator) createEntry(s bitset.Set, hooks Hooks) *memo.Entry {
	e, created := en.mem.GetOrCreate(s)
	if !created {
		return e
	}
	e.Card = en.card.Card(s)
	en.finishEntry(e, s, hooks)
	return e
}

// createJoinEntry materializes the entry for the union of two existing
// entries, letting the cardinality estimator compose the union's
// cardinality from the parts when its mode supports it.
func (en *Enumerator) createJoinEntry(union bitset.Set, S, L *memo.Entry, hooks Hooks) *memo.Entry {
	e, created := en.mem.GetOrCreate(union)
	if !created {
		return e
	}
	e.Card = en.card.JoinCard(S.Tables, L.Tables)
	en.finishEntry(e, union, hooks)
	return e
}

func (en *Enumerator) finishEntry(e *memo.Entry, s bitset.Set, hooks Hooks) {
	e.Equiv = en.blk.EquivWithin(s)
	e.OuterEligible = en.compositeOuterEligible(s)
	if hooks.Init != nil {
		hooks.Init(e)
	}
}

// singleOuterEligible applies the outer-eligibility rules to a single
// table: the null-producing side of a pending outer join and correlated
// derived tables must be the inner (paper Section 4, experience item 3).
func (en *Enumerator) singleOuterEligible(t int) bool {
	for _, oj := range en.blk.OuterJoins {
		if oj.NullProducing == t {
			return false
		}
	}
	if ref := en.blk.Tables[t]; ref.Correlated {
		return false
	}
	return true
}

// compositeOuterEligible marks composite sets. Valid sets have all their
// outer joins applied, so only correlation matters: a set whose only table
// is a correlated subquery stays inner; once joined with binding tables it
// becomes eligible.
func (en *Enumerator) compositeOuterEligible(s bitset.Set) bool {
	if s.Len() == 1 {
		return en.singleOuterEligible(s.Min())
	}
	return true
}

// validSet enforces the outer-join reordering restriction: a set containing
// a null-producing table must either be exactly that single table or
// already include every preserving table its ON predicate references (free
// reordering without compensation, the DB2 variant the paper describes).
func (en *Enumerator) validSet(s bitset.Set) bool {
	for _, oj := range en.blk.OuterJoins {
		if s.Contains(oj.NullProducing) && s != bitset.Single(oj.NullProducing) && !oj.PredReq.SubsetOf(s) {
			return false
		}
	}
	return true
}

// joinable reports whether S and L may be joined: linked by a predicate, or
// permitted as a Cartesian product by the active policy. The cardinality
// dependence of CartesianCardOne is the hook through which the simple
// cardinality model of plan-estimate mode can change the set of joins
// enumerated — the HSJN estimation error analyzed in Section 5.2.
func (en *Enumerator) joinable(S, L *memo.Entry) bool {
	if en.blk.Connects(S.Tables, L.Tables) {
		return true
	}
	switch en.opts.Cartesian {
	case CartesianAlways:
		return true
	case CartesianCardOne:
		return S.Card <= cartesianCardThreshold || L.Card <= cartesianCardThreshold
	default:
		return false
	}
}

// orientationAllowed reports whether (outer, inner) may be emitted: the
// outer must be outer-eligible and the shape and composite-inner knobs must
// admit the inner.
func (en *Enumerator) orientationAllowed(outer, inner *memo.Entry) bool {
	if !outer.OuterEligible {
		return false
	}
	innerSize := inner.Tables.Len()
	switch en.opts.Shape {
	case LeftDeep:
		if innerSize != 1 {
			return false
		}
	case ZigZag:
		if innerSize != 1 && outer.Tables.Len() != 1 {
			return false
		}
	}
	if en.opts.CompositeInnerLimit > 0 && innerSize > en.opts.CompositeInnerLimit {
		return false
	}
	return true
}
