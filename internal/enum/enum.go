// Package enum implements the bottom-up dynamic-programming join enumerator
// of the reproduced optimizer, in the System R tradition the paper assumes.
//
// The enumerator is deliberately decoupled from plan generation through a
// thin callback interface (Hooks), exactly the extensible-optimizer split
// the paper leans on: real optimization installs plan-generating hooks,
// while the compilation-time estimator installs the cheap initialize /
// accumulate_plans hooks of Table 3 and bypasses plan generation entirely.
// Both modes therefore enumerate the same joins — up to the
// cardinality-sensitive Cartesian-product heuristic, whose dependence on the
// cardinality model is a documented error source of the paper.
//
// Enumeration is performed on a logical basis: two non-overlapping table
// sets join when at least one predicate links them (or a Cartesian product
// is permitted). Each eligible (outer, inner) orientation is emitted as one
// enumerated join, so a fully reorderable pair yields two joins — which is
// why the paper observes hash-join plans to be exactly twice the number of
// (unordered) joins.
package enum

import (
	"fmt"
	"slices"

	"cote/internal/bitset"
	"cote/internal/cost"
	"cote/internal/memo"
	"cote/internal/optctx"
	"cote/internal/query"
)

// Shape restricts the join-tree shapes the enumerator explores — one of the
// "knobs" that create intermediate optimization levels.
type Shape int

// Join-tree shapes.
const (
	// Bushy explores all shapes (the paper's "high" level).
	Bushy Shape = iota
	// ZigZag requires one input of every join to be a single table, in
	// either role.
	ZigZag
	// LeftDeep requires the inner of every join to be a single table.
	LeftDeep
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case Bushy:
		return "bushy"
	case ZigZag:
		return "zigzag"
	case LeftDeep:
		return "leftdeep"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// CartesianPolicy governs Cartesian products.
type CartesianPolicy int

// Cartesian-product policies.
const (
	// CartesianCardOne allows a product when one input's estimated
	// cardinality is (near) one — DB2's heuristic, reproduced including its
	// sensitivity to the cardinality model.
	CartesianCardOne CartesianPolicy = iota
	// CartesianNever forbids products entirely.
	CartesianNever
	// CartesianAlways permits any product (the full search space).
	CartesianAlways
)

// cartesianCardThreshold is the "cardinality of one" cutoff; estimates are
// floats so exact equality would be meaningless.
const cartesianCardThreshold = 1.5

// Cancellation poll strides. Polling the execution context costs an atomic
// load plus a deadline comparison — cheap, but not free on loops whose body
// is a handful of bitset ops. The strides bound cancellation latency
// instead: between two polls the enumerator performs at most one poll
// period of scan or generation work, each unit tens of nanoseconds to a few
// microseconds, so a deadline or budget abort lands within well under a
// millisecond of extra work — negligible against the millisecond-scale
// budgets MOP hands out — while the poll cost stays off the per-pair path.
const (
	// outerPollMask polls once per 16 outer entries of a size-class scan
	// (each outer drives at most one size class's worth of inner work).
	outerPollMask = 15
	// joinPollMask polls once per 64 emitted joins in the serial Run and
	// once per 64 generated tasks in the parallel driver's inline path,
	// where each unit includes plan generation (microseconds, the dominant
	// per-join cost of real optimization).
	joinPollMask = 63
)

// Options are the enumerator knobs. The zero value is the full bushy search
// with DB2's Cartesian heuristic and no composite-inner limit.
type Options struct {
	Shape Shape
	// CompositeInnerLimit caps the table count of a composite inner
	// (0 = unlimited): the paper's experiments run DB2 "with certain limits
	// on the composite inner size of a join".
	CompositeInnerLimit int
	Cartesian           CartesianPolicy
	// Exec, when non-nil, is polled for cancellation at size-class and
	// bounded-stride granularity: a deadline or budget abort stops the
	// enumeration promptly instead of letting it run to completion. A nil
	// Exec is never cancelled and adds no per-join work.
	Exec *optctx.Ctx
	// NaiveScan forces the original DPsize cross-product scan of every size
	// class instead of the candidate-driven connectivity-indexed scan. Both
	// admit the identical join sequence (the differential suite runs them
	// side by side); the naive scan remains as the oracle for those tests
	// and as a diagnostic escape hatch. CartesianAlways implies it, since
	// every disjoint pair is then admissible and no index can narrow the
	// candidates.
	NaiveScan bool
}

// Hooks are the callbacks the enumerator drives. Init is invoked once per
// MEMO entry right after its logical properties are cached; Join is invoked
// once per enumerated (outer, inner) join, after the result entry exists;
// Complete is invoked once per entry when no further joins will produce
// plans for it (all base entries first, then each size class as its
// dynamic-programming round finishes) — the point where the parallel
// optimizer places its eager enforcers.
type Hooks struct {
	Init     func(e *memo.Entry)
	Join     func(outer, inner, result *memo.Entry)
	Complete func(e *memo.Entry)
}

// Stats reports what one enumeration did.
type Stats struct {
	// Joins is the number of enumerated (ordered) joins — Join callbacks.
	Joins int
	// Pairs is the number of distinct unordered table-set pairs joined —
	// the join count in the sense of Ono & Lohman.
	Pairs int
	// Entries is the number of MEMO entries created.
	Entries int
	// CandidatesVisited counts the candidate (outer, inner) pairs the
	// size-class scans actually examined; CandidatesSkipped counts pairs
	// the connectivity index (or the size-class admissibility precheck)
	// proved unable to join without visiting them. For any query,
	// naive.CandidatesVisited == indexed.CandidatesVisited +
	// indexed.CandidatesSkipped, and Skipped/(Visited+Skipped) is the
	// fraction of the DPsize cross product the index eliminated.
	CandidatesVisited int
	CandidatesSkipped int
}

// Enumerator runs the DP join enumeration for one query block.
type Enumerator struct {
	blk  *query.Block
	mem  *memo.Memo
	card *cost.Estimator
	opts Options
	// stop latches a cancellation observed mid-scan so the remaining loops
	// unwind without re-polling the context at every level.
	stop bool
	// cand is the scratch buffer holding one outer entry's candidate
	// ordinals in the indexed scan, reused across the whole enumeration.
	cand []int32
	// smallBySize lists, per size class and in SizeOrd order, the entries
	// whose cardinality passes the CartesianCardOne threshold — the only
	// partners that policy can admit without a connecting predicate.
	// Maintained (by finishEntry) only when the indexed scan is active
	// under CartesianCardOne; nil otherwise.
	smallBySize [][]int32
}

// New builds an enumerator writing into mem and using card for the logical
// cardinality of each entry (the estimator mode chosen by the caller is
// what differentiates real compilation from plan-estimate mode).
func New(blk *query.Block, mem *memo.Memo, card *cost.Estimator, opts Options) *Enumerator {
	en := &Enumerator{blk: blk, mem: mem, card: card, opts: opts}
	if en.indexed() && opts.Cartesian == CartesianCardOne {
		en.smallBySize = make([][]int32, blk.NumTables()+1)
	}
	return en
}

// indexed reports whether the candidate-driven scan is active. Under
// CartesianAlways every disjoint pair is admissible, so the full cross
// product is the candidate set and the naive scan is used as-is.
func (en *Enumerator) indexed() bool {
	return !en.opts.NaiveScan && en.opts.Cartesian != CartesianAlways
}

// Run enumerates all joins bottom-up, invoking the hooks, and returns the
// enumeration statistics. An error is returned when the query cannot be
// fully joined under the current knobs (e.g. a disconnected join graph with
// Cartesian products disabled).
func (en *Enumerator) Run(hooks Hooks) (Stats, error) {
	var st Stats
	n := en.blk.NumTables()

	en.runBase(&st, hooks)
	joins := 0
	for k := 2; k <= n; k++ {
		en.scanSizeClass(k, &st, hooks, func(outer, inner, result *memo.Entry) {
			if hooks.Join != nil {
				hooks.Join(outer, inner, result)
			}
			// Bound the cancellation latency of long size classes: one
			// poll per joinPollMask+1 joins keeps the overhead off the
			// per-join path while a deadline still lands within a small,
			// fixed amount of generation work.
			if joins++; joins&joinPollMask == 0 && en.opts.Exec.Cancelled() {
				en.stop = true
			}
		})
		if en.stop || en.opts.Exec.Cancelled() {
			return st, en.opts.Exec.Err()
		}
		en.completeSize(k, hooks)
	}
	return st, en.checkRoot()
}

// runBase creates the single-table MEMO entries and completes size class 1 —
// the start of every enumeration, serial or parallel.
func (en *Enumerator) runBase(st *Stats, hooks Hooks) {
	n := en.blk.NumTables()
	for t := 0; t < n; t++ {
		e := en.createEntry(bitset.Single(t), hooks)
		st.Entries++
		e.OuterEligible = en.singleOuterEligible(t)
	}
	en.completeSize(1, hooks)
}

// scanSizeClass walks the candidate (outer, inner) pairs of size class k in
// the canonical dynamic-programming order, materializing result entries and
// counting stats, and calls emit once per admitted ordered join. Both the
// serial Run (emit = invoke the Join hook) and the parallel driver (emit =
// buffer a task) share this scan, so the set and order of enumerated joins
// are identical by construction.
//
// Two scan modes produce that identical sequence. The naive mode is the
// DPsize cross product: every (size-i, size-j) pair is visited and rejected
// by Overlaps/joinable/validSet. The indexed mode (the default) visits, per
// outer S, only the size-j entries the connectivity index proves joinable:
// entries containing a table of S.Neighbors (posting lists), plus — under
// CartesianCardOne — entries small enough to be admitted unconnected. The
// candidates are sorted by SizeOrd and deduplicated, which replays exactly
// the subsequence of the naive inner loop that survives its joinable test,
// so the admitted joins, their order, and every downstream stat are
// bit-identical (the differential suite runs both modes side by side).
func (en *Enumerator) scanSizeClass(k int, st *Stats, hooks Hooks, emit func(outer, inner, result *memo.Entry)) {
	naive := !en.indexed()
	for i := 1; i <= k/2; i++ {
		j := k - i
		smaller := en.mem.OfSize(i)
		larger := en.mem.OfSize(j)
		if len(smaller) == 0 || len(larger) == 0 {
			continue
		}
		if !naive && !en.classAdmissible(i, j) {
			// No orientation of any (size-i, size-j) pair can pass the
			// size-dependent shape/composite-inner knobs, so the naive scan
			// would walk the whole cross product and emit nothing (it
			// counts Pairs/Joins/Entries only after admitting an
			// orientation). Skip the class wholesale.
			st.CandidatesSkipped += classPairs(i, j, len(smaller), len(larger))
			continue
		}
		for si, S := range smaller {
			if en.stop {
				return
			}
			if si&outerPollMask == 0 && en.opts.Exec.Cancelled() {
				en.stop = true
				return
			}
			if naive || !en.sparseFor(S, j, len(larger)) {
				// Full inner scan: the index is off, this outer itself
				// passes the CartesianCardOne threshold (the policy then
				// admits every disjoint partner), or the candidate set
				// covers most of the class anyway — a dense class where
				// gather-sort-replay costs more than the linear scan with
				// its two-bitset-op rejection test.
				en.scanFull(i, j, si, S, larger, st, hooks, emit)
			} else {
				en.scanCandidates(i, j, si, S, larger, st, hooks, emit)
			}
		}
	}
}

// classPairs is the number of candidate pairs the naive scan visits for a
// (size-i, size-j) class: the full cross product, except that the i == j
// diagonal class pairs each unordered couple once.
func classPairs(i, j, ns, nl int) int {
	if i == j {
		return nl * (nl - 1) / 2
	}
	return ns * nl
}

// scanFull is the naive inner loop over the whole size-j class — the
// original DPsize scan body, and the per-outer fallback of the indexed scan
// when the Cartesian policy admits arbitrary partners for this outer.
func (en *Enumerator) scanFull(i, j, si int, S *memo.Entry, larger []*memo.Entry, st *Stats, hooks Hooks, emit func(outer, inner, result *memo.Entry)) {
	for li, L := range larger {
		if en.stop {
			return
		}
		if i == j && li <= si {
			continue // unordered pairs once
		}
		st.CandidatesVisited++
		if S.Tables.Overlaps(L.Tables) {
			continue
		}
		if !en.joinable(S, L) {
			continue
		}
		en.tryEmit(S, L, st, hooks, emit)
	}
}

// sparseFor decides whether the candidate-driven gather is worthwhile for
// outer S against the size-j class: the candidate estimate (posting-list
// lengths of S's neighbors, plus the small-cardinality list the Cartesian
// policy can admit) must stay under half the class, and the outer itself
// must not pass the CartesianCardOne threshold — a small outer joins every
// disjoint partner, making the whole class the candidate set. Both scans
// admit the identical sequence; this is purely a cost choice.
func (en *Enumerator) sparseFor(S *memo.Entry, j, classLen int) bool {
	est := 0
	if en.smallBySize != nil {
		if S.Card <= cartesianCardThreshold {
			return false
		}
		est = len(en.smallBySize[j])
		if est*2 >= classLen {
			return false
		}
	}
	for t := S.Neighbors.Next(0); t >= 0; t = S.Neighbors.Next(t + 1) {
		est += len(en.mem.Posting(t, j))
		if est*2 >= classLen {
			return false
		}
	}
	return true
}

// scanCandidates is the indexed inner loop: gather the ordinals of every
// size-j entry the connectivity index proves joinable with S, replay them
// in SizeOrd order, and emit through the shared admission path. Entries not
// gathered are counted skipped — the naive scan would have visited and
// rejected each one.
func (en *Enumerator) scanCandidates(i, j, si int, S *memo.Entry, larger []*memo.Entry, st *Stats, hooks Hooks, emit func(outer, inner, result *memo.Entry)) {
	cand := en.cand[:0]
	for t := S.Neighbors.Next(0); t >= 0; t = S.Neighbors.Next(t + 1) {
		cand = append(cand, en.mem.Posting(t, j)...)
	}
	if en.smallBySize != nil {
		cand = append(cand, en.smallBySize[j]...)
	}
	en.cand = cand // keep the grown capacity even on early return
	slices.Sort(cand)
	visited := 0
	prev := int32(-1)
	for _, ord := range cand {
		if en.stop {
			return
		}
		if ord == prev {
			continue // an entry posts once per table; small sets repost
		}
		prev = ord
		if i == j && int(ord) <= si {
			continue // unordered pairs once (the naive li <= si skip)
		}
		visited++
		L := larger[ord]
		if S.Tables.Overlaps(L.Tables) {
			continue
		}
		// joinable(S, L) is true by construction and skipped: a
		// posting-derived candidate contains a table of S.Neighbors (a
		// predicate connects the pair), and a smallBySize candidate passes
		// the CartesianCardOne threshold the policy tests.
		en.tryEmit(S, L, st, hooks, emit)
	}
	// The naive scan would have visited, for this outer, every entry of the
	// size-j class (only the li > si suffix on the i == j diagonal).
	full := len(larger)
	if i == j {
		full = len(larger) - si - 1
	}
	st.CandidatesVisited += visited
	st.CandidatesSkipped += full - visited
}

// tryEmit applies the per-pair admission checks shared by both scan modes —
// outer-join set validity and per-orientation eligibility — creating the
// result entry and emitting the admitted orientations. S and L are known
// disjoint and joinable when this is called.
func (en *Enumerator) tryEmit(S, L *memo.Entry, st *Stats, hooks Hooks, emit func(outer, inner, result *memo.Entry)) {
	union := S.Tables.Union(L.Tables)
	if !en.validSet(union) {
		return
	}
	emitSL := en.orientationAllowed(S, L)
	emitLS := en.orientationAllowed(L, S)
	if !emitSL && !emitLS {
		return
	}
	result := en.mem.Entry(union)
	if result == nil {
		result = en.createJoinEntry(union, S, L, hooks)
		st.Entries++
	}
	st.Pairs++
	if emitSL {
		st.Joins++
		emit(S, L, result)
	}
	if emitLS {
		st.Joins++
		emit(L, S, result)
	}
}

// classAdmissible reports whether some (outer, inner) orientation of a
// (size-i, size-j) pair can pass orientationAllowed's size-dependent knobs.
// Outer-eligibility is entry-specific and checked per pair; the shape and
// composite-inner knobs depend only on the sizes, so an inadmissible class
// can be skipped wholesale.
func (en *Enumerator) classAdmissible(i, j int) bool {
	return en.sizeAllowed(i, j) || en.sizeAllowed(j, i)
}

// completeSize fires the Complete hook for every entry of size k.
func (en *Enumerator) completeSize(k int, hooks Hooks) {
	if hooks.Complete == nil {
		return
	}
	for _, e := range en.mem.OfSize(k) {
		hooks.Complete(e)
	}
}

// checkRoot verifies that enumeration reached the full table set.
func (en *Enumerator) checkRoot() error {
	if en.mem.Entry(en.blk.AllTables()) == nil {
		return fmt.Errorf("enum: query %q not fully joinable under %v/%v (disconnected graph?)",
			en.blk.Name, en.opts.Shape, en.opts.Cartesian)
	}
	return nil
}

// createEntry materializes the MEMO entry for s with its logical properties
// cached, then runs the Init hook.
func (en *Enumerator) createEntry(s bitset.Set, hooks Hooks) *memo.Entry {
	e, created := en.mem.GetOrCreate(s)
	if !created {
		return e
	}
	e.Card = en.card.Card(s)
	en.finishEntry(e, s, en.blk.Neighbors(s), hooks)
	return e
}

// createJoinEntry materializes the entry for the union of two existing
// entries, letting the cardinality estimator compose the union's
// cardinality from the parts when its mode supports it. The union's
// neighbor mask composes the same way: N(S ∪ L) = (N(S) ∪ N(L)) \ (S ∪ L),
// exact because both sides unfold to the members' adjacency sets minus the
// union — so maintaining the connectivity index costs three bitset ops per
// created entry instead of a walk over its tables.
func (en *Enumerator) createJoinEntry(union bitset.Set, S, L *memo.Entry, hooks Hooks) *memo.Entry {
	e, created := en.mem.GetOrCreate(union)
	if !created {
		return e
	}
	e.Card = en.card.JoinCard(S.Tables, L.Tables)
	en.finishEntry(e, union, S.Neighbors.Union(L.Neighbors).Diff(union), hooks)
	return e
}

func (en *Enumerator) finishEntry(e *memo.Entry, s bitset.Set, neighbors bitset.Set, hooks Hooks) {
	e.Neighbors = neighbors
	e.Equiv = en.blk.EquivWithin(s)
	e.OuterEligible = en.compositeOuterEligible(s)
	if en.smallBySize != nil && e.Card <= cartesianCardThreshold {
		en.smallBySize[s.Len()] = append(en.smallBySize[s.Len()], e.SizeOrd)
	}
	if hooks.Init != nil {
		hooks.Init(e)
	}
}

// singleOuterEligible applies the outer-eligibility rules to a single
// table: the null-producing side of a pending outer join and correlated
// derived tables must be the inner (paper Section 4, experience item 3).
func (en *Enumerator) singleOuterEligible(t int) bool {
	for _, oj := range en.blk.OuterJoins {
		if oj.NullProducing == t {
			return false
		}
	}
	if ref := en.blk.Tables[t]; ref.Correlated {
		return false
	}
	return true
}

// compositeOuterEligible marks composite sets. Valid sets have all their
// outer joins applied, so only correlation matters: a set whose only table
// is a correlated subquery stays inner; once joined with binding tables it
// becomes eligible.
func (en *Enumerator) compositeOuterEligible(s bitset.Set) bool {
	if s.Len() == 1 {
		return en.singleOuterEligible(s.Min())
	}
	return true
}

// validSet enforces the outer-join reordering restriction: a set containing
// a null-producing table must either be exactly that single table or
// already include every preserving table its ON predicate references (free
// reordering without compensation, the DB2 variant the paper describes).
func (en *Enumerator) validSet(s bitset.Set) bool {
	for _, oj := range en.blk.OuterJoins {
		if s.Contains(oj.NullProducing) && s != bitset.Single(oj.NullProducing) && !oj.PredReq.SubsetOf(s) {
			return false
		}
	}
	return true
}

// joinable reports whether S and L may be joined: linked by a predicate, or
// permitted as a Cartesian product by the active policy. The cardinality
// dependence of CartesianCardOne is the hook through which the simple
// cardinality model of plan-estimate mode can change the set of joins
// enumerated — the HSJN estimation error analyzed in Section 5.2.
func (en *Enumerator) joinable(S, L *memo.Entry) bool {
	// S.Neighbors is the cached Block.Neighbors(S.Tables), so the
	// connectivity test is one AND instead of a walk over S's tables.
	if S.Neighbors.Overlaps(L.Tables) {
		return true
	}
	switch en.opts.Cartesian {
	case CartesianAlways:
		return true
	case CartesianCardOne:
		return S.Card <= cartesianCardThreshold || L.Card <= cartesianCardThreshold
	default:
		return false
	}
}

// orientationAllowed reports whether (outer, inner) may be emitted: the
// outer must be outer-eligible and the shape and composite-inner knobs must
// admit the inner.
func (en *Enumerator) orientationAllowed(outer, inner *memo.Entry) bool {
	return outer.OuterEligible && en.sizeAllowed(outer.Tables.Len(), inner.Tables.Len())
}

// sizeAllowed is the size-dependent part of orientationAllowed: whether the
// shape and composite-inner knobs admit an (outerSize, innerSize)
// orientation. classAdmissible uses it to discard whole size classes.
func (en *Enumerator) sizeAllowed(outerSize, innerSize int) bool {
	switch en.opts.Shape {
	case LeftDeep:
		if innerSize != 1 {
			return false
		}
	case ZigZag:
		if innerSize != 1 && outerSize != 1 {
			return false
		}
	}
	return en.opts.CompositeInnerLimit <= 0 || innerSize <= en.opts.CompositeInnerLimit
}
