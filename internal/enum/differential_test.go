package enum

import (
	"fmt"
	"math/rand"
	"testing"

	"cote/internal/bitset"
	"cote/internal/catalog"
	"cote/internal/cost"
	"cote/internal/memo"
	"cote/internal/query"
)

// The differential suite is the oracle for the connectivity-indexed scan:
// for random query graphs across every knob combination, the indexed scan
// and the naive DPsize cross-product scan (Options.NaiveScan) must produce
// identical stats and an identical emission sequence, join for join.

// emission is one emitted ordered join, identified by table sets (entry
// pointers differ across runs).
type emission struct {
	outer, inner, result bitset.Set
}

// diffGraph describes one generated query graph.
type diffGraph struct {
	name  string
	n     int
	edges [][2]int
	// outerJoins lists (nullProducing, predReq-table) pairs.
	outerJoins [][2]int
	// selective lists tables that get a highly selective filter, driving
	// their cardinality under the CartesianCardOne threshold.
	selective []int
}

// genGraph builds a random graph of the given family. All families start
// connected (chain/star/cycle/clique), then pick up random extra edges,
// outer joins, and selective filters from rng.
func genGraph(family string, n int, rng *rand.Rand) diffGraph {
	g := diffGraph{name: fmt.Sprintf("%s%d", family, n), n: n}
	switch family {
	case "chain":
		for i := 0; i+1 < n; i++ {
			g.edges = append(g.edges, [2]int{i, i + 1})
		}
	case "star":
		for i := 1; i < n; i++ {
			g.edges = append(g.edges, [2]int{0, i})
		}
	case "cycle":
		for i := 0; i+1 < n; i++ {
			g.edges = append(g.edges, [2]int{i, i + 1})
		}
		if n > 2 {
			g.edges = append(g.edges, [2]int{n - 1, 0})
		}
	case "clique":
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.edges = append(g.edges, [2]int{i, j})
			}
		}
	case "sparse":
		// A random spanning tree plus a few extra edges — the shape real
		// snowflake workloads take.
		for i := 1; i < n; i++ {
			g.edges = append(g.edges, [2]int{rng.Intn(i), i})
		}
	}
	if family != "clique" {
		for e := 0; e < n/3; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.edges = append(g.edges, [2]int{min(a, b), max(a, b)})
			}
		}
	}
	// Random outer joins: a table becomes null-producing with its first
	// graph neighbor as the preserving requirement.
	for t := 1; t < n; t++ {
		if rng.Intn(4) != 0 {
			continue
		}
		for _, e := range g.edges {
			if e[0] == t {
				g.outerJoins = append(g.outerJoins, [2]int{t, e[1]})
				break
			}
			if e[1] == t {
				g.outerJoins = append(g.outerJoins, [2]int{t, e[0]})
				break
			}
		}
		if len(g.outerJoins) >= 2 {
			break // the valid-set rules compose; two suffice per graph
		}
	}
	for t := 0; t < n; t++ {
		if rng.Intn(3) == 0 {
			g.selective = append(g.selective, t)
		}
	}
	return g
}

// buildDiffBlock materializes the graph as a query block. Every table gets
// one join column per peer so arbitrary edge sets are expressible.
func buildDiffBlock(tb testing.TB, g diffGraph) *query.Block {
	tb.Helper()
	cb := catalog.NewBuilder(g.name)
	for i := 0; i < g.n; i++ {
		t := cb.Table(tname(i), 1000*float64(i+1))
		for j := 0; j < g.n; j++ {
			t.Column(colname(j), 50)
		}
	}
	cat := cb.Build()
	qb := query.NewBuilder(g.name, cat)
	for i := 0; i < g.n; i++ {
		qb.AddTable(tname(i), "")
	}
	// Deduplicate edges: repeated predicates between a pair are legal but
	// make the graph multigraph-shaped for no extra coverage.
	seen := map[[2]int]bool{}
	for _, e := range g.edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		qb.JoinEq(tname(e[0]), colname(e[1]), tname(e[1]), colname(e[0]))
	}
	for _, oj := range g.outerJoins {
		qb.LeftOuter(oj[0], oj[1])
	}
	for _, t := range g.selective {
		qb.Filter(qb.Col(tname(t), colname(t)), query.Eq, 1e-4)
	}
	blk, err := qb.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return blk
}

// runDiff enumerates blk under opts, recording the emission sequence.
func runDiff(blk *query.Block, opts Options) (Stats, []emission, *memo.Memo, error) {
	mem := memo.New(blk.NumTables())
	card := cost.NewEstimator(blk, cost.Simple)
	var seq []emission
	st, err := New(blk, mem, card, opts).Run(Hooks{
		Join: func(outer, inner, result *memo.Entry) {
			seq = append(seq, emission{outer.Tables, inner.Tables, result.Tables})
		},
	})
	return st, seq, mem, err
}

func TestDifferentialIndexedVsNaive(t *testing.T) {
	families := []string{"chain", "star", "cycle", "clique", "sparse"}
	shapes := []Shape{Bushy, ZigZag, LeftDeep}
	policies := []CartesianPolicy{CartesianCardOne, CartesianNever, CartesianAlways}
	limits := []int{0, 1, 2}

	cases := 0
	for _, family := range families {
		for n := 2; n <= 9; n++ {
			rng := rand.New(rand.NewSource(int64(n)*1000 + int64(len(family))))
			g := genGraph(family, n, rng)
			blk := buildDiffBlock(t, g)
			for _, shape := range shapes {
				for _, pol := range policies {
					for _, lim := range limits {
						opts := Options{Shape: shape, Cartesian: pol, CompositeInnerLimit: lim}
						naive := opts
						naive.NaiveScan = true
						stI, seqI, memI, errI := runDiff(blk, opts)
						stN, seqN, _, errN := runDiff(blk, naive)
						cases++
						label := fmt.Sprintf("%s shape=%v pol=%v lim=%d", g.name, shape, pol, lim)

						// Error parity: both scans must agree on whether the
						// graph is fully joinable under these knobs.
						if (errI == nil) != (errN == nil) {
							t.Fatalf("%s: error mismatch: indexed=%v naive=%v", label, errI, errN)
						}
						if stI.Joins != stN.Joins || stI.Pairs != stN.Pairs || stI.Entries != stN.Entries {
							t.Fatalf("%s: stats diverge: indexed=%+v naive=%+v", label, stI, stN)
						}
						// The candidate counters partition the naive visit
						// count exactly.
						if stN.CandidatesVisited != stI.CandidatesVisited+stI.CandidatesSkipped {
							t.Fatalf("%s: candidate invariant broken: naive visited %d, indexed %d+%d",
								label, stN.CandidatesVisited, stI.CandidatesVisited, stI.CandidatesSkipped)
						}
						if stN.CandidatesSkipped != 0 {
							t.Fatalf("%s: naive scan skipped %d candidates, want 0", label, stN.CandidatesSkipped)
						}
						if len(seqI) != len(seqN) {
							t.Fatalf("%s: emission count diverges: %d vs %d", label, len(seqI), len(seqN))
						}
						for i := range seqI {
							if seqI[i] != seqN[i] {
								t.Fatalf("%s: emission %d diverges: indexed %v naive %v",
									label, i, seqI[i], seqN[i])
							}
						}
						// The cached per-entry neighbor masks must equal the
						// from-scratch computation.
						for k := 1; k <= blk.NumTables(); k++ {
							for _, e := range memI.OfSize(k) {
								if want := blk.Neighbors(e.Tables); e.Neighbors != want {
									t.Fatalf("%s: entry %v Neighbors = %v, want %v",
										label, e.Tables, e.Neighbors, want)
								}
							}
						}
					}
				}
			}
		}
	}
	t.Logf("compared %d graph/knob combinations", cases)
}

// TestDifferentialParallelScan pins the parallel driver to the same scan:
// RunParallel's task order must match serial emission order in both modes.
func TestDifferentialParallelScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := genGraph("sparse", 8, rng)
	blk := buildDiffBlock(t, g)
	for _, naive := range []bool{false, true} {
		opts := Options{NaiveScan: naive}
		_, serialSeq, _, err := runDiff(blk, opts)
		if err != nil {
			t.Fatal(err)
		}
		mem := memo.New(blk.NumTables())
		card := cost.NewEstimator(blk, cost.Simple)
		var parSeq []emission
		_, err = New(blk, mem, card, opts).RunParallel(ParallelHooks{
			NewWorker: func() (GenerateFunc, CommitFunc) {
				var pending []emission
				gen := func(task int, outer, inner, result *memo.Entry) {
					for len(pending) <= task {
						pending = append(pending, emission{})
					}
					pending[task] = emission{outer.Tables, inner.Tables, result.Tables}
				}
				commit := func(task int) { parSeq = append(parSeq, pending[task]) }
				return gen, commit
			},
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(parSeq) != len(serialSeq) {
			t.Fatalf("naive=%v: parallel emitted %d tasks, serial %d", naive, len(parSeq), len(serialSeq))
		}
		for i := range parSeq {
			if parSeq[i] != serialSeq[i] {
				t.Fatalf("naive=%v: task %d diverges: parallel %v serial %v", naive, i, parSeq[i], serialSeq[i])
			}
		}
	}
}
