package calib

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cote/internal/core"
)

// DefaultRetain bounds how many model versions the registry keeps when no
// retention is configured.
const DefaultRetain = 16

// ModelVersion is one immutable snapshot in the registry: a model, its
// monotonically increasing version number, and the provenance that tells an
// operator why it exists. Neither the snapshot nor its model is mutated
// after Install, so readers may hold them without locks.
type ModelVersion struct {
	// Version is process-monotonic: every Install (rollbacks included)
	// advances it, so "which model priced this request" is always a single
	// comparable number.
	Version int `json:"version"`
	// Model is the snapshot itself.
	Model *core.TimeModel `json:"model"`
	// Mem is the memory model paired with this version (nil until a memory
	// calibration has run). Plain time-model installs carry the incumbent
	// memory model forward, so the two calibrate on independent cadences
	// while staying behind one version number.
	Mem *core.MemModel `json:"mem_model,omitempty"`
	// Source records provenance: "seed", "calibrate", "recalibrate", "api",
	// "file", or "rollback(vN)".
	Source string `json:"source"`
	// Samples is the observation count the fit used (zero for installs that
	// did not come from a fit).
	Samples int `json:"samples,omitempty"`
	// FitErr is the model's mean relative error over the window it was
	// fitted on (zero when unknown).
	FitErr float64 `json:"fit_err,omitempty"`
	// InstalledUnixMS is the wall-clock install time, for operators; no
	// logic depends on it.
	InstalledUnixMS int64 `json:"installed_unix_ms,omitempty"`
}

// Registry is the versioned model store: the current model sits behind an
// atomic pointer (the read path — every estimate — is a single load), while
// installs, history and rollback serialize on a mutex. It implements
// core.ModelProvider and core.MemModelProvider.
type Registry struct {
	cur atomic.Pointer[ModelVersion]

	mu      sync.Mutex
	history []*ModelVersion // ascending version order, bounded by retain
	retain  int
	lastVer int
}

// NewRegistry returns an empty registry retaining at most retain versions
// (DefaultRetain when retain <= 0). An empty registry provides a nil model.
func NewRegistry(retain int) *Registry {
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Registry{retain: retain}
}

// CurrentModel returns the current model, nil while the registry is empty.
// This is the core.ModelProvider hot path: one atomic load.
func (r *Registry) CurrentModel() *core.TimeModel {
	if v := r.cur.Load(); v != nil {
		return v.Model
	}
	return nil
}

// CurrentMemModel returns the current memory model, nil until one was
// installed. This is the core.MemModelProvider hot path: one atomic load.
func (r *Registry) CurrentMemModel() *core.MemModel {
	if v := r.cur.Load(); v != nil {
		return v.Mem
	}
	return nil
}

// Current returns the current version snapshot (nil while empty).
func (r *Registry) Current() *ModelVersion { return r.cur.Load() }

// Version returns the current version number, zero while empty.
func (r *Registry) Version() int {
	if v := r.cur.Load(); v != nil {
		return v.Version
	}
	return 0
}

// Install snapshots m as the new current model and returns its version.
// The model must not be mutated by the caller afterwards. The incumbent
// memory model, if any, is carried forward unchanged.
func (r *Registry) Install(m *core.TimeModel, source string, samples int, fitErr float64) *ModelVersion {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.installLocked(m, nil, source, samples, fitErr)
}

// InstallMem snapshots mem as the new current memory model, carrying the
// incumbent time model forward as a new version. mem must not be mutated by
// the caller afterwards.
func (r *Registry) InstallMem(mem *core.MemModel, source string, samples int) *ModelVersion {
	r.mu.Lock()
	defer r.mu.Unlock()
	var tm *core.TimeModel
	var fitErr float64
	if cur := r.cur.Load(); cur != nil {
		tm, fitErr = cur.Model, cur.FitErr
	}
	v := r.installLocked(tm, mem, source, samples, fitErr)
	return v
}

// installLocked installs a new version. mem, when nil, inherits the
// incumbent's memory model — versions snapshot both models even when only
// one was refit.
func (r *Registry) installLocked(m *core.TimeModel, mem *core.MemModel, source string, samples int, fitErr float64) *ModelVersion {
	if mem == nil {
		if prev := r.cur.Load(); prev != nil {
			mem = prev.Mem
		}
	}
	r.lastVer++
	v := &ModelVersion{
		Version:         r.lastVer,
		Model:           m,
		Mem:             mem,
		Source:          source,
		Samples:         samples,
		FitErr:          fitErr,
		InstalledUnixMS: time.Now().UnixMilli(),
	}
	r.history = append(r.history, v)
	if len(r.history) > r.retain {
		r.history = append(r.history[:0], r.history[len(r.history)-r.retain:]...)
	}
	r.cur.Store(v)
	return v
}

// History returns the retained versions, oldest first (the current one
// last).
func (r *Registry) History() []*ModelVersion {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*ModelVersion(nil), r.history...)
}

// Get returns a retained version by number.
func (r *Registry) Get(version int) (*ModelVersion, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.history {
		if v.Version == version {
			return v, true
		}
	}
	return nil, false
}

// Rollback reinstates a retained version's model as a new current version
// (versions only ever advance; the rollback is itself history). It returns
// the new version, or an error when the requested version is no longer
// retained.
func (r *Registry) Rollback(version int) (*ModelVersion, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.history {
		if v.Version == version {
			var tm *core.TimeModel
			if v.Model != nil {
				cp := *v.Model
				tm = &cp
			}
			var mem *core.MemModel
			if v.Mem != nil {
				mcp := *v.Mem
				mem = &mcp
			}
			return r.installLocked(tm, mem, fmt.Sprintf("rollback(v%d)", version), v.Samples, v.FitErr), nil
		}
	}
	return nil, fmt.Errorf("calib: version %d not retained (have %d..%d)", version, r.oldestLocked(), r.lastVer)
}

func (r *Registry) oldestLocked() int {
	if len(r.history) == 0 {
		return 0
	}
	return r.history[0].Version
}
