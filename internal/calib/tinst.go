package calib

import (
	"time"
)

// tinstSink defeats dead-code elimination of the benchmark kernel.
var tinstSink float64

// MeasureTinst times a fixed floating-point kernel and returns this host's
// seconds per abstract instruction — the paper's machine-dependent Tinst
// scale (Section 3.5), measured instead of assumed. The absolute value is
// nominal; what matters is the ratio between two hosts, which is how
// persisted registries are rescaled on load (see Load). The kernel is the
// multiply-add mix plan generation is made of, run three times with the
// fastest kept so a scheduling hiccup cannot inflate the result.
func MeasureTinst() float64 {
	const ops = 1 << 21
	best := time.Duration(1<<63 - 1)
	acc := 1.0
	for run := 0; run < 3; run++ {
		start := time.Now()
		x, y := 1.000000119, 0.999999881
		for i := 0; i < ops; i++ {
			acc = acc*x + y
		}
		if el := time.Since(start); el < best {
			best = el
		}
	}
	tinstSink = acc
	return best.Seconds() / ops
}
