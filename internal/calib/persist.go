package calib

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cote/internal/faultinject"
)

// registryFile is the on-disk JSON form of a registry (-model-file): the
// retained versions, the current version number, and the host's measured
// Tinst at save time so a file moved between machines can be rescaled to
// the loading host's speed.
type registryFile struct {
	// HostTinst is MeasureTinst() on the saving host (seconds per abstract
	// instruction). Zero means unknown — no rescaling on load.
	HostTinst float64 `json:"host_tinst,omitempty"`
	// Current is the version number of the current model.
	Current int `json:"current"`
	// Versions are the retained snapshots, oldest first.
	Versions []*ModelVersion `json:"versions"`
}

// Save writes the registry to path atomically (temp file + rename).
// hostTinst, when positive, is recorded so a later load on a different
// machine can rescale predictions; pass MeasureTinst() or zero.
func (r *Registry) Save(path string, hostTinst float64) error {
	// Persistence is a real disk dependency; a chaos plan fails it here so
	// the -model-file warning path (persist fails, registry swap survives)
	// is actually exercised.
	if err := faultinject.Check(faultinject.PointModelPersist); err != nil {
		return fmt.Errorf("calib: save registry: %w", err)
	}
	r.mu.Lock()
	f := registryFile{
		HostTinst: hostTinst,
		Current:   r.lastVer,
		Versions:  append([]*ModelVersion(nil), r.history...),
	}
	if cur := r.cur.Load(); cur != nil {
		f.Current = cur.Version
	}
	r.mu.Unlock()

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("calib: marshal registry: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".model-*.json")
	if err != nil {
		return fmt.Errorf("calib: save registry: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("calib: save registry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("calib: save registry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("calib: save registry: %w", err)
	}
	return nil
}

// Load reads a registry from path. hostTinst, when positive and the file
// records the saving host's Tinst, rescales every model's Tinst by
// hostTinst/saved — the paper's machine-dependent constant re-pinned to the
// loading machine, so a registry trained on one host predicts sensibly on
// another. retain bounds the restored history as in NewRegistry.
//
// A missing file is not an error: Load returns an empty registry so callers
// can treat -model-file as "create on first save".
func Load(path string, retain int, hostTinst float64) (*Registry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewRegistry(retain), nil
	}
	if err != nil {
		return nil, fmt.Errorf("calib: load registry: %w", err)
	}
	var f registryFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("calib: load registry %s: %w", path, err)
	}
	scale := 1.0
	if hostTinst > 0 && f.HostTinst > 0 {
		scale = hostTinst / f.HostTinst
	}
	r := NewRegistry(retain)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range f.Versions {
		if v == nil || (v.Model == nil && v.Mem == nil) {
			return nil, fmt.Errorf("calib: load registry %s: version entry without a model", path)
		}
		if scale != 1 && v.Model != nil {
			m := *v.Model
			m.Tinst *= scale
			v.Model = &m
		}
		r.history = append(r.history, v)
		if v.Version > r.lastVer {
			r.lastVer = v.Version
		}
		if v.Version == f.Current {
			r.cur.Store(v)
		}
	}
	if len(r.history) > r.retain {
		r.history = append(r.history[:0], r.history[len(r.history)-r.retain:]...)
	}
	if r.cur.Load() == nil && len(r.history) > 0 {
		// A file whose current pointer is stale still yields its newest
		// retained model rather than none.
		r.cur.Store(r.history[len(r.history)-1])
	}
	return r, nil
}
