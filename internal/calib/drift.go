package calib

import (
	"math"
	"sync"
)

// Drift defaults; see NewDriftDetector.
const (
	DefaultDriftWindow     = 32
	DefaultDriftThreshold  = 0.5
	DefaultDriftMinSamples = 8
)

// DriftDetector tracks the rolling relative error of compile-time
// predictions against measured compile times. When the mean error over the
// window crosses the threshold the installed model has drifted from the
// live workload — the signal that triggers recalibration (or flags the
// model degraded when recalibration is gated off).
//
// Relative error rather than q-error keeps the metric identical to the one
// the paper evaluates on (Section 5's "within 30%" bars) and to
// stats.RelErr; non-finite errors (an actual of zero) are dropped rather
// than poisoning the window.
type DriftDetector struct {
	mu        sync.Mutex
	window    []float64
	next      int
	full      bool
	sum       float64
	threshold float64
	minN      int
}

// NewDriftDetector returns a detector over a rolling window of the given
// size that reports Degraded once at least minSamples errors are present
// and their mean exceeds threshold. Non-positive arguments take the
// package defaults.
func NewDriftDetector(window int, threshold float64, minSamples int) *DriftDetector {
	if window <= 0 {
		window = DefaultDriftWindow
	}
	if threshold <= 0 {
		threshold = DefaultDriftThreshold
	}
	if minSamples <= 0 {
		minSamples = DefaultDriftMinSamples
	}
	if minSamples > window {
		minSamples = window
	}
	return &DriftDetector{window: make([]float64, window), threshold: threshold, minN: minSamples}
}

// Observe folds one prediction's relative error into the window. NaN and
// Inf are ignored.
func (d *DriftDetector) Observe(relErr float64) {
	if math.IsNaN(relErr) || math.IsInf(relErr, 0) {
		return
	}
	d.mu.Lock()
	if d.full {
		d.sum -= d.window[d.next]
	}
	d.window[d.next] = relErr
	d.sum += relErr
	d.next++
	if d.next == len(d.window) {
		d.next = 0
		d.full = true
	}
	d.mu.Unlock()
}

// Drift returns the mean relative error over the window (zero when empty).
func (d *DriftDetector) Drift() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.n()
	if n == 0 {
		return 0
	}
	return d.sum / float64(n)
}

// N returns the number of errors currently in the window.
func (d *DriftDetector) N() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n()
}

func (d *DriftDetector) n() int {
	if d.full {
		return len(d.window)
	}
	return d.next
}

// Threshold returns the configured drift threshold.
func (d *DriftDetector) Threshold() float64 { return d.threshold }

// Degraded reports whether the window holds enough samples and their mean
// relative error exceeds the threshold.
func (d *DriftDetector) Degraded() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.n()
	return n >= d.minN && d.sum/float64(n) > d.threshold
}

// Reset empties the window — called after a successful recalibration so the
// fresh model is judged only on its own predictions.
func (d *DriftDetector) Reset() {
	d.mu.Lock()
	d.next = 0
	d.full = false
	d.sum = 0
	d.mu.Unlock()
}
