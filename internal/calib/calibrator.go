package calib

import (
	"errors"
	"sync"
	"sync/atomic"

	"cote/internal/core"
	"cote/internal/props"
	"cote/internal/stats"
)

// Calibrator defaults; see Config.
const (
	DefaultMinSamples = 8
	DefaultHysteresis = 1.2
)

// Config parameterizes the online calibration loop. The zero value enables
// automatic recalibration with the package defaults.
type Config struct {
	// WindowSize bounds the observation log (DefaultLogCapacity).
	WindowSize int
	// MinSamples gates recalibration: no refit before this many
	// observations sit in the window (DefaultMinSamples; it is also raised
	// to the regression's own minimum, one more than the constant count).
	MinSamples int
	// DriftWindow sizes the rolling prediction-error window
	// (DefaultDriftWindow).
	DriftWindow int
	// DriftThreshold is the mean relative error beyond which the model
	// counts as drifted (DefaultDriftThreshold). Negative disables
	// automatic recalibration entirely — drift is still tracked and
	// reported, but only explicit Recalibrate calls refit.
	DriftThreshold float64
	// DriftMinSamples is the minimum error-window fill before drift can
	// fire (DefaultDriftMinSamples).
	DriftMinSamples int
	// Hysteresis is the improvement factor a candidate model must show
	// over the incumbent on the observation window before it is installed:
	// incumbentErr >= Hysteresis * candidateErr (DefaultHysteresis). It
	// keeps the registry from churning versions on noise. Values <= 1 mean
	// any improvement installs.
	Hysteresis float64
	// Cooldown is the minimum number of observations between automatic
	// refit attempts (default MinSamples), bounding refit CPU under a
	// persistently drifting workload.
	Cooldown int
	// OnSwap, when non-nil, runs after every successful install with the
	// new version (the daemon persists the registry here). Called
	// synchronously; keep it cheap.
	OnSwap func(*ModelVersion)
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = DefaultLogCapacity
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = DefaultDriftWindow
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = DefaultDriftThreshold
	}
	if c.DriftMinSamples <= 0 {
		c.DriftMinSamples = DefaultDriftMinSamples
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.MinSamples
	}
	return c
}

// ErrNotEnoughSamples reports a refit attempted before the window holds
// MinSamples observations.
var ErrNotEnoughSamples = errors.New("calib: not enough observations to recalibrate")

// ErrNoImprovement reports a refit whose candidate did not beat the
// incumbent by the hysteresis margin and was therefore not installed.
var ErrNoImprovement = errors.New("calib: recalibrated model not better than incumbent")

// Stats is a snapshot of the loop's counters for metrics endpoints.
type Stats struct {
	// Observations counts every sample ever fed to the calibrator.
	Observations int64
	// WindowLen / WindowCap describe the observation log's fill.
	WindowLen, WindowCap int
	// Drift is the current mean relative prediction error; Degraded
	// reports it crossed the threshold with enough samples.
	Drift    float64
	Degraded bool
	// Recalibrations counts installed refits; Rejected counts refits that
	// fit but failed the hysteresis test; Failures counts refits whose
	// regression errored (singular window and the like).
	Recalibrations, Rejected, Failures int64
	// MemSamples counts window observations carrying a usable memory
	// measurement; MemRecalibrations counts installed memory-model refits.
	MemSamples        int
	MemRecalibrations int64
}

// Calibrator closes the feedback loop: it implements core.CompileObserver,
// folding every real compilation into the observation log and the drift
// detector, and — when the installed model has drifted and enough samples
// accumulated — refits the per-method constants over the window and
// installs the result in the registry behind a hysteresis gate.
type Calibrator struct {
	cfg   Config
	log   *Log
	drift *DriftDetector
	reg   *Registry

	// refitMu serializes refits; sinceAttempt (under it) spaces automatic
	// attempts Cooldown observations apart.
	refitMu      sync.Mutex
	sinceAttempt int

	observations      atomic.Int64
	recalibrations    atomic.Int64
	rejected          atomic.Int64
	failures          atomic.Int64
	memRecalibrations atomic.Int64
}

// NewCalibrator returns a calibrator feeding reg. reg may already hold a
// model (the offline seed); an empty registry is also fine — the first
// successful refit installs version 1.
func NewCalibrator(reg *Registry, cfg Config) *Calibrator {
	cfg = cfg.withDefaults()
	return &Calibrator{
		cfg:   cfg,
		log:   NewLog(cfg.WindowSize),
		drift: NewDriftDetector(cfg.DriftWindow, cfg.DriftThreshold, cfg.DriftMinSamples),
		reg:   reg,
	}
}

// Registry returns the model registry the calibrator installs into.
func (c *Calibrator) Registry() *Registry { return c.reg }

// Log returns the observation window.
func (c *Calibrator) Log() *Log { return c.log }

// Drift returns the current mean relative prediction error.
func (c *Calibrator) Drift() float64 { return c.drift.Drift() }

// Degraded reports whether prediction error has crossed the drift
// threshold.
func (c *Calibrator) Degraded() bool { return c.drift.Degraded() }

// Stats snapshots the loop's counters.
func (c *Calibrator) Stats() Stats {
	return Stats{
		Observations:   c.observations.Load(),
		WindowLen:      c.log.Len(),
		WindowCap:      c.log.Cap(),
		Drift:          c.drift.Drift(),
		Degraded:       c.drift.Degraded(),
		Recalibrations: c.recalibrations.Load(),
		Rejected:       c.rejected.Load(),
		Failures:       c.failures.Load(),
		MemSamples:     len(memPoints(c.log.Snapshot())),

		MemRecalibrations: c.memRecalibrations.Load(),
	}
}

// ObserveCompile folds one real compilation into the loop (the
// core.CompileObserver hook): the sample joins the window, its prediction
// error joins the drift window, and — when drift has fired, the window
// holds enough samples, and the cooldown since the last attempt has passed
// — a recalibration runs synchronously. Observations with a non-positive
// measured time are dropped (nothing to learn from them).
func (c *Calibrator) ObserveCompile(o Observation) {
	if o.Actual <= 0 {
		return
	}
	c.observations.Add(1)
	c.log.Add(o)
	predicted := o.Predicted
	if predicted == 0 {
		if m := c.reg.CurrentModel(); m != nil {
			predicted = m.Predict(o.Counts)
		}
	}
	if predicted > 0 {
		c.drift.Observe(stats.RelErr(predicted.Seconds(), o.Actual.Seconds()))
	}
	if c.cfg.DriftThreshold < 0 {
		return
	}

	c.refitMu.Lock()
	c.sinceAttempt++
	due := c.sinceAttempt >= c.cfg.Cooldown &&
		c.log.Len() >= c.minSamples() &&
		(c.drift.Degraded() || c.reg.CurrentModel() == nil)
	if due {
		c.sinceAttempt = 0
	}
	c.refitMu.Unlock()
	if due {
		// Outcome bookkeeping happens inside; an auto refit that fails
		// (singular window) or is rejected simply waits out the next
		// cooldown.
		_, _ = c.Recalibrate("recalibrate")
	}
}

// minSamples is the effective refit gate: the configured minimum, but
// never below what the regression itself needs.
func (c *Calibrator) minSamples() int {
	min := c.cfg.MinSamples
	if floor := int(props.NumJoinMethods) + 1; min < floor {
		min = floor
	}
	return min
}

// Recalibrate refits the model over the current observation window and
// installs it (source tags the registry entry) when it beats the incumbent
// by the hysteresis margin on that same window. It returns the installed
// version, ErrNoImprovement when the candidate lost, ErrNotEnoughSamples
// on a thin window, or the regression's error. A successful install resets
// the drift window.
func (c *Calibrator) Recalibrate(source string) (*ModelVersion, error) {
	c.refitMu.Lock()
	defer c.refitMu.Unlock()

	window := c.log.Snapshot()
	if len(window) < c.minSamples() {
		return nil, ErrNotEnoughSamples
	}
	training := make([]core.TrainingPoint, len(window))
	for i, o := range window {
		training[i] = o.TrainingPoint()
	}
	candidate, err := core.Calibrate(training)
	if err != nil {
		c.failures.Add(1)
		return nil, err
	}
	candErr := windowError(candidate, window)
	incumbent := c.reg.CurrentModel()
	if incumbent != nil {
		if incErr := windowError(incumbent, window); incErr < candErr*c.cfg.Hysteresis {
			c.rejected.Add(1)
			return nil, ErrNoImprovement
		}
	}
	v := c.reg.Install(candidate, source, len(window), candErr)
	c.recalibrations.Add(1)
	c.drift.Reset()
	if c.cfg.OnSwap != nil {
		c.cfg.OnSwap(v)
	}
	return v, nil
}

// RecalibrateMemory refits the memory model over the observations in the
// window that carry a measured peak (real compilations run with a resource
// accountant attached) and installs it as a new registry version, the time
// model riding along unchanged. It returns ErrNotEnoughSamples when fewer
// than four such observations are available — the regression's own floor.
func (c *Calibrator) RecalibrateMemory(source string) (*ModelVersion, error) {
	c.refitMu.Lock()
	defer c.refitMu.Unlock()

	points := memPoints(c.log.Snapshot())
	if len(points) < 4 {
		return nil, ErrNotEnoughSamples
	}
	candidate, err := core.CalibrateMemory(points)
	if err != nil {
		c.failures.Add(1)
		return nil, err
	}
	v := c.reg.InstallMem(candidate, source, len(points))
	c.memRecalibrations.Add(1)
	if c.cfg.OnSwap != nil {
		c.cfg.OnSwap(v)
	}
	return v, nil
}

// memPoints extracts the memory-calibration points from a window snapshot.
func memPoints(window []Observation) []core.MemPoint {
	var points []core.MemPoint
	for _, o := range window {
		if p, ok := o.MemPoint(); ok {
			points = append(points, p)
		}
	}
	return points
}

// windowError is the mean relative error of a model's predictions over a
// window of observations.
func windowError(m *core.TimeModel, window []Observation) float64 {
	var sum float64
	var n int
	for _, o := range window {
		if o.Actual <= 0 {
			continue
		}
		sum += stats.RelErr(m.Predict(o.Counts).Seconds(), o.Actual.Seconds())
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
