package calib

import (
	"testing"

	"cote/internal/core"
	"cote/internal/fingerprint"
	"cote/internal/opt"
	"cote/internal/stats"
	"cote/internal/workload"
)

// The acceptance path of the calibration subsystem, end to end and fully
// deterministic: a deliberately 4x mis-scaled model prices a replayed
// workload whose plan counts come from the estimator and whose "measured"
// durations are synthesized from the true model (no wall clocks anywhere).
// The drift detector must fire, the refit over the observation window must
// cut held-out prediction error by far more than 2x, the registry version
// must advance with the seed still retrievable, and drift must stay quiet
// once the healed model is doing the pricing.
func TestEndToEndCalibrationConvergence(t *testing.T) {
	trueModel := model(5, 2, 4, 4200)
	seed := model(20, 8, 16, 16800) // every coefficient x4
	reg := NewRegistry(0)
	reg.Install(seed, "seed", 0, 0)
	// Manual refits so the test can observe the drift signal itself rather
	// than racing the auto path to it.
	cal := NewCalibrator(reg, Config{DriftThreshold: -1})

	// Plan counts are the estimator's (deterministic per query and level);
	// two levels per query decorrelate the per-method counts exactly as the
	// offline calibration workloads do.
	collect := func(w *workload.Workload) []Observation {
		t.Helper()
		var out []Observation
		for _, q := range w.Queries {
			for _, level := range []opt.Level{opt.LevelHighInner2, opt.LevelMediumLeftDeep} {
				est, err := core.EstimatePlans(q.Block, core.Options{Level: level})
				if err != nil {
					t.Fatalf("estimate %s: %v", q.Name, err)
				}
				o := syntheticObs(trueModel, nil, est.Counts)
				o.Level = level
				o.Fingerprint = fingerprint.Of(q.Block)
				out = append(out, o)
			}
		}
		return out
	}
	replay := append(collect(workload.Linear(1)), collect(workload.Random(42, 12, 10, 1))...)
	heldOut := collect(workload.Real1(1))
	meanErr := func(m *core.TimeModel) float64 {
		var sum float64
		for _, h := range heldOut {
			sum += stats.RelErr(m.Predict(h.Counts).Seconds(), h.Actual.Seconds())
		}
		return sum / float64(len(heldOut))
	}

	seedErr := meanErr(seed)
	if seedErr < 1 {
		t.Fatalf("mis-scaled seed only %.0f%% off; the fixture lost its point", seedErr*100)
	}

	// Phase 1: the mis-scaled model prices the replay; drift must fire.
	for _, o := range replay {
		o.Predicted = reg.CurrentModel().Predict(o.Counts)
		cal.ObserveCompile(o)
	}
	if !cal.Degraded() {
		t.Fatalf("drift detector silent under a 4x mis-scaled model (drift %.2f)", cal.Drift())
	}

	// Phase 2: refit over the window.
	v, err := cal.Recalibrate("recalibrate")
	if err != nil {
		t.Fatalf("recalibrate: %v", err)
	}
	if v.Version != 2 || reg.Version() != 2 {
		t.Fatalf("registry at v%d after refit, want 2", reg.Version())
	}
	refitErr := meanErr(reg.CurrentModel())
	if refitErr > seedErr/2 {
		t.Fatalf("held-out error %.1f%% -> %.1f%%: improved less than 2x", seedErr*100, refitErr*100)
	}
	if old, ok := reg.Get(1); !ok || *old.Model != *seed {
		t.Fatal("seed version no longer retrievable after recalibration")
	}

	// Phase 3: the healed model prices the same replay; drift stays quiet.
	for _, o := range replay {
		o.Predicted = reg.CurrentModel().Predict(o.Counts)
		cal.ObserveCompile(o)
	}
	if cal.Degraded() {
		t.Fatalf("drift fired under the recalibrated model (drift %.2f)", cal.Drift())
	}
	if cal.Drift() > DefaultDriftThreshold/2 {
		t.Fatalf("residual drift %.2f suspiciously high after convergence", cal.Drift())
	}
}
