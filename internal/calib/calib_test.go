package calib

import (
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"cote/internal/core"
	"cote/internal/props"
)

// counts builds a PlanCounts from per-method values.
func counts(mg, nl, hs int) core.PlanCounts {
	var p core.PlanCounts
	p.ByMethod[props.MGJN] = mg
	p.ByMethod[props.NLJN] = nl
	p.ByMethod[props.HSJN] = hs
	return p
}

// model builds a TimeModel from its constants.
func model(cm, cn, ch, c0 float64) *core.TimeModel {
	m := &core.TimeModel{Tinst: 1e-9, C0: c0}
	m.C[props.MGJN] = cm
	m.C[props.NLJN] = cn
	m.C[props.HSJN] = ch
	return m
}

// syntheticObs prices counts with the current model (when any) and
// synthesizes the measured time from the true model — the deterministic
// replay pattern the end-to-end test and the cotebench calib figure use.
func syntheticObs(trueModel *core.TimeModel, current *core.TimeModel, c core.PlanCounts) Observation {
	o := Observation{Counts: c, Actual: trueModel.Predict(c)}
	if current != nil {
		o.Predicted = current.Predict(c)
	}
	return o
}

// varied returns n linearly independent-ish count vectors, enough to keep
// the refit regression well conditioned.
func varied(n int) []core.PlanCounts {
	out := make([]core.PlanCounts, n)
	for i := range out {
		out[i] = counts(1000+i*137, 500+(i%5)*211, 200+(i%3)*97)
	}
	return out
}

func TestLogRingBuffer(t *testing.T) {
	l := NewLog(4)
	if l.Cap() != 4 || l.Len() != 0 {
		t.Fatalf("fresh log: len %d cap %d", l.Len(), l.Cap())
	}
	add := func(actual int) {
		l.Add(Observation{Actual: time.Duration(actual)})
	}
	add(1)
	add(2)
	add(3)
	got := l.Snapshot()
	if len(got) != 3 || got[0].Actual != 1 || got[2].Actual != 3 {
		t.Fatalf("partial window snapshot: %v", got)
	}
	add(4)
	add(5) // evicts 1
	add(6) // evicts 2
	got = l.Snapshot()
	if len(got) != 4 {
		t.Fatalf("full window len %d, want 4", len(got))
	}
	for i, want := range []time.Duration{3, 4, 5, 6} {
		if got[i].Actual != want {
			t.Fatalf("snapshot[%d] = %v, want %v (oldest first)", i, got[i].Actual, want)
		}
	}
	if l.Total() != 6 {
		t.Fatalf("total %d, want 6", l.Total())
	}
	l.Reset()
	if l.Len() != 0 || len(l.Snapshot()) != 0 {
		t.Fatal("reset did not empty the window")
	}
	if l.Total() != 6 {
		t.Fatal("reset must not clear the lifetime total")
	}
}

func TestDriftDetector(t *testing.T) {
	d := NewDriftDetector(8, 0.5, 4)
	// Huge errors below the sample floor must not fire.
	d.Observe(3)
	d.Observe(3)
	d.Observe(3)
	if d.Degraded() {
		t.Fatal("degraded below minSamples")
	}
	d.Observe(3)
	if !d.Degraded() {
		t.Fatalf("not degraded at mean 3.0 > 0.5 with %d samples", d.N())
	}
	// The window rolls: enough accurate predictions wash the spike out.
	for i := 0; i < 8; i++ {
		d.Observe(0.01)
	}
	if d.Degraded() {
		t.Fatalf("still degraded after window turned over (drift %v)", d.Drift())
	}
	if got := d.Drift(); got < 0.009 || got > 0.011 {
		t.Fatalf("drift %v, want ~0.01", got)
	}
}

func TestDriftDetectorIgnoresNonFinite(t *testing.T) {
	d := NewDriftDetector(4, 0.5, 2)
	d.Observe(math.NaN())
	d.Observe(math.Inf(1))
	d.Observe(math.Inf(-1))
	if d.N() != 0 || d.Drift() != 0 {
		t.Fatalf("non-finite errors entered the window: n=%d drift=%v", d.N(), d.Drift())
	}
	d.Observe(2)
	d.Observe(2)
	if !d.Degraded() {
		t.Fatal("finite errors after non-finite ones must still count")
	}
}

func TestRegistryVersioningAndRollback(t *testing.T) {
	r := NewRegistry(3)
	if r.CurrentModel() != nil || r.Version() != 0 {
		t.Fatal("empty registry must provide no model")
	}
	v1 := r.Install(model(5, 2, 4, 100), "seed", 0, 0)
	v2 := r.Install(model(6, 1, 2, 100), "calibrate", 12, 0.1)
	if v1.Version != 1 || v2.Version != 2 || r.Version() != 2 {
		t.Fatalf("versions %d,%d current %d", v1.Version, v2.Version, r.Version())
	}
	if r.CurrentModel() != v2.Model {
		t.Fatal("current model is not the last installed")
	}

	rb, err := r.Rollback(1)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Version != 3 {
		t.Fatalf("rollback produced v%d, want a NEW version 3", rb.Version)
	}
	if rb.Source != "rollback(v1)" {
		t.Fatalf("rollback source %q", rb.Source)
	}
	if *rb.Model != *v1.Model {
		t.Fatalf("rollback model %+v != v1 model %+v", rb.Model, v1.Model)
	}
	if rb.Model == v1.Model {
		t.Fatal("rollback must copy the model, not alias the retained snapshot")
	}

	// retain=3: installing a 4th version evicts v1; rolling back to it fails.
	r.Install(model(1, 1, 1, 1), "api", 0, 0)
	if _, ok := r.Get(1); ok {
		t.Fatal("v1 still retained past the retention bound")
	}
	if _, err := r.Rollback(1); err == nil {
		t.Fatal("rollback to an evicted version must error")
	}
	hist := r.History()
	if len(hist) != 3 || hist[0].Version != 2 || hist[2].Version != 4 {
		t.Fatalf("history %v", hist)
	}
}

func TestPersistenceRoundTripAndTinstRescale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	r := NewRegistry(0)
	r.Install(model(5, 2, 4, 1000), "seed", 0, 0)
	r.Install(model(6, 1, 2, 900), "recalibrate", 32, 0.07)
	if _, err := r.Rollback(1); err != nil {
		t.Fatal(err)
	}

	const savedHost = 2e-9
	if err := r.Save(path, savedHost); err != nil {
		t.Fatal(err)
	}

	// Same host speed: byte-equal models, same current version.
	same, err := Load(path, 0, savedHost)
	if err != nil {
		t.Fatal(err)
	}
	if same.Version() != 3 || *same.CurrentModel() != *r.CurrentModel() {
		t.Fatalf("round trip: v%d %+v", same.Version(), same.CurrentModel())
	}
	if len(same.History()) != 3 {
		t.Fatalf("history lost: %d versions", len(same.History()))
	}
	if v, ok := same.Get(2); !ok || v.Source != "recalibrate" || v.Samples != 32 || v.FitErr != 0.07 {
		t.Fatalf("provenance lost: %+v", v)
	}

	// A 2x slower host: every model's Tinst doubles, constants untouched.
	slower, err := Load(path, 0, 2*savedHost)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range slower.History() {
		orig, ok := r.Get(v.Version)
		if !ok {
			t.Fatalf("version %d missing from source registry", v.Version)
		}
		if got, want := v.Model.Tinst, 2*orig.Model.Tinst; got != want {
			t.Fatalf("v%d Tinst %v, want %v", v.Version, got, want)
		}
		if v.Model.C != orig.Model.C || v.Model.C0 != orig.Model.C0 {
			t.Fatalf("v%d constants changed by rescale", v.Version)
		}
	}
	// Predictions scale accordingly.
	c := counts(100, 100, 100)
	if got, want := slower.CurrentModel().Predict(c), 2*r.CurrentModel().Predict(c); got != want {
		t.Fatalf("rescaled prediction %v, want %v", got, want)
	}

	// A new version installed after load keeps numbering monotonic.
	if v := same.Install(model(1, 1, 1, 1), "api", 0, 0); v.Version != 4 {
		t.Fatalf("post-load install v%d, want 4", v.Version)
	}
}

func TestLoadMissingFileIsEmptyRegistry(t *testing.T) {
	r, err := Load(filepath.Join(t.TempDir(), "nope.json"), 0, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if r.CurrentModel() != nil || r.Version() != 0 {
		t.Fatal("missing file must yield an empty registry")
	}
}

// A drifted model triggers an automatic refit that converges on the true
// model; the drift window resets so the fresh model starts clean.
func TestCalibratorAutoRecalibratesOnDrift(t *testing.T) {
	trueModel := model(5, 2, 4, 4000)
	seed := model(20, 8, 16, 16000) // 4x everything
	reg := NewRegistry(0)
	reg.Install(seed, "seed", 0, 0)
	cal := NewCalibrator(reg, Config{})

	for _, c := range varied(DefaultMinSamples) {
		cal.ObserveCompile(syntheticObs(trueModel, reg.CurrentModel(), c))
	}
	st := cal.Stats()
	if st.Recalibrations != 1 {
		t.Fatalf("recalibrations %d, want 1 (drift %v, degraded %v)", st.Recalibrations, st.Drift, st.Degraded)
	}
	if reg.Version() != 2 {
		t.Fatalf("version %d, want 2", reg.Version())
	}
	if src := reg.Current().Source; src != "recalibrate" {
		t.Fatalf("source %q", src)
	}
	if st.Drift != 0 {
		t.Fatalf("drift window not reset after install: %v", st.Drift)
	}
	// The refit must predict the held-out point far better than the seed.
	held := counts(5000, 2500, 1200)
	want := trueModel.Predict(held)
	if got := reg.CurrentModel().Predict(held); relDiff(got, want) > 0.05 {
		t.Fatalf("refit predicts %v for true %v", got, want)
	}
	// And the old version remains retrievable.
	if v, ok := reg.Get(1); !ok || *v.Model != *seed {
		t.Fatal("seed version lost after recalibration")
	}
}

// An accurate incumbent must not be churned by a refit that is no better:
// the hysteresis gate rejects the candidate.
func TestCalibratorHysteresisRejectsSideways(t *testing.T) {
	trueModel := model(5, 2, 4, 4000)
	reg := NewRegistry(0)
	cal := NewCalibrator(reg, Config{DriftThreshold: -1}) // manual refits only

	// Noisy observations (alternating ±15%) so window error is nonzero.
	for i, c := range varied(2 * DefaultMinSamples) {
		o := syntheticObs(trueModel, nil, c)
		if i%2 == 0 {
			o.Actual = o.Actual * 115 / 100
		} else {
			o.Actual = o.Actual * 85 / 100
		}
		cal.ObserveCompile(o)
	}
	if _, err := cal.Recalibrate("recalibrate"); err != nil {
		t.Fatalf("first fit into an empty registry: %v", err)
	}
	// Same window, same data: the candidate cannot beat the incumbent by
	// the hysteresis factor.
	if _, err := cal.Recalibrate("recalibrate"); !errors.Is(err, ErrNoImprovement) {
		t.Fatalf("sideways refit: %v, want ErrNoImprovement", err)
	}
	st := cal.Stats()
	if st.Recalibrations != 1 || st.Rejected != 1 {
		t.Fatalf("recalibrations %d rejected %d, want 1/1", st.Recalibrations, st.Rejected)
	}
	if reg.Version() != 1 {
		t.Fatalf("version churned to %d", reg.Version())
	}
}

func TestCalibratorCooldownSpacesAttempts(t *testing.T) {
	trueModel := model(5, 2, 4, 4000)
	reg := NewRegistry(0)
	cal := NewCalibrator(reg, Config{MinSamples: 5, Cooldown: 10})

	cs := varied(10)
	for i := 0; i < 9; i++ {
		cal.ObserveCompile(syntheticObs(trueModel, reg.CurrentModel(), cs[i]))
	}
	if reg.Version() != 0 {
		t.Fatalf("refit before the cooldown elapsed (v%d)", reg.Version())
	}
	cal.ObserveCompile(syntheticObs(trueModel, reg.CurrentModel(), cs[9]))
	if reg.Version() != 1 {
		t.Fatalf("no refit once cooldown and samples were satisfied (v%d)", reg.Version())
	}
}

func TestCalibratorNotEnoughSamples(t *testing.T) {
	cal := NewCalibrator(NewRegistry(0), Config{})
	cal.ObserveCompile(Observation{Counts: counts(10, 10, 10), Actual: time.Millisecond})
	if _, err := cal.Recalibrate("recalibrate"); !errors.Is(err, ErrNotEnoughSamples) {
		t.Fatalf("thin window: %v, want ErrNotEnoughSamples", err)
	}
}

// Observations with nothing measured must be dropped, not logged.
func TestCalibratorDropsNonPositiveActual(t *testing.T) {
	cal := NewCalibrator(NewRegistry(0), Config{})
	cal.ObserveCompile(Observation{Counts: counts(10, 10, 10)})
	cal.ObserveCompile(Observation{Counts: counts(10, 10, 10), Actual: -time.Second})
	if st := cal.Stats(); st.Observations != 0 || st.WindowLen != 0 {
		t.Fatalf("unmeasured observations were logged: %+v", st)
	}
}

func relDiff(a, b time.Duration) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return 0
	}
	return float64(d) / float64(b)
}
