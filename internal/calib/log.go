// Package calib is the online model-calibration subsystem: a bounded
// observation log fed by real compilations, a drift detector tracking how
// far the installed TimeModel's predictions have wandered from measured
// compile times, a recalibrator that refits the per-join-method constants
// over the observation window, and a versioned model registry with JSON
// persistence and rollback. Together they close the feedback loop the paper
// leaves offline (Section 4 refits per DB2 release; this refits per
// observation window).
package calib

import (
	"sync"

	"cote/internal/core"
)

// Observation is one real-compilation sample; see core.CompileObservation.
type Observation = core.CompileObservation

// DefaultLogCapacity bounds the observation window when no capacity is
// configured.
const DefaultLogCapacity = 256

// Log is a bounded, goroutine-safe ring buffer of compile observations —
// the calibration window. Once full, each new observation overwrites the
// oldest, so the window tracks the recent workload rather than the whole
// history.
type Log struct {
	mu    sync.Mutex
	buf   []Observation
	next  int
	full  bool
	total int64
}

// NewLog returns an empty log holding at most capacity observations
// (DefaultLogCapacity when capacity <= 0).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultLogCapacity
	}
	return &Log{buf: make([]Observation, capacity)}
}

// Add appends one observation, evicting the oldest when full.
func (l *Log) Add(o Observation) {
	l.mu.Lock()
	l.buf[l.next] = o
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.total++
	l.mu.Unlock()
}

// Snapshot returns the window's observations, oldest first. The slice is a
// copy; callers may keep it.
func (l *Log) Snapshot() []Observation {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]Observation(nil), l.buf[:l.next]...)
	}
	out := make([]Observation, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Len returns the number of observations currently in the window.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}

// Cap returns the window capacity.
func (l *Log) Cap() int { return len(l.buf) }

// Total returns how many observations were ever added, evicted ones
// included.
func (l *Log) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Reset empties the window (the total keeps counting).
func (l *Log) Reset() {
	l.mu.Lock()
	l.next = 0
	l.full = false
	l.mu.Unlock()
}
