// Package modelio is the model-file and calibration plumbing shared by the
// cote commands (coted, mop, explain, cotebench): one flag set for loading
// a versioned model registry from disk (-model-file, host-rescaled via the
// Tinst micro-benchmark) and calibrating on a named built-in workload
// (-calibrate), so a new model flag lands in one place instead of four.
package modelio

import (
	"flag"
	"fmt"

	"cote/internal/calib"
	"cote/internal/core"
	"cote/internal/cost"
	"cote/internal/opt"
	"cote/internal/workload"
)

// WorkloadNames lists the built-in calibration workloads for flag help and
// error messages.
const WorkloadNames = "linear, star, random, real1, real2, tpch"

// NamedWorkload builds a built-in workload by wire name; nodes selects the
// serial (1) or 4-node parallel variant. Each call builds fresh query
// blocks, so concurrent users never share state.
func NamedWorkload(name string, nodes int) (*workload.Workload, error) {
	switch name {
	case "linear":
		return workload.Linear(nodes), nil
	case "star":
		return workload.Star(nodes), nil
	case "random":
		return workload.Random(42, 12, 10, nodes), nil
	case "real1":
		return workload.Real1(nodes), nil
	case "real2":
		return workload.Real2(nodes), nil
	case "tpch":
		return workload.TPCH(nodes), nil
	}
	return nil, fmt.Errorf("unknown workload %q (want %s)", name, WorkloadNames)
}

// TrainOn compiles a named workload for real at two optimization levels
// (decorrelating the per-method counts) and fits the time model, returning
// it with the training-point count.
func TrainOn(name string, nodes int) (*core.TimeModel, int, error) {
	w, err := NamedWorkload(name, nodes)
	if err != nil {
		return nil, 0, err
	}
	cfg := ConfigFor(nodes)
	var training []core.TrainingPoint
	for _, q := range w.Queries {
		for _, level := range []opt.Level{opt.LevelHighInner2, opt.LevelMediumLeftDeep} {
			res, err := opt.Optimize(q.Block, opt.Options{Level: level, Config: cfg})
			if err != nil {
				return nil, 0, fmt.Errorf("calibrate %s: %w", q.Name, err)
			}
			training = append(training, core.TrainingPointFrom(res.TotalCounters(), res.Elapsed))
		}
	}
	m, err := core.Calibrate(training)
	if err != nil {
		return nil, 0, err
	}
	return m, len(training), nil
}

// Flags bundles the model flags every command shares. Register them on the
// command's flag set, parse, then Resolve/LoadRegistry.
type Flags struct {
	// ModelFile is -model-file: a JSON model registry, loaded at startup
	// and (for the daemon) rewritten on every model change. Missing files
	// are created on first save.
	ModelFile string
	// Calibrate is -calibrate: a named workload to fit a model on at
	// startup.
	Calibrate string

	// hostTinst caches the startup micro-benchmark so load and save use
	// the same measurement.
	hostTinst float64
}

// Register installs -model-file and -calibrate on fs. calibrateDefault
// seeds the -calibrate value (commands that always need a model pass their
// historical default, the daemon passes "").
func (f *Flags) Register(fs *flag.FlagSet, calibrateDefault string) {
	fs.StringVar(&f.ModelFile, "model-file", "",
		"JSON model-registry file: loaded at startup (predictions host-rescaled via a Tinst micro-benchmark) and persisted on model changes")
	fs.StringVar(&f.Calibrate, "calibrate", calibrateDefault,
		"calibrate the time model on this workload at startup ("+WorkloadNames+"; empty = don't)")
}

// HostTinst returns the host's measured Tinst, micro-benchmarking it on
// first use.
func (f *Flags) HostTinst() float64 {
	if f.hostTinst == 0 {
		f.hostTinst = calib.MeasureTinst()
	}
	return f.hostTinst
}

// LoadRegistry loads -model-file into a registry (an empty registry when
// the flag is unset or the file does not exist yet), rescaling persisted
// models to this host's speed.
func (f *Flags) LoadRegistry(retain int) (*calib.Registry, error) {
	if f.ModelFile == "" {
		return calib.NewRegistry(retain), nil
	}
	reg, err := calib.Load(f.ModelFile, retain, f.HostTinst())
	if err != nil {
		return nil, err
	}
	return reg, nil
}

// Save persists the registry back to -model-file; a no-op when the flag is
// unset.
func (f *Flags) Save(reg *calib.Registry) error {
	if f.ModelFile == "" {
		return nil
	}
	return reg.Save(f.ModelFile, f.HostTinst())
}

// Resolve yields the model a one-shot command should price with: the
// registry's current model when -model-file holds one, else a fresh fit on
// the -calibrate workload (installed into the returned registry), else no
// model at all. The registry is returned so the command can Save it.
func (f *Flags) Resolve(nodes int) (*core.TimeModel, *calib.Registry, error) {
	reg, err := f.LoadRegistry(0)
	if err != nil {
		return nil, nil, err
	}
	if m := reg.CurrentModel(); m != nil {
		return m, reg, nil
	}
	if f.Calibrate == "" {
		return nil, reg, nil
	}
	m, points, err := TrainOn(f.Calibrate, nodes)
	if err != nil {
		return nil, nil, err
	}
	reg.Install(m, "calibrate", points, 0)
	return m, reg, nil
}

// ConfigFor maps a node count to the cost configuration, mirroring the
// workload constructors' serial/parallel split.
func ConfigFor(nodes int) *cost.Config {
	if nodes > 1 {
		return cost.Parallel4
	}
	return cost.Serial
}
