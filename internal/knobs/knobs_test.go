package knobs

import (
	"math"
	"testing"

	"cote/internal/cost"
)

func TestResolveDefaults(t *testing.T) {
	s, err := Set{}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Config != cost.Serial {
		t.Errorf("Config = %v, want cost.Serial", s.Config)
	}
	if s.Parallelism != 1 {
		t.Errorf("Parallelism = %d, want 1", s.Parallelism)
	}
	if s.BudgetFactor != 0 || s.MemBudget != 0 {
		t.Errorf("budgets = %v/%v, want disabled", s.BudgetFactor, s.MemBudget)
	}
}

func TestResolveKeepsExplicitValues(t *testing.T) {
	in := Set{Config: cost.Parallel4, Parallelism: 8, BudgetFactor: 2.5, MemBudget: 1 << 20}
	s, err := in.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if s != in {
		t.Errorf("Resolve(%+v) = %+v, want unchanged", in, s)
	}
}

func TestResolveClampsNegatives(t *testing.T) {
	s, err := Set{Parallelism: -3, BudgetFactor: -1, MemBudget: -5}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Parallelism != 1 || s.BudgetFactor != 0 || s.MemBudget != 0 {
		t.Errorf("Resolve clamped to %+v", s)
	}
}

func TestResolveRejectsNonFinite(t *testing.T) {
	if _, err := (Set{BudgetFactor: math.NaN()}).Resolve(); err == nil {
		t.Error("NaN budget factor must not resolve")
	}
	if _, err := (Set{BudgetFactor: math.Inf(1)}).Resolve(); err == nil {
		t.Error("Inf budget factor must not resolve")
	}
}

func TestHelpers(t *testing.T) {
	if CostConfig(nil) != cost.Serial {
		t.Error("CostConfig(nil) != cost.Serial")
	}
	if CostConfig(cost.Parallel4) != cost.Parallel4 {
		t.Error("CostConfig must pass explicit configs through")
	}
	if Parallelism(0) != 1 || Parallelism(4) != 4 {
		t.Error("Parallelism floor broken")
	}
	if BudgetFactor(math.NaN()) != 0 {
		t.Error("BudgetFactor(NaN) must disable")
	}
	if MemBudget(-1) != 0 || MemBudget(42) != 42 {
		t.Error("MemBudget clamp broken")
	}
}

func TestMustResolvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustResolve must panic on invalid input")
		}
	}()
	MustResolve(Set{BudgetFactor: math.Inf(1)})
}
