// Package knobs is the single defaulting and validation path for the
// tuning knobs shared across the optimizer layers. Before it existed,
// internal/opt, internal/core, internal/plangen and internal/service each
// re-implemented the same defaults (nil cost config means serial,
// parallelism floors at one, budget knobs disable at zero); drift between
// those copies is exactly the kind of bug a cross-cutting refactor invites,
// so the copies now all call here.
package knobs

import (
	"fmt"
	"math"

	"cote/internal/cost"
)

// Set is the cross-layer knob set in its validated, fully-defaulted form.
// Layers embed the raw knobs in their own Options/Config structs (their
// shapes differ too much to share) and resolve them through this one path.
type Set struct {
	// Config is the cost configuration; nil defaults to serial.
	Config *cost.Config
	// Parallelism is the intra-query worker fan-out, floored at 1 (serial).
	Parallelism int
	// BudgetFactor scales the COTE-predicted plan count into the
	// generated-plan abort budget; zero (or negative) disables the abort.
	BudgetFactor float64
	// MemBudget bounds a compile's measured optimizer memory in bytes;
	// zero (or negative) disables the memory abort.
	MemBudget int64
}

// Resolve returns the set with every default applied, or an error for
// values no defaulting can repair.
func (s Set) Resolve() (Set, error) {
	if math.IsNaN(s.BudgetFactor) || math.IsInf(s.BudgetFactor, 0) {
		return s, fmt.Errorf("knobs: budget factor must be finite, got %v", s.BudgetFactor)
	}
	s.Config = CostConfig(s.Config)
	s.Parallelism = Parallelism(s.Parallelism)
	s.BudgetFactor = BudgetFactor(s.BudgetFactor)
	s.MemBudget = MemBudget(s.MemBudget)
	return s, nil
}

// MustResolve is Resolve for the internal call sites whose inputs are
// already finite by construction; it panics on a validation error.
func MustResolve(s Set) Set {
	out, err := s.Resolve()
	if err != nil {
		panic(err)
	}
	return out
}

// CostConfig returns cfg, or the serial configuration when nil — the
// default previously copied into opt, core and plangen.
func CostConfig(cfg *cost.Config) *cost.Config {
	if cfg == nil {
		return cost.Serial
	}
	return cfg
}

// Parallelism floors the worker fan-out at 1 (the serial driver).
func Parallelism(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// BudgetFactor clamps the plan-budget slack factor: non-positive disables.
func BudgetFactor(f float64) float64 {
	if f <= 0 || math.IsNaN(f) {
		return 0
	}
	return f
}

// MemBudget clamps the memory budget: non-positive disables.
func MemBudget(n int64) int64 {
	if n < 0 {
		return 0
	}
	return n
}
