package catalog

// Warehouse1 builds the schema behind the "real1" customer workload: a
// retail data warehouse with two fact tables and a ring of dimensions. The
// paper's real1 workload (8 complex data-warehouse queries) and its random
// workload both run over this schema. When nodes > 1 the fact tables are
// hash partitioned on their most frequent join keys and the dimensions on
// their primary keys, mimicking a tuned shared-nothing layout.
func Warehouse1(nodes int) *Catalog {
	b := NewBuilder("warehouse1")

	b.Table("sales", 20_000_000).
		Column("s_id", 20_000_000).
		Column("s_store_id", 1_000).
		Column("s_prod_id", 50_000).
		Column("s_cust_id", 2_000_000).
		Column("s_date_id", 1_825).
		Column("s_promo_id", 500).
		Column("s_emp_id", 20_000).
		Column("s_qty", 100).
		Column("s_amount", 1_000_000).
		Column("s_discount", 50).
		Index("pk_sales", true, "s_id").
		Index("ix_sales_prod_date", false, "s_prod_id", "s_date_id").
		Index("ix_sales_cust", false, "s_cust_id").
		ForeignKey("store", []string{"s_store_id"}, []string{"st_id"}).
		ForeignKey("product", []string{"s_prod_id"}, []string{"p_id"}).
		ForeignKey("customer", []string{"s_cust_id"}, []string{"c_id"}).
		ForeignKey("datedim", []string{"s_date_id"}, []string{"d_id"}).
		ForeignKey("promotion", []string{"s_promo_id"}, []string{"pr_id"}).
		ForeignKey("employee", []string{"s_emp_id"}, []string{"e_id"})

	b.Table("returns", 1_200_000).
		Column("r_id", 1_200_000).
		Column("r_sale_id", 1_200_000).
		Column("r_prod_id", 48_000).
		Column("r_cust_id", 500_000).
		Column("r_date_id", 1_825).
		Column("r_reason_id", 60).
		Column("r_amount", 300_000).
		Index("pk_returns", true, "r_id").
		Index("ix_returns_sale", false, "r_sale_id").
		ForeignKey("sales", []string{"r_sale_id"}, []string{"s_id"}).
		ForeignKey("product", []string{"r_prod_id"}, []string{"p_id"}).
		ForeignKey("customer", []string{"r_cust_id"}, []string{"c_id"}).
		ForeignKey("datedim", []string{"r_date_id"}, []string{"d_id"}).
		ForeignKey("reason", []string{"r_reason_id"}, []string{"rs_id"})

	b.Table("inventory", 9_000_000).
		Column("i_prod_id", 50_000).
		Column("i_wh_id", 40).
		Column("i_date_id", 1_825).
		Column("i_on_hand", 5_000).
		Index("pk_inventory", true, "i_prod_id", "i_wh_id", "i_date_id").
		ForeignKey("product", []string{"i_prod_id"}, []string{"p_id"}).
		ForeignKey("warehouse", []string{"i_wh_id"}, []string{"w_id"}).
		ForeignKey("datedim", []string{"i_date_id"}, []string{"d_id"})

	b.Table("store", 1_000).
		Column("st_id", 1_000).
		Column("st_name", 1_000).
		Column("st_city", 250).
		Column("st_state", 50).
		Column("st_region_id", 10).
		Column("st_sqft", 900).
		Index("pk_store", true, "st_id").
		ForeignKey("region", []string{"st_region_id"}, []string{"rg_id"})

	b.Table("product", 50_000).
		Column("p_id", 50_000).
		Column("p_name", 50_000).
		Column("p_brand_id", 800).
		Column("p_category", 40).
		Column("p_class", 120).
		Column("p_price", 10_000).
		Column("p_supp_id", 2_000).
		Index("pk_product", true, "p_id").
		Index("ix_product_brand", false, "p_brand_id").
		ForeignKey("supplier", []string{"p_supp_id"}, []string{"sp_id"})

	b.Table("customer", 2_000_000).
		Column("c_id", 2_000_000).
		Column("c_name", 2_000_000).
		Column("c_city", 5_000).
		Column("c_state", 50).
		Column("c_segment", 8).
		Column("c_birth_year", 90).
		Column("c_first_sale_date_id", 1_825).
		Index("pk_customer", true, "c_id").
		ForeignKey("datedim", []string{"c_first_sale_date_id"}, []string{"d_id"})

	b.Table("datedim", 1_825).
		Column("d_id", 1_825).
		Column("d_date", 1_825).
		Column("d_month", 60).
		Column("d_quarter", 20).
		Column("d_year", 5).
		Column("d_dow", 7).
		Column("d_holiday", 2).
		Index("pk_datedim", true, "d_id")

	b.Table("promotion", 500).
		Column("pr_id", 500).
		Column("pr_name", 500).
		Column("pr_channel", 6).
		Column("pr_start_date_id", 400).
		Column("pr_end_date_id", 400).
		Index("pk_promotion", true, "pr_id").
		ForeignKey("datedim", []string{"pr_start_date_id"}, []string{"d_id"})

	b.Table("employee", 20_000).
		Column("e_id", 20_000).
		Column("e_name", 20_000).
		Column("e_store_id", 1_000).
		Column("e_mgr_id", 2_500).
		Column("e_title", 30).
		Index("pk_employee", true, "e_id").
		ForeignKey("store", []string{"e_store_id"}, []string{"st_id"})

	b.Table("supplier", 2_000).
		Column("sp_id", 2_000).
		Column("sp_name", 2_000).
		Column("sp_state", 50).
		Column("sp_rating", 5).
		Index("pk_supplier", true, "sp_id")

	b.Table("warehouse", 40).
		Column("w_id", 40).
		Column("w_name", 40).
		Column("w_state", 30).
		Column("w_sqft", 40).
		Index("pk_warehouse", true, "w_id")

	b.Table("region", 10).
		Column("rg_id", 10).
		Column("rg_name", 10).
		Index("pk_region", true, "rg_id")

	b.Table("reason", 60).
		Column("rs_id", 60).
		Column("rs_desc", 60).
		Index("pk_reason", true, "rs_id")

	c := b.Build()
	if nodes > 1 {
		part := func(table string, cols ...string) {
			c.MustTable(table).Partitioning = &Partitioning{Columns: cols, Nodes: nodes}
		}
		part("sales", "s_cust_id")
		part("returns", "r_cust_id")
		part("inventory", "i_prod_id")
		part("customer", "c_id")
		part("product", "p_id")
		part("employee", "e_id")
	}
	return c
}

// Warehouse2 builds the schema behind the "real2" customer workload: a
// larger financial/orders warehouse with enough dimensions that a single
// query can join 14 tables (the paper's headline real2 query joins 14 tables
// constructed from 3 views). When nodes > 1 the large tables are hash
// partitioned.
func Warehouse2(nodes int) *Catalog {
	b := NewBuilder("warehouse2")

	b.Table("orders", 40_000_000).
		Column("o_id", 40_000_000).
		Column("o_acct_id", 3_000_000).
		Column("o_prod_id", 80_000).
		Column("o_branch_id", 2_000).
		Column("o_date_id", 2_600).
		Column("o_channel_id", 12).
		Column("o_status", 6).
		Column("o_amount", 2_000_000).
		Column("o_units", 500).
		Index("pk_orders", true, "o_id").
		Index("ix_orders_acct_date", false, "o_acct_id", "o_date_id").
		ForeignKey("account", []string{"o_acct_id"}, []string{"a_id"}).
		ForeignKey("product", []string{"o_prod_id"}, []string{"p_id"}).
		ForeignKey("branch", []string{"o_branch_id"}, []string{"b_id"}).
		ForeignKey("datedim", []string{"o_date_id"}, []string{"d_id"}).
		ForeignKey("channel", []string{"o_channel_id"}, []string{"ch_id"})

	b.Table("orderline", 120_000_000).
		Column("ol_order_id", 40_000_000).
		Column("ol_line_no", 10).
		Column("ol_prod_id", 80_000).
		Column("ol_qty", 200).
		Column("ol_price", 900_000).
		Column("ol_cost", 800_000).
		Index("pk_orderline", true, "ol_order_id", "ol_line_no").
		ForeignKey("orders", []string{"ol_order_id"}, []string{"o_id"}).
		ForeignKey("product", []string{"ol_prod_id"}, []string{"p_id"})

	b.Table("payments", 55_000_000).
		Column("pay_id", 55_000_000).
		Column("pay_order_id", 38_000_000).
		Column("pay_acct_id", 3_000_000).
		Column("pay_date_id", 2_600).
		Column("pay_method_id", 9).
		Column("pay_amount", 1_500_000).
		Index("pk_payments", true, "pay_id").
		Index("ix_payments_order", false, "pay_order_id").
		ForeignKey("orders", []string{"pay_order_id"}, []string{"o_id"}).
		ForeignKey("account", []string{"pay_acct_id"}, []string{"a_id"}).
		ForeignKey("datedim", []string{"pay_date_id"}, []string{"d_id"}).
		ForeignKey("paymethod", []string{"pay_method_id"}, []string{"pm_id"})

	b.Table("account", 3_000_000).
		Column("a_id", 3_000_000).
		Column("a_cust_id", 2_500_000).
		Column("a_type", 8).
		Column("a_open_date_id", 2_600).
		Column("a_branch_id", 2_000).
		Column("a_balance", 800_000).
		Index("pk_account", true, "a_id").
		ForeignKey("customer", []string{"a_cust_id"}, []string{"cu_id"}).
		ForeignKey("branch", []string{"a_branch_id"}, []string{"b_id"}).
		ForeignKey("datedim", []string{"a_open_date_id"}, []string{"d_id"})

	b.Table("customer", 2_500_000).
		Column("cu_id", 2_500_000).
		Column("cu_name", 2_500_000).
		Column("cu_city", 8_000).
		Column("cu_state", 50).
		Column("cu_segment", 10).
		Column("cu_income_band", 20).
		Index("pk_customer", true, "cu_id")

	b.Table("product", 80_000).
		Column("p_id", 80_000).
		Column("p_name", 80_000).
		Column("p_family", 60).
		Column("p_line", 300).
		Column("p_vendor_id", 1_200).
		Column("p_unit_cost", 30_000).
		Index("pk_product", true, "p_id").
		ForeignKey("vendor", []string{"p_vendor_id"}, []string{"v_id"})

	b.Table("branch", 2_000).
		Column("b_id", 2_000).
		Column("b_name", 2_000).
		Column("b_city", 600).
		Column("b_region_id", 15).
		Column("b_tier", 4).
		Index("pk_branch", true, "b_id").
		ForeignKey("region", []string{"b_region_id"}, []string{"rg_id"})

	b.Table("datedim", 2_600).
		Column("d_id", 2_600).
		Column("d_date", 2_600).
		Column("d_month", 86).
		Column("d_quarter", 29).
		Column("d_year", 8).
		Column("d_fiscal_period", 96).
		Index("pk_datedim", true, "d_id")

	b.Table("channel", 12).
		Column("ch_id", 12).
		Column("ch_name", 12).
		Index("pk_channel", true, "ch_id")

	b.Table("paymethod", 9).
		Column("pm_id", 9).
		Column("pm_name", 9).
		Index("pk_paymethod", true, "pm_id")

	b.Table("vendor", 1_200).
		Column("v_id", 1_200).
		Column("v_name", 1_200).
		Column("v_country", 40).
		Index("pk_vendor", true, "v_id")

	b.Table("region", 15).
		Column("rg_id", 15).
		Column("rg_name", 15).
		Index("pk_region", true, "rg_id")

	b.Table("exchange", 3_000).
		Column("x_date_id", 2_600).
		Column("x_currency", 30).
		Column("x_rate", 2_900).
		Index("pk_exchange", true, "x_date_id", "x_currency").
		ForeignKey("datedim", []string{"x_date_id"}, []string{"d_id"})

	b.Table("budget", 250_000).
		Column("bg_branch_id", 2_000).
		Column("bg_prod_id", 70_000).
		Column("bg_period", 96).
		Column("bg_target", 200_000).
		Index("pk_budget", true, "bg_branch_id", "bg_prod_id", "bg_period").
		ForeignKey("branch", []string{"bg_branch_id"}, []string{"b_id"}).
		ForeignKey("product", []string{"bg_prod_id"}, []string{"p_id"})

	b.Table("campaign", 900).
		Column("cp_id", 900).
		Column("cp_channel_id", 12).
		Column("cp_start_date_id", 2_000).
		Column("cp_budget", 850).
		Index("pk_campaign", true, "cp_id").
		ForeignKey("channel", []string{"cp_channel_id"}, []string{"ch_id"}).
		ForeignKey("datedim", []string{"cp_start_date_id"}, []string{"d_id"})

	b.Table("contact", 6_000_000).
		Column("ct_id", 6_000_000).
		Column("ct_cust_id", 2_400_000).
		Column("ct_date_id", 2_600).
		Column("ct_campaign_id", 900).
		Column("ct_outcome", 5).
		Index("pk_contact", true, "ct_id").
		ForeignKey("customer", []string{"ct_cust_id"}, []string{"cu_id"}).
		ForeignKey("datedim", []string{"ct_date_id"}, []string{"d_id"}).
		ForeignKey("campaign", []string{"ct_campaign_id"}, []string{"cp_id"})

	c := b.Build()
	if nodes > 1 {
		part := func(table string, cols ...string) {
			c.MustTable(table).Partitioning = &Partitioning{Columns: cols, Nodes: nodes}
		}
		part("orders", "o_acct_id")
		part("orderline", "ol_order_id")
		part("payments", "pay_order_id")
		part("account", "a_id")
		part("customer", "cu_id")
		part("contact", "ct_cust_id")
		part("product", "p_id")
	}
	return c
}
