package catalog

import (
	"strings"
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	c := NewBuilder("db").
		Table("t", 100).
		Column("a", 10).
		Column("b", 1000). // NDV capped to row count
		Index("ix", false, "a", "b").
		Build()

	tab := c.MustTable("t")
	if tab.RowCount != 100 {
		t.Fatalf("RowCount = %v", tab.RowCount)
	}
	if got := tab.MustColumn("b").NDV; got != 100 {
		t.Fatalf("NDV cap: got %v, want 100", got)
	}
	if tab.MustColumn("a").Ordinal != 0 || tab.MustColumn("b").Ordinal != 1 {
		t.Fatal("ordinals wrong")
	}
	if len(tab.Indexes) != 1 || tab.Indexes[0].Columns[1] != "b" {
		t.Fatal("index wrong")
	}
	if !tab.HasColumn("a") || tab.HasColumn("z") {
		t.Fatal("HasColumn wrong")
	}
}

func TestTableLookupErrors(t *testing.T) {
	c := NewBuilder("db").Table("t", 10).Column("a", 5).Build()
	if _, err := c.Table("missing"); err == nil {
		t.Fatal("want error for unknown table")
	}
	if _, err := c.MustTable("t").Column("missing"); err == nil {
		t.Fatal("want error for unknown column")
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"dup table", func() { NewBuilder("x").Table("t", 1).Table("t", 1) }},
		{"dup column", func() { NewBuilder("x").Table("t", 1).Column("a", 1).Column("a", 1) }},
		{"column before table", func() { NewBuilder("x").Column("a", 1) }},
		{"index missing column", func() { NewBuilder("x").Table("t", 1).Index("i", false, "nope") }},
		{"index no columns", func() { NewBuilder("x").Table("t", 1).Index("i", false) }},
		{"partition missing column", func() { NewBuilder("x").Table("t", 1).Partition(4, "nope") }},
		{"partition zero nodes", func() { NewBuilder("x").Table("t", 1).Column("a", 1).Partition(0, "a") }},
		{"fk arity", func() {
			NewBuilder("x").Table("t", 1).Column("a", 1).ForeignKey("r", []string{"a"}, nil)
		}},
		{"fk missing local column", func() {
			NewBuilder("x").Table("t", 1).ForeignKey("r", []string{"nope"}, []string{"b"})
		}},
		{"fk unknown ref table", func() {
			NewBuilder("x").Table("t", 1).Column("a", 1).
				ForeignKey("r", []string{"a"}, []string{"b"}).Build()
		}},
		{"fk unknown ref column", func() {
			b := NewBuilder("x")
			b.Table("r", 1).Column("c", 1)
			b.Table("t", 1).Column("a", 1).ForeignKey("r", []string{"a"}, []string{"nope"})
			b.Build()
		}},
		{"reuse after build", func() {
			b := NewBuilder("x").Table("t", 1)
			b.Build()
			b.Table("u", 1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestTableNamesSortedAndCopied(t *testing.T) {
	c := NewBuilder("x").Table("zeta", 1).Table("alpha", 1).Build()
	names := c.TableNames()
	if names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
	names[0] = "mutated"
	if c.TableNames()[0] != "alpha" {
		t.Fatal("TableNames returned internal slice")
	}
	if c.NumTables() != 2 {
		t.Fatalf("NumTables = %d", c.NumTables())
	}
}

func TestRowCountFloor(t *testing.T) {
	c := NewBuilder("x").Table("t", 0).Column("a", 0).Build()
	tab := c.MustTable("t")
	if tab.RowCount != 1 || tab.MustColumn("a").NDV != 1 {
		t.Fatal("row count / NDV floor not applied")
	}
}

func TestTPCHSchema(t *testing.T) {
	c := TPCH(1, 1)
	if c.NumTables() != 8 {
		t.Fatalf("TPC-H has %d tables, want 8", c.NumTables())
	}
	li := c.MustTable("lineitem")
	if li.RowCount != 6_000_000 {
		t.Fatalf("lineitem rows = %v", li.RowCount)
	}
	if li.Partitioning != nil {
		t.Fatal("serial TPC-H should be unpartitioned")
	}
	// FK chain lineitem -> orders -> customer -> nation -> region resolves.
	for _, tab := range []string{"lineitem", "orders", "customer", "nation"} {
		if len(c.MustTable(tab).ForeignKeys) == 0 {
			t.Fatalf("%s has no foreign keys", tab)
		}
	}
}

func TestTPCHParallelPartitioning(t *testing.T) {
	c := TPCH(1, 4)
	for _, tab := range []string{"lineitem", "orders", "customer", "part", "partsupp", "supplier"} {
		p := c.MustTable(tab).Partitioning
		if p == nil || p.Nodes != 4 || len(p.Columns) == 0 {
			t.Fatalf("%s: bad partitioning %+v", tab, p)
		}
		for _, col := range p.Columns {
			if !c.MustTable(tab).HasColumn(col) {
				t.Fatalf("%s partitioned on unknown column %s", tab, col)
			}
		}
	}
	if c.MustTable("nation").Partitioning != nil {
		t.Fatal("small table should stay unpartitioned (replicated)")
	}
}

func TestTPCHScaleFactor(t *testing.T) {
	c := TPCH(0.1, 1)
	if got := c.MustTable("lineitem").RowCount; got != 600_000 {
		t.Fatalf("lineitem at sf=0.1 = %v", got)
	}
	// Non-positive scale defaults to 1.
	c = TPCH(-1, 1)
	if got := c.MustTable("orders").RowCount; got != 1_500_000 {
		t.Fatalf("orders at default sf = %v", got)
	}
}

func TestWarehouseSchemasResolve(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    *Catalog
		min  int
	}{
		{"warehouse1 serial", Warehouse1(1), 13},
		{"warehouse1 parallel", Warehouse1(4), 13},
		{"warehouse2 serial", Warehouse2(1), 16},
		{"warehouse2 parallel", Warehouse2(4), 16},
	} {
		if tc.c.NumTables() < tc.min {
			t.Errorf("%s: %d tables, want >= %d", tc.name, tc.c.NumTables(), tc.min)
		}
		// Every FK must reference resolvable tables/columns (Build validates,
		// but assert reachability here too).
		for _, name := range tc.c.TableNames() {
			tab := tc.c.MustTable(name)
			for _, fk := range tab.ForeignKeys {
				ref := tc.c.MustTable(fk.RefTable)
				for _, rc := range fk.RefColumns {
					ref.MustColumn(rc)
				}
			}
			for _, ix := range tab.Indexes {
				if !strings.HasPrefix(ix.Name, "pk_") && !strings.HasPrefix(ix.Name, "ix_") {
					t.Errorf("%s: index %q doesn't follow naming scheme", name, ix.Name)
				}
			}
		}
	}
}

func TestWarehouseParallelPartitioning(t *testing.T) {
	c := Warehouse1(4)
	if p := c.MustTable("sales").Partitioning; p == nil || p.Columns[0] != "s_cust_id" {
		t.Fatalf("sales partitioning = %+v", p)
	}
	if c.MustTable("region").Partitioning != nil {
		t.Fatal("tiny dimension should stay unpartitioned")
	}
}
