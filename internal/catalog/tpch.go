package catalog

// TPCH builds the TPC-H benchmark schema at the given scale factor. Row
// counts follow the TPC-H specification (revision 1.1.0, the version cited
// by the paper); NDVs are the spec's domain sizes. When nodes > 1 the large
// tables are hash partitioned on their primary keys across that many logical
// nodes, matching the 4-logical-node shared-nothing setup in the paper's
// parallel experiments.
func TPCH(scale float64, nodes int) *Catalog {
	if scale <= 0 {
		scale = 1
	}
	sf := scale
	b := NewBuilder("tpch")

	b.Table("region", 5).
		Column("r_regionkey", 5).
		Column("r_name", 5).
		Column("r_comment", 5).
		Index("pk_region", true, "r_regionkey")

	b.Table("nation", 25).
		Column("n_nationkey", 25).
		Column("n_name", 25).
		Column("n_regionkey", 5).
		Column("n_comment", 25).
		Index("pk_nation", true, "n_nationkey").
		ForeignKey("region", []string{"n_regionkey"}, []string{"r_regionkey"})

	b.Table("supplier", 10_000*sf).
		Column("s_suppkey", 10_000*sf).
		Column("s_name", 10_000*sf).
		Column("s_address", 10_000*sf).
		Column("s_nationkey", 25).
		Column("s_phone", 10_000*sf).
		Column("s_acctbal", 9_000*sf).
		Column("s_comment", 10_000*sf).
		Index("pk_supplier", true, "s_suppkey").
		ForeignKey("nation", []string{"s_nationkey"}, []string{"n_nationkey"})

	b.Table("part", 200_000*sf).
		Column("p_partkey", 200_000*sf).
		Column("p_name", 200_000*sf).
		Column("p_mfgr", 5).
		Column("p_brand", 25).
		Column("p_type", 150).
		Column("p_size", 50).
		Column("p_container", 40).
		Column("p_retailprice", 20_000*sf).
		Column("p_comment", 130_000*sf).
		Index("pk_part", true, "p_partkey")

	b.Table("partsupp", 800_000*sf).
		Column("ps_partkey", 200_000*sf).
		Column("ps_suppkey", 10_000*sf).
		Column("ps_availqty", 9_999).
		Column("ps_supplycost", 100_000).
		Column("ps_comment", 800_000*sf).
		Index("pk_partsupp", true, "ps_partkey", "ps_suppkey").
		ForeignKey("part", []string{"ps_partkey"}, []string{"p_partkey"}).
		ForeignKey("supplier", []string{"ps_suppkey"}, []string{"s_suppkey"})

	b.Table("customer", 150_000*sf).
		Column("c_custkey", 150_000*sf).
		Column("c_name", 150_000*sf).
		Column("c_address", 150_000*sf).
		Column("c_nationkey", 25).
		Column("c_phone", 150_000*sf).
		Column("c_acctbal", 140_000*sf).
		Column("c_mktsegment", 5).
		Column("c_comment", 150_000*sf).
		Index("pk_customer", true, "c_custkey").
		ForeignKey("nation", []string{"c_nationkey"}, []string{"n_nationkey"})

	b.Table("orders", 1_500_000*sf).
		Column("o_orderkey", 1_500_000*sf).
		Column("o_custkey", 100_000*sf).
		Column("o_orderstatus", 3).
		Column("o_totalprice", 1_400_000*sf).
		Column("o_orderdate", 2_406).
		Column("o_orderpriority", 5).
		Column("o_clerk", 1_000*sf).
		Column("o_shippriority", 1).
		Column("o_comment", 1_400_000*sf).
		Index("pk_orders", true, "o_orderkey").
		Index("ix_orders_custkey", false, "o_custkey").
		ForeignKey("customer", []string{"o_custkey"}, []string{"c_custkey"})

	b.Table("lineitem", 6_000_000*sf).
		Column("l_orderkey", 1_500_000*sf).
		Column("l_partkey", 200_000*sf).
		Column("l_suppkey", 10_000*sf).
		Column("l_linenumber", 7).
		Column("l_quantity", 50).
		Column("l_extendedprice", 1_000_000*sf).
		Column("l_discount", 11).
		Column("l_tax", 9).
		Column("l_returnflag", 3).
		Column("l_linestatus", 2).
		Column("l_shipdate", 2_526).
		Column("l_commitdate", 2_466).
		Column("l_receiptdate", 2_555).
		Column("l_shipinstruct", 4).
		Column("l_shipmode", 7).
		Column("l_comment", 4_500_000*sf).
		Index("pk_lineitem", true, "l_orderkey", "l_linenumber").
		Index("ix_lineitem_partsupp", false, "l_partkey", "l_suppkey").
		ForeignKey("orders", []string{"l_orderkey"}, []string{"o_orderkey"}).
		ForeignKey("partsupp", []string{"l_partkey", "l_suppkey"}, []string{"ps_partkey", "ps_suppkey"})

	c := b.Build()
	if nodes > 1 {
		c.MustTable("lineitem").Partitioning = &Partitioning{Columns: []string{"l_orderkey"}, Nodes: nodes}
		c.MustTable("orders").Partitioning = &Partitioning{Columns: []string{"o_orderkey"}, Nodes: nodes}
		c.MustTable("customer").Partitioning = &Partitioning{Columns: []string{"c_custkey"}, Nodes: nodes}
		c.MustTable("part").Partitioning = &Partitioning{Columns: []string{"p_partkey"}, Nodes: nodes}
		c.MustTable("partsupp").Partitioning = &Partitioning{Columns: []string{"ps_partkey"}, Nodes: nodes}
		c.MustTable("supplier").Partitioning = &Partitioning{Columns: []string{"s_suppkey"}, Nodes: nodes}
	}
	return c
}
