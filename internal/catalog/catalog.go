// Package catalog models the database schema and statistics that the
// optimizer and the compilation-time estimator consult: tables, columns,
// indexes, physical partitioning (for the shared-nothing parallel version),
// row counts, column cardinalities, and foreign-key relationships.
//
// The catalog is deliberately simple — it carries exactly the metadata that
// influences join enumeration and plan generation in the reproduced system:
// row counts and NDVs drive cardinality estimation, indexes seed natural
// order properties (under a lazy generation policy), the physical
// partitioning seeds partition properties, and foreign keys guide the random
// workload generator toward realistic FK->PK joins.
package catalog

import (
	"fmt"
	"sort"
)

// Catalog is a named collection of tables. It is immutable after
// construction and safe for concurrent use.
type Catalog struct {
	name   string
	tables map[string]*Table
	names  []string // sorted, for deterministic iteration
}

// Table describes one base table.
type Table struct {
	Name     string
	RowCount float64
	Columns  []*Column
	Indexes  []*Index
	// Partitioning is the physical hash partitioning of the table across the
	// nodes of a shared-nothing system. It is nil for serial databases and
	// for round-robin (no partitioning key) tables.
	Partitioning *Partitioning
	ForeignKeys  []ForeignKey

	colByName map[string]*Column
}

// Column describes one column of a table.
type Column struct {
	Name string
	// NDV is the number of distinct values, used for equality-predicate
	// selectivity (1/NDV) and join selectivity (1/max NDV).
	NDV     float64
	Ordinal int
	Table   *Table
}

// Index describes a (possibly composite) B-tree index. The column sequence
// of an index is a natural source of order properties.
type Index struct {
	Name    string
	Columns []string
	Unique  bool
}

// Partitioning describes hash partitioning on a key across Nodes logical
// nodes of a shared-nothing parallel system.
type Partitioning struct {
	Columns []string
	Nodes   int
}

// ForeignKey records that Columns of the owning table reference RefColumns
// of RefTable. The workload generators use this to prefer realistic FK->PK
// joins, mirroring the random query generator described in the paper.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Name returns the catalog's name.
func (c *Catalog) Name() string { return c.name }

// Table returns the named table, or an error if it does not exist.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog %q: unknown table %q", c.name, name)
	}
	return t, nil
}

// MustTable is Table but panics on unknown names. Intended for static
// schemas and tests where the name is a compile-time constant.
func (c *Catalog) MustTable(name string) *Table {
	t, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// TableNames returns all table names in sorted order.
func (c *Catalog) TableNames() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// NumTables returns the number of tables in the catalog.
func (c *Catalog) NumTables() int { return len(c.names) }

// Column returns the named column of the table, or an error.
func (t *Table) Column(name string) (*Column, error) {
	col, ok := t.colByName[name]
	if !ok {
		return nil, fmt.Errorf("table %q: unknown column %q", t.Name, name)
	}
	return col, nil
}

// MustColumn is Column but panics on unknown names.
func (t *Table) MustColumn(name string) *Column {
	col, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return col
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.colByName[name]
	return ok
}

// Builder assembles a Catalog. Methods panic on structurally invalid input
// (duplicate names, index over missing columns); schemas are static program
// data, so misuse is a programming error rather than a runtime condition.
type Builder struct {
	c    *Catalog
	cur  *Table
	done bool
}

// NewBuilder starts building a catalog with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{c: &Catalog{name: name, tables: map[string]*Table{}}}
}

// Table starts a new table with the given name and row count. Subsequent
// Column/Index/Partition/ForeignKey calls apply to this table.
func (b *Builder) Table(name string, rows float64) *Builder {
	b.mustOpen()
	if _, dup := b.c.tables[name]; dup {
		panic(fmt.Sprintf("catalog %q: duplicate table %q", b.c.name, name))
	}
	if rows < 1 {
		rows = 1
	}
	t := &Table{Name: name, RowCount: rows, colByName: map[string]*Column{}}
	b.c.tables[name] = t
	b.c.names = append(b.c.names, name)
	b.cur = t
	return b
}

// Column adds a column with the given number of distinct values to the
// current table. NDV is capped to the table's row count.
func (b *Builder) Column(name string, ndv float64) *Builder {
	t := b.mustTable()
	if _, dup := t.colByName[name]; dup {
		panic(fmt.Sprintf("table %q: duplicate column %q", t.Name, name))
	}
	if ndv < 1 {
		ndv = 1
	}
	if ndv > t.RowCount {
		ndv = t.RowCount
	}
	col := &Column{Name: name, NDV: ndv, Ordinal: len(t.Columns), Table: t}
	t.Columns = append(t.Columns, col)
	t.colByName[name] = col
	return b
}

// Index adds an index over the given columns of the current table.
func (b *Builder) Index(name string, unique bool, cols ...string) *Builder {
	t := b.mustTable()
	if len(cols) == 0 {
		panic(fmt.Sprintf("table %q: index %q has no columns", t.Name, name))
	}
	for _, c := range cols {
		if _, ok := t.colByName[c]; !ok {
			panic(fmt.Sprintf("table %q: index %q over unknown column %q", t.Name, name, c))
		}
	}
	t.Indexes = append(t.Indexes, &Index{Name: name, Columns: cols, Unique: unique})
	return b
}

// Partition declares the current table hash-partitioned on cols across the
// given number of nodes.
func (b *Builder) Partition(nodes int, cols ...string) *Builder {
	t := b.mustTable()
	if nodes < 1 {
		panic(fmt.Sprintf("table %q: partitioning needs >= 1 node", t.Name))
	}
	for _, c := range cols {
		if _, ok := t.colByName[c]; !ok {
			panic(fmt.Sprintf("table %q: partitioning on unknown column %q", t.Name, c))
		}
	}
	t.Partitioning = &Partitioning{Columns: cols, Nodes: nodes}
	return b
}

// ForeignKey declares that cols of the current table reference refCols of
// refTable. The referenced table may be declared later; Build validates it.
func (b *Builder) ForeignKey(refTable string, cols []string, refCols []string) *Builder {
	t := b.mustTable()
	if len(cols) == 0 || len(cols) != len(refCols) {
		panic(fmt.Sprintf("table %q: malformed foreign key to %q", t.Name, refTable))
	}
	for _, c := range cols {
		if _, ok := t.colByName[c]; !ok {
			panic(fmt.Sprintf("table %q: foreign key over unknown column %q", t.Name, c))
		}
	}
	t.ForeignKeys = append(t.ForeignKeys, ForeignKey{Columns: cols, RefTable: refTable, RefColumns: refCols})
	return b
}

// Build finalizes and returns the catalog. The builder must not be reused.
func (b *Builder) Build() *Catalog {
	b.mustOpen()
	b.done = true
	sort.Strings(b.c.names)
	for _, t := range b.c.tables {
		for _, fk := range t.ForeignKeys {
			ref, ok := b.c.tables[fk.RefTable]
			if !ok {
				panic(fmt.Sprintf("table %q: foreign key to unknown table %q", t.Name, fk.RefTable))
			}
			for _, c := range fk.RefColumns {
				if _, ok := ref.colByName[c]; !ok {
					panic(fmt.Sprintf("table %q: foreign key to unknown column %s.%s", t.Name, fk.RefTable, c))
				}
			}
		}
	}
	return b.c
}

func (b *Builder) mustOpen() {
	if b.done {
		panic("catalog: builder reused after Build")
	}
}

func (b *Builder) mustTable() *Table {
	b.mustOpen()
	if b.cur == nil {
		panic("catalog: column/index/partition before any Table call")
	}
	return b.cur
}
