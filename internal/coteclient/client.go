// Package coteclient is the Go client of the coted HTTP API, with the retry
// discipline the server's error taxonomy asks for: transient failures
// (shed_overload 429, queue_full / dependency_fault 503, timeout 504, and
// transport errors) are retried under jittered exponential backoff honoring
// the server's Retry-After hint, while permanent failures (4xx taxonomy
// classes like bad_request and parse_error) surface immediately. The chaos
// soak drives the server through this client, so its retry policy is
// exercised against real injected faults.
package coteclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cote/internal/service"
)

// Config parameterizes a Client. The zero value of every field is usable.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8334".
	BaseURL string
	// HTTPClient is the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request, first attempt included
	// (default 4; 1 disables retrying).
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay (default 10ms); each
	// further retry doubles it, capped at MaxBackoff (default 1s). The
	// actual sleep is jittered uniformly over [delay/2, delay) — full
	// doubling with half-range jitter, so concurrent clients shed by the
	// same overload peak decorrelate instead of re-stampeding in phase.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter deterministic for tests; zero seeds from 1.
	Seed int64
}

// Client is a coted API client. It is safe for concurrent use.
type Client struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// APIError is a non-2xx reply decoded from the server's error taxonomy.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable taxonomy code (service.Code*).
	Code string
	// Message is the human-readable error.
	Message string
	// RetryAfter is the server's Retry-After hint (zero when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("coted: %s (http %d, code %s)", e.Message, e.Status, e.Code)
}

// Retryable reports whether the failure class is transient: the client may
// see a different outcome by retrying after backoff.
func (e *APIError) Retryable() bool {
	switch e.Code {
	case service.CodeShedOverload, service.CodeQueueFull, service.CodeDependencyFault, service.CodeTimeout:
		return true
	}
	// Unknown codes on retryable statuses (e.g. a proxy's bare 503) retry
	// on status alone. Bare 429s do not: coted's only uncoded 429 is an
	// admission reject, which is deterministic — retrying cannot help.
	switch e.Status {
	case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// New returns a client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Estimate calls POST /v1/estimate.
func (c *Client) Estimate(ctx context.Context, req service.EstimateRequest) (*service.EstimateResponse, error) {
	var resp service.EstimateResponse
	if err := c.do(ctx, "/v1/estimate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// EstimateBatch calls POST /v1/estimate/batch.
func (c *Client) EstimateBatch(ctx context.Context, req service.EstimateBatchRequest) (*service.EstimateBatchResponse, error) {
	var resp service.EstimateBatchResponse
	if err := c.do(ctx, "/v1/estimate/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Optimize calls POST /v1/optimize. A 429 admission reject decodes into the
// response (the body carries the decision), so err may be nil on 429 only
// when the server sent a decision body; taxonomy errors return *APIError.
func (c *Client) Optimize(ctx context.Context, req service.OptimizeRequest) (*service.OptimizeResponse, error) {
	var resp service.OptimizeResponse
	if err := c.do(ctx, "/v1/optimize", req, &resp); err != nil {
		var ae *APIError
		// An admission reject is a 429 whose body is an OptimizeResponse,
		// not an ErrorBody; do reports it as code "" with the raw body in
		// Message. Decode it as the decision it is.
		if errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests && ae.Code == "" {
			if jerr := json.Unmarshal([]byte(ae.Message), &resp); jerr == nil && resp.Admission != nil {
				return &resp, nil
			}
		}
		return nil, err
	}
	return &resp, nil
}

// do POSTs body to path and decodes a 2xx reply into out, retrying
// transient failures up to MaxAttempts with jittered exponential backoff.
func (c *Client) do(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("coteclient: marshal: %w", err)
	}
	var last error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt, last)); err != nil {
				return err
			}
		}
		last = c.once(ctx, path, payload, out)
		if last == nil {
			return nil
		}
		var ae *APIError
		if errors.As(last, &ae) && !ae.Retryable() {
			return last
		}
		if ctx.Err() != nil {
			return last
		}
	}
	return last
}

// once runs a single HTTP attempt.
func (c *Client) once(ctx context.Context, path string, payload []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("coteclient: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("coteclient: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return fmt.Errorf("coteclient: read body: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		ae := &APIError{Status: resp.StatusCode, Message: string(data)}
		var eb service.ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Code != "" {
			ae.Code = eb.Code
			ae.Message = eb.Error
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			ae.RetryAfter = time.Duration(ra) * time.Second
		}
		return ae
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("coteclient: decode %s reply: %w", path, err)
	}
	return nil
}

// backoff prices the sleep before attempt (1-based): the doubled-and-capped
// nominal delay, jittered over [delay/2, delay), raised to the server's
// Retry-After hint when the previous failure carried a larger one.
func (c *Client) backoff(attempt int, last error) time.Duration {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	var ae *APIError
	if errors.As(last, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
		if d > c.cfg.MaxBackoff {
			d = c.cfg.MaxBackoff
		}
	}
	return d
}

// sleep waits d or until ctx expires.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
