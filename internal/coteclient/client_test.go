package coteclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cote/internal/service"
)

// scripted returns a handler that replies with each script entry in turn
// (repeating the last forever) and counts calls.
func scripted(calls *atomic.Int64, script ...func(w http.ResponseWriter)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		i := int(n) - 1
		if i >= len(script) {
			i = len(script) - 1
		}
		script[i](w)
	})
}

func errorReply(status int, code, msg string, retryAfter string) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(service.ErrorBody{Error: msg, Code: code})
	}
}

func okEstimate(w http.ResponseWriter) {
	_ = json.NewEncoder(w).Encode(service.EstimateResponse{Catalog: "tpch", Level: "inner2"})
}

func newClient(t *testing.T, h http.Handler) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return New(Config{
		BaseURL:     ts.URL,
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        1,
	}), ts
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	c, _ := newClient(t, scripted(&calls,
		errorReply(http.StatusTooManyRequests, service.CodeShedOverload, "overloaded", "1"),
		errorReply(http.StatusServiceUnavailable, service.CodeDependencyFault, "injected", ""),
		func(w http.ResponseWriter) { okEstimate(w) },
	))
	// The Retry-After of 1s must not override the test's tiny MaxBackoff.
	start := time.Now()
	resp, err := c.Estimate(context.Background(), service.EstimateRequest{Catalog: "tpch", SQL: "SELECT 1"})
	if err != nil {
		t.Fatalf("Estimate after transient failures: %v", err)
	}
	if resp.Catalog != "tpch" {
		t.Fatalf("got catalog %q", resp.Catalog)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retries took %v; Retry-After must be capped at MaxBackoff", elapsed)
	}
}

func TestPermanentErrorsAreNotRetried(t *testing.T) {
	for _, tc := range []struct {
		code   string
		status int
	}{
		{service.CodeParseError, http.StatusBadRequest},
		{service.CodeBadRequest, http.StatusBadRequest},
		{service.CodeNotFound, http.StatusNotFound},
		{service.CodeOverBudget, http.StatusTooManyRequests},
	} {
		var calls atomic.Int64
		c, _ := newClient(t, scripted(&calls, errorReply(tc.status, tc.code, "nope", "")))
		_, err := c.Estimate(context.Background(), service.EstimateRequest{Catalog: "x", SQL: "y"})
		ae, ok := err.(*APIError)
		if !ok {
			t.Fatalf("%s: got %T (%v), want *APIError", tc.code, err, err)
		}
		if ae.Code != tc.code || ae.Status != tc.status || ae.Retryable() {
			t.Fatalf("%s: got code=%q status=%d retryable=%v", tc.code, ae.Code, ae.Status, ae.Retryable())
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("%s: server saw %d calls, want 1 (no retry)", tc.code, got)
		}
	}
}

func TestExhaustedRetriesReturnLastError(t *testing.T) {
	var calls atomic.Int64
	c, _ := newClient(t, scripted(&calls, errorReply(http.StatusServiceUnavailable, service.CodeQueueFull, "full", "")))
	_, err := c.Estimate(context.Background(), service.EstimateRequest{Catalog: "x", SQL: "y"})
	ae, ok := err.(*APIError)
	if !ok || ae.Code != service.CodeQueueFull {
		t.Fatalf("got %v, want queue_full APIError", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d calls, want MaxAttempts=4", got)
	}
}

func TestOptimizeAdmissionRejectDecodes(t *testing.T) {
	var calls atomic.Int64
	c, _ := newClient(t, scripted(&calls, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(service.OptimizeResponse{
			Catalog:   "tpch",
			Admission: &service.AdmissionDecision{Action: service.AdmitReject, RequestedLevel: "high"},
		})
	}))
	resp, err := c.Optimize(context.Background(), service.OptimizeRequest{Catalog: "tpch", SQL: "q"})
	if err != nil {
		t.Fatalf("admission reject should decode, got %v", err)
	}
	if resp.Admission == nil || resp.Admission.Action != service.AdmitReject {
		t.Fatalf("got %+v, want reject decision", resp)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (rejects are deterministic)", got)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a := New(Config{BaseURL: "http://x", Seed: 7})
	b := New(Config{BaseURL: "http://x", Seed: 7})
	for i := 1; i < 4; i++ {
		if da, db := a.backoff(i, nil), b.backoff(i, nil); da != db {
			t.Fatalf("attempt %d: %v != %v with equal seeds", i, da, db)
		}
	}
	// Jitter stays within [delay/2, delay].
	c := New(Config{BaseURL: "http://x", BaseBackoff: 8 * time.Millisecond, MaxBackoff: time.Second, Seed: 3})
	for i := 0; i < 100; i++ {
		d := c.backoff(1, nil)
		if d < 4*time.Millisecond || d > 8*time.Millisecond {
			t.Fatalf("backoff %v outside [4ms, 8ms]", d)
		}
	}
}

func TestContextCancelStopsRetrying(t *testing.T) {
	var calls atomic.Int64
	c, _ := newClient(t, scripted(&calls, errorReply(http.StatusServiceUnavailable, service.CodeQueueFull, "full", "")))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Estimate(ctx, service.EstimateRequest{Catalog: "x", SQL: "y"})
	if err == nil {
		t.Fatal("want error after cancel")
	}
	if got := calls.Load(); got > 1 {
		t.Fatalf("server saw %d calls after ctx cancel, want <= 1", got)
	}
}
