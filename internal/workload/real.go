package workload

import (
	"fmt"

	"cote/internal/catalog"
	"cote/internal/sqlparser"
)

// Real1 builds the "real1" customer workload: 8 complex data-warehouse
// queries over the Warehouse1 schema, with inner joins, outer joins,
// aggregations and subqueries — the mix the paper describes for its first
// customer workload.
func Real1(nodes int) *Workload {
	cat := catalog.Warehouse1(nodes)
	return fromSQL(suffixed("real1", nodes), cat, real1SQL)
}

// Real2 builds the "real2" customer workload: 17 complex warehouse queries
// over the Warehouse2 schema. Query real2_08 is the paper's headline: 14
// tables constructed from 3 views, 21 local predicates, and 9 GROUP BY
// columns that overlap the join columns.
func Real2(nodes int) *Workload {
	cat := catalog.Warehouse2(nodes)
	return fromSQL(suffixed("real2", nodes), cat, real2SQL)
}

// fromSQL parses a list of SQL statements into a workload.
func fromSQL(name string, cat *catalog.Catalog, sqls []string) *Workload {
	w := &Workload{Name: name, Catalog: cat}
	for i, sql := range sqls {
		blk, err := sqlparser.Parse(sql, cat)
		if err != nil {
			// Workload SQL is static program data; failing to parse it is a
			// bug in this repository, not a runtime condition.
			panic(fmt.Sprintf("workload %s query %d: %v\n%s", name, i, err, sql))
		}
		blk.Name = fmt.Sprintf("%s_%02d", name, i+1)
		w.Queries = append(w.Queries, Query{Name: blk.Name, Block: blk})
	}
	return w
}

// real1SQL holds the eight real1 queries.
var real1SQL = []string{
	// 1: store revenue by region for a month, classic star join.
	`SELECT rg_name, st_state, SUM(s_amount)
	 FROM sales, store, datedim, region
	 WHERE s_store_id = st_id AND s_date_id = d_id AND st_region_id = rg_id
	   AND d_month = 202406 AND st_sqft > 500
	 GROUP BY rg_name, st_state
	 ORDER BY rg_name`,

	// 2: product movement with promotion lift, 6-way join.
	`SELECT p_category, pr_channel, SUM(s_qty), COUNT(*)
	 FROM sales, product, promotion, datedim, store, customer
	 WHERE s_prod_id = p_id AND s_promo_id = pr_id AND s_date_id = d_id
	   AND s_store_id = st_id AND s_cust_id = c_id
	   AND d_year = 2024 AND pr_channel = 3 AND c_segment = 5
	 GROUP BY p_category, pr_channel`,

	// 3: returns analysis with outer-joined reasons.
	`SELECT p_name, SUM(r_amount)
	 FROM returns JOIN product ON r_prod_id = p_id
	 JOIN datedim ON r_date_id = d_id
	 LEFT OUTER JOIN reason ON r_reason_id = rs_id
	 WHERE d_quarter = 8 AND p_category = 12
	 GROUP BY p_name
	 ORDER BY p_name`,

	// 4: customers whose purchases exceed their returns (subquery merge).
	`SELECT c_name, c_city, SUM(s_amount)
	 FROM sales, customer, datedim
	 WHERE s_cust_id = c_id AND s_date_id = d_id AND d_year = 2023
	   AND c_id IN (SELECT r_cust_id FROM returns, reason
	                WHERE r_reason_id = rs_id AND rs_desc = 'defective')
	 GROUP BY c_name, c_city`,

	// 5: inventory coverage vs sales velocity across warehouses.
	`SELECT w_name, p_class, SUM(i_on_hand), SUM(s_qty)
	 FROM inventory, warehouse, product, sales, datedim
	 WHERE i_wh_id = w_id AND i_prod_id = p_id AND s_prod_id = p_id
	   AND i_date_id = d_id AND s_date_id = d_id
	   AND w_state = 7 AND d_month = 202405 AND p_price > 100
	 GROUP BY w_name, p_class
	 ORDER BY w_name, p_class`,

	// 6: employee sales performance with store and manager context.
	`SELECT e_name, st_name, COUNT(*), SUM(s_amount)
	 FROM sales, employee, store, region, datedim
	 WHERE s_emp_id = e_id AND e_store_id = st_id AND st_region_id = rg_id
	   AND s_date_id = d_id
	   AND d_holiday = 1 AND e_title = 4 AND rg_name = 'WEST'
	 GROUP BY e_name, st_name`,

	// 7: supplier exposure through product and sales, with a correlated
	// inventory check.
	`SELECT sp_name, SUM(s_amount)
	 FROM sales s, product p, supplier sp
	 WHERE s.s_prod_id = p.p_id AND p.p_supp_id = sp.sp_id
	   AND sp.sp_rating = 1
	   AND p.p_id IN (SELECT i_prod_id FROM inventory i, warehouse w
	                  WHERE i.i_wh_id = w.w_id AND w.w_state = 3
	                    AND i.i_on_hand < 50)
	 GROUP BY sp_name
	 ORDER BY sp_name`,

	// 8: nine-table kitchen-sink: full retail chain with outer-joined
	// promotions.
	`SELECT rg_name, p_category, d_quarter, SUM(s_amount), SUM(s_discount)
	 FROM sales JOIN store ON s_store_id = st_id
	 JOIN region ON st_region_id = rg_id
	 JOIN product ON s_prod_id = p_id
	 JOIN supplier ON p_supp_id = sp_id
	 JOIN customer ON s_cust_id = c_id
	 JOIN datedim ON s_date_id = d_id
	 JOIN employee ON s_emp_id = e_id
	 LEFT OUTER JOIN promotion ON s_promo_id = pr_id
	 WHERE d_year = 2024 AND c_state = 22 AND sp_state = 22 AND e_title = 2
	 GROUP BY rg_name, p_category, d_quarter
	 ORDER BY rg_name, p_category`,
}

// real2SQL holds the seventeen real2 queries.
var real2SQL = []string{
	// 1
	`SELECT b_name, SUM(o_amount)
	 FROM orders, branch, datedim
	 WHERE o_branch_id = b_id AND o_date_id = d_id AND d_fiscal_period = 55
	 GROUP BY b_name
	 ORDER BY b_name`,

	// 2
	`SELECT ch_name, d_month, COUNT(*), SUM(o_amount)
	 FROM orders, channel, datedim, account
	 WHERE o_channel_id = ch_id AND o_date_id = d_id AND o_acct_id = a_id
	   AND a_type = 2 AND d_year = 2025
	 GROUP BY ch_name, d_month`,

	// 3: order lines with product and vendor rollup.
	`SELECT v_name, p_family, SUM(ol_qty), SUM(ol_price)
	 FROM orderline, orders, product, vendor, datedim
	 WHERE ol_order_id = o_id AND ol_prod_id = p_id AND p_vendor_id = v_id
	   AND o_date_id = d_id AND d_quarter = 12 AND v_country = 9
	 GROUP BY v_name, p_family
	 ORDER BY v_name`,

	// 4: payments against orders, outer-joined pay methods.
	`SELECT pm_name, b_tier, SUM(pay_amount)
	 FROM payments JOIN orders ON pay_order_id = o_id
	 JOIN branch ON o_branch_id = b_id
	 LEFT OUTER JOIN paymethod ON pay_method_id = pm_id
	 WHERE o_status = 3 AND b_tier = 1
	 GROUP BY pm_name, b_tier`,

	// 5: customer contact effectiveness.
	`SELECT cp_id, ch_name, COUNT(*)
	 FROM contact, campaign, channel, customer, datedim
	 WHERE ct_campaign_id = cp_id AND cp_channel_id = ch_id
	   AND ct_cust_id = cu_id AND ct_date_id = d_id
	   AND ct_outcome = 2 AND cu_segment = 4 AND d_year = 2025
	 GROUP BY cp_id, ch_name`,

	// 6: account balances by region through branch.
	`SELECT rg_name, a_type, COUNT(*), SUM(a_balance)
	 FROM account, branch, region, customer
	 WHERE a_branch_id = b_id AND b_region_id = rg_id AND a_cust_id = cu_id
	   AND cu_income_band = 11 AND a_balance > 10000
	 GROUP BY rg_name, a_type
	 ORDER BY rg_name`,

	// 7: budget attainment by branch and product.
	`SELECT b_name, p_line, SUM(o_amount), SUM(bg_target)
	 FROM orders, branch, product, budget, datedim
	 WHERE o_branch_id = b_id AND o_prod_id = p_id
	   AND bg_branch_id = b_id AND bg_prod_id = p_id
	   AND o_date_id = d_id AND d_fiscal_period = 60 AND bg_period = 60
	 GROUP BY b_name, p_line`,

	// 8: the paper's headline query — 14 tables from 3 views, 21 local
	// predicates, 9 GROUP BY columns overlapping the join columns.
	`SELECT ov.o_id, ov.o_prod_id, ov.o_date_id, ov.o_channel_id,
	        pv.pay_acct_id, pv.pay_method_id, cv.ct_cust_id, cv.ct_campaign_id,
	        ol_prod_id, SUM(ol_price)
	 FROM
	  (SELECT o_id, o_branch_id, o_prod_id, o_date_id, o_channel_id, o_acct_id
	   FROM orders, branch, datedim, product
	   WHERE o_branch_id = b_id AND o_date_id = d_id AND o_prod_id = p_id
	     AND o_status = 1 AND o_units > 10 AND b_tier = 2 AND b_region_id = 7
	     AND d_year = 2025 AND d_quarter = 29 AND p_family = 31 AND p_unit_cost < 5000) AS ov,
	  (SELECT pay_order_id, pay_acct_id, pay_method_id
	   FROM payments, account, customer
	   WHERE pay_acct_id = a_id AND a_cust_id = cu_id
	     AND pay_amount > 500 AND a_type = 3 AND a_balance > 0
	     AND cu_segment = 6 AND cu_state = 14 AND cu_income_band = 9) AS pv,
	  (SELECT ct_cust_id, ct_campaign_id
	   FROM contact, campaign, channel
	   WHERE ct_campaign_id = cp_id AND cp_channel_id = ch_id
	     AND ct_outcome = 1 AND cp_budget > 100 AND ch_name = 'WEB') AS cv,
	  orderline, vendor, product, datedim
	 WHERE ov.o_id = pv.pay_order_id
	   AND ov.o_id = ol_order_id
	   AND ol_prod_id = product.p_id
	   AND product.p_vendor_id = v_id
	   AND ov.o_date_id = datedim.d_id
	   AND pv.pay_acct_id = cv.ct_cust_id
	   AND v_country = 2 AND ol_qty > 1 AND ol_cost < 900 AND datedim.d_month = 85
	 GROUP BY ov.o_id, ov.o_prod_id, ov.o_date_id, ov.o_channel_id,
	          pv.pay_acct_id, pv.pay_method_id, cv.ct_cust_id, cv.ct_campaign_id, ol_prod_id`,

	// 9: orders without exchange-rate adjustment (products of small sets).
	`SELECT d_month, SUM(o_amount)
	 FROM orders, datedim, exchange
	 WHERE o_date_id = d_id AND x_date_id = d_id AND x_currency = 12
	 GROUP BY d_month
	 ORDER BY d_month`,

	// 10: high-value accounts with correlated recent-contact check.
	`SELECT cu_name, a_balance
	 FROM account a, customer cu
	 WHERE a.a_cust_id = cu.cu_id AND a.a_balance > 100000
	   AND cu.cu_id IN (SELECT ct_cust_id FROM contact ct, datedim d
	                    WHERE ct.ct_date_id = d.d_id AND d.d_year = 2026
	                      AND ct.ct_outcome = cu.cu_segment)
	 ORDER BY cu_name`,

	// 11: channel mix across the order-to-payment pipeline.
	`SELECT ch_name, pm_name, COUNT(*)
	 FROM orders, channel, payments, paymethod, account
	 WHERE o_channel_id = ch_id AND pay_order_id = o_id
	   AND pay_method_id = pm_id AND pay_acct_id = a_id
	   AND o_amount > 1000
	 GROUP BY ch_name, pm_name`,

	// 12: vendor supply risk, snowflaked.
	`SELECT v_name, rg_name, SUM(ol_cost)
	 FROM orderline, product, vendor, orders, branch, region
	 WHERE ol_prod_id = p_id AND p_vendor_id = v_id AND ol_order_id = o_id
	   AND o_branch_id = b_id AND b_region_id = rg_id
	   AND v_country = 30 AND b_tier = 4
	 GROUP BY v_name, rg_name
	 ORDER BY v_name`,

	// 13: campaign-driven orders (view over contacts joined to orders).
	`SELECT cp2.cp_id, SUM(o_amount)
	 FROM orders o, account a,
	  (SELECT ct_cust_id, cp_id FROM contact, campaign
	   WHERE ct_campaign_id = cp_id AND ct_outcome = 1) AS cp2
	 WHERE o.o_acct_id = a.a_id AND a.a_cust_id = cp2.ct_cust_id
	 GROUP BY cp2.cp_id`,

	// 14: branch league table with outer-joined budget.
	`SELECT b_name, d_fiscal_period, SUM(o_amount)
	 FROM orders JOIN branch ON o_branch_id = b_id
	 JOIN datedim ON o_date_id = d_id
	 LEFT OUTER JOIN budget ON bg_branch_id = b_id
	 WHERE d_year = 2026 AND b_city = 100
	 GROUP BY b_name, d_fiscal_period
	 ORDER BY b_name`,

	// 15: order lines for premium customers via nested selection.
	`SELECT p_line, SUM(ol_price)
	 FROM orderline, product
	 WHERE ol_prod_id = p_id
	   AND ol_order_id IN (SELECT o_id FROM orders, account, customer
	                       WHERE o_acct_id = a_id AND a_cust_id = cu_id
	                         AND cu_income_band = 20 AND o_status = 1)
	 GROUP BY p_line
	 ORDER BY p_line`,

	// 16: fiscal-period cash flow across the whole chain.
	`SELECT d_fiscal_period, b_tier, SUM(pay_amount), COUNT(*)
	 FROM payments, orders, branch, datedim, account, customer
	 WHERE pay_order_id = o_id AND o_branch_id = b_id AND pay_date_id = d_id
	   AND pay_acct_id = a_id AND a_cust_id = cu_id
	   AND cu_state = 33 AND b_region_id = 12
	 GROUP BY d_fiscal_period, b_tier`,

	// 17: ten-way snowflake with campaign attribution.
	`SELECT rg_name, ch_name, p_family, SUM(o_amount)
	 FROM orders, branch, region, channel, product, vendor, datedim, account, customer, contact
	 WHERE o_branch_id = b_id AND b_region_id = rg_id AND o_channel_id = ch_id
	   AND o_prod_id = p_id AND p_vendor_id = v_id AND o_date_id = d_id
	   AND o_acct_id = a_id AND a_cust_id = cu_id AND ct_cust_id = cu_id
	   AND d_year = 2026 AND v_country = 17 AND ct_outcome = 3
	 GROUP BY rg_name, ch_name, p_family
	 ORDER BY rg_name, ch_name`,
}
