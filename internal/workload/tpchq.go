package workload

import "cote/internal/catalog"

// TPCH builds the TPC-H workload: the seven queries with the longest
// compilation times (the paper selects 7 from the benchmark by that
// criterion; the join-heaviest candidates are Q2, Q5, Q7, Q8, Q9, Q10 and
// Q21). The queries are expressed in this repository's SQL subset: date
// arithmetic becomes integer comparisons against the date dimension columns
// and EXISTS/NOT EXISTS become IN-subqueries — neither changes the join
// graph or the interesting properties, which are what drive compilation
// time.
func TPCH(nodes int) *Workload {
	cat := catalog.TPCH(1, nodes)
	return fromSQL(suffixed("tpch", nodes), cat, tpchSQL)
}

var tpchSQL = []string{
	// Q2: minimum-cost supplier, with a correlated aggregate subquery over
	// partsupp/supplier/nation/region.
	`SELECT s_acctbal, s_name, n_name, p_partkey
	 FROM part p, supplier s, partsupp ps, nation n, region r
	 WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
	   AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
	   AND p.p_size = 15 AND p.p_type = 77 AND r.r_name = 'EUROPE'
	   AND ps.ps_supplycost IN
	     (SELECT MIN(ps2.ps_supplycost)
	      FROM partsupp ps2, supplier s2, nation n2, region r2
	      WHERE ps2.ps_suppkey = s2.s_suppkey AND s2.s_nationkey = n2.n_nationkey
	        AND n2.n_regionkey = r2.r_regionkey AND r2.r_name = 'EUROPE'
	        AND ps2.ps_partkey = p.p_partkey)
	 ORDER BY s_acctbal, n_name, s_name`,

	// Q5: local supplier volume, six-way join with a cycle (customer and
	// supplier share the nation).
	`SELECT n_name, SUM(l_extendedprice)
	 FROM customer, orders, lineitem, supplier, nation, region
	 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
	   AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
	   AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	   AND r_name = 'ASIA' AND o_orderdate >= 727 AND o_orderdate < 1092
	 GROUP BY n_name
	 ORDER BY n_name`,

	// Q7: volume shipping between two nations (self-joined nation).
	`SELECT n1.n_name, n2.n_name, l_shipdate, SUM(l_extendedprice)
	 FROM supplier, lineitem, orders, customer, nation n1, nation n2
	 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
	   AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey
	   AND c_nationkey = n2.n_nationkey
	   AND n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY'
	   AND l_shipdate >= 730 AND l_shipdate <= 1460
	 GROUP BY n1.n_name, n2.n_name, l_shipdate
	 ORDER BY n1.n_name, n2.n_name, l_shipdate`,

	// Q8: national market share — the benchmark's widest join (8 tables).
	`SELECT o_orderdate, SUM(l_extendedprice)
	 FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region
	 WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
	   AND l_orderkey = o_orderkey AND o_custkey = c_custkey
	   AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey
	   AND s_nationkey = n2.n_nationkey
	   AND r_name = 'AMERICA' AND p_type = 103
	   AND o_orderdate >= 730 AND o_orderdate <= 1460
	 GROUP BY o_orderdate
	 ORDER BY o_orderdate`,

	// Q9: product type profit measure, six-way with partsupp closing a
	// cycle between lineitem, part and supplier.
	`SELECT n_name, o_orderdate, SUM(l_extendedprice)
	 FROM part, supplier, lineitem, partsupp, orders, nation
	 WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
	   AND ps_partkey = l_partkey AND p_partkey = l_partkey
	   AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
	   AND p_name = 55
	 GROUP BY n_name, o_orderdate
	 ORDER BY n_name, o_orderdate`,

	// Q10: returned item reporting.
	`SELECT c_custkey, c_name, n_name, SUM(l_extendedprice)
	 FROM customer, orders, lineitem, nation
	 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
	   AND c_nationkey = n_nationkey
	   AND o_orderdate >= 850 AND o_orderdate < 941 AND l_returnflag = 2
	 GROUP BY c_custkey, c_name, n_name
	 ORDER BY c_custkey`,

	// Q21: suppliers who kept orders waiting — nested subqueries over
	// lineitem (EXISTS/NOT EXISTS rendered as IN per the subset).
	`SELECT s_name, COUNT(*)
	 FROM supplier, lineitem l1, orders, nation
	 WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey
	   AND s_nationkey = n_nationkey
	   AND o_orderstatus = 2 AND n_name = 'SAUDI ARABIA'
	   AND l1.l_orderkey IN
	     (SELECT l2.l_orderkey FROM lineitem l2
	      WHERE l2.l_receiptdate > l2.l_commitdate)
	 GROUP BY s_name
	 ORDER BY s_name`,
}
