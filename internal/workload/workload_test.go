package workload

import (
	"testing"

	"cote/internal/core"
	"cote/internal/opt"
	"cote/internal/query"

	costpkg "cote/internal/cost"
)

// allWorkloads returns every workload in both serial and parallel variants.
func allWorkloads(tb testing.TB) []*Workload {
	tb.Helper()
	return []*Workload{
		Linear(1), Linear(4),
		Star(1), Star(4),
		Random(42, 12, 10, 1), Random(42, 12, 10, 4),
		Real1(1), Real1(4),
		Real2(1), Real2(4),
		TPCH(1), TPCH(4),
	}
}

func TestWorkloadShapes(t *testing.T) {
	cases := map[string]int{
		"linear_s": 15, "linear_p": 15,
		"star_s": 15, "star_p": 15,
		"random_s": 12, "random_p": 12,
		"real1_s": 8, "real1_p": 8,
		"real2_s": 17, "real2_p": 17,
		"tpch_s": 7, "tpch_p": 7,
	}
	for _, w := range allWorkloads(t) {
		want, ok := cases[w.Name]
		if !ok {
			t.Fatalf("unexpected workload %q", w.Name)
		}
		if len(w.Queries) != want {
			t.Errorf("%s: %d queries, want %d", w.Name, len(w.Queries), want)
		}
		for _, q := range w.Queries {
			if q.Block == nil || q.Name == "" {
				t.Fatalf("%s: malformed query %+v", w.Name, q)
			}
		}
	}
}

func TestSyntheticBatchStructure(t *testing.T) {
	w := Star(1)
	// Three batches of five with fixed tables per batch.
	wantTables := []int{6, 6, 6, 6, 6, 8, 8, 8, 8, 8, 10, 10, 10, 10, 10}
	for i, q := range w.Queries {
		if q.Block.NumTables() != wantTables[i] {
			t.Errorf("query %d: %d tables, want %d", i, q.Block.NumTables(), wantTables[i])
		}
	}
	// Within a batch, predicate count grows 1..5 (before transitive
	// closure, which stars don't trigger: satellites share no columns).
	for i := 0; i < 5; i++ {
		q := w.Queries[i].Block
		if got := len(q.JoinPreds); got != 5*(i+1) {
			t.Errorf("star batch-1 query %d: %d preds, want %d", i, got, 5*(i+1))
		}
	}
}

func TestLinearHasClosedFormJoins(t *testing.T) {
	w := Linear(1)
	for _, q := range w.Queries[:5] { // the 6-table batch
		jc, err := core.CountJoins(q.Block, core.Options{Level: opt.LevelHigh, CartesianPolicy: 1 /* never */})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := core.ClosedFormJoins("linear", 6)
		if jc.Pairs != want {
			t.Fatalf("%s: %d pairs, closed form %d", q.Name, jc.Pairs, want)
		}
	}
}

func TestRandomWorkloadDeterministic(t *testing.T) {
	a := Random(7, 6, 9, 1)
	b := Random(7, 6, 9, 1)
	for i := range a.Queries {
		qa, qb := a.Queries[i].Block, b.Queries[i].Block
		if qa.NumTables() != qb.NumTables() || len(qa.JoinPreds) != len(qb.JoinPreds) {
			t.Fatalf("query %d differs across runs with the same seed", i)
		}
	}
	c := Random(8, 6, 9, 1)
	same := true
	for i := range a.Queries {
		if a.Queries[i].Block.NumTables() != c.Queries[i].Block.NumTables() ||
			len(a.Queries[i].Block.JoinPreds) != len(c.Queries[i].Block.JoinPreds) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestRandomWorkloadPrefersFKJoins(t *testing.T) {
	w := Random(42, 12, 10, 1)
	sawSub := false
	for _, q := range w.Queries {
		for _, ref := range q.Block.Tables {
			if ref.IsDerived() {
				sawSub = true
			}
		}
		// Every explicit join predicate follows an FK edge by construction;
		// assert connectivity as the observable consequence.
		if !q.Block.IsConnected(q.Block.AllTables()) {
			// Derived-table merges may attach via the fallback; still must
			// be connected.
			t.Fatalf("%s: disconnected join graph", q.Name)
		}
	}
	if !sawSub {
		t.Fatal("random workload never produced a subquery merge")
	}
}

func TestReal2HeadlineQuery(t *testing.T) {
	w := Real2(1)
	q := w.Queries[7].Block // real2_08
	// 14 table references in total across the outer block and its views.
	total := 0
	views := 0
	for _, b := range q.Blocks() {
		for _, ref := range b.Tables {
			if ref.IsDerived() {
				views++
			} else {
				total++
			}
		}
	}
	if total != 14 {
		t.Fatalf("headline query has %d base tables, want 14", total)
	}
	if views != 3 {
		t.Fatalf("headline query has %d views, want 3", views)
	}
	locals := 0
	for _, b := range q.Blocks() {
		for _, lp := range b.LocalPreds {
			if !lp.Implied {
				locals++
			}
		}
	}
	if locals != 21 {
		t.Fatalf("headline query has %d local predicates, want 21", locals)
	}
	if len(q.GroupBy) != 9 {
		t.Fatalf("headline query has %d group-by columns, want 9", len(q.GroupBy))
	}
	// Group-by columns overlap join columns.
	joinCols := map[query.ColID]bool{}
	for _, jp := range q.JoinPreds {
		joinCols[jp.Left] = true
		joinCols[jp.Right] = true
	}
	overlap := 0
	for _, g := range q.GroupBy {
		if joinCols[g] {
			overlap++
		}
	}
	if overlap < 5 {
		t.Fatalf("only %d of 9 group-by columns overlap join columns", overlap)
	}
}

func TestTPCHWorkloadShapes(t *testing.T) {
	w := TPCH(1)
	// Q8 (index 3) joins 8 tables.
	if got := w.Queries[3].Block.NumTables(); got != 8 {
		t.Fatalf("Q8 has %d tables, want 8", got)
	}
	// Q2 (index 0) carries a correlated subquery.
	corr := false
	for _, ref := range w.Queries[0].Block.Tables {
		if ref.IsDerived() && ref.Correlated {
			corr = true
		}
	}
	if !corr {
		t.Fatal("Q2 lost its correlated subquery")
	}
	// Q7 self-joins nation.
	n := 0
	for _, ref := range w.Queries[2].Block.Tables {
		if ref.Table != nil && ref.Table.Name == "nation" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("Q7 has %d nation references, want 2", n)
	}
}

// TestEveryQueryCompilesAndEstimates is the workhorse integration test: all
// ~120 workload queries must survive real optimization and plan estimation,
// serial and parallel alike.
func TestEveryQueryCompilesAndEstimates(t *testing.T) {
	for _, w := range allWorkloads(t) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cfg := costpkg.Serial
			if w.Name[len(w.Name)-1] == 'p' {
				cfg = costpkg.Parallel4
			}
			for _, q := range w.Queries {
				res, err := opt.Optimize(q.Block, opt.Options{Level: opt.LevelHighInner2, Config: cfg})
				if err != nil {
					t.Fatalf("%s: optimize: %v", q.Name, err)
				}
				if res.Plan == nil || res.Plan.Cost <= 0 {
					t.Fatalf("%s: no plan", q.Name)
				}
				est, err := core.EstimatePlans(q.Block, core.Options{Level: opt.LevelHighInner2, Config: cfg})
				if err != nil {
					t.Fatalf("%s: estimate: %v", q.Name, err)
				}
				if est.Counts.Total() <= 0 {
					t.Fatalf("%s: zero plan estimate", q.Name)
				}
				actual := core.CountsFrom(res.TotalCounters())
				if actual.Total() <= 0 {
					t.Fatalf("%s: zero actual plans", q.Name)
				}
				// Order of magnitude agreement on every single query; the
				// experiment harness asserts the paper's tighter bounds on
				// workload averages.
				ratio := float64(est.Counts.Total()) / float64(actual.Total())
				if ratio < 0.25 || ratio > 4 {
					t.Errorf("%s: estimate %d vs actual %d (ratio %.2f)",
						q.Name, est.Counts.Total(), actual.Total(), ratio)
				}
			}
		})
	}
}

func TestWorkloadNamesFollowPaperConvention(t *testing.T) {
	if Linear(1).Name != "linear_s" || Linear(4).Name != "linear_p" {
		t.Fatal("suffix convention broken")
	}
}
