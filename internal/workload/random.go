package workload

import (
	"fmt"
	"math/rand"

	"cote/internal/catalog"
	"cote/internal/query"
)

// Random builds the random workload: a seeded generator over the real1
// (Warehouse1) schema, modeled on the DB2 robustness tool the paper used:
// it "creates increasingly complex queries by merging simpler queries ...
// using either subqueries or joins" and "tries to join two tables with a
// foreign-key to primary-key relationship", so the output resembles real
// customer queries. count queries are produced with table counts ramping up
// to maxTables.
func Random(seed int64, count, maxTables, nodes int) *Workload {
	cat := catalog.Warehouse1(nodes)
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{Name: suffixed("random", nodes), Catalog: cat}
	for i := 0; i < count; i++ {
		// Complexity ramps with the query index, as the tool's complexity
		// level does.
		target := 3 + (i*(maxTables-3))/max(count-1, 1)
		g := &randGen{cat: cat, rng: rng}
		blk := g.genQuery(fmt.Sprintf("random_%02d", i), target, true)
		w.Queries = append(w.Queries, Query{Name: blk.Name, Block: blk})
	}
	return w
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fkEdge is one foreign-key relationship usable as a join.
type fkEdge struct {
	from, to       string // table names
	fromCol, toCol string // single-column FK legs
	multi          bool   // composite FK (first leg still used)
}

// randGen generates one query at a time.
type randGen struct {
	cat *catalog.Catalog
	rng *rand.Rand
}

// edges lists all single-leg FK edges of the catalog, in deterministic
// order.
func (g *randGen) edges() []fkEdge {
	var out []fkEdge
	for _, name := range g.cat.TableNames() {
		t := g.cat.MustTable(name)
		for _, fk := range t.ForeignKeys {
			out = append(out, fkEdge{
				from: name, to: fk.RefTable,
				fromCol: fk.Columns[0], toCol: fk.RefColumns[0],
				multi: len(fk.Columns) > 1,
			})
		}
	}
	return out
}

// genQuery builds one query block with roughly target base tables,
// possibly nesting one subquery (the "merging" step of the tool).
func (g *randGen) genQuery(name string, target int, allowSub bool) *query.Block {
	qb := query.NewBuilder(name, g.cat)
	edges := g.edges()

	// Seed with a random fact-ish table: prefer tables that own FKs.
	seed := edges[g.rng.Intn(len(edges))].from
	aliases := map[string]string{} // table name -> alias (one use per table; reuse via suffix)
	used := map[string]int{}       // table name -> times used
	addTable := func(table string) string {
		used[table]++
		alias := table
		if used[table] > 1 {
			alias = fmt.Sprintf("%s%d", table, used[table])
		}
		qb.AddTable(table, alias)
		aliases[table] = alias
		return alias
	}
	addTable(seed)
	tables := 1

	for tables < target {
		// Candidate edges touching the current query.
		var cands []fkEdge
		for _, e := range edges {
			_, haveFrom := aliases[e.from]
			_, haveTo := aliases[e.to]
			if haveFrom != haveTo { // extends the query by one table
				cands = append(cands, e)
			}
		}
		if len(cands) == 0 {
			break
		}
		e := cands[g.rng.Intn(len(cands))]
		var newAlias, oldAlias string
		var newCol, oldCol string
		if _, have := aliases[e.from]; have {
			oldAlias, oldCol = aliases[e.from], e.fromCol
			newAlias, newCol = addTable(e.to), e.toCol
		} else {
			oldAlias, oldCol = aliases[e.to], e.toCol
			newAlias, newCol = addTable(e.from), e.fromCol
		}
		qb.JoinEq(oldAlias, oldCol, newAlias, newCol)
		tables++
	}

	// Local predicates: a couple of equality filters on random columns.
	npreds := 1 + g.rng.Intn(3)
	aliasList := qb.Aliases()
	for i := 0; i < npreds; i++ {
		alias := aliasList[g.rng.Intn(len(aliasList))]
		tabName := alias
		if n := len(tabName); n > 0 && tabName[n-1] >= '2' && tabName[n-1] <= '9' {
			tabName = tabName[:n-1]
		}
		tab := g.cat.MustTable(tabName)
		col := tab.Columns[g.rng.Intn(len(tab.Columns))]
		qb.FilterEq(alias, col.Name)
	}

	// Optionally merge in a smaller subquery as a derived table, joined on
	// a shared FK column.
	if allowSub && target >= 5 && g.rng.Intn(2) == 0 {
		sub := g.genQuery(name+"_sub", 2+g.rng.Intn(2), false)
		alias := "dv"
		idx := qb.AddDerived(sub, alias, false)
		// Join the derived table's first column to an equally named column
		// in the outer query if one exists; otherwise join to the first
		// table's first column through equality of NDV domains.
		joined := false
		subColName := sub.Column(sub.Select[0]).Col.Name
		for _, a := range aliasList {
			if qb.HasColumn(a, subColName) {
				qb.Join(qb.Col(a, subColName), qb.ColByTableIndex(idx, 0), query.Eq)
				joined = true
				break
			}
		}
		if !joined {
			qb.Join(qb.ColByTableIndex(0, 0), qb.ColByTableIndex(idx, 0), query.Eq)
		}
	}

	// Grouping and ordering over dimension-ish columns, sometimes.
	if g.rng.Intn(2) == 0 {
		alias := aliasList[0]
		tab := firstBaseTable(g.cat, alias)
		if tab != nil && len(tab.Columns) >= 2 {
			qb.GroupBy(qb.Col(alias, tab.Columns[1].Name))
			qb.Aggregates(1)
		}
	}
	if g.rng.Intn(2) == 0 {
		alias := aliasList[0]
		tab := firstBaseTable(g.cat, alias)
		if tab != nil {
			qb.OrderBy(qb.Col(alias, tab.Columns[0].Name))
		}
	}

	blk, err := qb.Build()
	if err != nil {
		// The generator only combines validated schema elements; an error
		// here is a bug, not an input condition.
		panic(fmt.Sprintf("workload: random generator produced invalid query %s: %v", name, err))
	}
	return blk
}

// firstBaseTable resolves an alias (possibly suffixed) back to its catalog
// table.
func firstBaseTable(cat *catalog.Catalog, alias string) *catalog.Table {
	name := alias
	if n := len(name); n > 0 && name[n-1] >= '2' && name[n-1] <= '9' {
		name = name[:n-1]
	}
	t, err := cat.Table(name)
	if err != nil {
		return nil
	}
	return t
}
