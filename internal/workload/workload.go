// Package workload generates the query workloads of the paper's evaluation
// (Section 5): the synthetic linear and star workloads (batches of 6, 8 and
// 10 tables with 1-5 join predicates per edge), the random workload (a
// seeded generator over the real1 schema that merges simpler queries and
// prefers foreign-key joins), the two "real customer" workloads real1 and
// real2 (hand-built complex data-warehouse queries matching the paper's
// description), and the seven longest-compiling TPC-H queries.
package workload

import (
	"fmt"

	"cote/internal/catalog"
	"cote/internal/query"
)

// Query is one workload member.
type Query struct {
	Name  string
	Block *query.Block
}

// Workload is a named query collection over one catalog.
type Workload struct {
	Name    string
	Catalog *catalog.Catalog
	Queries []Query
}

// batches are the table counts of the synthetic batches, as in the paper.
var batches = []int{6, 8, 10}

// maxPreds is the per-edge join-predicate sweep width (1..5).
const maxPreds = 5

// Linear builds the linear synthetic workload: 15 queries in three batches
// of five; within a batch the chain length is fixed and the number of join
// predicates per edge sweeps 1..5 (so the join count is constant within a
// batch while the interesting orders — and hence generated plans — grow).
// The ORDER BY and GROUP BY column counts also vary across queries, as the
// paper's generator varies them — which is what keeps the per-method plan
// counts decorrelated enough for the Ct regression to be well conditioned.
// When nodes > 1 the tables are hash partitioned.
func Linear(nodes int) *Workload {
	cat := synthCatalog("linear", 10, nodes)
	w := &Workload{Name: suffixed("linear", nodes), Catalog: cat}
	for _, n := range batches {
		for preds := 1; preds <= maxPreds; preds++ {
			w.Queries = append(w.Queries, Query{
				Name:  fmt.Sprintf("linear_n%d_p%d", n, preds),
				Block: linearQuery(cat, n, preds),
			})
		}
	}
	return w
}

// Star builds the star synthetic workload with the same batch structure as
// Linear: the center is joined to n-1 satellites with 1..5 predicates per
// edge.
func Star(nodes int) *Workload {
	cat := synthCatalog("star", 10, nodes)
	w := &Workload{Name: suffixed("star", nodes), Catalog: cat}
	for _, n := range batches {
		for preds := 1; preds <= maxPreds; preds++ {
			w.Queries = append(w.Queries, Query{
				Name:  fmt.Sprintf("star_n%d_p%d", n, preds),
				Block: starQuery(cat, n, preds),
			})
		}
	}
	return w
}

func suffixed(name string, nodes int) string {
	if nodes > 1 {
		return name + "_p"
	}
	return name + "_s"
}

// synthCatalog builds the shared schema of the synthetic workloads: maxN
// tables t0..t{maxN-1}, each with enough join columns for any edge of
// either shape at up to maxPreds predicates, plus measure and dimension
// columns for ORDER BY / GROUP BY.
func synthCatalog(name string, maxN, nodes int) *catalog.Catalog {
	b := catalog.NewBuilder(name)
	for t := 0; t < maxN; t++ {
		rows := float64(10_000 * (1 + t%4))
		if t == 0 {
			rows = 1_000_000 // the chain head / star center is the fact table
		}
		tb := b.Table(tname(t), rows)
		// Join columns: jc{peer}_{k} links this table toward peer for
		// predicate k. Generously covering both shapes keeps one catalog.
		for peer := 0; peer < maxN; peer++ {
			if peer == t {
				continue
			}
			for k := 0; k < maxPreds; k++ {
				tb.Column(jcol(peer, k), 1_000)
			}
		}
		tb.Column("m1", 500).Column("m2", 500).Column("m3", 500)
		tb.Column("g1", 50).Column("g2", 40)
		tb.Index(fmt.Sprintf("ix_%s", tname(t)), false, jcol((t+1)%maxN, 0))
		if nodes > 1 {
			tb.Partition(nodes, jcol((t+1)%maxN, 0))
		}
	}
	return b.Build()
}

func tname(t int) string      { return fmt.Sprintf("t%d", t) }
func jcol(peer, k int) string { return fmt.Sprintf("jc%d_%d", peer, k) }

// linearQuery chains n tables with preds predicates per edge.
func linearQuery(cat *catalog.Catalog, n, preds int) *query.Block {
	qb := query.NewBuilder(fmt.Sprintf("linear_n%d_p%d", n, preds), cat)
	for t := 0; t < n; t++ {
		qb.AddTable(tname(t), "")
	}
	for t := 0; t+1 < n; t++ {
		for k := 0; k < preds; k++ {
			qb.JoinEq(tname(t), jcol(t+1, k), tname(t+1), jcol(t, k))
		}
	}
	addSortingClauses(qb, cat, tname(0), tname(n-1), preds)
	qb.SelectCols(qb.Col(tname(0), "m1"))
	return qb.MustBuild()
}

// addSortingClauses varies the ORDER BY and GROUP BY column counts with the
// query's position in the batch (the paper varies both across its synthetic
// workloads): ORDER BY takes (preds+1) mod 3 measure columns of obTable and
// GROUP BY takes preds mod 3 dimension columns of gbTable.
func addSortingClauses(qb *query.Builder, cat *catalog.Catalog, obTable, gbTable string, preds int) {
	obCols := []string{"m1", "m2", "m3"}[:(preds+1)%3]
	gbCols := []string{"g1", "g2"}[:min2(preds%3, 2)]
	var ob, gb []query.ColID
	for _, c := range obCols {
		ob = append(ob, qb.Col(obTable, c))
	}
	for _, c := range gbCols {
		gb = append(gb, qb.Col(gbTable, c))
	}
	qb.OrderBy(ob...)
	qb.GroupBy(gb...)
	if len(gb) > 0 {
		qb.Aggregates(1)
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Clique builds the clique synthetic workload: every pair of tables is
// joined (the densest join graph, the worst case for DPsize enumeration and
// the regime where the parallel counting pass has the most to win). Batches
// follow Linear/Star; the per-edge predicate count sweeps 1..2 only — with
// O(n^2) edges the interesting-order growth of wider sweeps would dwarf the
// batch structure.
func Clique(nodes int) *Workload {
	cat := synthCatalog("clique", 10, nodes)
	w := &Workload{Name: suffixed("clique", nodes), Catalog: cat}
	for _, n := range batches {
		for preds := 1; preds <= 2; preds++ {
			w.Queries = append(w.Queries, Query{
				Name:  fmt.Sprintf("clique_n%d_p%d", n, preds),
				Block: cliqueQuery(cat, n, preds),
			})
		}
	}
	return w
}

// cliqueQuery joins all pairs of n tables with preds predicates per edge.
func cliqueQuery(cat *catalog.Catalog, n, preds int) *query.Block {
	qb := query.NewBuilder(fmt.Sprintf("clique_n%d_p%d", n, preds), cat)
	for t := 0; t < n; t++ {
		qb.AddTable(tname(t), "")
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for k := 0; k < preds; k++ {
				qb.JoinEq(tname(a), jcol(b, k), tname(b), jcol(a, k))
			}
		}
	}
	addSortingClauses(qb, cat, tname(0), tname(1), preds)
	qb.SelectCols(qb.Col(tname(0), "m1"))
	return qb.MustBuild()
}

// starQuery joins t0 (the center) with n-1 satellites, preds predicates per
// edge.
func starQuery(cat *catalog.Catalog, n, preds int) *query.Block {
	qb := query.NewBuilder(fmt.Sprintf("star_n%d_p%d", n, preds), cat)
	for t := 0; t < n; t++ {
		qb.AddTable(tname(t), "")
	}
	for s := 1; s < n; s++ {
		for k := 0; k < preds; k++ {
			qb.JoinEq(tname(0), jcol(s, k), tname(s), jcol(0, k))
		}
	}
	addSortingClauses(qb, cat, tname(0), tname(1), preds)
	qb.SelectCols(qb.Col(tname(0), "m1"))
	return qb.MustBuild()
}
