// Package bitset provides a compact set of table positions used as the key
// of MEMO entries and as the working representation of table sets inside the
// join enumerator.
//
// A query block in this system is limited to 64 base tables (DB2-era
// optimizers impose similar limits per block; larger queries are split into
// blocks), so a Set is a single machine word and all operations are branch
// free. The zero value is the empty set.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a set of table positions in the range [0, 64).
type Set uint64

// MaxElems is the largest number of distinct elements a Set can hold.
const MaxElems = 64

// Single returns the set containing only position i.
func Single(i int) Set { return 1 << uint(i) }

// Of builds a set from the given positions.
func Of(elems ...int) Set {
	var s Set
	for _, e := range elems {
		s |= Single(e)
	}
	return s
}

// Full returns the set {0, 1, ..., n-1}.
func Full(n int) Set {
	if n >= MaxElems {
		return ^Set(0)
	}
	return Single(n) - 1
}

// Add returns s with position i added.
func (s Set) Add(i int) Set { return s | Single(i) }

// Remove returns s with position i removed.
func (s Set) Remove(i int) Set { return s &^ Single(i) }

// Contains reports whether position i is in s.
func (s Set) Contains(i int) bool { return s&Single(i) != 0 }

// Union returns the union of s and t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns the intersection of s and t.
func (s Set) Intersect(t Set) Set { return s & t }

// Diff returns the elements of s not in t.
func (s Set) Diff(t Set) Set { return s &^ t }

// Overlaps reports whether s and t share any element.
func (s Set) Overlaps(t Set) bool { return s&t != 0 }

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Empty reports whether s has no elements.
func (s Set) Empty() bool { return s == 0 }

// Len returns the number of elements in s.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// Min returns the smallest element of s. It panics on the empty set.
func (s Set) Min() int {
	if s == 0 {
		panic("bitset: Min of empty set")
	}
	return bits.TrailingZeros64(uint64(s))
}

// ForEach calls fn for every element of s in increasing order. The walk is
// a trailing-zero scan that clears the lowest set bit each step, so it costs
// one TZCNT per element regardless of how sparse the set is and performs no
// allocation (the callback parameter does not escape, so closures passed
// here stay on the caller's stack). It is the preferred iteration form for
// hot paths such as the MEMO's posting-index maintenance.
func (s Set) ForEach(fn func(i int)) {
	for u := uint64(s); u != 0; u &= u - 1 {
		fn(bits.TrailingZeros64(u))
	}
}

// Next returns the smallest element of s that is >= i, or -1 if none exists.
// It allows resumable iteration without allocation:
//
//	for i := s.Next(0); i >= 0; i = s.Next(i + 1) { ... }
//
// ForEach is cheaper when the whole set is walked and no early exit or
// resumption is needed.
func (s Set) Next(i int) int {
	if i >= MaxElems {
		return -1
	}
	rest := uint64(s) >> uint(i) << uint(i)
	if rest == 0 {
		return -1
	}
	return bits.TrailingZeros64(rest)
}

// Elems returns the elements of s in increasing order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for i := s.Next(0); i >= 0; i = s.Next(i + 1) {
		out = append(out, i)
	}
	return out
}

// SubsetsProper calls fn for every non-empty proper subset of s. This is the
// standard sub-mask enumeration used by DP join enumerators when splitting a
// table set into (outer, inner) halves. If fn returns false, iteration stops
// early.
func (s Set) SubsetsProper(fn func(sub Set) bool) {
	u := uint64(s)
	for sub := (u - 1) & u; sub > 0; sub = (sub - 1) & u {
		if !fn(Set(sub)) {
			return
		}
	}
}

// String renders the set as "{0,3,5}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := s.Next(0); i >= 0; i = s.Next(i + 1) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	}
	b.WriteByte('}')
	return b.String()
}
