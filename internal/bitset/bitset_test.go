package bitset

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestOfAndElems(t *testing.T) {
	s := Of(3, 1, 5, 3)
	if got := s.Elems(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Elems = %v, want [1 3 5]", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64} {
		s := Full(n)
		want := n
		if n > MaxElems {
			want = MaxElems
		}
		if s.Len() != want {
			t.Errorf("Full(%d).Len = %d, want %d", n, s.Len(), want)
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	var s Set
	s = s.Add(7)
	if !s.Contains(7) {
		t.Fatal("Contains(7) after Add = false")
	}
	if s.Contains(6) {
		t.Fatal("Contains(6) = true, want false")
	}
	s = s.Remove(7)
	if !s.Empty() {
		t.Fatal("set not empty after Remove")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(0, 1, 2)
	b := Of(2, 3)
	if got := a.Union(b); got != Of(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != Of(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != Of(0, 1) {
		t.Errorf("Diff = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps = false, want true")
	}
	if a.Overlaps(Of(5)) {
		t.Error("Overlaps disjoint = true")
	}
	if !Of(1).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf wrong")
	}
}

func TestMinNext(t *testing.T) {
	s := Of(4, 9)
	if s.Min() != 4 {
		t.Fatalf("Min = %d", s.Min())
	}
	if s.Next(0) != 4 || s.Next(5) != 9 || s.Next(10) != -1 || s.Next(64) != -1 {
		t.Fatal("Next sequence wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Min of empty set did not panic")
		}
	}()
	Set(0).Min()
}

func TestSubsetsProperCount(t *testing.T) {
	s := Of(0, 2, 5, 6)
	n := 0
	seen := map[Set]bool{}
	s.SubsetsProper(func(sub Set) bool {
		if sub.Empty() || sub == s || !sub.SubsetOf(s) {
			t.Fatalf("invalid subset %v of %v", sub, s)
		}
		if seen[sub] {
			t.Fatalf("duplicate subset %v", sub)
		}
		seen[sub] = true
		n++
		return true
	})
	if want := (1 << s.Len()) - 2; n != want {
		t.Fatalf("got %d proper non-empty subsets, want %d", n, want)
	}
}

func TestSubsetsProperEarlyStop(t *testing.T) {
	n := 0
	Of(0, 1, 2, 3).SubsetsProper(func(Set) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop after %d calls, want 3", n)
	}
}

func TestString(t *testing.T) {
	if got := Of(0, 3).String(); got != "{0,3}" {
		t.Fatalf("String = %q", got)
	}
	if got := Set(0).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: Len agrees with popcount, and Elems round-trips through Of.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		s := Set(raw)
		if s.Len() != bits.OnesCount64(raw) {
			return false
		}
		return Of(s.Elems()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identities on a bounded universe.
func TestQuickAlgebraLaws(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := Set(a), Set(b)
		if x.Union(y) != y.Union(x) || x.Intersect(y) != y.Intersect(x) {
			return false
		}
		if x.Diff(y).Overlaps(y) {
			return false
		}
		return x.Diff(y).Union(x.Intersect(y)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every emitted subset is proper and non-empty, and for small sets
// the count is 2^n - 2.
func TestQuickSubsets(t *testing.T) {
	f := func(raw uint16) bool {
		s := Set(raw)
		n := 0
		ok := true
		s.SubsetsProper(func(sub Set) bool {
			if sub.Empty() || sub == s || !sub.SubsetOf(s) {
				ok = false
				return false
			}
			n++
			return true
		})
		if !ok {
			return false
		}
		want := 0
		if s.Len() > 0 {
			want = (1 << s.Len()) - 2
		}
		return n == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForEach(t *testing.T) {
	cases := []Set{0, Of(0), Of(63), Of(0, 63), Of(1, 3, 5, 7), Full(64), Of(4, 9, 31, 32, 33)}
	for _, s := range cases {
		var got []int
		s.ForEach(func(i int) { got = append(got, i) })
		want := s.Elems()
		if len(got) != len(want) {
			t.Fatalf("%v: ForEach yielded %v, want %v", s, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: ForEach yielded %v, want %v", s, got, want)
			}
		}
	}
}

// Property: ForEach visits exactly the elements Next iterates, in the same
// increasing order, for arbitrary 64-bit sets.
func TestQuickForEachMatchesNext(t *testing.T) {
	f := func(raw uint64) bool {
		s := Set(raw)
		i := s.Next(0)
		ok := true
		n := 0
		s.ForEach(func(e int) {
			if i != e {
				ok = false
			}
			i = s.Next(e + 1)
			n++
		})
		return ok && i == -1 && n == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachAllocs(t *testing.T) {
	s := Of(2, 17, 40, 63)
	sum := 0
	allocs := testing.AllocsPerRun(100, func() {
		s.ForEach(func(i int) { sum += i })
	})
	if allocs != 0 {
		t.Fatalf("ForEach allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkSubsetsProper(b *testing.B) {
	s := Full(12)
	for i := 0; i < b.N; i++ {
		n := 0
		s.SubsetsProper(func(Set) bool { n++; return true })
	}
}

// The iteration benchmarks compare the two allocation-free walks on the
// sparse sets typical of join-graph adjacency (a handful of neighbors out
// of 64 positions).
var benchSink int

func BenchmarkForEachSparse(b *testing.B) {
	s := Of(3, 17, 29, 44, 61)
	for i := 0; i < b.N; i++ {
		n := 0
		s.ForEach(func(e int) { n += e })
		benchSink = n
	}
}

func BenchmarkNextSparse(b *testing.B) {
	s := Of(3, 17, 29, 44, 61)
	for i := 0; i < b.N; i++ {
		n := 0
		for e := s.Next(0); e >= 0; e = s.Next(e + 1) {
			n += e
		}
		benchSink = n
	}
}
