package memo

import (
	"math/rand"
	"sync"
	"testing"

	"cote/internal/bitset"
)

// oracleMemo is the map-based reference the open-addressed index is checked
// against: the exact structure the Memo used before the rewrite.
type oracleMemo struct {
	entries map[bitset.Set]int32 // set -> SizeOrd
	bySize  [][]bitset.Set
	posting map[[2]int][]int32
}

func newOracle(n int) *oracleMemo {
	return &oracleMemo{
		entries: map[bitset.Set]int32{},
		bySize:  make([][]bitset.Set, n+1),
		posting: map[[2]int][]int32{},
	}
}

func (o *oracleMemo) getOrCreate(s bitset.Set) (ord int32, created bool) {
	if ord, ok := o.entries[s]; ok {
		return ord, false
	}
	k := s.Len()
	ord = int32(len(o.bySize[k]))
	o.entries[s] = ord
	o.bySize[k] = append(o.bySize[k], s)
	s.ForEach(func(t int) {
		key := [2]int{t, k}
		o.posting[key] = append(o.posting[key], ord)
	})
	return ord, true
}

// randomSet draws a set over n tables, biased toward small sizes like real
// enumeration, occasionally empty (the zero key must index correctly too).
func randomSet(rng *rand.Rand, n int) bitset.Set {
	var s bitset.Set
	k := rng.Intn(n + 1)
	for i := 0; i < k; i++ {
		s = s.Add(rng.Intn(n))
	}
	return s
}

// TestOpenAddressedDifferential drives one pooled MEMO through random
// rounds of insert/lookup against the map oracle, Reset between rounds to a
// random table count — including shrink-then-grow patterns — verifying the
// open-addressed index, the size classes and the posting lists agree with
// the oracle after every operation batch.
func TestOpenAddressedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(2) // deliberately small: rounds below force regrowth and reuse
	for round := 0; round < 60; round++ {
		n := 1 + rng.Intn(14)
		m.Reset(n)
		o := newOracle(n)
		ops := 1 + rng.Intn(200)
		for i := 0; i < ops; i++ {
			s := randomSet(rng, n)
			wantOrd, wantCreated := o.getOrCreate(s)
			e, created := m.GetOrCreate(s)
			if created != wantCreated {
				t.Fatalf("round %d: GetOrCreate(%v) created=%v, oracle %v", round, s, created, wantCreated)
			}
			if e.Tables != s || e.SizeOrd != wantOrd {
				t.Fatalf("round %d: GetOrCreate(%v) = (tables %v, ord %d), oracle ord %d",
					round, s, e.Tables, e.SizeOrd, wantOrd)
			}
			// Random lookups, present and absent.
			probe := randomSet(rng, n)
			_, present := o.entries[probe]
			if got := m.Entry(probe); (got != nil) != present {
				t.Fatalf("round %d: Entry(%v) = %v, oracle present=%v", round, probe, got, present)
			} else if present && got.Tables != probe {
				t.Fatalf("round %d: Entry(%v) returned tables %v", round, probe, got.Tables)
			}
		}
		if m.NumEntries() != len(o.entries) {
			t.Fatalf("round %d: NumEntries %d, oracle %d", round, m.NumEntries(), len(o.entries))
		}
		for k := 0; k <= n; k++ {
			group := m.OfSize(k)
			if len(group) != len(o.bySize[k]) {
				t.Fatalf("round %d: OfSize(%d) has %d entries, oracle %d", round, k, len(group), len(o.bySize[k]))
			}
			for i, e := range group {
				if e.Tables != o.bySize[k][i] {
					t.Fatalf("round %d: OfSize(%d)[%d] = %v, oracle %v", round, k, i, e.Tables, o.bySize[k][i])
				}
			}
			for tb := 0; tb < n; tb++ {
				got, want := m.Posting(tb, k), o.posting[[2]int{tb, k}]
				if len(got) != len(want) {
					t.Fatalf("round %d: Posting(%d,%d) = %v, oracle %v", round, tb, k, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("round %d: Posting(%d,%d) = %v, oracle %v", round, tb, k, got, want)
					}
				}
			}
		}
	}
}

// TestResetCleansSlabEntries pins the pooled-reuse contract of the slab:
// after a Reset, re-created entries start from the zero state (no stale
// plans, orders, partitions, cards or flags from the previous run), even
// though their backing storage is reused.
func TestResetCleansSlabEntries(t *testing.T) {
	m := New(4)
	for i := 0; i < 3; i++ {
		s := bitset.Of(0, 1)
		e, _ := m.GetOrCreate(s)
		e.Card = 42
		e.PropsPropagated = true
		e.Neighbors = bitset.Of(2)
		m.InsertPlan(e, &Plan{Op: OpNLJN, Tables: s})
		m.Reset(4)
		e2, created := m.GetOrCreate(s)
		if !created {
			t.Fatal("entry survived Reset")
		}
		if e2.Card != 0 || e2.PropsPropagated || !e2.Neighbors.Empty() ||
			len(e2.Plans) != 0 || e2.Orders.Len() != 0 || e2.Parts.Len() != 0 {
			t.Fatalf("reused slab entry not clean: %+v", e2)
		}
		if !e2.OuterEligible {
			t.Fatal("recreated entry lost the OuterEligible default")
		}
	}
}

// TestPooledMemosDoNotAliasSlabs runs concurrent goroutines, each cycling
// MEMOs through a shared pool, writing a goroutine-unique sentinel into
// every entry and re-checking it after the fill. If two live memos ever
// handed out aliasing slab storage the sentinels would clash — and the
// concurrent writes would trip the race detector.
func TestPooledMemosDoNotAliasSlabs(t *testing.T) {
	pool := sync.Pool{New: func() any { return New(0) }}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for round := 0; round < 50; round++ {
				m := pool.Get().(*Memo)
				n := 2 + rng.Intn(10)
				m.Reset(n)
				var sets []bitset.Set
				for i := 0; i < 40; i++ {
					s := randomSet(rng, n)
					if s.Empty() {
						continue
					}
					e, created := m.GetOrCreate(s)
					if created {
						sets = append(sets, s)
					}
					e.Card = float64(id + 1)
				}
				for _, s := range sets {
					if e := m.Entry(s); e == nil || e.Card != float64(id+1) {
						t.Errorf("goroutine %d: entry %v corrupted (aliased slab?): %+v", id, s, e)
						return
					}
				}
				pool.Put(m)
			}
		}(g)
	}
	wg.Wait()
}
