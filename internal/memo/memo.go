// Package memo implements the MEMO structure of the dynamic-programming
// optimizer (the terminology follows Volcano, as the paper does): one entry
// per enumerated table set, holding the non-pruned plans for the real
// optimization path and the interesting-property value lists for the
// estimator's plan-estimate mode.
//
// Logical properties — cardinality, the column equivalence classes induced
// by applied predicates, outer-eligibility — are cached per entry and
// computed once, which is both how DB2 behaves and what the paper's
// implementation experience (item 5) requires so that the join enumerator
// makes the same decisions in both modes.
package memo

import (
	"fmt"
	"math/bits"
	"sort"
	"unsafe"

	"cote/internal/bitset"
	"cote/internal/props"
	"cote/internal/query"
	"cote/internal/resource"
)

// Per-structure footprints, the fixed byte sizes the resource accountant
// charges for logical MEMO content. Charging struct sizes plus a small
// constant index overhead (map slot, size-class slot, posting ordinals)
// instead of allocator-reported bytes keeps the measured durable high-water
// mark deterministic across pool states and parallelism degrees — the
// property core.EstimateMemory and its calibration depend on.
const (
	// entryIndexBytes approximates an entry's share of the index
	// bookkeeping: its open-addressed key+pointer slot (amortized over the
	// table's load factor) and its size-class slot.
	entryIndexBytes = 40
	// EntryFootprint is the bytes charged per MEMO entry (excluding the
	// per-member posting ordinals, which scale with set size).
	EntryFootprint = int64(unsafe.Sizeof(Entry{})) + entryIndexBytes
	// PlanFootprint is the bytes charged per retained plan: the node itself
	// plus its pointer slot in the entry's plan list.
	PlanFootprint = int64(unsafe.Sizeof(Plan{})) + 8
	// PropertyValueBytes is the paper's ~4 bytes per interesting-property
	// value (Section 3.4), also used by PropertyListBytes.
	PropertyValueBytes = 4
	// postingOrdBytes is the bytes charged per posting-index ordinal (one
	// int32 per member table of a created entry).
	postingOrdBytes = 4
)

// Operator identifies the physical operator at the root of a plan.
type Operator int

// Physical operators of the reproduced executor.
const (
	OpTableScan Operator = iota
	OpIndexScan
	OpSort
	OpRepartition
	OpNLJN
	OpMGJN
	OpHSJN
	OpGroupBy
)

// String names the operator.
func (o Operator) String() string {
	switch o {
	case OpTableScan:
		return "TBSCAN"
	case OpIndexScan:
		return "IXSCAN"
	case OpSort:
		return "SORT"
	case OpRepartition:
		return "REPART"
	case OpNLJN:
		return "NLJN"
	case OpMGJN:
		return "MGJN"
	case OpHSJN:
		return "HSJN"
	case OpGroupBy:
		return "GRPBY"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// JoinMethod maps a join operator to its props method, or -1 for non-joins.
func (o Operator) JoinMethod() props.JoinMethod {
	switch o {
	case OpNLJN:
		return props.NLJN
	case OpMGJN:
		return props.MGJN
	case OpHSJN:
		return props.HSJN
	}
	return props.JoinMethod(-1)
}

// Plan is one physical plan alternative. Plans form trees; the MEMO only
// retains the non-pruned roots per entry, and children are plans of smaller
// entries (or enforcers over them).
type Plan struct {
	Op          Operator
	Left, Right *Plan
	Tables      bitset.Set
	// Order and Part are the physical properties the plan delivers. Empty
	// values are the don't-care property.
	Order props.Order
	Part  props.Partition
	Cost  float64
	Card  float64
	// OrderKnownRetired marks a plan whose order has retired but which the
	// (parallel) optimizer conservatively kept because its partition is
	// still interesting — the compound-property behaviour that makes the
	// paper's separate-list estimate a slight underestimate.
	OrderKnownRetired bool
	// Pipelined marks a plan that can deliver its first rows without full
	// materialization (no SORT below, no hash-join build on the path of the
	// first row). It participates in pruning only when the MEMO's
	// PipelineMatters flag is set (FETCH FIRST queries).
	Pipelined bool
	// DeferredExp is the set of tables whose expensive predicates this plan
	// has deferred past its joins (Table 1 of the paper: "any subset of the
	// expensive predicates" is interesting; this optimizer defers per table,
	// all or nothing). Deferred predicates are applied by the finishing
	// step. Plans with different deferral sets are incomparable.
	DeferredExp bitset.Set
}

// String renders the plan tree on one line for diagnostics.
func (p *Plan) String() string {
	if p == nil {
		return "<nil>"
	}
	switch {
	case p.Left == nil && p.Right == nil:
		return fmt.Sprintf("%s%s", p.Op, p.Tables)
	case p.Right == nil:
		return fmt.Sprintf("%s(%s)", p.Op, p.Left)
	default:
		return fmt.Sprintf("%s(%s,%s)", p.Op, p.Left, p.Right)
	}
}

// Entry is one MEMO entry: the planning state for one table set.
type Entry struct {
	Tables bitset.Set
	// Card is the cached output cardinality (a logical property).
	Card float64
	// Equiv caches the equivalence classes induced by predicates applied
	// within Tables.
	Equiv *query.Equiv
	// OuterEligible records whether plans of this entry may serve as the
	// outer of a join; the enumerator marks it from outer-join and
	// correlation constraints.
	OuterEligible bool
	// Neighbors caches the join-graph neighborhood of Tables — the union of
	// the adjacency sets of its members, minus Tables itself. The enumerator
	// fills it at entry creation (composing it from the joined parts in O(1)
	// for composite entries) and its candidate-driven scan uses it to visit
	// only partners that a predicate can connect.
	Neighbors bitset.Set
	// SizeOrd is this entry's position within OfSize(Tables.Len()), i.e.
	// its creation order inside its size class. The candidate-driven scan
	// sorts candidates by SizeOrd to replay the canonical enumeration order.
	SizeOrd int32
	// Plans are the non-pruned plans (real optimization mode).
	Plans []*Plan
	// Orders and Parts are the interesting-property value lists
	// (plan-estimate mode, and seeds for enforcer generation in real mode).
	Orders props.OrderList
	Parts  props.PartitionList
	// PropsPropagated supports the paper's first-join-only simplification
	// (DB2 experience item 4): properties are propagated into an entry only
	// by the first join producing it.
	PropsPropagated bool
}

// fibMul is the 64-bit Fibonacci hashing multiplier (2^64/phi). Table sets
// are dense small integers whose low bits carry most of the information;
// multiplying and keeping the top bits spreads them uniformly over any
// power-of-two table.
const fibMul = 0x9E3779B97F4A7C15

// slabBlock is the number of entries per slab chunk. Chunks never move once
// allocated, so entry pointers stay stable while the slab grows.
const slabBlock = 128

// idxSlot is one slot of the open-addressed index: the table set and the
// entry it maps to. A nil entry marks the slot empty (the zero key is a
// valid set, so the pointer is the occupancy marker).
type idxSlot struct {
	key bitset.Set
	e   *Entry
}

// Memo is the table of entries for one query block.
//
// The index is an open-addressed, linear-probed table keyed directly on the
// uint64 table set, and entries live in a chunked slab: compared to the
// map[bitset.Set]*Entry it replaced, a lookup is one multiply and a short
// contiguous probe with no hash-function call, entries of one run are
// cache-contiguous, and the GC sees a handful of chunk slices instead of a
// bucket graph. Both the estimate and optimize hot paths hit this index once
// per enumerated pair.
type Memo struct {
	table []idxSlot // power-of-two open-addressed index; e==nil means empty
	shift uint      // 64 - log2(len(table)): Fibonacci hash keeps the top bits
	count int       // live entries in table
	// blocks is the entry slab. Reset cleans used entries in place (keeping
	// their Plans/Orders/Parts capacities) instead of freeing them, so pooled
	// reuse allocates nothing in steady state.
	blocks [][]Entry
	nused  int
	bySize [][]*Entry
	// sorted caches the Entries() snapshot; GetOrCreate invalidates it, so
	// hot consumers (plan counting, serialization, diagnostics) sort once
	// after enumeration instead of once per call.
	sorted []*Entry
	// posting is the per-table posting index: posting[t*nsize+k] lists, in
	// SizeOrd (creation) order, the ordinals of the size-k entries whose
	// table set contains t. GetOrCreate maintains it incrementally; the
	// enumerator's candidate-driven scan unions the lists of an entry's
	// neighbor tables to visit only partners a predicate can connect. The
	// flat layout (one backing slice of buckets, int32 ordinals) keeps the
	// index to a single allocation plus amortized bucket growth.
	posting [][]int32
	// nsize is the bucket stride of posting: one bucket per size class
	// 0..n, i.e. n+1 per table.
	nsize  int
	nplans int
	// acct receives the durable charges (entries, retained plans, property
	// values) when the optimizer attaches a run accountant; accounted is the
	// memo-local net tally of those charges, zeroed by Reset so pooled reuse
	// never leaks one run's accounting state into the next.
	acct      *resource.Accountant
	accounted int64
	// PipelineMatters makes pipelineability a pruning-relevant property:
	// a non-pipelined plan can no longer dominate a pipelined one. Set by
	// the optimizer for FETCH FIRST queries.
	PipelineMatters bool
	// ExpMatters makes expensive-predicate deferral pruning-relevant: plans
	// are comparable only with equal deferral sets. Set when the query has
	// expensive predicates.
	ExpMatters bool
}

// New creates an empty MEMO for a block of n tables.
func New(n int) *Memo {
	size := 16
	for size < 4*(n+1) {
		size *= 2
	}
	return &Memo{
		table:   make([]idxSlot, size),
		shift:   uint(64 - bits.TrailingZeros(uint(size))),
		bySize:  make([][]*Entry, n+1),
		posting: make([][]int32, n*(n+1)),
		nsize:   n + 1,
	}
}

// find probes for s and returns its entry, or nil together with the slot
// index where an insert would place it.
func (m *Memo) find(s bitset.Set) (*Entry, int) {
	mask := len(m.table) - 1
	i := int((uint64(s) * fibMul) >> m.shift)
	for m.table[i].e != nil {
		if m.table[i].key == s {
			return m.table[i].e, i
		}
		i = (i + 1) & mask
	}
	return nil, i
}

// grow doubles the index and rehashes every live slot. Entries themselves
// never move — only their index slots do.
func (m *Memo) grow() {
	old := m.table
	m.table = make([]idxSlot, 2*len(old))
	m.shift--
	mask := len(m.table) - 1
	for _, sl := range old {
		if sl.e == nil {
			continue
		}
		i := int((uint64(sl.key) * fibMul) >> m.shift)
		for m.table[i].e != nil {
			i = (i + 1) & mask
		}
		m.table[i] = sl
	}
}

// alloc hands out the next slab entry, growing the slab by one chunk when
// exhausted. Entries past a Reset were cleaned in place, so the returned
// entry is always zero-valued apart from its retained slice capacities.
func (m *Memo) alloc() *Entry {
	b := m.nused / slabBlock
	if b == len(m.blocks) {
		m.blocks = append(m.blocks, make([]Entry, slabBlock))
	}
	e := &m.blocks[b][m.nused%slabBlock]
	m.nused++
	return e
}

// cleanEntry returns a used slab entry to the zero state while keeping the
// capacities of its Plans/Orders/Parts backing arrays (zeroed first, so the
// pooled slab pins no plan trees or column slices from the finished run).
func cleanEntry(e *Entry) {
	plans := e.Plans
	clear(plans[:cap(plans)])
	e.Orders.Clear()
	e.Parts.Clear()
	*e = Entry{Plans: plans[:0], Orders: e.Orders, Parts: e.Parts}
}

// SetAccountant attaches a run accountant; subsequent entry creations, plan
// inserts/prunes and property charges are recorded against it. A nil
// accountant (the default, and after Reset) makes every charge a no-op.
func (m *Memo) SetAccountant(a *resource.Accountant) { m.acct = a }

// AccountedBytes returns the memo's net charged durable bytes — the
// memo-local accounting state Reset must zero on pooled reuse.
func (m *Memo) AccountedBytes() int64 { return m.accounted }

// charge records n durable bytes of kind k against the attached accountant
// and the memo-local tally. Callers pass negative n to release.
func (m *Memo) charge(k resource.Kind, n int64) {
	m.accounted += n
	m.acct.Charge(k, n)
}

// ChargeProperties records n interesting-property values entering the MEMO
// (the counter and generator call it where they extend an entry's
// order/partition lists, the deterministic sites of Section 3.4's ~4 bytes
// per value). Negative n releases.
func (m *Memo) ChargeProperties(n int) {
	if n == 0 {
		return
	}
	m.charge(resource.KindProperty, int64(n)*PropertyValueBytes)
}

// GetOrCreate returns the entry for s, creating it if needed; created
// reports whether this call created it.
func (m *Memo) GetOrCreate(s bitset.Set) (e *Entry, created bool) {
	e, i := m.find(s)
	if e != nil {
		return e, false
	}
	if 4*(m.count+1) > 3*len(m.table) { // grow at 3/4 load
		m.grow()
		_, i = m.find(s)
	}
	k := s.Len()
	e = m.alloc()
	e.Tables = s
	e.OuterEligible = true
	e.SizeOrd = int32(len(m.bySize[k]))
	m.table[i] = idxSlot{key: s, e: e}
	m.count++
	m.bySize[k] = append(m.bySize[k], e)
	s.ForEach(func(t int) {
		i := t*m.nsize + k
		m.posting[i] = append(m.posting[i], e.SizeOrd)
	})
	m.charge(resource.KindMemoEntry, EntryFootprint+int64(k)*postingOrdBytes)
	m.sorted = nil // invalidate the Entries() snapshot
	return e, true
}

// Posting returns the ordinals (SizeOrd values, strictly increasing) of the
// size-k entries whose table set contains table t — the posting list the
// candidate-driven enumerator scans instead of the full size class. The
// returned slice is owned by the MEMO: callers must not mutate it, and must
// not hold it across a GetOrCreate that adds a size-k entry.
func (m *Memo) Posting(t, k int) []int32 {
	return m.posting[t*m.nsize+k]
}

// Reset returns the MEMO to the empty state for a block of n tables,
// keeping the entry map and size buckets so pooled reuse (sync.Pool in the
// estimator's per-request hot path) allocates nothing in steady state.
// Entry pointers obtained before the Reset must not be used afterwards.
func (m *Memo) Reset(n int) {
	clear(m.table) // keep the index capacity; e==nil marks every slot empty
	m.count = 0
	// Clean used slab entries in place: zero their plan/property storage up
	// to capacity (so the pool pins nothing from the finished run) but keep
	// the backing arrays for the next run.
	for i := 0; i < m.nused; i++ {
		cleanEntry(&m.blocks[i/slabBlock][i%slabBlock])
	}
	m.nused = 0
	if n+1 > cap(m.bySize) {
		m.bySize = make([][]*Entry, n+1)
	} else {
		m.bySize = m.bySize[:n+1]
		for i, g := range m.bySize {
			clear(g) // drop stale entry pointers so the pool pins nothing
			m.bySize[i] = g[:0]
		}
	}
	// Resize the posting index first, then truncate over the FULL new
	// length: a Reset to fewer tables followed by a Reset back to more would
	// otherwise resurrect buckets that were beyond the shrunken length and
	// never emptied, replaying stale ordinals into the candidate scan.
	m.nsize = n + 1
	if np := n * (n + 1); np > cap(m.posting) {
		m.posting = make([][]int32, np)
	} else {
		m.posting = m.posting[:np]
		for i, p := range m.posting {
			m.posting[i] = p[:0]
		}
	}
	m.sorted = nil
	m.nplans = 0
	m.PipelineMatters = false
	m.ExpMatters = false
	// Detach the accountant and zero the accounting tally: a pooled MEMO
	// must not carry one run's charges (or its accountant) into the next.
	m.acct = nil
	m.accounted = 0
}

// Entry returns the entry for s, or nil.
func (m *Memo) Entry(s bitset.Set) *Entry {
	e, _ := m.find(s)
	return e
}

// OfSize returns all entries whose table set has k elements, in creation
// order (deterministic given a deterministic enumerator).
func (m *Memo) OfSize(k int) []*Entry {
	if k < 0 || k >= len(m.bySize) {
		return nil
	}
	return m.bySize[k]
}

// NumEntries returns the number of entries.
func (m *Memo) NumEntries() int { return m.count }

// NumPlans returns the number of plans currently stored (post-pruning).
func (m *Memo) NumPlans() int { return m.nplans }

// Entries returns all entries ordered by set size then set value
// (deterministic). The returned slice is a cached snapshot, rebuilt only
// after a GetOrCreate invalidated it; callers must not mutate it.
func (m *Memo) Entries() []*Entry {
	if m.sorted == nil {
		m.sorted = m.sortEntries()
	}
	return m.sorted
}

// sortEntries builds the size-then-set-value ordering from scratch — the
// work Entries once redid on every call.
func (m *Memo) sortEntries() []*Entry {
	out := make([]*Entry, 0, m.count)
	for _, group := range m.bySize {
		g := append([]*Entry(nil), group...)
		sort.Slice(g, func(i, j int) bool { return g[i].Tables < g[j].Tables })
		out = append(out, g...)
	}
	return out
}

// dominates reports whether plan a makes plan b redundant: a costs no more,
// delivers the same partition, and delivers an order at least as general
// (b's order is a prefix of a's). This is the pruning rule of Section 2.1:
// "prunes a higher cost plan if there is a cheaper plan with the same or
// more general properties".
func dominates(a, b *Plan, eq *query.Equiv, m *Memo) bool {
	if a.Cost > b.Cost {
		return false
	}
	if !a.Part.EqualUnder(b.Part, eq) {
		return false
	}
	if m.PipelineMatters && b.Pipelined && !a.Pipelined {
		return false
	}
	if m.ExpMatters && a.DeferredExp != b.DeferredExp {
		return false
	}
	return b.Order.PrefixOfUnder(a.Order, eq)
}

// Dominated reports whether some existing plan of the entry makes p
// redundant — the check InsertPlan applies, exposed so callers (the
// pilot-pass accounting) can distinguish plans the cost bound removed from
// plans ordinary pruning would have removed anyway.
func (m *Memo) Dominated(e *Entry, p *Plan) bool {
	for _, have := range e.Plans {
		if dominates(have, p, e.Equiv, m) {
			return true
		}
	}
	return false
}

// InsertPlan adds p to entry e, applying property-aware pruning in both
// directions. It reports whether the plan survived. The caller counts
// generated plans before calling (pruned plans were still generated — the
// estimator's target quantity is plans generated, not plans kept).
func (m *Memo) InsertPlan(e *Entry, p *Plan) bool {
	for _, have := range e.Plans {
		if dominates(have, p, e.Equiv, m) {
			return false
		}
	}
	kept := e.Plans[:0]
	for _, have := range e.Plans {
		if dominates(p, have, e.Equiv, m) {
			m.nplans--
			m.charge(resource.KindPlan, -PlanFootprint)
			continue
		}
		kept = append(kept, have)
	}
	e.Plans = append(kept, p)
	m.nplans++
	m.charge(resource.KindPlan, PlanFootprint)
	return true
}

// Best returns the cheapest plan of the entry, or nil if it has none.
func (e *Entry) Best() *Plan {
	var best *Plan
	for _, p := range e.Plans {
		if best == nil || p.Cost < best.Cost {
			best = p
		}
	}
	return best
}

// BestWithOrder returns the cheapest plan delivering an order that subsumes
// o (o is a prefix of the plan's order), or nil. The subsumption lookup is
// what creates the paper's coverage effect: a request for a join-column
// order can be answered by a more general ORDER BY order, producing an
// extra merge-join plan.
func (e *Entry) BestWithOrder(o props.Order, eq *query.Equiv) *Plan {
	var best *Plan
	for _, p := range e.Plans {
		if !o.PrefixOfUnder(p.Order, eq) {
			continue
		}
		if best == nil || p.Cost < best.Cost {
			best = p
		}
	}
	return best
}

// BestWithPartition returns the cheapest plan delivering exactly the given
// partition (modulo equivalence), or nil.
func (e *Entry) BestWithPartition(part props.Partition, eq *query.Equiv) *Plan {
	var best *Plan
	for _, p := range e.Plans {
		if !p.Part.EqualUnder(part, eq) {
			continue
		}
		if best == nil || p.Cost < best.Cost {
			best = p
		}
	}
	return best
}

// PropertyListBytes returns the memory the interesting-property lists of
// all entries occupy, assuming the paper's ~4 bytes per property value. The
// estimator's memory-consumption extension (Section 6.2) builds on this.
func (m *Memo) PropertyListBytes() int {
	total := 0
	for i := 0; i < m.nused; i++ {
		e := &m.blocks[i/slabBlock][i%slabBlock]
		total += (e.Orders.Len() + e.Parts.Len()) * PropertyValueBytes
	}
	return total
}
