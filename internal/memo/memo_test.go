package memo

import (
	"testing"
	"testing/quick"

	"cote/internal/bitset"
	"cote/internal/catalog"
	"cote/internal/props"
	"cote/internal/query"
	"cote/internal/resource"
)

// blockFixture builds a two-table block for equivalence-aware tests.
func blockFixture(t *testing.T) *query.Block {
	t.Helper()
	cb := catalog.NewBuilder("m")
	cb.Table("r", 100).Column("a", 10).Column("b", 10)
	cb.Table("s", 100).Column("a", 10)
	cat := cb.Build()
	qb := query.NewBuilder("m", cat)
	qb.AddTable("r", "")
	qb.AddTable("s", "")
	qb.JoinEq("r", "a", "s", "a")
	return qb.MustBuild()
}

func entryFor(blk *query.Block, m *Memo, s bitset.Set) *Entry {
	e, _ := m.GetOrCreate(s)
	e.Equiv = blk.EquivWithin(s)
	return e
}

func TestGetOrCreate(t *testing.T) {
	m := New(2)
	e1, created := m.GetOrCreate(bitset.Of(0))
	if !created || e1 == nil {
		t.Fatal("first GetOrCreate did not create")
	}
	e2, created := m.GetOrCreate(bitset.Of(0))
	if created || e2 != e1 {
		t.Fatal("second GetOrCreate did not return the same entry")
	}
	if m.Entry(bitset.Of(1)) != nil {
		t.Fatal("Entry returned non-existent entry")
	}
	if m.NumEntries() != 1 {
		t.Fatalf("NumEntries = %d", m.NumEntries())
	}
	if !e1.OuterEligible {
		t.Fatal("new entries default to outer-eligible")
	}
}

func TestOfSizeGrouping(t *testing.T) {
	m := New(3)
	m.GetOrCreate(bitset.Of(0))
	m.GetOrCreate(bitset.Of(1))
	m.GetOrCreate(bitset.Of(0, 1))
	if got := len(m.OfSize(1)); got != 2 {
		t.Fatalf("OfSize(1) = %d entries", got)
	}
	if got := len(m.OfSize(2)); got != 1 {
		t.Fatalf("OfSize(2) = %d entries", got)
	}
	if m.OfSize(99) != nil || m.OfSize(-1) != nil {
		t.Fatal("out-of-range OfSize not nil")
	}
	if got := len(m.Entries()); got != 3 {
		t.Fatalf("Entries = %d", got)
	}
}

func TestInsertPlanPruning(t *testing.T) {
	blk := blockFixture(t)
	m := New(2)
	e := entryFor(blk, m, bitset.Of(0))
	rA := query.ColID(0) // r.a

	cheapDC := &Plan{Op: OpTableScan, Tables: e.Tables, Cost: 100}
	expensiveDC := &Plan{Op: OpTableScan, Tables: e.Tables, Cost: 200}
	ordered := &Plan{Op: OpIndexScan, Tables: e.Tables, Cost: 150, Order: props.OrderOn(rA)}

	if !m.InsertPlan(e, cheapDC) {
		t.Fatal("first plan rejected")
	}
	if m.InsertPlan(e, expensiveDC) {
		t.Fatal("dominated DC plan accepted")
	}
	// More expensive but ordered: kept (order violates optimality).
	if !m.InsertPlan(e, ordered) {
		t.Fatal("ordered plan pruned by cheaper unordered plan")
	}
	if len(e.Plans) != 2 || m.NumPlans() != 2 {
		t.Fatalf("plans = %d, NumPlans = %d", len(e.Plans), m.NumPlans())
	}
	// A cheaper ordered plan prunes both the old ordered one and, being
	// more general than DC at lower cost, the DC plan too.
	better := &Plan{Op: OpIndexScan, Tables: e.Tables, Cost: 50, Order: props.OrderOn(rA)}
	if !m.InsertPlan(e, better) {
		t.Fatal("better plan rejected")
	}
	if len(e.Plans) != 1 || e.Plans[0] != better || m.NumPlans() != 1 {
		t.Fatalf("pruning left %d plans", len(e.Plans))
	}
}

func TestInsertPlanSharingAcrossGenerality(t *testing.T) {
	// The paper's plan-sharing effect: a cheap plan ordered on (a, b)
	// prunes a costlier plan ordered on (a) alone.
	blk := blockFixture(t)
	m := New(2)
	e := entryFor(blk, m, bitset.Of(0))
	rA, rB := query.ColID(0), query.ColID(1)

	narrow := &Plan{Op: OpSort, Tables: e.Tables, Cost: 100, Order: props.OrderOn(rA)}
	general := &Plan{Op: OpIndexScan, Tables: e.Tables, Cost: 80, Order: props.OrderOn(rA, rB)}
	m.InsertPlan(e, narrow)
	if !m.InsertPlan(e, general) || len(e.Plans) != 1 {
		t.Fatalf("general plan should prune narrow one; plans = %v", e.Plans)
	}
	// The reverse does not hold: a cheap narrow plan keeps the general one.
	e2 := entryFor(blk, m, bitset.Of(1))
	gen2 := &Plan{Op: OpIndexScan, Tables: e2.Tables, Cost: 100, Order: props.OrderOn(rA, rB)}
	nar2 := &Plan{Op: OpSort, Tables: e2.Tables, Cost: 10, Order: props.OrderOn(rA)}
	m.InsertPlan(e2, gen2)
	m.InsertPlan(e2, nar2)
	if len(e2.Plans) != 2 {
		t.Fatalf("narrow plan wrongly pruned general one; plans = %v", e2.Plans)
	}
}

func TestPartitionBlocksPruning(t *testing.T) {
	blk := blockFixture(t)
	m := New(2)
	e := entryFor(blk, m, bitset.Of(0))
	rA := query.ColID(0)

	p1 := &Plan{Op: OpTableScan, Tables: e.Tables, Cost: 10, Part: props.PartitionOn(4, rA)}
	p2 := &Plan{Op: OpRepartition, Tables: e.Tables, Cost: 500}
	m.InsertPlan(e, p1)
	if !m.InsertPlan(e, p2) {
		t.Fatal("differently partitioned plan pruned")
	}
	if len(e.Plans) != 2 {
		t.Fatal("partition dimension collapsed")
	}
}

func TestEquivalenceAwarePruning(t *testing.T) {
	// After r.a = s.a is applied, an order on s.a dominates one on r.a.
	blk := blockFixture(t)
	m := New(2)
	e := entryFor(blk, m, bitset.Of(0, 1))
	rA, sA := query.ColID(0), query.ColID(2)

	onR := &Plan{Op: OpMGJN, Tables: e.Tables, Cost: 100, Order: props.OrderOn(rA)}
	onS := &Plan{Op: OpMGJN, Tables: e.Tables, Cost: 50, Order: props.OrderOn(sA)}
	m.InsertPlan(e, onR)
	if m.InsertPlan(e, onS) != true || len(e.Plans) != 1 {
		t.Fatalf("equivalent-order plan did not prune; plans = %d", len(e.Plans))
	}
}

func TestBestLookups(t *testing.T) {
	blk := blockFixture(t)
	m := New(2)
	e := entryFor(blk, m, bitset.Of(0))
	rA, rB := query.ColID(0), query.ColID(1)

	if e.Best() != nil || e.BestWithOrder(props.OrderOn(rA), e.Equiv) != nil {
		t.Fatal("lookups on empty entry not nil")
	}
	dc := &Plan{Op: OpTableScan, Tables: e.Tables, Cost: 10}
	ab := &Plan{Op: OpIndexScan, Tables: e.Tables, Cost: 40, Order: props.OrderOn(rA, rB)}
	m.InsertPlan(e, dc)
	m.InsertPlan(e, ab)

	if e.Best() != dc {
		t.Fatal("Best != cheapest")
	}
	// Coverage: a request for (a) is satisfied by the (a,b) plan.
	if got := e.BestWithOrder(props.OrderOn(rA), e.Equiv); got != ab {
		t.Fatalf("BestWithOrder(a) = %v", got)
	}
	if got := e.BestWithOrder(props.OrderOn(rB), e.Equiv); got != nil {
		t.Fatal("BestWithOrder(b) found a plan")
	}
	// Partition lookup.
	part := props.PartitionOn(4, rA)
	pp := &Plan{Op: OpRepartition, Tables: e.Tables, Cost: 99, Part: part}
	m.InsertPlan(e, pp)
	if got := e.BestWithPartition(part, e.Equiv); got != pp {
		t.Fatal("BestWithPartition wrong")
	}
	if got := e.BestWithPartition(props.PartitionOn(8, rA), e.Equiv); got != nil {
		t.Fatal("BestWithPartition matched wrong node count")
	}
}

func TestPropertyListBytes(t *testing.T) {
	blk := blockFixture(t)
	m := New(2)
	e := entryFor(blk, m, bitset.Of(0))
	eq := e.Equiv
	e.Orders.Add(props.OrderOn(0), eq)
	e.Orders.Add(props.OrderOn(1), eq)
	e.Parts.Add(props.PartitionOn(4, 0), eq)
	if got := m.PropertyListBytes(); got != 12 {
		t.Fatalf("PropertyListBytes = %d, want 12", got)
	}
}

func TestOperatorStrings(t *testing.T) {
	for op := OpTableScan; op <= OpGroupBy; op++ {
		if op.String() == "" {
			t.Fatalf("operator %d has empty name", op)
		}
	}
	if OpNLJN.JoinMethod() != props.NLJN || OpMGJN.JoinMethod() != props.MGJN || OpHSJN.JoinMethod() != props.HSJN {
		t.Fatal("JoinMethod mapping wrong")
	}
	if OpSort.JoinMethod() >= 0 {
		t.Fatal("non-join operator mapped to a join method")
	}
	p := &Plan{Op: OpNLJN, Left: &Plan{Op: OpTableScan, Tables: bitset.Of(0)}, Right: &Plan{Op: OpTableScan, Tables: bitset.Of(1)}}
	if p.String() == "" || (*Plan)(nil).String() != "<nil>" {
		t.Fatal("plan String wrong")
	}
}

// Property: after any insertion sequence, no plan in an entry dominates
// another (the invariant the MEMO maintains), and NumPlans matches the sum
// of per-entry plan counts.
func TestQuickMemoInvariant(t *testing.T) {
	blk := blockFixture(t)
	f := func(raw []uint16) bool {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		m := New(2)
		e := entryFor(blk, m, bitset.Of(0))
		for _, r := range raw {
			cost := float64(r%97) + 1
			var o props.Order
			switch r % 3 {
			case 1:
				o = props.OrderOn(0)
			case 2:
				o = props.OrderOn(0, 1)
			}
			m.InsertPlan(e, &Plan{Op: OpTableScan, Tables: e.Tables, Cost: cost, Order: o})
		}
		for i, a := range e.Plans {
			for j, b := range e.Plans {
				if i != j && dominates(a, b, e.Equiv, m) {
					return false
				}
			}
		}
		return m.NumPlans() == len(e.Plans)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesSnapshotInvalidation(t *testing.T) {
	m := New(3)
	m.GetOrCreate(bitset.Of(1))
	m.GetOrCreate(bitset.Of(0))
	first := m.Entries()
	if len(first) != 2 || first[0].Tables != bitset.Of(0) || first[1].Tables != bitset.Of(1) {
		t.Fatalf("Entries not sorted by set value: %v", first)
	}
	if again := m.Entries(); &again[0] != &first[0] {
		t.Fatal("Entries rebuilt the snapshot without an intervening GetOrCreate")
	}
	m.GetOrCreate(bitset.Of(0, 1)) // invalidates
	all := m.Entries()
	if len(all) != 3 || all[2].Tables != bitset.Of(0, 1) {
		t.Fatalf("Entries missed the new entry after invalidation: %v", all)
	}
}

// TestPostingIndex checks the connectivity-index invariant by brute force:
// Posting(t, k) lists exactly the SizeOrds of the size-k entries whose table
// set contains t, in creation order, and SizeOrd is each entry's index in
// OfSize(k).
func TestPostingIndex(t *testing.T) {
	const n = 5
	m := New(n)
	// Create a mix of sizes in a deliberately scrambled order.
	sets := []bitset.Set{
		bitset.Of(2), bitset.Of(0), bitset.Of(1, 3), bitset.Of(4),
		bitset.Of(0, 2), bitset.Of(1, 3, 4), bitset.Of(0, 1, 2),
		bitset.Of(3), bitset.Of(2, 4),
	}
	for _, s := range sets {
		m.GetOrCreate(s)
	}
	for k := 1; k <= n; k++ {
		for ord, e := range m.OfSize(k) {
			if int(e.SizeOrd) != ord {
				t.Fatalf("entry %v: SizeOrd = %d, want %d", e.Tables, e.SizeOrd, ord)
			}
		}
		for tab := 0; tab < n; tab++ {
			var want []int32
			for ord, e := range m.OfSize(k) {
				if e.Tables.Contains(tab) {
					want = append(want, int32(ord))
				}
			}
			got := m.Posting(tab, k)
			if len(got) != len(want) {
				t.Fatalf("Posting(%d,%d) = %v, want %v", tab, k, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Posting(%d,%d) = %v, want %v", tab, k, got, want)
				}
			}
		}
	}
	if got := m.Posting(0, n+1); got != nil {
		t.Fatalf("out-of-range Posting = %v, want nil", got)
	}
}

// TestResetPostingIndex is the regression test for the pooled-reuse hazard:
// both the cached Entries snapshot and the posting index must be invalidated
// by Reset, including the shrink-then-grow-within-capacity path where stale
// buckets beyond the shrunk length could otherwise resurrect old ordinals.
func TestResetPostingIndex(t *testing.T) {
	m := New(4)
	m.GetOrCreate(bitset.Of(3))
	m.GetOrCreate(bitset.Of(2, 3))
	m.GetOrCreate(bitset.Of(1, 2, 3))
	if len(m.Posting(3, 3)) != 1 {
		t.Fatal("setup: posting not populated")
	}

	// Shrink: buckets for table 3 fall outside the new length but stay in
	// capacity.
	m.Reset(2)
	for tab := 0; tab < 2; tab++ {
		for k := 1; k <= 2; k++ {
			if got := m.Posting(tab, k); len(got) != 0 {
				t.Fatalf("Reset(2): Posting(%d,%d) kept %v", tab, k, got)
			}
		}
	}

	// Grow back within capacity: the old table-3 buckets must come back
	// empty, not with the pre-Reset ordinals.
	m.Reset(4)
	for tab := 0; tab < 4; tab++ {
		for k := 1; k <= 4; k++ {
			if got := m.Posting(tab, k); len(got) != 0 {
				t.Fatalf("Reset(4) after Reset(2): Posting(%d,%d) resurrected %v", tab, k, got)
			}
		}
	}
	// And the index works for fresh entries after the round trip.
	m.GetOrCreate(bitset.Of(3))
	if got := m.Posting(3, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("posting after Reset round trip = %v, want [0]", got)
	}
	if got := m.Entries(); len(got) != 1 {
		t.Fatalf("Entries after Reset round trip = %v", got)
	}
}

// BenchmarkEntries measures the cached-snapshot lookup against the sort the
// method once redid on every call (rebuild case included for contrast).
func BenchmarkEntries(b *testing.B) {
	const n = 12
	m := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.GetOrCreate(bitset.Of(i, j))
		}
	}
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		m.Entries() // warm
		for i := 0; i < b.N; i++ {
			if len(m.Entries()) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.sorted = nil
			if len(m.Entries()) == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// TestReset exercises the pooled-reuse path: a Reset MEMO must behave like
// a fresh New for any (smaller, equal, larger) table count, with the
// Entries snapshot invalidated and no state leaking from the previous use.
func TestReset(t *testing.T) {
	m := New(3)
	m.GetOrCreate(bitset.Of(0))
	m.GetOrCreate(bitset.Of(1, 2))
	e, _ := m.GetOrCreate(bitset.Of(1))
	m.InsertPlan(e, &Plan{Tables: bitset.Of(1), Cost: 1})
	m.PipelineMatters, m.ExpMatters = true, true
	if len(m.Entries()) != 3 {
		t.Fatal("setup failed")
	}

	for _, n := range []int{2, 3, 7} {
		m.Reset(n)
		if m.NumEntries() != 0 || m.NumPlans() != 0 {
			t.Fatalf("Reset(%d) kept %d entries, %d plans", n, m.NumEntries(), m.NumPlans())
		}
		if m.PipelineMatters || m.ExpMatters {
			t.Fatalf("Reset(%d) kept property flags", n)
		}
		if got := m.Entries(); len(got) != 0 {
			t.Fatalf("Reset(%d) kept a stale Entries snapshot: %v", n, got)
		}
		if m.Entry(bitset.Of(1)) != nil {
			t.Fatalf("Reset(%d) kept an entry", n)
		}
		// The MEMO is fully usable at the new size.
		all := bitset.Of(n - 1)
		m.GetOrCreate(all)
		if got := m.OfSize(1); len(got) != 1 || got[0].Tables != all {
			t.Fatalf("Reset(%d) size buckets broken: %v", n, got)
		}
	}
}

// TestResetZeroesAccounting is the accounting analogue of the stale-postings
// rule: a pooled MEMO must not carry one run's accountant or charge tally
// into the next borrower. Reset must detach the accountant, zero the local
// tally, and leave the old run's accountant untouched by later activity.
func TestResetZeroesAccounting(t *testing.T) {
	blk := blockFixture(t)
	acct := resource.New()
	m := New(2)
	m.SetAccountant(acct)

	e := entryFor(blk, m, bitset.Of(0))
	m.InsertPlan(e, &Plan{Op: OpTableScan, Tables: e.Tables, Cost: 100})
	m.ChargeProperties(3)

	wantLocal := EntryFootprint + int64(1)*4 /* one posting ordinal */ +
		PlanFootprint + 3*PropertyValueBytes
	if got := m.AccountedBytes(); got != wantLocal {
		t.Fatalf("AccountedBytes = %d, want %d", got, wantLocal)
	}
	if got := acct.DurableUsed(); got != wantLocal {
		t.Fatalf("accountant DurableUsed = %d, want %d", got, wantLocal)
	}

	frozen := acct.DurableUsed()
	m.Reset(2)
	if got := m.AccountedBytes(); got != 0 {
		t.Fatalf("AccountedBytes after Reset = %d, want 0 — pooled reuse would inherit stale charges", got)
	}
	// Post-Reset activity must not reach the previous run's accountant.
	entryFor(blk, m, bitset.Of(1))
	m.ChargeProperties(5)
	if got := acct.DurableUsed(); got != frozen {
		t.Fatalf("detached accountant moved %d -> %d after Reset", frozen, got)
	}
	// The memo-local tally still works without an accountant (the estimate
	// path relies on it), and re-attaching starts a clean run.
	if got := m.AccountedBytes(); got <= 0 {
		t.Fatalf("AccountedBytes after detached activity = %d, want > 0", got)
	}
	acct2 := resource.New()
	m.Reset(2)
	m.SetAccountant(acct2)
	entryFor(blk, m, bitset.Of(0))
	if got, local := acct2.DurableUsed(), m.AccountedBytes(); got != local || got <= 0 {
		t.Fatalf("fresh accountant got %d, local tally %d", got, local)
	}
}
