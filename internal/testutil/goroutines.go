// Package testutil holds shared test infrastructure: the goroutine-leak
// guard the service, cancellation and chaos tests register, and a build-tag
// mirror of the race detector so tests can scale their load to it.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutine count and registers a cleanup that
// fails t if, after the test body finishes, the count has not returned to
// the snapshot (plus a small slack for runtime helpers). Cooperatively
// cancelled work needs a moment to unwind, so the cleanup polls with GC
// nudges for up to five seconds before declaring a leak, and dumps all
// goroutine stacks on failure so the leaked ones are identifiable.
//
// Register it first thing in the test, before any server or pool is built,
// so everything the test starts is inside the guard.
func CheckGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		const slack = 2
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			runtime.GC()
			after = runtime.NumGoroutine()
			if after <= before+slack || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before+slack {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after (slack %d)\n%s",
				before, after, slack, buf[:n])
		}
	})
}
