//go:build !race

package testutil

// RaceEnabled reports whether the binary was built with -race; load tests
// scale their concurrency and iteration counts down under it.
const RaceEnabled = false
