// Package lru implements a small fixed-capacity least-recently-used map.
// It is the eviction engine behind the bounded statement cache (the
// Section 1.2 baseline) and the serving layer's estimate cache; both wrap
// it with their own locking, so the cache itself is deliberately not safe
// for concurrent use.
package lru

// Cache maps K to V, keeping at most Cap entries and evicting the least
// recently used one on overflow. Get and Put both count as a use.
type Cache[K comparable, V any] struct {
	capacity   int
	entries    map[K]*node[K, V]
	head, tail *node[K, V] // head is the most recently used
}

type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next *node[K, V]
}

// New returns an empty cache holding at most capacity entries. Capacities
// below 1 are raised to 1.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{capacity: capacity, entries: make(map[K]*node[K, V])}
}

// Get returns the value stored under k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	n, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(n)
	return n.val, true
}

// Put stores v under k, marking it most recently used. When the insert
// overflows the capacity it evicts the least recently used entry and
// returns its key with evicted = true.
func (c *Cache[K, V]) Put(k K, v V) (evictedKey K, evicted bool) {
	if n, ok := c.entries[k]; ok {
		n.val = v
		c.moveToFront(n)
		var zero K
		return zero, false
	}
	n := &node[K, V]{key: k, val: v}
	c.entries[k] = n
	c.pushFront(n)
	if len(c.entries) <= c.capacity {
		var zero K
		return zero, false
	}
	lru := c.tail
	c.unlink(lru)
	delete(c.entries, lru.key)
	return lru.key, true
}

// Len returns the number of stored entries.
func (c *Cache[K, V]) Len() int { return len(c.entries) }

// Cap returns the capacity.
func (c *Cache[K, V]) Cap() int { return c.capacity }

// Contains reports whether k is stored, without marking it used.
func (c *Cache[K, V]) Contains(k K) bool {
	_, ok := c.entries[k]
	return ok
}

func (c *Cache[K, V]) pushFront(n *node[K, V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache[K, V]) moveToFront(n *node[K, V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
