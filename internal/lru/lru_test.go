package lru

import (
	"sync"
	"testing"
)

func TestPutGetUpdate(t *testing.T) {
	c := New[string, int](3)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("update lost: %d", v)
	}
	if c.Len() != 2 || c.Cap() != 3 {
		t.Fatalf("len %d cap %d", c.Len(), c.Cap())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Get(1) // 2 is now the LRU
	if k, ev := c.Put(3, 3); !ev || k != 2 {
		t.Fatalf("evicted %d, %v; want 2", k, ev)
	}
	if c.Contains(2) {
		t.Fatal("evicted key still present")
	}
	for _, k := range []int{1, 3} {
		if !c.Contains(k) {
			t.Fatalf("key %d missing", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPutRefreshesRecency(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(1, 11) // re-Put makes 1 the MRU
	if k, ev := c.Put(3, 3); !ev || k != 2 {
		t.Fatalf("evicted %d, %v; want 2", k, ev)
	}
}

func TestCapacityClamped(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	if k, ev := c.Put(2, 2); !ev || k != 1 {
		t.Fatalf("cap-1 cache kept both: evicted %d, %v", k, ev)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestChurnKeepsListConsistent(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 1000; i++ {
		c.Put(i%13, i)
		c.Get(i % 7)
		if c.Len() > 8 {
			t.Fatalf("len %d exceeds cap", c.Len())
		}
	}
	// Walk the list both ways and compare with the map size.
	n := 0
	for p := c.head; p != nil; p = p.next {
		n++
	}
	if n != c.Len() {
		t.Fatalf("forward walk %d != len %d", n, c.Len())
	}
	n = 0
	for p := c.tail; p != nil; p = p.prev {
		n++
	}
	if n != c.Len() {
		t.Fatalf("backward walk %d != len %d", n, c.Len())
	}
}

// TestParallelGetPutEviction hammers a mutex-wrapped cache — the locking
// discipline every user of this package follows — from many goroutines at a
// capacity small enough that most Puts evict. Under -race this checks the
// eviction path's list surgery never escapes the caller's critical section;
// afterwards the list is walked for consistency like TestChurnKeepsListConsistent.
func TestParallelGetPutEviction(t *testing.T) {
	const (
		capacity   = 8
		goroutines = 8
		ops        = 2000
	)
	var mu sync.Mutex
	c := New[int, int](capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := (g*ops + i) % 29
				mu.Lock()
				if i%3 == 0 {
					if v, ok := c.Get(k); ok && v%29 != k {
						t.Errorf("key %d holds value %d", k, v)
					}
				} else {
					c.Put(k, k+29*g)
				}
				if c.Len() > capacity {
					t.Errorf("len %d exceeds cap %d", c.Len(), capacity)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	if c.Len() != capacity {
		t.Fatalf("len = %d after saturating churn, want %d", c.Len(), capacity)
	}
	n := 0
	for p := c.head; p != nil; p = p.next {
		n++
	}
	if n != c.Len() {
		t.Fatalf("forward walk %d != len %d", n, c.Len())
	}
	n = 0
	for p := c.tail; p != nil; p = p.prev {
		n++
	}
	if n != c.Len() {
		t.Fatalf("backward walk %d != len %d", n, c.Len())
	}
}
