// Package experiments reproduces the paper's evaluation (Section 5): one
// runner per figure or table, each returning the rows the paper plots so
// that cmd/cotebench and the top-level benchmarks can print them. The
// optimization level matches the paper's setup — dynamic programming with a
// composite-inner-size limit — and each workload runs on the serial or the
// 4-node parallel version as in the original.
package experiments

import (
	"context"
	"fmt"
	"time"

	"cote/internal/core"
	"cote/internal/cost"
	"cote/internal/opt"
	"cote/internal/props"
	"cote/internal/query"
	"cote/internal/stats"
	"cote/internal/workload"
)

// Level is the optimization level of all experiments, matching "a level of
// optimization that uses dynamic programming with certain limits on the
// composite inner size".
const Level = opt.LevelHighInner2

// ConfigFor returns the cost configuration matching a workload's _s/_p
// suffix.
func ConfigFor(w *workload.Workload) *cost.Config {
	if len(w.Name) > 0 && w.Name[len(w.Name)-1] == 'p' {
		return cost.Parallel4
	}
	return cost.Serial
}

// timedOptimize compiles a query repeatedly and returns the best-observed
// result; wall-clock medians of small repetition counts keep the figures
// stable without distorting ratios.
func timedOptimize(q workload.Query, cfg *cost.Config) (*opt.Result, error) {
	var best *opt.Result
	for i := 0; i < 3; i++ {
		res, err := opt.Optimize(q.Block, opt.Options{Level: Level, Config: cfg})
		if err != nil {
			return nil, err
		}
		if best == nil || res.Elapsed < best.Elapsed {
			best = res
		}
	}
	return best, nil
}

// timedEstimate runs the estimator repeatedly and returns the best-observed
// run.
func timedEstimate(q workload.Query, cfg *cost.Config, model *core.TimeModel) (*core.Estimate, error) {
	var best *core.Estimate
	for i := 0; i < 3; i++ {
		est, err := core.EstimatePlans(q.Block, core.Options{Level: Level, Config: cfg, Model: model})
		if err != nil {
			return nil, err
		}
		if best == nil || est.Elapsed < best.Elapsed {
			best = est
		}
	}
	return best, nil
}

// --- Figure 2 ---

// Fig2Row is the compilation-time breakdown of one workload.
type Fig2Row struct {
	Workload                            string
	MGJN, NLJN, HSJN, PlanSaving, Other float64 // percentages
}

// Fig2Breakdown measures where compilation time goes on a workload —
// the paper's customer-workload pie chart (MGJN 37%, NLJN 34%, HSJN 5%,
// plan saving 16%, other 8%).
func Fig2Breakdown(w *workload.Workload) (Fig2Row, error) {
	cfg := ConfigFor(w)
	var agg opt.Breakdown
	var total time.Duration
	for _, q := range w.Queries {
		res, err := timedOptimize(q, cfg)
		if err != nil {
			return Fig2Row{}, fmt.Errorf("%s: %w", q.Name, err)
		}
		b := res.Breakdown()
		weight := res.Elapsed.Seconds()
		agg.MGJN += b.MGJN * weight
		agg.NLJN += b.NLJN * weight
		agg.HSJN += b.HSJN * weight
		agg.PlanSaving += b.PlanSaving * weight
		agg.Other += b.Other * weight
		total += res.Elapsed
	}
	t := total.Seconds()
	if t == 0 {
		return Fig2Row{Workload: w.Name, Other: 100}, nil
	}
	return Fig2Row{
		Workload: w.Name,
		MGJN:     100 * agg.MGJN / t, NLJN: 100 * agg.NLJN / t,
		HSJN: 100 * agg.HSJN / t, PlanSaving: 100 * agg.PlanSaving / t,
		Other: 100 * agg.Other / t,
	}, nil
}

// --- Figure 4 ---

// OverheadRow compares one query's real compilation time with the time the
// estimator took.
type OverheadRow struct {
	Query    string
	Actual   time.Duration
	Estimate time.Duration
	Pct      float64
}

// Fig4Overhead measures estimation overhead against real compilation for a
// workload (Figures 4a-4c; the paper reports 0.3%-3%).
func Fig4Overhead(w *workload.Workload) ([]OverheadRow, error) {
	cfg := ConfigFor(w)
	var out []OverheadRow
	for _, q := range w.Queries {
		res, err := timedOptimize(q, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		est, err := timedEstimate(q, cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		out = append(out, OverheadRow{
			Query:    q.Name,
			Actual:   res.Elapsed,
			Estimate: est.Elapsed,
			Pct:      100 * est.Elapsed.Seconds() / res.Elapsed.Seconds(),
		})
	}
	return out, nil
}

// --- Figure 5 ---

// PlanRow compares estimated and actual generated plan counts for one query
// and join method.
type PlanRow struct {
	Query     string
	Method    props.JoinMethod
	Actual    int
	Estimated int
}

// Fig5Plans compares estimated against actual generated-plan counts per
// join method on a workload (Figures 5a-5i).
func Fig5Plans(w *workload.Workload) ([]PlanRow, error) {
	cfg := ConfigFor(w)
	var out []PlanRow
	for _, q := range w.Queries {
		res, err := opt.Optimize(q.Block, opt.Options{Level: Level, Config: cfg})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		est, err := core.EstimatePlans(q.Block, core.Options{Level: Level, Config: cfg})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		actual := core.CountsFrom(res.TotalCounters())
		for m := props.JoinMethod(0); m < props.NumJoinMethods; m++ {
			out = append(out, PlanRow{
				Query: q.Name, Method: m,
				Actual:    actual.ByMethod[m],
				Estimated: est.Counts.ByMethod[m],
			})
		}
	}
	return out, nil
}

// PlanErrors summarizes Fig5 rows per method as mean relative errors.
func PlanErrors(rows []PlanRow) map[props.JoinMethod]stats.Summary {
	est := map[props.JoinMethod][]float64{}
	act := map[props.JoinMethod][]float64{}
	for _, r := range rows {
		if r.Actual == 0 {
			continue
		}
		est[r.Method] = append(est[r.Method], float64(r.Estimated))
		act[r.Method] = append(act[r.Method], float64(r.Actual))
	}
	out := map[props.JoinMethod]stats.Summary{}
	for m := range est {
		s, err := stats.Summarize(est[m], act[m])
		if err == nil {
			out[m] = s
		}
	}
	return out
}

// --- Figure 6 ---

// TimeRow compares one query's predicted compilation time with its actual.
type TimeRow struct {
	Query     string
	Actual    time.Duration
	Predicted time.Duration
	RelErr    float64
}

// TrainModel calibrates the Ct constants for a configuration by compiling
// the training workloads and regressing measured times on actual plan
// counts, exactly as Section 3.5 prescribes. One model per configuration
// (serial/parallel), as the paper keeps distinct constant sets. Each query
// contributes observations at two optimization levels, which shifts the
// NLJN:MGJN:HSJN proportions between observations and keeps the regression
// well conditioned.
func TrainModel(training []*workload.Workload) (*core.TimeModel, error) {
	var pts []core.TrainingPoint
	for _, w := range training {
		cfg := ConfigFor(w)
		for _, q := range w.Queries {
			for _, level := range []opt.Level{Level, opt.LevelMediumLeftDeep} {
				var best *opt.Result
				for i := 0; i < 3; i++ {
					res, err := opt.Optimize(q.Block, opt.Options{Level: level, Config: cfg})
					if err != nil {
						return nil, fmt.Errorf("%s: %w", q.Name, err)
					}
					if best == nil || res.Elapsed < best.Elapsed {
						best = res
					}
				}
				pts = append(pts, core.TrainingPointFrom(best.TotalCounters(), best.Elapsed))
			}
		}
	}
	return core.Calibrate(pts)
}

// Fig6Times predicts compilation times for a workload with the calibrated
// model and compares with measured actuals (Figures 6a-6f).
func Fig6Times(w *workload.Workload, model *core.TimeModel) ([]TimeRow, error) {
	cfg := ConfigFor(w)
	var out []TimeRow
	for _, q := range w.Queries {
		res, err := timedOptimize(q, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		est, err := timedEstimate(q, cfg, model)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		out = append(out, TimeRow{
			Query: q.Name, Actual: res.Elapsed, Predicted: est.PredictedTime,
			RelErr: stats.RelErr(est.PredictedTime.Seconds(), res.Elapsed.Seconds()),
		})
	}
	return out, nil
}

// TimeErrors summarizes time rows.
func TimeErrors(rows []TimeRow) stats.Summary {
	var est, act []float64
	for _, r := range rows {
		est = append(est, r.Predicted.Seconds())
		act = append(act, r.Actual.Seconds())
	}
	s, _ := stats.Summarize(est, act)
	return s
}

// --- Section 5.3: join-count baseline comparison ---

// BaselineRow compares the plan-level and join-level models on one query.
type BaselineRow struct {
	Query     string
	Actual    time.Duration
	PlanModel time.Duration
	JoinModel time.Duration
	PlanErr   float64
	JoinErr   float64
}

// JoinBaseline fits the best possible join-count model on the workload
// itself (leave-nothing-out: the most charitable treatment) and contrasts
// its per-query errors with the plan-count model's — the paper's "errors of
// 20 times larger, no matter how we chose the time per join" claim on the
// star batches.
func JoinBaseline(w *workload.Workload, model *core.TimeModel) ([]BaselineRow, error) {
	cfg := ConfigFor(w)
	type obs struct {
		q     workload.Query
		res   *opt.Result
		pairs int
	}
	var os []obs
	var jpts []core.JoinTrainingPoint
	for _, q := range w.Queries {
		res, err := timedOptimize(q, cfg)
		if err != nil {
			return nil, err
		}
		jc, err := core.CountJoins(q.Block, core.Options{Level: Level, Config: cfg})
		if err != nil {
			return nil, err
		}
		os = append(os, obs{q, res, jc.Pairs})
		jpts = append(jpts, core.JoinTrainingPoint{Pairs: jc.Pairs, Actual: res.Elapsed})
	}
	jmodel, err := core.CalibrateJoinCount(jpts)
	if err != nil {
		return nil, err
	}
	var out []BaselineRow
	for _, o := range os {
		est, err := core.EstimatePlans(o.q.Block, core.Options{Level: Level, Config: cfg, Model: model})
		if err != nil {
			return nil, err
		}
		jp := jmodel.Predict(o.pairs)
		out = append(out, BaselineRow{
			Query:     o.q.Name,
			Actual:    o.res.Elapsed,
			PlanModel: est.PredictedTime,
			JoinModel: jp,
			PlanErr:   stats.RelErr(est.PredictedTime.Seconds(), o.res.Elapsed.Seconds()),
			JoinErr:   stats.RelErr(jp.Seconds(), o.res.Elapsed.Seconds()),
		})
	}
	return out, nil
}

// --- Section 6.1: pilot-pass pruning ---

// PilotRow reports the fraction of generated plans a pilot-pass bound
// prunes on one query.
type PilotRow struct {
	Query      string
	Generated  int
	Pruned     int
	PrunedFrac float64
}

// PilotPass measures pilot-pass pruning effectiveness on a workload; the
// paper's analysis found no more than 10% of plans pruned on real
// workloads.
func PilotPass(w *workload.Workload) ([]PilotRow, error) {
	cfg := ConfigFor(w)
	var out []PilotRow
	for _, q := range w.Queries {
		res, err := opt.Optimize(q.Block, opt.Options{Level: Level, Config: cfg, PilotPass: true})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		c := res.TotalCounters()
		gen := c.TotalGenerated()
		row := PilotRow{Query: q.Name, Generated: gen, Pruned: c.PilotPruned}
		if gen > 0 {
			row.PrunedFrac = float64(c.PilotPruned) / float64(gen)
		}
		out = append(out, row)
	}
	return out, nil
}

// --- Section 6.2: memory estimation ---

// MemoryRow compares the estimator's optimizer-memory lower bound with the
// actual MEMO footprint of real optimization.
type MemoryRow struct {
	Query          string
	PredictedBytes int64
	ActualPlans    int
	ActualBytes    int64
}

// MemoryEstimates runs the Section 6.2 memory extension over a workload.
func MemoryEstimates(w *workload.Workload) ([]MemoryRow, error) {
	cfg := ConfigFor(w)
	const bytesPerPlan = 256
	var out []MemoryRow
	for _, q := range w.Queries {
		est, err := core.EstimatePlans(q.Block, core.Options{Level: Level, Config: cfg})
		if err != nil {
			return nil, err
		}
		res, err := opt.Optimize(q.Block, opt.Options{Level: Level, Config: cfg})
		if err != nil {
			return nil, err
		}
		plans := 0
		for _, b := range res.Blocks {
			plans += b.Memo.NumPlans()
		}
		out = append(out, MemoryRow{
			Query:          q.Name,
			PredictedBytes: est.PredictedMemoryBytes,
			ActualPlans:    plans,
			ActualBytes:    int64(plans) * bytesPerPlan,
		})
	}
	return out, nil
}

// --- Resource accounting: calibrated memory model evaluation ---

// MemFigRow compares the memory model's predicted peak bytes with the
// measured durable high-water of the corresponding real compilation.
type MemFigRow struct {
	Workload  string
	Query     string
	Level     opt.Level
	Predicted int64
	Measured  int64
}

// Ratio returns predicted/measured (0 when nothing was measured).
func (r MemFigRow) Ratio() float64 {
	if r.Measured == 0 {
		return 0
	}
	return float64(r.Predicted) / float64(r.Measured)
}

// memPointAt compiles one query at one level under a resource accountant and
// pairs the estimator's structural counts with the measured durable peak.
func memPointAt(q workload.Query, cfg *cost.Config, level opt.Level) (*core.Estimate, int64, error) {
	est, err := core.EstimatePlans(q.Block, core.Options{Level: level, Config: cfg})
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", q.Name, err)
	}
	res, err := opt.OptimizeCtx(context.Background(), q.Block, opt.Options{Level: level, Config: cfg})
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", q.Name, err)
	}
	return est, res.Resources.DurablePeakBytes, nil
}

// MemCalibrationPass runs one memory-calibration pass: it compiles every
// query of every workload at every level under a resource accountant, pairs
// each estimate's structural counts with the measured durable peak, and fits
// a memory model on the pooled points — the memory-side analogue of fitting
// the Ct constants.
func MemCalibrationPass(workloads []*workload.Workload, levels []opt.Level) (*core.MemModel, error) {
	var points []core.MemPoint
	for _, w := range workloads {
		cfg := ConfigFor(w)
		for _, q := range w.Queries {
			for _, level := range levels {
				est, peak, err := memPointAt(q, cfg, level)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", w.Name, err)
				}
				points = append(points, core.MemPointFrom(est, peak))
			}
		}
	}
	return core.CalibrateMemory(points)
}

// MemFig evaluates a memory model on a workload: per query and level, the
// predicted peak bytes under the model against the measured durable peak of
// a real compilation. A nil model selects the uncalibrated structural
// default.
func MemFig(w *workload.Workload, levels []opt.Level, m *core.MemModel) ([]MemFigRow, error) {
	cfg := ConfigFor(w)
	var out []MemFigRow
	for _, q := range w.Queries {
		for _, level := range levels {
			est, peak, err := memPointAt(q, cfg, level)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", w.Name, err)
			}
			out = append(out, MemFigRow{
				Workload:  w.Name,
				Query:     q.Name,
				Level:     level,
				Predicted: core.EstimateMemory(est, m),
				Measured:  peak,
			})
		}
	}
	return out, nil
}

// --- Section 6.2: multi-level piggyback ---

// PiggybackRow reports per-level estimates from a single enumeration pass.
type PiggybackRow struct {
	Query   string
	Level   opt.Level
	Joins   int
	Plans   int
	Elapsed time.Duration
}

// Piggyback estimates several optimization levels in one pass for each
// query of a workload.
func Piggyback(w *workload.Workload, levels []opt.Level) ([]PiggybackRow, error) {
	cfg := ConfigFor(w)
	var out []PiggybackRow
	for _, q := range w.Queries {
		multi, err := core.EstimateLevels(q.Block, opt.LevelHigh, levels, core.Options{Config: cfg})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		for _, l := range levels {
			out = append(out, PiggybackRow{
				Query: q.Name, Level: l,
				Joins: multi.Joins[l], Plans: multi.Counts[l].Total(),
				Elapsed: multi.Elapsed,
			})
		}
	}
	return out, nil
}

// --- Ablations (DESIGN.md section 5) ---

// AblationRow compares estimator variants on one workload.
type AblationRow struct {
	Variant   string
	TotalEst  int
	TotalAct  int
	MeanErr   float64
	Elapsed   time.Duration
	PropBytes int
}

// Ablations runs the estimator design-choice ablations on a workload:
// separate vs compound lists, and first-join-only vs every-join
// propagation.
func Ablations(w *workload.Workload) ([]AblationRow, error) {
	cfg := ConfigFor(w)
	variants := []struct {
		name string
		opts core.Options
	}{
		{"separate+firstjoin (paper)", core.Options{Level: Level, Config: cfg}},
		{"compound lists", core.Options{Level: Level, Config: cfg, ListMode: core.CompoundLists}},
		{"propagate every join", core.Options{Level: Level, Config: cfg, PropagateEveryJoin: true}},
	}
	var out []AblationRow
	for _, v := range variants {
		row := AblationRow{Variant: v.name}
		var est, act []float64
		start := time.Now()
		for _, q := range w.Queries {
			res, err := opt.Optimize(q.Block, opt.Options{Level: Level, Config: cfg})
			if err != nil {
				return nil, err
			}
			e, err := core.EstimatePlans(q.Block, v.opts)
			if err != nil {
				return nil, err
			}
			actual := core.CountsFrom(res.TotalCounters())
			row.TotalEst += e.Counts.Total()
			row.TotalAct += actual.Total()
			est = append(est, float64(e.Counts.Total()))
			act = append(act, float64(actual.Total()))
			for _, be := range e.Blocks {
				row.PropBytes += be.PropertyBytes
			}
		}
		row.Elapsed = time.Since(start)
		s, _ := stats.Summarize(est, act)
		row.MeanErr = s.Mean
		out = append(out, row)
	}
	return out, nil
}

// --- Extensions: pipeline property and statement cache ---

// PipelineRow compares plan counts with and without FETCH FIRST for one
// star shape.
type PipelineRow struct {
	Query                   string
	PlainActual, PlainEst   int
	FirstNActual, FirstNEst int
}

// PipelineExtension measures how the pipelineability property (Table 1)
// grows the search space and how the estimator tracks it, on the star
// workload with FETCH FIRST 10 added.
func PipelineExtension() ([]PipelineRow, error) {
	var out []PipelineRow
	for _, n := range []int{6, 8} {
		for preds := 1; preds <= 3; preds++ {
			row := PipelineRow{Query: fmt.Sprintf("star_n%d_p%d", n, preds)}
			for _, firstN := range []int{0, 10} {
				blk := starNoSort(n, preds)
				blk.FirstN = firstN
				res, err := opt.Optimize(blk, opt.Options{Level: Level})
				if err != nil {
					return nil, err
				}
				blk2 := starNoSort(n, preds)
				blk2.FirstN = firstN
				est, err := core.EstimatePlans(blk2, core.Options{Level: Level})
				if err != nil {
					return nil, err
				}
				if firstN == 0 {
					row.PlainActual = core.CountsFrom(res.TotalCounters()).Total()
					row.PlainEst = est.Counts.Total()
				} else {
					row.FirstNActual = core.CountsFrom(res.TotalCounters()).Total()
					row.FirstNEst = est.Counts.Total()
				}
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// starNoSort builds a star query without ORDER BY / GROUP BY (so that
// pipelineability stays interesting under FETCH FIRST).
func starNoSort(n, preds int) *query.Block {
	w := workload.Star(1)
	// Rebuild the same shape without the sorting clauses via the catalog.
	cat := w.Catalog
	qb := query.NewBuilder(fmt.Sprintf("star_fn_n%d_p%d", n, preds), cat)
	for t := 0; t < n; t++ {
		qb.AddTable(fmt.Sprintf("t%d", t), "")
	}
	for s := 1; s < n; s++ {
		for k := 0; k < preds; k++ {
			qb.JoinEq("t0", fmt.Sprintf("jc%d_%d", s, k), fmt.Sprintf("t%d", s), fmt.Sprintf("jc0_%d", k))
		}
	}
	blk, err := qb.Build()
	if err != nil {
		panic(err)
	}
	return blk
}

// CacheRow summarizes the statement-cache baseline on one workload replayed
// twice.
type CacheRow struct {
	Workload     string
	FirstPassHit int
	ReplayHit    int
	Queries      int
}

// StatementCacheExtension replays a workload twice through the Section 1.2
// statement cache: the first (ad-hoc) pass misses everything, the replay
// hits everything — the behaviour that makes the cache useless for exactly
// the ad-hoc queries the COTE targets.
func StatementCacheExtension(w *workload.Workload) (CacheRow, error) {
	cfg := ConfigFor(w)
	cache := core.NewStatementCache()
	row := CacheRow{Workload: w.Name, Queries: len(w.Queries)}
	for pass := 0; pass < 2; pass++ {
		hits := 0
		for _, q := range w.Queries {
			if _, ok := cache.Lookup(q.Block); ok {
				hits++
				continue
			}
			res, err := opt.Optimize(q.Block, opt.Options{Level: Level, Config: cfg})
			if err != nil {
				return row, err
			}
			cache.Record(q.Block, res.Elapsed)
		}
		if pass == 0 {
			row.FirstPassHit = hits
		} else {
			row.ReplayHit = hits
		}
	}
	return row, nil
}
