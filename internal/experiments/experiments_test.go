package experiments

import (
	"testing"

	"cote/internal/opt"
	"cote/internal/props"
	"cote/internal/workload"
)

func TestFig2BreakdownJoinWorkDominates(t *testing.T) {
	row, err := Fig2Breakdown(workload.Star(1))
	if err != nil {
		t.Fatal(err)
	}
	sum := row.MGJN + row.NLJN + row.HSJN + row.PlanSaving + row.Other
	if sum < 99 || sum > 101 {
		t.Fatalf("breakdown sums to %.1f%%", sum)
	}
	joinShare := row.MGJN + row.NLJN + row.HSJN + row.PlanSaving
	if joinShare < 50 {
		t.Fatalf("join optimization share %.0f%% — the paper reports >90%%", joinShare)
	}
}

func TestFig4OverheadSmall(t *testing.T) {
	rows, err := Fig4Overhead(workload.Real1(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	var mean float64
	for _, r := range rows {
		mean += r.Pct
	}
	mean /= float64(len(rows))
	// The paper reports 0.3%-3%; wall-clock noise on tiny queries warrants
	// slack, but the mean must stay a clear minority of compilation.
	if mean > 30 {
		t.Fatalf("mean estimation overhead %.1f%% of compilation", mean)
	}
}

func TestFig5StarSerialMatchesPaperShape(t *testing.T) {
	rows, err := Fig5Plans(workload.Star(1))
	if err != nil {
		t.Fatal(err)
	}
	errs := PlanErrors(rows)
	// HSJN exact; NLJN under ~30%; MGJN under ~15% (paper: <30% / <14%).
	if e := errs[props.HSJN]; e.Max != 0 {
		t.Fatalf("HSJN not exact on star_s: %+v", e)
	}
	if e := errs[props.NLJN]; e.Mean > 0.30 {
		t.Fatalf("NLJN mean error %.0f%% > 30%%", e.Mean*100)
	}
	if e := errs[props.MGJN]; e.Mean > 0.20 {
		t.Fatalf("MGJN mean error %.0f%% > 20%%", e.Mean*100)
	}
}

func TestFig6StarSerialWithinPaperBounds(t *testing.T) {
	model, err := TrainModel([]*workload.Workload{workload.Linear(1), workload.Random(42, 10, 9, 1)})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Fig6Times(workload.Star(1), model)
	if err != nil {
		t.Fatal(err)
	}
	s := TimeErrors(rows)
	// Paper: within 30% on star_s. Wall clocks wobble; bound the mean at
	// 50% in tests and report the true numbers in the bench harness.
	if s.Mean > 0.50 {
		t.Fatalf("mean time-prediction error %.0f%%", s.Mean*100)
	}
}

func TestJoinBaselineWorseWithinBatches(t *testing.T) {
	model, err := TrainModel([]*workload.Workload{workload.Linear(1), workload.Random(42, 10, 9, 1)})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := JoinBaseline(workload.Star(1), model)
	if err != nil {
		t.Fatal(err)
	}
	var planMean, joinMean float64
	for _, r := range rows {
		planMean += r.PlanErr
		joinMean += r.JoinErr
	}
	planMean /= float64(len(rows))
	joinMean /= float64(len(rows))
	if joinMean <= planMean {
		t.Fatalf("join-count baseline (%.0f%%) not worse than plan model (%.0f%%)",
			joinMean*100, planMean*100)
	}
}

func TestPilotPassModest(t *testing.T) {
	rows, err := PilotPass(workload.Real1(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PrunedFrac > 0.5 {
			t.Errorf("%s: pilot pass pruned %.0f%% of plans", r.Query, r.PrunedFrac*100)
		}
	}
}

func TestMemoryEstimatesLowerBound(t *testing.T) {
	rows, err := MemoryEstimates(workload.Star(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PredictedBytes <= 0 {
			t.Fatalf("%s: no memory estimate", r.Query)
		}
	}
}

func TestPiggybackLevels(t *testing.T) {
	levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelHighInner2, opt.LevelHigh}
	rows, err := Piggyback(workload.Real1(1), levels)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8*len(levels) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Within one query, higher levels never see fewer joins.
	for i := 0; i+2 < len(rows); i += 3 {
		if rows[i].Joins > rows[i+2].Joins {
			t.Fatalf("%s: left-deep joins %d > bushy joins %d",
				rows[i].Query, rows[i].Joins, rows[i+2].Joins)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	rows, err := Ablations(workload.Real1(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Compound lists must use at least as much property memory as separate
	// lists (the paper's space argument for keeping them separate).
	if rows[1].PropBytes < rows[0].PropBytes {
		t.Fatalf("compound lists used less memory (%d) than separate (%d)",
			rows[1].PropBytes, rows[0].PropBytes)
	}
}

func TestConfigFor(t *testing.T) {
	if ConfigFor(workload.Star(1)).Nodes != 1 || ConfigFor(workload.Star(4)).Nodes != 4 {
		t.Fatal("ConfigFor suffix mapping wrong")
	}
}

func TestPipelineExtension(t *testing.T) {
	rows, err := PipelineExtension()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FirstNActual <= r.PlainActual {
			t.Fatalf("%s: FETCH FIRST did not grow actual counts (%d vs %d)",
				r.Query, r.FirstNActual, r.PlainActual)
		}
		if r.FirstNEst != r.FirstNActual {
			t.Errorf("%s: pipeline estimate %d != actual %d",
				r.Query, r.FirstNEst, r.FirstNActual)
		}
	}
}

func TestStatementCacheExtension(t *testing.T) {
	row, err := StatementCacheExtension(workload.TPCH(1))
	if err != nil {
		t.Fatal(err)
	}
	if row.FirstPassHit != 0 {
		t.Fatalf("ad-hoc pass had %d hits", row.FirstPassHit)
	}
	if row.ReplayHit != row.Queries {
		t.Fatalf("replay hit %d of %d", row.ReplayHit, row.Queries)
	}
}

// TestMemFigWithinTwofold is the acceptance bar of the resource-accounting
// layer: after one calibration pass on the synthetic workloads, the memory
// model's predicted peak is within 2x (either direction) of the measured
// durable high-water on every query of every evaluation workload at every DP
// level. Both sides are deterministic — structural counts and canonical-point
// charges — so the bound is exact, not statistical.
func TestMemFigWithinTwofold(t *testing.T) {
	if testing.Short() {
		t.Skip("full calibration + evaluation sweep skipped in -short")
	}
	levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelMediumZigZag, opt.LevelHighInner2}
	model, err := MemCalibrationPass(
		[]*workload.Workload{workload.Linear(1), workload.Star(1), workload.Random(42, 12, 10, 1)}, levels)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []*workload.Workload{workload.Real1(1), workload.Real2(1), workload.TPCH(1)} {
		rows, err := MemFig(w, levels, model)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Measured <= 0 || r.Predicted <= 0 {
				t.Fatalf("%s/%s %v: predicted %d, measured %d — both must be positive",
					r.Workload, r.Query, r.Level, r.Predicted, r.Measured)
			}
			if ratio := r.Ratio(); ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s/%s %v: predicted %d B vs measured %d B (%.2fx) — outside the 2x acceptance band",
					r.Workload, r.Query, r.Level, r.Predicted, r.Measured, ratio)
			}
		}
	}
}
