// Package faultinject is a deterministic, seeded fault-injection seam for
// the serving stack. Production code marks the places that can fail for real
// — catalog swap, model persistence, pool slot acquisition, cache fills,
// enumeration memory exhaustion — with a named point and calls Check at the
// seam; a test (or the coted -fault-plan test flag) activates a Plan that
// decides, deterministically, which calls at which points fail, stall, or
// both.
//
// # Zero cost when disabled
//
// The whole package sits behind one package-level atomic guard: with no plan
// active, Check is a single atomic load and an immediate return, cheap
// enough for the estimate headline's cancellation polls. Sites on even
// hotter paths can branch on Enabled() themselves; Check does exactly that
// internally.
//
// # Determinism
//
// Every point keeps a call ordinal, and a probability rule decides call k by
// hashing (plan seed, point name, k): the decision *sequence at each point*
// is a pure function of the plan, independent of goroutine interleaving.
// Which request observes which ordinal still depends on scheduling — what a
// chaos test must assert is taxonomy and result stability, not which caller
// got unlucky — but rerunning a plan replays the same per-point fail/pass
// pattern, and an after-N or times-bounded rule trips on exactly the same
// ordinals every run.
//
// # Plan DSL
//
// A plan is a compact semicolon-separated string, accepted by ParsePlan and
// the coted -fault-plan flag:
//
//	seed=42;pool.acquire:error,p=0.2;cache.fill:latency=2ms,after=10;model.persist:error,times=3
//
// Each clause is point:directive[,directive...]; directives are
//
//	error           inject an error at the point (the Fault type)
//	latency=DUR     sleep DUR at the point before returning
//	p=F             trip with probability F in [0,1] (default 1)
//	after=N         pass the first N calls, arm from call N+1 on
//	times=K         trip at most K times, then pass forever
//
// A clause needs error or latency (or both: stall, then fail). seed=N sets
// the plan seed (default 1). Unknown point names are rejected at parse time
// against the registry of known points below, so a typo cannot silently arm
// nothing.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The named failure points threaded through the serving stack. Keeping the
// registry here (rather than scattered per package) lets ParsePlan reject
// unknown names and gives operators one place to see what can be broken.
const (
	// PointCatalogRegister fails a catalog upload just before the registry
	// commits the entry and bumps its epoch (internal/service.Registry).
	PointCatalogRegister = "catalog.register"
	// PointModelSwap fails a model-version install before the registry swap
	// (internal/service installModel: seed, calibrate, upload, rollback).
	PointModelSwap = "model.swap"
	// PointModelPersist fails the model registry's JSON persistence
	// (internal/calib Registry.Save, the coted -model-file path).
	PointModelPersist = "model.persist"
	// PointPoolAcquire fails a worker-pool slot acquisition before the
	// request enters the waiting line (internal/service.Pool.Run).
	PointPoolAcquire = "pool.acquire"
	// PointCacheFill fails the estimate-cache fill leader before it runs the
	// enumeration, so waiters sharing the flight see the failure too
	// (internal/service.EstimateCache.Do).
	PointCacheFill = "cache.fill"
	// PointFPCacheFill fails a fingerprint-cache miss before the canonical
	// rebuild (internal/core.FingerprintCache.EstimatePlans).
	PointFPCacheFill = "fpcache.fill"
	// PointMemBudget simulates enumeration memory-budget exhaustion: a trip
	// latches the execution context's memory abort, surfacing as
	// optctx.ErrMemBudgetExceeded at the next cancellation poll
	// (internal/optctx.Ctx).
	PointMemBudget = "optctx.membudget"
)

// knownPoints is the parse-time registry; see the Point constants.
var knownPoints = map[string]bool{
	PointCatalogRegister: true,
	PointModelSwap:       true,
	PointModelPersist:    true,
	PointPoolAcquire:     true,
	PointCacheFill:       true,
	PointFPCacheFill:     true,
	PointMemBudget:       true,
}

// Points returns the known point names, sorted (for -fault-plan usage text
// and error messages).
func Points() []string {
	out := make([]string, 0, len(knownPoints))
	for p := range knownPoints {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ErrInjected is the errors.Is target of every injected fault: layers that
// must treat injected failures like real dependency failures match on their
// own error types, while tests and the service's taxonomy mapping can still
// tell an injected fault apart.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault is the error injected at a point. It unwraps to ErrInjected.
type Fault struct {
	// Point is the failure point that tripped.
	Point string
}

// Error implements error.
func (f *Fault) Error() string { return "faultinject: injected fault at " + f.Point }

// Unwrap makes errors.Is(err, ErrInjected) hold.
func (f *Fault) Unwrap() error { return ErrInjected }

// Rule arms one point. The zero value of the optional fields means
// unconditional: probability 1, from the first call, forever.
type Rule struct {
	// Point names the failure point (one of the Point constants).
	Point string
	// Error injects a *Fault when the rule trips.
	Error bool
	// Latency, when positive, sleeps this long when the rule trips (before
	// the error, if both are set).
	Latency time.Duration
	// Prob trips each armed call with this probability (0 means 1 —
	// an explicit never-trip rule is pointless). Decisions are derived from
	// the plan seed and the call ordinal, so they are reproducible.
	Prob float64
	// After passes the first After calls untouched.
	After int64
	// Times bounds total trips (0 = unlimited).
	Times int64
}

// rule is the armed runtime form: the immutable Rule plus per-point state.
type rule struct {
	Rule
	h0    uint64 // point-name hash, folded into the per-call decision
	calls atomic.Int64
	trips atomic.Int64
}

// Plan is a set of armed rules with a shared seed. Activate installs it
// globally; a Plan must not be mutated after Activate.
type Plan struct {
	Seed  uint64
	rules map[string]*rule
}

// NewPlan builds a plan from explicit rules (tests compose plans
// programmatically; the DSL path goes through ParsePlan).
func NewPlan(seed uint64, rules ...Rule) (*Plan, error) {
	p := &Plan{Seed: seed, rules: make(map[string]*rule, len(rules))}
	if p.Seed == 0 {
		p.Seed = 1
	}
	for _, r := range rules {
		if !knownPoints[r.Point] {
			return nil, fmt.Errorf("faultinject: unknown point %q (known: %s)", r.Point, strings.Join(Points(), ", "))
		}
		if !r.Error && r.Latency <= 0 {
			return nil, fmt.Errorf("faultinject: rule for %q injects neither error nor latency", r.Point)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("faultinject: rule for %q has probability %v outside [0,1]", r.Point, r.Prob)
		}
		if _, dup := p.rules[r.Point]; dup {
			return nil, fmt.Errorf("faultinject: duplicate rule for point %q", r.Point)
		}
		p.rules[r.Point] = &rule{Rule: r, h0: fnv64(r.Point)}
	}
	return p, nil
}

// ParsePlan parses the -fault-plan DSL (see the package comment).
func ParsePlan(s string) (*Plan, error) {
	var seed uint64 = 1
	var rules []Rule
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			seed = n
			continue
		}
		point, directives, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q needs point:directives", clause)
		}
		r := Rule{Point: strings.TrimSpace(point)}
		for _, d := range strings.Split(directives, ",") {
			d = strings.TrimSpace(d)
			key, val, hasVal := strings.Cut(d, "=")
			var err error
			switch {
			case d == "error":
				r.Error = true
			case key == "latency" && hasVal:
				r.Latency, err = time.ParseDuration(val)
			case key == "p" && hasVal:
				r.Prob, err = strconv.ParseFloat(val, 64)
			case key == "after" && hasVal:
				r.After, err = strconv.ParseInt(val, 10, 64)
			case key == "times" && hasVal:
				r.Times, err = strconv.ParseInt(val, 10, 64)
			default:
				return nil, fmt.Errorf("faultinject: unknown directive %q in clause %q", d, clause)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad directive %q: %v", d, err)
			}
		}
		rules = append(rules, r)
	}
	return NewPlan(seed, rules...)
}

// enabled is the package guard every hot path loads exactly once; active
// holds the installed plan. enabled is stored after active so a Check that
// sees the guard up also sees the plan (and a nil re-check is harmless).
var (
	enabled atomic.Bool
	active  atomic.Pointer[Plan]
)

// Enabled reports whether a fault plan is active: one atomic load, the
// entire disabled-path cost of the package.
func Enabled() bool { return enabled.Load() }

// Activate installs p as the process-wide fault plan. Passing nil is
// Deactivate. Tests activating a plan must deactivate it (defer
// Deactivate()) and must not run in parallel with other fault-plan tests in
// the same process.
func Activate(p *Plan) {
	if p == nil {
		Deactivate()
		return
	}
	active.Store(p)
	enabled.Store(true)
}

// Deactivate removes the active plan; Check returns to its single-load path.
func Deactivate() {
	enabled.Store(false)
	active.Store(nil)
}

// Check is the injection gate: nil when no plan is active, no rule arms the
// point, or the rule decided to pass; otherwise it applies the rule —
// sleeping for a latency rule — and returns a *Fault for an error rule
// (nil after a latency-only trip).
func Check(point string) error {
	if !enabled.Load() {
		return nil
	}
	return check(point)
}

// check is the armed slow path, split out so Check stays inlinable.
func check(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	r := p.rules[point]
	if r == nil {
		return nil
	}
	k := r.calls.Add(1)
	if k <= r.After {
		return nil
	}
	if r.Prob > 0 && r.Prob < 1 {
		// Deterministic per (seed, point, ordinal): the same plan replays
		// the same decision sequence at this point in every run.
		u := splitmix64(p.Seed ^ r.h0 ^ uint64(k))
		if float64(u>>11)*(1.0/(1<<53)) >= r.Prob {
			return nil
		}
	}
	if r.Times > 0 {
		if r.trips.Add(1) > r.Times {
			r.trips.Add(-1) // keep the counter at the cap for Stats
			return nil
		}
	} else {
		r.trips.Add(1)
	}
	if r.Latency > 0 {
		time.Sleep(r.Latency)
	}
	if r.Error {
		return &Fault{Point: point}
	}
	return nil
}

// PointStats reports one point's activity under the active plan.
type PointStats struct {
	// Calls counts arrivals at the point since Activate.
	Calls int64
	// Trips counts how many of them the rule acted on.
	Trips int64
}

// Stats snapshots per-point activity of the active plan (nil when no plan
// is active). Chaos tests assert on it to prove faults actually fired.
func Stats() map[string]PointStats {
	p := active.Load()
	if p == nil {
		return nil
	}
	out := make(map[string]PointStats, len(p.rules))
	for name, r := range p.rules {
		out[name] = PointStats{Calls: r.calls.Load(), Trips: r.trips.Load()}
	}
	return out
}

// fnv64 is FNV-1a over s (the point-name half of the decision hash).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the standard 64-bit finalizer-style mixer: cheap, stateless,
// and well distributed — exactly what a per-ordinal coin flip needs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
