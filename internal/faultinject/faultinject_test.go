package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	Deactivate()
	if Enabled() {
		t.Fatal("enabled with no plan")
	}
	if err := Check(PointPoolAcquire); err != nil {
		t.Fatalf("disabled Check = %v", err)
	}
	if Stats() != nil {
		t.Fatal("Stats with no plan should be nil")
	}
}

func TestUnconditionalErrorRule(t *testing.T) {
	p, err := NewPlan(1, Rule{Point: PointPoolAcquire, Error: true})
	if err != nil {
		t.Fatal(err)
	}
	Activate(p)
	defer Deactivate()
	err = Check(PointPoolAcquire)
	var f *Fault
	if !errors.As(err, &f) || f.Point != PointPoolAcquire {
		t.Fatalf("Check = %v, want Fault at %s", err, PointPoolAcquire)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("fault does not unwrap to ErrInjected")
	}
	// Unarmed points stay clean.
	if err := Check(PointCacheFill); err != nil {
		t.Fatalf("unarmed point tripped: %v", err)
	}
}

func TestAfterAndTimes(t *testing.T) {
	p, err := NewPlan(1, Rule{Point: PointCacheFill, Error: true, After: 3, Times: 2})
	if err != nil {
		t.Fatal(err)
	}
	Activate(p)
	defer Deactivate()
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, Check(PointCacheFill) != nil)
	}
	want := []bool{false, false, false, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: tripped=%v, want %v (sequence %v)", i+1, got[i], want[i], got)
		}
	}
	st := Stats()[PointCacheFill]
	if st.Calls != 8 || st.Trips != 2 {
		t.Fatalf("stats = %+v, want 8 calls / 2 trips", st)
	}
}

// TestProbabilityDeterministic pins the seeded decision sequence: the same
// plan replays bit-identical trip patterns, a different seed gives a
// different pattern, and the empirical rate lands near p.
func TestProbabilityDeterministic(t *testing.T) {
	sequence := func(seed uint64) []bool {
		p, err := NewPlan(seed, Rule{Point: PointPoolAcquire, Error: true, Prob: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		Activate(p)
		defer Deactivate()
		out := make([]bool, 400)
		for i := range out {
			out[i] = Check(PointPoolAcquire) != nil
		}
		return out
	}
	a, b := sequence(42), sequence(42)
	trips := 0
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs between identical plans", i+1)
		}
		if a[i] {
			trips++
		}
	}
	if trips < 60 || trips > 180 {
		t.Fatalf("p=0.3 tripped %d/400 times", trips)
	}
	c := sequence(43)
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical sequences")
	}
}

// TestDeterminismUnderConcurrency: the multiset of decisions is ordinal-keyed,
// so N concurrent callers observe exactly the same number of trips as N
// serial calls would.
func TestDeterminismUnderConcurrency(t *testing.T) {
	const calls = 1000
	serial := func() int {
		p, _ := NewPlan(7, Rule{Point: PointCacheFill, Error: true, Prob: 0.25})
		Activate(p)
		defer Deactivate()
		n := 0
		for i := 0; i < calls; i++ {
			if Check(PointCacheFill) != nil {
				n++
			}
		}
		return n
	}()

	p, _ := NewPlan(7, Rule{Point: PointCacheFill, Error: true, Prob: 0.25})
	Activate(p)
	defer Deactivate()
	var wg sync.WaitGroup
	var mu sync.Mutex
	concurrent := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < calls/8; i++ {
				if Check(PointCacheFill) != nil {
					n++
				}
			}
			mu.Lock()
			concurrent += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if concurrent != serial {
		t.Fatalf("concurrent trips %d != serial trips %d", concurrent, serial)
	}
}

func TestLatencyRule(t *testing.T) {
	p, err := NewPlan(1, Rule{Point: PointModelPersist, Latency: 20 * time.Millisecond, Times: 1})
	if err != nil {
		t.Fatal(err)
	}
	Activate(p)
	defer Deactivate()
	start := time.Now()
	if err := Check(PointModelPersist); err != nil {
		t.Fatalf("latency-only rule returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency rule slept %v, want >= 20ms", d)
	}
	start = time.Now()
	_ = Check(PointModelPersist) // times=1 exhausted: no sleep
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("exhausted rule still slept %v", d)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=9; pool.acquire:error,p=0.5 ; cache.fill:latency=3ms,after=2,times=4; model.persist:error,latency=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 {
		t.Fatalf("seed = %d", p.Seed)
	}
	r := p.rules[PointPoolAcquire]
	if r == nil || !r.Error || r.Prob != 0.5 {
		t.Fatalf("pool.acquire rule = %+v", r)
	}
	r = p.rules[PointCacheFill]
	if r == nil || r.Error || r.Latency != 3*time.Millisecond || r.After != 2 || r.Times != 4 {
		t.Fatalf("cache.fill rule = %+v", r)
	}
	r = p.rules[PointModelPersist]
	if r == nil || !r.Error || r.Latency != time.Millisecond {
		t.Fatalf("model.persist rule = %+v", r)
	}

	for _, bad := range []string{
		"nosuch.point:error",          // unknown point
		"pool.acquire",                // no directives
		"pool.acquire:p=0.5",          // neither error nor latency
		"pool.acquire:error,p=1.5",    // probability out of range
		"pool.acquire:error,zap=1",    // unknown directive
		"seed=x",                      // bad seed
		"pool.acquire:error;pool.acquire:error", // duplicate
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// BenchmarkCheckDisabled pins the disabled-path cost the acceptance
// criterion bounds: one atomic load, zero allocations.
func BenchmarkCheckDisabled(b *testing.B) {
	Deactivate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Check(PointMemBudget) != nil {
			b.Fatal("tripped while disabled")
		}
	}
}

func ExampleParsePlan() {
	p, _ := ParsePlan("seed=4;pool.acquire:error,p=0.25,after=10")
	fmt.Println(p.Seed)
	// Output: 4
}
