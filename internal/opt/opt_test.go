package opt

import (
	"testing"

	"cote/internal/catalog"
	"cote/internal/cost"
	"cote/internal/memo"
	"cote/internal/props"
	"cote/internal/query"
)

// starBlock builds a star query: center joined to n-1 satellites, preds
// join predicates per edge, plus optional ORDER BY / GROUP BY columns.
func starBlock(tb testing.TB, n, preds, orderby, groupby int, nodes int) *query.Block {
	tb.Helper()
	cb := catalog.NewBuilder("star")
	ct := cb.Table("center", 1_000_000)
	for s := 1; s < n; s++ {
		for p := 0; p < preds; p++ {
			ct.Column(colName(s, p), 1_000)
		}
	}
	ct.Column("m1", 500).Column("m2", 500).Column("m3", 500)
	ct.Index("pk_center", true, colName(1, 0))
	if nodes > 1 {
		ct.Partition(nodes, colName(1, 0))
	}
	for s := 1; s < n; s++ {
		st := cb.Table(satName(s), 10_000)
		for p := 0; p < preds; p++ {
			st.Column(colName(0, p), 1_000)
		}
		st.Column("d1", 100).Column("d2", 100)
		st.Index("ix_"+satName(s), false, colName(0, 0))
		if nodes > 1 {
			// Partition satellites on their last join column so that
			// multi-predicate edges expose several co-location choices.
			st.Partition(nodes, colName(0, preds-1))
		}
	}
	cat := cb.Build()

	qb := query.NewBuilder("star", cat)
	qb.AddTable("center", "")
	for s := 1; s < n; s++ {
		qb.AddTable(satName(s), "")
	}
	for s := 1; s < n; s++ {
		for p := 0; p < preds; p++ {
			qb.JoinEq("center", colName(s, p), satName(s), colName(0, p))
		}
	}
	var ob, gb []query.ColID
	for i := 0; i < orderby && i < 3; i++ {
		ob = append(ob, qb.Col("center", "m"+string(rune('1'+i))))
	}
	for i := 0; i < groupby && i < 2; i++ {
		gb = append(gb, qb.Col(satName(1), "d"+string(rune('1'+i))))
	}
	qb.OrderBy(ob...)
	qb.GroupBy(gb...)
	blk, err := qb.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return blk
}

func colName(s, p int) string { return "j" + itoa(s) + "_" + itoa(p) }
func satName(s int) string    { return "sat" + itoa(s) }
func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestOptimizeStarSerial(t *testing.T) {
	blk := starBlock(t, 6, 1, 0, 0, 1)
	res, err := Optimize(blk, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Plan.Cost <= 0 || res.Plan.Tables != blk.AllTables() {
		t.Fatalf("bad final plan: %+v", res.Plan)
	}
	ordered, pairs := res.TotalJoins()
	if wantPairs := 5 << 4; pairs != wantPairs { // (n-1)*2^(n-2)
		t.Fatalf("pairs = %d, want %d", pairs, wantPairs)
	}
	c := res.TotalCounters()
	// Every ordered equality join generates exactly one HSJN plan in serial
	// mode — the paper's exactness result for hash joins.
	if c.Generated[props.HSJN] != ordered {
		t.Fatalf("HSJN generated = %d, ordered joins = %d", c.Generated[props.HSJN], ordered)
	}
	// NLJN generates at least one plan per ordered join.
	if c.Generated[props.NLJN] < ordered {
		t.Fatalf("NLJN generated = %d < joins %d", c.Generated[props.NLJN], ordered)
	}
	if c.Generated[props.MGJN] < ordered {
		t.Fatalf("MGJN generated = %d < joins %d", c.Generated[props.MGJN], ordered)
	}
}

func TestOrderByIncreasesPlansNotJoins(t *testing.T) {
	// The Figure 3 effect: adding ORDER BY keeps the join graph (and join
	// count) fixed but increases the number of generated plans.
	plain := starBlock(t, 6, 1, 0, 0, 1)
	withOB := starBlock(t, 6, 1, 2, 0, 1)
	r1, err := Optimize(plain, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(withOB, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := r1.TotalJoins()
	j2, _ := r2.TotalJoins()
	if j1 != j2 {
		t.Fatalf("join counts differ: %d vs %d", j1, j2)
	}
	c1, c2 := r1.TotalCounters(), r2.TotalCounters()
	if c2.TotalGenerated() <= c1.TotalGenerated() {
		t.Fatalf("ORDER BY did not increase generated plans: %d vs %d",
			c1.TotalGenerated(), c2.TotalGenerated())
	}
}

func TestMorePredicatesMorePlans(t *testing.T) {
	// Within a star batch, extra join predicates per edge add interesting
	// orders and thus NLJN/MGJN plans, while HSJN counts stay put — the
	// within-batch variation of Figures 5(a)-(c).
	r1, err := Optimize(starBlock(t, 6, 1, 0, 0, 1), Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Optimize(starBlock(t, 6, 3, 0, 0, 1), Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	c1, c3 := r1.TotalCounters(), r3.TotalCounters()
	if c1.Generated[props.HSJN] != c3.Generated[props.HSJN] {
		t.Fatalf("HSJN counts differ across batch: %d vs %d",
			c1.Generated[props.HSJN], c3.Generated[props.HSJN])
	}
	if c3.Generated[props.MGJN] <= c1.Generated[props.MGJN] {
		t.Fatalf("MGJN did not grow with predicates: %d vs %d",
			c1.Generated[props.MGJN], c3.Generated[props.MGJN])
	}
}

func TestDPBeatsGreedy(t *testing.T) {
	blk := starBlock(t, 7, 1, 0, 0, 1)
	low, err := Optimize(blk, Options{Level: LevelLow})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Optimize(blk, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if high.Plan.Cost > low.Plan.Cost*1.0001 {
		t.Fatalf("DP plan (%.0f) costs more than greedy plan (%.0f)",
			high.Plan.Cost, low.Plan.Cost)
	}
}

func TestLevelsOrderSearchSpace(t *testing.T) {
	blk := starBlock(t, 7, 1, 0, 0, 1)
	var joins [NumLevels]int
	for l := LevelMediumLeftDeep; l < NumLevels; l++ {
		res, err := Optimize(blk, Options{Level: l})
		if err != nil {
			t.Fatal(err)
		}
		joins[l], _ = res.TotalJoins()
	}
	if !(joins[LevelMediumLeftDeep] <= joins[LevelMediumZigZag] &&
		joins[LevelMediumZigZag] <= joins[LevelHigh] &&
		joins[LevelHighInner2] <= joins[LevelHigh]) {
		t.Fatalf("levels not ordered by joins: %v", joins)
	}
}

func TestSubsumes(t *testing.T) {
	if !LevelHigh.Subsumes(LevelMediumLeftDeep) || !LevelHigh.Subsumes(LevelHighInner2) {
		t.Fatal("LevelHigh should subsume everything")
	}
	if !LevelHighInner2.Subsumes(LevelMediumLeftDeep) {
		t.Fatal("inner<=2 subsumes left-deep (inner size 1)")
	}
	if LevelMediumLeftDeep.Subsumes(LevelHigh) {
		t.Fatal("left-deep cannot subsume bushy")
	}
	if !LevelMediumLeftDeep.Subsumes(LevelLow) {
		t.Fatal("every DP level subsumes the greedy level")
	}
}

func TestParallelOptimization(t *testing.T) {
	blk := starBlock(t, 5, 2, 0, 0, 4)
	res, err := Optimize(blk, Options{Level: LevelHigh, Config: cost.Parallel4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no parallel plan")
	}
	// Parallel optimization explores (order, partition) combinations and so
	// generates strictly more join plans than serial on the same query.
	serialBlk := starBlock(t, 5, 2, 0, 0, 1)
	serial, err := Optimize(serialBlk, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	cp, cs := res.TotalCounters(), serial.TotalCounters()
	if cp.TotalGenerated() <= cs.TotalGenerated() {
		t.Fatalf("parallel generated %d plans, serial %d — expected more in parallel",
			cp.TotalGenerated(), cs.TotalGenerated())
	}
	// Some plan in some entry carries a non-DC partition.
	found := false
	for _, e := range res.Blocks[0].Memo.Entries() {
		for _, p := range e.Plans {
			if !p.Part.Empty() {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no plan carries a partition in parallel mode")
	}
}

func TestFinishOrderBy(t *testing.T) {
	blk := starBlock(t, 4, 1, 2, 0, 1)
	res, err := Optimize(blk, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	want := props.Order{Cols: blk.OrderBy}
	eq := blk.EquivWithin(blk.AllTables())
	if !want.PrefixOfUnder(res.Plan.Order, eq) {
		t.Fatalf("final plan order %v does not satisfy ORDER BY %v", res.Plan.Order, want)
	}
}

func TestFinishGroupBy(t *testing.T) {
	blk := starBlock(t, 4, 1, 0, 2, 1)
	res, err := Optimize(blk, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Op != memo.OpGroupBy {
		t.Fatalf("final operator = %v, want GRPBY", res.Plan.Op)
	}
	if res.Plan.Card > res.Plan.Left.Card {
		t.Fatal("aggregation increased cardinality")
	}
}

func TestPilotPassPrunesButCompletes(t *testing.T) {
	blk := starBlock(t, 7, 2, 1, 0, 1)
	with, err := Optimize(blk, Options{Level: LevelHigh, PilotPass: true})
	if err != nil {
		t.Fatal(err)
	}
	c := with.TotalCounters()
	if c.PilotPruned == 0 {
		t.Skip("pilot bound pruned nothing on this query shape")
	}
	frac := float64(c.PilotPruned) / float64(c.TotalGenerated())
	if frac > 0.5 {
		t.Fatalf("pilot pass pruned %.0f%% of plans — bound looks wrong", frac*100)
	}
	if with.Plan == nil {
		t.Fatal("pilot pass lost the final plan")
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	blk := starBlock(t, 8, 2, 1, 0, 1)
	res, err := Optimize(blk, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown()
	sum := b.MGJN + b.NLJN + b.HSJN + b.PlanSaving + b.Other
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("breakdown sums to %v", sum)
	}
	joinShare := b.MGJN + b.NLJN + b.HSJN + b.PlanSaving
	if joinShare < 0.5 {
		t.Fatalf("join optimization share = %.0f%%, expected to dominate compilation", joinShare*100)
	}
}

func TestOuterJoinQueryCompiles(t *testing.T) {
	cb := catalog.NewBuilder("oj")
	cb.Table("f", 100_000).Column("k", 1_000).Column("d", 100)
	cb.Table("d1", 1_000).Column("k", 1_000).Column("v", 100)
	cb.Table("d2", 500).Column("v", 100).Column("w", 10)
	cat := cb.Build()
	qb := query.NewBuilder("oj", cat)
	qb.AddTable("f", "")
	qb.AddTable("d1", "")
	qb.AddTable("d2", "")
	qb.JoinEq("f", "k", "d1", "k")
	qb.JoinEq("d1", "v", "d2", "v")
	qb.LeftOuter(2, 1) // d2 null-producing, requires d1
	blk := qb.MustBuild()

	res, err := Optimize(blk, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan for outer-join query")
	}
	// Restriction bites through orientations: d2 may never be the outer,
	// so two of the four pairs lose one orientation each.
	ordered, pairs := res.TotalJoins()
	if pairs != 4 {
		t.Fatalf("pairs = %d, want 4", pairs)
	}
	if ordered != 6 {
		t.Fatalf("ordered joins = %d, want 6 (d2 never an outer)", ordered)
	}
}

func TestMultiBlockDerivedCardPropagation(t *testing.T) {
	cb := catalog.NewBuilder("mb")
	cb.Table("base", 100_000).Column("g", 50).Column("v", 1_000)
	cb.Table("outer_t", 10_000).Column("g", 50)
	cat := cb.Build()

	child := query.NewBuilder("child", cat)
	child.AddTable("base", "")
	child.FilterEq("base", "v")
	child.SelectCols(child.Col("base", "g"))
	childBlk := child.MustBuild()

	parent := query.NewBuilder("parent", cat)
	parent.AddTable("outer_t", "")
	parent.AddDerived(childBlk, "dv", false)
	parent.Join(parent.Col("outer_t", "g"), parent.Col("dv", "g"), query.Eq)
	blk := parent.MustBuild()

	res, err := Optimize(blk, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 2 {
		t.Fatalf("optimized %d blocks, want 2", len(res.Blocks))
	}
	// The derived ref received the child's output cardinality (~100 rows).
	var ref *query.TableRef
	for _, r := range blk.Tables {
		if r.IsDerived() {
			ref = r
		}
	}
	if ref.CardOverride <= 0 || ref.CardOverride > 10_000 {
		t.Fatalf("derived card override = %v", ref.CardOverride)
	}
}

func TestLevelStringsAndEnumOptions(t *testing.T) {
	for l := LevelLow; l < NumLevels; l++ {
		if l.String() == "" {
			t.Fatalf("level %d has empty name", l)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EnumOptions on LevelLow did not panic")
		}
	}()
	LevelLow.EnumOptions()
}

func TestLazyOrderPolicyGeneratesFewerPlans(t *testing.T) {
	blk1 := starBlock(t, 6, 2, 1, 0, 1)
	blk2 := starBlock(t, 6, 2, 1, 0, 1)
	eager, err := Optimize(blk1, Options{Level: LevelHigh, OrderPolicy: props.Eager})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Optimize(blk2, Options{Level: LevelHigh, OrderPolicy: props.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	ce, cl := eager.TotalCounters(), lazy.TotalCounters()
	if cl.TotalGenerated() >= ce.TotalGenerated() {
		t.Fatalf("lazy policy generated %d plans, eager %d — lazy should shrink the space",
			cl.TotalGenerated(), ce.TotalGenerated())
	}
}

func BenchmarkOptimizeStar8Serial(b *testing.B) {
	blk := starBlock(b, 8, 2, 1, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(blk, Options{Level: LevelHigh}); err != nil {
			b.Fatal(err)
		}
	}
}
