// Package opt is the optimizer facade: it wires the join enumerator to the
// plan generator, processes nested query blocks bottom-up, applies the
// finishing enforcers (final ORDER BY sort, aggregation), and exposes the
// optimization levels of the reproduced system — the greedy low level and
// dynamic-programming levels with the knob presets the paper's experiments
// use. It also instruments each compilation with the wall-clock breakdown
// that regenerates Figure 2.
package opt

import (
	"context"
	"fmt"
	"math"
	"time"

	"cote/internal/cost"
	"cote/internal/enum"
	"cote/internal/greedy"
	"cote/internal/knobs"
	"cote/internal/memo"
	"cote/internal/optctx"
	"cote/internal/plangen"
	"cote/internal/props"
	"cote/internal/query"
	"cote/internal/resource"
)

// Level is an optimization level. Higher levels search larger spaces and
// take longer to compile — the trade-off the meta-optimizer automates.
type Level int

// The optimization levels of the reproduced system.
const (
	// LevelLow is the polynomial greedy heuristic.
	LevelLow Level = iota
	// LevelMediumLeftDeep is dynamic programming over left-deep trees.
	LevelMediumLeftDeep
	// LevelMediumZigZag is dynamic programming over zig-zag trees.
	LevelMediumZigZag
	// LevelHighInner2 is bushy dynamic programming with composite inners
	// limited to 2 tables — "certain limits on the composite inner size",
	// the level the paper's experiments run at.
	LevelHighInner2
	// LevelHigh is unrestricted bushy dynamic programming.
	LevelHigh
	NumLevels
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelLow:
		return "low(greedy)"
	case LevelMediumLeftDeep:
		return "medium(leftdeep)"
	case LevelMediumZigZag:
		return "medium(zigzag)"
	case LevelHighInner2:
		return "high(inner<=2)"
	case LevelHigh:
		return "high(bushy)"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// EnumOptions returns the enumerator knobs of a DP level. It panics for
// LevelLow, which does not enumerate.
func (l Level) EnumOptions() enum.Options {
	switch l {
	case LevelMediumLeftDeep:
		return enum.Options{Shape: enum.LeftDeep}
	case LevelMediumZigZag:
		return enum.Options{Shape: enum.ZigZag}
	case LevelHighInner2:
		return enum.Options{CompositeInnerLimit: 2}
	case LevelHigh:
		return enum.Options{}
	}
	panic(fmt.Sprintf("opt: level %v has no enumerator options", l))
}

// NextLower returns the next-cheaper level — the downgrade ladder the
// admission controller and the meta-optimizer's budget abort walk. LevelLow
// returns itself (the floor).
func (l Level) NextLower() Level {
	switch l {
	case LevelHigh:
		return LevelHighInner2
	case LevelHighInner2:
		return LevelMediumZigZag
	case LevelMediumZigZag:
		return LevelMediumLeftDeep
	default:
		return LevelLow
	}
}

// Subsumes reports whether the search space of level l contains that of m —
// the condition under which a single estimation pass at l can piggyback
// estimates for m (Section 6.2).
func (l Level) Subsumes(m Level) bool {
	if m == LevelLow {
		return true
	}
	switch l {
	case LevelHigh:
		return true
	case LevelHighInner2:
		return m == LevelHighInner2 || m == LevelMediumLeftDeep
	case LevelMediumZigZag:
		return m == LevelMediumZigZag || m == LevelMediumLeftDeep
	case LevelMediumLeftDeep:
		return m == LevelMediumLeftDeep
	}
	return false
}

// Options configures one optimization.
type Options struct {
	// Level selects the search space. Default LevelHighInner2.
	Level Level
	// Config selects serial or parallel costing. Default serial.
	Config *cost.Config
	// OrderPolicy is the order-property generation policy (default eager,
	// as in DB2).
	OrderPolicy props.GenerationPolicy
	// PilotPass, when true, first runs the greedy level and prunes any
	// generated plan costlier than the greedy plan (Section 6.1).
	PilotPass bool
	// CartesianPolicy overrides the enumerator's Cartesian handling
	// (default: the card-one heuristic).
	CartesianPolicy enum.CartesianPolicy
	// Parallelism is the number of worker goroutines the DP round may fan
	// join generation out to. Values <= 1 select the serial driver. Values
	// above GOMAXPROCS are allowed (useful for exercising the parallel
	// driver on small machines) but buy nothing; callers wanting a sensible
	// default should pass runtime.GOMAXPROCS(0). Parallel and serial runs
	// produce bit-identical plans, costs and statistics (only the wall
	// clock and the GenTime timers — which become summed worker CPU time —
	// differ).
	Parallelism int
}

// BlockResult is the outcome of optimizing one query block.
type BlockResult struct {
	Block     *query.Block
	Plan      *memo.Plan
	Memo      *memo.Memo
	EnumStats enum.Stats
	Counters  plangen.Counters
	Elapsed   time.Duration
}

// Result is the outcome of optimizing a query (all blocks).
type Result struct {
	// Plan is the final plan of the outermost block, including finishing
	// enforcers.
	Plan *memo.Plan
	// Blocks holds per-block results, children first.
	Blocks []*BlockResult
	// Elapsed is the total compilation wall time.
	Elapsed time.Duration
	// Resources is the run's measured memory accounting (all zero when the
	// compile ran without an execution context). DurablePeakBytes is the
	// deterministic MEMO high-water mark core.EstimateMemory predicts.
	Resources resource.Snapshot
}

// TotalCounters sums the plan-generation counters over all blocks.
func (r *Result) TotalCounters() plangen.Counters {
	var total plangen.Counters
	for _, b := range r.Blocks {
		for m := range total.Generated {
			total.Generated[m] += b.Counters.Generated[m]
			total.GenTime[m] += b.Counters.GenTime[m]
		}
		total.AccessPlans += b.Counters.AccessPlans
		total.EnforcerPlans += b.Counters.EnforcerPlans
		total.PilotPruned += b.Counters.PilotPruned
		total.SaveTime += b.Counters.SaveTime
		total.AccessTime += b.Counters.AccessTime
	}
	return total
}

// TotalJoins sums enumerated joins over all blocks.
func (r *Result) TotalJoins() (ordered, pairs int) {
	for _, b := range r.Blocks {
		ordered += b.EnumStats.Joins
		pairs += b.EnumStats.Pairs
	}
	return ordered, pairs
}

// Breakdown is the Figure 2 compilation-time decomposition.
type Breakdown struct {
	MGJN, NLJN, HSJN, PlanSaving, Other float64 // fractions summing to 1
}

// Breakdown computes the compilation-time breakdown of the result.
func (r *Result) Breakdown() Breakdown {
	c := r.TotalCounters()
	total := r.Elapsed.Seconds()
	if total <= 0 {
		return Breakdown{Other: 1}
	}
	b := Breakdown{
		MGJN:       c.GenTime[props.MGJN].Seconds() / total,
		NLJN:       c.GenTime[props.NLJN].Seconds() / total,
		HSJN:       c.GenTime[props.HSJN].Seconds() / total,
		PlanSaving: c.SaveTime.Seconds() / total,
	}
	b.Other = 1 - b.MGJN - b.NLJN - b.HSJN - b.PlanSaving
	if b.Other < 0 {
		b.Other = 0
	}
	return b
}

// Optimize compiles the query at the given level: child blocks first (their
// output cardinalities feed the parent, as in the paper's multi-block
// extension), then the outermost block, then the finishing enforcers. It
// cannot be cancelled; deadline-sensitive callers use OptimizeCtx or
// OptimizeWith.
func Optimize(blk *query.Block, opts Options) (*Result, error) {
	return OptimizeWith(nil, blk, opts)
}

// OptimizeCtx is Optimize bounded by a context: when ctx expires the
// compilation stops cooperatively (at size-class/task granularity in the
// enumerator) and the context's error is returned.
func OptimizeCtx(ctx context.Context, blk *query.Block, opts Options) (*Result, error) {
	return OptimizeWith(optctx.New(ctx), blk, opts)
}

// OptimizeWith compiles under an execution context carrying cancellation,
// a generated-plan budget, live progress and per-stage observability. A nil
// oc behaves exactly like Optimize. With a never-cancelled oc the produced
// plans, costs and counters are identical to Optimize — the context only
// observes.
func OptimizeWith(oc *optctx.Ctx, blk *query.Block, opts Options) (*Result, error) {
	start := time.Now()
	res := &Result{}
	for _, b := range blk.Blocks() {
		if oc.Cancelled() {
			return nil, oc.Err()
		}
		br, err := optimizeBlock(oc, b, opts)
		if err != nil {
			return nil, err
		}
		res.Blocks = append(res.Blocks, br)
		// Export the block's output cardinality to the derived table
		// reference(s) in its parent.
		propagateDerivedCard(blk, b, br.Plan.Card)
	}
	root := res.Blocks[len(res.Blocks)-1]
	res.Plan = finish(root.Block, root.Plan, root.Memo, opts)
	res.Elapsed = time.Since(start)
	res.Resources = oc.Resources().Snapshot()
	return res, nil
}

// recordStages attributes one block's compilation to the observability
// stages: generation (join-method, access and enforcer plan construction),
// pruning (plan saving into the MEMO, where property-aware pruning runs),
// and enumeration (the remainder of the block's wall time).
func recordStages(oc *optctx.Ctx, br *BlockResult) {
	if oc == nil {
		return
	}
	c := &br.Counters
	genTime := c.AccessTime
	for _, d := range c.GenTime {
		genTime += d
	}
	created := c.TotalGenerated() + c.AccessPlans + c.EnforcerPlans
	pruned := created - br.Memo.NumPlans()
	if pruned < 0 {
		pruned = 0
	}
	enumTime := br.Elapsed - genTime - c.SaveTime
	if enumTime < 0 {
		enumTime = 0
	}
	oc.RecordStage(optctx.StageGenerate, int64(created), genTime)
	oc.RecordStage(optctx.StagePrune, int64(pruned), c.SaveTime)
	oc.RecordStage(optctx.StageEnumerate, int64(br.EnumStats.Joins), enumTime)
}

// propagateDerivedCard stores the optimized output cardinality of child on
// every TableRef (in any block of root's tree) deriving from it.
func propagateDerivedCard(root, child *query.Block, card float64) {
	for _, b := range root.Blocks() {
		for _, ref := range b.Tables {
			if ref.Derived == child {
				ref.CardOverride = card
			}
		}
	}
}

// optimizeBlock compiles one block.
func optimizeBlock(oc *optctx.Ctx, blk *query.Block, opts Options) (*BlockResult, error) {
	t0 := time.Now()
	kn := knobs.MustResolve(knobs.Set{Config: opts.Config, Parallelism: opts.Parallelism})
	cfg := kn.Config
	card := cost.NewEstimator(blk, cost.Full)

	if opts.Level == LevelLow {
		g, err := greedy.Optimize(blk, card, cfg)
		if err != nil {
			return nil, err
		}
		return &BlockResult{
			Block: blk, Plan: g.Plan, Memo: memo.New(blk.NumTables()),
			Elapsed: time.Since(t0),
		}, nil
	}

	sc := props.NewScope(blk)
	mem := memo.New(blk.NumTables())
	mem.SetAccountant(oc.Resources())
	mem.PipelineMatters = sc.PipelineInteresting()
	mem.ExpMatters = !sc.ExpensiveTables().Empty()
	popts := plangen.Options{Config: cfg, OrderPolicy: opts.OrderPolicy, Exec: oc}
	if opts.PilotPass {
		g, err := greedy.Optimize(blk, card, cfg)
		if err != nil {
			return nil, err
		}
		popts.PilotBound = g.Cost
	}
	gen := plangen.New(blk, sc, mem, card, popts)

	eopts := opts.Level.EnumOptions()
	eopts.Cartesian = opts.CartesianPolicy
	eopts.Exec = oc
	en := enum.New(blk, mem, card, eopts)
	var st enum.Stats
	var err error
	if workers := kn.Parallelism; workers > 1 {
		sc.MarkShared()
		hooks, finishGen := gen.ParallelHooks()
		st, err = en.RunParallel(hooks, workers)
		finishGen()
	} else {
		st, err = en.Run(gen.Hooks())
		gen.FlushTicks()
	}
	if err != nil {
		return nil, err
	}
	rootEntry := mem.Entry(blk.AllTables())
	best := rootEntry.Best()
	if best == nil {
		return nil, fmt.Errorf("opt: query %q produced no plan (pilot bound too tight?)", blk.Name)
	}
	br := &BlockResult{
		Block: blk, Plan: best, Memo: mem,
		EnumStats: st, Counters: gen.Counters,
		Elapsed: time.Since(t0),
	}
	recordStages(oc, br)
	gen.ReleaseScratch()
	return br, nil
}

// finish applies the top-level enforcers: a final sort when no plan
// delivers the ORDER BY order, and the aggregation operator for GROUP BY,
// choosing the streaming variant when the input is suitably ordered.
func finish(blk *query.Block, best *memo.Plan, mem *memo.Memo, opts Options) *memo.Plan {
	cfg := knobs.CostConfig(opts.Config)
	plan := best
	root := mem.Entry(blk.AllTables())
	eq := blk.EquivWithin(blk.AllTables())

	// Apply any expensive predicates the plan deferred past its joins.
	if !plan.DeferredExp.Empty() {
		sc := props.NewScope(blk)
		cost2, card := plan.Cost, plan.Card
		n := 0
		for t := plan.DeferredExp.Next(0); t >= 0; t = plan.DeferredExp.Next(t + 1) {
			sel, k := sc.ExpensiveSel(t)
			n += k
			card *= sel
		}
		cost2 += cfg.ExpensivePredCost(plan.Card, n)
		plan = &memo.Plan{
			Op: plan.Op, Left: plan.Left, Right: plan.Right,
			Tables: plan.Tables, Order: plan.Order, Part: plan.Part,
			Cost: cost2, Card: card, Pipelined: plan.Pipelined,
		}
	}

	if len(blk.GroupBy) > 0 {
		gbOrder := props.Order{Cols: blk.GroupBy}
		ordered := gbOrder.SetSubsetOfUnder(props.Order{Cols: orderColsOf(plan)}, eq) && plan.Order.Len() >= len(blk.GroupBy)
		if root != nil {
			if p := root.BestWithOrder(gbOrder, eq); p != nil && p.Cost+cfg.GroupByCost(p.Card, groupCount(blk, p), true) < plan.Cost+cfg.GroupByCost(plan.Card, groupCount(blk, plan), false) {
				plan, ordered = p, true
			}
		}
		groups := groupCount(blk, plan)
		plan = &memo.Plan{
			Op: memo.OpGroupBy, Left: plan, Tables: plan.Tables,
			Order: plan.Order, Part: plan.Part,
			Cost: plan.Cost + cfg.GroupByCost(plan.Card, groups, ordered),
			Card: groups,
		}
	}

	// FETCH FIRST N ROWS: a pipelined plan stops after N rows; charge it
	// only the fraction of its cost it actually runs. Blocking plans pay in
	// full before the first row.
	if blk.FirstN > 0 && len(blk.GroupBy) == 0 && len(blk.OrderBy) == 0 && root != nil {
		bestAdj := math.Inf(1)
		var pick *memo.Plan
		for _, p := range root.Plans {
			adj := p.Cost
			if p.Pipelined && p.Card > float64(blk.FirstN) {
				adj = p.Cost * float64(blk.FirstN) / p.Card
			}
			if adj < bestAdj {
				bestAdj, pick = adj, p
			}
		}
		if pick != nil {
			plan = &memo.Plan{
				Op: pick.Op, Left: pick.Left, Right: pick.Right,
				Tables: pick.Tables, Order: pick.Order, Part: pick.Part,
				Cost: bestAdj, Card: math.Min(pick.Card, float64(blk.FirstN)),
				Pipelined: pick.Pipelined,
			}
		}
	}

	if len(blk.OrderBy) > 0 {
		want := props.Order{Cols: blk.OrderBy}
		if !want.PrefixOfUnder(plan.Order, eq) {
			alt := (*memo.Plan)(nil)
			if root != nil && len(blk.GroupBy) == 0 {
				alt = root.BestWithOrder(want, eq)
			}
			sorted := &memo.Plan{
				Op: memo.OpSort, Left: plan, Tables: plan.Tables,
				Order: want, Part: plan.Part,
				Cost: plan.Cost + cfg.SortCost(plan.Card),
				Card: plan.Card,
			}
			if alt != nil && alt.Cost < sorted.Cost {
				plan = alt
			} else {
				plan = sorted
			}
		}
	}
	return plan
}

// orderColsOf returns the delivered order columns of a plan.
func orderColsOf(p *memo.Plan) []query.ColID { return p.Order.Cols }

// groupCount estimates the number of groups: the product of grouping-column
// NDVs capped by the input cardinality.
func groupCount(blk *query.Block, input *memo.Plan) float64 {
	groups := 1.0
	for _, c := range blk.GroupBy {
		groups *= blk.Column(c).Col.NDV
	}
	if groups > input.Card {
		groups = input.Card
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}
