package opt

import (
	"testing"

	"cote/internal/catalog"
	"cote/internal/query"
)

// expBlock builds a 3-table chain where table a carries an expensive
// predicate with the given selectivity (0 disables it).
func expBlock(t *testing.T, sel float64) *query.Block {
	t.Helper()
	cb := catalog.NewBuilder("exp")
	cb.Table("a", 200_000).Column("x", 1_000).Column("img", 1_000)
	cb.Table("b", 100_000).Column("x", 1_000).Column("y", 500)
	cb.Table("c", 50_000).Column("y", 500)
	cat := cb.Build()
	qb := query.NewBuilder("exp", cat)
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.AddTable("c", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.JoinEq("b", "y", "c", "y")
	if sel > 0 {
		qb.ExpensiveFilter(qb.Col("a", "img"), sel)
	}
	return qb.MustBuild()
}

func TestExpensivePredicateGrowsSearch(t *testing.T) {
	plain, err := Optimize(expBlock(t, 0), Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Optimize(expBlock(t, 0.01), Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	cp, ce := plain.TotalCounters(), exp.TotalCounters()
	if ce.TotalGenerated() <= cp.TotalGenerated() {
		t.Fatalf("expensive predicate did not grow the search: %d vs %d",
			ce.TotalGenerated(), cp.TotalGenerated())
	}
}

func TestExpensivePredicateFinalPlanComplete(t *testing.T) {
	// Whatever the optimizer defers, the finishing step must apply: the
	// final plan's deferral set is empty and its cardinality reflects all
	// predicates.
	res, err := Optimize(expBlock(t, 0.01), Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.DeferredExp.Empty() {
		t.Fatalf("final plan still defers expensive predicates: %v", res.Plan.DeferredExp)
	}
	// All-applied cardinality: compare against the plain query scaled by
	// the predicate's selectivity.
	plain, err := Optimize(expBlock(t, 0), Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	want := plain.Plan.Card * 0.01
	if res.Plan.Card > want*1.5 || res.Plan.Card < want*0.5 {
		t.Fatalf("final card %v, want ~%v", res.Plan.Card, want)
	}
}

func TestExpensiveDeferralCanWin(t *testing.T) {
	// With a barely selective, very costly predicate, deferring it past the
	// joins should beat evaluating it on the full base table whenever joins
	// shrink the row count; at minimum, both variants must have been
	// explored (the MEMO retains incomparable deferral sets).
	res, err := Optimize(expBlock(t, 0.9), Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	sawDeferred := false
	for _, e := range res.Blocks[0].Memo.Entries() {
		for _, p := range e.Plans {
			if !p.DeferredExp.Empty() {
				sawDeferred = true
			}
		}
	}
	if !sawDeferred {
		t.Fatal("no deferred-predicate plan survived anywhere in the MEMO")
	}
}
