package opt

import (
	"testing"

	"cote/internal/catalog"
	"cote/internal/memo"
	"cote/internal/props"
	"cote/internal/query"
)

// firstNBlock builds a 3-table chain with or without FETCH FIRST.
func firstNBlock(t *testing.T, firstN int) *query.Block {
	t.Helper()
	cb := catalog.NewBuilder("fn")
	cb.Table("a", 1_000_000).Column("x", 10_000).Column("v", 500)
	cb.Table("b", 500_000).Column("x", 10_000).Column("y", 5_000)
	cb.Table("c", 100_000).Column("y", 5_000)
	cat := cb.Build()
	qb := query.NewBuilder("fn", cat)
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.AddTable("c", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.JoinEq("b", "y", "c", "y")
	if firstN > 0 {
		qb.FetchFirst(firstN)
	}
	return qb.MustBuild()
}

func TestFirstNKeepsPipelinedPlans(t *testing.T) {
	plain, err := Optimize(firstNBlock(t, 0), Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	firstN, err := Optimize(firstNBlock(t, 10), Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	// Pipelineability becomes a pruning-relevant property: the MEMO retains
	// more plans, so later joins generate more (the Table 1 effect on the
	// paper's target quantity).
	cp, cf := plain.TotalCounters(), firstN.TotalCounters()
	if cf.TotalGenerated() <= cp.TotalGenerated() {
		t.Fatalf("FETCH FIRST did not grow the search: %d vs %d",
			cf.TotalGenerated(), cp.TotalGenerated())
	}
	// The chosen plan streams and its cost reflects early termination.
	if !firstN.Plan.Pipelined {
		t.Fatalf("FETCH FIRST plan is not pipelined: %v", firstN.Plan)
	}
	if firstN.Plan.Cost >= plain.Plan.Cost {
		t.Fatalf("first-N plan cost %v not below full plan cost %v",
			firstN.Plan.Cost, plain.Plan.Cost)
	}
	if firstN.Plan.Card > 10 {
		t.Fatalf("first-N output card = %v", firstN.Plan.Card)
	}
}

func TestPipelinedFlagPropagation(t *testing.T) {
	res, err := Optimize(firstNBlock(t, 5), Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	// Walk all retained plans: every pipelined join must be an NLJN whose
	// outer is pipelined; HSJN and enforced-sort MGJN plans must not be
	// pipelined.
	for _, e := range res.Blocks[0].Memo.Entries() {
		for _, p := range e.Plans {
			switch p.Op {
			case memo.OpHSJN:
				if p.Pipelined {
					t.Fatalf("pipelined hash join: %v", p)
				}
			case memo.OpNLJN:
				if p.Pipelined && !p.Left.Pipelined {
					t.Fatalf("NLJN pipelined without pipelined outer: %v", p)
				}
			case memo.OpSort:
				if p.Pipelined {
					t.Fatalf("pipelined sort: %v", p)
				}
			}
		}
	}
}

func TestFirstNWithOrderByStillSorts(t *testing.T) {
	// ORDER BY forces materialization; FETCH FIRST must not suppress it.
	cb := catalog.NewBuilder("fno")
	cb.Table("a", 10_000).Column("x", 100).Column("m", 50)
	cb.Table("b", 10_000).Column("x", 100)
	cat := cb.Build()
	qb := query.NewBuilder("fno", cat)
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.OrderBy(qb.Col("a", "m"))
	qb.FetchFirst(10)
	blk := qb.MustBuild()
	res, err := Optimize(blk, Options{Level: LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	eq := blk.EquivWithin(blk.AllTables())
	want := props.Order{Cols: blk.OrderBy}
	if !want.PrefixOfUnder(res.Plan.Order, eq) {
		t.Fatalf("final plan not ordered for ORDER BY: %v", res.Plan)
	}
}
