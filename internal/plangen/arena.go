package plangen

import (
	"unsafe"

	"cote/internal/memo"
	"cote/internal/resource"
)

// arenaChunk is the number of Plans allocated per arena chunk. Plans are
// ~128 bytes, so a chunk is a handful of pages — large enough to amortize
// the allocator, small enough not to overshoot tiny queries badly.
const arenaChunk = 256

// planBytes is the accounting size of one arena Plan slot.
const planBytes = int64(unsafe.Sizeof(memo.Plan{}))

// planArena is a bump allocator with a free list for memo.Plan values,
// owned by one Generator (and therefore by one goroutine). The real
// optimizer creates one Plan per generated alternative — the dominant
// allocation of a compile — so batching them into chunks removes ~99% of
// the per-plan allocator traffic, and recycling plans the MEMO rejected
// (dominated on arrival, or cut by the pilot bound) removes most of the
// rest. Plans that were inserted and later pruned are deliberately NOT
// recycled: they may already be referenced as children of other plans or as
// enforcer sources.
//
// Chunks are referenced by the plans handed out, so the arena imposes no
// lifetime rule beyond the plans' own: the chosen plan keeps its chunk(s)
// alive through ordinary GC reachability.
//
// When a run accountant is attached, the arena charges chunk capacity as
// KindScratch: capacity inherited from the pool is charged once at attach,
// each new chunk once at creation, and free-list borrows are never charged
// again — reused capacity is charged once, not per borrow. resetAccounting
// zeroes this state before the scratch returns to the pool.
type planArena struct {
	cur  []memo.Plan
	n    int
	free []*memo.Plan

	acct    *resource.Accountant
	charged int64
}

// attach points the arena at the run accountant, charging capacity retained
// from pooled reuse once up front.
func (a *planArena) attach(acct *resource.Accountant) {
	if acct == nil {
		return
	}
	a.acct = acct
	if n := int64(len(a.cur)) * planBytes; n > 0 {
		a.charged += n
		acct.Charge(resource.KindScratch, n)
	}
}

// resetAccounting detaches the accountant and zeroes the charge tally, so a
// pooled arena carries no accounting state into its next run.
func (a *planArena) resetAccounting() {
	a.acct = nil
	a.charged = 0
}

// alloc returns a zeroed Plan.
func (a *planArena) alloc() *memo.Plan {
	if k := len(a.free); k > 0 {
		p := a.free[k-1]
		a.free = a.free[:k-1]
		*p = memo.Plan{}
		return p
	}
	if a.n == len(a.cur) {
		a.cur = make([]memo.Plan, arenaChunk)
		a.n = 0
		if a.acct != nil {
			a.charged += arenaChunk * planBytes
			a.acct.Charge(resource.KindScratch, arenaChunk*planBytes)
		}
	}
	p := &a.cur[a.n]
	a.n++
	return p
}

// recycle returns a plan that is provably unreferenced (it was never
// inserted into the MEMO) to the free list.
func (a *planArena) recycle(p *memo.Plan) {
	a.free = append(a.free, p)
}
