package plangen

import "cote/internal/memo"

// arenaChunk is the number of Plans allocated per arena chunk. Plans are
// ~128 bytes, so a chunk is a handful of pages — large enough to amortize
// the allocator, small enough not to overshoot tiny queries badly.
const arenaChunk = 256

// planArena is a bump allocator with a free list for memo.Plan values,
// owned by one Generator (and therefore by one goroutine). The real
// optimizer creates one Plan per generated alternative — the dominant
// allocation of a compile — so batching them into chunks removes ~99% of
// the per-plan allocator traffic, and recycling plans the MEMO rejected
// (dominated on arrival, or cut by the pilot bound) removes most of the
// rest. Plans that were inserted and later pruned are deliberately NOT
// recycled: they may already be referenced as children of other plans or as
// enforcer sources.
//
// Chunks are referenced by the plans handed out, so the arena imposes no
// lifetime rule beyond the plans' own: the chosen plan keeps its chunk(s)
// alive through ordinary GC reachability.
type planArena struct {
	cur  []memo.Plan
	n    int
	free []*memo.Plan
}

// alloc returns a zeroed Plan.
func (a *planArena) alloc() *memo.Plan {
	if k := len(a.free); k > 0 {
		p := a.free[k-1]
		a.free = a.free[:k-1]
		*p = memo.Plan{}
		return p
	}
	if a.n == len(a.cur) {
		a.cur = make([]memo.Plan, arenaChunk)
		a.n = 0
	}
	p := &a.cur[a.n]
	a.n++
	return p
}

// recycle returns a plan that is provably unreferenced (it was never
// inserted into the MEMO) to the free list.
func (a *planArena) recycle(p *memo.Plan) {
	a.free = append(a.free, p)
}
