package plangen

import (
	"cote/internal/enum"
	"cote/internal/memo"
)

// taskSeg marks the end (exclusive, into the worker's plan buffer) of the
// plans one task generated.
type taskSeg struct {
	task, end int
}

// genWorker is one parallel DP worker: a forked Generator running in sink
// mode, buffering (result, plan) pairs per task, plus the replay state the
// driver's serialized commit phase walks through.
//
// The driver claims tasks for a worker in increasing task order and replays
// commits in globally increasing task order, so a single cursor over segs
// suffices — no per-task lookup.
type genWorker struct {
	g       *Generator
	results []*memo.Entry
	plans   []*memo.Plan
	segs    []taskSeg
	cur     int // next segment to commit
	done    int // plans already committed
}

// fork clones the generator for one worker goroutine: shared immutable block
// state (scope, MEMO pointer, cost config, cardinality estimator), private
// counters, arena and scratch buffers, and a sink capturing generated plans
// instead of committing them.
func (g *Generator) fork() *genWorker {
	w := &genWorker{}
	w.g = &Generator{
		blk:      g.blk,
		sc:       g.sc,
		mem:      g.mem,
		card:     g.card,
		cfg:      g.cfg,
		policy:   g.policy,
		parallel: g.parallel,
		bound:    g.bound,
		exec:     g.exec,
		scratch:  scratchPool.Get().(*scratch),
	}
	// Workers charge scratch against the shared run accountant: atomics make
	// it race-safe, and scratch is outside the determinism guarantee (the
	// durable charges all happen on the driver's canonical commit replay).
	w.g.arena.attach(g.exec.Resources())
	w.g.chargeBufGrowth()
	w.g.sink = func(result *memo.Entry, p *memo.Plan) {
		w.results = append(w.results, result)
		w.plans = append(w.plans, p)
	}
	return w
}

// generate runs the full (read-only) plan generation for one enumerated join
// on this worker, recording the task boundary for replay.
func (w *genWorker) generate(task int, outer, inner, result *memo.Entry) {
	w.g.joinEntry(outer, inner, result)
	w.segs = append(w.segs, taskSeg{task: task, end: len(w.plans)})
}

// commit replays the plans buffered for one task into the MEMO. It runs on
// the driver goroutine only, in globally increasing task order, which makes
// every MEMO mutation identical to a serial run.
func (w *genWorker) commit(task int) {
	if w.cur >= len(w.segs) || w.segs[w.cur].task != task {
		panic("plangen: out-of-order parallel commit")
	}
	end := w.segs[w.cur].end
	w.cur++
	for i := w.done; i < end; i++ {
		w.g.commitJoin(w.results[i], w.plans[i])
		w.results[i], w.plans[i] = nil, nil // release for the arena/GC
	}
	w.done = end
	if w.done == len(w.plans) {
		// Size-class drained: reset the buffers so they are reused instead of
		// growing across rounds.
		w.results, w.plans, w.segs = w.results[:0], w.plans[:0], w.segs[:0]
		w.cur, w.done = 0, 0
	}
}

// ParallelHooks returns the hooks driving this generator under the parallel
// enumerator, plus a finish func that must be called after RunParallel
// returns to fold the workers' counters back into g.Counters. Init and
// Complete run on the driver goroutine and use g directly; join generation
// is forked per worker.
func (g *Generator) ParallelHooks() (enum.ParallelHooks, func()) {
	var workers []*genWorker
	hooks := enum.ParallelHooks{
		Init:     g.initEntry,
		Complete: g.completeEntry,
		NewWorker: func() (enum.GenerateFunc, enum.CommitFunc) {
			w := g.fork()
			workers = append(workers, w)
			return w.generate, w.commit
		},
	}
	finish := func() {
		for _, w := range workers {
			w.g.FlushTicks()
			g.Counters.merge(&w.g.Counters)
			w.g.ReleaseScratch()
		}
	}
	return hooks, finish
}
