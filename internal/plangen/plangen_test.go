package plangen

import (
	"context"
	"testing"

	"cote/internal/bitset"
	"cote/internal/catalog"
	"cote/internal/cost"
	"cote/internal/enum"
	"cote/internal/memo"
	"cote/internal/optctx"
	"cote/internal/props"
	"cote/internal/query"
	"cote/internal/resource"
)

// fixture builds a 3-table chain a-b-c with an ORDER BY, optionally
// partitioned, and runs plan generation, returning the memo and counters.
func fixture(t *testing.T, nodes int, level enum.Options) (*query.Block, *memo.Memo, *Generator) {
	t.Helper()
	cb := catalog.NewBuilder("pg")
	a := cb.Table("a", 100_000)
	a.Column("x", 1_000).Column("m", 500).Index("ix_a", false, "x")
	if nodes > 1 {
		a.Partition(nodes, "x")
	}
	b := cb.Table("b", 50_000)
	b.Column("x", 1_000).Column("y", 1_000)
	if nodes > 1 {
		b.Partition(nodes, "y")
	}
	cb.Table("c", 10_000).Column("y", 1_000)
	cat := cb.Build()

	qb := query.NewBuilder("pg", cat)
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.AddTable("c", "")
	qb.JoinEq("a", "x", "b", "x")
	qb.JoinEq("b", "y", "c", "y")
	qb.OrderBy(qb.Col("a", "m"))
	blk := qb.MustBuild()

	cfg := cost.Serial
	if nodes > 1 {
		cfg = cost.Parallel4
	}
	card := cost.NewEstimator(blk, cost.Full)
	sc := props.NewScope(blk)
	mem := memo.New(blk.NumTables())
	gen := New(blk, sc, mem, card, Options{Config: cfg})
	if _, err := enum.New(blk, mem, card, level).Run(gen.Hooks()); err != nil {
		t.Fatal(err)
	}
	return blk, mem, gen
}

func TestBaseEntryPlans(t *testing.T) {
	blk, mem, gen := fixture(t, 1, enum.Options{})
	ea := mem.Entry(bitset.Of(0))
	// Table a: scan (DC) + plans for interesting orders (a.x join col via
	// index, a.m via eager sort).
	if len(ea.Plans) != 3 {
		t.Fatalf("entry a has %d plans: %v", len(ea.Plans), ea.Plans)
	}
	ax, am := blk.Tables[0].FirstCol, blk.Tables[0].FirstCol+1
	if ea.BestWithOrder(props.OrderOn(ax), ea.Equiv) == nil {
		t.Fatal("no plan ordered on the join column")
	}
	if ea.BestWithOrder(props.OrderOn(am), ea.Equiv) == nil {
		t.Fatal("no plan ordered on the ORDER BY column")
	}
	if gen.Counters.AccessPlans == 0 || gen.Counters.EnforcerPlans == 0 {
		t.Fatalf("counters: %+v", gen.Counters)
	}
}

func TestJoinPlanGenerationCounts(t *testing.T) {
	_, mem, gen := fixture(t, 1, enum.Options{})
	// Chain of 3: pairs (a,b), (b,c), (ab,c), (a,bc) = 4, each both ways.
	if got := gen.Counters.Generated[props.HSJN]; got != 8 {
		t.Fatalf("HSJN generated = %d, want 8 (one per ordered join)", got)
	}
	if gen.Counters.Generated[props.NLJN] < 8 || gen.Counters.Generated[props.MGJN] < 8 {
		t.Fatalf("join counts too low: %+v", gen.Counters.Generated)
	}
	// The final entry holds at least a DC plan and the ORDER BY-ordered
	// plan.
	root := mem.Entry(bitset.Of(0, 1, 2))
	if root == nil || len(root.Plans) < 2 {
		t.Fatalf("root entry plans: %+v", root)
	}
}

func TestOrderRetirementAtJoin(t *testing.T) {
	blk, mem, _ := fixture(t, 1, enum.Options{})
	// At {a,b}, the a.x order has retired (predicate applied, no further
	// use); no surviving plan should carry it as its declared order.
	eab := mem.Entry(bitset.Of(0, 1))
	ax := blk.Tables[0].FirstCol
	for _, p := range eab.Plans {
		if !p.Order.Empty() && p.Order.Cols[0] == ax && p.Order.Len() == 1 {
			t.Fatalf("retired order on a.x survived: %v", p)
		}
	}
}

func TestMergeCandidates(t *testing.T) {
	oc := []query.ColID{1, 2, 3}
	ic := []query.ColID{11, 12, 13}
	outs, ins := MergeCandidates(oc, ic)
	if len(outs) != 4 || len(ins) != 4 {
		t.Fatalf("candidates = %d, want 3 singles + composite", len(outs))
	}
	if outs[3].Len() != 3 || ins[3].Len() != 3 {
		t.Fatal("composite candidate malformed")
	}
	// Single predicate: no composite.
	outs, _ = MergeCandidates(oc[:1], ic[:1])
	if len(outs) != 1 {
		t.Fatalf("single-pred candidates = %d", len(outs))
	}
}

func TestParallelPlansCarryPartitions(t *testing.T) {
	_, mem, gen := fixture(t, 4, enum.Options{})
	var withPart int
	for _, e := range mem.Entries() {
		for _, p := range e.Plans {
			if !p.Part.Empty() {
				withPart++
			}
		}
	}
	if withPart == 0 {
		t.Fatal("no partitioned plans in parallel mode")
	}
	if gen.Counters.EnforcerPlans == 0 {
		t.Fatal("no enforcers (sorts/repartitions) in parallel mode")
	}
}

func TestLazyPolicySkipsEnforcedSorts(t *testing.T) {
	cb := catalog.NewBuilder("lz")
	cb.Table("r", 1_000).Column("x", 100)
	cb.Table("s", 1_000).Column("x", 100)
	cat := cb.Build()
	qb := query.NewBuilder("lz", cat)
	qb.AddTable("r", "")
	qb.AddTable("s", "")
	qb.JoinEq("r", "x", "s", "x")
	blk := qb.MustBuild()

	card := cost.NewEstimator(blk, cost.Full)
	sc := props.NewScope(blk)
	mem := memo.New(2)
	gen := New(blk, sc, mem, card, Options{OrderPolicy: props.Lazy})
	if _, err := enum.New(blk, mem, card, enum.Options{}).Run(gen.Hooks()); err != nil {
		t.Fatal(err)
	}
	// No indexes, lazy policy: no sort enforcers at base entries.
	if gen.Counters.EnforcerPlans != 0 {
		t.Fatalf("lazy policy generated %d enforcers", gen.Counters.EnforcerPlans)
	}
}

func TestPilotBoundCounting(t *testing.T) {
	blk, _, unbounded := fixture(t, 1, enum.Options{})
	best := 0.0
	{
		// Recover the best plan cost from a fresh run for the bound.
		card := cost.NewEstimator(blk, cost.Full)
		sc := props.NewScope(blk)
		mem := memo.New(blk.NumTables())
		gen := New(blk, sc, mem, card, Options{})
		if _, err := enum.New(blk, mem, card, enum.Options{}).Run(gen.Hooks()); err != nil {
			t.Fatal(err)
		}
		best = mem.Entry(blk.AllTables()).Best().Cost
	}
	card := cost.NewEstimator(blk, cost.Full)
	sc := props.NewScope(blk)
	mem := memo.New(blk.NumTables())
	gen := New(blk, sc, mem, card, Options{PilotBound: best})
	if _, err := enum.New(blk, mem, card, enum.Options{}).Run(gen.Hooks()); err != nil {
		t.Fatal(err)
	}
	// The bound can only shrink the search (bound-pruned plans at lower
	// entries stop feeding joins above them).
	if g, u := gen.Counters.TotalGenerated(), unbounded.Counters.TotalGenerated(); g > u || g < u/2 {
		t.Fatalf("generated %d with bound vs %d without", g, u)
	}
	// The optimal plan survives the bound.
	if got := mem.Entry(blk.AllTables()).Best().Cost; got > best*1.0001 {
		t.Fatalf("bounded best %v worse than unbounded %v", got, best)
	}
}

func TestTimingCountersPopulated(t *testing.T) {
	_, _, gen := fixture(t, 1, enum.Options{})
	c := gen.Counters
	for m := props.JoinMethod(0); m < props.NumJoinMethods; m++ {
		if c.GenTime[m] <= 0 {
			t.Fatalf("no generation time recorded for %v", m)
		}
	}
	if c.SaveTime <= 0 || c.AccessTime <= 0 {
		t.Fatalf("timing counters missing: %+v", c)
	}
}

func TestSortWidthFactor(t *testing.T) {
	narrow := sortWidthFactor(props.OrderOn(1))
	wide := sortWidthFactor(props.OrderOn(1, 2, 3))
	if narrow >= wide {
		t.Fatal("wider sort keys should cost more")
	}
	if narrow != 1 {
		t.Fatalf("single-column factor = %v, want 1", narrow)
	}
}

// TestReleaseScratchZeroesAccounting is the plangen half of the pooled-reuse
// accounting rule (the memo half is TestResetZeroesAccounting): ReleaseScratch
// must settle outstanding buffer growth, detach the accountant, and zero both
// charge tallies so the next borrower starts clean — and re-attaching already
// charged capacity must charge it exactly once, never per borrow.
func TestReleaseScratchZeroesAccounting(t *testing.T) {
	oc := optctx.New(context.Background())
	acct := oc.Resources()

	cb := catalog.NewBuilder("acct")
	cb.Table("a", 100_000).Column("x", 1_000)
	cb.Table("b", 50_000).Column("x", 1_000)
	cat := cb.Build()
	qb := query.NewBuilder("acct", cat)
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.JoinEq("a", "x", "b", "x")
	blk := qb.MustBuild()

	card := cost.NewEstimator(blk, cost.Full)
	mem := memo.New(blk.NumTables())
	gen := New(blk, props.NewScope(blk), mem, card, Options{Config: cost.Serial, Exec: oc})
	if _, err := enum.New(blk, mem, card, enum.Options{}).Run(gen.Hooks()); err != nil {
		t.Fatal(err)
	}
	if gen.scratch.arena.acct != acct {
		t.Fatal("accountant not attached to the arena")
	}
	scratchUsed := acct.KindUsed(resource.KindScratch)
	if scratchUsed <= 0 {
		t.Fatalf("KindScratch used = %d, want > 0 (arena chunk + buffers)", scratchUsed)
	}

	s := gen.scratch
	gen.ReleaseScratch()
	if s.arena.acct != nil {
		t.Fatal("ReleaseScratch kept the accountant attached — pooled reuse would charge a finished run")
	}
	if s.arena.charged != 0 || s.bufCharged != 0 {
		t.Fatalf("ReleaseScratch left charge tallies arena=%d buf=%d, want 0 — next borrower would skip its own charges", s.arena.charged, s.bufCharged)
	}

	// Re-attach the same (now pooled-state) scratch to a fresh run: retained
	// capacity is charged exactly once, and settling again charges nothing.
	acct2 := resource.New()
	s.arena.attach(acct2)
	s.chargeBufGrowth()
	once := acct2.KindUsed(resource.KindScratch)
	if once <= 0 {
		t.Fatalf("retained capacity charged %d on re-attach, want > 0", once)
	}
	s.chargeBufGrowth()
	s.chargeBufGrowth()
	if got := acct2.KindUsed(resource.KindScratch); got != once {
		t.Fatalf("repeated settlement double-charged pooled buffers: %d -> %d", once, got)
	}
	s.arena.resetAccounting()
	s.bufCharged = 0
}
