// Package plangen implements the real plan-generation path of the
// reproduced optimizer: access plans for base tables (scans, index scans,
// eager SORT enforcers), the three join methods with their property
// propagation behaviour (Table 2 of the paper), partition handling for the
// shared-nothing parallel version (co-located joins, repartition enforcers,
// eager materialization of (order, partition) combinations), and
// property-aware pruning into the MEMO.
//
// The generator keeps per-join-method counters of plans *generated* (before
// pruning) — the ground truth against which the paper's estimator is
// evaluated in Figure 5 — and wall-clock timers per join method plus the
// time spent saving plans into the MEMO, which together regenerate the
// Figure 2 compilation-time breakdown.
package plangen

import (
	"sync"
	"time"
	"unsafe"

	"cote/internal/cost"
	"cote/internal/enum"
	"cote/internal/knobs"
	"cote/internal/memo"
	"cote/internal/optctx"
	"cote/internal/props"
	"cote/internal/query"
	"cote/internal/resource"
)

// Counters aggregates what one optimization run generated and where its
// time went.
type Counters struct {
	// Generated counts join plans generated per method, before pruning.
	Generated [props.NumJoinMethods]int
	// AccessPlans counts scan and index-scan plans.
	AccessPlans int
	// EnforcerPlans counts SORT and REPARTITION enforcer plans.
	EnforcerPlans int
	// PilotPruned counts join plans discarded by the pilot-pass bound.
	PilotPruned int

	// GenTime is the wall time spent generating (costing) plans per join
	// method; SaveTime is the time spent inserting plans into the MEMO
	// ("plan saving" in Figure 2); AccessTime covers base-table access and
	// enforcer generation.
	GenTime    [props.NumJoinMethods]time.Duration
	SaveTime   time.Duration
	AccessTime time.Duration
}

// TotalGenerated returns the total number of join plans generated.
func (c *Counters) TotalGenerated() int {
	t := 0
	for _, g := range c.Generated {
		t += g
	}
	return t
}

// merge folds another worker's counters into c. Counts sum exactly; the
// timer sums become aggregate CPU time rather than wall time when the
// counters came from concurrent workers.
func (c *Counters) merge(o *Counters) {
	for m := range c.Generated {
		c.Generated[m] += o.Generated[m]
		c.GenTime[m] += o.GenTime[m]
	}
	c.AccessPlans += o.AccessPlans
	c.EnforcerPlans += o.EnforcerPlans
	c.PilotPruned += o.PilotPruned
	c.SaveTime += o.SaveTime
	c.AccessTime += o.AccessTime
}

// Options configures a Generator.
type Options struct {
	// Config selects the cost configuration (serial or parallel).
	Config *cost.Config
	// OrderPolicy is the generation policy for order properties; DB2 (and
	// hence the default here) is eager.
	OrderPolicy props.GenerationPolicy
	// PilotBound, when positive, drops any generated join plan whose cost
	// exceeds it — the pilot-pass search-space reduction discussed in
	// Section 6.1.
	PilotBound float64
	// Exec, when non-nil, receives batched generated-plan progress ticks —
	// the numerator of the live progress meter and the trigger for the
	// plan-budget abort. Join-method plans only, matching the estimator's
	// predicted total.
	Exec *optctx.Ctx
}

// Generator produces plans when driven by the join enumerator's hooks. One
// Generator serves one goroutine; the parallel driver forks worker
// generators (sharing the immutable block state, diverging in counters,
// arena and scratch space) via ParallelHooks.
type Generator struct {
	blk      *query.Block
	sc       *props.Scope
	mem      *memo.Memo
	card     *cost.Estimator
	cfg      *cost.Config
	policy   props.GenerationPolicy
	parallel bool
	bound    float64
	exec     *optctx.Ctx
	// ticks counts join plans generated since the last progress flush; the
	// batch keeps the shared atomic off the per-plan hot path.
	ticks int64

	// sink, when set, receives finalized join plans instead of committing
	// them to the MEMO — the deferred-emission mode worker generators run
	// in during the parallel DP round.
	sink func(result *memo.Entry, p *memo.Plan)

	// scratch is the pooled per-goroutine working memory (arena + reusable
	// slices); its fields are promoted so the hot path reads g.ocBuf etc.
	*scratch

	Counters Counters
}

// scratch is the per-goroutine working memory of one Generator: the plan
// arena plus the slice buffers reused join over join so the steady state of
// one optimization allocates almost nothing. It is recycled across requests
// through scratchPool (ReleaseScratch) so a serving process's steady state
// also stops allocating them per compile. Recycling the arena is sound: the
// free list holds only plans that were never inserted into any MEMO, and a
// pooled current chunk pins at most one chunk's worth of a finished
// request's plans until it is overwritten.
type scratch struct {
	// arena batches Plan allocations and recycles MEMO-rejected plans.
	arena planArena

	ocBuf, icBuf  []query.ColID
	jcBuf         []query.ColID
	outsBuf       []props.Order
	insBuf        []props.Order
	emittedBuf    props.OrderList
	nlOrdersBuf   props.OrderList
	partsBuf      props.PartitionList
	candPartsBuf  []props.Partition
	completeParts props.PartitionList
	completeOrds  props.OrderList

	// bufCharged is the slice-buffer capacity already charged to the run
	// accountant, so growth is charged as a delta and reused capacity is
	// charged once. ReleaseScratch zeroes it with the arena's tally.
	bufCharged int64
}

// Accounting sizes of the scratch element types.
var (
	colIDBytes = int64(unsafe.Sizeof(*new(query.ColID)))
	orderBytes = int64(unsafe.Sizeof(props.Order{}))
	partBytes  = int64(unsafe.Sizeof(props.Partition{}))
)

// chargeBufGrowth settles the scratch slice buffers' capacity against the
// run accountant: only the growth over what this scratch already charged,
// called when the scratch is attached (pool-retained capacity) and when it
// is released (capacity grown during the run).
func (s *scratch) chargeBufGrowth() {
	if s.arena.acct == nil {
		return
	}
	total := int64(cap(s.ocBuf)+cap(s.icBuf)+cap(s.jcBuf))*colIDBytes +
		int64(cap(s.outsBuf)+cap(s.insBuf))*orderBytes +
		int64(cap(s.candPartsBuf))*partBytes +
		int64(cap(s.arena.free))*8
	if total > s.bufCharged {
		s.arena.acct.Charge(resource.KindScratch, total-s.bufCharged)
		s.bufCharged = total
	}
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// ReleaseScratch returns the generator's pooled working memory. Call it once
// the generator is finished (no hook will fire again); using the generator
// afterwards panics. Safe to call twice.
func (g *Generator) ReleaseScratch() {
	s := g.scratch
	if s == nil {
		return
	}
	g.scratch = nil
	s.chargeBufGrowth()
	// Zero the accounting state before pooling: the next borrower must start
	// from a clean tally against its own accountant (regression-tested, like
	// the stale-postings Reset rule in memo).
	s.arena.resetAccounting()
	s.bufCharged = 0
	s.ocBuf, s.icBuf, s.jcBuf = s.ocBuf[:0], s.icBuf[:0], s.jcBuf[:0]
	s.outsBuf, s.insBuf = s.outsBuf[:0], s.insBuf[:0]
	s.candPartsBuf = s.candPartsBuf[:0]
	scratchPool.Put(s)
}

// New builds a plan generator writing into mem. The cardinality estimator
// should be the full-mode one; the Generator shares it with the enumerator
// so both see identical logical properties.
func New(blk *query.Block, sc *props.Scope, mem *memo.Memo, card *cost.Estimator, opts Options) *Generator {
	cfg := knobs.CostConfig(opts.Config)
	g := &Generator{
		blk:      blk,
		sc:       sc,
		mem:      mem,
		card:     card,
		cfg:      cfg,
		policy:   opts.OrderPolicy,
		parallel: cfg.Nodes > 1,
		bound:    opts.PilotBound,
		exec:     opts.Exec,
		scratch:  scratchPool.Get().(*scratch),
	}
	g.arena.attach(opts.Exec.Resources())
	g.chargeBufGrowth()
	return g
}

// Hooks returns the enumerator callbacks that drive this generator.
func (g *Generator) Hooks() enum.Hooks {
	return enum.Hooks{
		Init:     g.initEntry,
		Join:     g.joinEntry,
		Complete: g.completeEntry,
	}
}

// initEntry generates access plans for single-table entries. Composite
// entries get plans only through joins.
func (g *Generator) initEntry(e *memo.Entry) {
	if e.Tables.Len() != 1 {
		return
	}
	start := time.Now()
	t := e.Tables.Min()
	ref := g.blk.Tables[t]
	rows := ref.BaseRows()
	fc := g.card.FilteredCard(t)
	part := g.basePartition(t)

	// Table scan: the always-available don't-care plan. Scans stream, so
	// they are pipelined. Expensive predicates are evaluated here (the
	// apply-at-scan variant); a defer variant follows below.
	expSel, expN := g.sc.ExpensiveSel(t)
	p := g.arena.alloc()
	*p = memo.Plan{
		Op: memo.OpTableScan, Tables: e.Tables,
		Cost: g.cfg.ScanCost(rows, fc) + g.cfg.ExpensivePredCost(rows, expN),
		Card: fc, Part: part,
		Pipelined: true,
	}
	g.savePlan(e, p)
	if expN > 0 {
		// Defer-past-joins variant (Table 1, row 5): cheaper to produce,
		// more rows flow upward, and the finishing step pays the predicate
		// cost on whatever survives the joins.
		g.Counters.AccessPlans++
		p := g.arena.alloc()
		*p = memo.Plan{
			Op: memo.OpTableScan, Tables: e.Tables,
			Cost: g.cfg.ScanCost(rows, fc/expSel), Card: fc / expSel, Part: part,
			Pipelined:   true,
			DeferredExp: e.Tables,
		}
		g.savePlan(e, p)
	}

	// Index scans deliver their index order naturally.
	for _, o := range g.sc.NaturalBaseOrders(t, e.Equiv) {
		match := g.indexMatchRows(t, o, rows, fc)
		p := g.arena.alloc()
		*p = memo.Plan{
			Op: memo.OpIndexScan, Tables: e.Tables,
			Order: g.retireOrDeliver(o, e), Part: part,
			Cost: g.cfg.IndexScanCost(rows, match), Card: fc,
			Pipelined: true,
		}
		g.savePlan(e, p)
	}
	g.Counters.AccessPlans += len(e.Plans)

	// Eager order policy: enforce every pushed-down interesting order that
	// no natural plan delivers.
	if g.policy == props.Eager {
		base := e.Best()
		for _, o := range g.sc.EagerBaseOrders(t, e.Equiv) {
			if e.BestWithOrder(o, e.Equiv) != nil {
				continue
			}
			g.Counters.EnforcerPlans++
			p := g.arena.alloc()
			*p = memo.Plan{
				Op: memo.OpSort, Left: base, Tables: e.Tables,
				Order: o, Part: part,
				Cost: base.Cost + g.cfg.SortCost(fc)*sortWidthFactor(o),
				Card: fc,
			}
			g.savePlan(e, p)
		}
	}
	g.Counters.AccessTime += time.Since(start)
}

// indexMatchRows estimates the rows fetched through an index whose leading
// column is o.Cols[0]: the filtered cardinality when a local equality
// predicate binds that column, the whole table otherwise.
func (g *Generator) indexMatchRows(t int, o props.Order, rows, fc float64) float64 {
	if o.Empty() {
		return rows
	}
	for _, lp := range g.blk.LocalPreds {
		if lp.Col == o.Cols[0] && lp.Op == query.Eq {
			return fc
		}
	}
	return rows
}

// sortWidthFactor makes wider sort keys slightly more expensive, so a sort
// on (a) is not dominated for free by a sort on (a, b).
func sortWidthFactor(o props.Order) float64 {
	return 1 + 0.05*float64(o.Len()-1)
}

// basePartition returns the physical partitioning of table t (parallel
// mode, lazy generation), or don't-care.
func (g *Generator) basePartition(t int) props.Partition {
	if !g.parallel {
		return props.Partition{}
	}
	p, ok := g.sc.NaturalBasePartition(t)
	if !ok {
		return props.Partition{}
	}
	return p
}

// joinEntry generates join plans for one enumerated (outer, inner) join.
func (g *Generator) joinEntry(outer, inner, result *memo.Entry) {
	g.ocBuf, g.icBuf = g.sc.AppendJoinColsBetween(outer.Tables, inner.Tables, g.ocBuf[:0], g.icBuf[:0])
	outerCols, innerCols := g.ocBuf, g.icBuf
	candidates := g.candidatePartitions(outer, inner, result, outerCols, innerCols)
	for _, pp := range candidates {
		g.genNLJN(outer, inner, result, pp)
		if len(outerCols) > 0 {
			g.genMGJN(outer, inner, result, pp, outerCols, innerCols)
			g.genHSJN(outer, inner, result, pp)
		}
	}
}

// dcPartitions is the serial mode's single candidate execution partition;
// callers only range over the returned slice, so one shared instance serves
// every generator.
var dcPartitions = []props.Partition{{}}

// candidatePartitions returns the execution partitions of a join: every
// distinct partition present among input plans whose keys are covered by the
// join columns (a co-located execution), or — when none qualifies — a fresh
// repartition on the join columns, DB2's heuristic reproduced as the paper's
// Section 4 describes. Serial mode runs everything on the single don't-care
// partition. The returned slice is scratch owned by g, valid until the next
// joinEntry call.
func (g *Generator) candidatePartitions(outer, inner, result *memo.Entry, outerCols, innerCols []query.ColID) []props.Partition {
	if !g.parallel {
		return dcPartitions
	}
	g.jcBuf = append(append(g.jcBuf[:0], outerCols...), innerCols...)
	joinCols := g.jcBuf
	list := &g.partsBuf
	list.Reset()
	for _, e := range []*memo.Entry{outer, inner} {
		for _, p := range e.Plans {
			if p.Part.Empty() {
				continue
			}
			if p.Part.CoversJoinCols(joinCols, result.Equiv) {
				list.Add(p.Part, result.Equiv)
			}
		}
	}
	if list.Len() == 0 {
		if len(outerCols) > 0 {
			// Interned: the partition escapes into stored plans, so it must
			// not alias the outerCols scratch buffer.
			g.candPartsBuf = append(g.candPartsBuf[:0], g.sc.Intern().Partition(g.cfg.Nodes, outerCols))
			return g.candPartsBuf
		}
		// Cartesian product: no co-location key; run on the don't-care
		// distribution (inner replicated).
		return dcPartitions
	}
	return list.Partitions()
}

// innerInput returns the inner-side input plan for an execution on pp and
// the repartition cost to co-locate it, preferring an already co-located
// plan.
func (g *Generator) innerInput(inner *memo.Entry, pp props.Partition, eq *query.Equiv) (*memo.Plan, float64) {
	if !g.parallel || pp.Empty() {
		best := inner.Best()
		extra := 0.0
		if g.parallel {
			extra = g.cfg.RepartitionCost(best.Card) // replicate for products
		}
		return best, extra
	}
	if colocated := inner.BestWithPartition(pp, eq); colocated != nil {
		return colocated, 0
	}
	best := inner.Best()
	return best, g.cfg.RepartitionCost(best.Card)
}

// genNLJN generates nested-loops plans executing on partition pp: one per
// outer plan co-located on pp (propagating its order — the full propagation
// of Table 2), plus one from the cheapest outer repartitioned (order lost).
func (g *Generator) genNLJN(outer, inner, result *memo.Entry, pp props.Partition) {
	defer g.timeMethod(props.NLJN)()
	ip, innerExtra := g.innerInput(inner, pp, result.Equiv)
	made := 0
	for _, po := range outer.Plans {
		if g.parallel && !po.Part.EqualUnder(pp, result.Equiv) {
			continue
		}
		made++
		g.emitJoin(result, memo.OpNLJN, po, ip,
			g.cfg.NLJNCost(po.Cost, po.Card, ip.Cost+innerExtra, ip.Card, result.Card),
			g.propagateOrder(po, result), pp)
	}
	if g.parallel && made == 0 {
		// No co-located outer: repartition the cheapest one. Repartitioning
		// destroys order, so the eager policy re-sorts the repartitioned
		// stream once per interesting order present among the outer's plans
		// — real parallel optimization explores the full (order, partition)
		// cross product, which is exactly what the estimator's separate
		// lists summarize by multiplication.
		po := outer.Best()
		repart := g.cfg.RepartitionCost(po.Card)
		g.emitJoin(result, memo.OpNLJN, po, ip,
			g.cfg.NLJNCost(po.Cost+repart, po.Card, ip.Cost+innerExtra, ip.Card, result.Card),
			props.Order{}, pp)
		orders := &g.nlOrdersBuf
		orders.Reset()
		for _, p := range outer.Plans {
			if p.Order.Empty() || p.OrderKnownRetired {
				continue
			}
			if !orders.Add(p.Order, result.Equiv) {
				continue
			}
			resort := g.cfg.SortCost(po.Card) * sortWidthFactor(p.Order)
			g.emitJoin(result, memo.OpNLJN, po, ip,
				g.cfg.NLJNCost(po.Cost+repart+resort, po.Card, ip.Cost+innerExtra, ip.Card, result.Card),
				g.retireOrDeliver(p.Order, result), pp)
		}
	}
}

// MergeCandidates returns the sort orders a merge join between the given
// join-column pairs considers: one per individual equality predicate
// (remaining predicates applied as residuals) plus, with several
// predicates, the full composite order. Both the real generator and the
// estimator derive merge-join plan counts from this shared definition.
func MergeCandidates(outerCols, innerCols []query.ColID) (outs, ins []props.Order) {
	for i := range outerCols {
		outs = append(outs, props.OrderOn(outerCols[i]))
		ins = append(ins, props.OrderOn(innerCols[i]))
	}
	if len(outerCols) > 1 {
		outs = append(outs, props.OrderOn(outerCols...))
		ins = append(ins, props.OrderOn(innerCols...))
	}
	return outs, ins
}

// mergeCandidates is the generator's allocation-lean MergeCandidates: the
// candidate orders are interned (they escape into stored plans) and the
// slices are per-generator scratch, valid until the next call.
func (g *Generator) mergeCandidates(outerCols, innerCols []query.ColID) (outs, ins []props.Order) {
	in := g.sc.Intern()
	outs, ins = g.outsBuf[:0], g.insBuf[:0]
	for i := range outerCols {
		outs = append(outs, in.Order1(outerCols[i]))
		ins = append(ins, in.Order1(innerCols[i]))
	}
	if len(outerCols) > 1 {
		outs = append(outs, in.Order(outerCols))
		ins = append(ins, in.Order(innerCols))
	}
	g.outsBuf, g.insBuf = outs, ins
	return outs, ins
}

// genMGJN generates sort-merge plans on partition pp: one enforced plan per
// merge candidate order (eager policy — inputs are sorted when not
// naturally ordered), plus one coverage plan per outer plan whose order
// strictly subsumes a candidate (the property subsumption effect of
// Section 3.3 — requesting a plan ordered on o2 returns plans ordered on
// any more general o1 as well).
func (g *Generator) genMGJN(outer, inner, result *memo.Entry, pp props.Partition, outerCols, innerCols []query.ColID) {
	defer g.timeMethod(props.MGJN)()
	outs, ins := g.mergeCandidates(outerCols, innerCols)

	emitted := &g.emittedBuf // output orders already produced for this join
	emitted.Reset()
	for i := range outs {
		if !emitted.Add(outs[i], result.Equiv) {
			continue // equivalent predicates collapse to one merge order
		}
		op, opExtra := g.sideInput(outer, pp, outs[i], result.Equiv)
		ip, ipExtra := g.sideInput(inner, pp, ins[i], result.Equiv)
		g.emitJoin(result, memo.OpMGJN, op, ip,
			g.cfg.MGJNCost(op.Cost+opExtra, op.Card, ip.Cost+ipExtra, ip.Card, result.Card),
			g.retireOrDeliver(outs[i], result), pp)
	}

	for _, po := range outer.Plans {
		if g.parallel && !po.Part.EqualUnder(pp, result.Equiv) {
			continue
		}
		if po.Order.Empty() {
			continue
		}
		covered := -1
		for i := range outs {
			if po.Order.Len() > outs[i].Len() && outs[i].PrefixOfUnder(po.Order, result.Equiv) {
				covered = i
				break
			}
		}
		if covered < 0 || !emitted.Add(po.Order, result.Equiv) {
			continue
		}
		ip, ipExtra := g.sideInput(inner, pp, ins[covered], result.Equiv)
		g.emitJoin(result, memo.OpMGJN, po, ip,
			g.cfg.MGJNCost(po.Cost, po.Card, ip.Cost+ipExtra, ip.Card, result.Card),
			g.propagateOrder(po, result), pp)
	}
}

// sideInput returns a merge-join input delivering the required order on
// partition pp: a naturally ordered co-located plan if one exists, else the
// cheapest suitable plan plus enforcer (sort, and repartition when not
// co-located) costs.
func (g *Generator) sideInput(e *memo.Entry, pp props.Partition, required props.Order, eq *query.Equiv) (*memo.Plan, float64) {
	if g.parallel && !pp.Empty() {
		if p := e.BestWithPartition(pp, eq); p != nil {
			if required.PrefixOfUnder(p.Order, eq) {
				return p, 0
			}
			return p, g.cfg.SortCost(p.Card) * sortWidthFactor(required)
		}
		best := e.Best()
		return best, g.cfg.RepartitionCost(best.Card) + g.cfg.SortCost(best.Card)*sortWidthFactor(required)
	}
	if p := e.BestWithOrder(required, eq); p != nil {
		return p, 0
	}
	best := e.Best()
	return best, g.cfg.SortCost(best.Card) * sortWidthFactor(required)
}

// genHSJN generates the single hash-join plan for this orientation on pp:
// hash joins propagate no order (Table 2), so exactly one plan per
// enumerated join arises — the "exactly twice the number of joins" baseline
// of Figure 5(c).
func (g *Generator) genHSJN(outer, inner, result *memo.Entry, pp props.Partition) {
	defer g.timeMethod(props.HSJN)()
	op, opExtra := g.dcInput(outer, pp, result.Equiv)
	ip, ipExtra := g.dcInput(inner, pp, result.Equiv)
	g.emitJoin(result, memo.OpHSJN, op, ip,
		g.cfg.HSJNCost(op.Cost+opExtra, op.Card, ip.Cost+ipExtra, ip.Card, result.Card),
		props.Order{}, pp)
}

// dcInput returns the cheapest input co-located on pp, or the cheapest
// overall plus repartition cost.
func (g *Generator) dcInput(e *memo.Entry, pp props.Partition, eq *query.Equiv) (*memo.Plan, float64) {
	if g.parallel && !pp.Empty() {
		if p := e.BestWithPartition(pp, eq); p != nil {
			return p, 0
		}
	}
	best := e.Best()
	extra := 0.0
	if g.parallel {
		extra = g.cfg.RepartitionCost(best.Card)
	}
	return best, extra
}

// propagateOrder returns the order a join output inherits from its outer
// input: the outer's order while it is still interesting at the result,
// don't-care once retired. In parallel mode a retired order whose plan
// remains distinct through its partition is conservatively kept and only
// marked — the compound-property behaviour that makes the paper's
// separate-list estimates slightly low.
func (g *Generator) propagateOrder(po *memo.Plan, result *memo.Entry) props.Order {
	if po.Order.Empty() {
		return props.Order{}
	}
	if g.sc.OrderUseful(po.Order, result.Tables, result.Equiv) {
		return po.Order
	}
	if g.parallel && !po.Part.Empty() {
		return po.Order // kept conservatively; marked by emitJoin
	}
	return props.Order{}
}

// retireOrDeliver returns o if still interesting at the result, else DC.
func (g *Generator) retireOrDeliver(o props.Order, result *memo.Entry) props.Order {
	if g.sc.OrderUseful(o, result.Tables, result.Equiv) {
		return o
	}
	return props.Order{}
}

// timeMethod attributes the wall time of one join-generation call to the
// method, excluding the plan-saving time accrued inside it (which Figure 2
// reports separately).
func (g *Generator) timeMethod(m props.JoinMethod) func() {
	t0 := time.Now()
	save0 := g.Counters.SaveTime
	return func() {
		g.Counters.GenTime[m] += time.Since(t0) - (g.Counters.SaveTime - save0)
	}
}

// emitJoin finalizes one generated join plan: counts it, constructs it from
// the arena, and either hands it to the sink (parallel generation phase) or
// commits it immediately (serial mode). Pipelineability follows Table 1's
// rule through the propagation classes: an NLJN streams with its outer;
// merge and hash joins block (eager sorts and hash builds materialize).
func (g *Generator) emitJoin(result *memo.Entry, op memo.Operator, left, right *memo.Plan, planCost float64, order props.Order, pp props.Partition) {
	m := op.JoinMethod()
	g.Counters.Generated[m]++
	if g.exec != nil {
		if g.ticks++; g.ticks == tickBatch {
			g.exec.TickGenerated(tickBatch)
			g.ticks = 0
		}
	}
	p := g.arena.alloc()
	*p = memo.Plan{
		Op: op, Left: left, Right: right, Tables: result.Tables,
		Order: order, Part: pp, Cost: planCost, Card: result.Card,
		Pipelined: props.PipelinePropagation(m) == props.Full && left != nil && left.Pipelined,
	}
	if left != nil && right != nil {
		p.DeferredExp = left.DeferredExp.Union(right.DeferredExp)
		// Deferred predicates have not reduced the inputs, so the output
		// carries proportionally more rows than the entry's (all-applied)
		// logical cardinality.
		for t := p.DeferredExp.Next(0); t >= 0; t = p.DeferredExp.Next(t + 1) {
			if sel, _ := g.sc.ExpensiveSel(t); sel > 0 {
				p.Card /= sel
			}
		}
	}
	if !order.Empty() && !g.sc.OrderUseful(order, result.Tables, result.Equiv) {
		p.OrderKnownRetired = true
	}
	if g.sink != nil {
		g.sink(result, p)
		return
	}
	g.commitJoin(result, p)
}

// tickBatch is the progress-tick batch size: generated-plan counts reach
// the shared execution context once per this many join plans.
const tickBatch = 64

// FlushTicks pushes any generated-plan count still sitting in the local
// batch to the execution context. Call once per generator after its driving
// enumeration finished (the parallel finish func does this per worker).
func (g *Generator) FlushTicks() {
	if g.exec != nil && g.ticks > 0 {
		g.exec.TickGenerated(g.ticks)
		g.ticks = 0
	}
}

// commitJoin applies the order-sensitive half of emitJoin: the pilot bound
// check and MEMO insertion. In the parallel DP round it runs on the driver
// goroutine, replayed in the canonical enumeration order, so its reads of
// result.Plans see exactly the state a serial run would.
func (g *Generator) commitJoin(result *memo.Entry, p *memo.Plan) {
	// The pilot bound never prunes an entry's only plan: the dynamic
	// program needs at least one plan per entry to proceed (the paper's
	// pilot-pass discussion assumes most partial plans stay under the full
	// plan's cost, but intermediate entries off the final plan can exceed
	// it wholesale). A plan that ordinary property-aware pruning would have
	// discarded anyway is not charged to the pilot pass — the paper's <=10%
	// figure counts the plans the bound removes on top of normal pruning.
	if g.bound > 0 && p.Cost > g.bound && len(result.Plans) > 0 {
		if !g.mem.Dominated(result, p) {
			g.Counters.PilotPruned++
		}
		g.arena.recycle(p)
		return
	}
	saveStart := time.Now()
	if !g.mem.InsertPlan(result, p) {
		g.arena.recycle(p) // rejected on arrival: provably unreferenced
	}
	g.Counters.SaveTime += time.Since(saveStart)
}

// savePlan inserts a non-join plan with save-time accounting, recycling it
// when the MEMO rejects it on arrival.
func (g *Generator) savePlan(e *memo.Entry, p *memo.Plan) {
	start := time.Now()
	if !g.mem.InsertPlan(e, p) {
		g.arena.recycle(p)
	}
	g.Counters.SaveTime += time.Since(start)
}

// completeEntry runs the parallel eager enforcement pass once an entry is
// final: every interesting order is materialized on every partition present
// among the entry's plans, generating the (order, partition) combinations
// that real parallel optimization explores and the estimator's separate
// lists deliberately do not enumerate.
func (g *Generator) completeEntry(e *memo.Entry) {
	if !g.parallel || e.Tables.Len() < 2 || g.policy != props.Eager {
		return
	}
	start := time.Now()
	// Distinct partitions present.
	parts := &g.completeParts
	parts.Reset()
	hasDC := false
	for _, p := range e.Plans {
		if p.Part.Empty() {
			hasDC = true
			continue
		}
		parts.Add(p.Part, e.Equiv)
	}
	// Interesting orders present on some plan (origin of orders stays at
	// the base tables; this pass only spreads them across partitions).
	orders := &g.completeOrds
	orders.Reset()
	for _, p := range e.Plans {
		if !p.Order.Empty() && !p.OrderKnownRetired {
			orders.Add(p.Order, e.Equiv)
		}
	}
	candidates := parts.Partitions()
	if hasDC {
		candidates = append(candidates, props.Partition{})
	}
	for _, pp := range candidates {
		src := e.BestWithPartition(pp, e.Equiv)
		if src == nil {
			continue
		}
		for _, o := range orders.Orders() {
			already := false
			for _, p := range e.Plans {
				if p.Part.EqualUnder(pp, e.Equiv) && o.PrefixOfUnder(p.Order, e.Equiv) {
					already = true
					break
				}
			}
			if already {
				continue
			}
			g.Counters.EnforcerPlans++
			p := g.arena.alloc()
			*p = memo.Plan{
				Op: memo.OpSort, Left: src, Tables: e.Tables,
				Order: o, Part: pp,
				Cost: src.Cost + g.cfg.SortCost(src.Card)*sortWidthFactor(o),
				Card: src.Card,
			}
			g.savePlan(e, p)
		}
	}
	g.Counters.AccessTime += time.Since(start)
}
