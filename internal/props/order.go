// Package props implements the physical plan properties of the reproduced
// optimizer — orders and (for the shared-nothing parallel version) data
// partitions — together with the operations the paper's estimator relies
// on: equivalence under applied join predicates, prefix and set subsumption,
// interest ("is this property still useful for any remaining operation?"),
// and retirement.
//
// A physical property, per the paper, is any plan characteristic that
// violates the principle of optimality: two plans for the same logical
// expression that differ in such a property must both be kept in the MEMO
// structure, which is exactly why the number of generated join plans — the
// quantity the estimator counts — varies so much between queries with
// identical join graphs.
package props

import (
	"strconv"
	"strings"

	"cote/internal/query"
)

// Order is a physical tuple ordering: the sequence of columns the rows are
// sorted on. The zero value (nil) is "no order" / don't-care.
type Order struct {
	Cols []query.ColID
}

// OrderOn builds an order on the given column sequence.
func OrderOn(cols ...query.ColID) Order {
	return Order{Cols: cols}
}

// Empty reports whether the order is the don't-care order.
func (o Order) Empty() bool { return len(o.Cols) == 0 }

// Len returns the number of ordering columns.
func (o Order) Len() int { return len(o.Cols) }

// EqualUnder reports whether o and p are the same ordering when columns are
// compared by equivalence class. Joins change equivalence — an order on R.a
// and one on S.a become the same order once R.a = S.a has been applied — so
// equality is always relative to an Equiv.
func (o Order) EqualUnder(p Order, eq *query.Equiv) bool {
	if len(o.Cols) != len(p.Cols) {
		return false
	}
	for i := range o.Cols {
		if !eq.Same(o.Cols[i], p.Cols[i]) {
			return false
		}
	}
	return true
}

// PrefixOfUnder reports whether o is a (non-strict) prefix of p modulo
// equivalence: o ≺ p or o = p in the paper's subsumption notation. An order
// on (R.a) is subsumed by the more general (R.a, R.b).
func (o Order) PrefixOfUnder(p Order, eq *query.Equiv) bool {
	if len(o.Cols) > len(p.Cols) {
		return false
	}
	for i := range o.Cols {
		if !eq.Same(o.Cols[i], p.Cols[i]) {
			return false
		}
	}
	return true
}

// SetSubsetOfUnder reports whether the column set of o is a subset of the
// column set of p modulo equivalence. This is the "set subsumption" the
// paper applies for GROUP BY coverage, where relative column positions do
// not matter.
func (o Order) SetSubsetOfUnder(p Order, eq *query.Equiv) bool {
	for _, c := range o.Cols {
		found := false
		for _, d := range p.Cols {
			if eq.Same(c, d) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Truncate returns the order limited to its first n columns.
func (o Order) Truncate(n int) Order {
	if n >= len(o.Cols) {
		return o
	}
	return Order{Cols: o.Cols[:n]}
}

// Key returns a canonical string for the order under the given equivalence,
// usable for map-based deduplication: equal-under-equiv orders produce equal
// keys.
func (o Order) Key(eq *query.Equiv) string {
	if len(o.Cols) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, c := range o.Cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(eq.Rep(c))))
	}
	return b.String()
}

// String renders the order for diagnostics using raw column ids.
func (o Order) String() string {
	if len(o.Cols) == 0 {
		return "DC"
	}
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range o.Cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(c)))
	}
	b.WriteByte(')')
	return b.String()
}

// OrderList is a deduplicated list of interesting orders attached to a MEMO
// entry, the central data structure of the paper's estimation algorithm
// (Table 3).
type OrderList struct {
	orders []Order
}

// Orders exposes the underlying slice; callers must not mutate it.
func (l *OrderList) Orders() []Order { return l.orders }

// Reset empties the list, keeping its capacity — for allocation-free reuse
// as a per-join dedup scratchpad on the plan-generation hot path.
func (l *OrderList) Reset() { l.orders = l.orders[:0] }

// Clear empties the list like Reset but also zeroes the retained backing
// array, dropping the column-slice pointers the stale orders held — for
// pooled storage (slab-allocated MEMO entries) that must not pin one run's
// allocations across a reuse boundary.
func (l *OrderList) Clear() {
	clear(l.orders[:cap(l.orders)])
	l.orders = l.orders[:0]
}

// Len returns the number of orders in the list.
func (l *OrderList) Len() int { return len(l.orders) }

// Add inserts o unless an equivalent order is already present. It reports
// whether the order was inserted.
func (l *OrderList) Add(o Order, eq *query.Equiv) bool {
	if o.Empty() {
		return false
	}
	for _, have := range l.orders {
		if have.EqualUnder(o, eq) {
			return false
		}
	}
	l.orders = append(l.orders, o)
	return true
}

// Contains reports whether an order equivalent to o is in the list.
func (l *OrderList) Contains(o Order, eq *query.Equiv) bool {
	for _, have := range l.orders {
		if have.EqualUnder(o, eq) {
			return true
		}
	}
	return false
}
