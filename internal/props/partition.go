package props

import (
	"sort"
	"strconv"
	"strings"

	"cote/internal/query"
)

// Partition is a hash-partitioning of rows across the nodes of a
// shared-nothing system, identified by its set of partitioning key columns.
// Column sequence is irrelevant for hash partitioning, so all comparisons
// use set semantics. The zero value (no columns) is the don't-care
// (random/round-robin) distribution.
type Partition struct {
	Cols  []query.ColID
	Nodes int
}

// PartitionOn builds a hash partition on the given key columns.
func PartitionOn(nodes int, cols ...query.ColID) Partition {
	return Partition{Cols: cols, Nodes: nodes}
}

// Empty reports whether the partition is the don't-care distribution.
func (p Partition) Empty() bool { return len(p.Cols) == 0 }

// EqualUnder reports whether p and q hash on the same key set modulo
// equivalence. Node counts must match; two distributions over different
// node sets are never interchangeable.
func (p Partition) EqualUnder(q Partition, eq *query.Equiv) bool {
	if p.Nodes != q.Nodes || len(p.Cols) != len(q.Cols) {
		return false
	}
	return p.SubsetOfUnder(q, eq) && q.SubsetOfUnder(p, eq)
}

// SubsetOfUnder reports whether every key column of p has an equivalent in
// q's key set.
func (p Partition) SubsetOfUnder(q Partition, eq *query.Equiv) bool {
	for _, c := range p.Cols {
		found := false
		for _, d := range q.Cols {
			if eq.Same(c, d) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// CoversJoinCols reports whether every partitioning key of p is equivalent
// to one of the given join columns — the condition for a join input to be
// already co-located on this partition (no repartition needed).
func (p Partition) CoversJoinCols(joinCols []query.ColID, eq *query.Equiv) bool {
	if p.Empty() {
		return false
	}
	for _, c := range p.Cols {
		found := false
		for _, j := range joinCols {
			if eq.Same(c, j) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Key returns a canonical dedup key under the given equivalence. Keys of
// set-equal partitions are equal because representatives are sorted.
func (p Partition) Key(eq *query.Equiv) string {
	if p.Empty() {
		return "-"
	}
	reps := make([]int, len(p.Cols))
	for i, c := range p.Cols {
		reps[i] = int(eq.Rep(c))
	}
	sort.Ints(reps)
	var b strings.Builder
	b.WriteString(strconv.Itoa(p.Nodes))
	b.WriteByte('@')
	for i, r := range reps {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(r))
	}
	return b.String()
}

// String renders the partition for diagnostics.
func (p Partition) String() string {
	if p.Empty() {
		return "DC"
	}
	var b strings.Builder
	b.WriteString("hash[")
	for i, c := range p.Cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(c)))
	}
	b.WriteString("]x")
	b.WriteString(strconv.Itoa(p.Nodes))
	return b.String()
}

// PartitionList is a deduplicated list of interesting partitions attached to
// a MEMO entry; the parallel-version counterpart of OrderList.
type PartitionList struct {
	parts []Partition
}

// Partitions exposes the underlying slice; callers must not mutate it.
func (l *PartitionList) Partitions() []Partition { return l.parts }

// Reset empties the list, keeping its capacity — for allocation-free reuse
// as a per-join dedup scratchpad on the plan-generation hot path.
func (l *PartitionList) Reset() { l.parts = l.parts[:0] }

// Clear empties the list like Reset but also zeroes the retained backing
// array, dropping the column-slice pointers the stale partitions held — for
// pooled storage (slab-allocated MEMO entries) that must not pin one run's
// allocations across a reuse boundary.
func (l *PartitionList) Clear() {
	clear(l.parts[:cap(l.parts)])
	l.parts = l.parts[:0]
}

// Len returns the number of partitions in the list.
func (l *PartitionList) Len() int { return len(l.parts) }

// Add inserts p unless an equivalent partition is already present. It
// reports whether the partition was inserted.
func (l *PartitionList) Add(p Partition, eq *query.Equiv) bool {
	if p.Empty() {
		return false
	}
	for _, have := range l.parts {
		if have.EqualUnder(p, eq) {
			return false
		}
	}
	l.parts = append(l.parts, p)
	return true
}

// Contains reports whether a partition equivalent to p is in the list.
func (l *PartitionList) Contains(p Partition, eq *query.Equiv) bool {
	for _, have := range l.parts {
		if have.EqualUnder(p, eq) {
			return true
		}
	}
	return false
}

// AnyCoversJoinCols reports whether any partition in the list is already
// keyed on (a subset of) the given join columns. When false for both join
// inputs, the optimizer's repartition heuristic fires and new partitions on
// the join columns are created — the subtlety reported in the paper's DB2
// implementation experience (Section 4).
func (l *PartitionList) AnyCoversJoinCols(joinCols []query.ColID, eq *query.Equiv) bool {
	for _, p := range l.parts {
		if p.CoversJoinCols(joinCols, eq) {
			return true
		}
	}
	return false
}
