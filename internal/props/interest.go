package props

import (
	"sync"

	"cote/internal/bitset"
	"cote/internal/catalog"
	"cote/internal/query"
)

// GenerationPolicy selects how interesting properties come into existence
// (Section 3.2 of the paper). Under Eager the optimizer forces properties to
// exist with enforcers (SORT below joins), so the interesting properties of
// a base table are the ones pushed down from the query. Under Lazy only
// naturally occurring properties (index orders, physical partitionings) are
// kept.
type GenerationPolicy int

// Generation policies. DB2 uses Eager for orders and Lazy for partitions;
// those are the defaults of the reproduced optimizer.
const (
	Eager GenerationPolicy = iota
	Lazy
)

// String names the policy.
func (p GenerationPolicy) String() string {
	if p == Eager {
		return "eager"
	}
	return "lazy"
}

// Interest classifies why an order is interesting at a table set. The
// coverage computation for partial joins needs the distinction: order-by
// coverage uses prefix subsumption while group-by coverage uses set
// subsumption (DB2 experience item 2 in Section 4).
type Interest struct {
	FutureJoin bool
	OrderBy    bool
	GroupBy    bool
}

// Any reports whether the property is interesting for any reason. A
// property with no remaining interest has retired.
func (i Interest) Any() bool { return i.FutureJoin || i.OrderBy || i.GroupBy }

// Scope answers interest and retirement questions for one query block and
// generates the initial interesting-property lists of base tables. It is
// logically immutable after construction (internal memoization is
// goroutine-safe) and shared by the real optimizer, the estimator, and all
// workers of the parallel DP round, so every party sees the same property
// universe.
type Scope struct {
	blk *query.Block
	// eqPreds holds indexes of equality join predicates.
	eqPreds []int
	// shared marks a scope about to be used from several goroutines (the
	// parallel DP round); it routes fjCache accesses through fjMu. Single-
	// goroutine users — the whole estimation path and serial compiles —
	// skip the lock: OrderUseful sits under every generated plan, and even
	// an uncontended RWMutex is measurable there. Set once, before any
	// worker goroutine exists.
	shared bool
	// fjMu guards fjCache when shared: the parallel DP round asks interest
	// questions from several workers at once.
	fjMu sync.RWMutex
	// fjCache memoizes futureJoinCols per table set; interest questions are
	// asked many times per MEMO entry on hot paths of both modes.
	fjCache map[bitset.Set][]query.ColID
	// intern canonicalizes the property values this block's plans carry.
	// Embedded by value (its maps grow lazily), so scopes that never intern
	// — the whole estimation path — pay nothing for it.
	intern Interner
}

// NewScope builds the interest analyzer for a finalized block.
func NewScope(blk *query.Block) *Scope {
	sc := &Scope{
		blk:     blk,
		fjCache: make(map[bitset.Set][]query.ColID),
	}
	for i, p := range blk.JoinPreds {
		if p.Op == query.Eq {
			sc.eqPreds = append(sc.eqPreds, i)
		}
	}
	return sc
}

// Block returns the underlying query block.
func (sc *Scope) Block() *query.Block { return sc.blk }

// Intern returns the scope's property interner.
func (sc *Scope) Intern() *Interner { return &sc.intern }

// MarkShared switches the scope's internal memoization to its locked mode.
// It must be called before the scope is handed to concurrent workers and
// cannot be undone.
func (sc *Scope) MarkShared() { sc.shared = true }

// futureJoinCols returns the columns inside s that participate in equality
// join predicates crossing the boundary of s — the columns a future merge
// join or co-located parallel join could exploit.
func (sc *Scope) futureJoinCols(s bitset.Set) []query.ColID {
	if sc.shared {
		sc.fjMu.RLock()
		cols, ok := sc.fjCache[s]
		sc.fjMu.RUnlock()
		if ok {
			return cols
		}
	} else if cols, ok := sc.fjCache[s]; ok {
		return cols
	}
	out := []query.ColID{}
	for _, i := range sc.eqPreds {
		p := sc.blk.JoinPreds[i]
		lt, rt := sc.blk.TableOf(p.Left), sc.blk.TableOf(p.Right)
		switch {
		case s.Contains(lt) && !s.Contains(rt):
			out = append(out, p.Left)
		case s.Contains(rt) && !s.Contains(lt):
			out = append(out, p.Right)
		}
	}
	if sc.shared {
		sc.fjMu.Lock()
		sc.fjCache[s] = out
		sc.fjMu.Unlock()
	} else {
		sc.fjCache[s] = out
	}
	return out
}

// OrderInterest classifies the interest of order o at table set s under the
// given equivalence. The zero Interest means o has retired at s.
func (sc *Scope) OrderInterest(o Order, s bitset.Set, eq *query.Equiv) Interest {
	var in Interest
	if o.Empty() {
		return in
	}
	// Future join: the leading column feeds a join predicate out of s.
	for _, c := range sc.futureJoinCols(s) {
		if eq.Same(o.Cols[0], c) {
			in.FutureJoin = true
			break
		}
	}
	// Order by: prefix-comparable with the ORDER BY list — either o
	// satisfies the full requirement or can be extended to it by later
	// operators.
	if ob := sc.blk.OrderBy; len(ob) > 0 {
		n := len(o.Cols)
		if len(ob) < n {
			n = len(ob)
		}
		match := true
		for i := 0; i < n; i++ {
			if !eq.Same(o.Cols[i], ob[i]) {
				match = false
				break
			}
		}
		if match {
			in.OrderBy = true
		}
	}
	// Group by: every ordering column is a grouping column (set semantics —
	// any permutation of the grouping columns supports sort-based grouping).
	if gb := sc.blk.GroupBy; len(gb) > 0 {
		if o.SetSubsetOfUnder(Order{Cols: gb}, eq) {
			in.GroupBy = true
		}
	}
	return in
}

// OrderUseful reports whether o is still interesting (not retired) at s.
func (sc *Scope) OrderUseful(o Order, s bitset.Set, eq *query.Equiv) bool {
	return sc.OrderInterest(o, s, eq).Any()
}

// PartitionUseful reports whether partition p is still interesting at s: its
// keys all feed future equality joins, or they are a subset of the grouping
// columns (local aggregation). Hash partitions do not help ORDER BY (a
// range partition would; we model hash only, as the paper's Table 1 notes
// the distinction).
func (sc *Scope) PartitionUseful(p Partition, s bitset.Set, eq *query.Equiv) bool {
	if p.Empty() {
		return false
	}
	if p.CoversJoinCols(sc.futureJoinCols(s), eq) {
		return true
	}
	if gb := sc.blk.GroupBy; len(gb) > 0 {
		if (Order{Cols: p.Cols}).SetSubsetOfUnder(Order{Cols: gb}, eq) {
			return true
		}
	}
	return false
}

// ExpensiveTables returns the set of tables carrying at least one
// user-defined expensive predicate — the tables whose plans fork into
// apply-at-scan and defer-past-joins variants (Table 1, row 5).
func (sc *Scope) ExpensiveTables() bitset.Set {
	var out bitset.Set
	for _, lp := range sc.blk.LocalPreds {
		if lp.Expensive {
			out = out.Add(sc.blk.TableOf(lp.Col))
		}
	}
	return out
}

// ExpensiveSel returns the combined selectivity of table t's expensive
// predicates (1 when it has none), and their count.
func (sc *Scope) ExpensiveSel(t int) (sel float64, n int) {
	sel = 1
	for _, lp := range sc.blk.LocalPreds {
		if lp.Expensive && sc.blk.TableOf(lp.Col) == t {
			sel *= lp.Selectivity
			n++
		}
	}
	return sel, n
}

// PipelineInteresting reports whether pipelineability is an interesting
// property for this query: the query asks for the first N rows and no
// blocking clause (ORDER BY / GROUP BY) forces full materialization at the
// top anyway (Table 1 of the paper).
func (sc *Scope) PipelineInteresting() bool {
	return sc.blk.FirstN > 0 && len(sc.blk.OrderBy) == 0 && len(sc.blk.GroupBy) == 0
}

// PipelinePropagation returns how a join method propagates pipelineability:
// a nested-loops join streams with its outer (full); a sort-merge join
// pipelines only when both inputs are naturally ordered, which the eager
// sort policy makes rare (none here); a hash join's build side always
// materializes (none) — the "no SORTs, builds for hash joins or TEMPs" rule
// of Table 1.
func PipelinePropagation(m JoinMethod) Propagation {
	if m == NLJN {
		return Full
	}
	return None
}

// EagerBaseOrders computes the interesting orders pushed down to base table
// t under the eager generation policy: one single-column order per equality
// join column of t, one composite order per multi-predicate join edge, the
// maximal ORDER BY prefix local to t, and the grouping columns local to t.
// This mirrors the push-down of interesting orders to base tables described
// in Simmen et al. and reused by the paper (DB2 experience item 1).
func (sc *Scope) EagerBaseOrders(t int, eq *query.Equiv) []Order {
	blk := sc.blk
	var list OrderList

	// Single-column orders on each equality join column of t.
	for _, i := range sc.eqPreds {
		p := blk.JoinPreds[i]
		if blk.TableOf(p.Left) == t {
			list.Add(OrderOn(p.Left), eq)
		}
		if blk.TableOf(p.Right) == t {
			list.Add(OrderOn(p.Right), eq)
		}
	}

	// Composite orders: all of t's columns joining to one particular other
	// table, in predicate order — the sort a multi-column merge join needs.
	perPeer := map[int][]query.ColID{}
	var peers []int
	for _, i := range sc.eqPreds {
		p := blk.JoinPreds[i]
		var mine query.ColID
		var peer int
		switch {
		case blk.TableOf(p.Left) == t:
			mine, peer = p.Left, blk.TableOf(p.Right)
		case blk.TableOf(p.Right) == t:
			mine, peer = p.Right, blk.TableOf(p.Left)
		default:
			continue
		}
		if _, seen := perPeer[peer]; !seen {
			peers = append(peers, peer)
		}
		perPeer[peer] = append(perPeer[peer], mine)
	}
	for _, peer := range peers {
		if cols := perPeer[peer]; len(cols) >= 2 {
			list.Add(OrderOn(cols...), eq)
		}
	}

	// Maximal ORDER BY prefix whose columns all belong to t.
	var obPrefix []query.ColID
	for _, c := range blk.OrderBy {
		if blk.TableOf(c) != t {
			break
		}
		obPrefix = append(obPrefix, c)
	}
	if len(obPrefix) > 0 {
		list.Add(OrderOn(obPrefix...), eq)
	}

	// Grouping columns local to t, in list order.
	var gbCols []query.ColID
	for _, c := range blk.GroupBy {
		if blk.TableOf(c) == t {
			gbCols = append(gbCols, c)
		}
	}
	if len(gbCols) > 0 {
		list.Add(OrderOn(gbCols...), eq)
	}

	return list.Orders()
}

// NaturalBaseOrders computes the orders base table t provides naturally —
// one per index, in index column sequence. Under the lazy policy these are
// the only order properties single-table plans carry.
func (sc *Scope) NaturalBaseOrders(t int, eq *query.Equiv) []Order {
	ref := sc.blk.Tables[t]
	if ref.Table == nil {
		return nil // derived tables provide no natural order
	}
	var list OrderList
	for _, ix := range ref.Table.Indexes {
		cols := make([]query.ColID, 0, len(ix.Columns))
		for _, name := range ix.Columns {
			cols = append(cols, sc.colOf(ref, name))
		}
		list.Add(OrderOn(cols...), eq)
	}
	return list.Orders()
}

// NaturalBasePartition returns the physical hash partitioning of base table
// t, if any. Partitions are generated lazily in the reproduced system, as in
// DB2's parallel version.
func (sc *Scope) NaturalBasePartition(t int) (Partition, bool) {
	ref := sc.blk.Tables[t]
	if ref.Table == nil || ref.Table.Partitioning == nil {
		return Partition{}, false
	}
	pt := ref.Table.Partitioning
	cols := make([]query.ColID, 0, len(pt.Columns))
	for _, name := range pt.Columns {
		cols = append(cols, sc.colOf(ref, name))
	}
	return PartitionOn(pt.Nodes, cols...), true
}

// colOf maps a catalog column name of ref to its block-level ColID.
func (sc *Scope) colOf(ref *query.TableRef, name string) query.ColID {
	var c *catalog.Column
	var err error
	c, err = ref.Table.Column(name)
	if err != nil {
		panic(err) // catalog indexes/partitions were validated at build time
	}
	return ref.FirstCol + query.ColID(c.Ordinal)
}

// JoinColsBetween returns, for an enumerated join between outer and inner,
// the pairs of equality join columns linking them: outer-side columns and
// inner-side columns, index-aligned. Merge joins sort on these; parallel
// joins co-locate on them.
func (sc *Scope) JoinColsBetween(outer, inner bitset.Set) (outerCols, innerCols []query.ColID) {
	return sc.AppendJoinColsBetween(outer, inner, nil, nil)
}

// AppendJoinColsBetween is JoinColsBetween appending into caller-owned
// buffers (passed with len 0), for the allocation-lean generation hot path
// where the column pairs are consumed within the call and the buffers are
// reused join over join.
func (sc *Scope) AppendJoinColsBetween(outer, inner bitset.Set, outerCols, innerCols []query.ColID) ([]query.ColID, []query.ColID) {
	blk := sc.blk
	for _, i := range sc.eqPreds {
		p := blk.JoinPreds[i]
		lt, rt := blk.TableOf(p.Left), blk.TableOf(p.Right)
		switch {
		case outer.Contains(lt) && inner.Contains(rt):
			outerCols = append(outerCols, p.Left)
			innerCols = append(innerCols, p.Right)
		case outer.Contains(rt) && inner.Contains(lt):
			outerCols = append(outerCols, p.Right)
			innerCols = append(innerCols, p.Left)
		}
	}
	return outerCols, innerCols
}
