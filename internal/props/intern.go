package props

import (
	"sync"

	"cote/internal/query"
)

// internMaxCols bounds the column count an Interner will canonicalize;
// longer sequences (rare — no workload exceeds 4 ordering columns) fall back
// to a fresh instance, which is merely an allocation, never a correctness
// issue.
const internMaxCols = 6

// internKey is a comparable, allocation-free map key for a column sequence.
type internKey struct {
	n     int32
	nodes int32 // partition node count; 0 for orders
	cols  [internMaxCols]query.ColID
}

func makeInternKey(nodes int, cols []query.ColID) (internKey, bool) {
	if len(cols) > internMaxCols {
		return internKey{}, false
	}
	k := internKey{n: int32(len(cols)), nodes: int32(nodes)}
	copy(k.cols[:], cols)
	return k, true
}

// Interner canonicalizes Order and Partition values by their literal column
// sequence, so the interesting-property lists and the plans of one
// optimization share one backing instance per distinct property value
// instead of re-allocating the same few column slices once per enumerated
// join. Interning is by raw column ids (not equivalence classes):
// equivalence is query-set relative, while sharing instances only requires
// literal identity. Safe for concurrent use — the parallel DP round's
// workers share their block's interner. The zero value is ready to use; its
// maps are created lazily on the first intern (reads of a nil map are legal
// in Go), so embedding an unused Interner costs nothing.
type Interner struct {
	mu     sync.RWMutex
	orders map[internKey]Order
	parts  map[internKey]Partition
}

// NewInterner returns an empty interner.
func NewInterner() *Interner { return &Interner{} }

// Order returns the canonical Order on the given column sequence. The
// returned value shares its Cols slice with every other request for the
// same sequence; callers must treat it as immutable (Order callers already
// must, since lists expose shared slices).
func (in *Interner) Order(cols []query.ColID) Order {
	key, ok := makeInternKey(0, cols)
	if !ok {
		return Order{Cols: append([]query.ColID(nil), cols...)}
	}
	in.mu.RLock()
	o, hit := in.orders[key]
	in.mu.RUnlock()
	if hit {
		return o
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if o, hit := in.orders[key]; hit {
		return o
	}
	if in.orders == nil {
		in.orders = make(map[internKey]Order)
	}
	o = Order{Cols: append([]query.ColID(nil), cols...)}
	in.orders[key] = o
	return o
}

// Order1 returns the canonical single-column order — the overwhelmingly
// common case (one per equality join column) — without building a slice on
// the caller's side.
func (in *Interner) Order1(c query.ColID) Order {
	var cols [1]query.ColID
	cols[0] = c
	return in.Order(cols[:])
}

// Partition returns the canonical hash partition on the given node count
// and key columns, sharing its Cols slice like Order does.
func (in *Interner) Partition(nodes int, cols []query.ColID) Partition {
	key, ok := makeInternKey(nodes, cols)
	if !ok {
		return Partition{Cols: append([]query.ColID(nil), cols...), Nodes: nodes}
	}
	in.mu.RLock()
	p, hit := in.parts[key]
	in.mu.RUnlock()
	if hit {
		return p
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if p, hit := in.parts[key]; hit {
		return p
	}
	if in.parts == nil {
		in.parts = make(map[internKey]Partition)
	}
	p = Partition{Cols: append([]query.ColID(nil), cols...), Nodes: nodes}
	in.parts[key] = p
	return p
}
