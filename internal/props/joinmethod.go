package props

// JoinMethod identifies one of the three join implementations of the
// reproduced optimizer.
type JoinMethod int

// The join methods, in the order the paper discusses them.
const (
	NLJN JoinMethod = iota // nested-loops join
	MGJN                   // sort-merge join
	HSJN                   // hash join
	NumJoinMethods
)

// String names the method using the paper's abbreviations.
func (m JoinMethod) String() string {
	switch m {
	case NLJN:
		return "NLJN"
	case MGJN:
		return "MGJN"
	case HSJN:
		return "HSJN"
	}
	return "JOIN?"
}

// Propagation classifies how a join method carries a physical property from
// its inputs to its output (Table 2 of the paper).
type Propagation int

// Propagation classes.
const (
	// Full: every interesting property value of the (outer) input survives
	// the join.
	Full Propagation = iota
	// Partial: only property values tied to this join's columns survive.
	Partial
	// None: the join destroys the property.
	None
)

// String names the propagation class.
func (p Propagation) String() string {
	switch p {
	case Full:
		return "full"
	case Partial:
		return "partial"
	case None:
		return "none"
	}
	return "propagation?"
}

// OrderPropagation returns how the method propagates the order property:
// NLJN preserves its outer's order (full), MGJN emits only orders on this
// join's columns (partial), and HSJN destroys order (none). This is row one
// of the paper's Table 2.
func (m JoinMethod) OrderPropagation() Propagation {
	switch m {
	case NLJN:
		return Full
	case MGJN:
		return Partial
	default:
		return None
	}
}

// PartitionPropagation returns how the method propagates the partition
// property. In a shared-nothing system every join runs co-located, so the
// output keeps the input distribution regardless of method: full for all
// three (row two of Table 2).
func (m JoinMethod) PartitionPropagation() Propagation { return Full }

// RequiresEquality reports whether the method can only evaluate equality
// join predicates. Nested-loops joins also handle inequality and Cartesian
// joins.
func (m JoinMethod) RequiresEquality() bool { return m != NLJN }
