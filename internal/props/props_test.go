package props

import (
	"testing"
	"testing/quick"

	"cote/internal/bitset"
	"cote/internal/catalog"
	"cote/internal/query"
)

// fixture builds the paper's Figure 3 query:
//
//	SELECT A.2 FROM A, B, C WHERE A.1 = B.1 AND B.2 = C.2 [ORDER BY A.2]
//
// Tables are named a, b, c with columns c1, c2.
func fixture(t *testing.T, withOrderBy bool) (*query.Block, *Scope) {
	t.Helper()
	cb := catalog.NewBuilder("fig3")
	for _, name := range []string{"a", "b", "c"} {
		cb.Table(name, 1000).Column("c1", 100).Column("c2", 100)
	}
	cat := cb.Build()

	qb := query.NewBuilder("fig3", cat)
	qb.AddTable("a", "")
	qb.AddTable("b", "")
	qb.AddTable("c", "")
	qb.JoinEq("a", "c1", "b", "c1")
	qb.JoinEq("b", "c2", "c", "c2")
	qb.SelectCols(qb.Col("a", "c2"))
	if withOrderBy {
		qb.OrderBy(qb.Col("a", "c2"))
	}
	blk := qb.MustBuild()
	return blk, NewScope(blk)
}

// Column ids in the fixture: a.c1=0 a.c2=1 b.c1=2 b.c2=3 c.c1=4 c.c2=5.
const (
	aC1 = query.ColID(iota)
	aC2
	bC1
	bC2
	cC1
	cC2
)

func TestOrderEqualityAndSubsumption(t *testing.T) {
	blk, _ := fixture(t, false)
	eqAll := blk.EquivWithin(blk.AllTables())
	eqNone := blk.EquivWithin(bitset.Set(0))

	oA := OrderOn(aC1)
	oB := OrderOn(bC1)
	if !oA.EqualUnder(oB, eqAll) {
		t.Fatal("a.c1 and b.c1 should be equal once a.c1=b.c1 is applied")
	}
	if oA.EqualUnder(oB, eqNone) {
		t.Fatal("a.c1 and b.c1 equal without the predicate applied")
	}

	oAB := OrderOn(aC1, aC2)
	if !oA.PrefixOfUnder(oAB, eqNone) || oAB.PrefixOfUnder(oA, eqNone) {
		t.Fatal("prefix subsumption wrong")
	}
	if !oA.PrefixOfUnder(oA, eqNone) {
		t.Fatal("prefix subsumption must be reflexive")
	}
	// Set subsumption ignores position.
	oBA := OrderOn(aC2, aC1)
	if !oAB.SetSubsetOfUnder(oBA, eqNone) || !oBA.SetSubsetOfUnder(oAB, eqNone) {
		t.Fatal("set subsumption should ignore order")
	}
	if oAB.PrefixOfUnder(oBA, eqNone) {
		t.Fatal("prefix subsumption must respect position")
	}
}

func TestOrderKeyCanonical(t *testing.T) {
	blk, _ := fixture(t, false)
	eqAll := blk.EquivWithin(blk.AllTables())
	if OrderOn(aC1).Key(eqAll) != OrderOn(bC1).Key(eqAll) {
		t.Fatal("keys of equivalent orders differ")
	}
	if OrderOn(aC1).Key(eqAll) == OrderOn(aC2).Key(eqAll) {
		t.Fatal("keys of distinct orders collide")
	}
	if (Order{}).Key(eqAll) != "-" {
		t.Fatal("empty order key")
	}
}

func TestOrderListDedup(t *testing.T) {
	blk, _ := fixture(t, false)
	eqAll := blk.EquivWithin(blk.AllTables())
	var l OrderList
	if !l.Add(OrderOn(aC1), eqAll) {
		t.Fatal("first Add failed")
	}
	if l.Add(OrderOn(bC1), eqAll) {
		t.Fatal("equivalent order not deduplicated")
	}
	if l.Add(Order{}, eqAll) {
		t.Fatal("empty order accepted")
	}
	if !l.Add(OrderOn(aC2), eqAll) || l.Len() != 2 {
		t.Fatalf("list = %v", l.Orders())
	}
	if !l.Contains(OrderOn(bC1), eqAll) || l.Contains(OrderOn(cC1), eqAll) {
		t.Fatal("Contains wrong")
	}
}

func TestPartitionSemantics(t *testing.T) {
	blk, _ := fixture(t, false)
	eqAll := blk.EquivWithin(blk.AllTables())
	eqNone := blk.EquivWithin(bitset.Set(0))

	p1 := PartitionOn(4, aC1, aC2)
	p2 := PartitionOn(4, aC2, bC1) // {a.c2, b.c1} ≡ {a.c2, a.c1} under eqAll
	if !p1.EqualUnder(p2, eqAll) {
		t.Fatal("set-equal partitions not equal under equivalence")
	}
	if p1.EqualUnder(p2, eqNone) {
		t.Fatal("partitions equal without applied predicate")
	}
	if p1.EqualUnder(PartitionOn(8, aC1, aC2), eqAll) {
		t.Fatal("different node counts compared equal")
	}
	if !p1.CoversJoinCols([]query.ColID{bC1, aC2}, eqAll) {
		t.Fatal("CoversJoinCols false for covered keys")
	}
	if p1.CoversJoinCols([]query.ColID{aC1}, eqNone) {
		t.Fatal("partial key cover accepted")
	}
	if (Partition{}).CoversJoinCols([]query.ColID{aC1}, eqNone) {
		t.Fatal("don't-care partition covers nothing")
	}
	if p1.Key(eqAll) != p2.Key(eqAll) {
		t.Fatal("canonical keys of set-equal partitions differ")
	}
}

func TestPartitionListDedupAndCover(t *testing.T) {
	blk, _ := fixture(t, false)
	eqAll := blk.EquivWithin(blk.AllTables())
	var l PartitionList
	l.Add(PartitionOn(4, aC1), eqAll)
	if l.Add(PartitionOn(4, bC1), eqAll) {
		t.Fatal("equivalent partition not deduplicated")
	}
	if !l.AnyCoversJoinCols([]query.ColID{bC1}, eqAll) {
		t.Fatal("AnyCoversJoinCols missed equivalent cover")
	}
	if l.AnyCoversJoinCols([]query.ColID{cC1}, eqAll) {
		t.Fatal("AnyCoversJoinCols false positive")
	}
}

func TestTable2PropagationClasses(t *testing.T) {
	// Row "order": NLJN full, MGJN partial, HSJN none.
	if NLJN.OrderPropagation() != Full || MGJN.OrderPropagation() != Partial || HSJN.OrderPropagation() != None {
		t.Fatal("order propagation row of Table 2 wrong")
	}
	// Row "partition": full for every method.
	for m := JoinMethod(0); m < NumJoinMethods; m++ {
		if m.PartitionPropagation() != Full {
			t.Fatalf("%v partition propagation != full", m)
		}
	}
	if NLJN.RequiresEquality() || !MGJN.RequiresEquality() || !HSJN.RequiresEquality() {
		t.Fatal("equality requirement wrong")
	}
}

func TestOrderInterestFutureJoin(t *testing.T) {
	blk, sc := fixture(t, false)
	// At {a}: a.c1 joins to b outside — interesting; a.c2 does not.
	sA := bitset.Of(0)
	eqA := blk.EquivWithin(sA)
	if !sc.OrderInterest(OrderOn(aC1), sA, eqA).FutureJoin {
		t.Fatal("a.c1 not future-join interesting at {a}")
	}
	if sc.OrderUseful(OrderOn(aC2), sA, eqA) {
		t.Fatal("a.c2 interesting at {a} without ORDER BY")
	}
	// At {a,b}: a.c1=b.c1 is applied and no join out of the set uses it —
	// retired. b.c2 joins to c — interesting.
	sAB := bitset.Of(0, 1)
	eqAB := blk.EquivWithin(sAB)
	if sc.OrderUseful(OrderOn(aC1), sAB, eqAB) {
		t.Fatal("a.c1 should retire at {a,b} (paper Figure 3a)")
	}
	if !sc.OrderInterest(OrderOn(bC2), sAB, eqAB).FutureJoin {
		t.Fatal("b.c2 should stay interesting at {a,b}")
	}
	// At {a,b,c}: everything retired (no ORDER BY).
	sAll := blk.AllTables()
	eqAll := blk.EquivWithin(sAll)
	for _, o := range []Order{OrderOn(aC1), OrderOn(bC2), OrderOn(cC2)} {
		if sc.OrderUseful(o, sAll, eqAll) {
			t.Fatalf("order %v survives at the top without ORDER BY", o)
		}
	}
}

func TestOrderInterestOrderBy(t *testing.T) {
	blk, sc := fixture(t, true) // ORDER BY a.c2
	sAll := blk.AllTables()
	eqAll := blk.EquivWithin(sAll)
	in := sc.OrderInterest(OrderOn(aC2), sAll, eqAll)
	if !in.OrderBy || in.FutureJoin {
		t.Fatalf("a.c2 interest at top = %+v, want OrderBy only", in)
	}
	// A more general order extending the ORDER BY is also interesting.
	if !sc.OrderInterest(OrderOn(aC2, aC1), sAll, eqAll).OrderBy {
		t.Fatal("extension of ORDER BY not interesting")
	}
	// A mismatched leading column is not.
	if sc.OrderInterest(OrderOn(aC1, aC2), sAll, eqAll).OrderBy {
		t.Fatal("non-prefix order claimed ORDER BY interest")
	}
}

func TestOrderInterestGroupBy(t *testing.T) {
	cb := catalog.NewBuilder("gb")
	cb.Table("a", 100).Column("g1", 10).Column("g2", 10).Column("x", 10)
	cat := cb.Build()
	qb := query.NewBuilder("gb", cat)
	qb.AddTable("a", "")
	qb.GroupBy(qb.Col("a", "g1"), qb.Col("a", "g2"))
	blk := qb.MustBuild()
	sc := NewScope(blk)
	s := blk.AllTables()
	eq := blk.EquivWithin(s)

	g1, g2, x := query.ColID(0), query.ColID(1), query.ColID(2)
	// Any permutation of a subset of the grouping columns is interesting.
	for _, o := range []Order{OrderOn(g1), OrderOn(g2, g1), OrderOn(g1, g2)} {
		if !sc.OrderInterest(o, s, eq).GroupBy {
			t.Errorf("order %v not group-by interesting", o)
		}
	}
	if sc.OrderInterest(OrderOn(g1, x), s, eq).GroupBy {
		t.Error("order with non-grouping column claimed group-by interest")
	}
}

func TestEagerBaseOrdersFigure3(t *testing.T) {
	// Figure 3(a): without ORDER BY, table a has one interesting order
	// (a.c1); with ORDER BY a.c2 (Figure 3b) it gains (a.c2).
	blk, sc := fixture(t, false)
	eqA := blk.EquivWithin(bitset.Of(0))
	got := sc.EagerBaseOrders(0, eqA)
	if len(got) != 1 || !got[0].EqualUnder(OrderOn(aC1), eqA) {
		t.Fatalf("eager orders of a = %v, want [(a.c1)]", got)
	}

	blkOB, scOB := fixture(t, true)
	eqA = blkOB.EquivWithin(bitset.Of(0))
	got = scOB.EagerBaseOrders(0, eqA)
	if len(got) != 2 {
		t.Fatalf("eager orders of a with ORDER BY = %v, want 2", got)
	}
	// Table b joins to both a and c: two interesting orders.
	eqB := blk.EquivWithin(bitset.Of(1))
	if got := sc.EagerBaseOrders(1, eqB); len(got) != 2 {
		t.Fatalf("eager orders of b = %v, want 2", got)
	}
}

func TestEagerBaseOrdersCompositeJoin(t *testing.T) {
	// Two predicates between the same pair produce both single-column
	// orders and the composite order.
	cb := catalog.NewBuilder("comp")
	cb.Table("r", 100).Column("a", 10).Column("b", 10)
	cb.Table("s", 100).Column("a", 10).Column("b", 10)
	cat := cb.Build()
	qb := query.NewBuilder("comp", cat)
	qb.AddTable("r", "")
	qb.AddTable("s", "")
	qb.JoinEq("r", "a", "s", "a")
	qb.JoinEq("r", "b", "s", "b")
	blk := qb.MustBuild()
	sc := NewScope(blk)
	eq := blk.EquivWithin(bitset.Of(0))
	got := sc.EagerBaseOrders(0, eq)
	if len(got) != 3 { // (r.a), (r.b), (r.a,r.b)
		t.Fatalf("eager orders = %v, want 3", got)
	}
}

func TestNaturalBaseOrdersFromIndexes(t *testing.T) {
	cb := catalog.NewBuilder("ix")
	cb.Table("r", 100).Column("a", 10).Column("b", 10).
		Index("pk", true, "a").Index("ab", false, "a", "b")
	cat := cb.Build()
	qb := query.NewBuilder("ix", cat)
	qb.AddTable("r", "")
	blk := qb.MustBuild()
	sc := NewScope(blk)
	eq := blk.EquivWithin(bitset.Of(0))
	got := sc.NaturalBaseOrders(0, eq)
	if len(got) != 2 {
		t.Fatalf("natural orders = %v, want 2", got)
	}
	if got[0].Len() != 1 || got[1].Len() != 2 {
		t.Fatalf("natural order shapes = %v", got)
	}
}

func TestNaturalBasePartition(t *testing.T) {
	cb := catalog.NewBuilder("pt")
	cb.Table("r", 100).Column("a", 10).Column("b", 10).Partition(4, "a")
	cb.Table("s", 100).Column("a", 10)
	cat := cb.Build()
	qb := query.NewBuilder("pt", cat)
	qb.AddTable("r", "")
	qb.AddTable("s", "")
	qb.JoinEq("r", "a", "s", "a")
	blk := qb.MustBuild()
	sc := NewScope(blk)

	p, ok := sc.NaturalBasePartition(0)
	if !ok || p.Nodes != 4 || len(p.Cols) != 1 {
		t.Fatalf("partition of r = %v, %v", p, ok)
	}
	if _, ok := sc.NaturalBasePartition(1); ok {
		t.Fatal("unpartitioned table returned a partition")
	}
}

func TestJoinColsBetween(t *testing.T) {
	_, sc := fixture(t, false)
	oc, ic := sc.JoinColsBetween(bitset.Of(0), bitset.Of(1))
	if len(oc) != 1 || oc[0] != aC1 || ic[0] != bC1 {
		t.Fatalf("join cols a-b: outer %v inner %v", oc, ic)
	}
	oc, ic = sc.JoinColsBetween(bitset.Of(2), bitset.Of(0, 1))
	if len(oc) != 1 || oc[0] != cC2 || ic[0] != bC2 {
		t.Fatalf("join cols c-(ab): outer %v inner %v", oc, ic)
	}
	if oc, _ := sc.JoinColsBetween(bitset.Of(0), bitset.Of(2)); len(oc) != 0 {
		t.Fatal("a-c have no direct join columns")
	}
}

func TestPartitionUseful(t *testing.T) {
	blk, sc := fixture(t, false)
	sA := bitset.Of(0)
	eqA := blk.EquivWithin(sA)
	if !sc.PartitionUseful(PartitionOn(4, aC1), sA, eqA) {
		t.Fatal("partition on future join column not useful")
	}
	if sc.PartitionUseful(PartitionOn(4, aC2), sA, eqA) {
		t.Fatal("partition on unused column useful")
	}
	if sc.PartitionUseful(Partition{}, sA, eqA) {
		t.Fatal("don't-care partition useful")
	}
}

func TestGenerationPolicyString(t *testing.T) {
	if Eager.String() != "eager" || Lazy.String() != "lazy" {
		t.Fatal("policy names wrong")
	}
}

func TestStrings(t *testing.T) {
	if OrderOn(aC1).String() == "" || (Order{}).String() != "DC" {
		t.Fatal("order String wrong")
	}
	if PartitionOn(4, aC1).String() == "" || (Partition{}).String() != "DC" {
		t.Fatal("partition String wrong")
	}
	for m := JoinMethod(0); m < NumJoinMethods; m++ {
		if m.String() == "JOIN?" {
			t.Fatal("join method String wrong")
		}
	}
	for _, p := range []Propagation{Full, Partial, None} {
		if p.String() == "propagation?" {
			t.Fatal("propagation String wrong")
		}
	}
}

// Property: PrefixOfUnder implies SetSubsetOfUnder (prefix subsumption is
// strictly stronger than set subsumption).
func TestQuickPrefixImpliesSet(t *testing.T) {
	blk, _ := fixture(t, false)
	eq := blk.EquivWithin(blk.AllTables())
	mk := func(raw []uint8) Order {
		cols := make([]query.ColID, 0, len(raw))
		for _, r := range raw {
			cols = append(cols, query.ColID(r%6))
		}
		return Order{Cols: cols}
	}
	f := func(a, b []uint8) bool {
		if len(a) > 5 || len(b) > 5 {
			return true
		}
		oa, ob := mk(a), mk(b)
		if oa.PrefixOfUnder(ob, eq) && !oa.SetSubsetOfUnder(ob, eq) {
			return false
		}
		// Equality must imply mutual prefix subsumption.
		if oa.EqualUnder(ob, eq) && (!oa.PrefixOfUnder(ob, eq) || !ob.PrefixOfUnder(oa, eq)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: OrderList.Add is idempotent and Key-consistent — adding an
// equivalent order twice never grows the list, and Contains agrees with Key
// equality.
func TestQuickOrderListConsistency(t *testing.T) {
	blk, _ := fixture(t, false)
	eq := blk.EquivWithin(blk.AllTables())
	f := func(raw []uint8) bool {
		var l OrderList
		keys := map[string]bool{}
		for _, r := range raw {
			o := OrderOn(query.ColID(r % 6))
			added := l.Add(o, eq)
			k := o.Key(eq)
			if added == keys[k] {
				return false // added a duplicate or refused a new key
			}
			keys[k] = true
		}
		return l.Len() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
