package cost

import (
	"math"
	"testing"
	"testing/quick"

	"cote/internal/bitset"
	"cote/internal/catalog"
	"cote/internal/query"
)

func TestSynthesizeHistogramDeterministic(t *testing.T) {
	a := SynthesizeHistogram(10_000, 100, "t.a")
	b := SynthesizeHistogram(10_000, 100, "t.a")
	if *a != *b {
		t.Fatal("same seed produced different histograms")
	}
	c := SynthesizeHistogram(10_000, 100, "t.b")
	if *a == *c {
		t.Fatal("different seeds produced identical histograms")
	}
	if a.NDV() != 100 || a.Rows() != 10_000 {
		t.Fatal("histogram metadata wrong")
	}
}

func TestHistogramSelEqNearUniform(t *testing.T) {
	h := SynthesizeHistogram(1_000_000, 1000, "col")
	sel := h.SelEq()
	// Mildly skewed around 1/NDV: within a factor of 3.
	if sel < 1.0/3000 || sel > 3.0/1000 {
		t.Fatalf("SelEq = %v, want near 1/1000", sel)
	}
}

func TestHistogramSelRange(t *testing.T) {
	h := SynthesizeHistogram(100_000, 500, "col")
	if got := h.SelRange(0); got != 0 {
		t.Fatalf("SelRange(0) = %v", got)
	}
	if got := h.SelRange(1); got != 1 {
		t.Fatalf("SelRange(1) = %v", got)
	}
	mid := h.SelRange(0.5)
	if mid <= 0.2 || mid >= 0.8 {
		t.Fatalf("SelRange(0.5) = %v, want mid-range", mid)
	}
	if h.SelRange(0.3) > h.SelRange(0.6) {
		t.Fatal("SelRange not monotone")
	}
}

// Property: SelRange is monotone nondecreasing and bounded in [0, 1].
func TestQuickSelRangeMonotone(t *testing.T) {
	h := SynthesizeHistogram(50_000, 700, "q")
	f := func(a, b float64) bool {
		fa, fb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if fa > fb {
			fa, fb = fb, fa
		}
		sa, sb := h.SelRange(fa), h.SelRange(fb)
		return sa >= 0 && sb <= 1 && sa <= sb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestYao(t *testing.T) {
	// Fetching all rows touches all pages.
	if got := yao(1000, 25, 1000); got != 25 {
		t.Fatalf("yao all rows = %v", got)
	}
	// Fetching nothing touches nothing.
	if got := yao(1000, 25, 0); got != 0 {
		t.Fatalf("yao zero rows = %v", got)
	}
	// Fetching a few random rows touches roughly that many pages.
	got := yao(100_000, 2500, 10)
	if got < 8 || got > 10 {
		t.Fatalf("yao(10 of 100k) = %v, want ~10", got)
	}
	// Monotone in k.
	if yao(1000, 25, 100) > yao(1000, 25, 500) {
		t.Fatal("yao not monotone in k")
	}
}

// estimators builds full- and simple-mode estimators over a PK-FK pair.
func estimators(t *testing.T) (*query.Block, *Estimator, *Estimator) {
	t.Helper()
	cb := catalog.NewBuilder("c")
	// PK table with understated NDV stats: full mode knows the unique index
	// makes pk.id effectively row-count distinct; simple mode trusts the
	// stale NDV.
	cb.Table("pk", 10_000).Column("id", 8_000).Column("v", 100).Index("pk_pk", true, "id")
	cb.Table("fk", 100_000).Column("ref", 8_000).Column("w", 50)
	cat := cb.Build()

	qb := query.NewBuilder("q", cat)
	qb.AddTable("fk", "")
	qb.AddTable("pk", "")
	qb.JoinEq("fk", "ref", "pk", "id")
	blk := qb.MustBuild()
	return blk, NewEstimator(blk, Full), NewEstimator(blk, Simple)
}

func TestCardModesDiverge(t *testing.T) {
	blk, full, simple := estimators(t)
	s := blk.AllTables()
	cf, cs := full.Card(s), simple.Card(s)
	// Full mode: FK-PK join, output = |fk| = 100k (unique index upgrades
	// NDV to 10k and the key cap bounds by the FK side).
	if cf > 100_000*1.01 || cf < 100_000*0.9 {
		t.Fatalf("full card = %v, want ~100000", cf)
	}
	// Simple mode: 100k * 10k / 8k = 125k — the overestimate the paper
	// attributes to ignoring keys.
	if cs <= cf {
		t.Fatalf("simple card %v not above full card %v", cs, cf)
	}
	if math.Abs(cs-125_000) > 1 {
		t.Fatalf("simple card = %v, want 125000", cs)
	}
}

func TestCardMemoized(t *testing.T) {
	blk, full, _ := estimators(t)
	s := blk.AllTables()
	a := full.Card(s)
	if b := full.Card(s); a != b {
		t.Fatal("memoized Card returned different values")
	}
	if full.Mode() != Full || Full.String() != "full" || Simple.String() != "simple" {
		t.Fatal("mode accessors wrong")
	}
}

func TestFilteredCardRespectsLocalPreds(t *testing.T) {
	cb := catalog.NewBuilder("c")
	cb.Table("t", 10_000).Column("a", 100).Column("b", 10)
	cat := cb.Build()
	qb := query.NewBuilder("q", cat)
	qb.AddTable("t", "")
	qb.Filter(qb.Col("t", "a"), query.Eq, 0) // 1/100
	qb.Filter(qb.Col("t", "b"), query.Lt, 0) // 1/3
	blk := qb.MustBuild()

	simple := NewEstimator(blk, Simple)
	want := 10_000.0 / 100 / 3
	if got := simple.FilteredCard(0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("simple filtered card = %v, want %v", got, want)
	}
	full := NewEstimator(blk, Full)
	got := full.FilteredCard(0)
	// Histogram-based: near but typically not equal — the paper's
	// "inconsistent cardinality estimation" gap.
	if got <= 0 || got > 10_000 {
		t.Fatalf("full filtered card = %v out of range", got)
	}
	if ratio := got / want; ratio < 0.2 || ratio > 5 {
		t.Fatalf("full/simple filtered card ratio = %v, want same ballpark", ratio)
	}
}

func TestCardFloor(t *testing.T) {
	cb := catalog.NewBuilder("c")
	cb.Table("t", 10).Column("a", 10)
	cat := cb.Build()
	qb := query.NewBuilder("q", cat)
	qb.AddTable("t", "")
	qb.Filter(qb.Col("t", "a"), query.Eq, 0.0001)
	blk := qb.MustBuild()
	e := NewEstimator(blk, Simple)
	if got := e.Card(bitset.Of(0)); got < 0.01 {
		t.Fatalf("card %v under floor", got)
	}
}

func TestJoinSelNonEquality(t *testing.T) {
	cb := catalog.NewBuilder("c")
	cb.Table("r", 100).Column("a", 10)
	cb.Table("s", 100).Column("a", 10)
	cat := cb.Build()
	qb := query.NewBuilder("q", cat)
	qb.AddTable("r", "")
	qb.AddTable("s", "")
	qb.Join(qb.Col("r", "a"), qb.Col("s", "a"), query.Lt)
	blk := qb.MustBuild()
	e := NewEstimator(blk, Simple)
	if got := e.JoinSel(0); got != 1.0/3 {
		t.Fatalf("non-eq join sel = %v, want 1/3", got)
	}
}

func TestScanCostScalesWithRows(t *testing.T) {
	small := Serial.ScanCost(1_000, 1_000)
	big := Serial.ScanCost(1_000_000, 1_000_000)
	if small >= big {
		t.Fatal("scan cost not increasing with rows")
	}
	// Parallel divides the work.
	par := Parallel4.ScanCost(1_000_000, 1_000_000)
	if par >= big {
		t.Fatal("parallel scan not cheaper than serial")
	}
}

func TestIndexVsScanCrossover(t *testing.T) {
	rows := 1_000_000.0
	// Very selective: index wins.
	if ix, sc := Serial.IndexScanCost(rows, 10), Serial.ScanCost(rows, 10); ix >= sc {
		t.Fatalf("selective index scan %v not under table scan %v", ix, sc)
	}
	// Fetch everything: scan wins.
	if ix, sc := Serial.IndexScanCost(rows, rows), Serial.ScanCost(rows, rows); ix <= sc {
		t.Fatalf("full-fetch index scan %v not above table scan %v", ix, sc)
	}
}

func TestSortCostSuperlinear(t *testing.T) {
	a := Serial.SortCost(10_000)
	b := Serial.SortCost(20_000)
	if b <= 2*a*0.9 {
		t.Fatalf("sort cost not superlinear: %v vs %v", a, b)
	}
}

func TestJoinCostSanity(t *testing.T) {
	// Hash join should beat nested loops on large unordered inputs.
	oc, or := Serial.ScanCost(1_000_000, 1_000_000), 1_000_000.0
	ic, ir := Serial.ScanCost(500_000, 500_000), 500_000.0
	nl := Serial.NLJNCost(oc, or, ic, ir, 1_000_000)
	hs := Serial.HSJNCost(oc, or, ic, ir, 1_000_000)
	if hs >= nl {
		t.Fatalf("hash join %v not under nested loops %v on big inputs", hs, nl)
	}
	// Merge join (inputs pre-sorted) beats hash join.
	mg := Serial.MGJNCost(oc, or, ic, ir, 1_000_000)
	if mg >= hs {
		t.Fatalf("merge join %v not under hash join %v on sorted inputs", mg, hs)
	}
	// Tiny inner: nested loops becomes competitive with hash join.
	nlTiny := Serial.NLJNCost(oc, or, Serial.ScanCost(10, 10), 10, 1_000_000)
	hsTiny := Serial.HSJNCost(oc, or, Serial.ScanCost(10, 10), 10, 1_000_000)
	if nlTiny > hsTiny*3 {
		t.Fatalf("NLJN with tiny inner (%v) should be near HSJN (%v)", nlTiny, hsTiny)
	}
}

func TestRepartitionCost(t *testing.T) {
	if got := Serial.RepartitionCost(1_000_000); got != 0 {
		t.Fatalf("serial repartition cost = %v, want 0", got)
	}
	if got := Parallel4.RepartitionCost(1_000_000); got <= 0 {
		t.Fatal("parallel repartition free")
	}
	if Parallel4.RepartitionCost(1_000) >= Parallel4.RepartitionCost(1_000_000) {
		t.Fatal("repartition cost not increasing")
	}
}

func TestGroupByCost(t *testing.T) {
	ordered := Serial.GroupByCost(1_000_000, 100, true)
	hashed := Serial.GroupByCost(1_000_000, 100, false)
	if ordered >= hashed {
		t.Fatalf("streaming group-by %v not under hash group-by %v", ordered, hashed)
	}
}

func TestBufferHitRatioBounds(t *testing.T) {
	for _, pages := range []float64{0, 1, 100, 1e6, 1e9} {
		r := bufferHitRatio(pages)
		if r < 0 || r > 1 {
			t.Fatalf("hit ratio %v for %v pages out of [0,1]", r, pages)
		}
	}
	if bufferHitRatio(10) <= bufferHitRatio(1e8) {
		t.Fatal("hit ratio should fall as footprint grows")
	}
}

// Property: all operator costs are nonnegative and finite for sane inputs.
func TestQuickCostsFinite(t *testing.T) {
	f := func(a, b uint32) bool {
		or := float64(a%10_000_000) + 1
		ir := float64(b%10_000_000) + 1
		for _, cfg := range []*Config{Serial, Parallel4} {
			costs := []float64{
				cfg.ScanCost(or, ir),
				cfg.IndexScanCost(or, math.Min(or, ir)),
				cfg.SortCost(or),
				cfg.NLJNCost(1, or, 1, ir, or),
				cfg.MGJNCost(1, or, 1, ir, or),
				cfg.HSJNCost(1, or, 1, ir, or),
				cfg.RepartitionCost(or),
				cfg.GroupByCost(or, ir, a%2 == 0),
			}
			for _, c := range costs {
				if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
