package cost

import (
	"math"

	"cote/internal/bitset"
	"cote/internal/query"
)

// Mode selects the cardinality model.
type Mode int

// Cardinality modes. Full is used during real plan generation: it consults
// histograms for local predicates and knows about unique keys, at a real CPU
// cost. Simple is used in the estimator's plan-estimate mode: raw base
// statistics only, as the paper's prototype does ("the cardinality
// estimation we employed in plan-estimate mode is simpler than that used in
// real compilation ... it doesn't take into consideration the effect of keys
// and functional dependencies"). The deliberate gap between the two modes is
// the error source behind the parallel-version HSJN plan-count errors in
// Figure 5.
const (
	Full Mode = iota
	Simple
)

// String names the mode.
func (m Mode) String() string {
	if m == Full {
		return "full"
	}
	return "simple"
}

// Estimator computes cardinalities for table sets of one query block. It
// memoizes per-set results: cardinality is a logical property, computed once
// per MEMO entry, exactly as DB2 experience item 5 in the paper prescribes.
type Estimator struct {
	blk  *query.Block
	mode Mode

	filtered []float64 // per-table filtered cardinality
	joinSel  []float64 // per-join-predicate selectivity
	cache    map[bitset.Set]float64
}

// NewEstimator builds a cardinality estimator for a finalized block.
func NewEstimator(blk *query.Block, mode Mode) *Estimator {
	e := &Estimator{
		blk:   blk,
		mode:  mode,
		cache: make(map[bitset.Set]float64),
	}
	e.precompute()
	return e
}

// Mode returns the estimator's cardinality mode.
func (e *Estimator) Mode() Mode { return e.mode }

// precompute fills per-table filtered cardinalities and per-predicate join
// selectivities.
func (e *Estimator) precompute() {
	blk := e.blk
	e.filtered = make([]float64, len(blk.Tables))
	for i, t := range blk.Tables {
		e.filtered[i] = t.BaseRows()
	}
	for _, lp := range blk.LocalPreds {
		t := blk.TableOf(lp.Col)
		e.filtered[t] *= e.localSel(lp)
	}
	for i := range e.filtered {
		if e.filtered[i] < 0.01 {
			e.filtered[i] = 0.01
		}
	}

	e.joinSel = make([]float64, len(blk.JoinPreds))
	for i, jp := range blk.JoinPreds {
		e.joinSel[i] = e.joinPredSel(jp)
	}
}

// localSel returns the selectivity of one local predicate under the current
// mode. Full mode consults a synthesized histogram; simple mode uses the
// predicate's recorded selectivity (1/NDV or the System R defaults filled in
// at Finalize time).
func (e *Estimator) localSel(lp query.LocalPred) float64 {
	if e.mode == Simple {
		return lp.Selectivity
	}
	col := e.blk.Column(lp.Col)
	h := e.histogramFor(col)
	switch lp.Op {
	case query.Eq:
		// Respect an explicitly tightened selectivity but refine the
		// default with the histogram.
		def := 1 / math.Max(col.Col.NDV, 1)
		if lp.Selectivity > 0 && math.Abs(lp.Selectivity-def) > def*1e-9 {
			// Explicit selectivity: scale by the histogram's skew ratio.
			return clampSel(lp.Selectivity * h.SelEq() / def)
		}
		return h.SelEq()
	case query.Ne:
		return clampSel(1 - h.SelEq())
	default:
		return h.SelRange(lp.Selectivity)
	}
}

// joinPredSel returns the selectivity of a join predicate. Both modes use
// 1/max(NDV) for equality, but full mode upgrades the NDV of unique-indexed
// columns to the table's row count (the "effect of keys" that simple mode
// deliberately ignores). Non-equality join predicates use the System R 1/3.
func (e *Estimator) joinPredSel(jp query.JoinPred) float64 {
	if jp.Op != query.Eq {
		return 1.0 / 3
	}
	l, r := e.effNDV(jp.Left), e.effNDV(jp.Right)
	return 1 / math.Max(math.Max(l, r), 1)
}

// effNDV returns the effective distinct-value count of a column: full mode
// recognizes single-column unique indexes as proof of key-ness.
func (e *Estimator) effNDV(id query.ColID) float64 {
	col := e.blk.Column(id)
	ndv := col.Col.NDV
	if e.mode == Full && col.Ref.Table != nil {
		for _, ix := range col.Ref.Table.Indexes {
			if ix.Unique && len(ix.Columns) == 1 && ix.Columns[0] == col.Col.Name {
				if col.Ref.Table.RowCount > ndv {
					ndv = col.Ref.Table.RowCount
				}
			}
		}
	}
	return ndv
}

// histogramFor synthesizes (without caching — full-mode costing is supposed
// to pay the real price of histogram work per estimate, as commercial cost
// models do) the histogram of a column.
func (e *Estimator) histogramFor(col *query.ColumnRef) *Histogram {
	rows := col.Ref.BaseRows()
	return SynthesizeHistogram(rows, col.Col.NDV, col.Ref.Alias+"."+col.Col.Name)
}

// FilteredCard returns the cardinality of one table after local predicates.
func (e *Estimator) FilteredCard(t int) float64 { return e.filtered[t] }

// JoinSel returns the selectivity of join predicate i.
func (e *Estimator) JoinSel(i int) float64 { return e.joinSel[i] }

// JoinCard returns the cardinality of the union of two disjoint table sets
// whose own cardinalities are already memoized. Simple mode composes it
// incrementally — card(s)*card(l) times the cross-predicate selectivities —
// which is part of what makes plan-estimate mode cheap; full mode falls back
// to the complete recomputation so its key caps stay exact.
func (e *Estimator) JoinCard(s, l bitset.Set) float64 {
	union := s.Union(l)
	if e.mode == Full {
		return e.Card(union)
	}
	if c, ok := e.cache[union]; ok {
		return c
	}
	card := e.Card(s) * e.Card(l)
	for _, pi := range e.blk.PredsBetween(s, l) {
		card *= e.joinSel[pi]
	}
	if card < 0.01 {
		card = 0.01
	}
	e.cache[union] = card
	return card
}

// Card returns the cardinality of a table set: the product of filtered base
// cardinalities and the selectivities of all join predicates applied within
// the set, with key-based capping in full mode. Results are memoized; the
// first call for a set is the "compute once per MEMO entry" of the paper.
func (e *Estimator) Card(s bitset.Set) float64 {
	if c, ok := e.cache[s]; ok {
		return c
	}
	card := 1.0
	for t := s.Next(0); t >= 0; t = s.Next(t + 1) {
		card *= e.filtered[t]
	}
	for _, pi := range e.blk.PredsWithin(s) {
		card *= e.joinSel[pi]
	}
	if e.mode == Full {
		card = e.keyCap(s, card)
	}
	if card < 0.01 {
		card = 0.01
	}
	e.cache[s] = card
	return card
}

// keyCap applies key-derived upper bounds: when a table's single-column
// unique key is equality-joined inside the set, each row of the rest of the
// set matches at most one row of that table, so the joined cardinality
// cannot exceed the cardinality of the set without it.
func (e *Estimator) keyCap(s bitset.Set, card float64) float64 {
	if s.Len() < 2 {
		return card
	}
	blk := e.blk
	for _, pi := range blk.PredsWithin(s) {
		jp := blk.JoinPreds[pi]
		if jp.Op != query.Eq {
			continue
		}
		for _, side := range []query.ColID{jp.Left, jp.Right} {
			if !e.isUniqueKey(side) {
				continue
			}
			rest := s.Remove(blk.TableOf(side))
			if rest.Empty() {
				continue
			}
			// Recursion terminates: rest is strictly smaller than s.
			if bound := e.Card(rest); card > bound {
				card = bound
			}
		}
	}
	return card
}

// isUniqueKey reports whether the column has a single-column unique index.
func (e *Estimator) isUniqueKey(id query.ColID) bool {
	col := e.blk.Column(id)
	if col.Ref.Table == nil {
		return false
	}
	for _, ix := range col.Ref.Table.Indexes {
		if ix.Unique && len(ix.Columns) == 1 && ix.Columns[0] == col.Col.Name {
			return true
		}
	}
	return false
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
