package cost

import "math"

// Machine and storage constants of the cost model, in abstract "instruction"
// units so that the paper's T = Tinst * sum(Ct * Pt) conversion applies
// directly.
const (
	rowsPerPage = 40     // 4 KiB pages, ~100-byte rows
	ioPage      = 4_000  // instructions equivalent of one page read
	cpuRow      = 60     // per-row CPU cost of a scan or probe
	cpuCompare  = 12     // per-comparison CPU cost (sorts, merges)
	cpuHash     = 40     // per-row hashing cost (build or probe side)
	commRow     = 150    // per-row communication cost between nodes
	bufferPages = 10_000 // buffer pool size used by the hit-ratio model
	seekCost    = 30_000 // instructions equivalent of one random seek
)

// Config parameterizes the cost formulas. Nodes > 1 engages the
// shared-nothing parallel model: partitioned work divides across nodes and
// repartitioning pays communication costs.
type Config struct {
	Nodes int
}

// Serial is the configuration of the serial optimizer.
var Serial = &Config{Nodes: 1}

// Parallel4 is the 4-logical-node configuration matching the paper's
// parallel experiments.
var Parallel4 = &Config{Nodes: 4}

// nodes returns the effective node count (at least 1).
func (c *Config) nodes() float64 {
	if c == nil || c.Nodes < 1 {
		return 1
	}
	return float64(c.Nodes)
}

// bufferHitRatio iterates the standard fixed-point approximation of the
// buffer hit ratio for an access pattern touching the given number of
// distinct pages. The iteration is intentionally non-trivial work: buffer
// modeling is one of the cost-model refinements the paper cites as making
// plan generation expensive.
func bufferHitRatio(pages float64) float64 {
	if pages <= 0 {
		return 1
	}
	ratio := bufferPages / (bufferPages + pages)
	for i := 0; i < 12; i++ {
		resident := bufferPages * (1 - math.Exp(-pages/bufferPages*(1-ratio)))
		next := resident / math.Max(pages, 1)
		if next > 1 {
			next = 1
		}
		ratio = 0.5*ratio + 0.5*next
	}
	return ratio
}

// pagesOf returns the page count of a rowset.
func pagesOf(rows float64) float64 {
	return math.Ceil(math.Max(rows, 0) / rowsPerPage)
}

// perNode scales a partitioned rowset down to the share one node processes.
func (c *Config) perNode(rows float64) float64 {
	return rows / c.nodes()
}

// ScanCost returns the cost of a full table scan producing outRows of
// tableRows (local predicates applied during the scan).
func (c *Config) ScanCost(tableRows, outRows float64) float64 {
	rows := c.perNode(tableRows)
	pages := pagesOf(rows)
	hit := bufferHitRatio(pages)
	io := pages * (1 - hit) * ioPage
	cpu := rows*cpuRow + c.perNode(outRows)*cpuRow/4
	return io + cpu + seekCost
}

// IndexScanCost returns the cost of fetching matchRows of tableRows through
// an index: a descent per range plus data-page fetches per Yao's formula.
func (c *Config) IndexScanCost(tableRows, matchRows float64) float64 {
	rows := c.perNode(tableRows)
	match := c.perNode(matchRows)
	dataPages := pagesOf(rows)
	touched := yao(rows, dataPages, match)
	hit := bufferHitRatio(touched)
	descent := math.Log2(math.Max(rows, 2)) * cpuCompare
	io := touched * (1 - hit) * (ioPage + seekCost/4)
	return descent + io + match*cpuRow
}

// SortCost returns the cost of sorting rows (an enforcer placed under a
// merge join or at the top for ORDER BY / GROUP BY). External sort beyond
// the buffer pool pays extra merge passes.
func (c *Config) SortCost(rows float64) float64 {
	n := math.Max(c.perNode(rows), 1)
	cmp := n * math.Log2(n+1) * cpuCompare
	pages := pagesOf(n)
	passes := 0.0
	if pages > bufferPages {
		passes = math.Ceil(math.Log(pages/bufferPages)/math.Log(8)) + 1
	}
	return cmp + passes*pages*2*ioPage + seekCost
}

// NLJNCost returns the cost of a nested-loops join: the outer is consumed
// once and the inner re-evaluated per block of outer rows. As commercial
// cost models do, the formula searches a small space of block sizes
// (block-nested-loops buffering) and prices each candidate with the buffer
// model, keeping the cheapest — per-plan costing work of exactly the kind
// the paper blames for plan generation dominating compilation.
func (c *Config) NLJNCost(outerCost, outerRows, innerCost, innerRows, outRows float64) float64 {
	or := c.perNode(outerRows)
	ir := c.perNode(innerRows)
	innerPages := pagesOf(ir)
	// Join-condition evaluation is quadratic regardless of blocking.
	cpu := or * ir * cpuCompare
	// The inner is re-read once per block of buffered outer rows; larger
	// blocks cost buffer space (worse hit ratios for the inner pages).
	bestIO := math.Inf(1)
	for block := 1.0; block <= 4096; block *= 4 {
		passes := math.Ceil(math.Max(or, 1) / block)
		hit := bufferHitRatio(innerPages + block/rowsPerPage)
		io := passes*innerPages*(1-hit)*ioPage/8 + block*cpuRow/8
		if io < bestIO {
			bestIO = io
		}
	}
	return outerCost + innerCost + cpu + bestIO + c.perNode(outRows)*cpuRow/4
}

// MGJNCost returns the cost of the merge phase of a sort-merge join; input
// sort enforcers are costed separately via SortCost. The merge model
// accounts for duplicate-driven rescans of the inner: the expected group
// width on each side follows from the output cardinality, and wide groups
// force the merge cursor to back up.
func (c *Config) MGJNCost(outerCost, outerRows, innerCost, innerRows, outRows float64) float64 {
	or, ir := c.perNode(outerRows), c.perNode(innerRows)
	merge := (or + ir) * cpuCompare * 2
	// Expected matches per outer row; each extra match re-reads buffered
	// inner tuples.
	matches := c.perNode(outRows) / math.Max(or, 1)
	rescan := or * math.Max(matches-1, 0) * cpuCompare
	backup := math.Min(math.Sqrt(math.Max(matches, 0)), 8) * ir * cpuCompare / 16
	return outerCost + innerCost + merge + rescan + backup + c.perNode(outRows)*cpuRow/4
}

// HSJNCost returns the cost of a hash join building on the inner and
// probing with the outer. Like commercial hash-join cost models, it
// searches a small space of grace-partitioning fanouts, picking the
// cheapest combination of spill I/O and per-bucket probe work — the kind of
// cost-model sophistication the paper credits for plan generation
// dominating compilation time.
func (c *Config) HSJNCost(outerCost, outerRows, innerCost, innerRows, outRows float64) float64 {
	or, ir := c.perNode(outerRows), c.perNode(innerRows)
	buildPages := pagesOf(ir)
	best := math.Inf(1)
	for fanout := 1.0; fanout <= 128; fanout *= 2 {
		partPages := buildPages / fanout
		spill := 0.0
		if partPages > bufferPages {
			// Recursive partitioning: both sides rewritten once per level.
			levels := math.Ceil(math.Log(partPages/bufferPages)/math.Log(fanout+1)) + 1
			spill = (pagesOf(or) + buildPages) * 2 * ioPage * levels
		} else if fanout > 1 {
			spill = (pagesOf(or) + buildPages) * 2 * ioPage
		}
		hit := bufferHitRatio(partPages)
		build := ir*cpuHash*2 + ir*(1-hit)*cpuHash/2
		probe := or*cpuHash + or*math.Log2(fanout+1)*cpuCompare/4
		if t := build + probe + spill; t < best {
			best = t
		}
	}
	return outerCost + innerCost + best + c.perNode(outRows)*cpuRow/4
}

// RepartitionCost returns the cost of rehashing rows across nodes — the
// enforcer of the partition property. In the serial configuration it is
// never used (and would be free).
func (c *Config) RepartitionCost(rows float64) float64 {
	if c.nodes() <= 1 {
		return 0
	}
	r := c.perNode(rows)
	return r*cpuHash + r*commRow*(1-1/c.nodes())
}

// cpuExpensive is the per-row, per-predicate cost of a user-defined
// expensive predicate (a UDF call) — orders of magnitude above a plain
// comparison, which is what makes deferring them past joins attractive.
const cpuExpensive = 5_000

// ExpensivePredCost returns the cost of evaluating n expensive predicates
// over rows.
func (c *Config) ExpensivePredCost(rows float64, n int) float64 {
	return c.perNode(rows) * cpuExpensive * float64(n)
}

// GroupByCost returns the cost of aggregation over rows into groups: hash
// or sort based; inputOrdered selects the cheap streaming variant.
func (c *Config) GroupByCost(rows, groups float64, inputOrdered bool) float64 {
	r := c.perNode(rows)
	if inputOrdered {
		return r * cpuCompare
	}
	return r*cpuHash + math.Min(c.perNode(groups), r)*cpuRow/4
}
