// Package cost implements the cost model of the reproduced optimizer:
// histogram-based selectivity estimation, cardinality estimation in two
// modes (the full model used during real plan generation and the simple
// model used in the estimator's plan-estimate mode), and per-operator cost
// formulas with page-access (Yao) and buffer-pool modeling.
//
// The paper's central overhead claim — that compilation time estimation
// costs under 3% of real optimization — rests on plan generation being
// expensive because "commercial systems build sophisticated execution cost
// models". This package therefore models costs with deliberate fidelity
// (histograms, Yao's formula, an iterative buffer-hit fixed point) on the
// full path, while the simple path used by the estimator is plain
// arithmetic over base statistics.
package cost

import (
	"hash/fnv"
	"math"
)

// histBuckets is the number of equi-depth buckets per synthesized histogram,
// matching the double-digit bucket counts of commercial systems.
const histBuckets = 20

// Histogram is an equi-depth histogram over a synthetic integer domain
// [1, NDV]. Real deployments build histograms from data; this repository has
// no data, so histograms are synthesized deterministically from the column's
// statistics with mild skew, which keeps full-mode selectivities slightly
// different from the simple 1/NDV model — reproducing the paper's
// "inconsistent cardinality estimation" error source.
type Histogram struct {
	// bounds[i] is the upper bound of bucket i; bounds[histBuckets-1] = NDV.
	bounds [histBuckets]float64
	// rows[i] is the number of rows in bucket i.
	rows [histBuckets]float64
	ndv  float64
	tot  float64
}

// SynthesizeHistogram builds the histogram for a column with the given row
// count and NDV. The skew is derived from a hash of the seed (the column's
// qualified name) so the same schema always produces the same histogram.
func SynthesizeHistogram(rowCount, ndv float64, seed string) *Histogram {
	if ndv < 1 {
		ndv = 1
	}
	if rowCount < ndv {
		rowCount = ndv
	}
	h := &Histogram{ndv: ndv, tot: rowCount}

	hash := fnv.New64a()
	hash.Write([]byte(seed))
	state := hash.Sum64() | 1

	// Mildly skewed bucket widths: each bucket covers a share of the domain
	// drawn from [0.5, 1.5] of the uniform share, then normalized; bucket
	// row counts follow a Zipf-ish tilt seeded the same way.
	var widths, weights [histBuckets]float64
	var wsum, rsum float64
	for i := 0; i < histBuckets; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		u := float64(state>>11) / (1 << 53) // [0,1)
		widths[i] = 0.5 + u
		wsum += widths[i]
		state = state*6364136223846793005 + 1442695040888963407
		v := float64(state>>11) / (1 << 53)
		weights[i] = 0.7 + 0.6*v
		rsum += weights[i]
	}
	acc := 0.0
	for i := 0; i < histBuckets; i++ {
		acc += widths[i] / wsum * ndv
		h.bounds[i] = acc
		h.rows[i] = weights[i] / rsum * rowCount
	}
	h.bounds[histBuckets-1] = ndv
	return h
}

// SelEq estimates the selectivity of an equality predicate against the
// histogram: the average rows-per-value of the bucket holding a typical
// value, normalized by the total row count.
func (h *Histogram) SelEq() float64 {
	// Average over all buckets of rows/values — a frequency-weighted
	// uniform-within-bucket estimate.
	var sel float64
	lo := 0.0
	for i := 0; i < histBuckets; i++ {
		vals := h.bounds[i] - lo
		lo = h.bounds[i]
		if vals <= 0 {
			continue
		}
		perValue := h.rows[i] / vals
		sel += (vals / h.ndv) * (perValue / h.tot)
	}
	if sel <= 0 {
		sel = 1 / h.ndv
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// SelRange estimates the selectivity of a range predicate covering the given
// fraction of the domain, interpolating across buckets.
func (h *Histogram) SelRange(frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return 1
	}
	cut := frac * h.ndv
	var got float64
	lo := 0.0
	for i := 0; i < histBuckets; i++ {
		hi := h.bounds[i]
		switch {
		case hi <= cut:
			got += h.rows[i]
		case lo < cut:
			width := hi - lo
			if width > 0 {
				got += h.rows[i] * (cut - lo) / width
			}
		}
		lo = hi
	}
	sel := got / h.tot
	if sel > 1 {
		sel = 1
	}
	return sel
}

// NDV returns the number of distinct values the histogram was built for.
func (h *Histogram) NDV() float64 { return h.ndv }

// Rows returns the total row count the histogram was built for.
func (h *Histogram) Rows() float64 { return h.tot }

// yao estimates the number of pages touched when fetching k random rows from
// a table of n rows spread over m pages (Yao's formula, the standard
// page-access model of System R descendants).
func yao(n, m, k float64) float64 {
	if m <= 1 || k <= 0 || n <= 0 {
		return math.Min(math.Max(k, 0), math.Max(m, 1))
	}
	if k >= n {
		return m
	}
	// m * (1 - (1 - 1/m)^k)
	return m * (1 - math.Pow(1-1/m, k))
}
