package fingerprint_test

import (
	"fmt"
	"testing"

	"cote/internal/catalog"
	"cote/internal/core"
	"cote/internal/fingerprint"
	"cote/internal/opt"
	"cote/internal/query"
	"cote/internal/sqlparser"
	"cote/internal/workload"
)

// permuteBlock rebuilds blk with its FROM list reordered by perm (perm[p] =
// original table index at new position p), every alias renamed, every join
// predicate's endpoints swapped (with the operator mirrored), and implied
// predicates dropped so Finalize re-derives them. The result is a maximally
// "respelled" twin: structurally identical, syntactically unrecognizable.
func permuteBlock(t *testing.T, blk *query.Block, perm []int) *query.Block {
	t.Helper()
	qb := query.NewBuilder(blk.Name+"_perm", blk.Catalog)
	newIdx := make([]int, len(blk.Tables))
	for p, o := range perm {
		ref := blk.Tables[o]
		alias := fmt.Sprintf("pt%d", p)
		if ref.IsDerived() {
			child := ref.Derived
			childPerm := reversed(len(child.Tables))
			newIdx[o] = qb.AddDerived(permuteBlock(t, child, childPerm), alias, ref.Correlated)
		} else {
			newIdx[o] = qb.AddTable(ref.Table.Name, alias)
		}
	}
	mapCol := func(id query.ColID) query.ColID {
		ref := blk.Column(id).Ref
		return qb.ColByTableIndex(newIdx[ref.Index], int(id-ref.FirstCol))
	}
	for _, jp := range blk.JoinPreds {
		if jp.Implied {
			continue
		}
		qb.Join(mapCol(jp.Right), mapCol(jp.Left), flip(jp.Op))
	}
	for _, lp := range blk.LocalPreds {
		if lp.Implied {
			continue
		}
		if lp.Expensive {
			qb.ExpensiveFilter(mapCol(lp.Col), lp.Selectivity)
		} else {
			qb.Filter(mapCol(lp.Col), lp.Op, lp.Selectivity)
		}
	}
	for _, oj := range blk.OuterJoins {
		var req []int
		for m := oj.PredReq.Next(0); m >= 0; m = oj.PredReq.Next(m + 1) {
			req = append(req, newIdx[m])
		}
		qb.LeftOuter(newIdx[oj.NullProducing], req...)
	}
	qb.GroupBy(mapCols(mapCol, blk.GroupBy)...)
	qb.OrderBy(mapCols(mapCol, blk.OrderBy)...)
	qb.SelectCols(mapCols(mapCol, blk.Select)...)
	qb.Aggregates(blk.NumAggs)
	qb.FetchFirst(blk.FirstN)
	out, err := qb.Build()
	if err != nil {
		t.Fatalf("permute %s: %v", blk.Name, err)
	}
	return out
}

func mapCols(f func(query.ColID) query.ColID, cols []query.ColID) []query.ColID {
	out := make([]query.ColID, len(cols))
	for i, c := range cols {
		out[i] = f(c)
	}
	return out
}

func flip(op query.PredOp) query.PredOp {
	switch op {
	case query.Lt:
		return query.Gt
	case query.Gt:
		return query.Lt
	case query.Le:
		return query.Ge
	case query.Ge:
		return query.Le
	}
	return op
}

func reversed(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

func rotated(n, by int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = (i + by) % n
	}
	return out
}

// allWorkloads returns every workload shape in both the serial and the
// 4-node parallel variant — the full shape × size sweep of the paper's
// experiments.
func allWorkloads() []*workload.Workload {
	var out []*workload.Workload
	for _, nodes := range []int{1, 4} {
		out = append(out,
			workload.Linear(nodes),
			workload.Star(nodes),
			workload.Random(7, 8, 10, nodes),
			workload.Real1(nodes),
			workload.Real2(nodes),
			workload.TPCH(nodes),
		)
	}
	return out
}

// TestInvariantUnderPermutation is the heart of the invariance suite: for
// every query of every workload shape × size, a fully respelled twin
// (reversed and rotated FROM order, fresh aliases, swapped predicate
// endpoints) fingerprints identically.
func TestInvariantUnderPermutation(t *testing.T) {
	for _, w := range allWorkloads() {
		for _, q := range w.Queries {
			fp := fingerprint.Of(q.Block)
			if fp.IsZero() {
				t.Fatalf("%s/%s: zero fingerprint", w.Name, q.Name)
			}
			n := len(q.Block.Tables)
			for name, perm := range map[string][]int{"reversed": reversed(n), "rotated": rotated(n, n/2)} {
				got := fingerprint.Of(permuteBlock(t, q.Block, perm))
				if got != fp {
					t.Errorf("%s/%s: %s permutation changed fingerprint: %s vs %s",
						w.Name, q.Name, name, fp, got)
				}
			}
		}
	}
}

// TestPlanCountsInvariantUnderPermutation pins the property the caches rely
// on: fingerprint-equal blocks estimate to identical plan counts, joins and
// pairs at every level *when estimated through their canonical rebuilds*
// (raw blocks wobble sub-percent under renumbering — first-join-only
// property propagation follows the bitset numbering — which is exactly why
// the caches estimate canonical blocks). Without this a fingerprint hit
// could serve wrong numbers.
func TestPlanCountsInvariantUnderPermutation(t *testing.T) {
	levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelMediumZigZag, opt.LevelHighInner2, opt.LevelHigh}
	for _, w := range allWorkloads() {
		for _, q := range w.Queries {
			twin := permuteBlock(t, q.Block, reversed(len(q.Block.Tables)))
			ca, fpA, err := fingerprint.Canonical(q.Block)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, q.Name, err)
			}
			cb, fpB, err := fingerprint.Canonical(twin)
			if err != nil {
				t.Fatalf("%s/%s twin: %v", w.Name, q.Name, err)
			}
			if fpA != fpB {
				t.Fatalf("%s/%s: twin fingerprint differs", w.Name, q.Name)
			}
			for _, lv := range levels {
				a, err := core.EstimatePlans(ca, core.Options{Level: lv})
				if err != nil {
					t.Fatalf("%s/%s: %v", w.Name, q.Name, err)
				}
				b, err := core.EstimatePlans(cb, core.Options{Level: lv})
				if err != nil {
					t.Fatalf("%s/%s twin: %v", w.Name, q.Name, err)
				}
				if a.Counts != b.Counts || a.Joins != b.Joins || a.Pairs != b.Pairs {
					t.Errorf("%s/%s level %v: canonical counts diverge under permutation: %v/%d/%d vs %v/%d/%d",
						w.Name, q.Name, lv, a.Counts, a.Joins, a.Pairs, b.Counts, b.Joins, b.Pairs)
				}
			}
		}
	}
}

// TestCanonicalTracksRaw bounds the canonicalization wobble: the canonical
// rebuild's counts stay within 10% of the raw block's at the paper's level.
// The wobble is enumeration-order noise — cardinalities accumulate in
// numbering order, so the card-one Cartesian threshold can tip differently —
// and even two raw spellings of the same query differ by it; 10% keeps it
// well inside the estimator's own error band.
func TestCanonicalTracksRaw(t *testing.T) {
	for _, w := range allWorkloads() {
		for _, q := range w.Queries {
			cb, _, err := fingerprint.Canonical(q.Block)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, q.Name, err)
			}
			raw, err := core.EstimatePlans(q.Block, core.Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, q.Name, err)
			}
			canon, err := core.EstimatePlans(cb, core.Options{})
			if err != nil {
				t.Fatalf("%s/%s canonical: %v", w.Name, q.Name, err)
			}
			rt, ct := float64(raw.Counts.Total()), float64(canon.Counts.Total())
			if rt > 0 && (ct < 0.9*rt || ct > 1.1*rt) {
				t.Errorf("%s/%s: canonical total %v strays beyond 10%% of raw %v", w.Name, q.Name, ct, rt)
			}
		}
	}
}

// TestInvariantUnderSQLRespelling exercises the parser path: alias renames,
// literal changes, whitespace, permuted FROM and WHERE clause order.
func TestInvariantUnderSQLRespelling(t *testing.T) {
	cat := catalog.TPCH(1, 1)
	variants := []string{
		`SELECT n_name FROM customer, orders, lineitem, supplier, nation, region
		 WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND l_suppkey = s_suppkey
		   AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		   AND c_mktsegment = 'BUILDING'
		 ORDER BY n_name`,
		// Permuted FROM and WHERE order, different aliases, different
		// literal, gratuitous whitespace.
		`SELECT na.n_name
		   FROM region re, nation na, supplier su, lineitem li, orders orr, customer cu
		  WHERE na.n_regionkey = re.r_regionkey
		    AND cu.c_mktsegment = 'AUTOMOBILE'
		    AND orr.o_orderkey = li.l_orderkey
		    AND li.l_suppkey  =  su.s_suppkey
		    AND su.s_nationkey = na.n_nationkey
		    AND cu.c_custkey = orr.o_custkey
		  ORDER BY na.n_name`,
	}
	var fps []fingerprint.FP
	for i, sql := range variants {
		blk, err := sqlparser.Parse(sql, cat)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		fps = append(fps, fingerprint.Of(blk))
	}
	for i := 1; i < len(fps); i++ {
		if fps[i] != fps[0] {
			t.Errorf("variant %d fingerprint %s differs from variant 0 %s", i, fps[i], fps[0])
		}
	}
}

// TestDistinguishesStructure checks the collision side: every structural
// edit that changes what the enumerator would do must change the
// fingerprint. All variants must be pairwise distinct.
func TestDistinguishesStructure(t *testing.T) {
	cat := catalog.Warehouse1(1)
	tables := cat.TableNames()[:3]
	base := func() *query.Builder {
		qb := query.NewBuilder("d", cat)
		for i, name := range tables {
			qb.AddTable(name, fmt.Sprintf("t%d", i))
		}
		return qb
	}
	join := func(qb *query.Builder, a, b int) {
		qb.Join(qb.ColByTableIndex(a, 0), qb.ColByTableIndex(b, 0), query.Eq)
	}
	variants := map[string]*query.Block{}
	build := func(name string, f func(*query.Builder)) {
		qb := base()
		join(qb, 0, 1)
		join(qb, 1, 2)
		f(qb)
		blk, err := qb.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		variants[name] = blk
	}
	build("chain", func(qb *query.Builder) {})
	build("added_edge", func(qb *query.Builder) { join(qb, 0, 2) })
	build("range_edge", func(qb *query.Builder) {
		qb.Join(qb.ColByTableIndex(0, 1), qb.ColByTableIndex(2, 1), query.Lt)
	})
	build("local_pred", func(qb *query.Builder) {
		qb.Filter(qb.ColByTableIndex(0, 1), query.Eq, 0.01)
	})
	build("local_pred_sel", func(qb *query.Builder) {
		qb.Filter(qb.ColByTableIndex(0, 1), query.Eq, 0.5)
	})
	build("expensive_pred", func(qb *query.Builder) {
		qb.ExpensiveFilter(qb.ColByTableIndex(0, 1), 0.01)
	})
	build("outer_0_nullproduces_1", func(qb *query.Builder) { qb.LeftOuter(1, 0) })
	build("outer_flipped", func(qb *query.Builder) { qb.LeftOuter(0, 1) })
	build("order_by", func(qb *query.Builder) { qb.OrderBy(qb.ColByTableIndex(1, 0)) })
	build("order_by_other_col", func(qb *query.Builder) { qb.OrderBy(qb.ColByTableIndex(1, 1)) })
	build("group_by", func(qb *query.Builder) { qb.GroupBy(qb.ColByTableIndex(1, 0)) })
	build("fetch_first", func(qb *query.Builder) { qb.FetchFirst(10) })
	build("aggregates", func(qb *query.Builder) { qb.Aggregates(2) })

	// A different third table: same graph shape, different statistics.
	{
		qb := query.NewBuilder("d", cat)
		qb.AddTable(tables[0], "t0")
		qb.AddTable(tables[1], "t1")
		qb.AddTable(cat.TableNames()[3], "t2")
		join(qb, 0, 1)
		join(qb, 1, 2)
		blk, err := qb.Build()
		if err != nil {
			t.Fatal(err)
		}
		variants["swapped_table"] = blk
	}

	fps := map[string]fingerprint.FP{}
	for name, blk := range variants {
		fps[name] = fingerprint.Of(blk)
	}
	names := make([]string, 0, len(fps))
	for name := range fps {
		names = append(names, name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if fps[names[i]] == fps[names[j]] {
				t.Errorf("variants %q and %q collide on %s", names[i], names[j], fps[names[i]])
			}
		}
	}
}

// TestSerialVsParallelCatalogsDiffer pins that the same query shape over
// the serial and the partitioned variant of a schema fingerprints
// differently — partitioning keys are structural (they seed partition
// properties).
func TestSerialVsParallelCatalogsDiffer(t *testing.T) {
	q1 := workload.Star(1).Queries[0]
	q4 := workload.Star(4).Queries[0]
	if fingerprint.Of(q1.Block) == fingerprint.Of(q4.Block) {
		t.Error("serial and 4-node partitioned star query share a fingerprint")
	}
}

// TestIdenticalSchemasShare pins the cross-catalog sharing property the
// service cache exploits: the same query over two separately built but
// identical catalogs fingerprints identically (names don't matter, stats
// do).
func TestIdenticalSchemasShare(t *testing.T) {
	mk := func(name string) *catalog.Catalog {
		b := catalog.NewBuilder(name)
		b.Table("a", 1000)
		b.Column("x", 100)
		b.Column("y", 10)
		b.Table("b", 500)
		b.Column("x", 100)
		return b.Build()
	}
	parse := func(cat *catalog.Catalog) *query.Block {
		return sqlparser.MustParse(`SELECT a.y FROM a, b WHERE a.x = b.x`, cat)
	}
	if fingerprint.Of(parse(mk("one"))) != fingerprint.Of(parse(mk("two"))) {
		t.Error("identical schemas under different catalog names fingerprint differently")
	}
}

// TestDeterministicAcrossRebuilds guards against map-iteration order leaking
// into the fingerprint (Finalize appends implied predicates in map order).
func TestDeterministicAcrossRebuilds(t *testing.T) {
	cat := catalog.TPCH(1, 1)
	sql := `SELECT c_name FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND o_custkey = l_orderkey AND c_custkey = l_orderkey`
	want := fingerprint.Of(sqlparser.MustParse(sql, cat))
	for i := 0; i < 20; i++ {
		if got := fingerprint.Of(sqlparser.MustParse(sql, cat)); got != want {
			t.Fatalf("rebuild %d: fingerprint %s != %s", i, got, want)
		}
	}
}
