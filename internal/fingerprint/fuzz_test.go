package fingerprint

import (
	"testing"

	"cote/internal/catalog"
	"cote/internal/sqlparser"
)

// FuzzFingerprint drives the canonicalization pipeline with parser-accepted
// queries and checks its algebraic contract on every one:
//
//   - Of never panics and never returns the zero fingerprint for a real
//     block;
//   - Canonical agrees with Of, and the canonical rebuild is a fixpoint —
//     re-fingerprinting and re-canonicalizing the rebuilt block changes
//     nothing. (The caches depend on exactly this: they estimate the
//     canonical block and index it by fingerprint, so a drifting rebuild
//     would split or corrupt cache entries.)
//
// The SQL surface is the natural fuzz alphabet here: mutations produce
// structurally diverse-but-valid blocks (self joins, repeated tables,
// degenerate predicates) far faster than hand-built query.Builder calls.
func FuzzFingerprint(f *testing.F) {
	f.Add("SELECT c_name FROM customer")
	f.Add("SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey")
	f.Add("SELECT a.c_name FROM customer a, customer b WHERE a.c_custkey = b.c_custkey")
	f.Add("SELECT c_name FROM customer, orders, lineitem WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey GROUP BY c_name")
	cat := catalog.TPCH(1, 1)
	f.Fuzz(func(t *testing.T, sql string) {
		blk, err := sqlparser.Parse(sql, cat)
		if err != nil {
			return // parser rejects; nothing to fingerprint
		}
		fp := Of(blk)
		if fp.IsZero() {
			t.Fatal("real block fingerprinted to zero")
		}
		cb, cfp, err := Canonical(blk)
		if err != nil {
			t.Fatalf("canonical rebuild failed: %v", err)
		}
		if cfp != fp {
			t.Fatalf("Canonical fingerprint %s != Of %s", cfp, fp)
		}
		if got := Of(cb); got != fp {
			t.Fatalf("canonical block re-fingerprints to %s, want %s", got, fp)
		}
		// Fixpoint: canonicalizing the canonical block must be stable.
		cb2, cfp2, err := Canonical(cb)
		if err != nil {
			t.Fatalf("re-canonicalizing the canonical block failed: %v", err)
		}
		if cfp2 != fp {
			t.Fatalf("second canonicalization drifted: %s != %s", cfp2, fp)
		}
		if got := Of(cb2); got != fp {
			t.Fatalf("double-canonical block re-fingerprints to %s, want %s", got, fp)
		}
	})
}
