// Package fingerprint computes a canonical 128-bit structural hash of a
// query block — the key of the cross-query memoization layer.
//
// COTE's output for a query depends only on its *structure*: the join graph
// (edges with their operators and column statistics), the per-table local
// predicate shapes, the outer-join restrictions, and the clauses that seed
// interesting orders and partitions (GROUP BY / ORDER BY / FETCH FIRST,
// index and partitioning keys). It does not depend on how tables are
// spelled, which aliases they go by, in what order the FROM list mentions
// them, or what constants the predicates compare against (constants enter
// only through selectivities, which the parser derives from column NDVs).
// Two blocks with equal fingerprints therefore produce identical plan
// counts at any optimization level, so a repeat fingerprint can skip join
// enumeration entirely.
//
// # Canonicalization
//
// The hard part is quantifier renaming: the same structure must hash
// identically no matter how the block happens to number its tables. The
// package canonicalizes the join graph with color refinement
// (Weisfeiler-Lehman style) plus individualization:
//
//  1. Every table starts with a color hashed from its label-free local
//     signature: base-table row count (or the recursive fingerprint of a
//     derived table's block), index column shapes, partitioning keys,
//     local-predicate multiset, and its appearances in the GROUP BY /
//     ORDER BY / select clauses.
//  2. Colors are refined iteratively: each round rehashes a table's color
//     with the sorted multiset of (edge attributes, neighbor color) over
//     its join predicates and outer-join constraints, until the color
//     partition stabilizes.
//  3. While colors remain tied, one member of the smallest tied class is
//     individualized (given a fresh color) and refinement reruns. Tied
//     tables are symmetric in practice (star satellites, self-join arms),
//     so the choice of member does not change the final encoding.
//
// The resulting total color order is a canonical table numbering. The block
// is then serialized exactly — every table, predicate, constraint and
// clause under canonical numbers, with per-edge sorting where order is
// semantically irrelevant — and hashed with FNV-128a. Distinct structures
// produce distinct encodings by construction, so fingerprint collisions
// require a 128-bit hash collision.
//
// # Canonical blocks
//
// Equal fingerprints guarantee equal structure, but the enumerator's plan
// counts are not perfectly invariant under table renumbering: first-join-only
// property propagation (DB2 experience item 4) makes the propagated order
// lists depend on which join reaches a MEMO entry first, which follows the
// bitset numbering — measurably a sub-percent wobble on large blocks.
// Canonical therefore rebuilds a block with tables renumbered into canonical
// order and predicates canonically sorted. Two fingerprint-equal blocks
// rebuild into bit-identical canonical blocks, so estimating the canonical
// block (as the caches do) makes "fingerprint equality ⇒ identical plan
// counts" hold by construction.
package fingerprint

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"slices"

	"cote/internal/query"
)

// FP is a 128-bit structural fingerprint. It is comparable and suitable as
// a map key.
type FP struct {
	Hi, Lo uint64
}

// String renders the fingerprint as 32 hex digits.
func (f FP) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// IsZero reports whether the fingerprint is the zero value (no real
// fingerprint hashes to zero in practice; the zero value means "absent").
func (f FP) IsZero() bool { return f == FP{} }

// Of computes the structural fingerprint of a block. The block must be
// finalized (implied predicates present — they are part of the structure
// the enumerator sees). Nested blocks are fingerprinted recursively; the
// child fingerprints stand in for the derived tables in the parent's
// encoding.
func Of(blk *query.Block) FP {
	childFPs, rank := analyze(blk)
	return hashEncoding(encodeBlock(blk, rank, childFPs))
}

// Canonical returns a structurally identical rebuild of blk — tables
// renumbered into canonical fingerprint order under fresh aliases,
// predicates canonically sorted, implied predicates re-derived — together
// with the fingerprint. Any two blocks with equal fingerprints rebuild into
// identical canonical blocks, so plan counts computed over the canonical
// block depend only on the fingerprint (see the package comment). The error
// path is defensive: rebuilding a block the query package already accepted
// cannot ordinarily fail.
func Canonical(blk *query.Block) (*query.Block, FP, error) {
	childFPs, rank := analyze(blk)
	fp := hashEncoding(encodeBlock(blk, rank, childFPs))
	cb, err := rebuild(blk, rank)
	if err != nil {
		return nil, fp, err
	}
	return cb, fp, nil
}

// analyze fingerprints nested blocks and computes the canonical numbering.
func analyze(blk *query.Block) ([]FP, []int) {
	childFPs := make([]FP, blk.NumTables())
	for i, t := range blk.Tables {
		if t.IsDerived() {
			childFPs[i] = Of(t.Derived)
		}
	}
	return childFPs, canonicalOrder(blk, childFPs)
}

func hashEncoding(enc []byte) FP {
	h := fnv.New128a()
	h.Write(enc)
	var sum [16]byte
	s := h.Sum(sum[:0])
	return FP{Hi: binary.BigEndian.Uint64(s[:8]), Lo: binary.BigEndian.Uint64(s[8:])}
}

// encVersion guards the encoding layout: bump it whenever the byte format
// changes so stale persisted fingerprints (if any ever exist) cannot alias
// new ones.
const encVersion = 1

// Domain-separation tags mixed into color and encoding hashes.
const (
	tagBase uint64 = 0x6261_7365 + iota<<32
	tagDerived
	tagIndex
	tagPartition
	tagLocalPred
	tagGroupBy
	tagOrderBy
	tagSelect
	tagOJNullProducing
	tagOJPredReq
	tagIndividualize
)

// mix folds v into h with a splitmix64-style finalizer — cheap, and strong
// enough that refinement colors only collide with negligible probability
// (and a color collision merely coarsens the partition; the final encoding
// is exact either way).
func mix(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// foldSorted sorts vs and folds them into h — the order-insensitive multiset
// combine used for neighbor contributions and per-table predicate sets.
func foldSorted(h uint64, vs []uint64) uint64 {
	slices.Sort(vs)
	for _, v := range vs {
		h = mix(h, v)
	}
	return h
}

func fbits(x float64) uint64 { return math.Float64bits(x) }

// colOrd returns the position of column id within its table reference —
// the alias-free column identity.
func colOrd(blk *query.Block, id query.ColID) uint64 {
	c := blk.Column(id)
	return uint64(id - c.Ref.FirstCol)
}

func colNDV(blk *query.Block, id query.ColID) uint64 {
	return fbits(blk.Column(id).Col.NDV)
}

// flip mirrors a predicate operator for swapped operands (a < b ≡ b > a).
func flip(op query.PredOp) query.PredOp {
	switch op {
	case query.Lt:
		return query.Gt
	case query.Gt:
		return query.Lt
	case query.Le:
		return query.Ge
	case query.Ge:
		return query.Le
	}
	return op
}

// canonicalOrder returns rank[i] = canonical position of table i, computed
// by color refinement with individualization over the join graph.
func canonicalOrder(blk *query.Block, childFPs []FP) []int {
	n := blk.NumTables()
	rank := make([]int, n)
	if n == 1 {
		return rank
	}

	colors := initialColors(blk, childFPs)

	// Per-predicate edge attributes, oriented from each endpoint's
	// perspective, computed once.
	type edge struct {
		lt, rt         int
		attrLt, attrRt uint64
	}
	edges := make([]edge, len(blk.JoinPreds))
	for i, p := range blk.JoinPreds {
		lt, rt := blk.TableOf(p.Left), blk.TableOf(p.Right)
		implied := uint64(0)
		if p.Implied {
			implied = 1
		}
		lo, ln := colOrd(blk, p.Left), colNDV(blk, p.Left)
		ro, rn := colOrd(blk, p.Right), colNDV(blk, p.Right)
		aL := mix(mix(mix(mix(mix(uint64(p.Op), lo), ln), ro), rn), implied)
		aR := mix(mix(mix(mix(mix(uint64(flip(p.Op)), ro), rn), lo), ln), implied)
		edges[i] = edge{lt: lt, rt: rt, attrLt: aL, attrRt: aR}
	}

	contribs := make([][]uint64, n)
	reqColors := make([]uint64, 0, n)
	refineRound := func() {
		for i := range contribs {
			contribs[i] = contribs[i][:0]
		}
		for _, e := range edges {
			contribs[e.lt] = append(contribs[e.lt], mix(e.attrLt, colors[e.rt]))
			contribs[e.rt] = append(contribs[e.rt], mix(e.attrRt, colors[e.lt]))
		}
		for _, oj := range blk.OuterJoins {
			reqColors = reqColors[:0]
			for m := oj.PredReq.Next(0); m >= 0; m = oj.PredReq.Next(m + 1) {
				reqColors = append(reqColors, colors[m])
				contribs[m] = append(contribs[m], mix(tagOJPredReq, colors[oj.NullProducing]))
			}
			contribs[oj.NullProducing] = append(contribs[oj.NullProducing],
				foldSorted(tagOJNullProducing, reqColors))
		}
		for i := range colors {
			colors[i] = foldSorted(colors[i], contribs[i])
		}
	}

	// classes maps colors to dense class ids (by table index discovery
	// order — used only to detect whether the partition changed, never for
	// ordering, so the index dependence is harmless).
	classes := func() []int {
		ids := make(map[uint64]int, n)
		out := make([]int, n)
		for i, c := range colors {
			id, ok := ids[c]
			if !ok {
				id = len(ids)
				ids[c] = id
			}
			out[i] = id
		}
		return out
	}

	// refine runs rounds until the color partition stabilizes.
	refine := func() {
		prev := classes()
		for r := 0; r < n; r++ {
			refineRound()
			cur := classes()
			if slices.Equal(cur, prev) {
				break
			}
			prev = cur
		}
	}

	refine()

	// Individualize while ties remain: give one member of the smallest tied
	// color class a fresh color and re-refine. Tied members are symmetric
	// (or the graph is one of the regular corner cases refinement cannot
	// split — there the choice below may vary with input numbering, costing
	// a cache miss on an exotic isomorph, never a wrong answer).
	for round := 0; ; round++ {
		counts := make(map[uint64]int, n)
		for _, c := range colors {
			counts[c]++
		}
		var tied uint64
		found := false
		for _, c := range colors {
			if counts[c] > 1 && (!found || c < tied) {
				tied, found = c, true
			}
		}
		if !found || round > 2*n {
			break
		}
		for i, c := range colors {
			if c == tied {
				colors[i] = mix(mix(tagIndividualize, uint64(round)), c)
				break
			}
		}
		refine()
	}

	// Total order by final color; ties broken by index (unreachable unless
	// the individualization loop bailed out).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if colors[a] != colors[b] {
			if colors[a] < colors[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	for pos, i := range idx {
		rank[i] = pos
	}
	return rank
}

// initialColors seeds each table's color from its label-free local
// signature: everything about the table that influences estimation except
// its join-graph context (which refinement adds).
func initialColors(blk *query.Block, childFPs []FP) []uint64 {
	colors := make([]uint64, blk.NumTables())
	var scratch []uint64
	for i, t := range blk.Tables {
		h := uint64(0x636f7465) // base seed
		if t.IsDerived() {
			h = mix(h, tagDerived)
			h = mix(h, childFPs[i].Hi)
			h = mix(h, childFPs[i].Lo)
			if t.Correlated {
				h = mix(h, 1)
			}
		} else {
			h = mix(h, tagBase)
			h = mix(h, fbits(t.Table.RowCount))
			// Index shapes (ordered column sequences) as a multiset.
			scratch = scratch[:0]
			for _, ix := range t.Table.Indexes {
				ih := tagIndex
				if ix.Unique {
					ih = mix(ih, 1)
				}
				for _, name := range ix.Columns {
					c := t.Table.MustColumn(name)
					ih = mix(mix(ih, uint64(c.Ordinal)), fbits(c.NDV))
				}
				scratch = append(scratch, ih)
			}
			h = foldSorted(h, scratch)
			if p := t.Table.Partitioning; p != nil {
				ph := mix(tagPartition, uint64(p.Nodes))
				for _, name := range p.Columns {
					ph = mix(ph, uint64(t.Table.MustColumn(name).Ordinal))
				}
				h = mix(h, ph)
			}
		}
		colors[i] = h
	}
	// Local predicates contribute per owning table as a multiset.
	perTable := make([][]uint64, blk.NumTables())
	for _, lp := range blk.LocalPreds {
		ti := blk.TableOf(lp.Col)
		ph := mix(tagLocalPred, uint64(lp.Op))
		ph = mix(ph, colOrd(blk, lp.Col))
		ph = mix(ph, fbits(lp.Selectivity))
		if lp.Implied {
			ph = mix(ph, 1)
		}
		if lp.Expensive {
			ph = mix(ph, 2)
		}
		perTable[ti] = append(perTable[ti], ph)
	}
	// Clause appearances: position within the clause matters and is
	// invariant under table renaming, so it is part of the contribution.
	clause := func(tag uint64, cols []query.ColID) {
		for pos, id := range cols {
			ti := blk.TableOf(id)
			perTable[ti] = append(perTable[ti],
				mix(mix(mix(tag, uint64(pos)), colOrd(blk, id)), colNDV(blk, id)))
		}
	}
	clause(tagGroupBy, blk.GroupBy)
	clause(tagOrderBy, blk.OrderBy)
	clause(tagSelect, blk.Select)
	for i := range colors {
		colors[i] = foldSorted(colors[i], perTable[i])
	}
	return colors
}

// encoder accumulates the canonical byte string.
type encoder struct{ buf []byte }

func (e *encoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *encoder) words(vs ...uint64) {
	for _, v := range vs {
		e.u64(v)
	}
}

// encodeBlock serializes the block exactly under canonical table numbering.
func encodeBlock(blk *query.Block, rank []int, childFPs []FP) []byte {
	n := blk.NumTables()
	inv := make([]int, n) // canonical position -> table index
	for i, r := range rank {
		inv[r] = i
	}

	var e encoder
	e.words(encVersion, uint64(n))

	// Tables in canonical order.
	for pos := 0; pos < n; pos++ {
		t := blk.Tables[inv[pos]]
		if t.IsDerived() {
			corr := uint64(0)
			if t.Correlated {
				corr = 1
			}
			e.words(tagDerived, childFPs[t.Index].Hi, childFPs[t.Index].Lo, corr)
			continue
		}
		e.words(tagBase, fbits(t.Table.RowCount))
		// Indexes and partitioning, as in the color seed but written
		// explicitly (sorted hashes — index order in the schema is not
		// structural).
		var ixs []uint64
		for _, ix := range t.Table.Indexes {
			ih := tagIndex
			if ix.Unique {
				ih = mix(ih, 1)
			}
			for _, name := range ix.Columns {
				c := t.Table.MustColumn(name)
				ih = mix(mix(ih, uint64(c.Ordinal)), fbits(c.NDV))
			}
			ixs = append(ixs, ih)
		}
		slices.Sort(ixs)
		e.u64(uint64(len(ixs)))
		e.words(ixs...)
		if p := t.Table.Partitioning; p != nil {
			e.words(tagPartition, uint64(p.Nodes), uint64(len(p.Columns)))
			for _, name := range p.Columns {
				e.u64(uint64(t.Table.MustColumn(name).Ordinal))
			}
		} else {
			e.u64(0)
		}
	}

	// col writes a column reference as (canonical table, ordinal, NDV).
	col := func(id query.ColID) [3]uint64 {
		return [3]uint64{uint64(rank[blk.TableOf(id)]), colOrd(blk, id), colNDV(blk, id)}
	}

	// Local predicates: sorted tuple list (order in the block is not
	// structural — Finalize appends implied predicates in map order).
	lps := make([][6]uint64, 0, len(blk.LocalPreds))
	for _, lp := range blk.LocalPreds {
		c := col(lp.Col)
		flags := uint64(0)
		if lp.Implied {
			flags |= 1
		}
		if lp.Expensive {
			flags |= 2
		}
		lps = append(lps, [6]uint64{c[0], c[1], uint64(lp.Op), fbits(lp.Selectivity), flags, c[2]})
	}
	slices.SortFunc(lps, func(a, b [6]uint64) int { return slices.Compare(a[:], b[:]) })
	e.u64(uint64(len(lps)))
	for _, lp := range lps {
		e.words(lp[:]...)
	}

	// Join predicates: canonical endpoint orientation (smaller canonical
	// column first, operator mirrored when swapped), then sorted.
	jps := make([][8]uint64, 0, len(blk.JoinPreds))
	for _, jp := range blk.JoinPreds {
		l, r := col(jp.Left), col(jp.Right)
		op := jp.Op
		if slices.Compare(l[:2], r[:2]) > 0 {
			l, r = r, l
			op = flip(op)
		}
		implied := uint64(0)
		if jp.Implied {
			implied = 1
		}
		jps = append(jps, [8]uint64{l[0], l[1], r[0], r[1], uint64(op), implied, l[2], r[2]})
	}
	slices.SortFunc(jps, func(a, b [8]uint64) int { return slices.Compare(a[:], b[:]) })
	e.u64(uint64(len(jps)))
	for _, jp := range jps {
		e.words(jp[:]...)
	}

	// Outer joins: (canonical null-producing table, sorted canonical
	// PredReq members), sorted.
	ojs := make([][]uint64, 0, len(blk.OuterJoins))
	for _, oj := range blk.OuterJoins {
		row := []uint64{uint64(rank[oj.NullProducing])}
		for m := oj.PredReq.Next(0); m >= 0; m = oj.PredReq.Next(m + 1) {
			row = append(row, uint64(rank[m]))
		}
		slices.Sort(row[1:])
		ojs = append(ojs, row)
	}
	slices.SortFunc(ojs, func(a, b []uint64) int { return slices.Compare(a, b) })
	e.u64(uint64(len(ojs)))
	for _, row := range ojs {
		e.u64(uint64(len(row)))
		e.words(row...)
	}

	// Ordered clauses: element order is semantic, so it is preserved.
	clause := func(tag uint64, cols []query.ColID) {
		e.words(tag, uint64(len(cols)))
		for _, id := range cols {
			c := col(id)
			e.words(c[:]...)
		}
	}
	clause(tagGroupBy, blk.GroupBy)
	clause(tagOrderBy, blk.OrderBy)
	clause(tagSelect, blk.Select)
	e.words(uint64(blk.NumAggs), uint64(blk.FirstN))
	return e.buf
}

// rebuild reconstructs blk under canonical table numbering: tables are added
// in canonical order under positional aliases, non-implied predicates are
// added in canonically sorted order (implied ones are re-derived by
// Finalize from the same inputs, so they come out identical), and nested
// blocks are rebuilt recursively. The output is a pure function of the
// fingerprint encoding.
func rebuild(blk *query.Block, rank []int) (*query.Block, error) {
	n := blk.NumTables()
	inv := make([]int, n)
	for i, r := range rank {
		inv[r] = i
	}
	qb := query.NewBuilder(blk.Name, blk.Catalog)
	for pos := 0; pos < n; pos++ {
		ref := blk.Tables[inv[pos]]
		alias := fmt.Sprintf("q%d", pos)
		if ref.IsDerived() {
			child, _, err := Canonical(ref.Derived)
			if err != nil {
				return nil, err
			}
			qb.AddDerived(child, alias, ref.Correlated)
		} else {
			qb.AddTable(ref.Table.Name, alias)
		}
	}
	mapCol := func(id query.ColID) query.ColID {
		ref := blk.Column(id).Ref
		return qb.ColByTableIndex(rank[ref.Index], int(id-ref.FirstCol))
	}

	// Join predicates in canonical orientation and canonically sorted order
	// — the same tuples the encoding writes, so two fingerprint-equal blocks
	// add them identically.
	type jp struct {
		key         [6]uint64
		left, right query.ColID
		op          query.PredOp
	}
	var jps []jp
	for _, p := range blk.JoinPreds {
		if p.Implied {
			continue
		}
		l := [2]uint64{uint64(rank[blk.TableOf(p.Left)]), colOrd(blk, p.Left)}
		r := [2]uint64{uint64(rank[blk.TableOf(p.Right)]), colOrd(blk, p.Right)}
		left, right, op := p.Left, p.Right, p.Op
		if slices.Compare(l[:], r[:]) > 0 {
			l, r = r, l
			left, right = right, left
			op = flip(op)
		}
		jps = append(jps, jp{key: [6]uint64{l[0], l[1], r[0], r[1], uint64(op), 0}, left: left, right: right, op: op})
	}
	slices.SortFunc(jps, func(a, b jp) int { return slices.Compare(a.key[:], b.key[:]) })
	for _, p := range jps {
		qb.Join(mapCol(p.left), mapCol(p.right), p.op)
	}

	type lp struct {
		key  [5]uint64
		pred query.LocalPred
	}
	var lps []lp
	for _, p := range blk.LocalPreds {
		if p.Implied {
			continue
		}
		exp := uint64(0)
		if p.Expensive {
			exp = 1
		}
		lps = append(lps, lp{
			key:  [5]uint64{uint64(rank[blk.TableOf(p.Col)]), colOrd(blk, p.Col), uint64(p.Op), fbits(p.Selectivity), exp},
			pred: p,
		})
	}
	slices.SortFunc(lps, func(a, b lp) int { return slices.Compare(a.key[:], b.key[:]) })
	for _, p := range lps {
		if p.pred.Expensive {
			qb.ExpensiveFilter(mapCol(p.pred.Col), p.pred.Selectivity)
		} else {
			qb.Filter(mapCol(p.pred.Col), p.pred.Op, p.pred.Selectivity)
		}
	}

	type oj struct {
		key  []uint64
		null int
		req  []int
	}
	var ojs []oj
	for _, o := range blk.OuterJoins {
		row := oj{null: rank[o.NullProducing], key: []uint64{uint64(rank[o.NullProducing])}}
		for m := o.PredReq.Next(0); m >= 0; m = o.PredReq.Next(m + 1) {
			row.req = append(row.req, rank[m])
		}
		slices.Sort(row.req)
		for _, r := range row.req {
			row.key = append(row.key, uint64(r))
		}
		ojs = append(ojs, row)
	}
	slices.SortFunc(ojs, func(a, b oj) int { return slices.Compare(a.key, b.key) })
	for _, o := range ojs {
		qb.LeftOuter(o.null, o.req...)
	}

	mapCols := func(cols []query.ColID) []query.ColID {
		out := make([]query.ColID, len(cols))
		for i, c := range cols {
			out[i] = mapCol(c)
		}
		return out
	}
	qb.GroupBy(mapCols(blk.GroupBy)...)
	qb.OrderBy(mapCols(blk.OrderBy)...)
	qb.SelectCols(mapCols(blk.Select)...)
	qb.Aggregates(blk.NumAggs)
	qb.FetchFirst(blk.FirstN)
	return qb.Build()
}
