package resource

import (
	"sync"
	"testing"
)

func TestChargeReleasePeak(t *testing.T) {
	a := New()
	a.Charge(KindMemoEntry, 100)
	a.Charge(KindPlan, 50)
	if got := a.Used(); got != 150 {
		t.Fatalf("Used = %d, want 150", got)
	}
	a.Release(KindPlan, 50)
	if got := a.Used(); got != 100 {
		t.Fatalf("Used after release = %d, want 100", got)
	}
	if got := a.Peak(); got != 150 {
		t.Fatalf("Peak = %d, want 150", got)
	}
	if got := a.KindPeak(KindPlan); got != 50 {
		t.Fatalf("KindPeak(plans) = %d, want 50", got)
	}
	if got := a.KindUsed(KindPlan); got != 0 {
		t.Fatalf("KindUsed(plans) = %d, want 0", got)
	}
}

func TestDurableExcludesScratch(t *testing.T) {
	a := New()
	a.Charge(KindMemoEntry, 10)
	a.Charge(KindProperty, 4)
	a.Charge(KindScratch, 1000)
	if got := a.DurableUsed(); got != 14 {
		t.Fatalf("DurableUsed = %d, want 14", got)
	}
	if got := a.DurablePeak(); got != 14 {
		t.Fatalf("DurablePeak = %d, want 14", got)
	}
	if got := a.Used(); got != 1014 {
		t.Fatalf("Used = %d, want 1014", got)
	}
	a.Release(KindScratch, 1000)
	if got := a.Peak(); got != 1014 {
		t.Fatalf("Peak = %d, want 1014", got)
	}
}

func TestNilAccountantIsSafe(t *testing.T) {
	var a *Accountant
	a.Charge(KindPlan, 10)
	a.Release(KindPlan, 10)
	a.Reset()
	if a.Used() != 0 || a.Peak() != 0 || a.DurableUsed() != 0 || a.DurablePeak() != 0 {
		t.Fatal("nil accountant must read as zero")
	}
	if a.KindUsed(KindPlan) != 0 || a.KindPeak(KindScratch) != 0 {
		t.Fatal("nil accountant kind reads must be zero")
	}
	if s := a.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
}

func TestResetZeroesEverything(t *testing.T) {
	a := New()
	a.Charge(KindMemoEntry, 7)
	a.Charge(KindScratch, 9)
	a.Release(KindScratch, 9)
	a.Reset()
	s := a.Snapshot()
	if s != (Snapshot{}) {
		t.Fatalf("snapshot after Reset = %+v, want zero", s)
	}
}

func TestSnapshotKinds(t *testing.T) {
	a := New()
	a.Charge(KindPlan, 64)
	a.Charge(KindScratch, 32)
	s := a.Snapshot()
	if s.Kinds[KindPlan].PeakBytes != 64 || s.Kinds[KindScratch].UsedBytes != 32 {
		t.Fatalf("snapshot kinds = %+v", s.Kinds)
	}
	if s.UsedBytes != 96 || s.DurableUsedBytes != 64 {
		t.Fatalf("snapshot totals = %+v", s)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindMemoEntry: "memo_entries",
		KindPlan:      "plans",
		KindProperty:  "properties",
		KindScratch:   "scratch",
		NumKinds:      "unknown",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, s)
		}
	}
	if KindScratch.Durable() {
		t.Error("scratch must not be durable")
	}
	if !KindPlan.Durable() || !KindMemoEntry.Durable() || !KindProperty.Durable() {
		t.Error("non-scratch kinds must be durable")
	}
}

// TestConcurrentCharges exercises the CAS peak loop under -race and checks
// the books balance after symmetric charge/release pairs.
func TestConcurrentCharges(t *testing.T) {
	a := New()
	const workers, rounds = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				a.Charge(KindScratch, 16)
				a.Charge(KindPlan, 8)
				a.Release(KindScratch, 16)
			}
		}()
	}
	wg.Wait()
	if got := a.KindUsed(KindScratch); got != 0 {
		t.Fatalf("scratch used = %d, want 0", got)
	}
	wantPlans := int64(workers * rounds * 8)
	if got := a.KindUsed(KindPlan); got != wantPlans {
		t.Fatalf("plan used = %d, want %d", got, wantPlans)
	}
	if got := a.Peak(); got < wantPlans {
		t.Fatalf("peak = %d, want >= %d", got, wantPlans)
	}
}
