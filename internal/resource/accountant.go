// Package resource is the unified resource-accounting layer of the
// optimizer: every allocation site on the optimize and estimate paths — MEMO
// entries and their index bookkeeping, retained plans, interesting-property
// lists, plan arenas and scratch buffers — charges one Accountant, giving a
// single audited seam where optimizer memory is measured, budgeted and
// observed. The paper's Section 6.2 names optimizer memory estimation as a
// first-class application of the plan-count estimator; this package supplies
// the measured side of that comparison.
//
// Charges are split into two classes:
//
//   - durable kinds measure logical MEMO content — entries, retained plans,
//     property values — at fixed per-structure byte sizes. Durable charges
//     happen at deterministic points (entry creation, canonical-order plan
//     commit), so the durable high-water mark is bit-identical across runs,
//     pool states and parallelism degrees: it is the quantity
//     core.EstimateMemory predicts and the calibration loop fits against.
//   - KindScratch measures working memory newly allocated by the run: arena
//     chunks and scratch-buffer capacity. Pooled capacity reused within a
//     run (the arena free list, recycled buffers) is charged once when
//     created, never again per borrow; capacity inherited from the pool is
//     charged once when the run attaches it. Scratch is allocator-level and
//     therefore excluded from the determinism guarantee.
//
// The hot path is zero-alloc: an Accountant is a fixed block of atomic
// gauges, typically embedded by value in the per-run execution context, and
// every method is nil-receiver-safe so uninstrumented runs pay a single nil
// check per charge site.
package resource

import "sync/atomic"

// Kind classifies a charge by the structure that owns the bytes.
type Kind int

// The charge kinds.
const (
	// KindMemoEntry covers MEMO entries plus their index bookkeeping: the
	// entry struct, its map slot, its size-class slot and its posting-list
	// ordinals.
	KindMemoEntry Kind = iota
	// KindPlan covers plans retained in MEMO entries (inserted and not yet
	// pruned). Charged at commit time, in canonical enumeration order.
	KindPlan
	// KindProperty covers interesting-property list values (the paper's ~4
	// bytes per order/partition value, Section 3.4).
	KindProperty
	// KindScratch covers run working memory: plan-arena chunks and reusable
	// scratch buffers. Allocator-level, not part of the durable mark.
	KindScratch
	NumKinds
)

// String names the kind as it appears in metrics.
func (k Kind) String() string {
	switch k {
	case KindMemoEntry:
		return "memo_entries"
	case KindPlan:
		return "plans"
	case KindProperty:
		return "properties"
	case KindScratch:
		return "scratch"
	}
	return "unknown"
}

// Durable reports whether the kind counts toward the deterministic durable
// high-water mark (everything but scratch).
func (k Kind) Durable() bool { return k != KindScratch }

// gauge is an atomic usage counter with a high-water mark.
type gauge struct {
	used atomic.Int64
	peak atomic.Int64
}

// add moves the gauge by n (negative releases) and advances the peak.
func (g *gauge) add(n int64) {
	u := g.used.Add(n)
	for {
		p := g.peak.Load()
		if u <= p || g.peak.CompareAndSwap(p, u) {
			return
		}
	}
}

// KindStats is one kind's snapshot.
type KindStats struct {
	UsedBytes int64 `json:"used_bytes"`
	PeakBytes int64 `json:"peak_bytes"`
}

// Snapshot is a point-in-time copy of every gauge.
type Snapshot struct {
	// UsedBytes / PeakBytes cover all kinds, scratch included.
	UsedBytes int64 `json:"used_bytes"`
	PeakBytes int64 `json:"peak_bytes"`
	// DurableUsedBytes / DurablePeakBytes cover the deterministic logical
	// MEMO content only — the measured side of core.EstimateMemory.
	DurableUsedBytes int64 `json:"durable_used_bytes"`
	DurablePeakBytes int64 `json:"durable_peak_bytes"`
	// Kinds indexes per-structure stats by Kind.
	Kinds [NumKinds]KindStats `json:"-"`
}

// Accountant tracks the bytes the optimizer's data structures hold: a total
// gauge, a durable gauge, and one gauge per kind, each with its high-water
// mark. The zero value is ready to use; all methods are goroutine-safe and
// nil-receiver-safe (a nil Accountant ignores charges and reads as zero).
type Accountant struct {
	total   gauge
	durable gauge
	kinds   [NumKinds]gauge
}

// New returns a zeroed Accountant. Embedding one by value (as optctx.Ctx
// does) avoids even this allocation.
func New() *Accountant { return &Accountant{} }

// Charge records n bytes of kind k coming into use. Negative n releases.
func (a *Accountant) Charge(k Kind, n int64) {
	if a == nil || n == 0 {
		return
	}
	a.kinds[k].add(n)
	a.total.add(n)
	if k.Durable() {
		a.durable.add(n)
	}
}

// Release records n bytes of kind k going out of use.
func (a *Accountant) Release(k Kind, n int64) { a.Charge(k, -n) }

// Used returns the bytes currently in use across all kinds.
func (a *Accountant) Used() int64 {
	if a == nil {
		return 0
	}
	return a.total.used.Load()
}

// Peak returns the high-water mark of Used.
func (a *Accountant) Peak() int64 {
	if a == nil {
		return 0
	}
	return a.total.peak.Load()
}

// DurableUsed returns the logical MEMO content bytes currently in use.
func (a *Accountant) DurableUsed() int64 {
	if a == nil {
		return 0
	}
	return a.durable.used.Load()
}

// DurablePeak returns the high-water mark of DurableUsed — the deterministic
// measured quantity the memory model is calibrated against.
func (a *Accountant) DurablePeak() int64 {
	if a == nil {
		return 0
	}
	return a.durable.peak.Load()
}

// KindUsed returns the bytes of kind k currently in use.
func (a *Accountant) KindUsed(k Kind) int64 {
	if a == nil || k < 0 || k >= NumKinds {
		return 0
	}
	return a.kinds[k].used.Load()
}

// KindPeak returns the high-water mark of kind k.
func (a *Accountant) KindPeak(k Kind) int64 {
	if a == nil || k < 0 || k >= NumKinds {
		return 0
	}
	return a.kinds[k].peak.Load()
}

// Snapshot copies every gauge.
func (a *Accountant) Snapshot() Snapshot {
	var s Snapshot
	if a == nil {
		return s
	}
	s.UsedBytes = a.total.used.Load()
	s.PeakBytes = a.total.peak.Load()
	s.DurableUsedBytes = a.durable.used.Load()
	s.DurablePeakBytes = a.durable.peak.Load()
	for k := range s.Kinds {
		s.Kinds[k] = KindStats{
			UsedBytes: a.kinds[k].used.Load(),
			PeakBytes: a.kinds[k].peak.Load(),
		}
	}
	return s
}

// Reset zeroes every gauge and high-water mark, returning the Accountant to
// its initial state for pooled reuse.
func (a *Accountant) Reset() {
	if a == nil {
		return
	}
	a.total.used.Store(0)
	a.total.peak.Store(0)
	a.durable.used.Store(0)
	a.durable.peak.Store(0)
	for k := range a.kinds {
		a.kinds[k].used.Store(0)
		a.kinds[k].peak.Store(0)
	}
}
