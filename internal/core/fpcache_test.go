package core

import (
	"testing"

	"cote/internal/cost"
	"cote/internal/enum"
	"cote/internal/opt"
	"cote/internal/props"
)

func TestFingerprintCacheHitMatchesMiss(t *testing.T) {
	c := NewFingerprintCache(16)
	blk := starBlock(t, 6, 2, 1, 1, 1)
	cold, hit, err := c.EstimatePlans(blk, Options{Level: opt.LevelHighInner2})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first estimate reported a hit")
	}

	// A fresh build of the same structure must hit and return identical
	// numbers.
	twin := starBlock(t, 6, 2, 1, 1, 1)
	warm, hit, err := c.EstimatePlans(twin, Options{Level: opt.LevelHighInner2})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("structurally identical estimate missed")
	}
	if warm.Counts != cold.Counts || warm.Joins != cold.Joins || warm.Pairs != cold.Pairs {
		t.Fatalf("hit diverged: %+v/%d/%d vs %+v/%d/%d",
			warm.Counts, warm.Joins, warm.Pairs, cold.Counts, cold.Joins, cold.Pairs)
	}
	if warm.PredictedMemoryBytes != cold.PredictedMemoryBytes {
		t.Fatalf("hit memory %d != cold %d", warm.PredictedMemoryBytes, cold.PredictedMemoryBytes)
	}

	hits, misses, size, capacity := c.Stats()
	if hits != 1 || misses != 1 || size != 1 || capacity != 16 {
		t.Fatalf("stats = %d hits, %d misses, %d/%d", hits, misses, size, capacity)
	}
}

// TestFingerprintCacheKnobDistinctness verifies every count-affecting knob
// participates in the key: the same query under each knob variation must
// miss rather than serve another configuration's counts.
func TestFingerprintCacheKnobDistinctness(t *testing.T) {
	c := NewFingerprintCache(64)
	variants := []Options{
		{},
		{Level: opt.LevelMediumLeftDeep},
		{Level: opt.LevelMediumZigZag},
		{Level: opt.LevelHigh},
		{Config: cost.Parallel4},
		{OrderPolicy: props.Lazy},
		{ListMode: CompoundLists},
		{PropagateEveryJoin: true},
		{CartesianPolicy: enum.CartesianNever},
		{CartesianPolicy: enum.CartesianAlways},
	}
	for i, o := range variants {
		blk := starBlock(t, 5, 2, 1, 0, nodesOf(o))
		if _, hit, err := c.EstimatePlans(blk, o); err != nil {
			t.Fatal(err)
		} else if hit {
			t.Fatalf("variant %d hit a previous knob set's entry", i)
		}
	}
	// The zero options normalize to LevelHighInner2 serial: a repeat is the
	// only hit.
	blk := starBlock(t, 5, 2, 1, 0, 1)
	if _, hit, err := c.EstimatePlans(blk, Options{Level: opt.LevelHighInner2}); err != nil {
		t.Fatal(err)
	} else if !hit {
		t.Fatal("normalized default level missed the zero-options entry")
	}
}

func nodesOf(o Options) int {
	if o.Config != nil && o.Config.Nodes > 1 {
		return o.Config.Nodes
	}
	return 1
}

// TestFingerprintCacheModelReapplied verifies hits are re-priced with the
// caller's model rather than serving a stale (or zero) prediction.
func TestFingerprintCacheModelReapplied(t *testing.T) {
	c := NewFingerprintCache(16)
	blk := starBlock(t, 5, 1, 0, 0, 1)
	if _, _, err := c.EstimatePlans(blk, Options{}); err != nil {
		t.Fatal(err)
	}
	m := &TimeModel{Tinst: 1e-8, C: [props.NumJoinMethods]float64{40, 20, 30}, C0: 1000}
	warm, hit, err := c.EstimatePlans(starBlock(t, 5, 1, 0, 0, 1), Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("expected hit")
	}
	if want := m.Predict(warm.Counts); warm.PredictedTime != want {
		t.Fatalf("hit PredictedTime %v, want %v", warm.PredictedTime, want)
	}
}

func TestFingerprintCacheEviction(t *testing.T) {
	c := NewFingerprintCache(1)
	a := starBlock(t, 4, 1, 0, 0, 1)
	b := starBlock(t, 5, 1, 0, 0, 1)
	if _, hit, _ := c.EstimatePlans(a, Options{}); hit {
		t.Fatal("cold a hit")
	}
	if _, hit, _ := c.EstimatePlans(b, Options{}); hit {
		t.Fatal("cold b hit")
	}
	// a was evicted by b under capacity 1.
	if _, hit, _ := c.EstimatePlans(starBlock(t, 4, 1, 0, 0, 1), Options{}); hit {
		t.Fatal("evicted entry still hit")
	}
	if _, hit, _ := c.EstimatePlans(starBlock(t, 4, 1, 0, 0, 1), Options{}); !hit {
		t.Fatal("refilled entry missed")
	}
}
