package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cote/internal/props"
)

func TestPlanCountsSerialization(t *testing.T) {
	var p PlanCounts
	p.ByMethod[props.MGJN] = 12
	p.ByMethod[props.NLJN] = 34
	p.ByMethod[props.HSJN] = 5
	if got, want := p.String(), "MGJN 12, NLJN 34, HSJN 5 (total 51)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"mgjn":12,"nljn":34,"hsjn":5,"total":51}`; string(data) != want {
		t.Fatalf("MarshalJSON = %s, want %s", data, want)
	}
	var back PlanCounts
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip: %v != %v", back, p)
	}
}

func TestTimeModelSerialization(t *testing.T) {
	m := &TimeModel{Tinst: 2e-9, C0: 4200}
	m.C[props.MGJN] = 5
	m.C[props.NLJN] = 2
	m.C[props.HSJN] = 4
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"tinst":2e-9,"c_mgjn":5,"c_nljn":2,"c_hsjn":4,"c0":4200}`; string(data) != want {
		t.Fatalf("MarshalJSON = %s, want %s", data, want)
	}
	var back TimeModel
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != *m {
		t.Fatalf("round trip: %+v != %+v", back, *m)
	}
	// The named fields (not array indices) are the wire contract: a
	// hand-written model must land on the right join methods.
	var hand TimeModel
	if err := json.Unmarshal([]byte(`{"tinst":1e-9,"c_nljn":7}`), &hand); err != nil {
		t.Fatal(err)
	}
	if hand.C[props.NLJN] != 7 || hand.C[props.MGJN] != 0 || hand.C[props.HSJN] != 0 {
		t.Fatalf("named-field decode: %+v", hand)
	}
}

func TestJoinCountModelSerialization(t *testing.T) {
	m := &JoinCountModel{Tinst: 1e-9, Cj: 123.5, C0: 9}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"tinst":1e-9,"cj":123.5,"c0":9}`; string(data) != want {
		t.Fatalf("MarshalJSON = %s, want %s", data, want)
	}
	var back JoinCountModel
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != *m {
		t.Fatalf("round trip: %+v != %+v", back, *m)
	}
}

func TestEstimateSerialization(t *testing.T) {
	e := &Estimate{
		Joins: 10, Pairs: 6,
		Elapsed:              1500 * time.Microsecond,
		PredictedTime:        42 * time.Millisecond,
		PredictedMemoryBytes: 4096,
	}
	e.Counts.ByMethod[props.NLJN] = 7
	s := e.String()
	for _, want := range []string{"NLJN 7", "10 joins", "6 pairs", "predicted compile 42ms", "4096 B"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["predicted_time_ns"].(float64) != 42e6 {
		t.Fatalf("predicted_time_ns = %v", m["predicted_time_ns"])
	}
	if m["counts"].(map[string]any)["total"].(float64) != 7 {
		t.Fatalf("counts = %v", m["counts"])
	}
}
