package core

import (
	"time"

	"cote/internal/fingerprint"
	"cote/internal/opt"
	"cote/internal/plangen"
	"cote/internal/props"
)

// CompileObservation is the record of one real compilation, in the form the
// online calibration loop consumes: the plan counts the optimizer actually
// generated, the level it ran at, the query's structural fingerprint, the
// COTE prediction priced before the run (zero when no model was installed),
// and the measured wall-clock time. GenSeconds carries the per-method
// generation timing that keeps Calibrate well conditioned, exactly as
// TrainingPoint does for offline fits.
type CompileObservation struct {
	Counts      PlanCounts
	Level       opt.Level
	Fingerprint fingerprint.FP
	Predicted   time.Duration
	Actual      time.Duration
	GenSeconds  [props.NumJoinMethods]float64
	// PeakBytes is the measured durable memory high-water mark of the
	// compilation (zero when no run accountant was attached); Entries and
	// PropertyBytes carry the estimate-side regressors that pair with it,
	// so the same observation stream that refits the time model can refit
	// the memory model.
	PeakBytes     int64
	Entries       int
	PropertyBytes int
}

// ObservationFrom builds an observation from one real optimization's
// counters, mirroring TrainingPointFrom's attribution of plan-saving time.
func ObservationFrom(c plangen.Counters, level opt.Level, fp fingerprint.FP, predicted, actual time.Duration) CompileObservation {
	tp := TrainingPointFrom(c, actual)
	return CompileObservation{
		Counts:      tp.Counts,
		Level:       level,
		Fingerprint: fp,
		Predicted:   predicted,
		Actual:      actual,
		GenSeconds:  tp.GenSeconds,
	}
}

// TrainingPoint converts the observation to the form Calibrate consumes.
func (o CompileObservation) TrainingPoint() TrainingPoint {
	return TrainingPoint{Counts: o.Counts, Actual: o.Actual, GenSeconds: o.GenSeconds}
}

// MemPoint converts the observation to the form CalibrateMemory consumes,
// and ok reports whether it carries a usable memory measurement (a peak was
// recorded and the estimate-side regressors are present).
func (o CompileObservation) MemPoint() (MemPoint, bool) {
	if o.PeakBytes <= 0 || o.Entries <= 0 {
		return MemPoint{}, false
	}
	return MemPoint{
		Entries:       o.Entries,
		Plans:         o.Counts.Total(),
		PropertyBytes: o.PropertyBytes,
		PeakBytes:     o.PeakBytes,
	}, true
}

// CompileObserver receives one record per completed real compilation. The
// optimizer layers call it synchronously, so implementations must be cheap
// and goroutine-safe (internal/calib's Calibrator is the canonical one).
type CompileObserver interface {
	ObserveCompile(CompileObservation)
}

// ModelProvider yields the current compilation-time model. It decouples the
// estimation layers from the versioned model registry (internal/calib):
// Options.Models and MOP.Models read the provider at run start, so a model
// swap mid-stream is picked up by the next run without any re-wiring.
type ModelProvider interface {
	CurrentModel() *TimeModel
}

// MemModelProvider is the optional memory-model side of a ModelProvider: a
// registry that also versions memory models implements it, and the layers
// discover it by type assertion so providers that predate memory estimation
// keep working unchanged.
type MemModelProvider interface {
	CurrentMemModel() *MemModel
}
