package core

import (
	"errors"
	"fmt"
	"time"

	"cote/internal/cost"
	"cote/internal/enum"
	"cote/internal/memo"
	"cote/internal/query"
	"cote/internal/stats"
)

// JoinCountEstimate is the baseline estimator of previous work (Ono &
// Lohman): compilation time proportional to the number of distinct binary
// joins, assuming uniform per-join cost. The paper shows it cannot
// distinguish queries with the same join graph but different interesting
// properties, producing errors "20 times larger" on the star batches.
type JoinCountEstimate struct {
	Pairs         int
	Elapsed       time.Duration
	PredictedTime time.Duration
}

// JoinCountModel is the baseline's one-constant time model: T = Tinst *
// (Cj*joins + C0).
type JoinCountModel struct {
	Tinst  float64
	Cj, C0 float64
}

// Predict converts a join count to a time prediction.
func (m *JoinCountModel) Predict(pairs int) time.Duration {
	return time.Duration(m.Tinst * (m.Cj*float64(pairs) + m.C0) * float64(time.Second))
}

// JoinTrainingPoint pairs a join count with a measured compilation time.
type JoinTrainingPoint struct {
	Pairs  int
	Actual time.Duration
}

// CalibrateJoinCount fits the baseline model by least squares, mirroring
// the best case the join-count approach could hope for ("no matter how we
// chose the time per join").
func CalibrateJoinCount(training []JoinTrainingPoint) (*JoinCountModel, error) {
	if len(training) < 2 {
		return nil, errors.New("core: need at least two training points")
	}
	const tinst = 1e-9
	x := make([][]float64, len(training))
	y := make([]float64, len(training))
	for i, tp := range training {
		x[i] = []float64{float64(tp.Pairs), 1}
		y[i] = tp.Actual.Seconds() / tinst
	}
	beta, err := stats.NonNegativeOLS(x, y)
	if err != nil {
		return nil, fmt.Errorf("core: join-count calibration failed: %w", err)
	}
	return &JoinCountModel{Tinst: tinst, Cj: beta[0], C0: beta[1]}, nil
}

// CountJoins counts the distinct binary joins of a query by running the
// enumerator with no hooks at all — the cheapest possible reuse of the
// enumeration machinery.
func CountJoins(blk *query.Block, opts Options) (*JoinCountEstimate, error) {
	start := time.Now()
	cfg := opts.Config
	if cfg == nil {
		cfg = cost.Serial
	}
	out := &JoinCountEstimate{}
	for _, b := range blk.Blocks() {
		if opts.Exec.Cancelled() {
			return nil, opts.Exec.Err()
		}
		card := cost.NewEstimator(b, cost.Simple)
		mem := memo.New(b.NumTables())
		eopts := opts.level().EnumOptions()
		eopts.Cartesian = opts.CartesianPolicy
		eopts.Exec = opts.Exec
		st, err := enum.New(b, mem, card, eopts).Run(enum.Hooks{})
		if err != nil {
			return nil, err
		}
		out.Pairs += st.Pairs
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// ClosedFormJoins returns the closed-form join counts known for special
// query shapes under full bushy enumeration without Cartesian products
// (Ono & Lohman; Ioannidis & Kang): (n^3-n)/6 for a linear query of n
// tables and (n-1)*2^(n-2) for a star. The general problem — counting joins
// of a cyclic query graph — is #P-complete, which is the paper's argument
// for reusing the enumerator instead.
func ClosedFormJoins(shape string, n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: invalid table count %d", n)
	}
	switch shape {
	case "linear":
		return (n*n*n - n) / 6, nil
	case "star":
		if n < 2 {
			return 0, nil
		}
		return (n - 1) << (n - 2), nil
	default:
		return 0, fmt.Errorf("core: no closed form for shape %q (the general problem is #P-complete)", shape)
	}
}
