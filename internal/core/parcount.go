// Parallel plan counting.
//
// The estimation pass inherits the dependency structure the parallel DP
// driver (enum.RunParallel) already exploits for real optimization: within
// size class k, accumulate_plans reads only the interesting-property lists
// of the (size < k) inputs — final since the previous classes — while its
// writes all target the size-k result entry. The pass therefore splits the
// same way plan generation does:
//
//   - counting (the per-method arithmetic over the inputs' lists, the bulk
//     of the work) runs on workers, into forked worker-local counters;
//   - property propagation (the only mutation, first-join-only gated)
//     replays on the driver in canonical commit order.
//
// Per-method counts merge back by integer addition, which is exact and
// order-independent, so PlanCounts, property lists, enumeration statistics
// and the MEMO's durable accounting are bit-identical to the serial pass at
// every parallelism degree — the same guarantee the determinism suite pins
// for optimization. Workers never touch the scope's future-join-column
// memo (counting goes through mergeOutsScratch and candidateParts, neither
// of which calls OrderUseful), and the property interner takes its own
// lock, so the scope needs no MarkShared switch for estimation.
package core

import (
	"unsafe"

	"cote/internal/enum"
	"cote/internal/memo"
)

// countLane is one counting stream of a parallel estimation pass: a
// worker-local fork of cnt accumulates every join admit accepts. A nil
// admit accepts every join (the plain single-level pass); EstimateLevels
// installs one lane per requested level with its search-space filter.
type countLane struct {
	cnt   *counter
	admit func(outer, inner *memo.Entry) bool
}

// cntTask is one buffered enumerated join awaiting canonical-order commit.
type cntTask struct {
	task                 int
	outer, inner, result *memo.Entry
}

var cntTaskBytes = int64(unsafe.Sizeof(cntTask{}))

// cntWorker is one worker's state: forked lane counters plus the buffer of
// tasks it counted, replayed by the driver in canonical order.
type cntWorker struct {
	prop  *counter // the shared propagation counter; driver-side only
	lanes []countLane
	buf   []cntTask
	cur   int
}

// generate counts one enumerated join into the worker-local lane counters
// and buffers the task for commit. It runs on a worker goroutine and reads
// only size<k entries and the worker's own scratch.
func (w *cntWorker) generate(task int, outer, inner, result *memo.Entry) {
	for _, l := range w.lanes {
		if l.admit == nil || l.admit(outer, inner) {
			l.cnt.countOnly(outer, inner, result)
		}
	}
	w.buf = append(w.buf, cntTask{task, outer, inner, result})
}

// commit replays one buffered task's property propagation on the driver.
// Commits arrive in globally increasing task order (the RunParallel
// contract), which is exactly the serial enumeration order, so the
// first-join-only gate fires for the same joins it would serially.
func (w *cntWorker) commit(task int) {
	if w.cur >= len(w.buf) || w.buf[w.cur].task != task {
		panic("core: out-of-order parallel count commit")
	}
	t := w.buf[w.cur]
	w.cur++
	if w.cur == len(w.buf) {
		w.buf, w.cur = w.buf[:0], 0
	}
	p := w.prop
	if !t.result.PropsPropagated || p.everyJoin {
		p.ocBuf, p.icBuf = p.sc.AppendJoinColsBetween(t.outer.Tables, t.inner.Tables, p.ocBuf[:0], p.icBuf[:0])
		candParts := p.candidateParts(t.outer, t.inner, t.result, p.ocBuf, p.icBuf)
		p.propagateWithCols(t.outer, t.inner, t.result, p.ocBuf, candParts)
	}
}

// fork clones the counter for a worker goroutine: the immutable
// configuration is shared — including the compound-vector map, which
// workers only ever read for size<k entries while the driver writes size-k
// vectors strictly after the class barrier — while counts, joins and the
// per-join scratch buffers are private.
func (c *counter) fork() *counter {
	return &counter{
		blk: c.blk, sc: c.sc,
		parallel: c.parallel, nodes: c.nodes,
		policy: c.policy, mode: c.mode, everyJoin: c.everyJoin,
		pipeFactor: c.pipeFactor,
		expTables:  c.expTables,
		vecs:       c.vecs,
	}
}

// parallelHooks returns the RunParallel hooks of the plain estimation pass
// and the finish func that merges worker-local counts back into c. Call
// finish after RunParallel returns (even on error: partial counts keep the
// accountant's scratch charge honest; the estimate itself is discarded).
func (c *counter) parallelHooks() (enum.ParallelHooks, func()) {
	return parallelCountHooks(c, []countLane{{cnt: c}})
}

// parallelCountHooks builds the parallel harness shared by EstimatePlans
// and EstimateLevels: prop propagates (and initializes fresh entries) on
// the driver; every counting lane is forked once per worker, and finish
// folds the forks' counts, joins and scratch high-water back into the
// lanes' counters.
func parallelCountHooks(prop *counter, lanes []countLane) (enum.ParallelHooks, func()) {
	var ws []*cntWorker
	hooks := enum.ParallelHooks{
		Init: prop.initialize,
		NewWorker: func() (enum.GenerateFunc, enum.CommitFunc) {
			w := &cntWorker{prop: prop, lanes: make([]countLane, len(lanes))}
			for i, l := range lanes {
				w.lanes[i] = countLane{cnt: l.cnt.fork(), admit: l.admit}
			}
			ws = append(ws, w)
			return w.generate, w.commit
		},
	}
	finish := func() {
		for _, w := range ws {
			for i, l := range w.lanes {
				dst := lanes[i].cnt
				dst.counts.Add(l.cnt.counts)
				dst.joins += l.cnt.joins
				dst.extraScratch += l.cnt.scratchBytes()
			}
			prop.extraScratch += int64(cap(w.buf)) * cntTaskBytes
		}
	}
	return hooks, finish
}
