// Package core implements the paper's contribution: the COmpilation Time
// Estimator (COTE). It reuses the optimizer's join enumerator while
// bypassing plan generation, maintains interesting-property value lists in
// the MEMO structure to count the join plans each enumerated join would
// generate (the initialize / accumulate_plans algorithm of Table 3), and
// converts plan counts to time through a regression-calibrated linear model
// T = Tinst * sum(Ct * Pt). On top of the estimator it provides the paper's
// applications and extensions: the meta-optimizer of Figure 1, the
// join-count baseline it improves on, optimizer memory estimation, and
// single-pass multi-level ("piggyback") estimation.
package core

import (
	"unsafe"

	"cote/internal/bitset"
	"cote/internal/enum"
	"cote/internal/memo"
	"cote/internal/plangen"
	"cote/internal/props"
	"cote/internal/query"
)

// ListMode selects how multiple physical property types are maintained
// during estimation (Section 3.4 of the paper).
type ListMode int

// List modes.
const (
	// SeparateLists keeps one interesting-property list per property type
	// and estimates combined plan counts by multiplication — cheaper in
	// time and space, slightly underestimating (the paper's choice).
	SeparateLists ListMode = iota
	// CompoundLists keeps explicit (order, partition) vectors — the simple
	// solution of Section 3.4, more accurate and more expensive. Provided
	// for the ablation benchmarks.
	CompoundLists
)

// String names the mode.
func (m ListMode) String() string {
	if m == CompoundLists {
		return "compound"
	}
	return "separate"
}

// PlanCounts holds estimated (or actual) generated-plan counts per join
// method.
type PlanCounts struct {
	ByMethod [props.NumJoinMethods]int
}

// Total returns the total plan count.
func (p PlanCounts) Total() int {
	t := 0
	for _, v := range p.ByMethod {
		t += v
	}
	return t
}

// Add accumulates other into p.
func (p *PlanCounts) Add(other PlanCounts) {
	for m := range p.ByMethod {
		p.ByMethod[m] += other.ByMethod[m]
	}
}

// CountsFrom extracts actual generated-plan counts from a real
// optimization's counters, for estimate-versus-actual comparisons.
func CountsFrom(c plangen.Counters) PlanCounts {
	var out PlanCounts
	out.ByMethod = c.Generated
	return out
}

// propVec is one compound (order, partition) property vector.
type propVec struct {
	o props.Order
	p props.Partition
}

// counter is the plan-estimate mode engine for a single query block: the
// hook implementations of the paper's Table 3.
type counter struct {
	blk      *query.Block
	sc       *props.Scope
	parallel bool
	nodes    int
	policy   props.GenerationPolicy
	mode     ListMode
	// everyJoin disables the first-join-only propagation simplification
	// (DB2 experience item 4) for the ablation benchmark.
	everyJoin bool

	counts PlanCounts
	// expTables is the set of tables with expensive predicates; each adds a
	// defer-past-joins plan lane.
	expTables bitset.Set
	// pipeFactor is 2 when pipelineability is an interesting property
	// (FETCH FIRST queries): the separate pipeline "list" holds one
	// interesting value, and NLJN — the only method that propagates it —
	// generates both a pipelined and a blocking variant per order.
	pipeFactor int
	// joins counts the enumerated joins this counter accumulated.
	joins int
	// vecs holds compound property vectors per entry (CompoundLists only).
	// Forked worker counters share this map: within size class k workers only
	// read vectors of size<k entries, and only the driver's canonical-order
	// commits write the size-k vectors.
	vecs map[bitset.Set][]propVec
	// extraScratch accumulates the scratch high-water of forked worker
	// counters, merged in by the parallel pass's finish hook so the run
	// accountant's working-memory charge still covers them.
	extraScratch int64

	// Scratch for the per-join hot path. accumulate_plans runs once per
	// enumerated join — the paper's Table 3 inner loop — so everything it
	// needs transiently is buffered on the counter and reused join over
	// join, mirroring the real generator's allocation-lean idioms.
	ocBuf, icBuf []query.ColID
	jcBuf        []query.ColID
	outsBuf      []props.Order
	emitted      props.OrderList
	plistBuf     props.PartitionList
}

func newCounter(blk *query.Block, sc *props.Scope, nodes int, policy props.GenerationPolicy, mode ListMode, everyJoin bool) *counter {
	pipe := 1
	if sc.PipelineInteresting() {
		pipe = 2
	}
	c := &counter{
		blk: blk, sc: sc,
		parallel: nodes > 1, nodes: nodes,
		policy: policy, mode: mode, everyJoin: everyJoin,
		pipeFactor: pipe,
		expTables:  sc.ExpensiveTables(),
	}
	// Only the compound-list ablation maintains per-entry vectors; the
	// default separate-list mode never touches the map.
	if mode == CompoundLists {
		c.vecs = make(map[bitset.Set][]propVec)
	}
	return c
}

func (c *counter) hooks() enum.Hooks {
	return enum.Hooks{
		Init: c.initialize,
		Join: c.accumulatePlans,
	}
}

// initialize populates the interesting-property lists of a fresh MEMO entry
// (Table 3, initialize()). Single-table entries get their orders per the
// generation policy — the pushed-down interesting orders under the eager
// policy, natural index orders under the lazy one — and their physical
// partition (partitions are generated lazily, as in DB2's parallel
// version).
func (c *counter) initialize(e *memo.Entry) {
	if e.Tables.Len() != 1 {
		return
	}
	t := e.Tables.Min()
	var orders []props.Order
	if c.policy == props.Eager {
		orders = c.sc.EagerBaseOrders(t, e.Equiv)
	} else {
		for _, o := range c.sc.NaturalBaseOrders(t, e.Equiv) {
			if c.sc.OrderUseful(o, e.Tables, e.Equiv) {
				orders = append(orders, o)
			}
		}
	}
	for _, o := range orders {
		e.Orders.Add(o, e.Equiv)
	}
	part := props.Partition{}
	if c.parallel {
		if p, ok := c.sc.NaturalBasePartition(t); ok {
			part = p
			e.Parts.Add(p, e.Equiv)
		}
	}
	if c.mode == CompoundLists {
		vs := []propVec{{props.Order{}, part}}
		for _, o := range orders {
			vs = append(vs, propVec{o, part})
		}
		c.vecs[e.Tables] = vs
	}
}

// accumulatePlans processes one enumerated (outer, inner) join (Table 3,
// accumulate_plans()): it propagates interesting property values from the
// inputs to the result entry — a property propagates when at least one join
// method can carry it, it has not retired, and it is not equivalent to a
// value already in the list — and accumulates a separate plan count per
// join method according to the method's propagation class.
func (c *counter) accumulatePlans(outer, inner, result *memo.Entry) {
	c.ocBuf, c.icBuf = c.sc.AppendJoinColsBetween(outer.Tables, inner.Tables, c.ocBuf[:0], c.icBuf[:0])
	outerCols, innerCols := c.ocBuf, c.icBuf
	candParts := c.candidateParts(outer, inner, result, outerCols, innerCols)

	// --- property propagation (first-join-only unless ablated) ---
	c.propagateWithCols(outer, inner, result, outerCols, candParts)

	// --- plan counting per method ---
	c.countWithCols(outer, inner, result, outerCols, innerCols, candParts)
}

// propagateWithCols is the property-propagation half of accumulate_plans,
// split out so the parallel counting pass can replay it on the driver in
// canonical commit order while the counting half ran on workers. It writes
// only the result entry's (size-k) lists and the compound-vector map, never
// the inputs'.
func (c *counter) propagateWithCols(outer, inner, result *memo.Entry, outerCols []query.ColID, candParts []props.Partition) {
	if result.PropsPropagated && !c.everyJoin {
		return
	}
	result.PropsPropagated = true
	// Orders propagate from both inputs' lists (Table 3: lists ∪ listl)
	// — restricted to outer-enabled inputs, since orders travel on the
	// outer of a nested-loops join (DB2 item 3) — plus the
	// merge-candidate orders MGJN partially propagates. The merge
	// candidates are interned because Add stores them in the entry's
	// list, which outlives the scratch buffers.
	outs := c.mergeOutsInterned(outerCols)
	addUseful := func(orders []props.Order) {
		for _, o := range orders {
			if c.sc.OrderUseful(o, result.Tables, result.Equiv) {
				result.Orders.Add(o, result.Equiv)
			}
		}
	}
	addUseful(outer.Orders.Orders())
	if inner.OuterEligible {
		addUseful(inner.Orders.Orders())
	}
	addUseful(outs)
	for _, pp := range candParts {
		if !pp.Empty() {
			result.Parts.Add(pp, result.Equiv)
		}
	}
	if c.mode == CompoundLists {
		c.propagateVecs(outer, result, candParts, outs)
		if inner.OuterEligible {
			c.propagateVecs(inner, result, candParts, outs)
		}
	}
}

// mergeOutsInterned builds the outer-side merge-candidate orders (the outs
// of plangen.MergeCandidates; estimation never needs the inner side) through
// the block's interner, so storing them in an entry's property list shares
// one instance per distinct column sequence. The slice itself is counter
// scratch, valid until the next mergeOuts call.
func (c *counter) mergeOutsInterned(outerCols []query.ColID) []props.Order {
	in := c.sc.Intern()
	outs := c.outsBuf[:0]
	for _, col := range outerCols {
		outs = append(outs, in.Order1(col))
	}
	if len(outerCols) > 1 {
		outs = append(outs, in.Order(outerCols))
	}
	c.outsBuf = outs
	return outs
}

// mergeOutsScratch is mergeOutsInterned without the interner: the orders
// alias outerCols and the counter's buffers, valid for comparisons within
// one call and never to be stored in an entry's lists. mergeOrderCount only
// counts and compares, so it takes this allocation- and lock-free path on
// every enumerated join.
func (c *counter) mergeOutsScratch(outerCols []query.ColID) []props.Order {
	outs := c.outsBuf[:0]
	for i := range outerCols {
		outs = append(outs, props.Order{Cols: outerCols[i : i+1]})
	}
	if len(outerCols) > 1 {
		outs = append(outs, props.Order{Cols: outerCols})
	}
	c.outsBuf = outs
	return outs
}

// mergeOrderCount returns |listp ∪ listc|: the deduplicated merge-candidate
// orders plus the coverage list of outer orders strictly subsuming one.
func (c *counter) mergeOrderCount(outer, result *memo.Entry, outerCols, innerCols []query.ColID) int {
	outs := c.mergeOutsScratch(outerCols)
	emitted := &c.emitted
	emitted.Reset()
	n := 0
	for _, o := range outs {
		if emitted.Add(o, result.Equiv) {
			n++
		}
	}
	for _, o := range outer.Orders.Orders() {
		covers := false
		for _, cand := range outs {
			if o.Len() > cand.Len() && cand.PrefixOfUnder(o, result.Equiv) {
				covers = true
				break
			}
		}
		if covers && emitted.Add(o, result.Equiv) {
			n++
		}
	}
	return n
}

// serialParts is the single don't-care execution partition of serial mode,
// shared to keep the per-join hot path allocation free.
var serialParts = []props.Partition{{}}

// candidateParts mirrors the real generator's execution-partition rule from
// the interesting-partition lists: input partitions covered by the join
// columns, or a repartition on the join columns when none qualifies (the
// heuristic of Section 4). Serial estimation uses the single don't-care
// partition.
func (c *counter) candidateParts(outer, inner, result *memo.Entry, outerCols, innerCols []query.ColID) []props.Partition {
	if !c.parallel {
		return serialParts
	}
	joinCols := append(append(c.jcBuf[:0], outerCols...), innerCols...)
	c.jcBuf = joinCols
	list := &c.plistBuf
	list.Reset()
	for _, e := range []*memo.Entry{outer, inner} {
		for _, p := range e.Parts.Partitions() {
			if p.CoversJoinCols(joinCols, result.Equiv) {
				list.Add(p, result.Equiv)
			}
		}
	}
	if list.Len() == 0 {
		if len(outerCols) > 0 {
			// Interned: the repartition may be stored in the result's
			// interesting lists, which outlive the scratch outerCols.
			return []props.Partition{c.sc.Intern().Partition(c.nodes, outerCols)}
		}
		return []props.Partition{{}}
	}
	return list.Partitions()
}

// propagateVecs maintains compound (order, partition) vectors: a vector
// retires only when every component has retired (Section 3.4).
func (c *counter) propagateVecs(outer, result *memo.Entry, candParts []props.Partition, mergeOrders []props.Order) {
	have := c.vecs[result.Tables]
	add := func(v propVec) {
		for _, h := range have {
			if h.o.EqualUnder(v.o, result.Equiv) && h.p.EqualUnder(v.p, result.Equiv) {
				return
			}
		}
		have = append(have, v)
	}
	for _, pp := range candParts {
		add(propVec{props.Order{}, pp})
		for _, v := range c.vecs[outer.Tables] {
			if v.o.Empty() {
				continue // the (DC, pp) vector is already present
			}
			oUseful := c.sc.OrderUseful(v.o, result.Tables, result.Equiv)
			pAlive := c.parallel && !pp.Empty()
			if !oUseful && !pAlive {
				continue // every component retired: the vector retires
			}
			// Compound retirement rule: the vector survives as long as any
			// component is alive, so a retired order rides along on an
			// interesting partition.
			add(propVec{v.o, pp})
		}
		for _, o := range mergeOrders {
			if c.sc.OrderUseful(o, result.Tables, result.Equiv) {
				add(propVec{o, pp})
			}
		}
	}
	c.vecs[result.Tables] = have
}

// countCompound counts plans from compound vectors, re-simulating the real
// generator's per-partition behaviour.
func (c *counter) countCompound(outer, result *memo.Entry, candParts []props.Partition, outerCols, innerCols []query.ColID) {
	outerVecs := c.vecs[outer.Tables]
	for _, pp := range candParts {
		colocated := 0
		var distinctOrders props.OrderList
		for _, v := range outerVecs {
			if c.parallel && !v.p.EqualUnder(pp, result.Equiv) {
				if !v.o.Empty() {
					distinctOrders.Add(v.o, result.Equiv)
				}
				continue
			}
			colocated++
		}
		n := colocated
		if c.parallel && n == 0 {
			n = 1 + distinctOrders.Len() // repartition + re-sorts
		}
		c.counts.ByMethod[props.NLJN] += n
		if len(outerCols) > 0 {
			c.counts.ByMethod[props.MGJN] += c.mergeOrderCount(outer, result, outerCols, innerCols)
			c.counts.ByMethod[props.HSJN]++
		}
	}
}

// Scratch element sizes for the run accountant's working-memory class.
// Vars, not consts: unsafe.Sizeof over *new(T) is not a constant expression.
var (
	counterColIDBytes = int64(unsafe.Sizeof(*new(query.ColID)))
	counterOrderBytes = int64(unsafe.Sizeof(props.Order{}))
)

// scratchBytes reports the capacity the counter's per-join scratch buffers
// grew to over the block — the working-memory high-water estimateBlock
// charges (and releases) against the run accountant's scratch class. The
// property lists themselves are durable MEMO content and charged separately.
func (c *counter) scratchBytes() int64 {
	cols := cap(c.ocBuf) + cap(c.icBuf) + cap(c.jcBuf)
	return int64(cols)*counterColIDBytes + int64(cap(c.outsBuf))*counterOrderBytes + c.extraScratch
}

// propertyBytes reports the memory footprint of the maintained property
// lists, at the paper's ~4 bytes per property value.
func (c *counter) propertyBytes(mem *memo.Memo) int {
	if c.mode == CompoundLists {
		const bytesPerVec = 8
		n := 0
		for _, vs := range c.vecs {
			n += len(vs) * bytesPerVec
		}
		return n
	}
	return mem.PropertyListBytes()
}
