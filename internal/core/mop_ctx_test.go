package core

import (
	"context"
	"errors"
	"testing"

	"cote/internal/opt"
)

// A near-zero model makes MOP always choose to recompile; the budget factor
// then decides whether the recompilation survives.
func mopFastModel() *TimeModel { return &TimeModel{Tinst: 1e-9} }

func TestMOPBudgetAbortWalksLevelLadder(t *testing.T) {
	blk := starBlock(t, 9, 3, 2, 1, 1)
	// A tiny budget relative to the (accurate) prediction aborts the high
	// level; each lower rung re-predicts and — with the same factor — aborts
	// too, until either a level fits or the greedy floor is reached.
	m := &MOP{Model: mopFastModel(), BudgetFactor: 0.05}
	res, dec, err := m.RunCtx(context.Background(), blk)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Plan == nil {
		t.Fatal("no plan returned")
	}
	if len(dec.AbortedLevels) == 0 {
		t.Fatalf("no level aborted under a 0.05 budget factor: %+v", dec)
	}
	if dec.AbortedLevels[0] != opt.LevelHighInner2 {
		t.Errorf("first abort at %v, want the high level %v", dec.AbortedLevels[0], opt.LevelHighInner2)
	}
	if dec.Recompiled {
		// A downgraded recompile may legitimately fit a lower level's budget;
		// then the final level must sit below the aborted high level.
		if dec.FinalLevel == opt.LevelHighInner2 {
			t.Errorf("recompiled at the aborted high level: %+v", dec)
		}
	} else if dec.FinalLevel != opt.LevelLow {
		t.Errorf("not recompiled but final level %v != greedy", dec.FinalLevel)
	}
}

func TestMOPZeroBudgetFactorMatchesRun(t *testing.T) {
	mk := func() *MOP { return &MOP{Model: mopFastModel()} }
	_, want, err := mk().Run(starBlock(t, 6, 2, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := mk().RunCtx(context.Background(), starBlock(t, 6, 2, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Recompiled != want.Recompiled || got.FinalLevel != want.FinalLevel ||
		got.FinalPlanCost != want.FinalPlanCost || len(got.AbortedLevels) != 0 {
		t.Errorf("RunCtx(Background) decision diverges from Run:\n got %+v\nwant %+v", got, want)
	}
}

func TestMOPGenerousBudgetNeverAborts(t *testing.T) {
	m := &MOP{Model: mopFastModel(), BudgetFactor: 1000}
	_, dec, err := m.RunCtx(context.Background(), starBlock(t, 6, 2, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Recompiled || len(dec.AbortedLevels) != 0 {
		t.Errorf("a 1000x budget aborted: %+v", dec)
	}
	if dec.FinalLevel != opt.LevelHighInner2 {
		t.Errorf("final level %v, want the high level", dec.FinalLevel)
	}
}

func TestMOPRunCtxHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := (&MOP{Model: mopFastModel()}).RunCtx(ctx, starBlock(t, 6, 2, 1, 0, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
