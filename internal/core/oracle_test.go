// Closed-form oracle tests: for pure chain and star join graphs the
// Ono-Lohman enumeration metrics — unordered join pairs, ordered joins, and
// MEMO entries — have exact analytical formulas at every optimization level.
// Running the full estimation pipeline (EstimatePlans, not the bare
// enumerator) against those formulas for n=2..10 pins the estimator's
// headline counts to arithmetic: any drift in enumeration, shape filtering,
// composite-inner limiting or stat plumbing breaks an equation rather than a
// snapshot.
package core

import (
	"fmt"
	"testing"

	"cote/internal/catalog"
	"cote/internal/enum"
	"cote/internal/opt"
	"cote/internal/query"
)

// oracleChain builds a bare chain t0-t1-...-t{n-1}: one join predicate per
// edge, uniform row counts, no ORDER BY / GROUP BY — nothing but the join
// graph, so the closed forms apply exactly.
func oracleChain(tb testing.TB, n int) *query.Block {
	tb.Helper()
	cb := catalog.NewBuilder("oracle_chain")
	for i := 0; i < n; i++ {
		cb.Table(fmt.Sprintf("t%d", i), 10_000).Column("a", 100).Column("b", 100)
	}
	cat := cb.Build()
	qb := query.NewBuilder(fmt.Sprintf("chain%d", n), cat)
	for i := 0; i < n; i++ {
		qb.AddTable(fmt.Sprintf("t%d", i), "")
	}
	for i := 0; i+1 < n; i++ {
		qb.JoinEq(fmt.Sprintf("t%d", i), "b", fmt.Sprintf("t%d", i+1), "a")
	}
	return qb.MustBuild()
}

// oracleStar builds a bare star: hub t0 joined to n-1 satellites, one
// predicate per edge, no sorting clauses.
func oracleStar(tb testing.TB, n int) *query.Block {
	tb.Helper()
	cb := catalog.NewBuilder("oracle_star")
	hub := cb.Table("t0", 10_000)
	for i := 1; i < n; i++ {
		hub.Column(fmt.Sprintf("c%d", i), 100)
	}
	for i := 1; i < n; i++ {
		cb.Table(fmt.Sprintf("t%d", i), 10_000).Column("a", 100)
	}
	cat := cb.Build()
	qb := query.NewBuilder(fmt.Sprintf("star%d", n), cat)
	for i := 0; i < n; i++ {
		qb.AddTable(fmt.Sprintf("t%d", i), "")
	}
	for i := 1; i < n; i++ {
		qb.JoinEq("t0", fmt.Sprintf("c%d", i), fmt.Sprintf("t%d", i), "a")
	}
	return qb.MustBuild()
}

// chainOracle returns the exact (pairs, joins) for a chain of n at the given
// DP level, Cartesian products forbidden. Every feasible subproblem of a
// chain is an interval [i,j]; a pair splits an interval of length L into two
// subintervals, and each level admits a subset of the splits/orientations:
//
//	high:     every split, both orientations — pairs Σ(n-L+1)(L-1) = (n³-n)/6,
//	          joins 2·pairs.
//	inner2:   splits with a side ≤ 2 tables: min(L-1, 4) pairs per interval;
//	          orientations with inner ≤ 2: 2 for L=2, else 4 per interval.
//	zigzag:   splits with a single-table side: 1 (L=2) or 2 (L≥3) pairs per
//	          interval, both orientations (the single side satisfies the
//	          zigzag rule as outer or inner) — joins 2·pairs.
//	leftdeep: same pairs as zigzag, but the single table must be the inner:
//	          2 joins for L=2 (both sides single), else 1 per pair.
func chainOracle(level opt.Level, n int) (pairs, joins int) {
	for L := 2; L <= n; L++ {
		intervals := n - L + 1
		var p, j int
		switch level {
		case opt.LevelHigh:
			p = L - 1
			j = 2 * p
		case opt.LevelHighInner2:
			p = min(L-1, 4)
			if L == 2 {
				j = 2
			} else {
				j = 4
			}
		case opt.LevelMediumZigZag:
			p = min(L-1, 2)
			j = 2 * p
		case opt.LevelMediumLeftDeep:
			p = min(L-1, 2)
			j = p
			if L == 2 {
				j = 2
			}
		}
		pairs += intervals * p
		joins += intervals * j
	}
	return pairs, joins
}

// starOracle returns the exact (pairs, joins) for a star of n (hub + n-1
// satellites), Cartesian products forbidden. Every feasible pair splits a
// hub-containing subset from one satellite, so pairs = (n-1)·2^(n-2) at
// every level; the levels differ only in which reversed orientations
// (satellite as outer, hub side as inner) they admit:
//
//	high, zigzag: all of them (the satellite side is always a single table,
//	              which satisfies the zigzag rule in either role) —
//	              joins (n-1)·2^(n-1).
//	inner2:       hub side ≤ 2 tables: the (n-1)² pairs whose hub side is the
//	              hub alone or hub+one — joins (n-1)·(2^(n-2) + n-1).
//	leftdeep:     hub side single (the hub alone): n-1 pairs —
//	              joins (n-1)·(2^(n-2) + 1).
func starOracle(level opt.Level, n int) (pairs, joins int) {
	pairs = (n - 1) << (n - 2)
	switch level {
	case opt.LevelHigh, opt.LevelMediumZigZag:
		joins = 2 * pairs
	case opt.LevelHighInner2:
		joins = pairs + (n-1)*(n-1)
	case opt.LevelMediumLeftDeep:
		joins = pairs + (n - 1)
	}
	return pairs, joins
}

var oracleLevels = []opt.Level{
	opt.LevelMediumLeftDeep, opt.LevelMediumZigZag, opt.LevelHighInner2, opt.LevelHigh,
}

// TestChainCountsMatchClosedForm runs the full estimation pipeline over
// chains of 2..10 tables at every DP level and demands the exact analytical
// pair/join/entry counts.
func TestChainCountsMatchClosedForm(t *testing.T) {
	for n := 2; n <= 10; n++ {
		blk := oracleChain(t, n)
		for _, level := range oracleLevels {
			est, err := EstimatePlans(blk, Options{Level: level, CartesianPolicy: enum.CartesianNever})
			if err != nil {
				t.Fatalf("chain n=%d %v: %v", n, level, err)
			}
			wantPairs, wantJoins := chainOracle(level, n)
			if est.Pairs != wantPairs || est.Joins != wantJoins {
				t.Errorf("chain n=%d %v: pairs=%d joins=%d, closed form pairs=%d joins=%d",
					n, level, est.Pairs, est.Joins, wantPairs, wantJoins)
			}
			// A chain's MEMO holds every connected interval: n(n+1)/2 entries,
			// at every level (shape rules prune joins, not reachable subsets).
			if got, want := est.Blocks[0].Entries, n*(n+1)/2; got != want {
				t.Errorf("chain n=%d %v: %d MEMO entries, closed form %d", n, level, got, want)
			}
		}
	}
}

// TestStarCountsMatchClosedForm is the star-shape counterpart.
func TestStarCountsMatchClosedForm(t *testing.T) {
	for n := 2; n <= 10; n++ {
		blk := oracleStar(t, n)
		for _, level := range oracleLevels {
			est, err := EstimatePlans(blk, Options{Level: level, CartesianPolicy: enum.CartesianNever})
			if err != nil {
				t.Fatalf("star n=%d %v: %v", n, level, err)
			}
			wantPairs, wantJoins := starOracle(level, n)
			if est.Pairs != wantPairs || est.Joins != wantJoins {
				t.Errorf("star n=%d %v: pairs=%d joins=%d, closed form pairs=%d joins=%d",
					n, level, est.Pairs, est.Joins, wantPairs, wantJoins)
			}
			// Feasible subsets: each satellite alone plus every hub-containing
			// subset — (n-1) + 2^(n-1) MEMO entries.
			if got, want := est.Blocks[0].Entries, (n-1)+1<<(n-1); got != want {
				t.Errorf("star n=%d %v: %d MEMO entries, closed form %d", n, level, got, want)
			}
		}
	}
}

// TestLevelLadderOrdersSearchSpaces pins the ladder's reason for existing:
// on the same query, each downgrade step must enumerate no more work than
// the level above it — joins and pairs both non-increasing, their sum
// strictly shrinking. (Strictness holds for the sum, not each metric alone:
// on chains, inner2 and zigzag admit the same ordered joins and differ only
// in pairs.) This is the analytical backbone of both admission downgrades
// and the overload ladder: stepping down is guaranteed to shed enumeration.
func TestLevelLadderOrdersSearchSpaces(t *testing.T) {
	for n := 4; n <= 10; n += 2 {
		blk := oracleChain(t, n)
		prevJoins, prevPairs := -1, -1
		for i := len(oracleLevels) - 1; i >= 0; i-- { // high → leftdeep
			est, err := EstimatePlans(blk, Options{Level: oracleLevels[i], CartesianPolicy: enum.CartesianNever})
			if err != nil {
				t.Fatal(err)
			}
			if prevJoins >= 0 {
				if est.Joins > prevJoins || est.Pairs > prevPairs ||
					est.Joins+est.Pairs >= prevJoins+prevPairs {
					t.Errorf("chain n=%d: %v enumerates joins=%d pairs=%d, not less work than the level above (joins=%d pairs=%d)",
						n, oracleLevels[i], est.Joins, est.Pairs, prevJoins, prevPairs)
				}
			}
			prevJoins, prevPairs = est.Joins, est.Pairs
		}
	}
}
