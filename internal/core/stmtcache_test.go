package core

import (
	"sync"
	"testing"
	"time"

	"cote/internal/opt"
	"cote/internal/query"
	"cote/internal/stats"
)

func TestStatementCacheExactRepeats(t *testing.T) {
	c := NewStatementCache()
	blk := starBlock(t, 6, 2, 1, 0, 1)
	if _, ok := c.Lookup(blk); ok {
		t.Fatal("hit on empty cache")
	}
	c.Record(blk, 123*time.Microsecond)
	// A structurally identical query (fresh build) hits.
	blk2 := starBlock(t, 6, 2, 1, 0, 1)
	d, ok := c.Lookup(blk2)
	if !ok || d != 123*time.Microsecond {
		t.Fatalf("exact repeat missed: %v %v", d, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 || c.Len() != 1 {
		t.Fatalf("stats = %d/%d len %d", hits, misses, c.Len())
	}
}

func TestStatementCacheMissesAdHocVariants(t *testing.T) {
	// The paper's point: ad-hoc variations defeat the cache while the COTE
	// estimates them all. One extra predicate per edge, one more ORDER BY
	// column — every variant misses.
	c := NewStatementCache()
	c.Record(starBlock(t, 6, 2, 1, 0, 1), time.Millisecond)
	variants := []struct{ n, preds, ob int }{
		{6, 3, 1}, // one more predicate per edge
		{6, 2, 2}, // one more ORDER BY column
		{8, 2, 1}, // two more tables
	}
	for _, v := range variants {
		if _, ok := c.Lookup(starBlock(t, v.n, v.preds, v.ob, 0, 1)); ok {
			t.Fatalf("variant %+v hit the cache", v)
		}
	}
}

func TestStatementCacheVsCOTEOnAdHocWorkload(t *testing.T) {
	// Run the star batch as an "ad-hoc" stream: each query seen once. The
	// cache can only fall back to the last-seen time (a best-effort
	// strategy); the COTE predicts each query individually. The COTE must
	// win by a wide margin.
	var training []TrainingPoint
	for preds := 1; preds <= 5; preds++ {
		for _, n := range []int{6, 8} {
			blk := starBlock(t, n, preds, 1, 0, 1)
			res, err := opt.Optimize(blk, opt.Options{Level: opt.LevelHighInner2})
			if err != nil {
				t.Fatal(err)
			}
			training = append(training, TrainingPointFrom(res.TotalCounters(), res.Elapsed))
		}
	}
	model, err := Calibrate(training)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewStatementCache()
	var last time.Duration
	var cacheEst, coteEst, actual []float64
	for preds := 1; preds <= 5; preds++ {
		blk := starBlock(t, 10, preds, 1, 0, 1)
		res, err := opt.Optimize(blk, opt.Options{Level: opt.LevelHighInner2})
		if err != nil {
			t.Fatal(err)
		}
		if d, ok := cache.Lookup(blk); ok {
			last = d
		}
		if last > 0 {
			cacheEst = append(cacheEst, last.Seconds())
			actual = append(actual, res.Elapsed.Seconds())
			est, err := EstimatePlans(blk, Options{Level: opt.LevelHighInner2, Model: model})
			if err != nil {
				t.Fatal(err)
			}
			coteEst = append(coteEst, est.PredictedTime.Seconds())
		}
		cache.Record(blk, res.Elapsed)
		last = res.Elapsed
	}
	cacheSum, _ := stats.Summarize(cacheEst, actual)
	coteSum, _ := stats.Summarize(coteEst, actual)
	if coteSum.Mean >= cacheSum.Mean {
		t.Fatalf("COTE (%.0f%%) not better than last-seen cache (%.0f%%) on ad-hoc stream",
			coteSum.Mean*100, cacheSum.Mean*100)
	}
}

func TestStatementCacheEviction(t *testing.T) {
	// Capacity 2: recording a third distinct statement evicts the least
	// recently used one, while a re-used statement survives.
	c := NewStatementCacheCap(2)
	if c.Cap() != 2 {
		t.Fatalf("cap = %d", c.Cap())
	}
	a := starBlock(t, 6, 1, 1, 0, 1)
	b := starBlock(t, 6, 2, 1, 0, 1)
	c.Record(a, 1*time.Millisecond)
	c.Record(b, 2*time.Millisecond)
	if _, ok := c.Lookup(a); !ok { // refresh a: b becomes the LRU
		t.Fatal("a missing before eviction")
	}
	c.Record(starBlock(t, 6, 3, 1, 0, 1), 3*time.Millisecond)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Lookup(b); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Lookup(a); !ok {
		t.Fatal("recently used entry a was evicted")
	}
}

func TestStatementCacheConcurrent(t *testing.T) {
	// N goroutines hammer one cache with overlapping record/lookup streams;
	// run under -race this guards the mutex, and the bounded cache must end
	// at most at capacity with consistent stats.
	c := NewStatementCacheCap(8)
	var blks []*query.Block
	for preds := 1; preds <= 5; preds++ {
		blks = append(blks, starBlock(t, 6, preds, 1, 0, 1))
		blks = append(blks, starBlock(t, 8, preds, 1, 0, 1))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				blk := blks[(g+i)%len(blks)]
				if _, ok := c.Lookup(blk); !ok {
					c.Record(blk, time.Duration(i)*time.Microsecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
	hits, misses := c.Stats()
	if hits+misses != 8*200 {
		t.Fatalf("stats %d+%d != %d lookups", hits, misses, 8*200)
	}
}

func TestPipelinePropertyEstimation(t *testing.T) {
	// FETCH FIRST makes pipelineability interesting; both the real plan
	// counts and the estimate grow, and they stay within tolerance.
	mk := func(firstN int) *TrainingPoint {
		blk := starBlock(t, 6, 2, 0, 0, 1)
		blk.FirstN = firstN
		res, err := opt.Optimize(blk, opt.Options{Level: opt.LevelHigh})
		if err != nil {
			t.Fatal(err)
		}
		blk2 := starBlock(t, 6, 2, 0, 0, 1)
		blk2.FirstN = firstN
		est, err := EstimatePlans(blk2, Options{Level: opt.LevelHigh})
		if err != nil {
			t.Fatal(err)
		}
		tp := TrainingPointFrom(res.TotalCounters(), res.Elapsed)
		t.Logf("firstN=%d actual=%d est=%d", firstN, tp.Counts.Total(), est.Counts.Total())
		if ratio := float64(est.Counts.Total()) / float64(tp.Counts.Total()); ratio < 0.5 || ratio > 2 {
			t.Fatalf("firstN=%d: estimate %d vs actual %d", firstN, est.Counts.Total(), tp.Counts.Total())
		}
		return &tp
	}
	plain := mk(0)
	firstN := mk(10)
	if firstN.Counts.Total() <= plain.Counts.Total() {
		t.Fatalf("FETCH FIRST did not grow actual plan counts: %d vs %d",
			firstN.Counts.Total(), plain.Counts.Total())
	}
}
