package core

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"cote/internal/query"
)

// StatementCache is the straightforward alternative the paper's Section 1.2
// dismisses: "cache the compilation time for each compiled query in a
// statement cache and use it as an estimate for subsequent similar queries".
// It works for exact repeats and fails for the ad-hoc variations the COTE
// targets — the included tests and benchmarks demonstrate both halves.
//
// Queries are keyed by a structural signature (tables, join and local
// predicate shapes, clause column counts); any variation — an extra
// predicate, a different literal's selectivity class, one more ORDER BY
// column — produces a different key and therefore a miss, even though the
// compilation time may barely differ, and conversely a hit can be badly
// wrong when only the statistics changed.
type StatementCache struct {
	entries map[string]time.Duration
	hits    int
	misses  int
}

// NewStatementCache returns an empty cache.
func NewStatementCache() *StatementCache {
	return &StatementCache{entries: make(map[string]time.Duration)}
}

// Signature computes the structural cache key of a query.
func Signature(blk *query.Block) string {
	var b strings.Builder
	for _, sub := range blk.Blocks() {
		b.WriteByte('[')
		for _, t := range sub.Tables {
			if t.Table != nil {
				b.WriteString(t.Table.Name)
			} else {
				b.WriteString("<derived>")
			}
			b.WriteByte(',')
		}
		b.WriteByte('|')
		// Join predicates, canonically ordered.
		var preds []string
		for _, jp := range sub.JoinPreds {
			if jp.Implied {
				continue
			}
			l, r := int(jp.Left), int(jp.Right)
			if l > r {
				l, r = r, l
			}
			preds = append(preds, strconv.Itoa(l)+jp.Op.String()+strconv.Itoa(r))
		}
		sort.Strings(preds)
		b.WriteString(strings.Join(preds, ","))
		b.WriteByte('|')
		locals := 0
		for _, lp := range sub.LocalPreds {
			if !lp.Implied {
				locals++
			}
		}
		b.WriteString(strconv.Itoa(locals))
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(sub.GroupBy)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(len(sub.OrderBy)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(sub.FirstN))
		b.WriteByte(']')
	}
	return b.String()
}

// Lookup returns the cached compilation time for a structurally identical
// query, if one was recorded.
func (c *StatementCache) Lookup(blk *query.Block) (time.Duration, bool) {
	d, ok := c.entries[Signature(blk)]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return d, ok
}

// Record stores the measured compilation time of a query.
func (c *StatementCache) Record(blk *query.Block, actual time.Duration) {
	c.entries[Signature(blk)] = actual
}

// Stats returns the hit/miss counts observed so far.
func (c *StatementCache) Stats() (hits, misses int) { return c.hits, c.misses }

// Len returns the number of cached statements.
func (c *StatementCache) Len() int { return len(c.entries) }
