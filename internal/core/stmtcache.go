package core

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cote/internal/lru"
	"cote/internal/query"
)

// DefaultStatementCacheCapacity bounds NewStatementCache: a long-running
// server replaying an unbounded ad-hoc stream must not grow the cache
// without limit.
const DefaultStatementCacheCapacity = 1024

// StatementCache is the straightforward alternative the paper's Section 1.2
// dismisses: "cache the compilation time for each compiled query in a
// statement cache and use it as an estimate for subsequent similar queries".
// It works for exact repeats and fails for the ad-hoc variations the COTE
// targets — the included tests and benchmarks demonstrate both halves.
//
// Queries are keyed by a structural signature (tables, join and local
// predicate shapes, clause column counts); any variation — an extra
// predicate, a different literal's selectivity class, one more ORDER BY
// column — produces a different key and therefore a miss, even though the
// compilation time may barely differ, and conversely a hit can be badly
// wrong when only the statistics changed.
//
// The cache is bounded (least-recently-used eviction) and safe for
// concurrent use, so the serving layer can share one instance across
// request goroutines.
type StatementCache struct {
	mu      sync.Mutex
	entries *lru.Cache[string, time.Duration]
	hits    int
	misses  int
}

// NewStatementCache returns an empty cache with the default capacity.
func NewStatementCache() *StatementCache {
	return NewStatementCacheCap(DefaultStatementCacheCapacity)
}

// NewStatementCacheCap returns an empty cache evicting beyond capacity
// entries (capacities below 1 are raised to 1).
func NewStatementCacheCap(capacity int) *StatementCache {
	return &StatementCache{entries: lru.New[string, time.Duration](capacity)}
}

// Signature computes the structural cache key of a query.
func Signature(blk *query.Block) string {
	var b strings.Builder
	for _, sub := range blk.Blocks() {
		b.WriteByte('[')
		for _, t := range sub.Tables {
			if t.Table != nil {
				b.WriteString(t.Table.Name)
			} else {
				b.WriteString("<derived>")
			}
			b.WriteByte(',')
		}
		b.WriteByte('|')
		// Join predicates, canonically ordered.
		var preds []string
		for _, jp := range sub.JoinPreds {
			if jp.Implied {
				continue
			}
			l, r := int(jp.Left), int(jp.Right)
			if l > r {
				l, r = r, l
			}
			preds = append(preds, strconv.Itoa(l)+jp.Op.String()+strconv.Itoa(r))
		}
		sort.Strings(preds)
		b.WriteString(strings.Join(preds, ","))
		b.WriteByte('|')
		locals := 0
		for _, lp := range sub.LocalPreds {
			if !lp.Implied {
				locals++
			}
		}
		b.WriteString(strconv.Itoa(locals))
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(sub.GroupBy)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(len(sub.OrderBy)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(sub.FirstN))
		b.WriteByte(']')
	}
	return b.String()
}

// Lookup returns the cached compilation time for a structurally identical
// query, if one was recorded (and not yet evicted).
func (c *StatementCache) Lookup(blk *query.Block) (time.Duration, bool) {
	sig := Signature(blk)
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.entries.Get(sig)
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return d, ok
}

// Record stores the measured compilation time of a query, evicting the
// least recently used statement when the cache is full.
func (c *StatementCache) Record(blk *query.Block, actual time.Duration) {
	sig := Signature(blk)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries.Put(sig, actual)
}

// Stats returns the hit/miss counts observed so far.
func (c *StatementCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached statements.
func (c *StatementCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries.Len()
}

// Cap returns the cache capacity.
func (c *StatementCache) Cap() int { return c.entries.Cap() }
