package core

import (
	"math"
	"testing"
	"time"

	"cote/internal/catalog"
	"cote/internal/cost"
	"cote/internal/opt"
	"cote/internal/props"
	"cote/internal/query"
	"cote/internal/stats"
)

// starBlock builds the synthetic star workload query shape used across the
// paper's experiments: a center joined to n-1 satellites with preds join
// predicates per edge, optional ORDER BY / GROUP BY columns, and physical
// partitioning across nodes when nodes > 1.
func starBlock(tb testing.TB, n, preds, orderby, groupby, nodes int) *query.Block {
	tb.Helper()
	cb := catalog.NewBuilder("star")
	ct := cb.Table("center", 1_000_000)
	for s := 1; s < n; s++ {
		for p := 0; p < preds; p++ {
			ct.Column(cn(s, p), 1_000)
		}
	}
	ct.Column("m1", 500).Column("m2", 500).Column("m3", 500)
	ct.Index("pk_center", true, cn(1, 0))
	if nodes > 1 {
		ct.Partition(nodes, cn(1, 0))
	}
	for s := 1; s < n; s++ {
		st := cb.Table(sn(s), 10_000)
		for p := 0; p < preds; p++ {
			st.Column(cn(0, p), 1_000)
		}
		st.Column("d1", 100).Column("d2", 100)
		st.Index("ix_"+sn(s), false, cn(0, 0))
		if nodes > 1 {
			st.Partition(nodes, cn(0, preds-1))
		}
	}
	cat := cb.Build()

	qb := query.NewBuilder("star", cat)
	qb.AddTable("center", "")
	for s := 1; s < n; s++ {
		qb.AddTable(sn(s), "")
	}
	for s := 1; s < n; s++ {
		for p := 0; p < preds; p++ {
			qb.JoinEq("center", cn(s, p), sn(s), cn(0, p))
		}
	}
	var ob, gb []query.ColID
	for i := 0; i < orderby && i < 3; i++ {
		ob = append(ob, qb.Col("center", "m"+string(rune('1'+i))))
	}
	for i := 0; i < groupby && i < 2; i++ {
		gb = append(gb, qb.Col(sn(1), "d"+string(rune('1'+i))))
	}
	qb.OrderBy(ob...)
	qb.GroupBy(gb...)
	blk, err := qb.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return blk
}

func cn(s, p int) string { return "j" + it(s) + "_" + it(p) }
func sn(s int) string    { return "sat" + it(s) }
func it(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// compare runs real optimization and the estimator on the same query and
// returns (actual, estimated) plan counts.
func compare(tb testing.TB, blk *query.Block, level opt.Level, cfg *cost.Config) (PlanCounts, *Estimate, *opt.Result) {
	tb.Helper()
	res, err := opt.Optimize(blk, opt.Options{Level: level, Config: cfg})
	if err != nil {
		tb.Fatal(err)
	}
	est, err := EstimatePlans(blk, Options{Level: level, Config: cfg})
	if err != nil {
		tb.Fatal(err)
	}
	return CountsFrom(res.TotalCounters()), est, res
}

func TestSerialHSJNExact(t *testing.T) {
	// Figure 5(c): hash joins don't propagate orders, so the estimate is
	// exact — twice the number of (unordered) joins.
	for _, preds := range []int{1, 2, 3} {
		blk := starBlock(t, 6, preds, 1, 0, 1)
		actual, est, res := compare(t, blk, opt.LevelHigh, cost.Serial)
		if est.Counts.ByMethod[props.HSJN] != actual.ByMethod[props.HSJN] {
			t.Fatalf("preds=%d: HSJN estimate %d != actual %d",
				preds, est.Counts.ByMethod[props.HSJN], actual.ByMethod[props.HSJN])
		}
		_, pairs := res.TotalJoins()
		if est.Counts.ByMethod[props.HSJN] != 2*pairs {
			t.Fatalf("preds=%d: HSJN = %d, want 2x%d joins", preds, est.Counts.ByMethod[props.HSJN], pairs)
		}
	}
}

func TestSerialEstimateAccuracy(t *testing.T) {
	// Figure 5(a)-(b): NLJN within ~30%, MGJN within ~15% on star queries.
	for _, tc := range []struct{ n, preds, ob int }{
		{6, 1, 0}, {6, 3, 1}, {8, 2, 2}, {8, 5, 1}, {10, 1, 1},
	} {
		blk := starBlock(t, tc.n, tc.preds, tc.ob, 0, 1)
		actual, est, _ := compare(t, blk, opt.LevelHighInner2, cost.Serial)
		for _, m := range []props.JoinMethod{props.NLJN, props.MGJN} {
			e := stats.RelErr(float64(est.Counts.ByMethod[m]), float64(actual.ByMethod[m]))
			if e > 0.40 {
				t.Errorf("n=%d preds=%d ob=%d: %v estimate %d vs actual %d (%.0f%% error)",
					tc.n, tc.preds, tc.ob, m, est.Counts.ByMethod[m], actual.ByMethod[m], e*100)
			}
		}
	}
}

func TestEstimateTracksWithinBatchVariation(t *testing.T) {
	// §5.3: queries within a batch share join counts but differ in plans;
	// the estimator must reproduce the trend (join-count models cannot).
	var actuals, ests []float64
	for preds := 1; preds <= 5; preds++ {
		blk := starBlock(t, 6, preds, 1, 0, 1)
		actual, est, _ := compare(t, blk, opt.LevelHighInner2, cost.Serial)
		actuals = append(actuals, float64(actual.Total()))
		ests = append(ests, float64(est.Counts.Total()))
	}
	for i := 1; i < len(actuals); i++ {
		if actuals[i] <= actuals[i-1] {
			t.Fatalf("actual plan counts not increasing across batch: %v", actuals)
		}
		if ests[i] <= ests[i-1] {
			t.Fatalf("estimated plan counts do not track the batch trend: %v", ests)
		}
	}
}

func TestParallelEstimateAccuracy(t *testing.T) {
	for _, tc := range []struct{ n, preds, ob int }{
		{5, 2, 1}, {6, 2, 0}, {6, 3, 2},
	} {
		blk := starBlock(t, tc.n, tc.preds, tc.ob, 0, 4)
		actual, est, _ := compare(t, blk, opt.LevelHighInner2, cost.Parallel4)
		for m := props.JoinMethod(0); m < props.NumJoinMethods; m++ {
			if actual.ByMethod[m] == 0 {
				continue
			}
			e := stats.RelErr(float64(est.Counts.ByMethod[m]), float64(actual.ByMethod[m]))
			if e > 0.60 {
				t.Errorf("n=%d preds=%d ob=%d: parallel %v estimate %d vs actual %d (%.0f%% error)",
					tc.n, tc.preds, tc.ob, m, est.Counts.ByMethod[m], actual.ByMethod[m], e*100)
			}
		}
	}
}

func TestCompoundModeRuns(t *testing.T) {
	blk := starBlock(t, 6, 2, 1, 0, 4)
	sep, err := EstimatePlans(blk, Options{Level: opt.LevelHighInner2, Config: cost.Parallel4})
	if err != nil {
		t.Fatal(err)
	}
	blk2 := starBlock(t, 6, 2, 1, 0, 4)
	comp, err := EstimatePlans(blk2, Options{Level: opt.LevelHighInner2, Config: cost.Parallel4, ListMode: CompoundLists})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Counts.Total() == 0 || sep.Counts.Total() == 0 {
		t.Fatal("zero counts")
	}
	// Same enumeration, so joins agree.
	if comp.Joins != sep.Joins {
		t.Fatalf("compound joins %d != separate joins %d", comp.Joins, sep.Joins)
	}
	if SeparateLists.String() != "separate" || CompoundLists.String() != "compound" {
		t.Fatal("mode names wrong")
	}
}

func TestEstimationOverheadSmall(t *testing.T) {
	// Figure 4: estimation is a small fraction of real compilation. Wall
	// clocks are noisy in CI, so only a generous bound is asserted; the
	// bench harness reports the precise percentages.
	blk := starBlock(t, 9, 3, 2, 1, 1)
	res, err := opt.Optimize(blk, opt.Options{Level: opt.LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimatePlans(blk, Options{Level: opt.LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if est.Elapsed > res.Elapsed/2 {
		t.Fatalf("estimation took %v of a %v compilation — expected a small fraction",
			est.Elapsed, res.Elapsed)
	}
}

func TestCalibrateRecoversLinearModel(t *testing.T) {
	// Synthetic training data generated from known constants.
	want := TimeModel{Tinst: 1e-9, C0: 50_000}
	want.C[props.MGJN], want.C[props.NLJN], want.C[props.HSJN] = 5000, 2000, 4000
	var training []TrainingPoint
	for i := 1; i <= 8; i++ {
		counts := PlanCounts{}
		counts.ByMethod[props.MGJN] = 100 * i
		counts.ByMethod[props.NLJN] = 50 * i * i
		counts.ByMethod[props.HSJN] = 30*i + i*i*i // not collinear with MGJN
		training = append(training, TrainingPoint{Counts: counts, Actual: want.Predict(counts)})
	}
	got, err := Calibrate(training)
	if err != nil {
		t.Fatal(err)
	}
	for m := props.JoinMethod(0); m < props.NumJoinMethods; m++ {
		if math.Abs(got.C[m]-want.C[m])/want.C[m] > 0.01 {
			t.Fatalf("C[%v] = %v, want %v", m, got.C[m], want.C[m])
		}
	}
	// The ratio normalizes to smallest = 1: 2.5 : 1 : 2.
	r := got.Ratio()
	if math.Abs(r[props.NLJN]-1) > 0.01 || math.Abs(r[props.MGJN]-2.5) > 0.05 {
		t.Fatalf("ratio = %v", r)
	}
	if got.String() == "" {
		t.Fatal("empty model string")
	}
}

func TestCalibrateNeedsEnoughPoints(t *testing.T) {
	if _, err := Calibrate(nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := Calibrate(make([]TrainingPoint, 2)); err == nil {
		t.Fatal("tiny training set accepted")
	}
}

func TestEndToEndTimePrediction(t *testing.T) {
	// Train Ct on one batch, predict another: the error should be bounded.
	// (The paper reports <30% on most workloads; wall-clock noise in tests
	// warrants a looser bound, tightened in the bench harness.)
	var training []TrainingPoint
	for preds := 1; preds <= 5; preds++ {
		for _, n := range []int{6, 8} {
			blk := starBlock(t, n, preds, 1, 0, 1)
			res, err := opt.Optimize(blk, opt.Options{Level: opt.LevelHighInner2})
			if err != nil {
				t.Fatal(err)
			}
			training = append(training, TrainingPoint{
				Counts: CountsFrom(res.TotalCounters()),
				Actual: res.Elapsed,
			})
		}
	}
	model, err := Calibrate(training)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out query.
	blk := starBlock(t, 7, 3, 1, 0, 1)
	res, err := opt.Optimize(blk, opt.Options{Level: opt.LevelHighInner2})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimatePlans(blk, Options{Level: opt.LevelHighInner2, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if est.PredictedTime <= 0 {
		t.Fatal("no time prediction")
	}
	e := stats.RelErr(est.PredictedTime.Seconds(), res.Elapsed.Seconds())
	if e > 1.5 {
		t.Fatalf("time prediction %v vs actual %v (%.0f%% error)", est.PredictedTime, res.Elapsed, e*100)
	}
}

func TestJoinCountBaseline(t *testing.T) {
	blk := starBlock(t, 8, 1, 0, 0, 1)
	jc, err := CountJoins(blk, Options{Level: opt.LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ClosedFormJoins("star", 8)
	if err != nil {
		t.Fatal(err)
	}
	if jc.Pairs != want {
		t.Fatalf("join count %d != closed form %d", jc.Pairs, want)
	}
}

func TestClosedFormJoins(t *testing.T) {
	if n, _ := ClosedFormJoins("linear", 4); n != 10 {
		t.Fatalf("linear(4) = %d, want 10", n)
	}
	if n, _ := ClosedFormJoins("star", 4); n != 12 {
		t.Fatalf("star(4) = %d, want 12", n)
	}
	if n, _ := ClosedFormJoins("star", 1); n != 0 {
		t.Fatal("star(1) != 0")
	}
	if _, err := ClosedFormJoins("cycle", 5); err == nil {
		t.Fatal("closed form for cyclic shape should not exist (#P-complete)")
	}
	if _, err := ClosedFormJoins("linear", 0); err == nil {
		t.Fatal("invalid table count accepted")
	}
}

func TestJoinCountModelCannotSeparateBatch(t *testing.T) {
	// §5.3: within a batch the join count is constant, so the best possible
	// join-count model predicts one time for all five queries, while actual
	// plan counts spread widely. Verify the spread the baseline misses.
	var planTotals []int
	pairs := -1
	for preds := 1; preds <= 5; preds++ {
		blk := starBlock(t, 8, preds, 1, 0, 1)
		actual, _, res := compare(t, blk, opt.LevelHighInner2, cost.Serial)
		planTotals = append(planTotals, actual.Total())
		_, p := res.TotalJoins()
		if pairs < 0 {
			pairs = p
		} else if pairs != p {
			t.Fatalf("join pairs differ within batch: %d vs %d", pairs, p)
		}
	}
	spread := float64(planTotals[len(planTotals)-1]) / float64(planTotals[0])
	if spread < 1.5 {
		t.Fatalf("plan-count spread within batch only %.2fx — fixture too weak", spread)
	}
}

func TestCalibrateJoinCountModel(t *testing.T) {
	training := []JoinTrainingPoint{
		{Pairs: 10, Actual: 100 * time.Microsecond},
		{Pairs: 20, Actual: 200 * time.Microsecond},
		{Pairs: 40, Actual: 400 * time.Microsecond},
	}
	m, err := CalibrateJoinCount(training)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(30); math.Abs(got.Seconds()-300e-6) > 5e-6 {
		t.Fatalf("baseline predict(30) = %v, want ~300µs", got)
	}
	if _, err := CalibrateJoinCount(training[:1]); err == nil {
		t.Fatal("single training point accepted")
	}
}

func TestPiggybackMatchesIndividualEstimates(t *testing.T) {
	blk := starBlock(t, 7, 2, 1, 0, 1)
	levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelHighInner2, opt.LevelHigh}
	multi, err := EstimateLevels(blk, opt.LevelHigh, levels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range levels {
		blk2 := starBlock(t, 7, 2, 1, 0, 1)
		single, err := EstimatePlans(blk2, Options{Level: l})
		if err != nil {
			t.Fatal(err)
		}
		if multi.Joins[l] != single.Joins {
			t.Errorf("level %v: piggyback joins %d != individual %d", l, multi.Joins[l], single.Joins)
		}
		// Counts agree up to the property lists built under the wider
		// top-level propagation; require close agreement.
		e := stats.RelErr(float64(multi.Counts[l].Total()), float64(single.Counts.Total()))
		if e > 0.15 {
			t.Errorf("level %v: piggyback total %d vs individual %d (%.0f%%)",
				l, multi.Counts[l].Total(), single.Counts.Total(), e*100)
		}
	}
}

func TestPiggybackRejectsNonSubsumedLevels(t *testing.T) {
	blk := starBlock(t, 5, 1, 0, 0, 1)
	if _, err := EstimateLevels(blk, opt.LevelMediumLeftDeep, []opt.Level{opt.LevelHigh}, Options{}); err == nil {
		t.Fatal("non-subsumed level accepted")
	}
	if _, err := EstimateLevels(blk, opt.LevelHigh, []opt.Level{opt.LevelLow}, Options{}); err == nil {
		t.Fatal("greedy level accepted for plan-count estimation")
	}
}

func TestMemoryEstimatePositiveAndMonotone(t *testing.T) {
	small, err := EstimatePlans(starBlock(t, 5, 1, 0, 0, 1), Options{Level: opt.LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	big, err := EstimatePlans(starBlock(t, 9, 3, 2, 1, 1), Options{Level: opt.LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if small.PredictedMemoryBytes <= 0 {
		t.Fatal("no memory estimate")
	}
	if big.PredictedMemoryBytes <= small.PredictedMemoryBytes {
		t.Fatalf("memory estimate not monotone: %d vs %d",
			small.PredictedMemoryBytes, big.PredictedMemoryBytes)
	}
}

func TestMOPDecisions(t *testing.T) {
	blk := starBlock(t, 6, 2, 1, 0, 1)
	// A model predicting enormous compile times forbids recompilation.
	slow := &TimeModel{Tinst: 1e-9}
	slow.C[props.NLJN], slow.C[props.MGJN], slow.C[props.HSJN] = 1e15, 1e15, 1e15
	_, dec, err := (&MOP{Model: slow}).Run(blk)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Recompiled || dec.FinalLevel != opt.LevelLow {
		t.Fatalf("MOP recompiled under a prohibitive estimate: %+v", dec)
	}

	// A near-zero model always recompiles, and the high-level plan is no
	// worse.
	fast := &TimeModel{Tinst: 1e-9}
	blk2 := starBlock(t, 6, 2, 1, 0, 1)
	res, dec, err := (&MOP{Model: fast}).Run(blk2)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Recompiled || dec.FinalLevel == opt.LevelLow {
		t.Fatalf("MOP refused a free recompilation: %+v", dec)
	}
	if dec.FinalPlanCost > dec.LowPlanExecCost {
		t.Fatalf("high-level plan (%v) worse than greedy plan (%v)",
			dec.FinalPlanCost, dec.LowPlanExecCost)
	}
	if res.Plan == nil || dec.TotalElapsed <= 0 {
		t.Fatal("missing result details")
	}
}

func TestMOPStaticQueriesGetMoreBudget(t *testing.T) {
	// A model tuned so C sits between E and 10E: dynamic queries skip
	// recompilation, static ones take it.
	blk := starBlock(t, 6, 1, 0, 0, 1)
	low, err := opt.Optimize(blk, opt.Options{Level: opt.LevelLow})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimatePlans(blk, Options{Level: opt.LevelHighInner2})
	if err != nil {
		t.Fatal(err)
	}
	// Choose C so that predicted compile = 3x the low plan's exec time.
	const tinst = 1e-9
	target := 3 * low.Plan.Cost * tinst
	perPlan := target / tinst / float64(est.Counts.Total())
	m := &TimeModel{Tinst: tinst}
	for i := range m.C {
		m.C[i] = perPlan
	}

	_, dyn, err := (&MOP{Model: m}).Run(starBlock(t, 6, 1, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, sta, err := (&MOP{Model: m, Static: true}).Run(starBlock(t, 6, 1, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Recompiled {
		t.Fatalf("dynamic query recompiled with C=3E: %+v", dyn)
	}
	if !sta.Recompiled {
		t.Fatalf("static query skipped recompilation with C=3E: %+v", sta)
	}
}

func TestEstimateLazyPolicyIndexSensitivity(t *testing.T) {
	// §5.4: under the eager policy, indexes barely change plan counts; the
	// partition layout matters instead (lazy generation). Compare two
	// identical queries over schemas differing only in an extra index.
	build := func(extraIndex bool) *query.Block {
		cb := catalog.NewBuilder("ix")
		tb := cb.Table("r", 100_000).Column("a", 1_000).Column("b", 100)
		if extraIndex {
			tb.Index("ix_r_b", false, "b")
		}
		cb.Table("s", 50_000).Column("a", 1_000)
		cat := cb.Build()
		qb := query.NewBuilder("ix", cat)
		qb.AddTable("r", "")
		qb.AddTable("s", "")
		qb.JoinEq("r", "a", "s", "a")
		return qb.MustBuild()
	}
	plain, err := EstimatePlans(build(false), Options{Level: opt.LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := EstimatePlans(build(true), Options{Level: opt.LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Counts != indexed.Counts {
		t.Fatalf("eager policy: index changed estimated counts: %v vs %v",
			plain.Counts, indexed.Counts)
	}
}
