package core

import (
	"errors"
	"fmt"
	"time"

	"cote/internal/plangen"
	"cote/internal/props"
	"cote/internal/stats"
)

// TimeModel converts plan counts to a compilation-time prediction with the
// paper's linear model (Section 3.5):
//
//	T = Tinst * (sum over join types t of Ct * Pt  +  C0)
//
// Tinst is the machine-dependent seconds-per-instruction-like scale, Ct is
// the per-method cost of generating one join plan (in abstract instruction
// units), Pt the estimated plan count, and C0 a fixed per-query overhead
// absorbing the non-join work ("other" in Figure 2).
type TimeModel struct {
	Tinst float64
	C     [props.NumJoinMethods]float64
	C0    float64
}

// Predict returns the compilation-time prediction for the plan counts.
func (m *TimeModel) Predict(counts PlanCounts) time.Duration {
	instr := m.C0
	for t, p := range counts.ByMethod {
		instr += m.C[t] * float64(p)
	}
	return time.Duration(m.Tinst * instr * float64(time.Second))
}

// Ratio returns the Cm : Cn : Ch proportions normalized so the smallest
// non-zero constant is 1 — the form in which the paper reports DB2's ratios
// (5:2:4 serial, 6:1:2 parallel).
func (m *TimeModel) Ratio() [props.NumJoinMethods]float64 {
	min := 0.0
	for _, c := range m.C {
		if c > 0 && (min == 0 || c < min) {
			min = c
		}
	}
	var out [props.NumJoinMethods]float64
	if min == 0 {
		return out
	}
	for t, c := range m.C {
		out[t] = c / min
	}
	return out
}

// String renders the model compactly.
func (m *TimeModel) String() string {
	r := m.Ratio()
	return fmt.Sprintf("TimeModel{Cm:Cn:Ch = %.1f:%.1f:%.1f, C0=%.0f, Tinst=%.3g}",
		r[props.MGJN], r[props.NLJN], r[props.HSJN], m.C0, m.Tinst)
}

// TrainingPoint pairs the plan counts of one query with its measured real
// compilation time. The paper collects these from a training workload
// compiled normally ("collect the real counts of generated join plans
// together with the actual compilation time"). GenSeconds optionally
// carries the measured per-method plan-generation time of the same run —
// the Figure 2 instrumentation — which Calibrate uses to pin the Ct
// proportions when the per-method counts alone are too collinear for a free
// regression (the situation the paper describes for the parallel version,
// where per-plan times vary most).
type TrainingPoint struct {
	Counts     PlanCounts
	Actual     time.Duration
	GenSeconds [props.NumJoinMethods]float64
}

// TrainingPointFrom builds a training point from one real optimization:
// plan counts, total time, and the per-method generation times (with
// plan-saving time attributed proportionally to counts) that keep Calibrate
// well conditioned.
func TrainingPointFrom(c plangen.Counters, actual time.Duration) TrainingPoint {
	tp := TrainingPoint{Counts: CountsFrom(c), Actual: actual}
	total := c.TotalGenerated()
	for m := range tp.GenSeconds {
		tp.GenSeconds[m] = c.GenTime[m].Seconds()
		if total > 0 {
			tp.GenSeconds[m] += c.SaveTime.Seconds() * float64(c.Generated[m]) / float64(total)
		}
	}
	return tp
}

// Calibrate fits the per-method constants by non-negative least squares on
// the training points, one regression per database "release" or
// configuration (the paper refits per release and keeps distinct serial and
// parallel constant sets). Rows are weighted by 1/actual so the fit
// minimizes relative rather than absolute error — the metric the paper
// evaluates on — which also keeps the regression well conditioned when
// per-method counts are correlated across training queries. Tinst is fixed
// at 1/10^9 — a nominal nanosecond-scale instruction — so the fitted
// constants carry the machine-specific magnitudes.
func Calibrate(training []TrainingPoint) (*TimeModel, error) {
	if len(training) < int(props.NumJoinMethods)+1 {
		return nil, errors.New("core: need more training queries than model constants")
	}
	const tinst = 1e-9
	x := make([][]float64, len(training))
	y := make([]float64, len(training))
	for i, tp := range training {
		actual := tp.Actual.Seconds() / tinst
		if actual <= 0 {
			actual = 1
		}
		row := make([]float64, props.NumJoinMethods+1)
		for t, p := range tp.Counts.ByMethod {
			row[t] = float64(p) / actual
		}
		row[props.NumJoinMethods] = 1 / actual // C0 regressor
		x[i] = row
		y[i] = 1
	}
	beta, err := stats.NonNegativeOLS(x, y)
	if err != nil {
		return nil, fmt.Errorf("core: calibration failed: %w", err)
	}
	m := &TimeModel{Tinst: tinst, C0: beta[props.NumJoinMethods]}
	copy(m.C[:], beta[:props.NumJoinMethods])

	// With per-method timing available, replace the free per-method fit by
	// a two-stage one: the Ct proportions come from the measured
	// generation-time shares, and a scale factor plus C0 are refit by the
	// same weighted regression. The free fit zeroes constants whenever the
	// per-method counts are nearly collinear across the training set.
	var perMethod [props.NumJoinMethods]float64
	var haveGen bool
	{
		var cnt [props.NumJoinMethods]float64
		for _, tp := range training {
			for t := range perMethod {
				perMethod[t] += tp.GenSeconds[t] / tinst
				cnt[t] += float64(tp.Counts.ByMethod[t])
			}
		}
		for t := range perMethod {
			if perMethod[t] > 0 && cnt[t] > 0 {
				perMethod[t] /= cnt[t]
				haveGen = true
			}
		}
	}
	if haveGen {
		x2 := make([][]float64, len(training))
		for i, tp := range training {
			actual := tp.Actual.Seconds() / tinst
			if actual <= 0 {
				actual = 1
			}
			base := 0.0
			for t, p := range tp.Counts.ByMethod {
				base += perMethod[t] * float64(p)
			}
			x2[i] = []float64{base / actual, 1 / actual}
		}
		beta2, err := stats.NonNegativeOLS(x2, y)
		if err != nil {
			return nil, fmt.Errorf("core: calibration failed: %w", err)
		}
		if beta2[0] > 0 {
			for t := range m.C {
				m.C[t] = beta2[0] * perMethod[t]
			}
			m.C0 = beta2[1]
		}
	}
	return m, nil
}
