package core

import (
	"fmt"
	"time"

	"cote/internal/cost"
	"cote/internal/enum"
	"cote/internal/knobs"
	"cote/internal/memo"
	"cote/internal/opt"
	"cote/internal/props"
	"cote/internal/query"
)

// MultiLevelEstimate holds per-level plan counts obtained from a single
// enumeration pass at the highest level — the Section 6.2 extension: "It's
// possible to estimate the compilation time of multiple levels of
// optimization in a single pass, as long as the search space of the highest
// level subsumes that of all other levels."
type MultiLevelEstimate struct {
	Levels  []opt.Level
	Counts  map[opt.Level]PlanCounts
	Joins   map[opt.Level]int
	Elapsed time.Duration
}

// EstimateLevels runs one enumeration at the top level and accumulates plan
// counts separately for every requested level whose search space the top
// level subsumes. The amortization is the point: one enumeration pays for
// all level estimates.
func EstimateLevels(blk *query.Block, top opt.Level, levels []opt.Level, opts Options) (*MultiLevelEstimate, error) {
	start := time.Now()
	for _, l := range levels {
		if l == opt.LevelLow {
			return nil, fmt.Errorf("core: the greedy level has no plan-count estimate")
		}
		if !top.Subsumes(l) {
			return nil, fmt.Errorf("core: level %v does not subsume %v", top, l)
		}
	}
	cfg := opts.Config
	if cfg == nil {
		cfg = cost.Serial
	}

	out := &MultiLevelEstimate{
		Levels: levels,
		Counts: make(map[opt.Level]PlanCounts),
		Joins:  make(map[opt.Level]int),
	}
	for _, b := range blk.Blocks() {
		if opts.Exec.Cancelled() {
			return nil, opts.Exec.Err()
		}
		card := cost.NewEstimator(b, cost.Simple)
		sc := props.NewScope(b)
		mem := memo.New(b.NumTables())

		// One counter per level, sharing the single enumeration. Property
		// propagation runs once (on the top-level counter); the per-level
		// counters only accumulate counts for the joins inside their space.
		counters := make(map[opt.Level]*counter, len(levels))
		for _, l := range levels {
			counters[l] = newCounter(b, sc, cfg.Nodes, opts.OrderPolicy, opts.ListMode, opts.PropagateEveryJoin)
		}
		topCnt := newCounter(b, sc, cfg.Nodes, opts.OrderPolicy, opts.ListMode, opts.PropagateEveryJoin)

		eopts := top.EnumOptions()
		eopts.Cartesian = opts.CartesianPolicy
		eopts.Exec = opts.Exec
		en := enum.New(b, mem, card, eopts)
		if workers := knobs.Parallelism(opts.Parallelism); workers > 1 {
			// One parallel pass serves every level: each worker forks one
			// counting lane per level, gated by that level's search-space
			// filter; the top counter only propagates (its counts are never
			// read), on the driver in canonical order.
			lanes := make([]countLane, len(levels))
			for i, l := range levels {
				lvl := l
				lanes[i] = countLane{
					cnt:   counters[lvl],
					admit: func(outer, inner *memo.Entry) bool { return levelAdmits(lvl, outer, inner) },
				}
			}
			phooks, finish := parallelCountHooks(topCnt, lanes)
			_, err := en.RunParallel(phooks, workers)
			finish()
			if err != nil {
				return nil, err
			}
		} else {
			hooks := enum.Hooks{
				Init: topCnt.initialize,
				Join: func(outer, inner, result *memo.Entry) {
					for _, l := range levels {
						if levelAdmits(l, outer, inner) {
							// Count without re-propagating: share the lists
							// built by the top counter.
							counters[l].countOnly(outer, inner, result)
						}
					}
					topCnt.accumulatePlans(outer, inner, result)
				},
			}
			if _, err := en.Run(hooks); err != nil {
				return nil, err
			}
		}
		for _, l := range levels {
			c := out.Counts[l]
			c.Add(counters[l].counts)
			out.Counts[l] = c
			out.Joins[l] += counters[l].joins
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// levelAdmits reports whether the (outer, inner) orientation lies in the
// search space of the level.
func levelAdmits(l opt.Level, outer, inner *memo.Entry) bool {
	o := l.EnumOptions()
	innerSize := inner.Tables.Len()
	switch o.Shape {
	case enum.LeftDeep:
		if innerSize != 1 {
			return false
		}
	case enum.ZigZag:
		if innerSize != 1 && outer.Tables.Len() != 1 {
			return false
		}
	}
	if o.CompositeInnerLimit > 0 && innerSize > o.CompositeInnerLimit {
		return false
	}
	return true
}

// countOnly accumulates plan counts for one join without touching the
// shared property lists: NLJN (full order propagation) generates one plan
// per interesting order of the outer plus the DC plan; MGJN (partial) one
// per merge-candidate order plus its coverage list; HSJN (none) exactly
// one — each scaled by the candidate execution partitions in parallel mode
// (the separate-list multiplication of Section 3.4).
func (c *counter) countOnly(outer, inner, result *memo.Entry) {
	c.ocBuf, c.icBuf = c.sc.AppendJoinColsBetween(outer.Tables, inner.Tables, c.ocBuf[:0], c.icBuf[:0])
	outerCols, innerCols := c.ocBuf, c.icBuf
	candParts := c.candidateParts(outer, inner, result, outerCols, innerCols)
	c.countWithCols(outer, inner, result, outerCols, innerCols, candParts)
}

// countWithCols is countOnly with the join columns and execution partitions
// already computed — the shared hot path of accumulate_plans.
func (c *counter) countWithCols(outer, inner, result *memo.Entry, outerCols, innerCols []query.ColID, candParts []props.Partition) {
	c.joins++
	if c.mode == CompoundLists {
		c.countCompound(outer, result, candParts, outerCols, innerCols)
		return
	}
	nParts := len(candParts)
	// Expensive-predicate deferral adds one plan lane per expensive table
	// in the outer (the defer-past-joins variants NLJN carries upward).
	lanes := c.expTables.Intersect(outer.Tables).Len()
	// Pipelineability adds one lane when the outer is composite: composite
	// entries keep both a pipelined (NLJN-topped) and a blocking don't-care
	// plan, while a base table's only don't-care plan is the (pipelined)
	// scan.
	if c.pipeFactor > 1 && outer.Tables.Len() >= 2 {
		lanes++
	}
	c.counts.ByMethod[props.NLJN] += (outer.Orders.Len() + 1 + lanes) * nParts
	if len(outerCols) > 0 {
		c.counts.ByMethod[props.MGJN] += c.mergeOrderCount(outer, result, outerCols, innerCols) * nParts
		c.counts.ByMethod[props.HSJN] += nParts
	}
}
