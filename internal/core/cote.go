package core

import (
	"context"
	"sync"
	"time"

	"cote/internal/cost"
	"cote/internal/enum"
	"cote/internal/knobs"
	"cote/internal/memo"
	"cote/internal/opt"
	"cote/internal/optctx"
	"cote/internal/props"
	"cote/internal/query"
	"cote/internal/resource"
)

// Options configures a compilation-time estimation run. The zero value
// estimates the serial LevelHighInner2 compilation with DB2's defaults
// (eager orders, lazy partitions, separate lists, first-join-only
// propagation).
type Options struct {
	// Level is the optimization level whose compilation is being estimated.
	Level opt.Level
	// Config selects serial or parallel (nil = serial).
	Config *cost.Config
	// Parallelism fans the counting pass out to this many workers per size
	// class (floored at 1 = serial). The estimate is bit-identical at every
	// degree — counting runs on workers over immutable smaller entries,
	// property propagation replays on the driver in canonical order — so
	// the knob only trades wall time for cores, never results.
	Parallelism int
	// OrderPolicy is the order generation policy (default eager).
	OrderPolicy props.GenerationPolicy
	// ListMode selects separate vs compound property lists (Section 3.4).
	ListMode ListMode
	// PropagateEveryJoin disables the first-join-only propagation
	// simplification (DB2 experience item 4) — ablation only.
	PropagateEveryJoin bool
	// CartesianPolicy overrides the Cartesian handling (default card-one).
	CartesianPolicy enum.CartesianPolicy
	// NaiveScan forces the full size-class cross-product scan instead of the
	// connectivity-indexed candidate scan. Diagnostics and differential
	// comparison only — the admitted join set is identical either way.
	NaiveScan bool
	// Model converts plan counts to a time prediction when non-nil.
	Model *TimeModel
	// Models supplies the current model from a registry when Model is nil
	// (internal/calib's versioned registry implements it): the provider is
	// read once per run, so a mid-stream model swap is picked up by the
	// next estimation without re-wiring options.
	Models ModelProvider
	// MemModel converts the estimate's structural counts into a predicted
	// peak optimizer memory. When nil, a Models provider that also versions
	// memory models (MemModelProvider) is consulted, then the structural
	// default — so PredictedPeakBytes is always populated.
	MemModel *MemModel
	// Exec, when non-nil, bounds the estimation run: its cancellation is
	// honored at block and enumeration granularity. Estimation is cheap
	// (sub-3% of real compilation), but deadline-sensitive callers want even
	// that bounded.
	Exec *optctx.Ctx
}

func (o Options) level() opt.Level {
	if o.Level == opt.LevelLow {
		return opt.LevelHighInner2
	}
	return o.Level
}

// BlockEstimate is the estimation outcome for one query block.
type BlockEstimate struct {
	Block     *query.Block
	Counts    PlanCounts
	EnumStats enum.Stats
	// Entries is the number of MEMO entries the enumeration created.
	Entries int
	// PropertyBytes is the space the interesting-property lists used.
	PropertyBytes int
	// MeasuredBytes is the durable byte total charged to this block's MEMO
	// (entry footprints plus property values at their fixed per-structure
	// sizes). It is computed from the memo-local tally, so it is populated —
	// and deterministic — even when no run accountant is attached.
	MeasuredBytes int64
}

// Estimate is the estimation outcome for a whole query.
type Estimate struct {
	Blocks []*BlockEstimate
	// Counts totals estimated generated join plans per method.
	Counts PlanCounts
	// Joins and Pairs total the enumerated ordered joins and unordered
	// join pairs (the Ono-Lohman metric).
	Joins, Pairs int
	// CandidatesVisited and CandidatesSkipped total the size-class partner
	// slots the enumerator examined vs proved irrelevant up front via the
	// connectivity index (visited + skipped = the naive scan's work).
	CandidatesVisited, CandidatesSkipped int
	// Elapsed is the wall time the estimation itself took — the overhead
	// the paper bounds below 3% of real compilation (Figure 4).
	Elapsed time.Duration
	// PredictedTime is the compilation-time prediction (zero without a
	// model).
	PredictedTime time.Duration
	// PredictedMemoryBytes is the optimizer memory lower bound of the
	// Section 6.2 extension.
	PredictedMemoryBytes int64
	// PredictedPeakBytes is the memory model's prediction of the real
	// compile's durable MEMO high-water mark at this level (entries,
	// retained plans, property values at fixed per-structure sizes).
	PredictedPeakBytes int64
	// MeasuredPeakBytes totals the durable bytes the estimation run's own
	// MEMOs were charged — the estimator's measured counterpart, bit-stable
	// across pool states and parallelism.
	MeasuredPeakBytes int64
}

// EstimatePlans runs plan-estimate mode on a query: the join enumerator is
// reused with the initialize / accumulate_plans hooks installed instead of
// plan generation, over the simple cardinality model. Nested blocks are
// estimated children-first, their (simple-mode) output cardinalities feeding
// the parents, mirroring the real optimizer's multi-block processing.
func EstimatePlans(blk *query.Block, opts Options) (*Estimate, error) {
	start := time.Now()
	cfg := knobs.CostConfig(opts.Config)
	est := &Estimate{}
	for _, b := range blk.Blocks() {
		if opts.Exec.Cancelled() {
			return nil, opts.Exec.Err()
		}
		be, outCard, err := estimateBlock(b, cfg, opts)
		if err != nil {
			return nil, err
		}
		est.Blocks = append(est.Blocks, be)
		est.Counts.Add(be.Counts)
		est.Joins += be.EnumStats.Joins
		est.Pairs += be.EnumStats.Pairs
		est.CandidatesVisited += be.EnumStats.CandidatesVisited
		est.CandidatesSkipped += be.EnumStats.CandidatesSkipped
		est.PredictedMemoryBytes += memoryLowerBound(be)
		est.MeasuredPeakBytes += be.MeasuredBytes
		// Export the block's output cardinality (simple mode) to the
		// derived refs in later blocks, as the real optimizer does with its
		// full-mode estimate.
		for _, pb := range blk.Blocks() {
			for _, ref := range pb.Tables {
				if ref.Derived == b {
					ref.CardOverride = outCard
				}
			}
		}
	}
	est.Elapsed = time.Since(start)
	if m := opts.model(); m != nil {
		est.PredictedTime = m.Predict(est.Counts)
	}
	est.PredictedPeakBytes = EstimateMemory(est, opts.memModel())
	return est, nil
}

// model resolves the effective time model: an explicit Model wins, then
// the registry provider, then none.
func (o Options) model() *TimeModel {
	if o.Model != nil {
		return o.Model
	}
	if o.Models != nil {
		return o.Models.CurrentModel()
	}
	return nil
}

// memModel resolves the effective memory model: an explicit MemModel wins,
// then a registry provider that versions memory models, then the structural
// default (per-structure footprints, no calibration).
func (o Options) memModel() *MemModel {
	if o.MemModel != nil {
		return o.MemModel
	}
	if p, ok := o.Models.(MemModelProvider); ok {
		if m := p.CurrentMemModel(); m != nil {
			return m
		}
	}
	return DefaultMemModel()
}

// EstimatePlansCtx is EstimatePlans bounded by a context: when ctx expires
// the estimation stops cooperatively and the context's error is returned.
func EstimatePlansCtx(ctx context.Context, blk *query.Block, opts Options) (*Estimate, error) {
	opts.Exec = optctx.New(ctx)
	return EstimatePlans(blk, opts)
}

// memoPool recycles MEMOs across estimation runs. estimateBlock is the one
// place a MEMO provably does not escape (BlockEstimate keeps only scalar
// summaries of it), so the serving layer's steady state reuses the entry map
// and size buckets instead of reallocating them per request.
var memoPool = sync.Pool{New: func() any { return memo.New(0) }}

// estimateBlock runs one block through the enumerator with counting hooks,
// returning its estimate and its (simple-mode) output cardinality.
func estimateBlock(blk *query.Block, cfg *cost.Config, opts Options) (*BlockEstimate, float64, error) {
	// Plan-estimate mode deliberately uses the simple cardinality model —
	// cheap, but ignorant of keys, which is the documented source of the
	// parallel HSJN estimation errors.
	card := cost.NewEstimator(blk, cost.Simple)
	sc := props.NewScope(blk)
	mem := memoPool.Get().(*memo.Memo)
	mem.Reset(blk.NumTables())
	// Attach after Reset (which detaches and zeroes the previous run's
	// accounting) so pooled reuse never carries stale charges forward. A nil
	// Exec still keeps the memo-local tally, so MeasuredBytes costs nothing.
	mem.SetAccountant(opts.Exec.Resources())
	defer memoPool.Put(mem)
	cnt := newCounter(blk, sc, cfg.Nodes, opts.OrderPolicy, opts.ListMode, opts.PropagateEveryJoin)

	eopts := opts.level().EnumOptions()
	eopts.Cartesian = opts.CartesianPolicy
	eopts.NaiveScan = opts.NaiveScan
	eopts.Exec = opts.Exec
	en := enum.New(blk, mem, card, eopts)
	var st enum.Stats
	var err error
	// Counting never touches the scope's shared-mode caches (see parcount.go),
	// so unlike optimizeBlock the parallel path needs no sc.MarkShared().
	if workers := knobs.Parallelism(opts.Parallelism); workers > 1 {
		hooks, finish := cnt.parallelHooks()
		st, err = en.RunParallel(hooks, workers)
		finish()
	} else {
		st, err = en.Run(cnt.hooks())
	}
	if err != nil {
		return nil, 0, err
	}

	root := mem.Entry(blk.AllTables())
	outCard := root.Card
	if len(blk.GroupBy) > 0 {
		groups := 1.0
		for _, c := range blk.GroupBy {
			groups *= blk.Column(c).Col.NDV
		}
		if groups < outCard {
			outCard = groups
		}
	}

	// Durable property values are charged once per block: the counter only
	// ever grows the lists (nothing releases mid-block), so the end-of-block
	// charge reaches the same durable high-water mark as per-add charging
	// would, without touching the accountant on the per-join hot path.
	pb := cnt.propertyBytes(mem)
	mem.ChargeProperties(pb / memo.PropertyValueBytes)
	// The counter's per-join scratch is working memory, not MEMO content:
	// charge its high-water capacity and release it, so the run's total peak
	// sees it but blocks don't accumulate freed buffers.
	if acct := opts.Exec.Resources(); acct != nil {
		sb := cnt.scratchBytes()
		acct.Charge(resource.KindScratch, sb)
		acct.Release(resource.KindScratch, sb)
	}

	return &BlockEstimate{
		Block:         blk,
		Counts:        cnt.counts,
		EnumStats:     st,
		Entries:       mem.NumEntries(),
		PropertyBytes: pb,
		MeasuredBytes: mem.AccountedBytes(),
	}, outCard, nil
}

// memoryLowerBound converts a block's property-list footprint into the
// optimizer memory lower bound of Section 6.2: the MEMO must hold at least
// one plan per interesting property value (plus the DC plan per entry).
func memoryLowerBound(be *BlockEstimate) int64 {
	const bytesPerPlan = 256 // "a full plan [is] typically in the order of hundreds of bytes"
	const bytesPerProperty = 4
	properties := be.PropertyBytes / bytesPerProperty
	plans := properties + be.Entries // one DC plan per entry
	return int64(plans) * bytesPerPlan
}
