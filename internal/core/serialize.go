package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"cote/internal/props"
)

// This file is the one shared serialization of estimation results: the
// service's JSON responses and the CLIs' human-readable printing both go
// through it instead of hand-rolling their own formats.

// String renders per-method plan counts compactly, e.g.
// "MGJN 12, NLJN 34, HSJN 5 (total 51)".
func (p PlanCounts) String() string {
	return fmt.Sprintf("MGJN %d, NLJN %d, HSJN %d (total %d)",
		p.ByMethod[props.MGJN], p.ByMethod[props.NLJN], p.ByMethod[props.HSJN], p.Total())
}

type planCountsJSON struct {
	MGJN  int `json:"mgjn"`
	NLJN  int `json:"nljn"`
	HSJN  int `json:"hsjn"`
	Total int `json:"total"`
}

// MarshalJSON renders the counts as named per-method fields plus the total.
func (p PlanCounts) MarshalJSON() ([]byte, error) {
	return json.Marshal(planCountsJSON{
		MGJN:  p.ByMethod[props.MGJN],
		NLJN:  p.ByMethod[props.NLJN],
		HSJN:  p.ByMethod[props.HSJN],
		Total: p.Total(),
	})
}

// UnmarshalJSON accepts the MarshalJSON form (the total is recomputed, not
// trusted).
func (p *PlanCounts) UnmarshalJSON(data []byte) error {
	var j planCountsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	p.ByMethod[props.MGJN] = j.MGJN
	p.ByMethod[props.NLJN] = j.NLJN
	p.ByMethod[props.HSJN] = j.HSJN
	return nil
}

type timeModelJSON struct {
	Tinst float64 `json:"tinst"`
	MGJN  float64 `json:"c_mgjn"`
	NLJN  float64 `json:"c_nljn"`
	HSJN  float64 `json:"c_hsjn"`
	C0    float64 `json:"c0"`
}

// MarshalJSON renders the time model with named per-method constants — the
// wire form of /v1/model and the -model-file registry persistence.
func (m TimeModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(timeModelJSON{
		Tinst: m.Tinst,
		MGJN:  m.C[props.MGJN],
		NLJN:  m.C[props.NLJN],
		HSJN:  m.C[props.HSJN],
		C0:    m.C0,
	})
}

// UnmarshalJSON accepts the MarshalJSON form.
func (m *TimeModel) UnmarshalJSON(data []byte) error {
	var j timeModelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	m.Tinst = j.Tinst
	m.C[props.MGJN] = j.MGJN
	m.C[props.NLJN] = j.NLJN
	m.C[props.HSJN] = j.HSJN
	m.C0 = j.C0
	return nil
}

type joinCountModelJSON struct {
	Tinst float64 `json:"tinst"`
	Cj    float64 `json:"cj"`
	C0    float64 `json:"c0"`
}

// MarshalJSON renders the join-count baseline model, so both model kinds
// round-trip through -model-file and /v1/model the same way.
func (m JoinCountModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(joinCountModelJSON{Tinst: m.Tinst, Cj: m.Cj, C0: m.C0})
}

// UnmarshalJSON accepts the MarshalJSON form.
func (m *JoinCountModel) UnmarshalJSON(data []byte) error {
	var j joinCountModelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	m.Tinst = j.Tinst
	m.Cj = j.Cj
	m.C0 = j.C0
	return nil
}

// String renders the estimate on one line: counts, enumerated joins, the
// estimator's own elapsed time, and — when a model produced them — the
// compilation-time and memory predictions.
func (e *Estimate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plans %v | %d joins (%d pairs)", e.Counts, e.Joins, e.Pairs)
	fmt.Fprintf(&b, " | estimation took %v", e.Elapsed)
	if e.PredictedTime > 0 {
		fmt.Fprintf(&b, " | predicted compile %v", e.PredictedTime)
	}
	if e.PredictedMemoryBytes > 0 {
		fmt.Fprintf(&b, " | predicted memory >= %d B", e.PredictedMemoryBytes)
	}
	if e.PredictedPeakBytes > 0 {
		fmt.Fprintf(&b, " | predicted peak %d B (measured %d B)", e.PredictedPeakBytes, e.MeasuredPeakBytes)
	}
	return b.String()
}

type estimateJSON struct {
	Counts               PlanCounts `json:"counts"`
	Joins                int        `json:"joins"`
	Pairs                int        `json:"pairs"`
	Blocks               int        `json:"blocks"`
	CandidatesVisited    int        `json:"candidates_visited"`
	CandidatesSkipped    int        `json:"candidates_skipped"`
	ElapsedNS            int64      `json:"elapsed_ns"`
	PredictedTimeNS      int64      `json:"predicted_time_ns,omitempty"`
	PredictedMemoryBytes int64      `json:"predicted_memory_bytes"`
	PredictedBytes       int64      `json:"predicted_bytes,omitempty"`
	PeakBytes            int64      `json:"peak_bytes,omitempty"`
}

// MarshalJSON renders the estimate for service responses: plan counts,
// join totals, block count, and durations in integer nanoseconds.
func (e *Estimate) MarshalJSON() ([]byte, error) {
	return json.Marshal(estimateJSON{
		Counts:               e.Counts,
		Joins:                e.Joins,
		Pairs:                e.Pairs,
		Blocks:               len(e.Blocks),
		CandidatesVisited:    e.CandidatesVisited,
		CandidatesSkipped:    e.CandidatesSkipped,
		ElapsedNS:            e.Elapsed.Nanoseconds(),
		PredictedTimeNS:      e.PredictedTime.Nanoseconds(),
		PredictedMemoryBytes: e.PredictedMemoryBytes,
		PredictedBytes:       e.PredictedPeakBytes,
		PeakBytes:            e.MeasuredPeakBytes,
	})
}

// UnmarshalJSON accepts the MarshalJSON form. The wire form carries only the
// block *count*, not the per-block estimates, so Blocks decodes to nil — a
// decoded Estimate is the client's view of the totals, not a re-runnable
// enumeration record.
func (e *Estimate) UnmarshalJSON(data []byte) error {
	var j estimateJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*e = Estimate{
		Counts:               j.Counts,
		Joins:                j.Joins,
		Pairs:                j.Pairs,
		CandidatesVisited:    j.CandidatesVisited,
		CandidatesSkipped:    j.CandidatesSkipped,
		Elapsed:              time.Duration(j.ElapsedNS),
		PredictedTime:        time.Duration(j.PredictedTimeNS),
		PredictedMemoryBytes: j.PredictedMemoryBytes,
		PredictedPeakBytes:   j.PredictedBytes,
		MeasuredPeakBytes:    j.PeakBytes,
	}
	return nil
}
