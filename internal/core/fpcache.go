package core

import (
	"context"
	"sync"
	"time"

	"cote/internal/enum"
	"cote/internal/faultinject"
	"cote/internal/fingerprint"
	"cote/internal/lru"
	"cote/internal/opt"
	"cote/internal/optctx"
	"cote/internal/props"
	"cote/internal/query"
)

// FPKey identifies one memoizable estimation: the structural fingerprint of
// the query plus every knob that changes plan counts at a given level.
// Options.Model is deliberately excluded — the time model is linear in the
// counts and is re-applied per request — as are Options.Exec (cancellation
// bounds a run, it does not change its result) and Options.Parallelism (the
// parallel counting pass is bit-identical to serial at every degree; a miss
// still runs at the requesting caller's degree via runOpts).
type FPKey struct {
	FP                 fingerprint.FP
	Level              opt.Level
	Nodes              int
	OrderPolicy        props.GenerationPolicy
	ListMode           ListMode
	PropagateEveryJoin bool
	Cartesian          enum.CartesianPolicy
}

// KeyFor builds the cache key for estimating a query with fingerprint fp
// under opts, normalizing the knobs the same way EstimatePlans does (nil
// config = serial, LevelLow = LevelHighInner2).
func KeyFor(fp fingerprint.FP, opts Options) FPKey {
	nodes := 1
	if opts.Config != nil && opts.Config.Nodes > 1 {
		nodes = opts.Config.Nodes
	}
	return FPKey{
		FP:                 fp,
		Level:              opts.level(),
		Nodes:              nodes,
		OrderPolicy:        opts.OrderPolicy,
		ListMode:           opts.ListMode,
		PropagateEveryJoin: opts.PropagateEveryJoin,
		Cartesian:          opts.CartesianPolicy,
	}
}

// FingerprintCache memoizes plan-count estimates across structurally
// identical queries: a hit skips join enumeration entirely and only
// re-applies the linear time model, turning a repeat estimate into an LRU
// lookup.
//
// Soundness rests on canonicalization, not just hashing: enumeration counts
// are NOT invariant under table renumbering (first-join-only property
// propagation follows the bitset order, and the floating-point cardinality
// accumulation can tip the card-one Cartesian threshold), so the cache
// estimates fingerprint.Canonical(blk) — the deterministic rebuild every
// structurally equal query maps to byte-for-byte. Fingerprint equality
// therefore implies identical counts by construction, and a hit returns
// exactly what a fresh run of the same structure would.
//
// The cache is safe for concurrent use. Concurrent misses on the same key
// may estimate redundantly (last Put wins, results are identical); callers
// that want single-flight semantics layer it on top, as the serving layer
// does.
type FingerprintCache struct {
	mu     sync.Mutex
	lru    *lru.Cache[FPKey, *Estimate]
	hits   uint64
	misses uint64
}

// DefaultFingerprintCacheSize bounds a cache built with capacity <= 0.
const DefaultFingerprintCacheSize = 1024

// NewFingerprintCache returns a cache holding at most capacity estimates
// (DefaultFingerprintCacheSize when capacity <= 0).
func NewFingerprintCache(capacity int) *FingerprintCache {
	if capacity <= 0 {
		capacity = DefaultFingerprintCacheSize
	}
	return &FingerprintCache{lru: lru.New[FPKey, *Estimate](capacity)}
}

// EstimatePlans is the memoizing counterpart of core.EstimatePlans. It
// fingerprints blk, looks up (fingerprint, level, knobs), and on a miss
// canonicalizes blk and runs the enumerator over the rebuild. The returned
// hit flag reports whether enumeration was skipped.
//
// The returned Estimate is a private top-level copy, priced with opts.Model
// and with Elapsed set to this call's wall time (a hit's Elapsed is the
// lookup cost, microseconds, not the original enumeration). Its Blocks
// slice is shared with the cache and must be treated as read-only; the
// block pointers inside reference the canonical rebuild, not blk itself.
func (c *FingerprintCache) EstimatePlans(blk *query.Block, opts Options) (*Estimate, bool, error) {
	start := time.Now()
	// A lookup needs only the hash; the canonical rebuild — several times the
	// cost of hashing — is deferred to the miss path, where the enumeration
	// it feeds dwarfs it anyway.
	key := KeyFor(fingerprint.Of(blk), opts)

	c.mu.Lock()
	if e, ok := c.lru.Get(key); ok {
		c.hits++
		c.mu.Unlock()
		return priced(e, opts, time.Since(start)), true, nil
	}
	c.misses++
	c.mu.Unlock()

	// A miss is the cache's fill path; the injection point fails it before
	// the canonical rebuild so a chaos plan can prove callers survive a
	// memoization layer that errors instead of computing.
	if err := faultinject.Check(faultinject.PointFPCacheFill); err != nil {
		return nil, false, err
	}

	canon, _, err := fingerprint.Canonical(blk)
	if err != nil {
		return nil, false, err
	}
	runOpts := opts
	runOpts.Model = nil // cache unpriced; every return path re-prices
	est, err := EstimatePlans(canon, runOpts)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.lru.Put(key, est)
	c.mu.Unlock()
	return priced(est, opts, time.Since(start)), false, nil
}

// EstimatePlansCtx is EstimatePlans bounded by a context (misses stop
// cooperatively when ctx expires; hits never block).
func (c *FingerprintCache) EstimatePlansCtx(ctx context.Context, blk *query.Block, opts Options) (*Estimate, bool, error) {
	opts.Exec = optctx.New(ctx)
	return c.EstimatePlans(blk, opts)
}

// priced returns a top-level copy of est with the caller's model applied
// and the given wall time.
func priced(est *Estimate, opts Options, elapsed time.Duration) *Estimate {
	out := *est
	out.Elapsed = elapsed
	out.PredictedTime = 0
	if opts.Model != nil {
		out.PredictedTime = opts.Model.Predict(out.Counts)
	}
	return &out
}

// Stats reports the cache's lifetime hit/miss counters and current
// occupancy.
func (c *FingerprintCache) Stats() (hits, misses uint64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len(), c.lru.Cap()
}
