package core

import (
	"math/rand"
	"testing"

	"cote/internal/catalog"
	"cote/internal/enum"
	"cote/internal/opt"
	"cote/internal/props"
	"cote/internal/query"
)

// randBlock generates a random connected query over a random schema: a
// metamorphic fixture for the estimator's structural invariants.
func randBlock(rng *rand.Rand) *query.Block {
	n := 3 + rng.Intn(5)
	cb := catalog.NewBuilder("meta")
	for t := 0; t < n; t++ {
		tb := cb.Table(tn(t), float64(100*(1+rng.Intn(1000))))
		for c := 0; c < 4; c++ {
			tb.Column(cn2(c), float64(1+rng.Intn(1000)))
		}
		if rng.Intn(3) == 0 {
			tb.Index("ix_"+tn(t), false, cn2(rng.Intn(4)))
		}
	}
	cat := cb.Build()

	qb := query.NewBuilder("meta", cat)
	for t := 0; t < n; t++ {
		qb.AddTable(tn(t), "")
	}
	// Spanning tree keeps the graph connected; extra random edges add
	// cycles (and the transitive closure adds more).
	for t := 1; t < n; t++ {
		peer := rng.Intn(t)
		qb.JoinEq(tn(peer), cn2(rng.Intn(4)), tn(t), cn2(rng.Intn(4)))
	}
	for extra := rng.Intn(3); extra > 0; extra-- {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		qb.JoinEq(tn(a), cn2(rng.Intn(4)), tn(b), cn2(rng.Intn(4)))
	}
	for f := rng.Intn(3); f > 0; f-- {
		qb.FilterEq(tn(rng.Intn(n)), cn2(rng.Intn(4)))
	}
	if rng.Intn(2) == 0 {
		qb.OrderBy(qb.Col(tn(rng.Intn(n)), cn2(rng.Intn(4))))
	}
	if rng.Intn(3) == 0 {
		qb.GroupBy(qb.Col(tn(rng.Intn(n)), cn2(rng.Intn(4))))
	}
	blk, err := qb.Build()
	if err != nil {
		panic(err)
	}
	return blk
}

func tn(t int) string  { return "mt" + string(rune('a'+t)) }
func cn2(c int) string { return "c" + string(rune('0'+c)) }

// TestMetamorphicEstimatorInvariants checks, over many random queries, the
// structural invariants the paper's method guarantees:
//
//  1. without Cartesian products, real optimization and plan-estimate mode
//     enumerate the same joins (the join enumerator is reusable);
//  2. serial HSJN estimates are exact (2x the joins with equality preds);
//  3. estimates and actuals stay within a constant factor;
//  4. the estimator runs without error on whatever the generator produces.
func TestMetamorphicEstimatorInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 60; trial++ {
		blk := randBlock(rng)
		res, err := opt.Optimize(blk, opt.Options{
			Level: opt.LevelHigh, CartesianPolicy: enum.CartesianNever,
		})
		if err != nil {
			t.Fatalf("trial %d: optimize: %v", trial, err)
		}
		est, err := EstimatePlans(blk, Options{
			Level: opt.LevelHigh, CartesianPolicy: enum.CartesianNever,
		})
		if err != nil {
			t.Fatalf("trial %d: estimate: %v", trial, err)
		}

		ordered, _ := res.TotalJoins()
		if est.Joins != ordered {
			t.Fatalf("trial %d: estimator enumerated %d joins, optimizer %d",
				trial, est.Joins, ordered)
		}
		actual := CountsFrom(res.TotalCounters())
		if est.Counts.ByMethod[props.HSJN] != actual.ByMethod[props.HSJN] {
			t.Fatalf("trial %d: serial HSJN estimate %d != actual %d (query %d tables, %d preds)",
				trial, est.Counts.ByMethod[props.HSJN], actual.ByMethod[props.HSJN],
				blk.NumTables(), len(blk.JoinPreds))
		}
		if actual.Total() > 0 {
			ratio := float64(est.Counts.Total()) / float64(actual.Total())
			if ratio < 0.3 || ratio > 3 {
				t.Fatalf("trial %d: estimate %d vs actual %d (ratio %.2f)",
					trial, est.Counts.Total(), actual.Total(), ratio)
			}
		}
	}
}

// TestMetamorphicLevelMonotonicity: larger search spaces never enumerate
// fewer joins or estimate fewer plans.
func TestMetamorphicLevelMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelMediumZigZag, opt.LevelHigh}
	for trial := 0; trial < 25; trial++ {
		blk := randBlock(rng)
		prevJoins, prevPlans := -1, -1
		for _, l := range levels {
			est, err := EstimatePlans(blk, Options{Level: l, CartesianPolicy: enum.CartesianNever})
			if err != nil {
				t.Fatalf("trial %d level %v: %v", trial, l, err)
			}
			if est.Joins < prevJoins {
				t.Fatalf("trial %d: joins not monotone across levels (%d < %d at %v)",
					trial, est.Joins, prevJoins, l)
			}
			if est.Counts.Total() < prevPlans {
				t.Fatalf("trial %d: plans not monotone across levels (%d < %d at %v)",
					trial, est.Counts.Total(), prevPlans, l)
			}
			prevJoins, prevPlans = est.Joins, est.Counts.Total()
		}
	}
}

// TestMetamorphicDeterminism: estimating the same query twice gives
// identical counts (no hidden map-iteration dependence).
func TestMetamorphicDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		blk := randBlock(rng)
		a, err := EstimatePlans(blk, Options{CartesianPolicy: enum.CartesianNever})
		if err != nil {
			t.Fatal(err)
		}
		b, err := EstimatePlans(blk, Options{CartesianPolicy: enum.CartesianNever})
		if err != nil {
			t.Fatal(err)
		}
		if a.Counts != b.Counts || a.Joins != b.Joins {
			t.Fatalf("trial %d: nondeterministic estimate: %v vs %v", trial, a.Counts, b.Counts)
		}
	}
}
