package core

import (
	"time"

	"cote/internal/cost"
	"cote/internal/opt"
	"cote/internal/query"
)

// MOPDecision records what the meta-optimizer chose and why.
type MOPDecision struct {
	// LowPlanExecCost is E: the estimated execution time of the plan found
	// at the low optimization level.
	LowPlanExecCost time.Duration
	// HighCompileEstimate is C: the estimated compilation time of the high
	// level.
	HighCompileEstimate time.Duration
	// Recompiled reports whether C < threshold*E triggered high-level
	// reoptimization.
	Recompiled bool
	// FinalLevel is the level whose plan was returned.
	FinalLevel opt.Level
	// FinalPlanCost is the execution cost estimate of the returned plan,
	// as a duration.
	FinalPlanCost time.Duration
	// TotalElapsed is the wall time the whole meta-optimization took
	// (low-level compile + estimation + optional high-level compile).
	TotalElapsed time.Duration
}

// MOP is the simple meta-optimizer of Figure 1: compile at the low level,
// obtain the execution-cost estimate E of the plan found, ask the COTE for
// the high level's compilation time C, and recompile at the high level only
// when C < Threshold*E — if the query would finish executing before the
// high-level optimizer does, further optimization is pointless.
type MOP struct {
	// High is the high optimization level (default LevelHighInner2).
	High opt.Level
	// Config selects serial or parallel.
	Config *cost.Config
	// Model converts plan counts to compilation time; required.
	Model *TimeModel
	// ExecTinst converts plan execution cost units to time (the executor's
	// seconds-per-instruction; defaults to the model's Tinst).
	ExecTinst float64
	// Threshold scales E: recompile when C < Threshold*E. Values below 1
	// demand a clear margin; the default is 1, the paper's "if C is larger
	// than E, there is no point in further optimization".
	Threshold float64
	// Static marks a statically compiled (repeatedly executed) query; the
	// paper suggests spending more on those, modeled as a 10x threshold.
	Static bool
	// Parallelism is forwarded to the real compilations (both levels); the
	// estimation pass is unaffected — it is already cheap and serial.
	Parallelism int
}

// Run executes the meta-optimization loop on a query and returns the chosen
// plan's result plus the decision record.
func (m *MOP) Run(blk *query.Block) (*opt.Result, *MOPDecision, error) {
	start := time.Now()
	high := m.High
	if high == opt.LevelLow {
		high = opt.LevelHighInner2
	}
	execTinst := m.ExecTinst
	if execTinst == 0 && m.Model != nil {
		execTinst = m.Model.Tinst
	}
	threshold := m.Threshold
	if threshold <= 0 {
		threshold = 1
	}
	if m.Static {
		threshold *= 10
	}

	low, err := opt.Optimize(blk, opt.Options{Level: opt.LevelLow, Config: m.Config, Parallelism: m.Parallelism})
	if err != nil {
		return nil, nil, err
	}
	dec := &MOPDecision{
		LowPlanExecCost: time.Duration(low.Plan.Cost * execTinst * float64(time.Second)),
		FinalLevel:      opt.LevelLow,
		FinalPlanCost:   time.Duration(low.Plan.Cost * execTinst * float64(time.Second)),
	}

	est, err := EstimatePlans(blk, Options{Level: high, Config: m.Config, Model: m.Model})
	if err != nil {
		return nil, nil, err
	}
	dec.HighCompileEstimate = est.PredictedTime

	result := low
	if float64(dec.HighCompileEstimate) < threshold*float64(dec.LowPlanExecCost) {
		dec.Recompiled = true
		dec.FinalLevel = high
		result, err = opt.Optimize(blk, opt.Options{Level: high, Config: m.Config, Parallelism: m.Parallelism})
		if err != nil {
			return nil, nil, err
		}
		dec.FinalPlanCost = time.Duration(result.Plan.Cost * execTinst * float64(time.Second))
	}
	dec.TotalElapsed = time.Since(start)
	return result, dec, nil
}
