package core

import (
	"context"
	"errors"
	"time"

	"cote/internal/cost"
	"cote/internal/fingerprint"
	"cote/internal/opt"
	"cote/internal/optctx"
	"cote/internal/query"
)

// MOPDecision records what the meta-optimizer chose and why.
type MOPDecision struct {
	// LowPlanExecCost is E: the estimated execution time of the plan found
	// at the low optimization level.
	LowPlanExecCost time.Duration
	// HighCompileEstimate is C: the estimated compilation time of the high
	// level.
	HighCompileEstimate time.Duration
	// Recompiled reports whether C < threshold*E triggered high-level
	// reoptimization.
	Recompiled bool
	// FinalLevel is the level whose plan was returned.
	FinalLevel opt.Level
	// FinalPlanCost is the execution cost estimate of the returned plan,
	// as a duration.
	FinalPlanCost time.Duration
	// TotalElapsed is the wall time the whole meta-optimization took
	// (low-level compile + estimation + optional high-level compile).
	TotalElapsed time.Duration
	// AbortedLevels lists the levels whose recompilation was started and
	// then aborted because actual generated-plan progress overran the
	// prediction by more than the budget factor — the graceful-degradation
	// path when the time model is wrong.
	AbortedLevels []opt.Level
	// HighPredictedPeakBytes is the memory model's predicted peak for the
	// high level — the number the memory admission check gates on.
	HighPredictedPeakBytes int64
	// MemSkippedLevels lists the levels never started because their
	// predicted peak memory already exceeded MemBudget; MemAbortedLevels
	// lists the levels started and then aborted because measured usage
	// crossed the budget (the memory analogue of AbortedLevels).
	MemSkippedLevels []opt.Level
	MemAbortedLevels []opt.Level
	// FinalPeakBytes is the measured durable memory high-water mark of the
	// compilation whose plan was returned (zero for the unaccounted paths).
	FinalPeakBytes int64
}

// MOP is the simple meta-optimizer of Figure 1: compile at the low level,
// obtain the execution-cost estimate E of the plan found, ask the COTE for
// the high level's compilation time C, and recompile at the high level only
// when C < Threshold*E — if the query would finish executing before the
// high-level optimizer does, further optimization is pointless.
type MOP struct {
	// High is the high optimization level (default LevelHighInner2).
	High opt.Level
	// Config selects serial or parallel.
	Config *cost.Config
	// Model converts plan counts to compilation time. When nil, Models is
	// consulted instead; one of the two must yield a model.
	Model *TimeModel
	// Models supplies the current model from a versioned registry when
	// Model is nil (read once per Run, so calibration swaps apply to the
	// next meta-optimization).
	Models ModelProvider
	// Observer, when non-nil, receives one CompileObservation per real
	// compilation the meta-optimizer runs (the low-level compile and any
	// successful recompilation) — the feedback that keeps an online
	// calibrator's model honest.
	Observer CompileObserver
	// ExecTinst converts plan execution cost units to time (the executor's
	// seconds-per-instruction; defaults to the model's Tinst).
	ExecTinst float64
	// Threshold scales E: recompile when C < Threshold*E. Values below 1
	// demand a clear margin; the default is 1, the paper's "if C is larger
	// than E, there is no point in further optimization".
	Threshold float64
	// Static marks a statically compiled (repeatedly executed) query; the
	// paper suggests spending more on those, modeled as a 10x threshold.
	Static bool
	// Parallelism is forwarded to the real compilations (both levels) and to
	// the estimation passes, whose parallel counting is bit-identical to
	// serial — the rung probes gate admission on the serving hot path, so
	// they scale with the same knob the compiles do.
	Parallelism int
	// BudgetFactor, when positive, arms the budget abort on the high-level
	// recompilation: if it generates more than BudgetFactor times the
	// COTE-predicted plan count, the compile is aborted and retried at the
	// next-lower level (down to the greedy floor). Zero disables the abort —
	// the prediction is trusted unconditionally, the pre-budget behaviour.
	BudgetFactor float64
	// MemBudget, when positive, bounds each recompilation rung's optimizer
	// memory in bytes — twice over: a rung whose predicted peak already
	// exceeds the budget is skipped without compiling (admission on the
	// prediction), and a started rung aborts when its measured usage
	// crosses the budget (enforcement on the measurement). Either way the
	// ladder drops to the next-lower level. Zero disables both.
	MemBudget int64
}

// Run executes the meta-optimization loop on a query and returns the chosen
// plan's result plus the decision record.
func (m *MOP) Run(blk *query.Block) (*opt.Result, *MOPDecision, error) {
	return m.RunCtx(context.Background(), blk)
}

// RunCtx is Run bounded by a context and — when BudgetFactor is set — by
// the predicted plan count: the high-level recompilation runs under an
// execution context armed with a generated-plan budget, and an overrun
// aborts it and retries at the next-lower level instead of returning an
// error. ctx expiry, in contrast, aborts the whole meta-optimization.
func (m *MOP) RunCtx(ctx context.Context, blk *query.Block) (*opt.Result, *MOPDecision, error) {
	start := time.Now()
	high := m.High
	if high == opt.LevelLow {
		high = opt.LevelHighInner2
	}
	model := m.Model
	if model == nil && m.Models != nil {
		model = m.Models.CurrentModel()
	}
	execTinst := m.ExecTinst
	if execTinst == 0 && model != nil {
		execTinst = model.Tinst
	}
	threshold := m.Threshold
	if threshold <= 0 {
		threshold = 1
	}
	if m.Static {
		threshold *= 10
	}

	low, err := opt.OptimizeCtx(ctx, blk, opt.Options{Level: opt.LevelLow, Config: m.Config, Parallelism: m.Parallelism})
	if err != nil {
		return nil, nil, err
	}
	// The low-level compile carries no prediction (nothing priced it), but
	// its counts and time still train the calibrator — and decorrelate the
	// regression from the high-level observations.
	m.observe(blk, opt.LevelLow, 0, nil, low)
	dec := &MOPDecision{
		LowPlanExecCost: time.Duration(low.Plan.Cost * execTinst * float64(time.Second)),
		FinalLevel:      opt.LevelLow,
		FinalPlanCost:   time.Duration(low.Plan.Cost * execTinst * float64(time.Second)),
	}

	est, err := EstimatePlansCtx(ctx, blk, Options{Level: high, Config: m.Config, Parallelism: m.Parallelism, Model: model, Models: m.Models})
	if err != nil {
		return nil, nil, err
	}
	dec.HighCompileEstimate = est.PredictedTime
	dec.HighPredictedPeakBytes = est.PredictedPeakBytes

	result := low
	dec.FinalPeakBytes = low.Resources.DurablePeakBytes
	if float64(dec.HighCompileEstimate) < threshold*float64(dec.LowPlanExecCost) {
		res, level, err := m.recompile(ctx, blk, high, model, est, dec)
		if err != nil {
			return nil, nil, err
		}
		if res != nil {
			dec.Recompiled = true
			dec.FinalLevel = level
			dec.FinalPlanCost = time.Duration(res.Plan.Cost * execTinst * float64(time.Second))
			dec.FinalPeakBytes = res.Resources.DurablePeakBytes
			result = res
		}
	}
	dec.TotalElapsed = time.Since(start)
	return result, dec, nil
}

// recompile walks the level ladder downward from high, running each level
// under a plan budget of BudgetFactor times its COTE prediction and — when
// MemBudget is set — under the memory budget, skipping rungs whose predicted
// peak already exceeds it. A budget overrun (plans or bytes) records the
// aborted level and drops to the next-lower one (re-estimating its plan
// count); when every DP level aborts, recompile returns nil and the caller
// keeps the greedy plan. Context errors propagate — a deadline ends the
// whole loop, not one rung.
func (m *MOP) recompile(ctx context.Context, blk *query.Block, high opt.Level, model *TimeModel, est *Estimate, dec *MOPDecision) (*opt.Result, opt.Level, error) {
	for level := high; level != opt.LevelLow; level = level.NextLower() {
		if level != high {
			// Dropping a rung changes the search space, so the budget's
			// baseline must be re-predicted for the new level.
			var err error
			est, err = EstimatePlansCtx(ctx, blk, Options{Level: level, Config: m.Config, Parallelism: m.Parallelism, Model: model, Models: m.Models})
			if err != nil {
				return nil, 0, err
			}
		}
		if m.MemBudget > 0 && est.PredictedPeakBytes > m.MemBudget {
			// Admission on the prediction: don't start a compile the model
			// already expects to blow the budget.
			dec.MemSkippedLevels = append(dec.MemSkippedLevels, level)
			continue
		}
		oc := optctx.New(ctx)
		if m.BudgetFactor > 0 {
			total := int64(est.Counts.Total())
			oc.SetPredictedPlans(total)
			oc.SetPlanBudget(int64(m.BudgetFactor * float64(total)))
		}
		oc.SetMemBudget(m.MemBudget)
		res, err := opt.OptimizeWith(oc, blk, opt.Options{Level: level, Config: m.Config, Parallelism: m.Parallelism})
		if err == nil {
			// One prediction, one measurement: the pair the drift detector
			// scores the model on.
			m.observe(blk, level, est.PredictedTime, est, res)
			return res, level, nil
		}
		switch {
		case errors.Is(err, optctx.ErrBudgetExceeded):
			dec.AbortedLevels = append(dec.AbortedLevels, level)
		case errors.Is(err, optctx.ErrMemBudgetExceeded):
			dec.MemAbortedLevels = append(dec.MemAbortedLevels, level)
		default:
			return nil, 0, err
		}
	}
	return nil, 0, nil
}

// observe forwards one real compilation to the observer, if any. est, when
// non-nil, supplies the estimate-side regressors that make the observation
// usable for memory-model calibration alongside the time model's counts.
func (m *MOP) observe(blk *query.Block, level opt.Level, predicted time.Duration, est *Estimate, res *opt.Result) {
	if m.Observer == nil {
		return
	}
	o := ObservationFrom(res.TotalCounters(), level, fingerprint.Of(blk), predicted, res.Elapsed)
	o.PeakBytes = res.Resources.DurablePeakBytes
	if est != nil {
		for _, be := range est.Blocks {
			o.Entries += be.Entries
			o.PropertyBytes += be.PropertyBytes
		}
	}
	m.Observer.ObserveCompile(o)
}
