package core

import (
	"testing"

	"cote/internal/opt"
)

type obsRecorder struct{ obs []CompileObservation }

func (r *obsRecorder) ObserveCompile(o CompileObservation) { r.obs = append(r.obs, o) }

type staticProvider struct{ m *TimeModel }

func (p staticProvider) CurrentModel() *TimeModel { return p.m }

// MOP must emit one observation per real compilation it runs: the low-level
// compile (no prediction to score) and the high-level recompile (paired
// with the estimate that justified it).
func TestMOPObserverReceivesBothCompiles(t *testing.T) {
	rec := &obsRecorder{}
	m := &MOP{Model: mopFastModel(), Observer: rec}
	_, dec, err := m.Run(starBlock(t, 6, 2, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Recompiled {
		t.Fatalf("fixture did not recompile: %+v", dec)
	}
	if len(rec.obs) != 2 {
		t.Fatalf("%d observations, want 2 (low compile + recompile)", len(rec.obs))
	}
	low, high := rec.obs[0], rec.obs[1]
	if low.Level != opt.LevelLow || low.Predicted != 0 {
		t.Fatalf("low observation: %+v", low)
	}
	if high.Level != opt.LevelHighInner2 {
		t.Fatalf("high observation at %v", high.Level)
	}
	if high.Predicted != dec.HighCompileEstimate {
		t.Fatalf("high observation predicted %v, decision says %v", high.Predicted, dec.HighCompileEstimate)
	}
	if high.Actual <= 0 || high.Counts.Total() <= 0 {
		t.Fatalf("high observation unmeasured: %+v", high)
	}
	if low.Fingerprint != high.Fingerprint || low.Fingerprint == (CompileObservation{}).Fingerprint {
		t.Fatalf("fingerprints %v vs %v", low.Fingerprint, high.Fingerprint)
	}
}

// With no explicit Model, MOP and EstimatePlans must consult the provider —
// the hook that lets a registry swap models between runs.
func TestModelProviderFallback(t *testing.T) {
	model := &TimeModel{Tinst: 1e-9, C: [3]float64{5, 2, 4}, C0: 100}
	m := &MOP{Models: staticProvider{model}}
	_, dec, err := m.Run(starBlock(t, 6, 2, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if dec.HighCompileEstimate <= 0 {
		t.Fatalf("provider model unused: %+v", dec)
	}

	est, err := EstimatePlans(starBlock(t, 6, 2, 1, 0, 1), Options{Level: opt.LevelHighInner2, Models: staticProvider{model}})
	if err != nil {
		t.Fatal(err)
	}
	if est.PredictedTime <= 0 {
		t.Fatal("EstimatePlans ignored Options.Models")
	}
	// An explicit Model wins over the provider.
	bigger := &TimeModel{Tinst: 2 * model.Tinst, C: model.C, C0: model.C0}
	est2, err := EstimatePlans(starBlock(t, 6, 2, 1, 0, 1), Options{Level: opt.LevelHighInner2, Model: bigger, Models: staticProvider{model}})
	if err != nil {
		t.Fatal(err)
	}
	if est2.PredictedTime != 2*est.PredictedTime {
		t.Fatalf("explicit model did not win: %v vs %v", est2.PredictedTime, est.PredictedTime)
	}
}
