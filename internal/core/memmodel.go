package core

import (
	"fmt"

	"cote/internal/memo"
	"cote/internal/stats"
)

// MemModel converts an estimate's structural counts — MEMO entries, generated
// plans, property-list bytes — into a predicted peak optimizer memory, the
// Section 6.2 extension upgraded from a lower bound to a calibrated model.
// It is the memory-side sibling of TimeModel: the same regressors the time
// model already pays for, fitted by the same non-negative least squares,
// versioned by the same registry, and refit from the same observation stream
// (measured durable high-water marks instead of measured wall times).
type MemModel struct {
	// PerEntry is bytes per MEMO entry the real compile retains.
	PerEntry float64 `json:"per_entry"`
	// PerPlan is bytes per generated join plan. Generated — not retained —
	// because generation is what the estimator counts; pruning's effect on
	// the retained set is exactly what calibration folds into the
	// coefficient.
	PerPlan float64 `json:"per_plan"`
	// PerPropByte scales the estimator's property-list byte count.
	PerPropByte float64 `json:"per_prop_byte"`
	// Base is the constant term (fixed per-block overheads).
	Base float64 `json:"base"`
}

// DefaultMemModel returns the uncalibrated structural model: the accountant's
// own per-structure footprints, no constant term. It over-predicts real
// compiles (pruning releases plans; generated >= retained), which is the safe
// direction for admission until a calibration pass tightens it.
func DefaultMemModel() *MemModel {
	return &MemModel{
		PerEntry:    float64(memo.EntryFootprint),
		PerPlan:     float64(memo.PlanFootprint),
		PerPropByte: 1,
	}
}

// Predict converts structural counts to predicted peak bytes.
func (m *MemModel) Predict(entries, plans, propBytes int) int64 {
	if m == nil {
		return 0
	}
	v := m.PerEntry*float64(entries) + m.PerPlan*float64(plans) +
		m.PerPropByte*float64(propBytes) + m.Base
	if v < 0 {
		return 0
	}
	return int64(v)
}

// EstimateMemory predicts the peak durable optimizer memory of the real
// compilation an estimate describes: the model applied to the estimate's
// total entries, generated-plan counts and property bytes. DC plans (one per
// entry) ride on the entry coefficient.
func EstimateMemory(est *Estimate, m *MemModel) int64 {
	entries, propBytes := 0, 0
	for _, be := range est.Blocks {
		entries += be.Entries
		propBytes += be.PropertyBytes
	}
	return m.Predict(entries, est.Counts.Total(), propBytes)
}

// MemPoint is one (estimate regressors, measured peak) observation for
// memory-model calibration: the structural counts of an estimation run at
// some level, paired with the durable high-water mark a real compilation at
// that level actually reached.
type MemPoint struct {
	Entries       int
	Plans         int
	PropertyBytes int
	// PeakBytes is the measured durable high-water mark (opt.Result's
	// Resources.DurablePeakBytes, or an accountant's DurablePeak).
	PeakBytes int64
}

// MemPointFrom pairs an estimate with a measured peak.
func MemPointFrom(est *Estimate, peakBytes int64) MemPoint {
	p := MemPoint{Plans: est.Counts.Total(), PeakBytes: peakBytes}
	for _, be := range est.Blocks {
		p.Entries += be.Entries
		p.PropertyBytes += be.PropertyBytes
	}
	return p
}

// CalibrateMemory fits the memory model from observations by non-negative
// least squares — the same solver Calibrate uses for the time model, so a
// badly conditioned workload degrades to zeroed coefficients rather than
// negative memory. At least one point per free coefficient is required.
//
// Each row is normalized by its measured peak, so the solver minimizes
// relative error rather than absolute: a 2x miss on a 4 KB query weighs as
// much as one on a 2 MB query. An absolute-error fit lets the intercept
// drift to whatever suits the largest workloads (a few KB of Base is free
// against megabyte-scale points) and then over-predicts small queries by
// multiples — exactly the regime where admission decisions are made.
func CalibrateMemory(points []MemPoint) (*MemModel, error) {
	x := make([][]float64, 0, len(points))
	y := make([]float64, 0, len(points))
	for _, p := range points {
		peak := float64(p.PeakBytes)
		if peak <= 0 {
			continue // unmeasured compile: nothing to normalize against
		}
		w := 1 / peak
		x = append(x, []float64{float64(p.Entries) * w, float64(p.Plans) * w, float64(p.PropertyBytes) * w, w})
		y = append(y, 1)
	}
	if len(x) < 4 {
		return nil, fmt.Errorf("core: memory calibration needs >= 4 measured points, got %d", len(x))
	}
	coef, err := stats.NonNegativeOLS(x, y)
	if err != nil {
		return nil, fmt.Errorf("core: memory calibration: %w", err)
	}
	return &MemModel{PerEntry: coef[0], PerPlan: coef[1], PerPropByte: coef[2], Base: coef[3]}, nil
}
