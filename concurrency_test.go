package cote_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"cote"
)

// TestConcurrentEstimationMatchesSerial guards the service's worker pool
// against hidden shared state in the enumerator and MEMO: the linear and
// star workloads are estimated (and a subset optimized) from N goroutines
// sharing the same query blocks, and every run must produce exactly the
// serial run's plan counts. Run under -race (CI does) this also checks
// memory safety of the whole estimate/optimize path.
func TestConcurrentEstimationMatchesSerial(t *testing.T) {
	workloads := []*cote.Workload{cote.LinearWorkload(1), cote.StarWorkload(1)}

	type job struct {
		name     string
		block    *cote.Query
		optimize bool // also run the full optimizer (kept to the small batch)
	}
	var jobs []job
	for _, w := range workloads {
		for _, q := range w.Queries {
			jobs = append(jobs, job{
				name:     w.Name + "/" + q.Name,
				block:    q.Block,
				optimize: strings.Contains(q.Name, "_n6_"),
			})
		}
	}

	// Serial baselines.
	estBase := make(map[string]cote.PlanCounts)
	optBase := make(map[string]cote.PlanCounts)
	for _, j := range jobs {
		est, err := cote.EstimatePlans(j.block, cote.EstimateOptions{})
		if err != nil {
			t.Fatalf("%s: %v", j.name, err)
		}
		estBase[j.name] = est.Counts
		if j.optimize {
			res, err := cote.Optimize(j.block, cote.OptimizeOptions{})
			if err != nil {
				t.Fatalf("%s: %v", j.name, err)
			}
			optBase[j.name] = cote.ActualPlanCounts(res)
		}
	}

	const goroutines = 8
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the jobs at a different offset so
			// different queries overlap in time.
			for i := range jobs {
				j := jobs[(i+g*3)%len(jobs)]
				est, err := cote.EstimatePlans(j.block, cote.EstimateOptions{})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %s: %v", g, j.name, err)
					return
				}
				if est.Counts != estBase[j.name] {
					errs <- fmt.Errorf("goroutine %d: %s: estimate %v != serial %v", g, j.name, est.Counts, estBase[j.name])
					return
				}
				if j.optimize {
					res, err := cote.Optimize(j.block, cote.OptimizeOptions{})
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: %s: %v", g, j.name, err)
						return
					}
					if got := cote.ActualPlanCounts(res); got != optBase[j.name] {
						errs <- fmt.Errorf("goroutine %d: %s: optimize %v != serial %v", g, j.name, got, optBase[j.name])
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
